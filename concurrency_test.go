// Concurrency stress: lifecycle churn (create/destroy/migrate) racing a
// steady command workload on other instances. The per-instance dispatch
// model must keep the steady guests' admissions unaffected — no deadlock,
// no cross-instance admission errors — and the whole test runs under
// `go test -race`.
package xvtpm_test

import (
	"fmt"
	"sync"
	"testing"

	"xvtpm"
	"xvtpm/internal/vtpm"
)

func TestConcurrentLifecycleAndWorkload(t *testing.T) {
	type combo struct {
		mode   xvtpm.Mode
		policy vtpm.CheckpointPolicy
	}
	combos := []combo{
		{xvtpm.ModeBaseline, vtpm.CheckpointEager},
		{xvtpm.ModeImproved, vtpm.CheckpointEager},
		{xvtpm.ModeBaseline, vtpm.CheckpointWriteback},
		{xvtpm.ModeImproved, vtpm.CheckpointWriteback},
	}
	for _, cb := range combos {
		mode, policy := cb.mode, cb.policy
		t.Run(fmt.Sprintf("%s/%s", mode, policy), func(t *testing.T) {
			mkHost := func(name string) *xvtpm.Host {
				h, err := xvtpm.NewHost(xvtpm.HostConfig{
					Name:       fmt.Sprintf("stress-%s-%s-%s", mode, policy, name),
					Mode:       mode,
					RSABits:    512,
					Dom0Pages:  16384,
					Checkpoint: policy,
				})
				if err != nil {
					t.Fatalf("NewHost: %v", err)
				}
				t.Cleanup(func() {
					if err := h.Close(); err != nil {
						t.Errorf("Close: %v", err)
					}
				})
				return h
			}
			src := mkHost("src")
			dst := mkHost("dst")

			// Steady guests: a continuous Extend stream each (Extend is the
			// worst case — it holds the instance lock across engine work AND
			// an eager checkpoint).
			const steadyGuests = 3
			steady := make([]*xvtpm.Guest, steadyGuests)
			for i := range steady {
				g, err := src.CreateGuest(xvtpm.GuestConfig{
					Name:   fmt.Sprintf("steady-%d", i),
					Kernel: []byte(fmt.Sprintf("steady-k-%d", i)),
				})
				if err != nil {
					t.Fatalf("CreateGuest(steady-%d): %v", i, err)
				}
				steady[i] = g
			}

			stop := make(chan struct{})
			var steadyWg, churnWg sync.WaitGroup
			errCh := make(chan error, steadyGuests+4)
			for i, g := range steady {
				steadyWg.Add(1)
				go func(i int, g *xvtpm.Guest) {
					defer steadyWg.Done()
					m := [20]byte{byte(i)}
					for n := 0; ; n++ {
						select {
						case <-stop:
							return
						default:
						}
						m[1] = byte(n)
						if _, err := g.TPM.Extend(uint32(10+i), m); err != nil {
							errCh <- fmt.Errorf("steady-%d extend %d: %w", i, n, err)
							return
						}
					}
				}(i, g)
			}

			// Churners: create a guest, exercise it, then alternately destroy
			// it locally or migrate it to the peer host and destroy it there.
			const churners = 2
			const churnIters = 4
			for c := 0; c < churners; c++ {
				churnWg.Add(1)
				go func(c int) {
					defer churnWg.Done()
					for n := 0; n < churnIters; n++ {
						name := fmt.Sprintf("churn-%d-%d", c, n)
						g, err := src.CreateGuest(xvtpm.GuestConfig{
							Name:   name,
							Kernel: []byte("k-" + name),
						})
						if err != nil {
							errCh <- fmt.Errorf("%s create: %w", name, err)
							return
						}
						if _, err := g.TPM.GetRandom(16); err != nil {
							errCh <- fmt.Errorf("%s getrandom: %w", name, err)
							return
						}
						if n%2 == 0 {
							if err := src.DestroyGuest(g); err != nil {
								errCh <- fmt.Errorf("%s destroy: %w", name, err)
								return
							}
							continue
						}
						mg, err := xvtpm.Migrate(src, g, dst)
						if err != nil {
							errCh <- fmt.Errorf("%s migrate: %w", name, err)
							return
						}
						if _, err := mg.TPM.GetRandom(16); err != nil {
							errCh <- fmt.Errorf("%s post-migrate getrandom: %w", name, err)
							return
						}
						if err := dst.DestroyGuest(mg); err != nil {
							errCh <- fmt.Errorf("%s destroy on dst: %w", name, err)
							return
						}
					}
				}(c)
			}

			// Let the churn complete (or fail) under steady load, then stop
			// the steady workers; any error from either side fails the test.
			churnDone := make(chan struct{})
			go func() { churnWg.Wait(); close(churnDone) }()
			var firstErr error
			select {
			case firstErr = <-errCh:
			case <-churnDone:
			}
			close(stop)
			steadyWg.Wait()
			churnWg.Wait()
			if firstErr == nil {
				select {
				case firstErr = <-errCh:
				default:
				}
			}
			if firstErr != nil {
				t.Fatal(firstErr)
			}

			// The steady instances must still be live, bound, and admitting.
			for i, g := range steady {
				if _, err := g.TPM.PCRRead(uint32(10 + i)); err != nil {
					t.Fatalf("steady-%d post-stress PCRRead: %v", i, err)
				}
			}
		})
	}
}
