// Crash consistency, end to end: guests extend PCRs and checkpoint through
// the manager into the log-structured store; the modeled device is then
// torn at a nasty byte position (mid-record, across a segment boundary, or
// by losing the tail segment wholesale); a fresh host over the recovered
// log must revive every instance with some previously-committed PCR state
// and lose nothing but the torn tail. Runs under `go test -race` with the
// rest of the root suite; the host seed makes each scenario deterministic.
package xvtpm_test

import (
	"fmt"
	"testing"

	"xvtpm"
	"xvtpm/internal/store/logstore"
	"xvtpm/internal/tpm"
	"xvtpm/internal/vtpm"
	"xvtpm/internal/xen"
)

// crashLogConfig keeps segments tiny so a few guests span several segments,
// and disables auto-compaction so tear offsets hit a deterministic layout.
func crashLogConfig() logstore.Config {
	return logstore.Config{
		NotFound:           vtpm.ErrNoState,
		SegmentSize:        8 << 10,
		DisableAutoCompact: true,
	}
}

// buildCrashHistory boots a host over ls, runs guests through extend+
// checkpoint rounds, and returns the host plus every PCR-7 value each
// instance committed (in commit order). Deferred checkpointing with
// explicit Checkpoint calls makes "committed" exact: one store generation
// per recorded value.
func buildCrashHistory(t *testing.T, ls *logstore.Store, hostName string, guests, rounds int) (*xvtpm.Host, map[vtpm.InstanceID][][tpm.DigestSize]byte) {
	t.Helper()
	h, err := xvtpm.NewHost(xvtpm.HostConfig{
		Name:       hostName,
		Mode:       xvtpm.ModeImproved,
		RSABits:    512,
		Seed:       []byte("crash-consistency"),
		Checkpoint: vtpm.CheckpointDeferred,
		Store:      ls,
	})
	if err != nil {
		t.Fatalf("NewHost: %v", err)
	}
	t.Cleanup(func() { h.Close() }) //nolint:errcheck // deferred policy, checkpoints explicit

	committed := make(map[vtpm.InstanceID][][tpm.DigestSize]byte)
	gs := make([]*xvtpm.Guest, guests)
	for i := range gs {
		g, err := h.CreateGuest(xvtpm.GuestConfig{
			Name:   fmt.Sprintf("crash-%d", i),
			Kernel: []byte(fmt.Sprintf("crash-k-%d", i)),
		})
		if err != nil {
			t.Fatalf("CreateGuest %d: %v", i, err)
		}
		gs[i] = g
	}
	for round := 1; round <= rounds; round++ {
		for gi, g := range gs {
			var m [tpm.DigestSize]byte
			m[0], m[1] = byte(gi), byte(round)
			if _, err := g.TPM.Extend(7, m); err != nil {
				t.Fatalf("Extend guest %d round %d: %v", gi, round, err)
			}
			if err := h.Manager.Checkpoint(g.Instance); err != nil {
				t.Fatalf("Checkpoint guest %d round %d: %v", gi, round, err)
			}
			pcr, err := g.TPM.PCRRead(7)
			if err != nil {
				t.Fatalf("PCRRead guest %d: %v", gi, err)
			}
			committed[g.Instance] = append(committed[g.Instance], pcr)
		}
	}
	return h, committed
}

// recoverAndVerify reopens the torn disk and revives every instance on a
// fresh manager sharing the crashed host's hypervisor and guard — the real
// crash model: the manager process and its log die, the physical host and
// its hardware TPM (which the improved guard's envelope keys are sealed to)
// survive. Each recovered PCR-7 is checked against the committed history:
// the final value ideally, an earlier committed one at worst (the torn
// tail), never anything else. It returns how many instances fell back.
func recoverAndVerify(t *testing.T, h *xvtpm.Host, disk *logstore.Disk,
	committed map[vtpm.InstanceID][][tpm.DigestSize]byte) (fallbacks int) {
	t.Helper()
	ls, rs, err := logstore.Open(disk, crashLogConfig())
	if err != nil {
		t.Fatalf("Open after tear: %v", err)
	}
	t.Logf("recovery: %d segments, %d records (%d tombstones), %d dropped bytes, %d damaged segments",
		rs.Segments, rs.Records, rs.Tombstones, rs.DroppedBytes, rs.DamagedSegments)
	dom0, err := h.HV.Domain(xen.Dom0)
	if err != nil {
		t.Fatalf("Domain(0): %v", err)
	}
	mgr := vtpm.NewManager(h.HV, ls, xen.NewArena(dom0), h.Guard(), vtpm.ManagerConfig{
		RSABits: 512,
	})
	defer mgr.Close() //nolint:errcheck
	revived, err := mgr.ReviveAll()
	if err != nil {
		t.Fatalf("ReviveAll: %v", err)
	}
	if len(revived) != len(committed) {
		t.Fatalf("revived %d instances, want %d — committed instances lost", len(revived), len(committed))
	}
	for id, history := range committed {
		eng, err := mgr.DirectClient(id)
		if err != nil {
			t.Fatalf("DirectClient(%d): %v", id, err)
		}
		pcr, err := eng.PCRRead(7)
		if err != nil {
			t.Fatalf("PCRRead(%d): %v", id, err)
		}
		match := -1
		for i, want := range history {
			if pcr == want {
				match = i
				break
			}
		}
		if match < 0 {
			t.Fatalf("instance %d recovered with PCR-7 outside its committed history", id)
		}
		if match != len(history)-1 {
			fallbacks++
		}
	}
	return fallbacks
}

func TestCrashRecoveryEndToEnd(t *testing.T) {
	const guests, rounds = 3, 6
	scenarios := []struct {
		name string
		// tear mutilates the quiesced disk; maxFallbacks bounds how many
		// instances may legally lose their newest generation (-1: any).
		tear         func(t *testing.T, d *logstore.Disk)
		maxFallbacks int
	}{
		{
			// A tear smaller than one sealed checkpoint record cuts the
			// final record mid-body: only the very last commit may be lost.
			name:         "torn-mid-record",
			tear:         func(t *testing.T, d *logstore.Disk) { d.TruncateTail(64) },
			maxFallbacks: 1,
		},
		{
			// Erase the tail segment and tear into the one before it: a
			// boundary-spanning tear may claim several tail commits, but
			// every instance must still recover to a committed state.
			name: "torn-across-segment-boundary",
			tear: func(t *testing.T, d *logstore.Disk) {
				segs := d.SegmentBytes()
				if len(segs) < 2 {
					t.Fatalf("need >= 2 segments, have %d", len(segs))
				}
				d.TruncateTail(segs[len(segs)-1] + 64)
			},
			maxFallbacks: -1,
		},
		{
			name:         "truncated-tail-segment",
			tear:         func(t *testing.T, d *logstore.Disk) { d.DropTailSegment() },
			maxFallbacks: -1,
		},
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			ls := logstore.New(crashLogConfig())
			h, committed := buildCrashHistory(t, ls, "crash-"+sc.name, guests, rounds)
			h.Close() //nolint:errcheck // the crash: manager gone, host hardware survives
			disk := ls.Disk()
			sc.tear(t, disk)
			fallbacks := recoverAndVerify(t, h, disk, committed)
			t.Logf("%d of %d instances fell back to an earlier committed generation", fallbacks, guests)
			if sc.maxFallbacks >= 0 && fallbacks > sc.maxFallbacks {
				t.Fatalf("%d instances fell back, want <= %d", fallbacks, sc.maxFallbacks)
			}
		})
	}
}
