// Root benchmark suite: one benchmark family per reconstructed table/figure
// (E1–E8 in DESIGN.md) plus the design-choice ablations (checkpoint policy,
// session reuse, channel crypto). `go test -bench . -benchmem` at the
// repository root reproduces the relative measurements; cmd/benchrunner
// prints the full evaluation (E1–E12) as formatted tables and series.
package xvtpm_test

import (
	"fmt"
	"testing"
	"time"

	"xvtpm"
	"xvtpm/internal/attack"
	"xvtpm/internal/core"
	"xvtpm/internal/tpm"
	"xvtpm/internal/vtpm"
	"xvtpm/internal/workload"
	"xvtpm/internal/xen"
)

const benchBits = 512

var benchHostCtr int

func benchHost(b *testing.B, mode xvtpm.Mode, extra ...func(*xvtpm.HostConfig)) *xvtpm.Host {
	b.Helper()
	benchHostCtr++
	cfg := xvtpm.HostConfig{
		Name:    fmt.Sprintf("bench-%s-%d", mode, benchHostCtr),
		Mode:    mode,
		RSABits: benchBits,
	}
	for _, fn := range extra {
		fn(&cfg)
	}
	h, err := xvtpm.NewHost(cfg)
	if err != nil {
		b.Fatalf("NewHost: %v", err)
	}
	b.Cleanup(func() { h.Close() })
	return h
}

func benchGuestRunner(b *testing.B, h *xvtpm.Host, id int) *workload.Runner {
	b.Helper()
	g, err := h.CreateGuest(xvtpm.GuestConfig{
		Name:   fmt.Sprintf("bg-%d", id),
		Kernel: []byte(fmt.Sprintf("bk-%d", id)),
	})
	if err != nil {
		b.Fatalf("CreateGuest: %v", err)
	}
	r, err := workload.Prepare(g.TPM, id, benchBits)
	if err != nil {
		b.Fatalf("Prepare: %v", err)
	}
	return r
}

// BenchmarkE1PerCommand measures single-command latency through the full
// guarded path, per mode and per operation (reconstructed Table 1).
func BenchmarkE1PerCommand(b *testing.B) {
	ops := []workload.Op{
		workload.OpGetRandom, workload.OpExtend, workload.OpPCRRead,
		workload.OpSeal, workload.OpUnseal, workload.OpQuote,
	}
	for _, mode := range []xvtpm.Mode{xvtpm.ModeBaseline, xvtpm.ModeImproved} {
		mode := mode
		b.Run(mode.String(), func(b *testing.B) {
			h := benchHost(b, mode)
			runner := benchGuestRunner(b, h, 1)
			for _, op := range ops {
				op := op
				b.Run(op.String(), func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						if err := runner.Step(op); err != nil {
							b.Fatalf("Step(%v): %v", op, err)
						}
					}
				})
			}
		})
	}
}

// BenchmarkE2Throughput measures aggregate command throughput with N
// concurrent guests (reconstructed Figure 1). Reported ns/op is per
// command, aggregated across guests.
func BenchmarkE2Throughput(b *testing.B) {
	for _, mode := range []xvtpm.Mode{xvtpm.ModeBaseline, xvtpm.ModeImproved} {
		mode := mode
		b.Run(mode.String(), func(b *testing.B) {
			for _, guests := range []int{1, 4, 16} {
				guests := guests
				b.Run(fmt.Sprintf("guests=%d", guests), func(b *testing.B) {
					h := benchHost(b, mode, func(hc *xvtpm.HostConfig) { hc.Dom0Pages = 16384 })
					runners := make([]*workload.Runner, guests)
					for i := range runners {
						runners[i] = benchGuestRunner(b, h, i)
					}
					per := b.N/guests + 1
					b.ResetTimer()
					done := make(chan error, guests)
					for i, r := range runners {
						go func(i int, r *workload.Runner) {
							stream := workload.NewStream(workload.CheapMix, int64(i))
							for j := 0; j < per; j++ {
								if err := r.Step(stream.Next()); err != nil {
									done <- err
									return
								}
							}
							done <- nil
						}(i, r)
					}
					for range runners {
						if err := <-done; err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		})
	}
}

// BenchmarkE3CreateInstance measures vTPM instance creation, with and
// without the EK pool (reconstructed Figure 2 and its ablation).
func BenchmarkE3CreateInstance(b *testing.B) {
	for _, variant := range []struct {
		name string
		pool int
	}{{"no-pool", 0}, {"ek-pool", 16}} {
		variant := variant
		b.Run(variant.name, func(b *testing.B) {
			h := benchHost(b, xvtpm.ModeImproved, func(hc *xvtpm.HostConfig) {
				hc.EKPoolSize = variant.pool
				hc.Dom0Pages = 65536
			})
			if variant.pool > 0 {
				// Give the background generator a head start; steady-state
				// pool behaviour is what the figure compares.
				time.Sleep(300 * time.Millisecond)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := h.Manager.CreateInstance(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE4AttackMatrix runs the full six-attack matrix against each
// guard (reconstructed Table 2); ns/op is the cost of one full matrix.
func BenchmarkE4AttackMatrix(b *testing.B) {
	for _, mode := range []xvtpm.Mode{xvtpm.ModeBaseline, xvtpm.ModeImproved} {
		mode := mode
		b.Run(mode.String(), func(b *testing.B) {
			factory := func() (*xvtpm.Host, *xvtpm.Guest, *xvtpm.Host, error) {
				benchHostCtr++
				h, err := xvtpm.NewHost(xvtpm.HostConfig{
					Name: fmt.Sprintf("b4-%s-%d", mode, benchHostCtr), Mode: mode, RSABits: benchBits,
				})
				if err != nil {
					return nil, nil, nil, err
				}
				g, err := h.CreateGuest(xvtpm.GuestConfig{Name: "v", Kernel: []byte("vk")})
				if err != nil {
					return nil, nil, nil, err
				}
				benchHostCtr++
				peer, err := xvtpm.NewHost(xvtpm.HostConfig{
					Name: fmt.Sprintf("b4p-%s-%d", mode, benchHostCtr), Mode: mode, RSABits: benchBits,
				})
				if err != nil {
					return nil, nil, nil, err
				}
				return h, g, peer, nil
			}
			wantSuccess := mode == xvtpm.ModeBaseline
			for i := 0; i < b.N; i++ {
				results, err := attack.RunMatrix(factory)
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range results {
					if r.Succeeded != wantSuccess {
						b.Fatalf("unexpected outcome: %s", r)
					}
				}
			}
		})
	}
}

// BenchmarkE5PolicyDecision measures one access-control decision at several
// policy sizes, cached and uncached (reconstructed Figure 3).
func BenchmarkE5PolicyDecision(b *testing.B) {
	subject := xen.MeasureLaunch([]byte("subject"), nil, "")
	for _, cached := range []bool{false, true} {
		cached := cached
		name := "uncached"
		if cached {
			name = "cached"
		}
		b.Run(name, func(b *testing.B) {
			for _, rules := range []int{16, 256, 4096} {
				rules := rules
				b.Run(fmt.Sprintf("rules=%d", rules), func(b *testing.B) {
					rs := make([]core.Rule, 0, rules)
					for i := 0; i < rules-1; i++ {
						rs = append(rs, core.Rule{
							Identity: xen.MeasureLaunch([]byte{byte(i), byte(i >> 8)}, nil, "x"),
							Instance: vtpm.InstanceID(i + 100),
							Group:    core.GroupNV,
							Effect:   core.Allow,
						})
					}
					rs = append(rs, core.Rule{Identity: subject, Instance: 1, Group: core.GroupPCR, Effect: core.Allow})
					p := core.NewPolicy(rs...)
					p.SetCache(cached)
					p.Evaluate(tpm.Profile12, subject, 1, tpm.OrdExtend) // warm
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if p.Evaluate(tpm.Profile12, subject, 1, tpm.OrdExtend) != core.Allow {
							b.Fatal("unexpected deny")
						}
					}
				})
			}
		})
	}
}

// BenchmarkE6Migration measures one full guest+vTPM migration per iteration
// (reconstructed Table 3).
func BenchmarkE6Migration(b *testing.B) {
	for _, mode := range []xvtpm.Mode{xvtpm.ModeBaseline, xvtpm.ModeImproved} {
		mode := mode
		b.Run(mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				src := benchHost(b, mode)
				dst := benchHost(b, mode)
				g, err := src.CreateGuest(xvtpm.GuestConfig{Name: "t", Kernel: []byte("tk")})
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if _, err := xvtpm.Migrate(src, g, dst); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE7DumpScan measures the attacker's dump-and-scan sampling cost,
// the probe frequency behind the exposure-window figure (Figure 4).
func BenchmarkE7DumpScan(b *testing.B) {
	h := benchHost(b, xvtpm.ModeImproved, func(hc *xvtpm.HostConfig) { hc.Dom0Pages = 1024 })
	_ = benchGuestRunner(b, h, 1)
	probes := []attack.Probe{attack.StateMagicProbe}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := attack.DumpAndScan(h.HV, xen.Dom0, probes); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE8StateProtect measures the state checkpoint path (serialize +
// guard protection) and reports the stored blob size (reconstructed
// Table 4).
func BenchmarkE8StateProtect(b *testing.B) {
	for _, mode := range []xvtpm.Mode{xvtpm.ModeBaseline, xvtpm.ModeImproved} {
		mode := mode
		b.Run(mode.String(), func(b *testing.B) {
			h := benchHost(b, mode)
			g, err := h.CreateGuest(xvtpm.GuestConfig{Name: "s", Kernel: []byte("sk")})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := h.Manager.Checkpoint(g.Instance); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			blob, err := h.Store.Get(fmt.Sprintf("vtpm-%08d.state", g.Instance))
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(len(blob)), "blob-bytes")
		})
	}
}

// BenchmarkConcurrentGuests measures multi-instance dispatch scaling
// (experiment E11): N guests each drive their own GetRandom stream from
// their own goroutine, so the benchmark isolates cross-instance lock
// contention on the manager/guard path rather than engine cost (GetRandom
// does no RSA and is not checkpointed). With the per-instance concurrency
// model, aggregate ns/op should hold roughly flat as guests grow; a global
// dispatch lock would instead serialize all lanes. Reported ns/op is per
// command, aggregated across guests.
func BenchmarkConcurrentGuests(b *testing.B) {
	for _, mode := range []xvtpm.Mode{xvtpm.ModeBaseline, xvtpm.ModeImproved} {
		mode := mode
		b.Run(mode.String(), func(b *testing.B) {
			for _, guests := range []int{1, 4, 16, 64} {
				guests := guests
				b.Run(fmt.Sprintf("guests=%d", guests), func(b *testing.B) {
					h := benchHost(b, mode, func(hc *xvtpm.HostConfig) { hc.Dom0Pages = 65536 })
					gs := make([]*xvtpm.Guest, guests)
					for i := range gs {
						g, err := h.CreateGuest(xvtpm.GuestConfig{
							Name:   fmt.Sprintf("cg-%d", i),
							Kernel: []byte(fmt.Sprintf("cgk-%d", i)),
						})
						if err != nil {
							b.Fatalf("CreateGuest: %v", err)
						}
						gs[i] = g
					}
					per := b.N/guests + 1
					b.ResetTimer()
					done := make(chan error, guests)
					for _, g := range gs {
						go func(g *xvtpm.Guest) {
							for j := 0; j < per; j++ {
								if _, err := g.TPM.GetRandom(16); err != nil {
									done <- err
									return
								}
							}
							done <- nil
						}(g)
					}
					for range gs {
						if err := <-done; err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		})
	}
}

// BenchmarkE12CheckpointPolicy measures mutation-heavy throughput through
// the full guest path (client → ring → backend → guard → engine) under each
// checkpoint policy (experiment E12). Four guests each drive a concurrent
// Extend stream — every command mutates state, so eager persistence reseals
// and rewrites the state envelope per command while writeback coalesces the
// burst into background checkpoints. Reported ns/op is per command,
// aggregated across guests.
func BenchmarkE12CheckpointPolicy(b *testing.B) {
	policies := []vtpm.CheckpointPolicy{
		vtpm.CheckpointEager, vtpm.CheckpointWriteback, vtpm.CheckpointDeferred,
	}
	const guests = 4
	for _, pol := range policies {
		pol := pol
		b.Run(pol.String(), func(b *testing.B) {
			h := benchHost(b, xvtpm.ModeImproved, func(hc *xvtpm.HostConfig) {
				hc.Checkpoint = pol
				hc.Dom0Pages = 16384
			})
			gs := make([]*xvtpm.Guest, guests)
			for i := range gs {
				g, err := h.CreateGuest(xvtpm.GuestConfig{
					Name:   fmt.Sprintf("e12-%d", i),
					Kernel: []byte(fmt.Sprintf("e12k-%d", i)),
				})
				if err != nil {
					b.Fatalf("CreateGuest: %v", err)
				}
				gs[i] = g
			}
			per := b.N/guests + 1
			b.ResetTimer()
			done := make(chan error, guests)
			for i, g := range gs {
				go func(i int, g *xvtpm.Guest) {
					var m [20]byte
					m[0] = byte(i)
					for j := 0; j < per; j++ {
						m[1], m[2] = byte(j), byte(j>>8)
						if _, err := g.TPM.Extend(uint32(8+i), m); err != nil {
							done <- err
							return
						}
					}
					done <- nil
				}(i, g)
			}
			for range gs {
				if err := <-done; err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationCheckpointPolicy compares the three checkpoint policies
// on an Extend-heavy stream — the durability-vs-throughput design choice
// DESIGN.md calls out. Dispatch is driven directly (no ring, no channel
// crypto) so the measurement isolates the persistence cost itself: eager
// serializes and rewrites the state blob inside the dispatch path on every
// mutation (stock behaviour), writeback coalesces mutations into background
// checkpoints bounded by the dirty window, deferred never persists (the
// durability floor the other two are measured against).
func BenchmarkAblationCheckpointPolicy(b *testing.B) {
	policies := []vtpm.CheckpointPolicy{
		vtpm.CheckpointEager, vtpm.CheckpointWriteback, vtpm.CheckpointDeferred,
	}
	for _, pol := range policies {
		pol := pol
		b.Run(pol.String(), func(b *testing.B) {
			hv := xen.NewHypervisor(xen.DomainConfig{Name: "Domain-0", Pages: 8192})
			dom0, err := hv.Domain(xen.Dom0)
			if err != nil {
				b.Fatal(err)
			}
			mgr := vtpm.NewManager(hv, vtpm.NewMemStore(), xen.NewArena(dom0),
				core.NewBaselineGuard(), vtpm.ManagerConfig{
					RSABits: benchBits, Seed: []byte("ablate"), Checkpoint: pol,
				})
			defer mgr.Close()
			dom, err := hv.CreateDomain(xen.DomainConfig{Name: "g", Kernel: []byte("k")})
			if err != nil {
				b.Fatal(err)
			}
			id, err := mgr.CreateInstance()
			if err != nil {
				b.Fatal(err)
			}
			if err := mgr.BindInstance(id, dom); err != nil {
				b.Fatal(err)
			}
			m := [20]byte{1}
			cmd := tpm.NewWriter()
			cmd.U16(tpm.TagRQUCommand)
			cmd.U32(uint32(10 + 4 + len(m)))
			cmd.U32(tpm.OrdExtend)
			cmd.U32(7)
			cmd.Raw(m[:])
			payload := cmd.Bytes()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := mgr.Dispatch(dom.ID(), dom.Launch(), payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationSessionReuse compares one-shot authorization sessions
// (one extra OIAP round trip per authorized command, the stock tools'
// behaviour) against the client's session cache, over the full vTPM path.
func BenchmarkAblationSessionReuse(b *testing.B) {
	for _, cached := range []bool{false, true} {
		cached := cached
		name := "one-shot"
		if cached {
			name = "cached"
		}
		b.Run(name, func(b *testing.B) {
			h := benchHost(b, xvtpm.ModeImproved)
			g, err := h.CreateGuest(xvtpm.GuestConfig{Name: "s", Kernel: []byte("sk")})
			if err != nil {
				b.Fatal(err)
			}
			owner := [20]byte{1}
			srk := [20]byte{2}
			if _, err := g.TPM.TakeOwnership(owner, srk); err != nil {
				b.Fatal(err)
			}
			if cached {
				g.TPM.EnableSessionCache()
			}
			if _, err := g.TPM.GetPubKey(tpm.KHSRK, srk); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := g.TPM.GetPubKey(tpm.KHSRK, srk); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkChannelEnvelope isolates the improved design's per-command
// channel crypto (ablation: the fixed cost it adds to every exchange).
func BenchmarkChannelEnvelope(b *testing.B) {
	h := benchHost(b, xvtpm.ModeImproved)
	g, err := h.CreateGuest(xvtpm.GuestConfig{Name: "c", Kernel: []byte("ck")})
	if err != nil {
		b.Fatal(err)
	}
	codec, err := h.Manager.EncoderFor(g.Instance)
	if err != nil {
		b.Fatal(err)
	}
	cmd := make([]byte, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := codec.EncodeRequest(cmd); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGuestPipelinedThroughput measures aggregate guest-path
// throughput at pipeline depth 1 (lockstep) versus depth 8, with 8
// concurrent submitters per guest. ns/op is inverse throughput: wall time
// divided by completed commands. The depth=8 row must sustain at least 3x
// the depth=1 rate — the whole point of the pipelined transport.
//
// Both rows run with a modelled 25µs event-channel delivery cost
// (HostConfig.EventLatency): on real Xen every doorbell is a hypercall
// plus an upcall into the peer domain, and hiding that latency is
// precisely what pipelining and doorbell suppression are for. With
// instantaneous doorbells the comparison would instead measure the
// single-core crypto floor, which no transport change can move.
func BenchmarkGuestPipelinedThroughput(b *testing.B) {
	for _, depth := range []int{1, 8} {
		depth := depth
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			h := benchHost(b, xvtpm.ModeImproved, func(hc *xvtpm.HostConfig) {
				hc.PipelineDepth = depth
				hc.EventLatency = 25 * time.Microsecond
			})
			g, err := h.CreateGuest(xvtpm.GuestConfig{Name: "pt", Kernel: []byte("ptk")})
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < 50; i++ {
				if _, err := g.TPM.GetRandom(16); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			b.SetParallelism(8)
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, err := g.TPM.GetRandom(16); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}
