// Package xvtpm is the public API of the vTPM access-control reproduction:
// it assembles a simulated Xen host — hypervisor, XenStore, hardware TPM,
// vTPM manager with a chosen access-control guard — and offers guest
// lifecycle, TPM access and live migration on top.
//
// The package reproduces "Improvement for vTPM Access Control on Xen"
// (Morikawa, Ebara, Onishi, Nakano; ICPP Workshops 2010). Two access-control
// modes are available and directly comparable:
//
//   - ModeBaseline: the stock Xen vTPM behaviour (instance↔domain-ID table,
//     plaintext state, unprotected migration).
//   - ModeImproved: the paper's improvement (measured-identity binding,
//     authenticated+encrypted command channel, default-deny ordinal policy,
//     state sealed to the hardware TPM, protected migration).
//
// A minimal session:
//
//	host, _ := xvtpm.NewHost(xvtpm.HostConfig{Name: "hostA", Mode: xvtpm.ModeImproved})
//	guest, _ := host.CreateGuest(xvtpm.GuestConfig{Name: "web", Kernel: kernel})
//	guest.TPM.Extend(10, measurement)
//	blob, _ := guest.TPM.Seal(tpm.KHSRK, srkAuth, dataAuth, nil, secret)
package xvtpm

import (
	"crypto/sha1"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"xvtpm/internal/core"
	"xvtpm/internal/metrics"
	"xvtpm/internal/store/logstore"
	"xvtpm/internal/tpm"
	"xvtpm/internal/vtpm"
	"xvtpm/internal/xen"
	"xvtpm/internal/xenstore"
)

// Mode selects the access-control guard a host runs.
type Mode int

// Host access-control modes.
const (
	ModeBaseline Mode = iota
	ModeImproved
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == ModeImproved {
		return "improved"
	}
	return "baseline"
}

// StoreBackend selects which built-in persistence backend NewHost
// constructs when HostConfig.Store is nil.
type StoreBackend int

// Built-in persistence backends.
const (
	// StoreFlat is the seed behaviour: a flat in-memory blob store paying
	// one write per dirty instance.
	StoreFlat StoreBackend = iota
	// StoreLog is the segmented append-only log store: checkpoint Puts from
	// concurrent write-behind workers coalesce into group commits, one sync
	// per commit window. See internal/store/logstore.
	StoreLog
)

// String implements fmt.Stringer.
func (b StoreBackend) String() string {
	if b == StoreLog {
		return "log"
	}
	return "flat"
}

// Re-exported types so example code needs only this package and
// internal/tpm for client constants.
type (
	// Guest is a running domain with an attached vTPM.
	Guest struct {
		Name     string
		Dom      *xen.Domain
		Instance vtpm.InstanceID
		Frontend *vtpm.Frontend
		// Profile is the guest vTPM's command profile; it decides which of
		// TPM/TPM2 is populated.
		Profile tpm.Profile
		// TPM drives a 1.2-profile vTPM through the full path: client →
		// frontend → ring → backend → guard → instance engine. Nil for a
		// 2.0 guest.
		TPM *tpm.Client
		// TPM2 drives a 2.0-profile vTPM through the same path. Nil for a
		// 1.2 guest.
		TPM2 *tpm.Client2

		host *Host
	}
)

// HostConfig parameterizes a simulated host.
type HostConfig struct {
	Name string
	Mode Mode
	// RSABits sizes all TPM keys on the host (hardware and instances).
	// Zero means tpm.DefaultRSABits; tests and benchmarks use 512.
	RSABits int
	// Seed makes the host deterministic when non-nil.
	Seed []byte
	// Dom0Pages sizes the management domain's memory (manager working
	// buffers live there). Zero picks a default large enough for dozens of
	// instances.
	Dom0Pages int
	// EKPoolSize pre-generates instance RSA keys in the background
	// (experiments E3, E20), shared by every instance on the host.
	EKPoolSize int
	// SignWorkers sizes the shared RSA signing pool that takes Quote, Sign
	// and CertifyKey private-key operations off the dispatch lanes. Zero
	// means tpm.DefaultSignWorkers (pool on by default); negative disables
	// the pool (inline signing under the instance lock).
	SignWorkers int
	// SignBatchWindow, when positive, Merkle-batches concurrent quotes
	// against the same key within the window under one root signature.
	SignBatchWindow time.Duration
	// SignBatchMax seals a quote batch early at this population (zero
	// means tpm.DefaultSignBatchMax when the window is positive).
	SignBatchMax int
	// Checkpoint selects the manager's state-persistence policy: eager
	// (default), writeback or deferred. See vtpm.CheckpointPolicy.
	Checkpoint vtpm.CheckpointPolicy
	// MaxDirtyCommands / MaxDirtyInterval bound the writeback durability
	// window; zero means the vtpm package defaults.
	MaxDirtyCommands int
	MaxDirtyInterval time.Duration
	// Store overrides the manager's state store. Nil means NewHost builds
	// the backend StoreBackend selects. Fault-injection runs pass a
	// faults.Store here (wrapping either backend).
	Store vtpm.Store
	// StoreBackend selects the built-in persistence backend when Store is
	// nil: StoreFlat (default, one in-memory blob per name) or StoreLog
	// (segmented append-only log with cross-instance group commit).
	StoreBackend StoreBackend
	// LogStore tunes the StoreLog backend; the zero value takes the
	// logstore defaults. The NotFound sentinel is always forced to
	// vtpm.ErrNoState so the manager's missing-blob handling works.
	LogStore logstore.Config
	// Retry bounds the manager's store-I/O retry loop; zero fields mean the
	// vtpm package defaults. See vtpm.RetryPolicy.
	Retry vtpm.RetryPolicy
	// TraceDepth, TraceSampleRate and TraceSeed configure the manager's
	// per-command span recorder: ring capacity per instance (zero means the
	// trace package default, negative disables tracing), 1-in-N sampling
	// (0 or 1 records everything) and the seed of the deterministic
	// sampling stream. See internal/trace.
	TraceDepth      int
	TraceSampleRate int
	TraceSeed       int64
	// PipelineDepth is how many commands each guest frontend keeps in flight
	// on its ring at once. 0 or 1 selects strict request/response lockstep;
	// larger values let concurrent guest callers overlap round trips. See
	// vtpm.FrontendConfig.
	PipelineDepth int
	// Profile sets the default command profile for new vTPM instances on
	// this host (AnyProfile means 1.2). Per-guest GuestConfig.Profile
	// overrides it; the manager itself stays profile-agnostic, so a host
	// runs a mixed 1.2/2.0 fleet regardless of this default.
	Profile tpm.Profile
	// EventLatency models the cost of delivering one event-channel doorbell
	// (hypercall trap + upcall + peer scheduling on real Xen). Zero keeps
	// delivery instantaneous. Benchmarks and experiments set it to study how
	// ring batching and doorbell suppression amortize per-notify cost. See
	// xen.EventChannels.SetNotifyLatency.
	EventLatency time.Duration
}

// Host is one simulated physical machine.
type Host struct {
	Name    string
	Mode    Mode
	HV      *xen.Hypervisor
	XS      *xenstore.Store
	HWTPM   *tpm.TPM
	HW      *tpm.Client
	Manager *vtpm.Manager
	Backend *vtpm.Backend
	Store   vtpm.Store

	guard     vtpm.Guard
	keys      *core.PlatformKeys // improved mode only
	transport *vtpm.TransportMetrics
	pipeDepth int
	profile   tpm.Profile // default profile for new guests

	mu        sync.Mutex
	guests    map[xen.DomID]*Guest
	anchor    *core.AuditAnchor
	suspended map[string]*suspendedGuest
}

// EnableAuditAnchor provisions hardware anchoring for the improved guard's
// audit log (an NV area plus a monotonic counter in the host's hardware
// TPM). Idempotent per host.
func (h *Host) EnableAuditAnchor() error {
	if h.Mode != ModeImproved {
		return errors.New("xvtpm: audit anchoring requires the improved guard")
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.anchor != nil {
		return nil
	}
	anchor, err := core.NewAuditAnchor(h.keys)
	if err != nil {
		return err
	}
	h.anchor = anchor
	return nil
}

// AnchorAudit commits the current audit head into the hardware TPM and
// returns the anchor counter value.
func (h *Host) AnchorAudit() (uint32, error) {
	h.mu.Lock()
	anchor := h.anchor
	h.mu.Unlock()
	if anchor == nil {
		return 0, errors.New("xvtpm: audit anchor not enabled")
	}
	ig, ok := h.ImprovedGuard()
	if !ok {
		return 0, errors.New("xvtpm: no improved guard")
	}
	return anchor.Anchor(ig.Audit())
}

// VerifyAuditAgainstAnchor checks the guard's current audit log against the
// hardware anchor.
func (h *Host) VerifyAuditAgainstAnchor() error {
	h.mu.Lock()
	anchor := h.anchor
	h.mu.Unlock()
	if anchor == nil {
		return errors.New("xvtpm: audit anchor not enabled")
	}
	ig, ok := h.ImprovedGuard()
	if !ok {
		return errors.New("xvtpm: no improved guard")
	}
	return anchor.VerifyAgainstAnchor(ig.Audit().Records())
}

// Guard returns the host's access-control guard.
func (h *Host) Guard() vtpm.Guard { return h.guard }

// ImprovedGuard returns the improved guard when the host runs in
// ModeImproved, for policy administration and audit access.
func (h *Host) ImprovedGuard() (*core.ImprovedGuard, bool) {
	g, ok := h.guard.(*core.ImprovedGuard)
	return g, ok
}

// hostAuth derives the host's hardware TPM owner and SRK secrets from its
// name (a stand-in for the datacenter's credential store).
func hostAuth(name, role string) (a [tpm.AuthSize]byte) {
	h := sha1.Sum([]byte("host-auth|" + name + "|" + role))
	copy(a[:], h[:])
	return a
}

// NewHost boots a simulated host: hypervisor with dom0, XenStore, owned
// hardware TPM, guard, manager and backend.
func NewHost(cfg HostConfig) (*Host, error) {
	if cfg.Name == "" {
		return nil, errors.New("xvtpm: host must be named")
	}
	dom0Pages := cfg.Dom0Pages
	if dom0Pages == 0 {
		dom0Pages = 4096 // 16 MiB of manager working memory
	}
	hv := xen.NewHypervisor(xen.DomainConfig{Name: "Domain-0", Pages: dom0Pages})
	if cfg.EventLatency > 0 {
		hv.EventChannels().SetNotifyLatency(cfg.EventLatency)
	}
	xs := xenstore.New()

	var seed []byte
	if cfg.Seed != nil {
		seed = append(append([]byte(nil), cfg.Seed...), []byte("|hw|"+cfg.Name)...)
	}
	hwEng, err := tpm.New(tpm.Config{RSABits: cfg.RSABits, Seed: seed})
	if err != nil {
		return nil, fmt.Errorf("xvtpm: hardware TPM: %w", err)
	}
	hw := tpm.NewClient(tpm.DirectTransport{TPM: hwEng}, nil)
	if err := hw.Startup(tpm.STClear); err != nil {
		return nil, err
	}
	if err := hw.SelfTestFull(); err != nil {
		return nil, err
	}

	store := cfg.Store
	if store == nil {
		switch cfg.StoreBackend {
		case StoreFlat:
			store = vtpm.NewMemStore()
		case StoreLog:
			lcfg := cfg.LogStore
			lcfg.NotFound = vtpm.ErrNoState
			store = logstore.New(lcfg)
		default:
			return nil, fmt.Errorf("xvtpm: unknown store backend %d", cfg.StoreBackend)
		}
	}
	h := &Host{
		Name:      cfg.Name,
		Mode:      cfg.Mode,
		HV:        hv,
		XS:        xs,
		HWTPM:     hwEng,
		HW:        hw,
		Store:     store,
		guests:    make(map[xen.DomID]*Guest),
		transport: vtpm.NewTransportMetrics(),
		pipeDepth: cfg.PipelineDepth,
		profile:   cfg.Profile,
	}
	switch cfg.Mode {
	case ModeImproved:
		keys, err := core.SetupPlatformKeys(hw, []byte("platform|"+cfg.Name),
			hostAuth(cfg.Name, "owner"), hostAuth(cfg.Name, "srk"))
		if err != nil {
			return nil, fmt.Errorf("xvtpm: platform keys: %w", err)
		}
		h.keys = keys
		h.guard = core.NewImprovedGuard(keys, core.NewPolicy())
	case ModeBaseline:
		h.guard = core.NewBaselineGuard()
	default:
		return nil, fmt.Errorf("xvtpm: unknown mode %d", cfg.Mode)
	}

	dom0, err := hv.Domain(xen.Dom0)
	if err != nil {
		return nil, err
	}
	var mgrSeed []byte
	if cfg.Seed != nil {
		mgrSeed = append(append([]byte(nil), cfg.Seed...), []byte("|mgr|"+cfg.Name)...)
	}
	h.Manager = vtpm.NewManager(hv, h.Store, xen.NewArena(dom0), h.guard, vtpm.ManagerConfig{
		RSABits:          cfg.RSABits,
		Seed:             mgrSeed,
		EKPoolSize:       cfg.EKPoolSize,
		SignWorkers:      cfg.SignWorkers,
		SignBatchWindow:  cfg.SignBatchWindow,
		SignBatchMax:     cfg.SignBatchMax,
		Checkpoint:       cfg.Checkpoint,
		MaxDirtyCommands: cfg.MaxDirtyCommands,
		MaxDirtyInterval: cfg.MaxDirtyInterval,
		Retry:            cfg.Retry,
		TraceDepth:       cfg.TraceDepth,
		TraceSampleRate:  cfg.TraceSampleRate,
		TraceSeed:        cfg.TraceSeed,
	})
	h.Backend = vtpm.NewBackend(hv, xs, h.Manager)
	h.Backend.SetTransportMetrics(h.transport)
	return h, nil
}

// TransportMetrics returns the host's guest-transport instruments (round-trip
// latency and ring batch size), for tooling like vtpmctl top.
func (h *Host) TransportMetrics() *vtpm.TransportMetrics { return h.transport }

// LogStore returns the log-structured store backing this host, unwrapping
// fault-injection layers, or false when the host persists through a flat
// backend.
func (h *Host) LogStore() (*logstore.Store, bool) {
	return vtpm.UnwrapLogStore(h.Store)
}

// RegisterMetrics exposes the host's instruments — the manager's
// dispatch/checkpoint/health metrics, the store's group-commit counters
// when the log backend is in use, and, in improved mode, the guard's
// admission metrics — in reg for /metrics exposition.
func (h *Host) RegisterMetrics(reg *metrics.Registry) error {
	if err := h.Manager.RegisterMetrics(reg); err != nil {
		return err
	}
	if err := h.transport.Register(reg); err != nil {
		return err
	}
	if ls, ok := h.LogStore(); ok {
		if err := ls.RegisterMetrics(reg); err != nil {
			return err
		}
	}
	if ig, ok := h.ImprovedGuard(); ok {
		return ig.RegisterMetrics(reg)
	}
	return nil
}

// Close releases background resources, draining pending write-behind
// checkpoints first. A non-nil error means some instance's dirty state
// could not be persisted (the aggregate names each one, joined with
// errors.Join) — shutdown completed, but not silently.
func (h *Host) Close() error { return h.Manager.Close() }

// HostStats is a point-in-time operational snapshot for tooling.
type HostStats struct {
	Mode          Mode
	Guests        int
	Instances     int
	HWCommands    uint64 // commands the hardware TPM has executed
	AuditRecords  int    // improved mode only
	AuditVerifies bool   // improved mode only
	StoredBlobs   int
}

// Stats snapshots the host's operational state.
func (h *Host) Stats() HostStats {
	s := HostStats{
		Mode:       h.Mode,
		Instances:  len(h.Manager.Instances()),
		HWCommands: h.HWTPM.CommandCount(),
	}
	h.mu.Lock()
	s.Guests = len(h.guests)
	h.mu.Unlock()
	if names, err := h.Store.List(); err == nil {
		s.StoredBlobs = len(names)
	}
	if ig, ok := h.ImprovedGuard(); ok {
		s.AuditRecords = ig.Audit().Len()
		s.AuditVerifies = ig.Audit().Verify() == nil
	}
	return s
}

// GuestConfig describes a guest to create.
type GuestConfig struct {
	Name    string
	Kernel  []byte
	Initrd  []byte
	Cmdline string
	Pages   int
	// Profile selects the guest vTPM's command profile. AnyProfile (the
	// zero value) takes the host's default (HostConfig.Profile, itself
	// defaulting to 1.2), so existing callers keep getting 1.2 guests.
	// Guests of both profiles coexist under one host.
	Profile tpm.Profile
}

// CreateGuest builds a domain, provisions a vTPM instance bound to its
// measured launch identity, grants it the default guest policy (improved
// mode), and completes the split-driver handshake. The returned guest's TPM
// client exercises the full command path.
func (h *Host) CreateGuest(cfg GuestConfig) (*Guest, error) {
	if len(cfg.Kernel) == 0 {
		return nil, errors.New("xvtpm: guest needs a kernel to be measured")
	}
	dom, err := h.HV.CreateDomain(xen.DomainConfig{
		Name: cfg.Name, Kernel: cfg.Kernel, Initrd: cfg.Initrd, Cmdline: cfg.Cmdline, Pages: cfg.Pages,
	})
	if err != nil {
		return nil, err
	}
	profile := cfg.Profile
	if profile == tpm.AnyProfile {
		profile = h.profile // still AnyProfile when unset; manager picks 1.2
	}
	inst, err := h.Manager.CreateInstanceProfile(profile)
	if err != nil {
		return nil, err
	}
	return h.attachGuest(dom, inst)
}

// attachGuest binds an existing instance to a domain and connects the
// device. Shared by CreateGuest and migration receive.
func (h *Host) attachGuest(dom *xen.Domain, inst vtpm.InstanceID) (*Guest, error) {
	// The domain builder pre-creates the guest's XenStore home directory
	// and hands it over, as xend does.
	base := fmt.Sprintf("/local/domain/%d", dom.ID())
	if err := h.XS.Write(xen.Dom0, xenstore.NoTxn, base+"/name", []byte(dom.Name())); err != nil {
		return nil, err
	}
	if err := h.XS.SetPerms(xen.Dom0, xenstore.NoTxn, base, xenstore.Perms{
		Owner:   dom.ID(),
		Default: xenstore.PermNone,
	}); err != nil {
		return nil, err
	}
	if err := h.Manager.BindInstance(inst, dom); err != nil {
		return nil, err
	}
	if ig, ok := h.ImprovedGuard(); ok {
		ig.Policy().Append(core.DefaultGuestPolicy(dom.Launch(), inst)...)
	}
	codec, err := h.Manager.EncoderFor(inst)
	if err != nil {
		return nil, err
	}
	fe := vtpm.NewFrontendCfg(h.HV, h.XS, dom, codec, vtpm.FrontendConfig{
		PipelineDepth: h.pipeDepth,
		Metrics:       h.transport,
	})
	if err := fe.Setup(); err != nil {
		return nil, err
	}
	if err := h.Backend.AttachDevice(dom.ID()); err != nil {
		return nil, err
	}
	if err := fe.WaitConnected(); err != nil {
		return nil, err
	}
	info, err := h.Manager.InstanceInfo(inst)
	if err != nil {
		return nil, err
	}
	g := &Guest{
		Name:     dom.Name(),
		Dom:      dom,
		Instance: inst,
		Frontend: fe,
		Profile:  info.Profile,
		host:     h,
	}
	// The frontend transport is profile-blind; the client speaking through
	// it must match the instance's engine.
	if info.Profile == tpm.Profile20 {
		g.TPM2 = tpm.NewClient2(fe, nil)
	} else {
		g.TPM = tpm.NewClient(fe, nil)
	}
	h.mu.Lock()
	h.guests[dom.ID()] = g
	h.mu.Unlock()
	return g, nil
}

// DestroyGuest tears a guest down: device, instance and domain.
func (h *Host) DestroyGuest(g *Guest) error {
	g.Frontend.Close()
	h.Backend.DetachDevice(g.Dom.ID()) //nolint:errcheck // may already be closed
	if err := h.Manager.UnbindInstance(g.Instance); err != nil && !errors.Is(err, vtpm.ErrUnbound) {
		return err
	}
	if err := h.Manager.DestroyInstance(g.Instance); err != nil {
		return err
	}
	h.mu.Lock()
	delete(h.guests, g.Dom.ID())
	h.mu.Unlock()
	if err := h.HV.DestroyDomain(xen.Dom0, g.Dom.ID()); err != nil {
		return err
	}
	h.XS.Remove(xen.Dom0, xenstore.NoTxn, fmt.Sprintf("/local/domain/%d", g.Dom.ID())) //nolint:errcheck // best effort
	return nil
}

// Guests returns the host's live guests.
func (h *Host) Guests() []*Guest {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]*Guest, 0, len(h.guests))
	for _, g := range h.guests {
		out = append(out, g)
	}
	return out
}

// LoadSlot is one dedicated open-loop execution lane for the load
// harness: a synthetic domain with a bound vTPM instance whose only
// client is a manager load session (see vtpm.LoadSession for why it must
// be the only one — the improved channel's anti-replay window is per
// instance). The matching profile's client speaks over the session, so
// auth-heavy ops (Seal, Quote) work exactly as they do for real guests.
type LoadSlot struct {
	Dom      *xen.Domain
	Instance vtpm.InstanceID
	Session  *vtpm.LoadSession
	Profile  tpm.Profile
	TPM      *tpm.Client  // 1.2 slots
	TPM2     *tpm.Client2 // 2.0 slots
}

// OpenLoadSlot builds a load slot: domain created and measured, instance
// bound to its launch identity, default guest policy granted (improved
// mode), synthetic session admitted. No ring, frontend or backend — the
// slot loads the guard + dispatch + engine path itself.
func (h *Host) OpenLoadSlot(name string, profile tpm.Profile) (*LoadSlot, error) {
	dom, err := h.HV.CreateDomain(xen.DomainConfig{Name: name, Kernel: []byte("loadgen-" + name)})
	if err != nil {
		return nil, err
	}
	if profile == tpm.AnyProfile {
		profile = h.profile
	}
	inst, err := h.Manager.CreateInstanceProfile(profile)
	if err != nil {
		return nil, err
	}
	if err := h.Manager.BindInstance(inst, dom); err != nil {
		return nil, err
	}
	if ig, ok := h.ImprovedGuard(); ok {
		ig.Policy().Append(core.DefaultGuestPolicy(dom.Launch(), inst)...)
	}
	sess, err := h.Manager.OpenLoadSession(inst)
	if err != nil {
		return nil, err
	}
	info, err := h.Manager.InstanceInfo(inst)
	if err != nil {
		return nil, err
	}
	slot := &LoadSlot{Dom: dom, Instance: inst, Session: sess, Profile: info.Profile}
	if info.Profile == tpm.Profile20 {
		slot.TPM2 = tpm.NewClient2(sess, nil)
	} else {
		slot.TPM = tpm.NewClient(sess, nil)
	}
	return slot, nil
}

// CloseLoadSlot retires a load slot: session, instance and domain.
func (h *Host) CloseLoadSlot(s *LoadSlot) error {
	s.Session.Close()
	if err := h.Manager.UnbindInstance(s.Instance); err != nil && !errors.Is(err, vtpm.ErrUnbound) {
		return err
	}
	if err := h.Manager.DestroyInstance(s.Instance); err != nil {
		return err
	}
	return h.HV.DestroyDomain(xen.Dom0, s.Dom.ID())
}

// suspendedGuest is a locally parked guest: its domain image plus its
// still-registered (unbound) vTPM instance.
type suspendedGuest struct {
	img  *xen.DomainImage
	inst vtpm.InstanceID
}

// SuspendGuest parks a guest on this host: the device is detached, the
// domain saved and destroyed, and the vTPM instance kept registered
// (checkpointed) for resume. Returns the handle ResumeGuest takes.
func (h *Host) SuspendGuest(g *Guest) (string, error) {
	g.Frontend.Close()
	if err := h.Backend.DetachDevice(g.Dom.ID()); err != nil && !errors.Is(err, vtpm.ErrNotConnected) {
		return "", err
	}
	if err := h.Manager.UnbindInstance(g.Instance); err != nil {
		return "", err
	}
	if err := h.Manager.Checkpoint(g.Instance); err != nil {
		return "", err
	}
	img, err := h.HV.SaveDomain(xen.Dom0, g.Dom.ID())
	if err != nil {
		return "", err
	}
	if err := h.HV.DestroyDomain(xen.Dom0, g.Dom.ID()); err != nil {
		return "", err
	}
	// Clear the dead domain's XenStore subtree, as the toolstack does;
	// resume creates a fresh one under the new domain ID.
	h.XS.Remove(xen.Dom0, xenstore.NoTxn, fmt.Sprintf("/local/domain/%d", g.Dom.ID())) //nolint:errcheck // best effort
	h.mu.Lock()
	if h.suspended == nil {
		h.suspended = make(map[string]*suspendedGuest)
	}
	handle := g.Name
	h.suspended[handle] = &suspendedGuest{img: img, inst: g.Instance}
	delete(h.guests, g.Dom.ID())
	h.mu.Unlock()
	return handle, nil
}

// ResumeGuest revives a suspended guest: domain restored from its image,
// vTPM instance rebound, device reconnected.
func (h *Host) ResumeGuest(handle string) (*Guest, error) {
	h.mu.Lock()
	sg, ok := h.suspended[handle]
	if ok {
		delete(h.suspended, handle)
	}
	h.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("xvtpm: no suspended guest %q", handle)
	}
	dom, err := h.HV.RestoreDomain(xen.Dom0, sg.img)
	if err != nil {
		return nil, err
	}
	return h.attachGuest(dom, sg.inst)
}

// SendGuest drives the source side of live migration over conn: detach the
// device, suspend and save the domain, and ship domain plus vTPM state
// (guard-protected) to the peer. On success the source copies are destroyed.
// The trust-the-wire protocol driver: for verified or fenced migration use
// Migrate or internal/cluster.
func (h *Host) SendGuest(conn io.ReadWriter, g *Guest) error {
	domImg, err := h.BeginMigration(g)
	if err != nil {
		return err
	}
	if err := vtpm.SendMigration(conn, h.Manager, domImg, g.Instance); err != nil {
		return err
	}
	return h.FinishMigration(g)
}

// ReceiveGuest drives the destination side of live migration over conn and
// returns the resumed guest with its vTPM reconnected.
func (h *Host) ReceiveGuest(conn io.ReadWriter) (*Guest, error) {
	var migPub = h.guard.MigrationIdentity()
	domImg, inst, err := vtpm.ReceiveMigration(conn, h.Manager, migPub)
	if err != nil {
		return nil, err
	}
	dom, err := h.HV.RestoreDomain(xen.Dom0, domImg)
	if err != nil {
		return nil, err
	}
	return h.attachGuest(dom, inst)
}
