// Package vtpm implements the Xen vTPM subsystem the paper improves: a
// manager running in the privileged domain that creates and persists
// per-guest software TPM instances, and a split front/backend driver pair
// that carries guest TPM commands over a grant-mapped shared ring.
//
// The architecture follows the deployed Xen vTPM design (Berger et al.,
// USENIX Security 2006, as shipped with Xen 3.x): one full TPM 1.2 engine
// per guest, a manager owning instance state and its persistence, the
// hardware TPM anchoring the storage hierarchy, and XenStore carrying the
// device handshake.
//
// Access control is deliberately a seam, not a baked-in policy: every
// guest-originated command and every state movement passes through a Guard.
// The baseline Guard (internal/core.BaselineGuard) reproduces stock Xen
// behaviour — instance-to-domain-ID mapping only, plaintext state. The
// improved Guard (internal/core.ImprovedGuard) is the paper's contribution.
package vtpm

import (
	"errors"
	"sort"
	"sync"
)

// ErrNoState is returned when a named state blob does not exist.
var ErrNoState = errors.New("vtpm: no such state blob")

// Store is the manager's persistence backend — the stand-in for
// /var/lib/xen/vtpm on a real dom0. The attack model gives a dom0 attacker
// read access to it, which is why the improved design never writes
// plaintext into it.
type Store interface {
	// Put writes (or replaces) a named blob.
	Put(name string, data []byte) error
	// Get returns a copy of a named blob.
	Get(name string) ([]byte, error)
	// Delete removes a named blob; deleting a missing blob is an error.
	Delete(name string) error
	// List returns all blob names, sorted.
	List() ([]string, error)
}

// MemStore is an in-memory Store.
type MemStore struct {
	mu    sync.Mutex
	blobs map[string][]byte
}

// NewMemStore creates an empty store.
func NewMemStore() *MemStore {
	return &MemStore{blobs: make(map[string][]byte)}
}

// Put implements Store.
func (s *MemStore) Put(name string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.blobs[name] = append([]byte(nil), data...)
	return nil
}

// Get implements Store.
func (s *MemStore) Get(name string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.blobs[name]
	if !ok {
		return nil, ErrNoState
	}
	return append([]byte(nil), b...), nil
}

// Delete implements Store.
func (s *MemStore) Delete(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.blobs[name]; !ok {
		return ErrNoState
	}
	delete(s.blobs, name)
	return nil
}

// List implements Store.
func (s *MemStore) List() ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.blobs))
	for n := range s.blobs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}
