package vtpm

import (
	"errors"
	"strconv"
	"sync"
	"testing"

	"xvtpm/internal/tpm"
	"xvtpm/internal/xen"
	"xvtpm/internal/xenstore"
)

// connectDevice wires one guest end to end and returns its parts.
func connectDevice(t *testing.T, guard Guard) (*xen.Hypervisor, *Manager, *Backend, *xen.Domain, *Frontend, *tpm.Client) {
	t.Helper()
	hv, xs, mgr, be := newTestRig(t, guard)
	dom := mkGuestDom(t, hv, xs, "g")
	id, err := mgr.CreateInstance()
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.BindInstance(id, dom); err != nil {
		t.Fatal(err)
	}
	fe := NewFrontend(hv, xs, dom, PlainCodec{})
	if err := fe.Setup(); err != nil {
		t.Fatal(err)
	}
	if err := be.AttachDevice(dom.ID()); err != nil {
		t.Fatal(err)
	}
	if err := fe.WaitConnected(); err != nil {
		t.Fatal(err)
	}
	return hv, mgr, be, dom, fe, tpm.NewClient(fe, nil)
}

func TestDetachWhileFrontendActive(t *testing.T) {
	_, _, be, dom, fe, cli := connectDevice(t, &passGuard{})
	if err := cli.SelfTestFull(); err != nil {
		t.Fatal(err)
	}
	// Detach concurrently with a stream of commands: the frontend must get
	// errors, never hang, never panic.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			if _, err := cli.GetRandom(8); err != nil {
				return // expected once detach lands
			}
		}
	}()
	if err := be.DetachDevice(dom.ID()); err != nil {
		t.Fatalf("DetachDevice: %v", err)
	}
	wg.Wait()
	if _, err := cli.GetRandom(8); err == nil {
		t.Fatal("detached device answered")
	}
	_ = fe
}

func TestFrontendCloseStopsBackendLoop(t *testing.T) {
	_, _, be, dom, fe, cli := connectDevice(t, &passGuard{})
	if err := cli.SelfTestFull(); err != nil {
		t.Fatal(err)
	}
	fe.Close()
	// Backend's serve loop exits (ring closed); detach completes cleanly.
	if err := be.DetachDevice(dom.ID()); err != nil {
		t.Fatalf("DetachDevice after frontend close: %v", err)
	}
}

func TestDoubleAttachRejected(t *testing.T) {
	hv, xs, mgr, be := newTestRig(t, &passGuard{})
	dom := mkGuestDom(t, hv, xs, "g")
	id, _ := mgr.CreateInstance()
	mgr.BindInstance(id, dom)
	fe := NewFrontend(hv, xs, dom, PlainCodec{})
	if err := fe.Setup(); err != nil {
		t.Fatal(err)
	}
	if err := be.AttachDevice(dom.ID()); err != nil {
		t.Fatal(err)
	}
	// A second attach re-reads the handshake but cannot bind the already-
	// bound event channel.
	if err := be.AttachDevice(dom.ID()); err == nil {
		t.Fatal("double attach accepted")
	}
}

func TestAttachRejectsCorruptHandshake(t *testing.T) {
	hv, xs, mgr, be := newTestRig(t, &passGuard{})
	dom := mkGuestDom(t, hv, xs, "g")
	id, _ := mgr.CreateInstance()
	mgr.BindInstance(id, dom)
	dir := frontPath(dom.ID())
	// State says Initialised but the keys are garbage.
	xs.Write(dom.ID(), xenstore.NoTxn, dir+"/state", []byte(strconv.Itoa(XenbusInitialised)))
	xs.Write(dom.ID(), xenstore.NoTxn, dir+"/ring-ref-count", []byte("2"))
	xs.Write(dom.ID(), xenstore.NoTxn, dir+"/ring-ref-0", []byte("999"))
	xs.Write(dom.ID(), xenstore.NoTxn, dir+"/ring-ref-1", []byte("1000"))
	xs.Write(dom.ID(), xenstore.NoTxn, dir+"/event-channel", []byte("77"))
	if err := be.AttachDevice(dom.ID()); !errors.Is(err, ErrHandshake) {
		t.Fatalf("err = %v, want ErrHandshake", err)
	}
	// Non-numeric values are also refused.
	xs.Write(dom.ID(), xenstore.NoTxn, dir+"/ring-ref-count", []byte("lots"))
	if err := be.AttachDevice(dom.ID()); !errors.Is(err, ErrHandshake) {
		t.Fatalf("err = %v, want ErrHandshake", err)
	}
}

func TestAttachRequiresInitialisedState(t *testing.T) {
	hv, xs, mgr, be := newTestRig(t, &passGuard{})
	dom := mkGuestDom(t, hv, xs, "g")
	id, _ := mgr.CreateInstance()
	mgr.BindInstance(id, dom)
	// No frontend setup at all.
	if err := be.AttachDevice(dom.ID()); !errors.Is(err, ErrHandshake) {
		t.Fatalf("err = %v", err)
	}
}

func TestGuestDestroyedWhileConnected(t *testing.T) {
	hv, _, be, dom, _, cli := connectDevice(t, &passGuard{})
	if err := cli.SelfTestFull(); err != nil {
		t.Fatal(err)
	}
	// The hypervisor tears the domain down (crash): event channels close,
	// the backend loop exits, and detach still cleans up without hanging.
	if err := hv.DestroyDomain(xen.Dom0, dom.ID()); err != nil {
		t.Fatal(err)
	}
	if err := be.DetachDevice(dom.ID()); err != nil {
		t.Fatalf("DetachDevice after domain destroy: %v", err)
	}
	if _, err := cli.GetRandom(4); err == nil {
		t.Fatal("TPM of a destroyed domain answered")
	}
}

func TestConcurrentTransmitSerialized(t *testing.T) {
	_, _, _, _, _, cli := connectDevice(t, &passGuard{})
	// The frontend serializes commands; concurrent users must all succeed.
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				if _, err := cli.GetRandom(8); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestWatchAndServeAutoAttaches(t *testing.T) {
	hv, xs, mgr, be := newTestRig(t, &passGuard{})
	stop := make(chan struct{})
	defer close(stop)
	watchErr := make(chan error, 1)
	go func() { watchErr <- be.WatchAndServe(stop, nil) }()

	// Bring up two guests AFTER the watcher started: each frontend setup
	// must be picked up without an explicit AttachDevice call.
	for i, name := range []string{"auto-a", "auto-b"} {
		dom := mkGuestDom(t, hv, xs, name)
		id, err := mgr.CreateInstance()
		if err != nil {
			t.Fatal(err)
		}
		if err := mgr.BindInstance(id, dom); err != nil {
			t.Fatal(err)
		}
		fe := NewFrontend(hv, xs, dom, PlainCodec{})
		if err := fe.Setup(); err != nil {
			t.Fatal(err)
		}
		if err := fe.WaitConnected(); err != nil {
			t.Fatalf("guest %d not auto-attached: %v", i, err)
		}
		cli := tpm.NewClient(fe, nil)
		if _, err := cli.GetRandom(8); err != nil {
			t.Fatalf("guest %d traffic: %v", i, err)
		}
	}
	select {
	case err := <-watchErr:
		t.Fatalf("watcher exited early: %v", err)
	default:
	}
}

func TestSetupFailsWhenGuestOutOfMemory(t *testing.T) {
	hv, xs, mgr, _ := newTestRig(t, &passGuard{})
	dom, err := hv.CreateDomain(xen.DomainConfig{Name: "tiny", Kernel: []byte("k"), Pages: 2})
	if err != nil {
		t.Fatal(err)
	}
	base := "/local/domain/" + itoa(dom.ID())
	xs.Write(xen.Dom0, xenstore.NoTxn, base+"/name", []byte("tiny"))
	xs.SetPerms(xen.Dom0, xenstore.NoTxn, base, xenstore.Perms{Owner: dom.ID()})
	id, _ := mgr.CreateInstance()
	mgr.BindInstance(id, dom)
	fe := NewFrontend(hv, xs, dom, PlainCodec{})
	if err := fe.Setup(); !errors.Is(err, ErrHandshake) {
		t.Fatalf("err = %v, want ErrHandshake (ring larger than guest memory)", err)
	}
}
