package vtpm

import (
	"errors"
	"testing"

	"xvtpm/internal/tpm"
)

func TestLoadSessionDispatchPath(t *testing.T) {
	hv, xs, mgr, _ := newTestRig(t, &passGuard{})
	dom := mkGuestDom(t, hv, xs, "loadslot")
	inst, err := mgr.CreateInstance()
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.BindInstance(inst, dom); err != nil {
		t.Fatal(err)
	}
	sess, err := mgr.OpenLoadSession(inst)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if sess.Instance() != inst || sess.Domain() != dom.ID() {
		t.Fatalf("session identity wrong: %v/%v", sess.Instance(), sess.Domain())
	}

	// A full client rides the session as its transport: framing, auth
	// sessions and response checking all pass through Manager.Dispatch.
	cli := tpm.NewClient(sess, nil)
	if _, err := cli.GetRandom(16); err != nil {
		t.Fatalf("GetRandom over load session: %v", err)
	}
	var digest [20]byte
	digest[0] = 0xAB
	if _, err := cli.Extend(10, digest); err != nil {
		t.Fatalf("Extend over load session: %v", err)
	}

	open, cmds := mgr.LoadSessionStats()
	if open != 1 {
		t.Fatalf("open sessions %d, want 1", open)
	}
	if cmds < 2 {
		t.Fatalf("load commands %d, want >= 2", cmds)
	}
	if st := mgr.DispatchStats(); st.Commands < 2 {
		t.Fatalf("dispatch path not exercised: %+v", st)
	}

	sess.Close()
	sess.Close() // idempotent
	if open, _ := mgr.LoadSessionStats(); open != 0 {
		t.Fatalf("open sessions %d after close", open)
	}
	if _, err := sess.Transmit([]byte{0, 0}); !errors.Is(err, ErrBadChannel) {
		t.Fatalf("closed session transmit: %v", err)
	}
}

func TestLoadSessionRequiresBoundInstance(t *testing.T) {
	_, _, mgr, _ := newTestRig(t, &passGuard{})
	inst, err := mgr.CreateInstance()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.OpenLoadSession(inst); err == nil {
		t.Fatal("unbound instance admitted a load session")
	}
}
