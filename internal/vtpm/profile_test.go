package vtpm

import (
	"errors"
	"testing"

	"xvtpm/internal/tpm"
	"xvtpm/internal/xen"
)

// newProfileMgr builds a manager for the profile tests with full control of
// the ManagerConfig (the pinning tests set cfg.Profile).
func newProfileMgr(t *testing.T, cfg ManagerConfig) *Manager {
	t.Helper()
	hv := xen.NewHypervisor(xen.DomainConfig{Name: "Domain-0", Pages: 2048})
	dom0, err := hv.Domain(xen.Dom0)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.RSABits == 0 {
		cfg.RSABits = testBits
	}
	if cfg.Seed == nil {
		cfg.Seed = []byte("profile-test")
	}
	mgr := NewManager(hv, NewMemStore(), xen.NewArena(dom0), &passGuard{}, cfg)
	t.Cleanup(func() {
		if err := mgr.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return mgr
}

// TestCrossProfileImportRejected covers the two cross-profile import
// refusals: a destination pinned to one profile refuses images of the other,
// and an image whose declared profile disagrees with the engine state it
// carries is refused even on an unpinned destination. Both must surface
// ErrProfileMismatch — distinct from ErrBadImage — and commit nothing.
func TestCrossProfileImportRejected(t *testing.T) {
	src := newProfileMgr(t, ManagerConfig{})
	id, err := src.CreateInstanceProfile(tpm.Profile20)
	if err != nil {
		t.Fatal(err)
	}
	img, err := src.ExportInstance(id, nil)
	if err != nil {
		t.Fatal(err)
	}
	if img.Profile != tpm.Profile20 {
		t.Fatalf("exported image declares %s, want 2.0", img.Profile)
	}

	// Honest import on an unpinned destination works and keeps the profile.
	open := newProfileMgr(t, ManagerConfig{})
	got, err := open.ImportInstance(img)
	if err != nil {
		t.Fatalf("honest 2.0 import on unpinned manager: %v", err)
	}
	info, err := open.InstanceInfo(got)
	if err != nil {
		t.Fatal(err)
	}
	if info.Profile != tpm.Profile20 {
		t.Fatalf("imported instance runs %s, want 2.0", info.Profile)
	}

	// A 1.2-pinned destination refuses the 2.0 image.
	pinned12 := newProfileMgr(t, ManagerConfig{Profile: tpm.Profile12})
	if _, err := pinned12.ImportInstance(img); !errors.Is(err, ErrProfileMismatch) {
		t.Fatalf("1.2-pinned import of 2.0 image: err = %v, want ErrProfileMismatch", err)
	}

	// A 2.0-pinned destination refuses a 1.2 image.
	id12, err := src.CreateInstanceProfile(tpm.Profile12)
	if err != nil {
		t.Fatal(err)
	}
	img12, err := src.ExportInstance(id12, nil)
	if err != nil {
		t.Fatal(err)
	}
	pinned20 := newProfileMgr(t, ManagerConfig{Profile: tpm.Profile20})
	if _, err := pinned20.ImportInstance(img12); !errors.Is(err, ErrProfileMismatch) {
		t.Fatalf("2.0-pinned import of 1.2 image: err = %v, want ErrProfileMismatch", err)
	}

	// An image lying about its profile (declares 1.2, carries 2.0 state) is
	// refused by the declared-vs-actual cross-check on any destination.
	lying := *img
	lying.Profile = tpm.Profile12
	if _, err := open.ImportInstance(&lying); !errors.Is(err, ErrProfileMismatch) {
		t.Fatalf("import of mislabeled image: err = %v, want ErrProfileMismatch", err)
	}
}

// TestCheckpointRestoreCrossProfileRejected covers the at-rest flavor of the
// same invariant: a checkpoint whose plaintext profile header disagrees with
// the engine state inside the guard envelope must not restore.
func TestCheckpointRestoreCrossProfileRejected(t *testing.T) {
	eng2, err := tpm.New2(tpm.Config{RSABits: testBits, Seed: []byte("xck")})
	if err != nil {
		t.Fatal(err)
	}
	blob := appendCheckpointHeader(nil, tpm.Profile12, 0)
	blob = append(blob, eng2.SaveState()...)
	profile, envelope, err := UnwrapCheckpoint(blob)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := restoreDeclaredEngine(profile, envelope); !errors.Is(err, ErrProfileMismatch) {
		t.Fatalf("restore of 2.0 state under 1.2 header: err = %v, want ErrProfileMismatch", err)
	}
}
