package vtpm

import (
	"bytes"
	"errors"
	"testing"
)

// The MemStore aliasing contract: no caller-held slice may alias the store's
// internal copy, in either direction. The revive and persist paths both
// reuse scratch buffers aggressively, so an aliasing store would let a later
// checkpoint silently rewrite bytes a revived engine is still reading.

func TestMemStorePutCopiesInput(t *testing.T) {
	s := NewMemStore()
	data := []byte("original")
	if err := s.Put("blob", data); err != nil {
		t.Fatal(err)
	}
	copy(data, "CLOBBER!")
	got, err := s.Get("blob")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("original")) {
		t.Fatalf("stored blob aliased the caller's buffer: %q", got)
	}
}

func TestMemStoreGetReturnsCopy(t *testing.T) {
	s := NewMemStore()
	if err := s.Put("blob", []byte("original")); err != nil {
		t.Fatal(err)
	}
	first, err := s.Get("blob")
	if err != nil {
		t.Fatal(err)
	}
	copy(first, "CLOBBER!")
	second, err := s.Get("blob")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(second, []byte("original")) {
		t.Fatalf("Get handed out the internal slice: %q", second)
	}
}

func TestMemStoreDeleteMissing(t *testing.T) {
	s := NewMemStore()
	if err := s.Delete("absent"); !errors.Is(err, ErrNoState) {
		t.Fatalf("Delete(absent) err = %v, want ErrNoState", err)
	}
	if _, err := s.Get("absent"); !errors.Is(err, ErrNoState) {
		t.Fatalf("Get(absent) err = %v, want ErrNoState", err)
	}
}

func TestMemStoreListSortedAndDetached(t *testing.T) {
	s := NewMemStore()
	for _, n := range []string{"c", "a", "b"} {
		if err := s.Put(n, []byte(n)); err != nil {
			t.Fatal(err)
		}
	}
	names, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 3 || names[0] != "a" || names[1] != "b" || names[2] != "c" {
		t.Fatalf("List = %v, want sorted [a b c]", names)
	}
	// Mutating the returned slice must not disturb the store.
	names[0] = "zzz"
	again, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if again[0] != "a" {
		t.Fatalf("List result aliased store state: %v", again)
	}
	if err := s.Delete("b"); err != nil {
		t.Fatal(err)
	}
	final, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(final) != 2 || final[0] != "a" || final[1] != "c" {
		t.Fatalf("List after delete = %v, want [a c]", final)
	}
}
