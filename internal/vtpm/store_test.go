package vtpm

import (
	"bytes"
	"errors"
	"testing"

	"xvtpm/internal/faults"
	"xvtpm/internal/store/logstore"
)

// Shared Store conformance suite. Every backend the manager can write
// through must honor the same contract:
//
//   - aliasing: no caller-held slice may alias the store's internal copy,
//     in either direction — the persist and revive paths reuse scratch
//     buffers aggressively, so an aliasing store would let a later
//     checkpoint silently rewrite bytes a revived engine is still reading;
//   - Delete and Get on a missing name fail with ErrNoState (errors.Is);
//   - List is sorted and detached from store state;
//   - Put on an existing name replaces the blob, including shrinking it.
//
// The suite runs against the flat MemStore, the log-structured store, and
// both again under a (quiet) faults.Store wrapper, which must be
// contract-transparent when no faults fire.

func storeBackends() []struct {
	name string
	mk   func() Store
} {
	logCfg := func() logstore.Config {
		// Tiny segments so the suite exercises rolling, with the manager's
		// missing-blob sentinel wired the way production wiring does it.
		return logstore.Config{SegmentSize: 1 << 10, NotFound: ErrNoState}
	}
	return []struct {
		name string
		mk   func() Store
	}{
		{"mem", func() Store { return NewMemStore() }},
		{"log", func() Store { return logstore.New(logCfg()) }},
		{"faults/mem", func() Store { return faults.NewStore(NewMemStore(), faults.NewInjector(1)) }},
		{"faults/log", func() Store { return faults.NewStore(logstore.New(logCfg()), faults.NewInjector(1)) }},
	}
}

func TestStoreConformance(t *testing.T) {
	for _, be := range storeBackends() {
		be := be
		t.Run(be.name, func(t *testing.T) {
			t.Run("PutCopiesInput", func(t *testing.T) {
				s := be.mk()
				data := []byte("original")
				if err := s.Put("blob", data); err != nil {
					t.Fatal(err)
				}
				copy(data, "CLOBBER!")
				got, err := s.Get("blob")
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, []byte("original")) {
					t.Fatalf("stored blob aliased the caller's buffer: %q", got)
				}
			})
			t.Run("GetReturnsCopy", func(t *testing.T) {
				s := be.mk()
				if err := s.Put("blob", []byte("original")); err != nil {
					t.Fatal(err)
				}
				first, err := s.Get("blob")
				if err != nil {
					t.Fatal(err)
				}
				copy(first, "CLOBBER!")
				second, err := s.Get("blob")
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(second, []byte("original")) {
					t.Fatalf("Get handed out the internal slice: %q", second)
				}
			})
			t.Run("MissingName", func(t *testing.T) {
				s := be.mk()
				if err := s.Delete("absent"); !errors.Is(err, ErrNoState) {
					t.Fatalf("Delete(absent) err = %v, want ErrNoState", err)
				}
				if _, err := s.Get("absent"); !errors.Is(err, ErrNoState) {
					t.Fatalf("Get(absent) err = %v, want ErrNoState", err)
				}
			})
			t.Run("PutReplace", func(t *testing.T) {
				s := be.mk()
				if err := s.Put("blob", bytes.Repeat([]byte{0xAA}, 512)); err != nil {
					t.Fatal(err)
				}
				if err := s.Put("blob", []byte("tiny")); err != nil {
					t.Fatal(err)
				}
				got, err := s.Get("blob")
				if err != nil {
					t.Fatal(err)
				}
				if string(got) != "tiny" {
					t.Fatalf("replace did not shrink: got %d bytes %q", len(got), got[:4])
				}
				names, err := s.List()
				if err != nil {
					t.Fatal(err)
				}
				if len(names) != 1 {
					t.Fatalf("replace duplicated the name: %v", names)
				}
			})
			t.Run("DeleteThenReput", func(t *testing.T) {
				s := be.mk()
				if err := s.Put("blob", []byte("v1")); err != nil {
					t.Fatal(err)
				}
				if err := s.Delete("blob"); err != nil {
					t.Fatal(err)
				}
				if _, err := s.Get("blob"); !errors.Is(err, ErrNoState) {
					t.Fatalf("Get after Delete = %v, want ErrNoState", err)
				}
				if err := s.Put("blob", []byte("v2")); err != nil {
					t.Fatal(err)
				}
				got, err := s.Get("blob")
				if err != nil || string(got) != "v2" {
					t.Fatalf("re-put after delete: %q err=%v", got, err)
				}
			})
			t.Run("ListSortedAndDetached", func(t *testing.T) {
				s := be.mk()
				for _, n := range []string{"c", "a", "b"} {
					if err := s.Put(n, []byte(n)); err != nil {
						t.Fatal(err)
					}
				}
				names, err := s.List()
				if err != nil {
					t.Fatal(err)
				}
				if len(names) != 3 || names[0] != "a" || names[1] != "b" || names[2] != "c" {
					t.Fatalf("List = %v, want sorted [a b c]", names)
				}
				// Mutating the returned slice must not disturb the store.
				names[0] = "zzz"
				again, err := s.List()
				if err != nil {
					t.Fatal(err)
				}
				if again[0] != "a" {
					t.Fatalf("List result aliased store state: %v", again)
				}
				if err := s.Delete("b"); err != nil {
					t.Fatal(err)
				}
				final, err := s.List()
				if err != nil {
					t.Fatal(err)
				}
				if len(final) != 2 || final[0] != "a" || final[1] != "c" {
					t.Fatalf("List after delete = %v, want [a c]", final)
				}
			})
		})
	}
}

// TestUnwrapLogStore covers the DebugReport plumbing: the log store must be
// found under fault-injection wrapping, and flat stacks must report none.
func TestUnwrapLogStore(t *testing.T) {
	ls := logstore.New(logstore.Config{NotFound: ErrNoState})
	wrapped := faults.NewStore(ls, faults.NewInjector(1))
	if got, ok := UnwrapLogStore(wrapped); !ok || got != ls {
		t.Fatalf("UnwrapLogStore(faults(log)) = %v, %v", got, ok)
	}
	if got, ok := UnwrapLogStore(ls); !ok || got != ls {
		t.Fatalf("UnwrapLogStore(log) = %v, %v", got, ok)
	}
	if _, ok := UnwrapLogStore(NewMemStore()); ok {
		t.Fatal("UnwrapLogStore(mem) found a log store")
	}
	if _, ok := UnwrapLogStore(faults.NewStore(NewMemStore(), faults.NewInjector(1))); ok {
		t.Fatal("UnwrapLogStore(faults(mem)) found a log store")
	}
}
