package vtpm

import (
	"crypto/rsa"
	"errors"

	"xvtpm/internal/tpm"
	"xvtpm/internal/xen"
)

// Access-control errors a Guard returns. The manager converts them into
// refused commands; the attack harness asserts on them.
var (
	ErrDenied      = errors.New("vtpm: command denied by access control")
	ErrBadChannel  = errors.New("vtpm: channel authentication failed")
	ErrReplay      = errors.New("vtpm: replayed or out-of-window sequence number")
	ErrNotBound    = errors.New("vtpm: instance not bound to this identity")
	ErrStateSealed = errors.New("vtpm: state envelope cannot be opened")
	ErrThrottled   = errors.New("vtpm: instance command rate limit exceeded")
)

// InstanceInfo is the identity-relevant metadata of one vTPM instance,
// passed to every Guard decision.
type InstanceInfo struct {
	ID InstanceID
	// BoundDom is the domain the instance is currently attached to. Domain
	// IDs are host-local and reused — binding to them alone is the
	// baseline's weakness.
	BoundDom xen.DomID
	// BoundLaunch is the measured launch identity of the guest the instance
	// was created for. The improved design keys access to this, not to the
	// domain ID.
	BoundLaunch xen.LaunchDigest
	// Profile is the command profile the instance's engine speaks (1.2 or
	// 2.0). Guards key admission decisions on it so a 1.2 ordinal and a 2.0
	// command code with the same numeric value are never conflated.
	Profile tpm.Profile
	// Epoch is the instance's ownership generation in a federated cluster:
	// it is bumped on every ownership transition (migration, evacuation,
	// rollback) by the placement directory and travels with every checkpoint
	// header and migration image, so a store or a directory can reject the
	// late writes of a fenced former owner. Zero on single-host managers
	// that never federate.
	Epoch uint64
}

// ResponseFinisher post-processes one response: encoding it for the wire and
// scrubbing any transient plaintext the exchange left behind.
type ResponseFinisher func(resp []byte) ([]byte, error)

// Guard is the access-control seam of the vTPM subsystem — the interface the
// paper's contribution implements. One Guard instance serves a whole host.
type Guard interface {
	// Name identifies the guard in reports ("baseline", "improved").
	Name() string

	// AdmitCommand authenticates and authorizes one guest-originated ring
	// payload for an instance. claimedFrom is the domain ID the delivering
	// code path claims the payload came from; a compromised backend can lie
	// about it, which is exactly the ring-spoofing attack. On success it
	// returns the bare TPM command to execute and a finisher for the
	// response.
	AdmitCommand(inst InstanceInfo, claimedFrom xen.DomID, fromLaunch xen.LaunchDigest, payload []byte) (cmd []byte, finish ResponseFinisher, err error)

	// EncoderFor returns the guest-side codec installed into a frontend at
	// domain build time. The builder runs in the trusted path, so handing
	// the guest its channel secret here models the measured-launch key
	// installation of the improved design.
	EncoderFor(inst InstanceInfo) (GuestCodec, error)

	// ProtectState transforms raw instance state for at-rest storage and
	// for the manager's in-memory mirror.
	ProtectState(inst InstanceInfo, state []byte) ([]byte, error)

	// RecoverState reverses ProtectState.
	RecoverState(inst InstanceInfo, blob []byte) ([]byte, error)

	// ExportState packages instance state for migration to a host whose
	// hardware-TPM endorsement key is destEK.
	ExportState(inst InstanceInfo, state []byte, destEK *rsa.PublicKey) ([]byte, error)

	// ImportState unpacks a migration envelope on the destination host.
	ImportState(blob []byte) ([]byte, error)

	// MigrationIdentity is the public key a source host encrypts migration
	// envelopes to — the destination's platform bind key, whose private
	// half lives wrapped under the hardware TPM. Nil means the guard does
	// not protect migration traffic (the baseline).
	MigrationIdentity() *rsa.PublicKey

	// RetainsPlaintext reports whether the manager should leave exchange
	// plaintext buffers in place after a command completes (the baseline's
	// sloppy-but-faithful behaviour) or scrub them immediately.
	RetainsPlaintext() bool
}

// StateProtectorAppend is an optional Guard extension: ProtectState building
// the blob into a caller-supplied buffer. The manager's checkpoint pipeline
// type-asserts for it so steady-state persists reuse one envelope buffer per
// instance instead of allocating per checkpoint; guards that don't implement
// it fall back to ProtectState.
type StateProtectorAppend interface {
	// ProtectStateAppend appends the protected form of state to dst and
	// returns the extended slice (dst is typically buf[:0] of a scratch
	// slice).
	ProtectStateAppend(inst InstanceInfo, dst, state []byte) ([]byte, error)
}

// GuestCodec is the frontend half of the command channel: it encodes
// outgoing TPM commands into ring payloads and decodes ring responses.
type GuestCodec interface {
	// EncodeRequest wraps one TPM command for the ring.
	EncodeRequest(cmd []byte) ([]byte, error)
	// DecodeResponse unwraps one ring response.
	DecodeResponse(payload []byte) ([]byte, error)
}

// AppendRequestEncoder is an optional GuestCodec extension: EncodeRequest
// appending into a caller-supplied buffer. The frontend type-asserts for it
// so it can reserve the ring framing tag byte up front and build the whole
// framed request in one reusable transmit buffer, with no per-command copy.
type AppendRequestEncoder interface {
	// EncodeRequestAppend appends the encoded form of cmd to dst and returns
	// the extended slice.
	EncodeRequestAppend(dst, cmd []byte) ([]byte, error)
}

// AppendResponseDecoder is an optional GuestCodec extension: DecodeResponse
// appending the plaintext into a caller-supplied buffer and returning the
// extended slice, so the lockstep frontend decodes into one reusable buffer
// per device.
type AppendResponseDecoder interface {
	DecodeResponseAppend(dst, payload []byte) ([]byte, error)
}

// SeqCodec is an optional GuestCodec extension for pipelined frontends. A
// codec that tags envelopes with sequence numbers cannot validate responses
// against "the last request sent" once several commands are in flight, so the
// pipelined path records each request's sequence number in its pending-table
// slot and asks the codec to check the response against exactly that value.
type SeqCodec interface {
	// EncodeRequestAppendSeq is EncodeRequestAppend also returning the
	// request's sequence tag.
	EncodeRequestAppendSeq(dst, cmd []byte) ([]byte, uint64, error)
	// DecodeResponseAppendSeq decodes a response that must carry sequence
	// tag seq, appending the plaintext to dst and returning the extended
	// slice.
	DecodeResponseAppendSeq(dst, payload []byte, seq uint64) ([]byte, error)
}

// PlainCodec passes commands through untouched — the baseline channel.
type PlainCodec struct{}

// EncodeRequest implements GuestCodec.
func (PlainCodec) EncodeRequest(cmd []byte) ([]byte, error) { return cmd, nil }

// EncodeRequestAppend implements AppendRequestEncoder.
func (PlainCodec) EncodeRequestAppend(dst, cmd []byte) ([]byte, error) {
	return append(dst, cmd...), nil
}

// DecodeResponse implements GuestCodec.
func (PlainCodec) DecodeResponse(p []byte) ([]byte, error) { return p, nil }

// DecodeResponseAppend implements AppendResponseDecoder.
func (PlainCodec) DecodeResponseAppend(dst, p []byte) ([]byte, error) {
	return append(dst, p...), nil
}

// EncodeRequestAppendSeq implements SeqCodec: plaintext frames carry no
// sequence tag, so every request is tagged 0.
func (PlainCodec) EncodeRequestAppendSeq(dst, cmd []byte) ([]byte, uint64, error) {
	return append(dst, cmd...), 0, nil
}

// DecodeResponseAppendSeq implements SeqCodec; untagged frames match any seq.
func (PlainCodec) DecodeResponseAppendSeq(dst, p []byte, _ uint64) ([]byte, error) {
	return append(dst, p...), nil
}
