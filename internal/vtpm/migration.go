package vtpm

import (
	"crypto/rsa"
	"errors"
	"fmt"
	"io"

	"xvtpm/internal/tpm"
	"xvtpm/internal/xen"
)

// Migration errors.
var (
	ErrStillBound = errors.New("vtpm: instance must be unbound before export")
	ErrBadImage   = errors.New("vtpm: malformed migration image")
)

// InstanceImage is the unit of vTPM migration: the instance's identity
// binding, its declared command profile, and its state envelope as produced
// by the guard's ExportState. For the baseline guard the envelope is
// plaintext TPM state; for the improved guard it is encrypted to the
// destination host. The profile travels in plaintext — the destination must
// reject a cross-profile import before it commits to reviving anything, and
// the restored engine's own state magic is cross-checked against the
// declaration so a tampered tag cannot smuggle state across profiles.
type InstanceImage struct {
	Launch  xen.LaunchDigest
	Profile tpm.Profile
	// Epoch is the ownership generation the instance travels at. The export
	// copies the source instance's current epoch; a federated handoff
	// overwrites it with the epoch the placement directory assigned to the
	// move, so the destination's first checkpoint already carries the fenced
	// generation.
	Epoch         uint64
	StateEnvelope []byte
}

// ExportInstance packages an instance for migration to a host whose
// hardware-TPM endorsement key is destEK (nil for guards that do not protect
// the transfer). The instance must be unbound; it stays registered until the
// caller destroys it after a successful transfer.
func (m *Manager) ExportInstance(id InstanceID, destEK *rsa.PublicKey) (*InstanceImage, error) {
	inst, err := m.lookup(id)
	if err != nil {
		return nil, err
	}
	// Flush barrier: drain pending write-behind checkpoints so the local
	// store agrees with the state about to travel. The export itself then
	// snapshots the engine directly, so the image always carries the latest
	// mutation regardless of policy.
	if err := m.flushCheckpoints(inst); err != nil {
		return nil, err
	}
	inst.mu.Lock()
	defer inst.mu.Unlock()
	if inst.info.BoundDom != 0 {
		return nil, fmt.Errorf("%w: instance %d bound to dom%d", ErrStillBound, id, inst.info.BoundDom)
	}
	state := inst.eng.SaveState()
	env, err := m.guard.ExportState(inst.info, state, destEK)
	if err != nil {
		return nil, err
	}
	return &InstanceImage{
		Launch:        inst.info.BoundLaunch,
		Profile:       inst.info.Profile,
		Epoch:         inst.info.Epoch,
		StateEnvelope: env,
	}, nil
}

// ImportInstance revives a migrated instance on this host, returning its new
// (host-local) instance ID. The launch identity and command profile travel
// with the image. Cross-profile imports fail with ErrProfileMismatch before
// any state is committed: a destination manager pinned to one profile
// refuses images of the other, and an image whose declared profile disagrees
// with the engine state it actually carries is refused on either manager.
func (m *Manager) ImportInstance(img *InstanceImage) (InstanceID, error) {
	declared := img.Profile
	if declared == tpm.AnyProfile {
		declared = tpm.Profile12 // image from a pre-profile source
	}
	if m.cfg.Profile != tpm.AnyProfile && declared != m.cfg.Profile {
		return 0, fmt.Errorf("%w: image is %s, this manager accepts only %s",
			ErrProfileMismatch, declared, m.cfg.Profile)
	}
	state, err := m.guard.ImportState(img.StateEnvelope)
	if err != nil {
		return 0, err
	}
	eng, err := restoreDeclaredEngine(declared, state)
	if err != nil {
		if errors.Is(err, ErrProfileMismatch) {
			return 0, err
		}
		return 0, fmt.Errorf("%w: %v", ErrBadImage, err)
	}
	m.regMu.Lock()
	id := m.nextID
	m.nextID++
	inst := m.newInstance(InstanceInfo{ID: id, BoundLaunch: img.Launch, Profile: declared, Epoch: img.Epoch}, eng)
	m.instances[id] = inst
	m.regMu.Unlock()
	if err := m.checkpointInstance(inst, true); err != nil {
		return 0, err
	}
	return id, nil
}

// Wire framing for the migration channel: magic, then length-prefixed
// messages. The channel is interceptable by design (the MigIntercept
// attacker sits on it); confidentiality and integrity are the guard's job,
// not the framing's.

// Deliberately shares no substring with tpm.StateMagic: the attack
// harness scans migration captures for plaintext state markers.
var migMagic = []byte("VMIG-PROTO1")

// writeMsg sends one length-prefixed message. Empty bodies send only the
// header: a zero-byte Write would block forever on net.Pipe.
func writeMsg(w io.Writer, body []byte) error {
	hdr := tpm.NewWriter()
	hdr.U32(uint32(len(body)))
	if _, err := w.Write(hdr.Bytes()); err != nil {
		return err
	}
	if len(body) == 0 {
		return nil
	}
	_, err := w.Write(body)
	return err
}

// readMsg receives one length-prefixed message, capped at maxLen.
func readMsg(r io.Reader, maxLen int) ([]byte, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	n := int(tpm.NewReader(lenBuf[:]).U32())
	if n > maxLen {
		return nil, fmt.Errorf("%w: message of %d bytes exceeds cap %d", ErrBadImage, n, maxLen)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	return body, nil
}

// maxMigMessage bounds one migration message (domain memory dominates).
const maxMigMessage = 64 << 20

// marshalDomainImage serializes a xen.DomainImage.
func marshalDomainImage(img *xen.DomainImage) []byte {
	w := tpm.NewWriter()
	w.B16([]byte(img.Name))
	w.B16([]byte(img.SrcHost))
	w.Raw(img.Launch[:])
	w.U32(uint32(img.VCPUs))
	w.U32(uint32(img.PagesN))
	w.B32(img.Memory)
	return w.Bytes()
}

// unmarshalDomainImage reverses marshalDomainImage.
func unmarshalDomainImage(b []byte) (*xen.DomainImage, error) {
	r := tpm.NewReader(b)
	img := &xen.DomainImage{Name: string(r.B16())}
	img.SrcHost = string(r.B16())
	copy(img.Launch[:], r.Raw(len(img.Launch)))
	img.VCPUs = int(r.U32())
	img.PagesN = int(r.U32())
	img.Memory = r.B32()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadImage, err)
	}
	return img, nil
}

// marshalInstanceImage serializes an InstanceImage. The profile byte and
// ownership epoch ride in plaintext between the launch digest and the
// envelope, mirroring the checkpoint header's stance: the receiver must know
// the profile before it can open anything, and the epoch is routing
// metadata, not a secret.
func marshalInstanceImage(img *InstanceImage) []byte {
	w := tpm.NewWriter()
	w.Raw(img.Launch[:])
	w.U8(byte(img.Profile))
	w.U64(img.Epoch)
	w.B32(img.StateEnvelope)
	return w.Bytes()
}

// unmarshalInstanceImage reverses marshalInstanceImage.
func unmarshalInstanceImage(b []byte) (*InstanceImage, error) {
	img := &InstanceImage{}
	r := tpm.NewReader(b)
	copy(img.Launch[:], r.Raw(len(img.Launch)))
	img.Profile = tpm.Profile(r.U8())
	img.Epoch = r.U64()
	img.StateEnvelope = r.B32()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadImage, err)
	}
	if img.Profile != tpm.Profile12 && img.Profile != tpm.Profile20 {
		return nil, fmt.Errorf("%w: image declares profile %d", ErrBadImage, uint8(img.Profile))
	}
	return img, nil
}

// EncodeInstanceImage exposes the image's wire form for transports outside
// SendMigration/ReceiveMigration — the cluster's fenced transfer leg ships
// exactly these bytes between hosts.
func EncodeInstanceImage(img *InstanceImage) []byte { return marshalInstanceImage(img) }

// DecodeInstanceImage reverses EncodeInstanceImage.
func DecodeInstanceImage(b []byte) (*InstanceImage, error) { return unmarshalInstanceImage(b) }

// SendMigration drives the source side of the migration protocol: receive
// the destination's endorsement key offer, then ship the domain image and
// the guard-protected instance image, and wait for the acknowledgement.
func SendMigration(conn io.ReadWriter, m *Manager, domImg *xen.DomainImage, instID InstanceID) error {
	if _, err := conn.Write(migMagic); err != nil {
		return err
	}
	ekMsg, err := readMsg(conn, 1<<16)
	if err != nil {
		return fmt.Errorf("vtpm: receiving destination EK: %w", err)
	}
	var destEK *rsa.PublicKey
	if len(ekMsg) > 0 {
		destEK, err = tpm.UnmarshalPublicKey(ekMsg)
		if err != nil {
			return fmt.Errorf("vtpm: destination EK: %w", err)
		}
	}
	instImg, err := m.ExportInstance(instID, destEK)
	if err != nil {
		return err
	}
	if err := writeMsg(conn, marshalDomainImage(domImg)); err != nil {
		return err
	}
	if err := writeMsg(conn, marshalInstanceImage(instImg)); err != nil {
		return err
	}
	// The acknowledgement is "OK" or a NAK carrying the destination's error
	// text, which can be long.
	ack, err := readMsg(conn, 4096)
	if err != nil {
		return err
	}
	if string(ack) != "OK" {
		return fmt.Errorf("vtpm: destination rejected migration: %q", ack)
	}
	return nil
}

// ReceiveMigration drives the destination side: offer the local endorsement
// key, receive both images, import the instance and return the pieces for
// the host to finish (restore domain, rebind, reconnect).
func ReceiveMigration(conn io.ReadWriter, m *Manager, localEK *rsa.PublicKey) (*xen.DomainImage, InstanceID, error) {
	magic := make([]byte, len(migMagic))
	if _, err := io.ReadFull(conn, magic); err != nil {
		return nil, 0, err
	}
	if string(magic) != string(migMagic) {
		return nil, 0, fmt.Errorf("%w: bad magic %q", ErrBadImage, magic)
	}
	var ekBytes []byte
	if localEK != nil {
		ekBytes = marshalPub(localEK)
	}
	if err := writeMsg(conn, ekBytes); err != nil {
		return nil, 0, err
	}
	domMsg, err := readMsg(conn, maxMigMessage)
	if err != nil {
		return nil, 0, err
	}
	domImg, err := unmarshalDomainImage(domMsg)
	if err != nil {
		return nil, 0, err
	}
	instMsg, err := readMsg(conn, maxMigMessage)
	if err != nil {
		return nil, 0, err
	}
	instImg, err := unmarshalInstanceImage(instMsg)
	if err != nil {
		return nil, 0, err
	}
	id, err := m.ImportInstance(instImg)
	if err != nil {
		writeMsg(conn, []byte(err.Error())) //nolint:errcheck // best-effort NAK
		return nil, 0, err
	}
	if err := writeMsg(conn, []byte("OK")); err != nil {
		return nil, 0, err
	}
	return domImg, id, nil
}

// marshalPub serializes a public key with the tpm wire helpers.
func marshalPub(k *rsa.PublicKey) []byte {
	w := tpm.NewWriter()
	w.B32(k.N.Bytes())
	w.U32(uint32(k.E))
	return w.Bytes()
}
