package vtpm

import (
	"time"

	"xvtpm/internal/metrics"
	"xvtpm/internal/tpm"
	"xvtpm/internal/trace"
	"xvtpm/internal/xen"
)

// The manager's observability instruments (see DESIGN.md "Observability").
//
// Everything here is always-on and sits directly on the dispatch hot path,
// so the budget is strict: zero allocations per command (locked by
// alloc_guard_test.go) and a handful of atomic adds plus clock reads
// (measured by experiment E14). Latency histograms are fixed-bucket
// (metrics.Histogram), span recording copies a value struct into a
// preallocated per-instance ring (trace.Ring), and the sampling decision is
// one atomic add (trace.Tracer.Sample).

// telemetry bundles the manager-wide instruments. Per-instance instruments
// (span ring, latency histogram, dispatch counters) live on the instance.
type telemetry struct {
	commands metrics.Counter // dispatches reaching an instance lane
	failures metrics.Counter // dispatches that returned an error

	dispatch  *metrics.Histogram // end-to-end Dispatch latency
	queueWait *metrics.Histogram // write-behind backpressure gate wait
	execute   *metrics.Histogram // locked section: guard + engine + finish
	flush     *metrics.Histogram // synchronous checkpoint on the dispatch path
	persist   *metrics.Histogram // full persist pass (worker or barrier)

	// Signing-pool instruments (see internal/tpm/signpool.go): per-job RSA
	// time and queue wait (fed by the pool's Observe hook), per-dispatch
	// off-lane signature wait, and the batch-population distribution
	// (recorded as a duration whose nanosecond count is the batch size).
	signTime  *metrics.Histogram
	signQueue *metrics.Histogram
	signWait  *metrics.Histogram
	signBatch *metrics.Histogram

	tracer *trace.Tracer
}

// signBatchBounds buckets batch populations (the "duration" recorded is the
// batch size in nanosecond units).
var signBatchBounds = []int64{1, 2, 4, 8, 16, 32, 64}

func newTelemetry(cfg ManagerConfig) telemetry {
	return telemetry{
		dispatch:  metrics.NewHistogram(nil),
		queueWait: metrics.NewHistogram(nil),
		execute:   metrics.NewHistogram(nil),
		flush:     metrics.NewHistogram(nil),
		persist:   metrics.NewHistogram(nil),
		signTime:  metrics.NewHistogram(nil),
		signQueue: metrics.NewHistogram(nil),
		signWait:  metrics.NewHistogram(nil),
		signBatch: metrics.NewHistogram(signBatchBounds),
		tracer: trace.New(trace.Config{
			Depth:      cfg.TraceDepth,
			SampleRate: cfg.TraceSampleRate,
			Seed:       cfg.TraceSeed,
		}),
	}
}

// observeDispatch records one completed (or refused) dispatch into the
// histograms and, when the sampler keeps it, the instance's span ring.
// Runs outside every lock; never allocates.
func (m *Manager) observeDispatch(inst *instance, from xen.DomID, ordinal uint32,
	health HealthState, mutated, failed bool,
	start time.Time, queueWait, execute, flush time.Duration) {
	m.observeDispatchSign(inst, from, ordinal, health, mutated, failed, start, queueWait, execute, flush, 0, false)
}

// observeDispatchSign is observeDispatch for dispatches that may have spent
// time off-lane waiting for a pooled signature: signWait is that portion
// (not lane occupancy, so not part of execute), signErr marks a pool
// failure the guest saw as a TPM failure code.
func (m *Manager) observeDispatchSign(inst *instance, from xen.DomID, ordinal uint32,
	health HealthState, mutated, failed bool,
	start time.Time, queueWait, execute, flush, signWait time.Duration, signErr bool) {
	m.tel.commands.Inc()
	if failed {
		m.tel.failures.Inc()
	}
	m.tel.dispatch.Record(queueWait + execute + signWait + flush)
	m.tel.queueWait.Record(queueWait)
	m.tel.execute.Record(execute)
	m.tel.flush.Record(flush)
	if signWait > 0 {
		m.tel.signWait.Record(signWait)
	}
	inst.dispatches.Inc()
	if failed {
		inst.failures.Inc()
	}
	if inst.lat != nil {
		inst.lat.Record(queueWait + execute + signWait + flush)
	}
	if inst.spans != nil && m.tel.tracer.Sample() {
		inst.spans.Record(trace.Span{
			Instance:  uint32(inst.info.ID),
			Dom:       uint32(from),
			Ordinal:   ordinal,
			Health:    uint8(health),
			Mutated:   mutated,
			Denied:    failed,
			SignErr:   signErr,
			Start:     start,
			QueueWait: queueWait,
			Execute:   execute,
			SignWait:  signWait,
			Flush:     flush,
		})
	}
}

// observeSign is the signing pool's Observe hook: one call per completed
// RSA job (a batch counts once), from pool worker goroutines.
func (m *Manager) observeSign(ev tpm.SignEvent) {
	m.tel.signTime.Record(ev.SignTime)
	m.tel.signQueue.Record(ev.QueueWait)
	m.tel.signBatch.Record(time.Duration(ev.BatchSize))
}

// DispatchStats is a point-in-time digest of the manager's dispatch-path
// latency distributions.
type DispatchStats struct {
	// Commands counts dispatches that reached an instance lane (including
	// refused ones); Failures those that returned an error to the caller.
	Commands uint64
	Failures uint64
	// Phase latency digests: Total = QueueWait + Execute + Flush per
	// command; Persist covers full background/barrier persist passes.
	Total     metrics.HistogramSummary
	QueueWait metrics.HistogramSummary
	Execute   metrics.HistogramSummary
	Flush     metrics.HistogramSummary
	Persist   metrics.HistogramSummary
}

// SignDebug is the signing-pool section of introspection documents: pool
// counters plus the manager-side latency digests.
type SignDebug struct {
	// Workers is the pool's worker count.
	Workers int `json:"workers"`
	// QueueDepth and InFlight are point-in-time gauges.
	QueueDepth int64 `json:"queue_depth"`
	InFlight   int64 `json:"in_flight"`
	// Submitted/Completed/Errors count individual signatures.
	Submitted uint64 `json:"submitted"`
	Completed uint64 `json:"completed"`
	Errors    uint64 `json:"errors"`
	// SingleSigns and BatchSigns count RSA private-key operations by kind;
	// BatchedQuotes counts signatures delivered from batches. The
	// amortization ratio is BatchedQuotes/BatchSigns.
	SingleSigns   uint64 `json:"single_signs"`
	BatchSigns    uint64 `json:"batch_signs"`
	BatchedQuotes uint64 `json:"batched_quotes"`
	// DispatchErrors counts dispatches that surfaced a pool failure to the
	// guest (the xvtpm_sign_errors_total counter).
	DispatchErrors uint64 `json:"dispatch_errors"`
	// SignTime digests per-job RSA time, QueueWait per-job pool wait,
	// Wait the per-dispatch off-lane signature wait, and BatchSize the
	// batch-population distribution (nanosecond counts are populations).
	SignTime  metrics.HistogramSummary `json:"sign_time"`
	QueueWait metrics.HistogramSummary `json:"queue_wait"`
	Wait      metrics.HistogramSummary `json:"wait"`
	BatchSize metrics.HistogramSummary `json:"batch_size"`
}

// SignDebug snapshots the signing-pool instruments, or returns nil when the
// pool is disabled.
func (m *Manager) SignDebug() *SignDebug {
	if m.signPool == nil {
		return nil
	}
	st := m.signPool.Stats()
	return &SignDebug{
		Workers:        st.Workers,
		QueueDepth:     st.QueueDepth,
		InFlight:       st.InFlight,
		Submitted:      st.Submitted,
		Completed:      st.Completed,
		Errors:         st.Errors,
		SingleSigns:    st.SingleSigns,
		BatchSigns:     st.BatchSigns,
		BatchedQuotes:  st.BatchedQuotes,
		DispatchErrors: m.signErrors.Load(),
		SignTime:       m.tel.signTime.Summarize(),
		QueueWait:      m.tel.signQueue.Summarize(),
		Wait:           m.tel.signWait.Summarize(),
		BatchSize:      m.tel.signBatch.Summarize(),
	}
}

// DispatchStats snapshots the dispatch-path histograms.
func (m *Manager) DispatchStats() DispatchStats {
	return DispatchStats{
		Commands:  m.tel.commands.Load(),
		Failures:  m.tel.failures.Load(),
		Total:     m.tel.dispatch.Summarize(),
		QueueWait: m.tel.queueWait.Summarize(),
		Execute:   m.tel.execute.Summarize(),
		Flush:     m.tel.flush.Summarize(),
		Persist:   m.tel.persist.Summarize(),
	}
}

// InstanceStats is the per-instance observability digest vtpmctl's `top`
// renders one row from.
type InstanceStats struct {
	ID InstanceID
	// Profile is the instance's command profile (1.2 or 2.0); mixed fleets
	// carry both under one manager.
	Profile    tpm.Profile
	BoundDom   xen.DomID
	Health     HealthState
	Dispatches uint64
	Failures   uint64
	// PendingDirty is the write-behind window: mutations dispatched but
	// not yet covered by a persist.
	PendingDirty uint64
	// Latency digests this instance's end-to-end dispatch latency.
	Latency metrics.HistogramSummary
	// SpansRecorded counts spans ever recorded for the instance (the ring
	// retains only the newest trace-depth of them).
	SpansRecorded uint64
}

// InstanceStats reports one instance's observability digest.
func (m *Manager) InstanceStats(id InstanceID) (InstanceStats, error) {
	inst, err := m.lookup(id)
	if err != nil {
		return InstanceStats{}, err
	}
	return m.instanceStats(id, inst), nil
}

// InstanceStatsAll reports every live instance's digest, sorted by ID.
func (m *Manager) InstanceStatsAll() []InstanceStats {
	ids := m.Instances()
	out := make([]InstanceStats, 0, len(ids))
	for _, id := range ids {
		inst, err := m.lookup(id)
		if err != nil {
			continue // destroyed between the sweep and the lookup
		}
		out = append(out, m.instanceStats(id, inst))
	}
	return out
}

func (m *Manager) instanceStats(id InstanceID, inst *instance) InstanceStats {
	info := inst.Snapshot()
	s := InstanceStats{
		ID:         id,
		Profile:    info.Profile,
		BoundDom:   info.BoundDom,
		Health:     inst.health.current(),
		Dispatches: inst.dispatches.Load(),
		Failures:   inst.failures.Load(),
	}
	inst.ck.mu.Lock()
	s.PendingDirty = inst.ck.pendingLocked()
	inst.ck.mu.Unlock()
	if inst.lat != nil {
		s.Latency = inst.lat.Summarize()
	}
	if inst.spans != nil {
		s.SpansRecorded = inst.spans.Total()
	}
	return s
}

// Spans returns a copy of an instance's recent-span ring, oldest first
// (empty when tracing is disabled).
func (m *Manager) Spans(id InstanceID) ([]trace.Span, error) {
	inst, err := m.lookup(id)
	if err != nil {
		return nil, err
	}
	if inst.spans == nil {
		return nil, nil
	}
	return inst.spans.Snapshot(), nil
}

// RegisterMetrics exposes the manager's instruments in reg under the
// xvtpm_* namespace: dispatch-phase latency histograms, command and
// failure counters, the checkpoint pipeline counters, and the health
// machine's counters and population gauges.
func (m *Manager) RegisterMetrics(reg *metrics.Registry) error {
	type histReg struct {
		name, help string
		h          *metrics.Histogram
	}
	for _, hr := range []histReg{
		{"xvtpm_dispatch_seconds", "End-to-end vTPM command dispatch latency.", m.tel.dispatch},
		{"xvtpm_dispatch_queue_wait_seconds", "Time blocked on write-behind backpressure before dispatch.", m.tel.queueWait},
		{"xvtpm_dispatch_execute_seconds", "Locked dispatch section: guard admission, engine execution, response finishing.", m.tel.execute},
		{"xvtpm_dispatch_flush_seconds", "Synchronous checkpoint time paid on the dispatch path (eager policy or degraded instance).", m.tel.flush},
		{"xvtpm_checkpoint_persist_seconds", "Full persist pass duration (background worker or flush barrier).", m.tel.persist},
		{"xvtpm_sign_seconds", "RSA private-key operation time per signing-pool job (batches count once).", m.tel.signTime},
		{"xvtpm_sign_queue_wait_seconds", "Time signing jobs waited in the pool before a worker picked them up.", m.tel.signQueue},
		{"xvtpm_sign_wait_seconds", "Off-lane time dispatches spent waiting for a pooled signature.", m.tel.signWait},
		{"xvtpm_sign_batch_size", "Signing-job batch population (bucket bounds are populations, not seconds).", m.tel.signBatch},
	} {
		if err := reg.RegisterHistogram(hr.name, hr.help, hr.h); err != nil {
			return err
		}
	}
	type ctrReg struct {
		name, help string
		c          *metrics.Counter
	}
	for _, cr := range []ctrReg{
		{"xvtpm_commands_total", "Commands dispatched to vTPM instances.", &m.tel.commands},
		{"xvtpm_dispatch_failures_total", "Dispatches that returned an error.", &m.tel.failures},
		{"xvtpm_checkpoint_mutations_total", "State-mutating commands dispatched.", &m.ckptMutations},
		{"xvtpm_checkpoint_writes_total", "Completed state persists.", &m.ckptWrites},
		{"xvtpm_checkpoint_coalesced_total", "Mutations covered by completed persists.", &m.ckptCoalesced},
		{"xvtpm_checkpoint_bytes_total", "Protected envelope bytes handed to the store.", &m.ckptBytes},
		{"xvtpm_store_retries_total", "Store-I/O retry attempts beyond the first.", &m.ckptRetries},
		{"xvtpm_health_degradations_total", "Healthy-to-Degraded transitions.", &m.healthDegradations},
		{"xvtpm_health_quarantines_total", "Transitions into Quarantined.", &m.healthQuarantines},
		{"xvtpm_health_panics_total", "Contained dispatch/worker panics.", &m.healthPanics},
		{"xvtpm_sign_errors_total", "Dispatches whose deferred signature failed in the signing pool.", &m.signErrors},
	} {
		if err := reg.RegisterCounter(cr.name, cr.help, cr.c); err != nil {
			return err
		}
	}
	if err := reg.RegisterGauge("xvtpm_health_degraded_now", "Instances currently Degraded.", &m.healthDegradedNow); err != nil {
		return err
	}
	if err := reg.RegisterGauge("xvtpm_health_quarantined_now", "Instances currently Quarantined.", &m.healthQuarantinedNow); err != nil {
		return err
	}
	if err := reg.RegisterGaugeFunc("xvtpm_load_sessions", "Open synthetic open-loop load sessions.", func() float64 {
		open, _ := m.LoadSessionStats()
		return float64(open)
	}); err != nil {
		return err
	}
	if err := reg.RegisterGaugeFunc("xvtpm_load_commands_total", "Commands dispatched through load sessions.", func() float64 {
		_, cmds := m.LoadSessionStats()
		return float64(cmds)
	}); err != nil {
		return err
	}
	type gaugeReg struct {
		name, help string
		fn         func() float64
	}
	for _, gr := range []gaugeReg{
		{"xvtpm_sign_queue_depth", "Signing jobs waiting in the pool queue.", func() float64 {
			return float64(m.signPool.Stats().QueueDepth)
		}},
		{"xvtpm_sign_inflight", "Signing jobs being computed right now.", func() float64 {
			return float64(m.signPool.Stats().InFlight)
		}},
		{"xvtpm_sign_single_total", "Individual RSA signatures computed by the pool.", func() float64 {
			return float64(m.signPool.Stats().SingleSigns)
		}},
		{"xvtpm_sign_batches_total", "Merkle batch signatures computed by the pool.", func() float64 {
			return float64(m.signPool.Stats().BatchSigns)
		}},
		{"xvtpm_sign_batched_quotes_total", "Quote signatures delivered from Merkle batches.", func() float64 {
			return float64(m.signPool.Stats().BatchedQuotes)
		}},
	} {
		if err := reg.RegisterGaugeFunc(gr.name, gr.help, gr.fn); err != nil {
			return err
		}
	}
	return reg.RegisterGaugeFunc("xvtpm_instances", "Live vTPM instances.", func() float64 {
		m.regMu.RLock()
		n := len(m.instances)
		m.regMu.RUnlock()
		return float64(n)
	})
}
