package vtpm

import (
	"time"

	"xvtpm/internal/metrics"
	"xvtpm/internal/tpm"
	"xvtpm/internal/trace"
	"xvtpm/internal/xen"
)

// The manager's observability instruments (see DESIGN.md "Observability").
//
// Everything here is always-on and sits directly on the dispatch hot path,
// so the budget is strict: zero allocations per command (locked by
// alloc_guard_test.go) and a handful of atomic adds plus clock reads
// (measured by experiment E14). Latency histograms are fixed-bucket
// (metrics.Histogram), span recording copies a value struct into a
// preallocated per-instance ring (trace.Ring), and the sampling decision is
// one atomic add (trace.Tracer.Sample).

// telemetry bundles the manager-wide instruments. Per-instance instruments
// (span ring, latency histogram, dispatch counters) live on the instance.
type telemetry struct {
	commands metrics.Counter // dispatches reaching an instance lane
	failures metrics.Counter // dispatches that returned an error

	dispatch  *metrics.Histogram // end-to-end Dispatch latency
	queueWait *metrics.Histogram // write-behind backpressure gate wait
	execute   *metrics.Histogram // locked section: guard + engine + finish
	flush     *metrics.Histogram // synchronous checkpoint on the dispatch path
	persist   *metrics.Histogram // full persist pass (worker or barrier)

	tracer *trace.Tracer
}

func newTelemetry(cfg ManagerConfig) telemetry {
	return telemetry{
		dispatch:  metrics.NewHistogram(nil),
		queueWait: metrics.NewHistogram(nil),
		execute:   metrics.NewHistogram(nil),
		flush:     metrics.NewHistogram(nil),
		persist:   metrics.NewHistogram(nil),
		tracer: trace.New(trace.Config{
			Depth:      cfg.TraceDepth,
			SampleRate: cfg.TraceSampleRate,
			Seed:       cfg.TraceSeed,
		}),
	}
}

// observeDispatch records one completed (or refused) dispatch into the
// histograms and, when the sampler keeps it, the instance's span ring.
// Runs outside every lock; never allocates.
func (m *Manager) observeDispatch(inst *instance, from xen.DomID, ordinal uint32,
	health HealthState, mutated, failed bool,
	start time.Time, queueWait, execute, flush time.Duration) {
	m.tel.commands.Inc()
	if failed {
		m.tel.failures.Inc()
	}
	m.tel.dispatch.Record(queueWait + execute + flush)
	m.tel.queueWait.Record(queueWait)
	m.tel.execute.Record(execute)
	m.tel.flush.Record(flush)
	inst.dispatches.Inc()
	if failed {
		inst.failures.Inc()
	}
	if inst.lat != nil {
		inst.lat.Record(queueWait + execute + flush)
	}
	if inst.spans != nil && m.tel.tracer.Sample() {
		inst.spans.Record(trace.Span{
			Instance:  uint32(inst.info.ID),
			Dom:       uint32(from),
			Ordinal:   ordinal,
			Health:    uint8(health),
			Mutated:   mutated,
			Denied:    failed,
			Start:     start,
			QueueWait: queueWait,
			Execute:   execute,
			Flush:     flush,
		})
	}
}

// DispatchStats is a point-in-time digest of the manager's dispatch-path
// latency distributions.
type DispatchStats struct {
	// Commands counts dispatches that reached an instance lane (including
	// refused ones); Failures those that returned an error to the caller.
	Commands uint64
	Failures uint64
	// Phase latency digests: Total = QueueWait + Execute + Flush per
	// command; Persist covers full background/barrier persist passes.
	Total     metrics.HistogramSummary
	QueueWait metrics.HistogramSummary
	Execute   metrics.HistogramSummary
	Flush     metrics.HistogramSummary
	Persist   metrics.HistogramSummary
}

// DispatchStats snapshots the dispatch-path histograms.
func (m *Manager) DispatchStats() DispatchStats {
	return DispatchStats{
		Commands:  m.tel.commands.Load(),
		Failures:  m.tel.failures.Load(),
		Total:     m.tel.dispatch.Summarize(),
		QueueWait: m.tel.queueWait.Summarize(),
		Execute:   m.tel.execute.Summarize(),
		Flush:     m.tel.flush.Summarize(),
		Persist:   m.tel.persist.Summarize(),
	}
}

// InstanceStats is the per-instance observability digest vtpmctl's `top`
// renders one row from.
type InstanceStats struct {
	ID InstanceID
	// Profile is the instance's command profile (1.2 or 2.0); mixed fleets
	// carry both under one manager.
	Profile    tpm.Profile
	BoundDom   xen.DomID
	Health     HealthState
	Dispatches uint64
	Failures   uint64
	// PendingDirty is the write-behind window: mutations dispatched but
	// not yet covered by a persist.
	PendingDirty uint64
	// Latency digests this instance's end-to-end dispatch latency.
	Latency metrics.HistogramSummary
	// SpansRecorded counts spans ever recorded for the instance (the ring
	// retains only the newest trace-depth of them).
	SpansRecorded uint64
}

// InstanceStats reports one instance's observability digest.
func (m *Manager) InstanceStats(id InstanceID) (InstanceStats, error) {
	inst, err := m.lookup(id)
	if err != nil {
		return InstanceStats{}, err
	}
	return m.instanceStats(id, inst), nil
}

// InstanceStatsAll reports every live instance's digest, sorted by ID.
func (m *Manager) InstanceStatsAll() []InstanceStats {
	ids := m.Instances()
	out := make([]InstanceStats, 0, len(ids))
	for _, id := range ids {
		inst, err := m.lookup(id)
		if err != nil {
			continue // destroyed between the sweep and the lookup
		}
		out = append(out, m.instanceStats(id, inst))
	}
	return out
}

func (m *Manager) instanceStats(id InstanceID, inst *instance) InstanceStats {
	info := inst.Snapshot()
	s := InstanceStats{
		ID:         id,
		Profile:    info.Profile,
		BoundDom:   info.BoundDom,
		Health:     inst.health.current(),
		Dispatches: inst.dispatches.Load(),
		Failures:   inst.failures.Load(),
	}
	inst.ck.mu.Lock()
	s.PendingDirty = inst.ck.pendingLocked()
	inst.ck.mu.Unlock()
	if inst.lat != nil {
		s.Latency = inst.lat.Summarize()
	}
	if inst.spans != nil {
		s.SpansRecorded = inst.spans.Total()
	}
	return s
}

// Spans returns a copy of an instance's recent-span ring, oldest first
// (empty when tracing is disabled).
func (m *Manager) Spans(id InstanceID) ([]trace.Span, error) {
	inst, err := m.lookup(id)
	if err != nil {
		return nil, err
	}
	if inst.spans == nil {
		return nil, nil
	}
	return inst.spans.Snapshot(), nil
}

// RegisterMetrics exposes the manager's instruments in reg under the
// xvtpm_* namespace: dispatch-phase latency histograms, command and
// failure counters, the checkpoint pipeline counters, and the health
// machine's counters and population gauges.
func (m *Manager) RegisterMetrics(reg *metrics.Registry) error {
	type histReg struct {
		name, help string
		h          *metrics.Histogram
	}
	for _, hr := range []histReg{
		{"xvtpm_dispatch_seconds", "End-to-end vTPM command dispatch latency.", m.tel.dispatch},
		{"xvtpm_dispatch_queue_wait_seconds", "Time blocked on write-behind backpressure before dispatch.", m.tel.queueWait},
		{"xvtpm_dispatch_execute_seconds", "Locked dispatch section: guard admission, engine execution, response finishing.", m.tel.execute},
		{"xvtpm_dispatch_flush_seconds", "Synchronous checkpoint time paid on the dispatch path (eager policy or degraded instance).", m.tel.flush},
		{"xvtpm_checkpoint_persist_seconds", "Full persist pass duration (background worker or flush barrier).", m.tel.persist},
	} {
		if err := reg.RegisterHistogram(hr.name, hr.help, hr.h); err != nil {
			return err
		}
	}
	type ctrReg struct {
		name, help string
		c          *metrics.Counter
	}
	for _, cr := range []ctrReg{
		{"xvtpm_commands_total", "Commands dispatched to vTPM instances.", &m.tel.commands},
		{"xvtpm_dispatch_failures_total", "Dispatches that returned an error.", &m.tel.failures},
		{"xvtpm_checkpoint_mutations_total", "State-mutating commands dispatched.", &m.ckptMutations},
		{"xvtpm_checkpoint_writes_total", "Completed state persists.", &m.ckptWrites},
		{"xvtpm_checkpoint_coalesced_total", "Mutations covered by completed persists.", &m.ckptCoalesced},
		{"xvtpm_checkpoint_bytes_total", "Protected envelope bytes handed to the store.", &m.ckptBytes},
		{"xvtpm_store_retries_total", "Store-I/O retry attempts beyond the first.", &m.ckptRetries},
		{"xvtpm_health_degradations_total", "Healthy-to-Degraded transitions.", &m.healthDegradations},
		{"xvtpm_health_quarantines_total", "Transitions into Quarantined.", &m.healthQuarantines},
		{"xvtpm_health_panics_total", "Contained dispatch/worker panics.", &m.healthPanics},
	} {
		if err := reg.RegisterCounter(cr.name, cr.help, cr.c); err != nil {
			return err
		}
	}
	if err := reg.RegisterGauge("xvtpm_health_degraded_now", "Instances currently Degraded.", &m.healthDegradedNow); err != nil {
		return err
	}
	if err := reg.RegisterGauge("xvtpm_health_quarantined_now", "Instances currently Quarantined.", &m.healthQuarantinedNow); err != nil {
		return err
	}
	if err := reg.RegisterGaugeFunc("xvtpm_load_sessions", "Open synthetic open-loop load sessions.", func() float64 {
		open, _ := m.LoadSessionStats()
		return float64(open)
	}); err != nil {
		return err
	}
	if err := reg.RegisterGaugeFunc("xvtpm_load_commands_total", "Commands dispatched through load sessions.", func() float64 {
		_, cmds := m.LoadSessionStats()
		return float64(cmds)
	}); err != nil {
		return err
	}
	return reg.RegisterGaugeFunc("xvtpm_instances", "Live vTPM instances.", func() float64 {
		m.regMu.RLock()
		n := len(m.instances)
		m.regMu.RUnlock()
		return float64(n)
	})
}
