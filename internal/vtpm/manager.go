package vtpm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"xvtpm/internal/faults"
	"xvtpm/internal/metrics"
	"xvtpm/internal/tpm"
	"xvtpm/internal/xen"
)

// Manager errors.
var (
	ErrNoInstance   = errors.New("vtpm: no such instance")
	ErrBound        = errors.New("vtpm: instance already bound")
	ErrUnbound      = errors.New("vtpm: instance not bound to a domain")
	ErrDomHasVTPM   = errors.New("vtpm: domain already has a vTPM")
	ErrBadEnvelope  = errors.New("vtpm: malformed instance envelope")
	ErrShortPayload = errors.New("vtpm: ring payload too short")
)

// ManagerConfig parameterizes a Manager.
type ManagerConfig struct {
	// RSABits sizes instance keys. Zero means tpm.DefaultRSABits.
	RSABits int
	// Profile is the command profile CreateInstance builds engines for.
	// tpm.AnyProfile (the zero value) means tpm.Profile12, the seed tree's
	// only profile, so existing single-profile callers need no migration.
	// CreateInstanceProfile overrides it per instance: one manager runs
	// mixed 1.2/2.0 fleets.
	Profile tpm.Profile
	// Seed, when non-nil, makes instance creation deterministic (instance i
	// gets a seed derived from Seed and its ID).
	Seed []byte
	// EKPoolSize, when positive, pre-generates RSA keys in the background so
	// instance creation (and the key-creation ordinals) are not gated on RSA
	// generation — the manager-side optimization measured in experiments E3
	// and E20. The pool is a tpm.KeyPool shared by every instance; with a
	// manager Seed set it runs sequence-deterministic.
	EKPoolSize int
	// SignWorkers sizes the shared RSA signing pool that takes Quote, Sign
	// and CertifyKey private-key operations off the per-instance dispatch
	// lane (engine ExecuteDeferred). Zero means tpm.DefaultSignWorkers — the
	// pool is on by default; negative disables it (signatures computed
	// inline under the instance lock, the pre-pool behaviour).
	SignWorkers int
	// SignBatchWindow, when positive, batches concurrent Quote digests
	// against the same key within the window under one Merkle-root signature
	// (XBQ1 blobs; see internal/tpm/merkle.go). Zero disables batching.
	SignBatchWindow time.Duration
	// SignBatchMax seals a quote batch early at this population. Zero means
	// tpm.DefaultSignBatchMax when SignBatchWindow is positive.
	SignBatchMax int
	// Checkpoint selects when mutated state is persisted: synchronously on
	// every mutating command (CheckpointEager, the default and the stock
	// manager's behaviour), coalesced by a background worker within the
	// MaxDirtyCommands/MaxDirtyInterval window (CheckpointWriteback), or
	// only on explicit Checkpoint/CheckpointAll calls (CheckpointDeferred).
	// See checkpoint.go for the durability contract.
	Checkpoint CheckpointPolicy
	// MaxDirtyCommands bounds how many unpersisted mutations writeback may
	// accumulate before dispatch blocks for the worker. Zero means
	// DefaultMaxDirtyCommands.
	MaxDirtyCommands int
	// MaxDirtyInterval bounds how long a dirty instance may wait for more
	// mutations before the worker persists what it has. Zero means
	// DefaultMaxDirtyInterval.
	MaxDirtyInterval time.Duration
	// DeferCheckpoints is the pre-CheckpointPolicy spelling of
	// CheckpointDeferred, kept for existing callers; it is ignored when
	// Checkpoint is set explicitly.
	DeferCheckpoints bool
	// Retry bounds the retry loop wrapped around every store operation
	// (see retry.go). The zero value resolves to the package defaults.
	Retry RetryPolicy
	// TraceDepth is the per-instance recent-span ring capacity: zero means
	// trace.DefaultDepth, negative disables command tracing entirely (the
	// latency histograms stay on). See internal/trace.
	TraceDepth int
	// TraceSampleRate records one in every N dispatches on average (0 or 1
	// traces everything). The decision stream is seeded by TraceSeed, so a
	// run is reproducible span-for-span.
	TraceSampleRate int
	TraceSeed       int64
}

// policy resolves the configured checkpoint policy, honouring the legacy
// DeferCheckpoints flag.
func (cfg ManagerConfig) policy() CheckpointPolicy {
	if cfg.Checkpoint == CheckpointEager && cfg.DeferCheckpoints {
		return CheckpointDeferred
	}
	return cfg.Checkpoint
}

// Manager is the dom0 vTPM manager daemon: it owns every instance, its
// persistence and its binding to a guest, and funnels every guest command
// through the configured Guard.
//
// Concurrency model: the manager holds a read-mostly registry (instances,
// byDom) behind regMu, and every instance carries its own mutex owning that
// instance's dispatch, checkpointing and binding. Dispatch for domain A takes
// only a registry read lock plus A's instance lock, so commands to different
// instances execute fully in parallel. regMu and instance locks are never
// held at the same time; see DESIGN.md "Locking hierarchy & concurrency
// model" for the ordering rules.
type Manager struct {
	hv    *xen.Hypervisor
	store Store
	arena *xen.Arena
	guard Guard
	cfg   ManagerConfig
	bus   *xen.MemBus // dom0 memory bus guarding arena buffer writes

	// regMu guards only the registry maps and counters below. It is never
	// held across guard calls, engine execution, or instance-lock
	// acquisition.
	regMu     sync.RWMutex
	instances map[InstanceID]*instance
	byDom     map[xen.DomID]InstanceID
	nextID    InstanceID
	seedCtr   uint64

	// Shared RSA pools (see internal/tpm): signPool runs private-key
	// operations off the dispatch lanes, keyPool pre-generates keys for
	// instance creation. Either may be nil (disabled).
	signPool  *tpm.SignPool
	keyPool   *tpm.KeyPool
	stop      chan struct{}
	closeOnce sync.Once

	// Resolved checkpoint pipeline parameters (see checkpoint.go), fixed at
	// construction so the hot path never re-derives them.
	ckptPolicy       CheckpointPolicy
	maxDirty         uint64
	maxDirtyInterval time.Duration

	// Resolved store-I/O retry policy (see retry.go).
	retry RetryPolicy

	// Pipeline counters, aggregated across instances.
	ckptMutations metrics.Counter
	ckptWrites    metrics.Counter
	ckptCoalesced metrics.Counter
	ckptBytes     metrics.Counter
	ckptLag       *metrics.Recorder

	// fenceRejects counts dispatches refused by instance fences (see
	// fence.go) — each one a command provably not executed, redirected to
	// the instance's new owner.
	fenceRejects metrics.Counter

	// signErrors counts dispatches whose deferred signature failed in the
	// pool; the guest saw a TPM failure code, the cause lands here and in
	// the span.
	signErrors metrics.Counter

	// Health counters and population gauges (see health.go).
	ckptRetries          metrics.Counter
	healthDegradations   metrics.Counter
	healthQuarantines    metrics.Counter
	healthPanics         metrics.Counter
	healthDegradedNow    metrics.Gauge
	healthQuarantinedNow metrics.Gauge

	// tel carries the dispatch-path observability instruments: phase
	// latency histograms, command/failure counters and the span tracer
	// (see observe.go).
	tel telemetry

	// Synthetic open-loop session accounting (see loadsession.go):
	// currently open load sessions and commands dispatched through them.
	loadSessions int64
	loadCommands uint64

	// tapMu guards taps: observers of dispatched ring payloads. A
	// compromised dom0 component sits exactly here, which is how the replay
	// attacker captures traffic to re-inject.
	tapMu sync.RWMutex
	taps  []func(from xen.DomID, payload []byte)
}

// OnDispatch registers an observer of every dispatched ring payload. It
// models a dom0-resident component (the backend path is dom0 code); the
// attack harness uses it as the traffic-capture vantage point.
func (m *Manager) OnDispatch(fn func(from xen.DomID, payload []byte)) {
	m.tapMu.Lock()
	m.taps = append(m.taps, fn)
	m.tapMu.Unlock()
}

// notifyTaps delivers one payload to all observers. The common case — no
// taps registered — costs one read lock and no allocation; with taps the
// slice header is snapshotted once under the read lock (appends in
// OnDispatch never mutate a published backing array) and each observer gets
// its own payload copy, since observers may retain it.
func (m *Manager) notifyTaps(from xen.DomID, payload []byte) {
	m.tapMu.RLock()
	taps := m.taps
	m.tapMu.RUnlock()
	if len(taps) == 0 {
		return
	}
	for _, fn := range taps {
		fn(from, append([]byte(nil), payload...))
	}
}

// NewManager creates a manager for one host. arena must allocate from dom0
// memory; guard supplies the access-control policy.
func NewManager(hv *xen.Hypervisor, store Store, arena *xen.Arena, guard Guard, cfg ManagerConfig) *Manager {
	m := &Manager{
		hv:        hv,
		store:     store,
		arena:     arena,
		guard:     guard,
		cfg:       cfg,
		bus:       arena.Bus(),
		instances: make(map[InstanceID]*instance),
		byDom:     make(map[xen.DomID]InstanceID),
		nextID:    1,
		stop:      make(chan struct{}),

		ckptPolicy:       cfg.policy(),
		maxDirty:         DefaultMaxDirtyCommands,
		maxDirtyInterval: DefaultMaxDirtyInterval,
		retry:            cfg.Retry.resolve(),
		ckptLag:          metrics.NewRecorder(),
		tel:              newTelemetry(cfg),
	}
	if cfg.MaxDirtyCommands > 0 {
		m.maxDirty = uint64(cfg.MaxDirtyCommands)
	}
	if cfg.MaxDirtyInterval > 0 {
		m.maxDirtyInterval = cfg.MaxDirtyInterval
	}
	if cfg.EKPoolSize > 0 {
		bits := cfg.RSABits
		if bits == 0 {
			bits = tpm.DefaultRSABits
		}
		var poolSeed []byte
		if cfg.Seed != nil {
			poolSeed = append(append([]byte(nil), cfg.Seed...), []byte("|keypool")...)
		}
		m.keyPool = tpm.NewKeyPool(tpm.KeyPoolConfig{Bits: bits, Size: cfg.EKPoolSize, Seed: poolSeed})
	}
	if cfg.SignWorkers >= 0 {
		m.signPool = tpm.NewSignPool(tpm.SignPoolConfig{
			Workers:     cfg.SignWorkers, // 0 resolves to tpm.DefaultSignWorkers
			BatchWindow: cfg.SignBatchWindow,
			BatchMax:    cfg.SignBatchMax,
			Observe:     m.observeSign,
		})
	}
	return m
}

// Close stops the manager's background work, first draining every
// instance's pending write-behind checkpoints so an orderly shutdown never
// abandons dirty state. Like CheckpointAll, one wedged instance does not
// block the drain of the rest: every flush-barrier or quarantine failure is
// collected and the aggregate returned with errors.Join, so a shutdown that
// left dirty state behind is never silent. Close is idempotent; only the
// first call drains and reports.
func (m *Manager) Close() error {
	var errs []error
	m.closeOnce.Do(func() {
		close(m.stop)
		// Drain the signing pool first: every in-flight deferred response
		// completes (no guest exchange is lost), later submissions fail fast.
		if m.signPool != nil {
			m.signPool.Close()
		}
		if m.keyPool != nil {
			m.keyPool.Close()
		}
		if m.ckptPolicy != CheckpointWriteback {
			return
		}
		m.regMu.RLock()
		type entry struct {
			id   InstanceID
			inst *instance
		}
		insts := make([]entry, 0, len(m.instances))
		for id, inst := range m.instances {
			insts = append(insts, entry{id, inst})
		}
		m.regMu.RUnlock()
		sort.Slice(insts, func(i, j int) bool { return insts[i].id < insts[j].id })
		for _, e := range insts {
			if err := m.flushCheckpoints(e.inst); err != nil {
				errs = append(errs, fmt.Errorf("vtpm: closing instance %d: %w", e.id, err))
			}
		}
	})
	return errors.Join(errs...)
}

// SignPool exposes the shared signing pool (nil when disabled), for
// introspection and tests.
func (m *Manager) SignPool() *tpm.SignPool { return m.signPool }

// KeyPool exposes the shared key-generation pool (nil when disabled).
func (m *Manager) KeyPool() *tpm.KeyPool { return m.keyPool }

// Guard returns the manager's access-control guard.
func (m *Manager) Guard() Guard { return m.guard }

// Store returns the manager's persistence backend (the attack harness reads
// it to model state-file theft).
func (m *Manager) Store() Store { return m.store }

// lookup resolves an instance by ID under the registry read lock.
func (m *Manager) lookup(id InstanceID) (*instance, error) {
	m.regMu.RLock()
	inst, ok := m.instances[id]
	m.regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNoInstance, id)
	}
	return inst, nil
}

// instanceSeedLocked derives a per-instance TPM seed from the manager seed.
// Caller holds regMu.
func (m *Manager) instanceSeedLocked() []byte {
	if m.cfg.Seed == nil {
		return nil
	}
	m.seedCtr++
	s := make([]byte, 0, len(m.cfg.Seed)+8)
	s = append(s, m.cfg.Seed...)
	s = binary.BigEndian.AppendUint64(s, m.seedCtr)
	return s
}

// CreateInstance builds a fresh vTPM instance (new EK, empty PCRs) of the
// manager's configured profile, starts it and persists its initial state. It
// returns the new instance's ID.
func (m *Manager) CreateInstance() (InstanceID, error) {
	return m.CreateInstanceProfile(tpm.AnyProfile)
}

// CreateInstanceProfile is CreateInstance for an explicit command profile,
// overriding the manager's default. tpm.AnyProfile means the configured
// default (which itself defaults to 1.2). One manager freely mixes 1.2 and
// 2.0 instances.
func (m *Manager) CreateInstanceProfile(p tpm.Profile) (InstanceID, error) {
	if p == tpm.AnyProfile {
		p = m.cfg.Profile
	}
	if p == tpm.AnyProfile {
		p = tpm.Profile12
	}
	m.regMu.Lock()
	id := m.nextID
	m.nextID++
	seed := m.instanceSeedLocked()
	m.regMu.Unlock()

	eng, err := tpm.NewEngine(p, tpm.Config{RSABits: m.cfg.RSABits, Seed: seed, Signer: m.signPool, KeyPool: m.keyPool})
	if err != nil {
		return 0, fmt.Errorf("vtpm: creating instance %d: %w", id, err)
	}
	if err := tpm.StartupEngine(eng); err != nil {
		return 0, fmt.Errorf("vtpm: starting instance %d: %w", id, err)
	}
	inst := m.newInstance(InstanceInfo{ID: id, Profile: p}, eng)
	m.regMu.Lock()
	m.instances[id] = inst
	m.regMu.Unlock()
	if err := m.checkpointInstance(inst, true); err != nil {
		return 0, err
	}
	return id, nil
}

// BindInstance attaches an instance to a domain, recording the domain's
// measured launch identity as the instance's owner identity. The byDom slot
// is reserved under the registry lock first, then the instance's own state
// is updated under its lock — regMu is never held while waiting on an
// instance mutex (which a long-running dispatch may hold).
func (m *Manager) BindInstance(id InstanceID, dom *xen.Domain) error {
	inst, err := m.lookup(id)
	if err != nil {
		return err
	}
	// Fast-fail on an already-bound instance before touching the byDom
	// table; the authoritative re-check happens under inst.mu after the
	// reservation below.
	if bound := inst.Snapshot().BoundDom; bound != 0 {
		return fmt.Errorf("%w: instance %d bound to dom%d", ErrBound, id, bound)
	}
	m.regMu.Lock()
	if _, taken := m.byDom[dom.ID()]; taken {
		m.regMu.Unlock()
		return fmt.Errorf("%w: dom%d", ErrDomHasVTPM, dom.ID())
	}
	m.byDom[dom.ID()] = id // reserve; rolled back below on failure
	m.regMu.Unlock()

	inst.mu.Lock()
	if inst.info.BoundDom != 0 {
		bound := inst.info.BoundDom
		inst.mu.Unlock()
		m.regMu.Lock()
		if m.byDom[dom.ID()] == id {
			delete(m.byDom, dom.ID())
		}
		m.regMu.Unlock()
		return fmt.Errorf("%w: instance %d bound to dom%d", ErrBound, id, bound)
	}
	inst.info.BoundDom = dom.ID()
	inst.info.BoundLaunch = bindingFor(dom)
	inst.mu.Unlock()
	return nil
}

// UnbindInstance detaches an instance from its domain (for shutdown or
// migration). It is a flush barrier: any pending write-behind checkpoints
// are drained before it returns, so the store reflects every command the
// departing domain saw answered.
func (m *Manager) UnbindInstance(id InstanceID) error {
	inst, err := m.lookup(id)
	if err != nil {
		return err
	}
	inst.mu.Lock()
	if inst.info.BoundDom == 0 {
		inst.mu.Unlock()
		return ErrUnbound
	}
	dom := inst.info.BoundDom
	inst.info.BoundDom = 0
	inst.mu.Unlock()
	m.regMu.Lock()
	if m.byDom[dom] == id {
		delete(m.byDom, dom)
	}
	m.regMu.Unlock()
	return m.flushCheckpoints(inst)
}

// DestroyInstance removes an instance, scrubbing its memory mirror and
// deleting its stored state.
func (m *Manager) DestroyInstance(id InstanceID) error {
	m.regMu.Lock()
	inst, ok := m.instances[id]
	if ok {
		delete(m.instances, id)
	}
	m.regMu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoInstance, id)
	}
	// Shut the checkpoint pipeline down first: once retired, no in-flight or
	// future persist can rewrite the mirror or re-create the deleted blob.
	m.retireCheckpoints(inst)
	// A destroyed instance leaves the degraded/quarantined population.
	inst.health.mu.Lock()
	m.setGauges(inst.health.state, -1)
	inst.health.mu.Unlock()
	inst.mu.Lock()
	dom := inst.info.BoundDom
	inst.info.BoundDom = 0
	m.bus.Zeroize(inst.mirror)
	m.bus.Zeroize(inst.exchange)
	inst.mu.Unlock()
	if dom != 0 {
		m.regMu.Lock()
		if m.byDom[dom] == id {
			delete(m.byDom, dom)
		}
		m.regMu.Unlock()
	}
	err := m.retryStore(nil, "deleting state", func() error {
		return m.store.Delete(stateName(id))
	})
	if err != nil && !errors.Is(err, ErrNoState) {
		return err
	}
	return nil
}

// Instances returns the IDs of all live instances, sorted.
func (m *Manager) Instances() []InstanceID {
	m.regMu.RLock()
	ids := make([]InstanceID, 0, len(m.instances))
	for id := range m.instances {
		ids = append(ids, id)
	}
	m.regMu.RUnlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// InstanceInfo returns the identity metadata of one instance.
func (m *Manager) InstanceInfo(id InstanceID) (InstanceInfo, error) {
	inst, err := m.lookup(id)
	if err != nil {
		return InstanceInfo{}, err
	}
	return inst.Snapshot(), nil
}

// InstanceForDomain resolves a domain's bound instance.
func (m *Manager) InstanceForDomain(dom xen.DomID) (InstanceID, bool) {
	m.regMu.RLock()
	defer m.regMu.RUnlock()
	id, ok := m.byDom[dom]
	return id, ok
}

// EncoderFor hands out the guest-side channel codec for a bound instance —
// called by the domain builder (trusted path) when constructing the guest.
func (m *Manager) EncoderFor(id InstanceID) (GuestCodec, error) {
	inst, err := m.lookup(id)
	if err != nil {
		return nil, err
	}
	return m.guard.EncoderFor(inst.Snapshot())
}

// ordinalOf extracts the command code from a marshaled TPM command. Both
// profiles frame commands as tag(2) ∥ size(4) ∥ code(4), so one accessor
// serves 1.2 ordinals and 2.0 TPM2_CC_* values; which commands mutate state
// is the engine's own knowledge (Engine.Mutates).
func ordinalOf(cmd []byte) uint32 {
	if len(cmd) < 10 {
		return 0
	}
	return binary.BigEndian.Uint32(cmd[6:10])
}

// Dispatch runs one guest-originated ring payload against the instance
// bound to claimedFrom. The claimedFrom/claimedLaunch pair is whatever the
// delivering code path asserts — the connected backend passes the
// grant-verified truth, while a compromised dom0 component can pass
// anything, which is precisely the spoofing surface the Guard must close.
//
// The exchange — guard admission, engine execution, exchange recording,
// response finishing — runs under the instance's own lock only, so
// concurrent dispatches to different instances proceed in parallel lanes.
// Persistence of mutated state is policy-dependent and never runs inside
// that lock: eager persists synchronously after the lock drops, writeback
// marks the instance dirty for its background worker (blocking first if the
// unpersisted window is already at MaxDirtyCommands), deferred leaves it to
// explicit checkpoints.
func (m *Manager) Dispatch(claimedFrom xen.DomID, claimedLaunch xen.LaunchDigest, payload []byte) ([]byte, error) {
	start := time.Now()
	m.regMu.RLock()
	id, ok := m.byDom[claimedFrom]
	var inst *instance
	if ok {
		inst = m.instances[id]
	}
	m.regMu.RUnlock()
	if inst == nil {
		return nil, fmt.Errorf("%w: dom%d has no vTPM", ErrNoInstance, claimedFrom)
	}
	// A fenced instance has (or is having) its ownership moved to another
	// host: refuse with the redirect before the guard or engine see the
	// command, so a fence rejection guarantees non-execution and the caller
	// may retry against the new owner.
	if fe := inst.fence.Load(); fe != nil {
		m.fenceRejects.Inc()
		health := inst.health.current()
		m.observeDispatch(inst, claimedFrom, 0, health, false, true, start, 0, time.Since(start), 0)
		return nil, fe
	}
	// A quarantined instance is fenced: its dirty state is preserved for
	// supervised recovery, but no new commands may widen the gap between
	// engine and store. The refusal is the observable failure the health
	// model promises instead of a silent drop.
	health := inst.health.current()
	if health == HealthQuarantined {
		m.observeDispatch(inst, claimedFrom, 0, health, false, true, start, 0, time.Since(start), 0)
		return nil, quarantineErr(id, &inst.health)
	}
	m.notifyTaps(claimedFrom, payload)
	m.checkpointGate(inst)
	queueWait := time.Since(start)

	execStart := time.Now()
	out, ordinal, mutated, signWait, signErr, err := m.dispatchInstance(inst, claimedFrom, claimedLaunch, payload)
	execute := time.Since(execStart) - signWait
	if execute < 0 {
		execute = 0
	}
	if err != nil {
		m.observeDispatchSign(inst, claimedFrom, ordinal, health, mutated, true, start, queueWait, execute, 0, signWait, signErr)
		return nil, err
	}
	// Persistence of the mutation is policy-dependent — except for a
	// Degraded instance, which always persists synchronously: background
	// persistence already failed once, so a flaky store is paid for in
	// latency, never in durability.
	var flush time.Duration
	if mutated && (m.ckptPolicy == CheckpointEager || inst.health.current() == HealthDegraded) {
		flushStart := time.Now()
		cerr := m.checkpointInstance(inst, false)
		flush = time.Since(flushStart)
		if cerr != nil {
			m.observeDispatchSign(inst, claimedFrom, ordinal, health, mutated, true, start, queueWait, execute, flush, signWait, signErr)
			return nil, cerr
		}
	}
	m.observeDispatchSign(inst, claimedFrom, ordinal, health, mutated, false, start, queueWait, execute, flush, signWait, signErr)
	return out, nil
}

// dispatchInstance runs the locked portion of one dispatch: guard
// admission, engine execution, exchange recording, response finishing. A
// panic anywhere inside — guard, engine, finisher — is contained here:
// recovered, recorded, and the instance quarantined, so one poisoned
// command or corrupted engine takes down only its own instance, never the
// manager or its siblings.
//
// Signing ordinals with the pool attached execute in two phases: the
// engine's locked phase returns a tpm.Pending, the instance lock is
// released while the pool computes the signature (other commands — from
// this guest or its siblings on the same instance — dispatch in the gap),
// and the lock is retaken to record the exchange and finish the response.
// signWait is the off-lane portion, reported separately so the execute
// histogram keeps measuring lane occupancy.
func (m *Manager) dispatchInstance(inst *instance, claimedFrom xen.DomID, claimedLaunch xen.LaunchDigest, payload []byte) (out []byte, ordinal uint32, mutated bool, signWait time.Duration, signErr bool, err error) {
	locked := true
	inst.mu.Lock()
	defer func() {
		if locked {
			inst.mu.Unlock()
		}
	}()
	defer func() {
		if p := recover(); p != nil {
			if !locked {
				inst.mu.Lock()
				locked = true
			}
			perr := fmt.Errorf("%w: dispatch: %v", ErrInstancePanic, p)
			m.healthPanics.Inc()
			m.notePanic(inst, perr)
			out, mutated, err = nil, false, perr
		}
	}()
	cmd, finish, err := m.guard.AdmitCommand(inst.info, claimedFrom, claimedLaunch, payload)
	if err != nil {
		return nil, 0, false, 0, false, err
	}
	ordinal = ordinalOf(cmd)
	execStart := time.Now()
	var resp []byte
	if de, ok := inst.eng.(tpm.DeferredExecutor); ok {
		var pending *tpm.Pending
		resp, pending = de.ExecuteDeferred(cmd)
		if pending != nil {
			// The engine finished its locked phase; release the lane while
			// the signature is computed off-path.
			inst.mu.Unlock()
			locked = false
			waitStart := time.Now()
			resp = pending.Wait()
			signWait = time.Since(waitStart)
			inst.mu.Lock()
			locked = true
			if serr := pending.Err(); serr != nil {
				signErr = true
				m.signErrors.Inc()
			}
		}
	} else {
		resp = inst.eng.Execute(cmd)
	}
	// The engine work is done on the guest's behalf: charge it to the
	// guest's CPU account, as the hypervisor's scheduler accounting would.
	// For deferred commands that includes the signing time — the pool
	// workers ran for this guest.
	if dom, derr := m.hv.Domain(claimedFrom); derr == nil {
		dom.ChargeCPU(time.Since(execStart).Nanoseconds())
	}
	// Record the decoded exchange in dom0 arena memory: this is the
	// manager's working buffer a core dump would capture.
	m.recordExchangeLocked(inst, cmd, resp)
	mutated = inst.eng.Mutates(ordinal)
	if mutated {
		m.noteMutation(inst)
	}
	out, err = finish(resp)
	if !m.guard.RetainsPlaintext() {
		m.bus.Zeroize(inst.exchange)
	}
	if err != nil {
		return nil, ordinal, mutated, signWait, signErr, err
	}
	return out, ordinal, mutated, signWait, signErr, nil
}

// recordExchangeLocked copies the plaintext command and response into the
// instance's arena exchange buffer. Caller holds inst.mu.
func (m *Manager) recordExchangeLocked(inst *instance, cmd, resp []byte) {
	need := len(cmd) + len(resp)
	if len(inst.exchange) < need {
		m.bus.Zeroize(inst.exchange)
		buf, err := m.arena.Alloc(need)
		if err != nil {
			// Out of arena: fall back to truncated recording rather than
			// failing the command; the honesty buffer is observability, not
			// correctness.
			return
		}
		inst.exchange = buf
	}
	m.bus.Zeroize(inst.exchange)
	n := m.bus.GuardedCopy(inst.exchange, cmd)
	m.bus.GuardedCopy(inst.exchange[n:], resp)
}

// CheckpointAll persists every live instance (used with deferred
// checkpoints and at orderly shutdown). One wedged instance does not block
// persistence of the rest: every failure is collected and the aggregate
// returned with errors.Join.
func (m *Manager) CheckpointAll() error {
	var errs []error
	for _, id := range m.Instances() {
		if err := m.Checkpoint(id); err != nil && !errors.Is(err, ErrNoInstance) {
			errs = append(errs, fmt.Errorf("vtpm: checkpointing instance %d: %w", id, err))
		}
	}
	return errors.Join(errs...)
}

// ReviveAll reloads every persisted instance that is not already live —
// the manager-restart recovery path. It returns the IDs revived. A corrupt
// or unrecoverable blob does not abort the sweep: the rest still revive,
// and the failures come back aggregated with errors.Join.
func (m *Manager) ReviveAll() ([]InstanceID, error) {
	var names []string
	err := m.retryStore(nil, "listing state blobs", func() error {
		var lerr error
		names, lerr = m.store.List()
		return lerr
	})
	if err != nil {
		return nil, err
	}
	var revived []InstanceID
	var errs []error
	for _, name := range names {
		var id InstanceID
		if _, err := fmt.Sscanf(name, "vtpm-%08d.state", &id); err != nil {
			continue // unrelated blob
		}
		m.regMu.RLock()
		_, live := m.instances[id]
		m.regMu.RUnlock()
		if live {
			continue
		}
		if err := m.ReviveInstance(id); err != nil {
			errs = append(errs, fmt.Errorf("vtpm: reviving instance %d: %w", id, err))
			continue
		}
		revived = append(revived, id)
	}
	return revived, errors.Join(errs...)
}

// Checkpoint persists one instance on demand, draining any pending
// write-behind work first and surfacing sticky background persist errors.
func (m *Manager) Checkpoint(id InstanceID) error {
	inst, err := m.lookup(id)
	if err != nil {
		return err
	}
	return m.checkpointInstance(inst, true)
}

// ReviveInstance reloads a persisted instance from the store (after a
// manager restart). The instance comes back unbound. Transient store
// failures are retried under the manager's retry policy; a blob whose
// envelope or serialized state does not parse is reported as corrupt — the
// store's bytes are damaged and re-reading them cannot help.
func (m *Manager) ReviveInstance(id InstanceID) error {
	var blob []byte
	err := m.retryStore(nil, "reading state", func() error {
		var gerr error
		blob, gerr = m.store.Get(stateName(id))
		return gerr
	})
	if err != nil {
		return err
	}
	// The plaintext profile+epoch header rides outside the guard envelope:
	// strip and remember it, then recover the envelope with the bare ID
	// (after a restart the binding table is empty).
	declared, epoch, envelope, err := UnwrapCheckpointEpoch(blob)
	if err != nil {
		return faults.Corrupt(fmt.Errorf("vtpm: checkpoint header of instance %d: %w", id, err))
	}
	info := InstanceInfo{ID: id, Profile: declared, Epoch: epoch}
	state, err := m.guard.RecoverState(info, envelope)
	if err != nil {
		return faults.Corrupt(fmt.Errorf("vtpm: state envelope of instance %d: %w", id, err))
	}
	eng, err := restoreDeclaredEngine(declared, state)
	if err != nil {
		return faults.Corrupt(fmt.Errorf("vtpm: serialized state of instance %d: %w", id, err))
	}
	m.regMu.Lock()
	defer m.regMu.Unlock()
	if _, exists := m.instances[id]; exists {
		return fmt.Errorf("vtpm: instance %d already live", id)
	}
	m.instances[id] = m.newInstance(info, eng)
	if id >= m.nextID {
		m.nextID = id + 1
	}
	return nil
}

// DirectClient returns a TPM 1.2 client wired straight to an instance's
// engine, bypassing ring, backend and guard. It exists for the trusted
// provisioning path (pre-boot PCR initialization by the domain builder) and
// for tests. The instance must speak profile 1.2; use DirectClient2 for 2.0
// instances.
func (m *Manager) DirectClient(id InstanceID) (*tpm.Client, error) {
	inst, err := m.lookup(id)
	if err != nil {
		return nil, err
	}
	if p := inst.eng.Profile(); p != tpm.Profile12 {
		return nil, fmt.Errorf("%w: instance %d speaks %s, not 1.2", ErrProfileMismatch, id, p)
	}
	return tpm.NewClient(tpm.DirectTransport{TPM: inst.eng}, nil), nil
}

// DirectClient2 is DirectClient for TPM 2.0 instances.
func (m *Manager) DirectClient2(id InstanceID) (*tpm.Client2, error) {
	inst, err := m.lookup(id)
	if err != nil {
		return nil, err
	}
	if p := inst.eng.Profile(); p != tpm.Profile20 {
		return nil, fmt.Errorf("%w: instance %d speaks %s, not 2.0", ErrProfileMismatch, id, p)
	}
	return tpm.NewClient2(tpm.DirectTransport{TPM: inst.eng}, nil), nil
}
