package vtpm

import (
	"crypto/rand"
	"crypto/rsa"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"xvtpm/internal/tpm"
	"xvtpm/internal/xen"
)

// Manager errors.
var (
	ErrNoInstance   = errors.New("vtpm: no such instance")
	ErrBound        = errors.New("vtpm: instance already bound")
	ErrUnbound      = errors.New("vtpm: instance not bound to a domain")
	ErrDomHasVTPM   = errors.New("vtpm: domain already has a vTPM")
	ErrBadEnvelope  = errors.New("vtpm: malformed instance envelope")
	ErrShortPayload = errors.New("vtpm: ring payload too short")
)

// ManagerConfig parameterizes a Manager.
type ManagerConfig struct {
	// RSABits sizes instance keys. Zero means tpm.DefaultRSABits.
	RSABits int
	// Seed, when non-nil, makes instance creation deterministic (instance i
	// gets a seed derived from Seed and its ID).
	Seed []byte
	// EKPoolSize, when positive, pre-generates endorsement keys in the
	// background so instance creation is not gated on RSA generation — the
	// manager-side optimization measured in experiment E3.
	EKPoolSize int
	// DeferCheckpoints disables the automatic re-persist after state-
	// mutating commands; callers then checkpoint explicitly (Checkpoint /
	// CheckpointAll). This is the durability-vs-throughput ablation the
	// benchmark suite measures: the stock manager persisted eagerly, at a
	// real cost on Extend-heavy workloads.
	DeferCheckpoints bool
}

// Manager is the dom0 vTPM manager daemon: it owns every instance, its
// persistence and its binding to a guest, and funnels every guest command
// through the configured Guard.
//
// Concurrency model: the manager holds a read-mostly registry (instances,
// byDom) behind regMu, and every instance carries its own mutex owning that
// instance's dispatch, checkpointing and binding. Dispatch for domain A takes
// only a registry read lock plus A's instance lock, so commands to different
// instances execute fully in parallel. regMu and instance locks are never
// held at the same time; see DESIGN.md "Locking hierarchy & concurrency
// model" for the ordering rules.
type Manager struct {
	hv    *xen.Hypervisor
	store Store
	arena *xen.Arena
	guard Guard
	cfg   ManagerConfig
	bus   *xen.MemBus // dom0 memory bus guarding arena buffer writes

	// regMu guards only the registry maps and counters below. It is never
	// held across guard calls, engine execution, or instance-lock
	// acquisition.
	regMu     sync.RWMutex
	instances map[InstanceID]*instance
	byDom     map[xen.DomID]InstanceID
	nextID    InstanceID
	seedCtr   uint64

	ekPool chan *rsa.PrivateKey
	stop   chan struct{}

	// tapMu guards taps: observers of dispatched ring payloads. A
	// compromised dom0 component sits exactly here, which is how the replay
	// attacker captures traffic to re-inject.
	tapMu sync.RWMutex
	taps  []func(from xen.DomID, payload []byte)
}

// OnDispatch registers an observer of every dispatched ring payload. It
// models a dom0-resident component (the backend path is dom0 code); the
// attack harness uses it as the traffic-capture vantage point.
func (m *Manager) OnDispatch(fn func(from xen.DomID, payload []byte)) {
	m.tapMu.Lock()
	m.taps = append(m.taps, fn)
	m.tapMu.Unlock()
}

// notifyTaps delivers one payload to all observers. The common case — no
// taps registered — costs one read lock and no allocation; with taps the
// slice header is snapshotted once under the read lock (appends in
// OnDispatch never mutate a published backing array) and each observer gets
// its own payload copy, since observers may retain it.
func (m *Manager) notifyTaps(from xen.DomID, payload []byte) {
	m.tapMu.RLock()
	taps := m.taps
	m.tapMu.RUnlock()
	if len(taps) == 0 {
		return
	}
	for _, fn := range taps {
		fn(from, append([]byte(nil), payload...))
	}
}

// NewManager creates a manager for one host. arena must allocate from dom0
// memory; guard supplies the access-control policy.
func NewManager(hv *xen.Hypervisor, store Store, arena *xen.Arena, guard Guard, cfg ManagerConfig) *Manager {
	m := &Manager{
		hv:        hv,
		store:     store,
		arena:     arena,
		guard:     guard,
		cfg:       cfg,
		bus:       arena.Bus(),
		instances: make(map[InstanceID]*instance),
		byDom:     make(map[xen.DomID]InstanceID),
		nextID:    1,
		stop:      make(chan struct{}),
	}
	if cfg.EKPoolSize > 0 {
		m.ekPool = make(chan *rsa.PrivateKey, cfg.EKPoolSize)
		go m.fillEKPool()
	}
	return m
}

// fillEKPool keeps the endorsement-key pool topped up in the background.
func (m *Manager) fillEKPool() {
	bits := m.cfg.RSABits
	if bits == 0 {
		bits = tpm.DefaultRSABits
	}
	for {
		key, err := rsa.GenerateKey(rand.Reader, bits)
		if err != nil {
			return
		}
		select {
		case m.ekPool <- key:
		case <-m.stop:
			return
		}
	}
}

// Close stops the manager's background work.
func (m *Manager) Close() {
	select {
	case <-m.stop:
	default:
		close(m.stop)
	}
}

// pooledEK returns a pre-generated EK if one is ready.
func (m *Manager) pooledEK() *rsa.PrivateKey {
	if m.ekPool == nil {
		return nil
	}
	select {
	case k := <-m.ekPool:
		return k
	default:
		return nil
	}
}

// Guard returns the manager's access-control guard.
func (m *Manager) Guard() Guard { return m.guard }

// Store returns the manager's persistence backend (the attack harness reads
// it to model state-file theft).
func (m *Manager) Store() Store { return m.store }

// lookup resolves an instance by ID under the registry read lock.
func (m *Manager) lookup(id InstanceID) (*instance, error) {
	m.regMu.RLock()
	inst, ok := m.instances[id]
	m.regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNoInstance, id)
	}
	return inst, nil
}

// instanceSeedLocked derives a per-instance TPM seed from the manager seed.
// Caller holds regMu.
func (m *Manager) instanceSeedLocked() []byte {
	if m.cfg.Seed == nil {
		return nil
	}
	m.seedCtr++
	s := make([]byte, 0, len(m.cfg.Seed)+8)
	s = append(s, m.cfg.Seed...)
	s = binary.BigEndian.AppendUint64(s, m.seedCtr)
	return s
}

// CreateInstance builds a fresh vTPM instance (new EK, empty PCRs), starts
// it and persists its initial state. It returns the new instance's ID.
func (m *Manager) CreateInstance() (InstanceID, error) {
	m.regMu.Lock()
	id := m.nextID
	m.nextID++
	seed := m.instanceSeedLocked()
	m.regMu.Unlock()

	eng, err := tpm.New(tpm.Config{RSABits: m.cfg.RSABits, Seed: seed, EK: m.pooledEK()})
	if err != nil {
		return 0, fmt.Errorf("vtpm: creating instance %d: %w", id, err)
	}
	cli := tpm.NewClient(tpm.DirectTransport{TPM: eng}, nil)
	if err := cli.Startup(tpm.STClear); err != nil {
		return 0, fmt.Errorf("vtpm: starting instance %d: %w", id, err)
	}
	inst := &instance{info: InstanceInfo{ID: id}, eng: eng}
	m.regMu.Lock()
	m.instances[id] = inst
	m.regMu.Unlock()
	if err := m.checkpointInstance(inst); err != nil {
		return 0, err
	}
	return id, nil
}

// BindInstance attaches an instance to a domain, recording the domain's
// measured launch identity as the instance's owner identity. The byDom slot
// is reserved under the registry lock first, then the instance's own state
// is updated under its lock — regMu is never held while waiting on an
// instance mutex (which a long-running dispatch may hold).
func (m *Manager) BindInstance(id InstanceID, dom *xen.Domain) error {
	inst, err := m.lookup(id)
	if err != nil {
		return err
	}
	// Fast-fail on an already-bound instance before touching the byDom
	// table; the authoritative re-check happens under inst.mu after the
	// reservation below.
	if bound := inst.Snapshot().BoundDom; bound != 0 {
		return fmt.Errorf("%w: instance %d bound to dom%d", ErrBound, id, bound)
	}
	m.regMu.Lock()
	if _, taken := m.byDom[dom.ID()]; taken {
		m.regMu.Unlock()
		return fmt.Errorf("%w: dom%d", ErrDomHasVTPM, dom.ID())
	}
	m.byDom[dom.ID()] = id // reserve; rolled back below on failure
	m.regMu.Unlock()

	inst.mu.Lock()
	if inst.info.BoundDom != 0 {
		bound := inst.info.BoundDom
		inst.mu.Unlock()
		m.regMu.Lock()
		if m.byDom[dom.ID()] == id {
			delete(m.byDom, dom.ID())
		}
		m.regMu.Unlock()
		return fmt.Errorf("%w: instance %d bound to dom%d", ErrBound, id, bound)
	}
	inst.info.BoundDom = dom.ID()
	inst.info.BoundLaunch = bindingFor(dom)
	inst.mu.Unlock()
	return nil
}

// UnbindInstance detaches an instance from its domain (for shutdown or
// migration).
func (m *Manager) UnbindInstance(id InstanceID) error {
	inst, err := m.lookup(id)
	if err != nil {
		return err
	}
	inst.mu.Lock()
	if inst.info.BoundDom == 0 {
		inst.mu.Unlock()
		return ErrUnbound
	}
	dom := inst.info.BoundDom
	inst.info.BoundDom = 0
	inst.mu.Unlock()
	m.regMu.Lock()
	if m.byDom[dom] == id {
		delete(m.byDom, dom)
	}
	m.regMu.Unlock()
	return nil
}

// DestroyInstance removes an instance, scrubbing its memory mirror and
// deleting its stored state.
func (m *Manager) DestroyInstance(id InstanceID) error {
	m.regMu.Lock()
	inst, ok := m.instances[id]
	if ok {
		delete(m.instances, id)
	}
	m.regMu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoInstance, id)
	}
	inst.mu.Lock()
	dom := inst.info.BoundDom
	inst.info.BoundDom = 0
	m.bus.Zeroize(inst.mirror)
	m.bus.Zeroize(inst.exchange)
	inst.mu.Unlock()
	if dom != 0 {
		m.regMu.Lock()
		if m.byDom[dom] == id {
			delete(m.byDom, dom)
		}
		m.regMu.Unlock()
	}
	if err := m.store.Delete(stateName(id)); err != nil && !errors.Is(err, ErrNoState) {
		return err
	}
	return nil
}

// Instances returns the IDs of all live instances, sorted.
func (m *Manager) Instances() []InstanceID {
	m.regMu.RLock()
	ids := make([]InstanceID, 0, len(m.instances))
	for id := range m.instances {
		ids = append(ids, id)
	}
	m.regMu.RUnlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// InstanceInfo returns the identity metadata of one instance.
func (m *Manager) InstanceInfo(id InstanceID) (InstanceInfo, error) {
	inst, err := m.lookup(id)
	if err != nil {
		return InstanceInfo{}, err
	}
	return inst.Snapshot(), nil
}

// InstanceForDomain resolves a domain's bound instance.
func (m *Manager) InstanceForDomain(dom xen.DomID) (InstanceID, bool) {
	m.regMu.RLock()
	defer m.regMu.RUnlock()
	id, ok := m.byDom[dom]
	return id, ok
}

// EncoderFor hands out the guest-side channel codec for a bound instance —
// called by the domain builder (trusted path) when constructing the guest.
func (m *Manager) EncoderFor(id InstanceID) (GuestCodec, error) {
	inst, err := m.lookup(id)
	if err != nil {
		return nil, err
	}
	return m.guard.EncoderFor(inst.Snapshot())
}

// mutatingOrdinals lists the commands after which the manager re-persists
// instance state, as the stock manager persisted NVRAM changes. (GetRandom
// advances the DRBG but is not checkpointed, trading a sliver of RNG-state
// freshness for not re-serializing keys on the hottest command — the same
// trade the deployed manager made.)
var mutatingOrdinals = map[uint32]bool{
	tpm.OrdExtend:        true,
	tpm.OrdPCRReset:      true,
	tpm.OrdTakeOwnership: true,
	tpm.OrdOwnerClear:    true,
	tpm.OrdForceClear:    true,
	tpm.OrdNVDefineSpace: true,
	tpm.OrdNVWriteValue:  true,
	tpm.OrdStirRandom:    true,
}

// ordinalOf extracts the ordinal from a marshaled TPM command.
func ordinalOf(cmd []byte) uint32 {
	if len(cmd) < 10 {
		return 0
	}
	return binary.BigEndian.Uint32(cmd[6:10])
}

// Dispatch runs one guest-originated ring payload against the instance
// bound to claimedFrom. The claimedFrom/claimedLaunch pair is whatever the
// delivering code path asserts — the connected backend passes the
// grant-verified truth, while a compromised dom0 component can pass
// anything, which is precisely the spoofing surface the Guard must close.
//
// The whole exchange — guard admission, engine execution, exchange
// recording, checkpoint, response finishing — runs under the instance's own
// lock only, so concurrent dispatches to different instances proceed in
// parallel lanes.
func (m *Manager) Dispatch(claimedFrom xen.DomID, claimedLaunch xen.LaunchDigest, payload []byte) ([]byte, error) {
	m.regMu.RLock()
	id, ok := m.byDom[claimedFrom]
	var inst *instance
	if ok {
		inst = m.instances[id]
	}
	m.regMu.RUnlock()
	if inst == nil {
		return nil, fmt.Errorf("%w: dom%d has no vTPM", ErrNoInstance, claimedFrom)
	}
	m.notifyTaps(claimedFrom, payload)

	inst.mu.Lock()
	defer inst.mu.Unlock()
	cmd, finish, err := m.guard.AdmitCommand(inst.info, claimedFrom, claimedLaunch, payload)
	if err != nil {
		return nil, err
	}
	execStart := time.Now()
	resp := inst.eng.Execute(cmd)
	// The engine work is done on the guest's behalf: charge it to the
	// guest's CPU account, as the hypervisor's scheduler accounting would.
	if dom, derr := m.hv.Domain(claimedFrom); derr == nil {
		dom.ChargeCPU(time.Since(execStart).Nanoseconds())
	}
	// Record the decoded exchange in dom0 arena memory: this is the
	// manager's working buffer a core dump would capture.
	m.recordExchangeLocked(inst, cmd, resp)
	if !m.cfg.DeferCheckpoints && mutatingOrdinals[ordinalOf(cmd)] {
		if err := m.checkpointLocked(inst); err != nil {
			return nil, err
		}
	}
	out, err := finish(resp)
	if !m.guard.RetainsPlaintext() {
		m.bus.Zeroize(inst.exchange)
	}
	if err != nil {
		return nil, err
	}
	return out, nil
}

// recordExchangeLocked copies the plaintext command and response into the
// instance's arena exchange buffer. Caller holds inst.mu.
func (m *Manager) recordExchangeLocked(inst *instance, cmd, resp []byte) {
	need := len(cmd) + len(resp)
	if len(inst.exchange) < need {
		m.bus.Zeroize(inst.exchange)
		buf, err := m.arena.Alloc(need)
		if err != nil {
			// Out of arena: fall back to truncated recording rather than
			// failing the command; the honesty buffer is observability, not
			// correctness.
			return
		}
		inst.exchange = buf
	}
	m.bus.Zeroize(inst.exchange)
	n := m.bus.GuardedCopy(inst.exchange, cmd)
	m.bus.GuardedCopy(inst.exchange[n:], resp)
}

// checkpointInstance persists an instance on demand, serializing with any
// in-flight dispatch through the instance lock.
func (m *Manager) checkpointInstance(inst *instance) error {
	inst.mu.Lock()
	defer inst.mu.Unlock()
	return m.checkpointLocked(inst)
}

// checkpointLocked persists an instance's current state through the guard,
// both to the store and to the in-memory mirror. Caller holds inst.mu.
func (m *Manager) checkpointLocked(inst *instance) error {
	state := inst.eng.SaveState()
	blob, err := m.guard.ProtectState(inst.info, state)
	if err != nil {
		return fmt.Errorf("vtpm: protecting state of instance %d: %w", inst.info.ID, err)
	}
	if err := m.store.Put(stateName(inst.info.ID), blob); err != nil {
		return err
	}
	if len(inst.mirror) < len(blob) {
		m.bus.Zeroize(inst.mirror)
		buf, err := m.arena.Alloc(len(blob))
		if err != nil {
			return err
		}
		inst.mirror = buf
	}
	m.bus.Zeroize(inst.mirror)
	m.bus.GuardedCopy(inst.mirror, blob)
	return nil
}

// CheckpointAll persists every live instance (used with DeferCheckpoints
// and at orderly shutdown).
func (m *Manager) CheckpointAll() error {
	for _, id := range m.Instances() {
		if err := m.Checkpoint(id); err != nil {
			return err
		}
	}
	return nil
}

// ReviveAll reloads every persisted instance that is not already live —
// the manager-restart recovery path. It returns the IDs revived.
func (m *Manager) ReviveAll() ([]InstanceID, error) {
	names, err := m.store.List()
	if err != nil {
		return nil, err
	}
	var revived []InstanceID
	for _, name := range names {
		var id InstanceID
		if _, err := fmt.Sscanf(name, "vtpm-%08d.state", &id); err != nil {
			continue // unrelated blob
		}
		m.regMu.RLock()
		_, live := m.instances[id]
		m.regMu.RUnlock()
		if live {
			continue
		}
		if err := m.ReviveInstance(id); err != nil {
			return revived, fmt.Errorf("vtpm: reviving instance %d: %w", id, err)
		}
		revived = append(revived, id)
	}
	return revived, nil
}

// Checkpoint persists one instance on demand.
func (m *Manager) Checkpoint(id InstanceID) error {
	inst, err := m.lookup(id)
	if err != nil {
		return err
	}
	return m.checkpointInstance(inst)
}

// ReviveInstance reloads a persisted instance from the store (after a
// manager restart). The instance comes back unbound.
func (m *Manager) ReviveInstance(id InstanceID) error {
	blob, err := m.store.Get(stateName(id))
	if err != nil {
		return err
	}
	// Recovering needs the instance's identity; after a restart the binding
	// table is empty, so recover with the bare ID.
	info := InstanceInfo{ID: id}
	state, err := m.guard.RecoverState(info, blob)
	if err != nil {
		return err
	}
	eng, err := tpm.RestoreState(state)
	if err != nil {
		return err
	}
	m.regMu.Lock()
	defer m.regMu.Unlock()
	if _, exists := m.instances[id]; exists {
		return fmt.Errorf("vtpm: instance %d already live", id)
	}
	m.instances[id] = &instance{info: info, eng: eng}
	if id >= m.nextID {
		m.nextID = id + 1
	}
	return nil
}

// DirectClient returns a TPM client wired straight to an instance's engine,
// bypassing ring, backend and guard. It exists for the trusted provisioning
// path (pre-boot PCR initialization by the domain builder) and for tests.
func (m *Manager) DirectClient(id InstanceID) (*tpm.Client, error) {
	inst, err := m.lookup(id)
	if err != nil {
		return nil, err
	}
	return tpm.NewClient(tpm.DirectTransport{TPM: inst.eng}, nil), nil
}
