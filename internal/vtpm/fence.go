package vtpm

import (
	"crypto/sha1"
	"errors"
	"fmt"
	"sync/atomic"

	"xvtpm/internal/tpm"
)

// Migration fencing: the single-host half of the cluster's two-phase
// ownership handoff (DESIGN.md §12).
//
// When an instance's ownership starts moving to another host, the source
// manager fences it: Dispatch rejects every subsequent command with a
// FencedError naming the new owner and the epoch the move was opened at,
// *before* the guard or engine run — so a fence rejection is a guarantee the
// command was never executed, and transport callers may retry it against the
// new owner without risking double execution. FenceInstance also drains the
// in-flight dispatch (by briefly acquiring the instance lock) so that when it
// returns, no command is mid-execution behind the fence.
//
// The fence is advisory metadata on the local manager; the durable fence is
// the epoch in every checkpoint header, which a federated store checks
// against the placement directory to reject a zombie's late writes.

// ErrFenced is the sentinel every fence rejection wraps: the instance has
// moved (or is moving) to another owner, and the command was not executed —
// "retry elsewhere", as opposed to a real dispatch failure.
var ErrFenced = errors.New("vtpm: instance fenced, ownership moved")

// FencedError is the concrete fence rejection, carrying the redirect: which
// owner now holds the instance, and at which ownership epoch. It matches
// ErrFenced under errors.Is.
type FencedError struct {
	// ID is the fenced instance (the source manager's local ID).
	ID InstanceID
	// Owner names the host the ownership moved to.
	Owner string
	// Epoch is the ownership generation the move was opened at.
	Epoch uint64
}

// Error implements error.
func (e *FencedError) Error() string {
	return fmt.Sprintf("vtpm: instance %d fenced, owner %q at epoch %d", e.ID, e.Owner, e.Epoch)
}

// Is reports that a FencedError matches the ErrFenced sentinel.
func (e *FencedError) Is(target error) bool { return target == ErrFenced }

// fencePtr is the lock-free fence slot embedded in each instance.
type fencePtr = atomic.Pointer[FencedError]

// FenceInstance fences an instance for an ownership move: every Dispatch
// from here on is rejected with a FencedError redirecting to owner at epoch.
// Before returning it drains the in-flight dispatch, so the caller knows no
// command is executing behind the fence. Fencing an already-fenced instance
// replaces the redirect (a second move supersedes the first).
func (m *Manager) FenceInstance(id InstanceID, owner string, epoch uint64) error {
	inst, err := m.lookup(id)
	if err != nil {
		return err
	}
	inst.fence.Store(&FencedError{ID: id, Owner: owner, Epoch: epoch})
	// Drain: dispatchInstance holds inst.mu for the whole guard+engine
	// exchange, so acquiring it once means every dispatch admitted before
	// the fence landed has finished executing.
	inst.mu.Lock()
	inst.mu.Unlock() //nolint:staticcheck // SA2001: empty critical section is the drain barrier
	return nil
}

// UnfenceInstance lifts a fence after a move rolled back to this manager.
func (m *Manager) UnfenceInstance(id InstanceID) error {
	inst, err := m.lookup(id)
	if err != nil {
		return err
	}
	inst.fence.Store(nil)
	return nil
}

// InstanceFence returns the active fence redirect, if any.
func (m *Manager) InstanceFence(id InstanceID) (*FencedError, bool) {
	inst, err := m.lookup(id)
	if err != nil {
		return nil, false
	}
	fe := inst.fence.Load()
	return fe, fe != nil
}

// FenceRejects counts dispatches rejected by instance fences since the
// manager started.
func (m *Manager) FenceRejects() uint64 { return m.fenceRejects.Load() }

// SetEpoch installs an instance's ownership epoch (assigned by the placement
// directory). Subsequent checkpoints carry it in their headers.
func (m *Manager) SetEpoch(id InstanceID, epoch uint64) error {
	inst, err := m.lookup(id)
	if err != nil {
		return err
	}
	inst.mu.Lock()
	inst.info.Epoch = epoch
	inst.mu.Unlock()
	return nil
}

// PCRDigest fingerprints an instance's full SHA-1 PCR bank: the post-import
// equality check of a migration compares source and destination fingerprints
// before the source copy is destroyed. Both profiles carry a SHA-1 bank, so
// one digest covers 1.2 and 2.0 instances.
func (m *Manager) PCRDigest(id InstanceID) ([tpm.DigestSize]byte, error) {
	var out [tpm.DigestSize]byte
	inst, err := m.lookup(id)
	if err != nil {
		return out, err
	}
	inst.mu.Lock()
	defer inst.mu.Unlock()
	h := sha1.New()
	for i := 0; i < tpm.NumPCRs; i++ {
		v, err := inst.eng.PCRValue(i)
		if err != nil {
			return out, fmt.Errorf("vtpm: reading PCR %d of instance %d: %w", i, id, err)
		}
		h.Write(v[:])
	}
	copy(out[:], h.Sum(nil))
	return out, nil
}

// AdoptCheckpoint revives a checkpoint blob that was committed by another
// manager — the failure-driven evacuation path. origID is the instance's ID
// on the manager that wrote the blob (state-envelope keys derive from it;
// under a federation master any member host can open it). The adopted
// instance registers under a fresh local ID, unbound, carrying the epoch the
// blob was committed at, and is checkpointed locally before the new ID is
// returned.
func (m *Manager) AdoptCheckpoint(origID InstanceID, blob []byte) (InstanceID, error) {
	declared, epoch, envelope, err := UnwrapCheckpointEpoch(blob)
	if err != nil {
		return 0, fmt.Errorf("vtpm: adopting checkpoint of foreign instance %d: %w", origID, err)
	}
	state, err := m.guard.RecoverState(InstanceInfo{ID: origID, Profile: declared}, envelope)
	if err != nil {
		return 0, fmt.Errorf("vtpm: opening foreign envelope of instance %d: %w", origID, err)
	}
	eng, err := restoreDeclaredEngine(declared, state)
	if err != nil {
		return 0, fmt.Errorf("vtpm: restoring foreign state of instance %d: %w", origID, err)
	}
	m.regMu.Lock()
	id := m.nextID
	m.nextID++
	inst := m.newInstance(InstanceInfo{ID: id, Profile: declared, Epoch: epoch}, eng)
	m.instances[id] = inst
	m.regMu.Unlock()
	if err := m.checkpointInstance(inst, true); err != nil {
		return 0, err
	}
	return id, nil
}

// StateName is the store key of an instance's checkpoint blob, exported for
// federated stores that map local blob names onto a shared namespace.
func StateName(id InstanceID) string { return stateName(id) }
