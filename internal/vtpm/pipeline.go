package vtpm

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"xvtpm/internal/metrics"
	"xvtpm/internal/ring"
	"xvtpm/internal/xen"
)

// TransportMetrics instruments the guest transport path: end-to-end guest
// round-trip latency (recorded by frontends) and the request batch size per
// backend drain (recorded by backends). One instance serves a whole host;
// both histograms are atomic and zero-alloc to record.
type TransportMetrics struct {
	// GuestRTT is the guest-observed command round trip: encode, ring,
	// dispatch, ring back, decode.
	GuestRTT *metrics.Histogram
	// RingBatch distributes the number of request frames each backend drain
	// pulled per wakeup (recorded as a Duration whose integer value is the
	// frame count).
	RingBatch *metrics.Histogram
}

// ringBatchBounds bucket batch sizes 1..N for the 8-slot device ring, with
// headroom for larger geometries.
var ringBatchBounds = []int64{1, 2, 3, 4, 6, 8, 12, 16, 32}

// NewTransportMetrics builds the host's transport instruments.
func NewTransportMetrics() *TransportMetrics {
	return &TransportMetrics{
		GuestRTT:  metrics.NewHistogram(nil),
		RingBatch: metrics.NewHistogram(ringBatchBounds),
	}
}

// Register exposes the transport instruments in reg.
func (t *TransportMetrics) Register(reg *metrics.Registry) error {
	if err := reg.RegisterHistogram("xvtpm_guest_rtt_seconds",
		"End-to-end guest command round-trip latency.", t.GuestRTT); err != nil {
		return err
	}
	return reg.RegisterHistogram("xvtpm_ring_batch_frames",
		"Request frames drained per backend wakeup.", t.RingBatch)
}

// FrontendConfig tunes one guest frontend.
type FrontendConfig struct {
	// PipelineDepth is the maximum number of commands the frontend keeps in
	// flight on the ring at once. 0 or 1 selects strict request/response
	// lockstep (the /dev/tpm0 model); larger values let concurrent callers
	// overlap their round trips. Clamped to the ring's slot count.
	PipelineDepth int
	// Metrics, when non-nil, receives guest round-trip latencies.
	Metrics *TransportMetrics
}

// pipeSpinPolls bounds the optimistic re-poll loop a waiter runs before
// arming the event-channel timeout: the backend usually answers within a few
// microseconds, so yielding the processor a bounded number of times catches
// most responses without ever sleeping.
const pipeSpinPolls = 64

// pendSlot is one in-flight command in the pipelined frontend's pending
// table. The ring frame tag (id) matches responses to slots out of order;
// seq is the channel sequence number the response envelope must carry.
type pendSlot struct {
	id   uint64
	seq  uint64
	rsp  []byte // framed response payload, copied out of the drain batch
	dec  []byte // reusable decode buffer
	used bool
	done bool
}

// pipeline is the pending table plus the cooperative drain state of one
// pipelined frontend. One waiter at a time is elected drainer; it pulls
// whole response batches off the ring and deposits them into slots by frame
// tag, then wakes everyone to re-check.
type pipeline struct {
	mu       sync.Mutex
	slotFree sync.Cond // waiters for a free pending slot
	arrival  sync.Cond // waiters for a deposited response
	slots    []pendSlot
	draining bool
	stale    uint64 // responses whose tag matched no in-flight slot
	txBuf    []byte // shared framed-request build buffer (under mu)
	rx       ring.Batch
}

func newPipeline(depth int) *pipeline {
	p := &pipeline{slots: make([]pendSlot, depth)}
	p.slotFree.L = &p.mu
	p.arrival.L = &p.mu
	return p
}

// StaleResponses reports how many drained responses matched no in-flight
// command (tests and fuzzing observability).
func (f *Frontend) StaleResponses() uint64 {
	if f.pipe == nil {
		return 0
	}
	f.pipe.mu.Lock()
	defer f.pipe.mu.Unlock()
	return f.pipe.stale
}

// depositLocked matches one drained response frame to its pending slot by
// ring tag, copying the payload into the slot. Unmatched frames — stale
// tags, duplicates for already-completed slots — are counted and dropped.
// Called with p.mu held.
func (p *pipeline) depositLocked(id uint64, payload []byte) {
	for j := range p.slots {
		s := &p.slots[j]
		if s.used && !s.done && s.id == id {
			s.rsp = append(s.rsp[:0], payload...)
			s.done = true
			return
		}
	}
	p.stale++
}

// depositBatch deposits a whole drained batch under p.mu.
func (p *pipeline) depositBatch(n int) {
	p.mu.Lock()
	for i := 0; i < n; i++ {
		id, payload := p.rx.Frame(i)
		p.depositLocked(id, payload)
	}
	p.mu.Unlock()
}

// transmitPipelined is Transmit for PipelineDepth > 1: claim a pending slot,
// encode and enqueue under the pipeline lock (so ring order matches sequence
// order, which the server's anti-replay window requires), then wait for the
// slot's response, cooperatively draining the ring.
func (f *Frontend) transmitPipelined(cmd []byte) ([]byte, error) {
	var start time.Time
	tm := f.cfg.Metrics
	if tm != nil {
		start = time.Now()
	}
	p := f.pipe
	p.mu.Lock()
	var s *pendSlot
	for {
		for j := range p.slots {
			if !p.slots[j].used {
				s = &p.slots[j]
				break
			}
		}
		if s != nil {
			break
		}
		p.slotFree.Wait()
	}
	s.used, s.done = true, false
	p.txBuf = append(p.txBuf[:0], payloadEncoded)
	var seq uint64
	if f.seqEnc != nil {
		buf, sq, err := f.seqEnc.EncodeRequestAppendSeq(p.txBuf, cmd)
		if err != nil {
			s.used = false
			p.mu.Unlock()
			p.slotFree.Signal()
			return nil, err
		}
		p.txBuf, seq = buf, sq
	} else {
		enc, err := f.codec.EncodeRequest(cmd)
		if err != nil {
			s.used = false
			p.mu.Unlock()
			p.slotFree.Signal()
			return nil, err
		}
		p.txBuf = append(p.txBuf, enc...)
	}
	// Depth never exceeds the slot count and every in-flight command's
	// response is drained eagerly, so the ring cannot be full here and the
	// enqueue never blocks while p.mu is held.
	id, err := f.r.EnqueueRequest(p.txBuf)
	if err != nil {
		s.used = false
		p.mu.Unlock()
		p.slotFree.Signal()
		return nil, err
	}
	s.id, s.seq = id, seq
	p.mu.Unlock()
	if f.r.RequestNotifyWanted() {
		if err := f.hv.EventChannels().Notify(f.dom.ID(), f.port); err != nil {
			f.failSlot(s)
			return nil, err
		}
	} else {
		f.hv.EventChannels().NoteSuppressed()
	}

	p.mu.Lock()
	for !s.done {
		if p.draining {
			p.arrival.Wait()
			continue
		}
		p.draining = true
		p.mu.Unlock()
		derr := f.drainResponses(p)
		p.mu.Lock()
		p.draining = false
		p.arrival.Broadcast()
		if derr != nil && !s.done {
			s.used = false
			p.mu.Unlock()
			p.slotFree.Signal()
			return nil, derr
		}
	}
	// The slot is ours until used is cleared, so decode outside p.mu.
	p.mu.Unlock()
	out, err := f.decodeSlot(s)
	p.mu.Lock()
	s.used = false
	p.mu.Unlock()
	p.slotFree.Signal()
	if err == nil && tm != nil {
		tm.GuestRTT.Record(time.Since(start))
	}
	return out, err
}

// failSlot releases a claimed slot after a post-enqueue failure.
func (f *Frontend) failSlot(s *pendSlot) {
	f.pipe.mu.Lock()
	s.used = false
	f.pipe.mu.Unlock()
	f.pipe.slotFree.Signal()
}

// decodeSlot unwraps a completed slot's framed response. The returned slice
// is caller-owned (copied or freshly decoded), since the slot is recycled
// immediately after.
func (f *Frontend) decodeSlot(s *pendSlot) ([]byte, error) {
	rp := s.rsp
	if len(rp) == 0 {
		return nil, ErrShortPayload
	}
	switch rp[0] {
	case payloadRaw:
		return append([]byte(nil), rp[1:]...), nil
	case payloadEncoded:
		if f.seqEnc != nil {
			return f.seqEnc.DecodeResponseAppendSeq(nil, rp[1:], s.seq)
		}
		return f.codec.DecodeResponse(rp[1:])
	default:
		return nil, fmt.Errorf("vtpm: unknown response framing %d", rp[0])
	}
}

// drainResponses pulls response batches off the ring until at least one
// frame is deposited or an error occurs. While running, the frontend's
// response-notify flag is cleared so the backend coalesces doorbells; it is
// re-raised on every exit and before every sleep (with a final ring check)
// so no response is ever announced into silence.
func (f *Frontend) drainResponses(p *pipeline) error {
	ec := f.hv.EventChannels()
	f.r.SetResponseNotify(false)
	for spin := 0; ; spin++ {
		n, err := f.r.DequeueResponseBatchInto(&p.rx, 0)
		if err != nil {
			f.r.SetResponseNotify(true)
			return err
		}
		if n > 0 {
			p.depositBatch(n)
			f.r.SetResponseNotify(true)
			return nil
		}
		if spin < pipeSpinPolls {
			runtime.Gosched()
			continue
		}
		// About to sleep: re-enable doorbells, then check once more.
		f.r.SetResponseNotify(true)
		n, err = f.r.DequeueResponseBatchInto(&p.rx, 0)
		if err != nil {
			return err
		}
		if n > 0 {
			p.depositBatch(n)
			return nil
		}
		if werr := ec.WaitTimeout(f.dom.ID(), f.port, driverWaitPoll); werr != nil &&
			!errors.Is(werr, xen.ErrWaitTimeout) {
			return werr
		}
		f.r.SetResponseNotify(false)
		spin = 0
	}
}
