package vtpm

import (
	"sync"
	"testing"
	"time"

	"xvtpm/internal/metrics"
	"xvtpm/internal/tpm"
	"xvtpm/internal/xen"
)

// connectPipelined is connectDevice with an explicit frontend configuration.
func connectPipelined(t *testing.T, guard Guard, cfg FrontendConfig) (*xen.Hypervisor, *Backend, *xen.Domain, *Frontend, *tpm.Client) {
	t.Helper()
	hv, xs, mgr, be := newTestRig(t, guard)
	dom := mkGuestDom(t, hv, xs, "g")
	id, err := mgr.CreateInstance()
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.BindInstance(id, dom); err != nil {
		t.Fatal(err)
	}
	fe := NewFrontendCfg(hv, xs, dom, PlainCodec{}, cfg)
	if err := fe.Setup(); err != nil {
		t.Fatal(err)
	}
	if err := be.AttachDevice(dom.ID()); err != nil {
		t.Fatal(err)
	}
	if err := fe.WaitConnected(); err != nil {
		t.Fatal(err)
	}
	return hv, be, dom, fe, tpm.NewClient(fe, nil)
}

func TestPipelinedConcurrentTransmit(t *testing.T) {
	tm := NewTransportMetrics()
	_, _, _, fe, cli := connectPipelined(t, &passGuard{},
		FrontendConfig{PipelineDepth: 8, Metrics: tm})
	if err := cli.SelfTestFull(); err != nil {
		t.Fatal(err)
	}
	const workers, perWorker = 8, 50
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perWorker; j++ {
				if _, err := cli.GetRandom(16); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := fe.StaleResponses(); got != 0 {
		t.Fatalf("stale responses = %d, want 0", got)
	}
	// Every command round trip must have been timed.
	if s := tm.GuestRTT.Summarize(); s.Count < uint64(workers*perWorker) {
		t.Fatalf("GuestRTT count = %d, want >= %d", s.Count, workers*perWorker)
	}
}

func TestPipelineDepthClampedToRingSlots(t *testing.T) {
	hv := xen.NewHypervisor(xen.DomainConfig{Name: "Domain-0", Pages: 64})
	dom, err := hv.CreateDomain(xen.DomainConfig{Name: "g", Kernel: []byte("k")})
	if err != nil {
		t.Fatal(err)
	}
	fe := NewFrontendCfg(hv, nil, dom, PlainCodec{}, FrontendConfig{PipelineDepth: 1024})
	if got, want := fe.cfg.PipelineDepth, int(deviceRingGeometry.NumSlots); got != want {
		t.Fatalf("depth = %d, want clamp to %d", got, want)
	}
	if fe.pipe == nil || len(fe.pipe.slots) != int(deviceRingGeometry.NumSlots) {
		t.Fatal("pending table not sized to the clamped depth")
	}
}

func TestPipelineDepthOneStaysLockstep(t *testing.T) {
	hv := xen.NewHypervisor(xen.DomainConfig{Name: "Domain-0", Pages: 64})
	dom, err := hv.CreateDomain(xen.DomainConfig{Name: "g", Kernel: []byte("k")})
	if err != nil {
		t.Fatal(err)
	}
	for _, depth := range []int{0, 1} {
		fe := NewFrontendCfg(hv, nil, dom, PlainCodec{}, FrontendConfig{PipelineDepth: depth})
		if fe.pipe != nil {
			t.Fatalf("depth %d built a pending table; want lockstep", depth)
		}
	}
}

// TestPipelineSurvivesDroppedNotifies drops every event-channel notification
// in both directions: doorbells are gone entirely, so the only thing keeping
// the device alive is the WaitTimeout re-poll in the backend serve loop and
// the frontend drain loop. Traffic must still complete.
func TestPipelineSurvivesDroppedNotifies(t *testing.T) {
	hv, _, _, fe, cli := connectPipelined(t, &passGuard{}, FrontendConfig{PipelineDepth: 4})
	if err := cli.SelfTestFull(); err != nil {
		t.Fatal(err)
	}
	ec := hv.EventChannels()
	ec.SetNotifyFault(func(xen.DomID, xen.EvtchnPort) bool { return true })
	defer ec.SetNotifyFault(nil)
	// Let the device go fully idle between commands: an idle backend re-raises
	// its doorbell flag, so each command sends a real notify — which the hook
	// swallows — and completes only because WaitTimeout re-polls the ring.
	for i := 0; i < 5; i++ {
		time.Sleep(5 * driverWaitPoll)
		if _, err := cli.GetRandom(8); err != nil {
			t.Fatalf("command %d: %v", i, err)
		}
	}
	if ec.DroppedNotifies() == 0 {
		t.Fatal("fault hook never fired; test exercised nothing")
	}
	_ = fe
}

// TestPipelinedTrafficSuppressesDoorbells runs enough overlapping traffic
// that the RING_FINAL_CHECK handshake coalesces at least some doorbells, and
// checks the suppressed-notify counter moved. Lockstep single-command
// round trips would make this flaky; sustained 8-deep traffic makes a
// drain-phase overlap all but certain.
func TestPipelinedTrafficSuppressesDoorbells(t *testing.T) {
	hv, _, _, _, cli := connectPipelined(t, &passGuard{}, FrontendConfig{PipelineDepth: 8})
	if err := cli.SelfTestFull(); err != nil {
		t.Fatal(err)
	}
	ec := hv.EventChannels()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				if _, err := cli.GetRandom(8); err != nil {
					return
				}
			}
		}()
	}
	wg.Wait()
	if ec.SuppressedNotifies() == 0 {
		t.Skip("no doorbell overlap this run (timing); counter plumbing is covered in xen tests")
	}
}

func TestPipelineStaleResponseCounted(t *testing.T) {
	p := newPipeline(4)
	p.slots[0].used = true
	p.slots[0].id = 7
	// Tag 9 matches nothing in flight; tag 7 deposits.
	p.mu.Lock()
	p.depositLocked(9, []byte("stale"))
	p.depositLocked(7, []byte("good"))
	// A duplicate for an already-completed slot is stale too.
	p.depositLocked(7, []byte("dup"))
	p.mu.Unlock()
	if p.stale != 2 {
		t.Fatalf("stale = %d, want 2", p.stale)
	}
	if !p.slots[0].done || string(p.slots[0].rsp) != "good" {
		t.Fatalf("slot state = %+v", p.slots[0])
	}
}

func TestTransportMetricsRegister(t *testing.T) {
	tm := NewTransportMetrics()
	reg := metrics.NewRegistry()
	if err := tm.Register(reg); err != nil {
		t.Fatal(err)
	}
	if err := tm.Register(metrics.NewRegistry()); err != nil {
		t.Fatal(err)
	}
	tm.GuestRTT.Record(1000)
	tm.RingBatch.Record(3)
	if s := tm.RingBatch.Summarize(); s.Count != 1 {
		t.Fatalf("ring batch count = %d", s.Count)
	}
}
