package vtpm

import (
	"crypto/sha1"
	"errors"
	"strings"
	"testing"
	"time"

	"xvtpm/internal/tpm"
	"xvtpm/internal/xen"
)

// newCkptRig builds a hypervisor + manager over the given store with full
// control of the ManagerConfig — the checkpoint tests sweep policies and
// durability windows.
func newCkptRig(t *testing.T, store Store, guard Guard, cfg ManagerConfig) (*xen.Hypervisor, *Manager) {
	t.Helper()
	hv := xen.NewHypervisor(xen.DomainConfig{Name: "Domain-0", Pages: 2048})
	dom0, err := hv.Domain(xen.Dom0)
	if err != nil {
		t.Fatal(err)
	}
	return hv, NewManager(hv, store, xen.NewArena(dom0), guard, cfg)
}

// extendStepCmd builds the Extend command for one step of a deterministic
// PCR chain, returning the command and the digest extended.
func extendStepCmd(pcr uint32, step int) ([]byte, [tpm.DigestSize]byte) {
	m := sha1.Sum([]byte{byte(step), byte(step >> 8)})
	w := tpm.NewWriter()
	w.U16(tpm.TagRQUCommand)
	w.U32(uint32(10 + 4 + len(m)))
	w.U32(tpm.OrdExtend)
	w.U32(pcr)
	w.Raw(m[:])
	return w.Bytes(), m
}

// pcrChain precomputes the PCR value after each of n extendStepCmd steps:
// chain[k] is the PCR after k extends, chain[0] the reset value.
func pcrChain(n int) [][tpm.DigestSize]byte {
	chain := make([][tpm.DigestSize]byte, n+1)
	for k := 1; k <= n; k++ {
		_, m := extendStepCmd(7, k)
		chain[k] = sha1.Sum(append(chain[k-1][:], m[:]...))
	}
	return chain
}

// chainIndex finds which step of the chain a PCR value corresponds to, or -1
// if the value is not on the chain at all (a torn/invented state).
func chainIndex(chain [][tpm.DigestSize]byte, v [tpm.DigestSize]byte) int {
	for k, c := range chain {
		if c == v {
			return k
		}
	}
	return -1
}

// TestWritebackCrashConsistency kills a manager mid-burst (no Close, no
// flush — the crash model) and asserts the store never trails the engine by
// more than the configured MaxDirtyCommands window, and that what it holds
// is a real checkpoint, not a torn state.
func TestWritebackCrashConsistency(t *testing.T) {
	const (
		window = 8
		burst  = 50
	)
	store := NewMemStore()
	hv, mgr := newCkptRig(t, store, &passGuard{protect: true}, ManagerConfig{
		RSABits: testBits, Seed: []byte("crash"),
		Checkpoint:       CheckpointWriteback,
		MaxDirtyCommands: window,
		// An interval the test never reaches: only the backpressure gate
		// persists, so the bound being checked is exactly MaxDirtyCommands.
		MaxDirtyInterval: time.Hour,
	})
	dom, err := hv.CreateDomain(xen.DomainConfig{Name: "g", Kernel: []byte("k")})
	if err != nil {
		t.Fatal(err)
	}
	id, err := mgr.CreateInstance()
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.BindInstance(id, dom); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= burst; i++ {
		cmd, _ := extendStepCmd(7, i)
		if _, err := mgr.Dispatch(dom.ID(), dom.Launch(), cmd); err != nil {
			t.Fatalf("dispatch %d: %v", i, err)
		}
	}
	// Crash: the manager is abandoned here — no Close, no flush. Revive
	// from whatever the store holds.
	hv2 := xen.NewHypervisor(xen.DomainConfig{Name: "Domain-0", Pages: 2048})
	dom0, _ := hv2.Domain(xen.Dom0)
	mgr2 := NewManager(hv2, store, xen.NewArena(dom0), &passGuard{protect: true}, ManagerConfig{
		RSABits: testBits, Checkpoint: CheckpointWriteback, MaxDirtyCommands: window,
	})
	defer mgr2.Close()
	revived, err := mgr2.ReviveAll()
	if err != nil {
		t.Fatalf("ReviveAll: %v", err)
	}
	if len(revived) != 1 || revived[0] != id {
		t.Fatalf("revived %v, want [%d]", revived, id)
	}
	cli, err := mgr2.DirectClient(id)
	if err != nil {
		t.Fatal(err)
	}
	v, err := cli.PCRRead(7)
	if err != nil {
		t.Fatal(err)
	}
	chain := pcrChain(burst)
	k := chainIndex(chain, v)
	if k < 0 {
		t.Fatalf("restored PCR %x is not on the extend chain: torn checkpoint", v)
	}
	if k < burst-window {
		t.Fatalf("restored to step %d of %d: lost %d mutations, durability window is %d",
			k, burst, burst-k, window)
	}
	t.Logf("restored to step %d of %d (window %d)", k, burst, window)
}

// TestWritebackFlushBarriersCarryLatestMutation checks the two state-handoff
// barriers after a burst: UnbindInstance must leave the store fully current,
// and ExportInstance/ImportInstance (the migration path) must carry the very
// latest mutation to the destination.
func TestWritebackFlushBarriersCarryLatestMutation(t *testing.T) {
	const burst = 37
	store := NewMemStore()
	guard := &passGuard{protect: true}
	hv, mgr := newCkptRig(t, store, guard, ManagerConfig{
		RSABits: testBits, Seed: []byte("flush"),
		Checkpoint:       CheckpointWriteback,
		MaxDirtyCommands: 1024, // never gate: only barriers persist
		MaxDirtyInterval: time.Hour,
	})
	defer mgr.Close()
	dom, err := hv.CreateDomain(xen.DomainConfig{Name: "g", Kernel: []byte("k")})
	if err != nil {
		t.Fatal(err)
	}
	id, err := mgr.CreateInstance()
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.BindInstance(id, dom); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= burst; i++ {
		cmd, _ := extendStepCmd(7, i)
		if _, err := mgr.Dispatch(dom.ID(), dom.Launch(), cmd); err != nil {
			t.Fatalf("dispatch %d: %v", i, err)
		}
	}
	chain := pcrChain(burst)

	// Unbind is a flush barrier: the store must now be exactly current.
	if err := mgr.UnbindInstance(id); err != nil {
		t.Fatal(err)
	}
	blob, err := store.Get(stateName(id))
	if err != nil {
		t.Fatal(err)
	}
	profile, envelope, err := UnwrapCheckpoint(blob)
	if err != nil {
		t.Fatal(err)
	}
	state, err := guard.RecoverState(InstanceInfo{ID: id, Profile: profile}, envelope)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := tpm.RestoreState(state)
	if err != nil {
		t.Fatal(err)
	}
	v, err := tpm.NewClient(tpm.DirectTransport{TPM: eng}, nil).PCRRead(7)
	if err != nil {
		t.Fatal(err)
	}
	if v != chain[burst] {
		t.Fatalf("store after unbind at step %d, want %d (latest)", chainIndex(chain, v), burst)
	}

	// Migration always carries the latest mutation.
	img, err := mgr.ExportInstance(id, nil)
	if err != nil {
		t.Fatal(err)
	}
	store2 := NewMemStore()
	_, mgr2 := newCkptRig(t, store2, guard, ManagerConfig{
		RSABits: testBits, Checkpoint: CheckpointWriteback,
	})
	defer mgr2.Close()
	nid, err := mgr2.ImportInstance(img)
	if err != nil {
		t.Fatal(err)
	}
	cli, err := mgr2.DirectClient(nid)
	if err != nil {
		t.Fatal(err)
	}
	mv, err := cli.PCRRead(7)
	if err != nil {
		t.Fatal(err)
	}
	if mv != chain[burst] {
		t.Fatalf("migrated instance at step %d, want %d (latest)", chainIndex(chain, mv), burst)
	}
}

// TestWritebackCoalescesBurst checks the pipeline's point: a burst inside
// the durability window becomes one checkpoint, not one per mutation.
func TestWritebackCoalescesBurst(t *testing.T) {
	const burst = 30
	store := NewMemStore()
	hv, mgr := newCkptRig(t, store, &passGuard{}, ManagerConfig{
		RSABits: testBits, Seed: []byte("coalesce"),
		Checkpoint:       CheckpointWriteback,
		MaxDirtyCommands: 64, // burst fits the window
		MaxDirtyInterval: time.Hour,
	})
	defer mgr.Close()
	dom, err := hv.CreateDomain(xen.DomainConfig{Name: "g", Kernel: []byte("k")})
	if err != nil {
		t.Fatal(err)
	}
	id, err := mgr.CreateInstance()
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.BindInstance(id, dom); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= burst; i++ {
		cmd, _ := extendStepCmd(7, i)
		if _, err := mgr.Dispatch(dom.ID(), dom.Launch(), cmd); err != nil {
			t.Fatalf("dispatch %d: %v", i, err)
		}
	}
	if err := mgr.Checkpoint(id); err != nil {
		t.Fatal(err)
	}
	s := mgr.CheckpointStats()
	if s.Mutations != burst {
		t.Fatalf("Mutations = %d, want %d", s.Mutations, burst)
	}
	if s.Coalesced != burst {
		t.Fatalf("Coalesced = %d, want %d after flush", s.Coalesced, burst)
	}
	// CreateInstance's initial persist plus the flush, and possibly a stray
	// timer/urgent persist — but nowhere near one per mutation.
	if s.Checkpoints >= burst {
		t.Fatalf("Checkpoints = %d: no coalescing happened (%d mutations)", s.Checkpoints, burst)
	}
	if r := s.CoalesceRatio(); r <= 1 {
		t.Fatalf("CoalesceRatio = %.2f, want > 1", r)
	}
}

// failStore wraps a Store and fails Put for one key — the wedged-instance
// model for the error-aggregation tests.
type failStore struct {
	Store
	failName string
}

func (f *failStore) Put(name string, blob []byte) error {
	if name == f.failName {
		return errors.New("injected store failure")
	}
	return f.Store.Put(name, blob)
}

// TestCheckpointAllContinuesPastFailure: one wedged instance must not block
// shutdown persistence of the rest, and the aggregate error must name it.
func TestCheckpointAllContinuesPastFailure(t *testing.T) {
	fs := &failStore{Store: NewMemStore()}
	_, mgr := newCkptRig(t, fs, &passGuard{}, ManagerConfig{
		RSABits: testBits, Seed: []byte("ckall"), DeferCheckpoints: true,
	})
	defer mgr.Close()
	var ids []InstanceID
	for i := 0; i < 3; i++ {
		id, err := mgr.CreateInstance()
		if err != nil {
			t.Fatal(err)
		}
		cli, _ := mgr.DirectClient(id)
		if _, err := cli.Extend(5, sha1.Sum([]byte{byte(i)})); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	before := make(map[InstanceID][]byte)
	for _, id := range ids {
		b, _ := fs.Get(stateName(id))
		before[id] = b
	}
	fs.failName = stateName(ids[1])
	err := mgr.CheckpointAll()
	if err == nil {
		t.Fatal("CheckpointAll succeeded despite injected failure")
	}
	if !strings.Contains(err.Error(), "instance 2") {
		t.Fatalf("aggregate error does not name the wedged instance: %v", err)
	}
	for _, id := range []InstanceID{ids[0], ids[2]} {
		after, _ := fs.Get(stateName(id))
		if string(after) == string(before[id]) {
			t.Fatalf("instance %d not persisted past the wedged one", id)
		}
	}
}

// TestReviveAllContinuesPastCorruptBlob: a corrupt blob yields an aggregated
// error but does not abort recovery of the healthy instances.
func TestReviveAllContinuesPastCorruptBlob(t *testing.T) {
	store := NewMemStore()
	_, mgr := newCkptRig(t, store, &passGuard{}, ManagerConfig{
		RSABits: testBits, Seed: []byte("revive"),
	})
	defer mgr.Close()
	id, err := mgr.CreateInstance()
	if err != nil {
		t.Fatal(err)
	}
	store.Put(stateName(99), []byte("garbage, not a state blob")) //nolint:errcheck
	// Restart: drop the live instance, keep the store.
	blob, _ := store.Get(stateName(id))
	mgr.DestroyInstance(id) //nolint:errcheck
	store.Put(stateName(id), blob)

	revived, err := mgr.ReviveAll()
	if err == nil {
		t.Fatal("ReviveAll swallowed the corrupt blob")
	}
	if !strings.Contains(err.Error(), "instance 99") {
		t.Fatalf("aggregate error does not name the corrupt blob: %v", err)
	}
	if len(revived) != 1 || revived[0] != id {
		t.Fatalf("revived %v, want [%d]", revived, id)
	}
}

// TestDestroyUnderWritebackLeavesNoGhostBlob: a destroy racing the
// checkpoint worker must never let a late persist re-create the deleted
// state blob.
func TestDestroyUnderWritebackLeavesNoGhostBlob(t *testing.T) {
	store := NewMemStore()
	hv, mgr := newCkptRig(t, store, &passGuard{}, ManagerConfig{
		RSABits: testBits, Seed: []byte("ghost"),
		Checkpoint:       CheckpointWriteback,
		MaxDirtyCommands: 4,
		MaxDirtyInterval: time.Microsecond, // keep the worker busy
	})
	defer mgr.Close()
	dom, err := hv.CreateDomain(xen.DomainConfig{Name: "g", Kernel: []byte("k")})
	if err != nil {
		t.Fatal(err)
	}
	id, err := mgr.CreateInstance()
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.BindInstance(id, dom); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 20; i++ {
		cmd, _ := extendStepCmd(7, i)
		if _, err := mgr.Dispatch(dom.ID(), dom.Launch(), cmd); err != nil {
			t.Fatal(err)
		}
	}
	if err := mgr.DestroyInstance(id); err != nil {
		t.Fatal(err)
	}
	// Give any escaped persist a chance to land before checking.
	time.Sleep(10 * time.Millisecond)
	if _, err := store.Get(stateName(id)); !errors.Is(err, ErrNoState) {
		t.Fatalf("state blob for destroyed instance: err=%v", err)
	}
}
