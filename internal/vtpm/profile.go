package vtpm

import (
	"errors"
	"fmt"

	"xvtpm/internal/tpm"
)

// Profile plumbing: every persisted or migrated instance blob declares which
// command profile its engine speaks, in plaintext, ahead of the guard's
// protected envelope. The declaration is deliberately outside the envelope —
// a revive or migration import must know which deserializer to hand the
// opened state to before it can open anything, and the profile is topology
// metadata, not a secret. The restored engine's own self-describing state
// magic is then checked against the declaration, so a tampered header cannot
// smuggle state across profiles.

// Profile-flow errors.
var (
	// ErrProfileMismatch reports an attempt to import or revive state whose
	// declared profile does not match the engine the blob actually contains,
	// or to migrate an instance into a slot of the other profile. It is
	// distinct from ErrBadEnvelope: the envelope is intact, the profiles
	// genuinely disagree.
	ErrProfileMismatch = errors.New("vtpm: TPM profile mismatch")
)

// Checkpoint header: magic ∥ version ∥ profile, prepended in plaintext to
// every stored instance blob.
const (
	ckptMagic   = "XCKP"
	ckptVersion = 1
	ckptHdrLen  = len(ckptMagic) + 2
)

// appendCheckpointHeader appends the plaintext profile header to dst.
func appendCheckpointHeader(dst []byte, p tpm.Profile) []byte {
	dst = append(dst, ckptMagic...)
	dst = append(dst, ckptVersion, byte(p))
	return dst
}

// UnwrapCheckpoint splits a stored instance blob into its declared profile
// and the guard envelope that follows. Blobs from before the profile header
// existed carry no header; they are accepted and declared Profile12, the only
// profile that existed then. Exported because everything that reads stored
// blobs out-of-band — the migration receiver, the attack harness's
// state-theft scenario, offline tooling — must strip the same header.
func UnwrapCheckpoint(blob []byte) (tpm.Profile, []byte, error) {
	if len(blob) < ckptHdrLen || string(blob[:len(ckptMagic)]) != ckptMagic {
		return tpm.Profile12, blob, nil // legacy headerless blob
	}
	if blob[len(ckptMagic)] != ckptVersion {
		return tpm.AnyProfile, nil, fmt.Errorf("%w: checkpoint header version %d", ErrBadEnvelope, blob[len(ckptMagic)])
	}
	p := tpm.Profile(blob[len(ckptMagic)+1])
	if p != tpm.Profile12 && p != tpm.Profile20 {
		return tpm.AnyProfile, nil, fmt.Errorf("%w: checkpoint header declares profile %d", ErrBadEnvelope, uint8(p))
	}
	return p, blob[ckptHdrLen:], nil
}

// restoreDeclaredEngine revives an engine from opened (plaintext) state and
// cross-checks the blob's self-describing magic against the profile the
// checkpoint or migration envelope declared.
func restoreDeclaredEngine(declared tpm.Profile, state []byte) (tpm.Engine, error) {
	eng, err := tpm.RestoreEngine(state)
	if err != nil {
		return nil, err
	}
	if eng.Profile() != declared {
		return nil, fmt.Errorf("%w: envelope declares %s, state is %s",
			ErrProfileMismatch, declared, eng.Profile())
	}
	return eng, nil
}
