package vtpm

import (
	"encoding/binary"
	"errors"
	"fmt"

	"xvtpm/internal/tpm"
)

// Profile plumbing: every persisted or migrated instance blob declares which
// command profile its engine speaks, in plaintext, ahead of the guard's
// protected envelope. The declaration is deliberately outside the envelope —
// a revive or migration import must know which deserializer to hand the
// opened state to before it can open anything, and the profile is topology
// metadata, not a secret. The restored engine's own self-describing state
// magic is then checked against the declaration, so a tampered header cannot
// smuggle state across profiles.

// Profile-flow errors.
var (
	// ErrProfileMismatch reports an attempt to import or revive state whose
	// declared profile does not match the engine the blob actually contains,
	// or to migrate an instance into a slot of the other profile. It is
	// distinct from ErrBadEnvelope: the envelope is intact, the profiles
	// genuinely disagree.
	ErrProfileMismatch = errors.New("vtpm: TPM profile mismatch")
)

// Checkpoint header: magic ∥ version ∥ profile ∥ epoch, prepended in
// plaintext to every stored instance blob. Version 2 added the 8-byte
// ownership epoch (federation fencing, DESIGN.md §12); version-1 blobs —
// profile but no epoch — still parse and declare epoch 0.
const (
	ckptMagic    = "XCKP"
	ckptVersion1 = 1
	ckptVersion  = 2
	ckptV1HdrLen = len(ckptMagic) + 2
	ckptHdrLen   = len(ckptMagic) + 2 + 8
)

// appendCheckpointHeader appends the plaintext profile+epoch header to dst.
func appendCheckpointHeader(dst []byte, p tpm.Profile, epoch uint64) []byte {
	dst = append(dst, ckptMagic...)
	dst = append(dst, ckptVersion, byte(p))
	return binary.BigEndian.AppendUint64(dst, epoch)
}

// UnwrapCheckpoint splits a stored instance blob into its declared profile
// and the guard envelope that follows. Blobs from before the profile header
// existed carry no header; they are accepted and declared Profile12, the only
// profile that existed then. Exported because everything that reads stored
// blobs out-of-band — the migration receiver, the attack harness's
// state-theft scenario, offline tooling — must strip the same header.
func UnwrapCheckpoint(blob []byte) (tpm.Profile, []byte, error) {
	p, _, env, err := UnwrapCheckpointEpoch(blob)
	return p, env, err
}

// UnwrapCheckpointEpoch is UnwrapCheckpoint also returning the ownership
// epoch the blob was committed at. Headerless and version-1 blobs declare
// epoch 0, the never-federated generation.
func UnwrapCheckpointEpoch(blob []byte) (tpm.Profile, uint64, []byte, error) {
	if len(blob) < ckptV1HdrLen || string(blob[:len(ckptMagic)]) != ckptMagic {
		return tpm.Profile12, 0, blob, nil // legacy headerless blob
	}
	version := blob[len(ckptMagic)]
	if version != ckptVersion1 && version != ckptVersion {
		return tpm.AnyProfile, 0, nil, fmt.Errorf("%w: checkpoint header version %d", ErrBadEnvelope, version)
	}
	p := tpm.Profile(blob[len(ckptMagic)+1])
	if p != tpm.Profile12 && p != tpm.Profile20 {
		return tpm.AnyProfile, 0, nil, fmt.Errorf("%w: checkpoint header declares profile %d", ErrBadEnvelope, uint8(p))
	}
	if version == ckptVersion1 {
		return p, 0, blob[ckptV1HdrLen:], nil
	}
	if len(blob) < ckptHdrLen {
		return tpm.AnyProfile, 0, nil, fmt.Errorf("%w: checkpoint header truncated at %d bytes", ErrBadEnvelope, len(blob))
	}
	epoch := binary.BigEndian.Uint64(blob[len(ckptMagic)+2 : ckptHdrLen])
	return p, epoch, blob[ckptHdrLen:], nil
}

// restoreDeclaredEngine revives an engine from opened (plaintext) state and
// cross-checks the blob's self-describing magic against the profile the
// checkpoint or migration envelope declared.
func restoreDeclaredEngine(declared tpm.Profile, state []byte) (tpm.Engine, error) {
	eng, err := tpm.RestoreEngine(state)
	if err != nil {
		return nil, err
	}
	if eng.Profile() != declared {
		return nil, fmt.Errorf("%w: envelope declares %s, state is %s",
			ErrProfileMismatch, declared, eng.Profile())
	}
	return eng, nil
}
