package vtpm

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"xvtpm/internal/tpm"
)

// mkCmd builds a minimal command frame carrying one ordinal.
func mkCmd(ordinal uint32) []byte {
	w := tpm.NewWriter()
	w.U16(tpm.TagRQUCommand)
	w.U32(10)
	w.U32(ordinal)
	return w.Bytes()
}

// TestOrdinalOfFrameBounds pins the manager's command-header parser on
// short, exact and oversized frames: everything under the 10-byte header is
// ordinal 0 (never checkpointed, since 0 names no mutating command), longer
// frames read exactly bytes [6:10].
func TestOrdinalOfFrameBounds(t *testing.T) {
	full := mkCmd(tpm.OrdExtend)
	cases := []struct {
		name string
		cmd  []byte
		want uint32
	}{
		{"nil", nil, 0},
		{"empty", []byte{}, 0},
		{"tag only", full[:2], 0},
		{"through length", full[:6], 0},
		{"one short of header", full[:9], 0},
		{"exact header", full, tpm.OrdExtend},
		{"oversized", append(append([]byte(nil), full...), make([]byte, 128)...), tpm.OrdExtend},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := ordinalOf(tc.cmd); got != tc.want {
				t.Fatalf("ordinalOf(%d bytes) = %#x, want %#x", len(tc.cmd), got, tc.want)
			}
		})
	}
	for _, p := range []tpm.Profile{tpm.Profile12, tpm.Profile20} {
		for _, ord := range tpm.MutatingCodes(p) {
			if ord == 0 {
				t.Fatalf("profile %s: ordinal 0 (short-frame sentinel) must not be a mutating ordinal", p)
			}
		}
	}
}

// TestDispatchShortFramesNeverCheckpoint feeds truncated command frames
// through Dispatch with a permissive guard: the engine answers with a TPM
// error, and the manager must not mistake the unparsable header for a
// mutating command and re-persist state.
func TestDispatchShortFramesNeverCheckpoint(t *testing.T) {
	hv, xs, mgr, _ := newTestRig(t, &passGuard{})
	dom := mkGuestDom(t, hv, xs, "g")
	id, err := mgr.CreateInstance()
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.BindInstance(id, dom); err != nil {
		t.Fatal(err)
	}
	before, err := mgr.Store().Get(stateName(id))
	if err != nil {
		t.Fatal(err)
	}
	extend := mkCmd(tpm.OrdExtend)
	for _, frame := range [][]byte{{}, extend[:2], extend[:6], extend[:9]} {
		resp, err := mgr.Dispatch(dom.ID(), dom.Launch(), frame)
		if err != nil {
			t.Fatalf("Dispatch(%d-byte frame) transport err: %v", len(frame), err)
		}
		if len(resp) < 10 {
			t.Fatalf("engine returned a %d-byte response", len(resp))
		}
		if rc := binary.BigEndian.Uint32(resp[6:10]); rc == tpm.RCSuccess {
			t.Fatalf("engine accepted a %d-byte frame", len(frame))
		}
	}
	after, err := mgr.Store().Get(stateName(id))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("short frames triggered a checkpoint: persisted state changed")
	}
}

// TestDispatchOversizedMutatingFrame confirms a well-formed mutating command
// with trailing garbage still parses its ordinal from [6:10] and is
// checkpointed — the header bytes, not the frame length, decide.
func TestDispatchOversizedMutatingFrame(t *testing.T) {
	hv, xs, mgr, _ := newTestRig(t, &passGuard{})
	dom := mkGuestDom(t, hv, xs, "g")
	id, err := mgr.CreateInstance()
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.BindInstance(id, dom); err != nil {
		t.Fatal(err)
	}
	// A real Extend, then the same bytes with the length field honest but
	// the frame padded: the engine rejects the padded one, but ordinalOf
	// still sees OrdExtend in both, so both trips through Dispatch are safe.
	cli, err := mgr.DirectClient(id)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Extend(0, [20]byte{1}); err != nil {
		t.Fatal(err)
	}
	w := tpm.NewWriter()
	w.U16(tpm.TagRQUCommand)
	w.U32(10)
	w.U32(tpm.OrdExtend)
	padded := append(w.Bytes(), make([]byte, 512)...)
	if got := ordinalOf(padded); got != tpm.OrdExtend {
		t.Fatalf("ordinalOf(padded) = %#x, want OrdExtend", got)
	}
	if _, err := mgr.Dispatch(dom.ID(), dom.Launch(), padded); err != nil {
		t.Fatalf("Dispatch(padded frame) transport err: %v", err)
	}
}

// TestDispatchUnknownDomain pins the error for a payload claiming a domain
// with no bound instance.
func TestDispatchUnknownDomain(t *testing.T) {
	_, _, mgr, _ := newTestRig(t, &passGuard{})
	if _, err := mgr.Dispatch(42, [20]byte{}, mkCmd(tpm.OrdGetRandom)); !errors.Is(err, ErrNoInstance) {
		t.Fatalf("Dispatch to unbound dom err = %v, want ErrNoInstance", err)
	}
}

// TestMutatingOrdinalsHaveValidHeaders is a consistency check between the
// engines' mutating-command tables and the parser: every mutating code of
// both profiles round-trips through a header built and parsed with the same
// layout (the two profiles share the tag ∥ size ∥ code framing).
func TestMutatingOrdinalsHaveValidHeaders(t *testing.T) {
	for _, p := range []tpm.Profile{tpm.Profile12, tpm.Profile20} {
		for _, ord := range tpm.MutatingCodes(p) {
			frame := make([]byte, 10)
			binary.BigEndian.PutUint16(frame[0:], tpm.TagRQUCommand)
			binary.BigEndian.PutUint32(frame[2:], 10)
			binary.BigEndian.PutUint32(frame[6:], ord)
			if got := ordinalOf(frame); got != ord {
				t.Fatalf("profile %s: code %#x round-trips as %#x", p, ord, got)
			}
		}
	}
}
