package vtpm

import (
	"crypto/sha1"
	"errors"
	"net"
	"strings"
	"testing"

	"xvtpm/internal/xen"
)

// migrationRig builds a source manager with one unbound, stateful instance
// plus its suspended domain image.
func migrationRig(t *testing.T) (*xen.Hypervisor, *Manager, *xen.DomainImage, InstanceID) {
	t.Helper()
	hv, xs, mgr, _ := newTestRig(t, &passGuard{})
	dom := mkGuestDom(t, hv, xs, "m")
	id, err := mgr.CreateInstance()
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.BindInstance(id, dom); err != nil {
		t.Fatal(err)
	}
	cli, _ := mgr.DirectClient(id)
	m := sha1.Sum([]byte("pre"))
	if _, err := cli.Extend(3, m); err != nil {
		t.Fatal(err)
	}
	if err := mgr.UnbindInstance(id); err != nil {
		t.Fatal(err)
	}
	img, err := hv.SaveDomain(xen.Dom0, dom.ID())
	if err != nil {
		t.Fatal(err)
	}
	return hv, mgr, img, id
}

func TestSendReceiveMigrationWire(t *testing.T) {
	_, src, domImg, id := migrationRig(t)
	_, _, dst, _ := newTestRig(t, &passGuard{})
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	type res struct {
		img  *xen.DomainImage
		inst InstanceID
		err  error
	}
	done := make(chan res, 1)
	go func() {
		img, inst, err := ReceiveMigration(c2, dst, nil)
		done <- res{img, inst, err}
	}()
	if err := SendMigration(c1, src, domImg, id); err != nil {
		t.Fatalf("SendMigration: %v", err)
	}
	r := <-done
	if r.err != nil {
		t.Fatalf("ReceiveMigration: %v", r.err)
	}
	if r.img.Name != domImg.Name || len(r.img.Memory) != len(domImg.Memory) {
		t.Fatal("domain image mangled on the wire")
	}
	cli, err := dst.DirectClient(r.inst)
	if err != nil {
		t.Fatal(err)
	}
	srcCli, _ := src.DirectClient(id)
	want, _ := srcCli.PCRRead(3)
	got, err := cli.PCRRead(3)
	if err != nil || got != want {
		t.Fatalf("imported PCR: %v %x want %x", err, got, want)
	}
}

func TestReceiveMigrationBadMagic(t *testing.T) {
	_, _, dst, _ := newTestRig(t, &passGuard{})
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	errCh := make(chan error, 1)
	go func() {
		_, _, err := ReceiveMigration(c2, dst, nil)
		errCh <- err
	}()
	if _, err := c1.Write([]byte("WRONG-MAGIC")); err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; !errors.Is(err, ErrBadImage) {
		t.Fatalf("err = %v, want ErrBadImage", err)
	}
}

func TestSendMigrationRejectedByDestination(t *testing.T) {
	// Destination import failure (corrupted state in transit) must surface
	// as a NAK to the sender, not a hang.
	_, src, domImg, id := migrationRig(t)
	_, _, dst, _ := newTestRig(t, &corruptingGuard{})
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	recvErr := make(chan error, 1)
	go func() {
		_, _, err := ReceiveMigration(c2, dst, nil)
		recvErr <- err
	}()
	err := SendMigration(c1, src, domImg, id)
	if err == nil {
		t.Fatal("sender did not see the rejection")
	}
	if !strings.Contains(err.Error(), "rejected") {
		t.Fatalf("sender err = %v", err)
	}
	if err := <-recvErr; err == nil {
		t.Fatal("receiver accepted a corrupt import")
	}
}

// corruptingGuard breaks ImportState so the destination must NAK.
type corruptingGuard struct{ passGuard }

func (g *corruptingGuard) ImportState(blob []byte) ([]byte, error) {
	return []byte("not a tpm state blob"), nil
}

func TestReadMsgEnforcesCap(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	go func() {
		hdr := []byte{0xFF, 0xFF, 0xFF, 0xFF} // 4 GiB length
		c1.Write(hdr)
	}()
	if _, err := readMsg(c2, 1024); !errors.Is(err, ErrBadImage) {
		t.Fatalf("err = %v, want ErrBadImage", err)
	}
}

func TestManagerAccessors(t *testing.T) {
	_, _, mgr, _ := newTestRig(t, &passGuard{})
	if mgr.Guard() == nil || mgr.Guard().Name() != "pass" {
		t.Fatal("Guard accessor broken")
	}
	id, err := mgr.CreateInstance()
	if err != nil {
		t.Fatal(err)
	}
	// EncoderFor surfaces the guard's codec.
	codec, err := mgr.EncoderFor(id)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := codec.(PlainCodec); !ok {
		t.Fatalf("codec = %T", codec)
	}
	if _, err := mgr.EncoderFor(id + 99); !errors.Is(err, ErrNoInstance) {
		t.Fatalf("unknown instance err = %v", err)
	}
	// OnDispatch observers fire.
	hv2, xs2, mgr2, _ := newTestRig(t, &passGuard{})
	dom := mkGuestDom(t, hv2, xs2, "t")
	id2, _ := mgr2.CreateInstance()
	mgr2.BindInstance(id2, dom)
	var seen int
	mgr2.OnDispatch(func(from xen.DomID, payload []byte) { seen++ })
	if _, err := mgr2.Dispatch(dom.ID(), dom.Launch(), extendCmd(5, 1)); err != nil {
		t.Fatal(err)
	}
	if seen != 1 {
		t.Fatalf("dispatch observer fired %d times", seen)
	}
}
