package vtpm

import (
	"bytes"
	"testing"
)

// FuzzPipelineResponseMatch throws arbitrary drained-response streams at
// the pipelined frontend's matching machinery: the pending-table deposit
// (tag reuse, stale tags, duplicates for completed slots) and the slot
// decode (framing byte, truncated payloads). The backend end of the ring is
// shared memory, so nothing about a response frame can be trusted; whatever
// arrives must either match an in-flight slot exactly once or be counted
// stale, and decode must reject garbage without panicking.
//
// The fuzz input is parsed as a sequence of deposit ops: one tag byte, one
// length byte, then that many payload bytes (truncated by end of input).
// Tags 1..4 address the in-flight slots; everything else is stale by
// construction.
func FuzzPipelineResponseMatch(f *testing.F) {
	f.Add([]byte{1, 1, payloadRaw})                   // clean match, raw framing
	f.Add([]byte{1, 0, 1, 0})                         // duplicate for a completed slot
	f.Add([]byte{9, 3, payloadEncoded, 0xFF, 0xFF})   // stale tag, encoded junk
	f.Add([]byte{2, 1, 0x7F, 2, 1, payloadRaw})       // unknown framing then reuse
	f.Add([]byte{3, 255, payloadEncoded, 1, 2, 3, 4}) // length byte past input end
	f.Add([]byte{4, 0})                               // empty payload → ErrShortPayload
	f.Fuzz(func(t *testing.T, data []byte) {
		const depth = 4
		p := newPipeline(depth)
		// Slots 0..3 in flight with ring tags 1..4; tag 0 and 5+ are stale.
		for i := range p.slots {
			p.slots[i].used = true
			p.slots[i].id = uint64(i + 1)
		}
		type deposit struct {
			tag     uint64
			payload []byte
		}
		first := make(map[uint64]deposit) // tag → first deposit (the one that lands)
		var wantStale uint64
		p.mu.Lock()
		for i := 0; i < len(data); {
			tag := uint64(data[i])
			i++
			var payload []byte
			if i < len(data) {
				n := int(data[i])
				i++
				if n > len(data)-i {
					n = len(data) - i
				}
				payload = data[i : i+n]
				i += n
			}
			if _, dup := first[tag]; !dup && tag >= 1 && tag <= depth {
				first[tag] = deposit{tag, append([]byte(nil), payload...)}
			} else {
				wantStale++
			}
			p.depositLocked(tag, payload)
		}
		if p.stale != wantStale {
			p.mu.Unlock()
			t.Fatalf("stale = %d, want %d", p.stale, wantStale)
		}
		for j := range p.slots {
			s := &p.slots[j]
			d, landed := first[s.id]
			if s.done != landed {
				p.mu.Unlock()
				t.Fatalf("slot %d done = %v, deposit landed = %v", j, s.done, landed)
			}
			if landed && !bytes.Equal(s.rsp, d.payload) {
				p.mu.Unlock()
				t.Fatalf("slot %d rsp = %x, want %x", j, s.rsp, d.payload)
			}
		}
		p.mu.Unlock()
		// Decode every completed slot: arbitrary bytes must produce a clean
		// error or a copy, never a panic. PlainCodec mirrors the encoded
		// framing the lockstep tests use.
		fe := &Frontend{codec: PlainCodec{}}
		for j := range p.slots {
			if !p.slots[j].done {
				continue
			}
			out, err := fe.decodeSlot(&p.slots[j])
			if err == nil && len(p.slots[j].rsp) == 0 {
				t.Fatalf("slot %d decoded an empty response: %x", j, out)
			}
		}
	})
}
