package vtpm

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"xvtpm/internal/faults"
)

// Bounded retry for store I/O.
//
// Every path that touches the Store — eager persists, the writeback
// worker, revive, the destroy sweep — goes through retryStore, which
// retries transient failures with exponential backoff, full jitter and an
// overall deadline. Permanent and corrupt failures (faults.Classify) fail
// immediately: retrying a missing blob or a damaged envelope only burns
// the deadline. The result either succeeds (the failure was *recovered*)
// or comes back classified for the health machine to act on — never an
// unbounded hang on a wedged backend.

// RetryPolicy bounds the store-I/O retry loop.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries including the first. Zero
	// means DefaultRetryAttempts; 1 disables retrying.
	MaxAttempts int
	// BaseBackoff is the first retry's backoff; each subsequent retry
	// doubles it. Zero means DefaultRetryBaseBackoff.
	BaseBackoff time.Duration
	// MaxBackoff caps one backoff step. Zero means DefaultRetryMaxBackoff.
	MaxBackoff time.Duration
	// Deadline caps the whole operation, sleeps included. Zero means
	// DefaultRetryDeadline.
	Deadline time.Duration
}

// Retry defaults: three retries inside a tight deadline. Checkpoints are
// dispatch-adjacent work, so the budget is milliseconds — a store that
// stays down longer is a health event, not something to wait out.
const (
	DefaultRetryAttempts    = 4
	DefaultRetryBaseBackoff = 500 * time.Microsecond
	DefaultRetryMaxBackoff  = 8 * time.Millisecond
	DefaultRetryDeadline    = 100 * time.Millisecond
)

// resolve fills in the defaults.
func (p RetryPolicy) resolve() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = DefaultRetryAttempts
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = DefaultRetryBaseBackoff
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = DefaultRetryMaxBackoff
	}
	if p.Deadline <= 0 {
		p.Deadline = DefaultRetryDeadline
	}
	return p
}

// Do runs one operation under the policy: bounded attempts, exponential
// backoff with full jitter, an overall deadline, and immediate failure on
// non-transient errors (faults.Classify). fn receives the 1-based attempt
// number so callers can count retries. Exported for bounded-retry callers
// outside the manager — the cluster's migration transfer leg retries through
// exactly this policy.
func (p RetryPolicy) Do(op string, fn func(attempt int) error) error {
	pol := p.resolve()
	deadline := time.Now().Add(pol.Deadline)
	backoff := pol.BaseBackoff
	var err error
	for attempt := 1; ; attempt++ {
		err = fn(attempt)
		if err == nil {
			return nil
		}
		if faults.Classify(err) != faults.ClassTransient {
			return err
		}
		if attempt >= pol.MaxAttempts {
			return fmt.Errorf("vtpm: %s failed after %d attempts: %w", op, attempt, err)
		}
		sleep := time.Duration(rand.Int63n(int64(backoff) + 1)) //nolint:gosec // jitter, not crypto
		if time.Now().Add(sleep).After(deadline) {
			return fmt.Errorf("vtpm: %s deadline exhausted after %d attempts: %w", op, attempt, err)
		}
		time.Sleep(sleep)
		backoff *= 2
		if backoff > pol.MaxBackoff {
			backoff = pol.MaxBackoff
		}
	}
}

// retryStore runs one store operation under the manager's retry policy,
// attributing retries to inst (nil for manager-wide sweeps). It returns
// nil as soon as an attempt succeeds; otherwise the last error, which the
// caller classifies for the health machine.
func (m *Manager) retryStore(inst *instance, op string, fn func() error) error {
	pol := m.retry
	deadline := time.Now().Add(pol.Deadline)
	backoff := pol.BaseBackoff
	var err error
	for attempt := 1; ; attempt++ {
		err = fn()
		if err == nil {
			return nil
		}
		// A missing blob is a fact, not a fault: retrying cannot create it.
		if errors.Is(err, ErrNoState) {
			return err
		}
		if faults.Classify(err) != faults.ClassTransient {
			return err
		}
		if attempt >= pol.MaxAttempts {
			return fmt.Errorf("vtpm: %s failed after %d attempts: %w", op, attempt, err)
		}
		// Full jitter keeps herds of retrying instances from re-converging
		// on the store in lockstep.
		sleep := time.Duration(rand.Int63n(int64(backoff) + 1)) //nolint:gosec // jitter, not crypto
		if time.Now().Add(sleep).After(deadline) {
			return fmt.Errorf("vtpm: %s deadline exhausted after %d attempts: %w", op, attempt, err)
		}
		m.noteRetry(inst)
		time.Sleep(sleep)
		backoff *= 2
		if backoff > pol.MaxBackoff {
			backoff = pol.MaxBackoff
		}
	}
}
