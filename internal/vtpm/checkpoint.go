package vtpm

import (
	"fmt"
	"sync"
	"time"

	"xvtpm/internal/metrics"
)

// The write-behind checkpoint pipeline.
//
// Eager persistence put a full SaveState + ProtectState + store.Put + mirror
// rewrite inside the instance lock on every mutating command — correct, but
// the dominant cost of an Extend-heavy stream. This file moves that work off
// the dispatch path: Dispatch marks the instance dirty with a monotonically
// increasing mutation sequence and returns; a per-instance worker snapshots
// state under a short instance-lock window and seals + persists outside it,
// coalescing bursts of mutations into one checkpoint.
//
// Durability contract (writeback): at most MaxDirtyCommands mutations, or
// MaxDirtyInterval of wall time, separate the engine's state from the store.
// The bound on commands is enforced by backpressure — a dispatch that would
// open the window wider blocks until the worker catches up — so a crash
// never loses more than the configured window. Flush barriers at every
// state-handoff point (Unbind, Destroy, Export/Migrate, Checkpoint,
// CheckpointAll, Close) drain the pipeline synchronously, so state never
// leaves an instance behind its engine.
//
// Lock ordering: persistMu → inst.mu → ck.mu. The backpressure gate takes
// only ck.mu and runs before Dispatch acquires inst.mu — the worker needs
// inst.mu to snapshot, so waiting for it under inst.mu would deadlock.

// CheckpointPolicy selects when mutated instance state is persisted.
type CheckpointPolicy int

const (
	// CheckpointEager persists synchronously after every mutating command,
	// before its response returns — the stock manager's behaviour and the
	// E8 ablation baseline.
	CheckpointEager CheckpointPolicy = iota
	// CheckpointWriteback marks the instance dirty and persists from a
	// background worker, coalescing up to MaxDirtyCommands mutations (or
	// MaxDirtyInterval of time) into one checkpoint.
	CheckpointWriteback
	// CheckpointDeferred never persists automatically; callers checkpoint
	// explicitly (Checkpoint / CheckpointAll). The durability floor of the
	// ablation.
	CheckpointDeferred
)

// String returns the policy's config-file spelling.
func (p CheckpointPolicy) String() string {
	switch p {
	case CheckpointEager:
		return "eager"
	case CheckpointWriteback:
		return "writeback"
	case CheckpointDeferred:
		return "deferred"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// Write-behind durability window defaults.
const (
	// DefaultMaxDirtyCommands bounds how many mutations may await one
	// coalesced checkpoint. 64 keeps the amortized backpressure stall under
	// ~10% of a saturating Extend stream's dispatch cost while still capping
	// crash loss at well under a millisecond of mutations.
	DefaultMaxDirtyCommands = 64
	// DefaultMaxDirtyInterval bounds how long a dirty instance may wait for
	// more mutations before the worker persists what it has.
	DefaultMaxDirtyInterval = 2 * time.Millisecond
)

// ckptState is the per-instance pipeline state. Its own small mutex guards
// the counters so the backpressure gate and the worker never need the
// instance lock to coordinate.
type ckptState struct {
	mu   sync.Mutex
	cond sync.Cond // broadcast whenever persistSeq advances or the pipeline dies

	dirtySeq   uint64    // mutations dispatched
	persistSeq uint64    // mutations covered by the newest completed persist
	firstDirty time.Time // when the oldest unpersisted mutation landed
	err        error     // sticky background persist error
	running    bool      // worker goroutine started
	destroyed  bool      // instance removed; worker and persists must stop

	kick   chan struct{} // new dirt for the worker (cap 1)
	urgent chan struct{} // skip the coalesce wait: window full or dying (cap 1)
}

func (ck *ckptState) init() {
	ck.cond.L = &ck.mu
	ck.kick = make(chan struct{}, 1)
	ck.urgent = make(chan struct{}, 1)
}

// pendingLocked is the unpersisted-mutation count. Caller holds ck.mu.
func (ck *ckptState) pendingLocked() uint64 { return ck.dirtySeq - ck.persistSeq }

// poke signals a channel without blocking.
func poke(c chan struct{}) {
	select {
	case c <- struct{}{}:
	default:
	}
}

// CheckpointStats is a point-in-time snapshot of the pipeline's counters,
// aggregated across all instances of the manager.
type CheckpointStats struct {
	// Mutations counts state-mutating commands dispatched.
	Mutations uint64
	// Checkpoints counts completed state persists (including forced ones).
	Checkpoints uint64
	// Coalesced counts mutations covered by those persists; under writeback
	// it can trail Mutations by up to the in-flight dirty window.
	Coalesced uint64
	// BytesWritten totals protected envelope bytes handed to the store.
	BytesWritten uint64
	// Lag summarizes oldest-dirty-mutation → persist-completion latency.
	Lag metrics.Summary

	// Recovery counters (see health.go): store-I/O retries performed,
	// Healthy→Degraded and →Quarantined transitions taken, panics
	// contained, and the instances currently in each non-healthy state.
	Retries        uint64
	Degradations   uint64
	Quarantines    uint64
	Panics         uint64
	DegradedNow    int64
	QuarantinedNow int64
}

// CoalesceRatio is mutations persisted per checkpoint — 1.0 under eager,
// approaching MaxDirtyCommands under a saturating writeback stream.
func (s CheckpointStats) CoalesceRatio() float64 {
	if s.Checkpoints == 0 {
		return 0
	}
	return float64(s.Coalesced) / float64(s.Checkpoints)
}

// CheckpointStats reports the manager's checkpoint pipeline counters.
func (m *Manager) CheckpointStats() CheckpointStats {
	return CheckpointStats{
		Mutations:      m.ckptMutations.Load(),
		Checkpoints:    m.ckptWrites.Load(),
		Coalesced:      m.ckptCoalesced.Load(),
		BytesWritten:   m.ckptBytes.Load(),
		Lag:            m.ckptLag.Summarize(),
		Retries:        m.ckptRetries.Load(),
		Degradations:   m.healthDegradations.Load(),
		Quarantines:    m.healthQuarantines.Load(),
		Panics:         m.healthPanics.Load(),
		DegradedNow:    m.healthDegradedNow.Load(),
		QuarantinedNow: m.healthQuarantinedNow.Load(),
	}
}

// checkpointGate applies write-behind backpressure: a dispatch about to add
// a mutation blocks while the unpersisted window is already at
// MaxDirtyCommands, so the store can never fall further behind the engine
// than the configured bound. Called before Dispatch takes the instance lock
// (see the ordering note above); waiting stops if the pipeline wedges on a
// sticky store error (the error surfaces at the next flush barrier instead
// of hanging the guest).
func (m *Manager) checkpointGate(inst *instance) {
	if m.ckptPolicy != CheckpointWriteback {
		return
	}
	ck := &inst.ck
	ck.mu.Lock()
	for ck.err == nil && !ck.destroyed && ck.pendingLocked() >= m.maxDirty {
		poke(ck.urgent)
		ck.cond.Wait()
	}
	ck.mu.Unlock()
}

// noteMutation records one mutating command. Caller holds inst.mu. Under
// writeback it lazily starts the instance's worker and wakes it; the other
// policies only keep the sequence counters honest so explicit checkpoints
// and stats stay meaningful.
func (m *Manager) noteMutation(inst *instance) {
	m.ckptMutations.Inc()
	ck := &inst.ck
	ck.mu.Lock()
	if ck.dirtySeq == ck.persistSeq {
		ck.firstDirty = time.Now()
	}
	ck.dirtySeq++
	pending := ck.pendingLocked()
	start := false
	if m.ckptPolicy == CheckpointWriteback && !ck.running && !ck.destroyed {
		ck.running = true
		start = true
	}
	ck.mu.Unlock()
	if m.ckptPolicy != CheckpointWriteback {
		return
	}
	if start {
		go m.checkpointWorker(inst)
	}
	poke(ck.kick)
	if pending >= m.maxDirty {
		poke(ck.urgent)
	}
}

// checkpointWorker is the per-instance write-behind goroutine: wait for
// dirt, let a burst coalesce, persist, repeat. It exits when the manager
// closes or the instance is destroyed; Close's final drain runs on the
// closing goroutine, not here.
func (m *Manager) checkpointWorker(inst *instance) {
	// Panic containment: a worker panic (a poisoned engine snapshot, a
	// broken guard) quarantines its own instance instead of unwinding a
	// bare goroutine and killing the whole process.
	defer func() {
		if p := recover(); p != nil {
			m.healthPanics.Inc()
			m.notePanic(inst, fmt.Errorf("%w: checkpoint worker: %v", ErrInstancePanic, p))
		}
	}()
	ck := &inst.ck
	for {
		select {
		case <-m.stop:
			return
		case <-ck.kick:
		case <-ck.urgent:
		}
		if !m.coalesceWait(inst) {
			return
		}
		m.persistPending(inst, false) //nolint:errcheck // sticky in ck.err; surfaced at the next flush barrier
	}
}

// coalesceWait holds the worker back until the dirty window is worth a
// checkpoint: MaxDirtyCommands mutations accumulated, or MaxDirtyInterval
// elapsed since the oldest one. An urgent poke (window full under
// backpressure, flush, destroy) cuts the wait short. Returns false when the
// worker should exit instead of persisting.
func (m *Manager) coalesceWait(inst *instance) bool {
	ck := &inst.ck
	for {
		ck.mu.Lock()
		pending := ck.pendingLocked()
		dead := ck.destroyed
		elapsed := time.Since(ck.firstDirty)
		ck.mu.Unlock()
		if dead {
			return false
		}
		if pending == 0 {
			// A flush barrier persisted on our behalf; nothing to do.
			return true
		}
		if pending >= m.maxDirty || elapsed >= m.maxDirtyInterval {
			return true
		}
		timer := time.NewTimer(m.maxDirtyInterval - elapsed)
		select {
		case <-m.stop:
			timer.Stop()
			return false
		case <-ck.urgent:
			timer.Stop()
			return true
		case <-timer.C:
		}
	}
}

// persistPending runs one full persist pass: snapshot the engine under a
// short instance-lock window, then seal and write outside it, so dispatches
// to the instance overlap the expensive crypto and store I/O. force persists
// even when no mutation is pending (explicit-Checkpoint semantics); without
// it a clean instance is a no-op. Both the worker and every flush barrier
// funnel through here, serialized by persistMu.
func (m *Manager) persistPending(inst *instance, force bool) error {
	inst.persistMu.Lock()
	defer inst.persistMu.Unlock()
	ck := &inst.ck

	// A quarantined instance persists only under supervision: background
	// and barrier passes report the sticky failure instead of hammering a
	// store already known to be broken; an explicit Checkpoint (force) is
	// the supervised recovery attempt.
	if !force && inst.health.current() == HealthQuarantined {
		ck.mu.Lock()
		err := ck.err
		ck.mu.Unlock()
		if err == nil {
			err = quarantineErr(inst.info.ID, &inst.health)
		}
		return err
	}

	inst.mu.Lock()
	ck.mu.Lock()
	seq := ck.dirtySeq
	covered := ck.pendingLocked()
	firstDirty := ck.firstDirty
	dead := ck.destroyed
	ck.mu.Unlock()
	if dead || (covered == 0 && !force) {
		inst.mu.Unlock()
		return nil
	}
	passStart := time.Now()
	defer func() { m.tel.persist.Record(time.Since(passStart)) }()
	inst.stateBuf = inst.eng.AppendState(inst.stateBuf[:0])
	info := inst.info
	inst.mu.Unlock()

	// Every stored blob opens with the plaintext profile header (see
	// profile.go); the guard envelope follows it. Writing the header into
	// blobBuf first keeps the steady-state persist loop allocation-free.
	var blob []byte
	var err error
	if pa, ok := m.guard.(StateProtectorAppend); ok {
		inst.blobBuf, err = pa.ProtectStateAppend(info,
			appendCheckpointHeader(inst.blobBuf[:0], info.Profile, info.Epoch), inst.stateBuf)
		blob = inst.blobBuf
	} else {
		var env []byte
		env, err = m.guard.ProtectState(info, inst.stateBuf)
		if err == nil {
			blob = append(appendCheckpointHeader(make([]byte, 0, ckptHdrLen+len(env)), info.Profile, info.Epoch), env...)
		}
	}
	if err != nil {
		err = fmt.Errorf("vtpm: protecting state of instance %d: %w", info.ID, err)
	}
	if err == nil {
		err = m.retryStore(inst, "persisting state", func() error {
			return m.store.Put(stateName(info.ID), blob)
		})
	}
	if err == nil {
		err = m.mirrorBlob(inst, blob)
	}
	if !m.guard.RetainsPlaintext() {
		// The serialized plaintext state (keys included) has served its
		// purpose; don't let it linger in the scratch buffer between
		// checkpoints.
		zeroize(inst.stateBuf)
	}

	ck.mu.Lock()
	if err != nil {
		ck.err = err
	} else {
		m.ckptWrites.Inc()
		m.ckptBytes.Add(uint64(len(blob)))
		if seq > ck.persistSeq {
			ck.persistSeq = seq
			m.ckptCoalesced.Add(covered)
			m.ckptLag.Add(time.Since(firstDirty))
		}
	}
	ck.cond.Broadcast()
	ck.mu.Unlock()
	// Advance the health machine on every completed pass: success heals,
	// exhausted retries degrade, repeated or non-transient failure
	// quarantines (see health.go).
	m.notePersistOutcome(inst, err)
	return err
}

// mirrorBlob rewrites the instance's dom0 arena mirror with the new blob.
// Racing destroys are re-checked under the instance lock so a persist that
// lost the race never resurrects scrubbed arena memory.
func (m *Manager) mirrorBlob(inst *instance, blob []byte) error {
	inst.mu.Lock()
	defer inst.mu.Unlock()
	inst.ck.mu.Lock()
	dead := inst.ck.destroyed
	inst.ck.mu.Unlock()
	if dead {
		return nil
	}
	if len(inst.mirror) < len(blob) {
		m.bus.Zeroize(inst.mirror)
		buf, err := m.arena.Alloc(len(blob))
		if err != nil {
			return err
		}
		inst.mirror = buf
	}
	m.bus.Zeroize(inst.mirror)
	m.bus.GuardedCopy(inst.mirror, blob)
	return nil
}

// checkpointInstance persists an instance now and reports the result,
// surfacing (and clearing, once recovered) any sticky error an earlier
// background persist left behind. force distinguishes explicit Checkpoint
// calls — which always rewrite the blob — from flush barriers, which only
// need the store caught up.
func (m *Manager) checkpointInstance(inst *instance, force bool) error {
	err := m.persistPending(inst, force)
	ck := &inst.ck
	ck.mu.Lock()
	if err == nil {
		// A successful persist covers everything earlier failures would
		// have written; the pipeline is healthy again.
		ck.err = nil
	} else if ck.err == nil {
		ck.err = err
	}
	ck.mu.Unlock()
	return err
}

// flushCheckpoints is the flush barrier state-handoff points cross before
// instance state leaves the manager (unbind, export, shutdown): under
// writeback it drains the pending window synchronously, under the other
// policies the store is by definition as current as the policy promises and
// it is a no-op.
func (m *Manager) flushCheckpoints(inst *instance) error {
	if m.ckptPolicy != CheckpointWriteback {
		return nil
	}
	return m.checkpointInstance(inst, false)
}

// retireCheckpoints marks the pipeline dead for a destroyed instance, wakes
// its worker (which exits) and any gated dispatchers, and waits out an
// in-flight persist so the caller can scrub buffers knowing nothing will
// rewrite them.
func (m *Manager) retireCheckpoints(inst *instance) {
	ck := &inst.ck
	ck.mu.Lock()
	ck.destroyed = true
	ck.cond.Broadcast()
	ck.mu.Unlock()
	poke(ck.urgent)
	poke(ck.kick)
	inst.persistMu.Lock() // drain any in-flight persist pass
	zeroize(inst.stateBuf)
	zeroize(inst.blobBuf)
	inst.persistMu.Unlock()
}

// zeroize clears a heap scratch buffer in place.
func zeroize(b []byte) {
	for i := range b {
		b[i] = 0
	}
}
