package vtpm

import (
	"bytes"
	"crypto/rsa"
	"crypto/sha1"
	"errors"
	"testing"

	"xvtpm/internal/tpm"
	"xvtpm/internal/xen"
	"xvtpm/internal/xenstore"
)

const testBits = 512

// passGuard is a minimal permissive guard for unit-testing the manager and
// drivers in isolation from the core package.
type passGuard struct {
	denyAll bool
	protect bool // XOR-mask state to test Protect/Recover plumbing
}

func (g *passGuard) Name() string { return "pass" }

func (g *passGuard) AdmitCommand(inst InstanceInfo, from xen.DomID, launch xen.LaunchDigest, payload []byte) ([]byte, ResponseFinisher, error) {
	if g.denyAll {
		return nil, nil, ErrDenied
	}
	if inst.BoundDom != from {
		return nil, nil, ErrNotBound
	}
	return payload, func(r []byte) ([]byte, error) { return r, nil }, nil
}

func (g *passGuard) EncoderFor(inst InstanceInfo) (GuestCodec, error) { return PlainCodec{}, nil }

func mask(b []byte) []byte {
	out := make([]byte, len(b))
	for i, c := range b {
		out[i] = c ^ 0x5A
	}
	return out
}

func (g *passGuard) ProtectState(inst InstanceInfo, state []byte) ([]byte, error) {
	if g.protect {
		return mask(state), nil
	}
	return append([]byte(nil), state...), nil
}

func (g *passGuard) RecoverState(inst InstanceInfo, blob []byte) ([]byte, error) {
	if g.protect {
		return mask(blob), nil
	}
	return append([]byte(nil), blob...), nil
}

func (g *passGuard) ExportState(inst InstanceInfo, state []byte, destEK *rsa.PublicKey) ([]byte, error) {
	return append([]byte(nil), state...), nil
}

func (g *passGuard) ImportState(blob []byte) ([]byte, error) {
	return append([]byte(nil), blob...), nil
}

func (g *passGuard) MigrationIdentity() *rsa.PublicKey { return nil }

func (g *passGuard) RetainsPlaintext() bool { return true }

func newTestRig(t testing.TB, guard Guard) (*xen.Hypervisor, *xenstore.Store, *Manager, *Backend) {
	t.Helper()
	hv := xen.NewHypervisor(xen.DomainConfig{Name: "Domain-0", Pages: 2048})
	xs := xenstore.New()
	dom0, err := hv.Domain(xen.Dom0)
	if err != nil {
		t.Fatal(err)
	}
	mgr := NewManager(hv, NewMemStore(), xen.NewArena(dom0), guard, ManagerConfig{
		RSABits: testBits, Seed: []byte("vtpm-test"),
	})
	t.Cleanup(func() {
		if err := mgr.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return hv, xs, mgr, NewBackend(hv, xs, mgr)
}

func mkGuestDom(t testing.TB, hv *xen.Hypervisor, xs *xenstore.Store, name string) *xen.Domain {
	t.Helper()
	dom, err := hv.CreateDomain(xen.DomainConfig{Name: name, Kernel: []byte("k-" + name)})
	if err != nil {
		t.Fatal(err)
	}
	base := "/local/domain/" + itoa(dom.ID())
	if err := xs.Write(xen.Dom0, xenstore.NoTxn, base+"/name", []byte(name)); err != nil {
		t.Fatal(err)
	}
	if err := xs.SetPerms(xen.Dom0, xenstore.NoTxn, base, xenstore.Perms{Owner: dom.ID()}); err != nil {
		t.Fatal(err)
	}
	return dom
}

func itoa(d xen.DomID) string {
	return string([]byte{byte('0' + d%10)}) // test domains stay single digit
}

func TestMemStoreCRUD(t *testing.T) {
	s := NewMemStore()
	if err := s.Put("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("b", []byte("2")); err != nil {
		t.Fatal(err)
	}
	v, err := s.Get("a")
	if err != nil || string(v) != "1" {
		t.Fatalf("Get: %v %q", err, v)
	}
	// Get returns a copy.
	v[0] = 'X'
	v2, _ := s.Get("a")
	if string(v2) != "1" {
		t.Fatal("Get leaks internal buffer")
	}
	names, _ := s.List()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("List: %v", names)
	}
	if err := s.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("a"); !errors.Is(err, ErrNoState) {
		t.Fatalf("Get deleted: %v", err)
	}
	if err := s.Delete("a"); !errors.Is(err, ErrNoState) {
		t.Fatalf("double delete: %v", err)
	}
}

func TestCreateAndBindInstance(t *testing.T) {
	hv, xs, mgr, _ := newTestRig(t, &passGuard{})
	id, err := mgr.CreateInstance()
	if err != nil {
		t.Fatalf("CreateInstance: %v", err)
	}
	// Initial state persisted.
	if _, err := mgr.Store().Get(stateName(id)); err != nil {
		t.Fatalf("initial state not persisted: %v", err)
	}
	dom := mkGuestDom(t, hv, xs, "g")
	if err := mgr.BindInstance(id, dom); err != nil {
		t.Fatal(err)
	}
	info, _ := mgr.InstanceInfo(id)
	if info.BoundDom != dom.ID() || info.BoundLaunch != dom.Launch() {
		t.Fatalf("binding: %+v", info)
	}
	// Double bind fails both ways.
	if err := mgr.BindInstance(id, dom); !errors.Is(err, ErrBound) {
		t.Fatalf("rebind err = %v", err)
	}
	id2, _ := mgr.CreateInstance()
	if err := mgr.BindInstance(id2, dom); !errors.Is(err, ErrDomHasVTPM) {
		t.Fatalf("second vTPM on dom err = %v", err)
	}
	if err := mgr.UnbindInstance(id); err != nil {
		t.Fatal(err)
	}
	if err := mgr.UnbindInstance(id); !errors.Is(err, ErrUnbound) {
		t.Fatalf("double unbind err = %v", err)
	}
}

func TestDispatchRoutesAndRefuses(t *testing.T) {
	hv, xs, mgr, _ := newTestRig(t, &passGuard{})
	dom := mkGuestDom(t, hv, xs, "g")
	id, _ := mgr.CreateInstance()
	mgr.BindInstance(id, dom)

	cmd := tpm.NewWriter()
	cmd.U16(tpm.TagRQUCommand)
	cmd.U32(14)
	cmd.U32(tpm.OrdGetRandom)
	cmd.U32(8)
	resp, err := mgr.Dispatch(dom.ID(), dom.Launch(), cmd.Bytes())
	if err != nil {
		t.Fatalf("Dispatch: %v", err)
	}
	if len(resp) < 10 {
		t.Fatal("short response")
	}
	// Unknown domain refused.
	if _, err := mgr.Dispatch(dom.ID()+7, dom.Launch(), cmd.Bytes()); !errors.Is(err, ErrNoInstance) {
		t.Fatalf("unknown dom err = %v", err)
	}
}

func TestDispatchCheckpointsMutatingCommands(t *testing.T) {
	hv, xs, mgr, _ := newTestRig(t, &passGuard{})
	dom := mkGuestDom(t, hv, xs, "g")
	id, _ := mgr.CreateInstance()
	mgr.BindInstance(id, dom)
	before, _ := mgr.Store().Get(stateName(id))

	m := sha1.Sum([]byte("meas"))
	ext := tpm.NewWriter()
	ext.U16(tpm.TagRQUCommand)
	ext.U32(uint32(10 + 4 + len(m)))
	ext.U32(tpm.OrdExtend)
	ext.U32(7)
	ext.Raw(m[:])
	if _, err := mgr.Dispatch(dom.ID(), dom.Launch(), ext.Bytes()); err != nil {
		t.Fatal(err)
	}
	after, _ := mgr.Store().Get(stateName(id))
	if bytes.Equal(before, after) {
		t.Fatal("Extend did not checkpoint state")
	}
}

func TestReviveInstanceFromStore(t *testing.T) {
	hv, xs, mgr, _ := newTestRig(t, &passGuard{protect: true})
	dom := mkGuestDom(t, hv, xs, "g")
	id, _ := mgr.CreateInstance()
	mgr.BindInstance(id, dom)
	cli, _ := mgr.DirectClient(id)
	m := sha1.Sum([]byte("x"))
	cli.Extend(3, m)
	want, _ := cli.PCRRead(3)
	mgr.Checkpoint(id)
	mgr.UnbindInstance(id)
	// Drop the live copy but re-put the blob (DestroyInstance deletes it).
	blob, _ := mgr.Store().Get(stateName(id))
	mgr.DestroyInstance(id)
	mgr.Store().Put(stateName(id), blob)
	if err := mgr.ReviveInstance(id); err != nil {
		t.Fatalf("ReviveInstance: %v", err)
	}
	cli2, _ := mgr.DirectClient(id)
	got, err := cli2.PCRRead(3)
	if err != nil || got != want {
		t.Fatalf("revived PCR: %v %x want %x", err, got, want)
	}
}

func TestDestroyInstanceScrubsAndDeletes(t *testing.T) {
	hv, xs, mgr, _ := newTestRig(t, &passGuard{})
	dom := mkGuestDom(t, hv, xs, "g")
	id, _ := mgr.CreateInstance()
	mgr.BindInstance(id, dom)
	if err := mgr.DestroyInstance(id); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Store().Get(stateName(id)); !errors.Is(err, ErrNoState) {
		t.Fatalf("state blob survives destroy: %v", err)
	}
	if _, ok := mgr.InstanceForDomain(dom.ID()); ok {
		t.Fatal("binding survives destroy")
	}
	if err := mgr.DestroyInstance(id); !errors.Is(err, ErrNoInstance) {
		t.Fatalf("double destroy err = %v", err)
	}
}

func TestFrontBackHandshakeAndTraffic(t *testing.T) {
	hv, xs, mgr, be := newTestRig(t, &passGuard{})
	dom := mkGuestDom(t, hv, xs, "g")
	id, _ := mgr.CreateInstance()
	mgr.BindInstance(id, dom)
	fe := NewFrontend(hv, xs, dom, PlainCodec{})
	if err := fe.Setup(); err != nil {
		t.Fatalf("Setup: %v", err)
	}
	if err := be.AttachDevice(dom.ID()); err != nil {
		t.Fatalf("AttachDevice: %v", err)
	}
	if err := fe.WaitConnected(); err != nil {
		t.Fatalf("WaitConnected: %v", err)
	}
	if !be.Connected(dom.ID()) {
		t.Fatal("backend does not report connected")
	}
	cli := tpm.NewClient(fe, nil)
	if err := cli.SelfTestFull(); err != nil {
		t.Fatalf("command over ring: %v", err)
	}
	rnd, err := cli.GetRandom(16)
	if err != nil || len(rnd) != 16 {
		t.Fatalf("GetRandom over ring: %v", err)
	}
	if err := be.DetachDevice(dom.ID()); err != nil {
		t.Fatalf("DetachDevice: %v", err)
	}
	if _, err := cli.GetRandom(1); err == nil {
		t.Fatal("detached device still answers")
	}
	if err := be.DetachDevice(dom.ID()); !errors.Is(err, ErrNotConnected) {
		t.Fatalf("double detach err = %v", err)
	}
}

func TestAttachRequiresBoundInstance(t *testing.T) {
	hv, xs, _, be := newTestRig(t, &passGuard{})
	dom := mkGuestDom(t, hv, xs, "g")
	fe := NewFrontend(hv, xs, dom, PlainCodec{})
	if err := fe.Setup(); err != nil {
		t.Fatal(err)
	}
	if err := be.AttachDevice(dom.ID()); !errors.Is(err, ErrNoInstance) {
		t.Fatalf("err = %v", err)
	}
}

func TestGuardDenialBecomesTPMError(t *testing.T) {
	g := &passGuard{}
	hv, xs, mgr, be := newTestRig(t, g)
	dom := mkGuestDom(t, hv, xs, "g")
	id, _ := mgr.CreateInstance()
	mgr.BindInstance(id, dom)
	fe := NewFrontend(hv, xs, dom, PlainCodec{})
	fe.Setup()
	be.AttachDevice(dom.ID())
	fe.WaitConnected()
	cli := tpm.NewClient(fe, nil)
	g.denyAll = true
	if _, err := cli.GetRandom(4); !tpm.IsTPMError(err, RCGuardDenied) {
		t.Fatalf("err = %v, want RCGuardDenied", err)
	}
	g.denyAll = false
	if _, err := cli.GetRandom(4); err != nil {
		t.Fatalf("after re-allow: %v", err)
	}
}

func TestExportImportInstance(t *testing.T) {
	hv, xs, mgr, _ := newTestRig(t, &passGuard{})
	dom := mkGuestDom(t, hv, xs, "g")
	id, _ := mgr.CreateInstance()
	mgr.BindInstance(id, dom)
	cli, _ := mgr.DirectClient(id)
	m := sha1.Sum([]byte("pre"))
	cli.Extend(4, m)
	want, _ := cli.PCRRead(4)

	// Export requires unbinding first.
	if _, err := mgr.ExportInstance(id, nil); !errors.Is(err, ErrStillBound) {
		t.Fatalf("bound export err = %v", err)
	}
	mgr.UnbindInstance(id)
	img, err := mgr.ExportInstance(id, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Import on a second manager.
	_, _, mgr2, _ := newTestRig(t, &passGuard{})
	nid, err := mgr2.ImportInstance(img)
	if err != nil {
		t.Fatalf("ImportInstance: %v", err)
	}
	cli2, _ := mgr2.DirectClient(nid)
	got, err := cli2.PCRRead(4)
	if err != nil || got != want {
		t.Fatalf("imported PCR: %v %x want %x", err, got, want)
	}
}

func TestImageMarshalRoundTrip(t *testing.T) {
	img := &InstanceImage{Profile: tpm.Profile20, StateEnvelope: []byte("envelope-bytes")}
	copy(img.Launch[:], bytes.Repeat([]byte{7}, len(img.Launch)))
	got, err := unmarshalInstanceImage(marshalInstanceImage(img))
	if err != nil {
		t.Fatal(err)
	}
	if got.Launch != img.Launch || got.Profile != img.Profile || !bytes.Equal(got.StateEnvelope, img.StateEnvelope) {
		t.Fatal("instance image round trip lost data")
	}
	dimg := &xen.DomainImage{Name: "guest", SrcHost: "rack1", VCPUs: 2, PagesN: 3, Memory: bytes.Repeat([]byte{9}, 3*xen.PageSize)}
	got2, err := unmarshalDomainImage(marshalDomainImage(dimg))
	if err != nil {
		t.Fatal(err)
	}
	if got2.Name != "guest" || got2.SrcHost != "rack1" || got2.VCPUs != 2 || got2.PagesN != 3 || !bytes.Equal(got2.Memory, dimg.Memory) {
		t.Fatal("domain image round trip lost data")
	}
	if _, err := unmarshalDomainImage([]byte("junk")); err == nil {
		t.Fatal("junk domain image accepted")
	}
	if _, err := unmarshalInstanceImage([]byte{1, 2}); err == nil {
		t.Fatal("junk instance image accepted")
	}
}

func TestEKPoolAcceleratesCreation(t *testing.T) {
	hv := xen.NewHypervisor(xen.DomainConfig{Name: "Domain-0", Pages: 2048})
	dom0, _ := hv.Domain(xen.Dom0)
	mgr := NewManager(hv, NewMemStore(), xen.NewArena(dom0), &passGuard{}, ManagerConfig{
		RSABits: testBits, EKPoolSize: 2,
	})
	defer mgr.Close()
	// The pool fills in the background; with or without a pooled key,
	// creation must succeed and produce distinct instances.
	a, err := mgr.CreateInstance()
	if err != nil {
		t.Fatal(err)
	}
	b, err := mgr.CreateInstance()
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("duplicate instance IDs")
	}
}
