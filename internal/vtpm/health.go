package vtpm

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"xvtpm/internal/faults"
)

// Supervised recovery: the per-instance health state machine.
//
// The threat model assumes dom0 machinery — the store, the notification
// path, the backend — can misbehave at any time. The manager's job is to
// make every such failure either *recovered* (bounded retry succeeded) or
// *observable* (the instance is visibly Degraded or Quarantined with its
// last error exported), and never a silent durability loss.
//
//	Healthy ──persist fails (retries exhausted)──▶ Degraded
//	Degraded ──persist succeeds──▶ Healthy
//	Degraded ──persist fails again──▶ Quarantined
//	any ──permanent/corrupt error or panic──▶ Quarantined
//	Quarantined ──explicit Checkpoint succeeds──▶ Healthy
//
// Degraded switches a writeback instance to eager-synchronous persistence:
// every mutating command persists before its response returns, so a flaky
// store costs throughput, never durability. Quarantined fences the
// instance — Dispatch refuses new commands, the dirty engine state is held
// in memory, and only a successful supervised Checkpoint (or destroy)
// releases it.

// Health errors.
var (
	// ErrQuarantined rejects commands to a fenced instance.
	ErrQuarantined = errors.New("vtpm: instance quarantined")
	// ErrInstancePanic marks a contained dispatch or worker panic.
	ErrInstancePanic = errors.New("vtpm: instance panicked")
)

// HealthState is one node of the per-instance state machine.
type HealthState int

const (
	// HealthHealthy is normal operation under the configured policy.
	HealthHealthy HealthState = iota
	// HealthDegraded means background persistence has failed and the
	// instance fell back to eager-synchronous mode: slower, never lossy.
	HealthDegraded
	// HealthQuarantined means persistence failed beyond recovery (or the
	// instance panicked): commands are fenced off until a supervised
	// Checkpoint succeeds or the instance is destroyed.
	HealthQuarantined
)

// String returns the state name used in reports.
func (s HealthState) String() string {
	switch s {
	case HealthHealthy:
		return "healthy"
	case HealthDegraded:
		return "degraded"
	case HealthQuarantined:
		return "quarantined"
	}
	return fmt.Sprintf("health(%d)", int(s))
}

// InstanceHealth is a point-in-time health snapshot of one instance.
type InstanceHealth struct {
	ID    InstanceID
	State HealthState
	// LastError is the failure that caused the most recent non-healthy
	// transition; empty when the instance has never failed or has healed.
	LastError string
	// Retries counts store-I/O attempts beyond the first across all of the
	// instance's persist and revive passes.
	Retries uint64
	// Failures counts persist passes that exhausted their retries.
	Failures uint64
	// Transitions counts state-machine edges taken (including heals).
	Transitions uint64
	// Panics counts contained dispatch/worker panics.
	Panics uint64
	// Since is when the current state was entered (zero while Healthy and
	// never transitioned).
	Since time.Time
}

// healthState is the per-instance machine, guarded by its own small mutex
// (leaf lock: nothing is acquired while holding it).
type healthState struct {
	mu          sync.Mutex
	state       HealthState
	lastErr     error
	retries     uint64
	failures    uint64
	transitions uint64
	panics      uint64
	since       time.Time
}

// snapshot captures the machine for reporting.
func (h *healthState) snapshot(id InstanceID) InstanceHealth {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := InstanceHealth{
		ID:          id,
		State:       h.state,
		Retries:     h.retries,
		Failures:    h.failures,
		Transitions: h.transitions,
		Panics:      h.panics,
		Since:       h.since,
	}
	if h.lastErr != nil {
		out.LastError = h.lastErr.Error()
	}
	return out
}

// current returns the state without the full snapshot — the Dispatch
// fast-path check.
func (h *healthState) current() HealthState {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.state
}

// Health reports one instance's health.
func (m *Manager) Health(id InstanceID) (InstanceHealth, error) {
	inst, err := m.lookup(id)
	if err != nil {
		return InstanceHealth{}, err
	}
	return inst.health.snapshot(id), nil
}

// HealthAll reports every live instance's health, sorted by ID.
func (m *Manager) HealthAll() []InstanceHealth {
	m.regMu.RLock()
	insts := make(map[InstanceID]*instance, len(m.instances))
	for id, inst := range m.instances {
		insts[id] = inst
	}
	m.regMu.RUnlock()
	out := make([]InstanceHealth, 0, len(insts))
	for id, inst := range insts {
		out = append(out, inst.health.snapshot(id))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// noteRetry records one store-I/O retry attributed to inst (nil for
// manager-wide operations like the revive sweep's List).
func (m *Manager) noteRetry(inst *instance) {
	m.ckptRetries.Inc()
	if inst == nil {
		return
	}
	inst.health.mu.Lock()
	inst.health.retries++
	inst.health.mu.Unlock()
}

// notePersistOutcome advances the state machine after one completed persist
// pass. Success heals whatever state the instance was in; failure escalates
// Healthy→Degraded→Quarantined, and permanent or corrupt failures jump
// straight to Quarantined.
func (m *Manager) notePersistOutcome(inst *instance, err error) {
	h := &inst.health
	h.mu.Lock()
	if err == nil {
		if h.state != HealthHealthy {
			m.setGauges(h.state, -1)
			h.state = HealthHealthy
			h.lastErr = nil
			h.transitions++
			h.since = time.Now()
		}
		h.mu.Unlock()
		return
	}
	h.failures++
	h.lastErr = err
	prev := h.state
	next := prev
	switch {
	case faults.Classify(err) != faults.ClassTransient:
		next = HealthQuarantined
	case prev == HealthHealthy:
		next = HealthDegraded
	default:
		next = HealthQuarantined
	}
	if next != prev {
		m.setGauges(prev, -1)
		m.setGauges(next, +1)
		h.state = next
		h.transitions++
		h.since = time.Now()
		if next == HealthDegraded {
			m.healthDegradations.Inc()
		} else {
			m.healthQuarantines.Inc()
		}
	}
	h.mu.Unlock()
	if next == HealthQuarantined {
		m.fenceCheckpoints(inst, err)
	}
}

// notePanic contains one dispatch/worker panic: the instance is quarantined
// with the panic recorded, and only that instance is affected.
func (m *Manager) notePanic(inst *instance, err error) {
	h := &inst.health
	h.mu.Lock()
	h.panics++
	h.lastErr = err
	if h.state != HealthQuarantined {
		m.setGauges(h.state, -1)
		m.setGauges(HealthQuarantined, +1)
		h.state = HealthQuarantined
		h.transitions++
		h.since = time.Now()
		m.healthQuarantines.Inc()
	}
	h.mu.Unlock()
	m.fenceCheckpoints(inst, err)
}

// setGauges adjusts the currently-degraded/quarantined gauges for a state
// entering (+1) or leaving (-1) the population. Caller holds h.mu.
func (m *Manager) setGauges(s HealthState, delta int64) {
	switch s {
	case HealthDegraded:
		m.healthDegradedNow.Add(delta)
	case HealthQuarantined:
		m.healthQuarantinedNow.Add(delta)
	}
}

// fenceCheckpoints makes a quarantine visible to the checkpoint pipeline:
// the sticky error stops the backpressure gate from blocking dispatches
// that the health check is about to reject anyway, and wakes any that are
// already waiting.
func (m *Manager) fenceCheckpoints(inst *instance, err error) {
	ck := &inst.ck
	ck.mu.Lock()
	if ck.err == nil {
		ck.err = err
	}
	ck.cond.Broadcast()
	ck.mu.Unlock()
}

// quarantineErr builds the error a fenced instance's Dispatch returns.
func quarantineErr(id InstanceID, h *healthState) error {
	h.mu.Lock()
	last := h.lastErr
	h.mu.Unlock()
	if last != nil {
		return fmt.Errorf("%w: instance %d (last error: %v)", ErrQuarantined, id, last)
	}
	return fmt.Errorf("%w: instance %d", ErrQuarantined, id)
}
