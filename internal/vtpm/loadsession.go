package vtpm

import (
	"sync"
	"sync/atomic"

	"xvtpm/internal/xen"
)

// LoadSession is a synthetic open-loop traffic source admitted at the
// manager layer: it speaks the same dispatch path as a real guest — the
// guard-issued channel codec in, Manager.Dispatch with the bound domain's
// claimed identity, the codec back out — but without a ring, frontend or
// backend in between. The load harness multiplexes large simulated fleets
// onto a pool of these (one tpm.Client per session via the Transport it
// implements), so offered-load experiments measure the admission + engine
// path itself rather than transport scheduling.
//
// Contract: in improved mode the channel's anti-replay window is per
// instance and strictly monotonic, so a session must be its instance's
// *only* client — opening one on an instance whose guest frontend is still
// issuing commands makes the two sequence streams fence each other out
// (ErrReplay). Open sessions on dedicated load instances (see
// xvtpm.Host.OpenLoadSlot) or on guests known to be quiescent.
type LoadSession struct {
	m      *Manager
	id     InstanceID
	dom    xen.DomID
	launch xen.LaunchDigest
	codec  GuestCodec

	mu     sync.Mutex // serializes the codec's sequence stream
	closed bool
}

// OpenLoadSession admits a synthetic open-loop session for a bound
// instance. The session's codec comes from the instance's guard, so
// admission control (binding checks, policy, rate limits, channel
// authentication) applies to every command exactly as it does for guest
// traffic.
func (m *Manager) OpenLoadSession(id InstanceID) (*LoadSession, error) {
	info, err := m.InstanceInfo(id)
	if err != nil {
		return nil, err
	}
	if info.BoundDom == xen.Dom0 {
		return nil, ErrUnbound
	}
	codec, err := m.EncoderFor(id)
	if err != nil {
		return nil, err
	}
	atomic.AddInt64(&m.loadSessions, 1)
	return &LoadSession{m: m, id: id, dom: info.BoundDom, launch: info.BoundLaunch, codec: codec}, nil
}

// Instance names the session's backing instance.
func (s *LoadSession) Instance() InstanceID { return s.id }

// Domain names the bound domain whose identity the session claims.
func (s *LoadSession) Domain() xen.DomID { return s.dom }

// Transmit implements tpm.Transport: one encoded round trip through the
// manager's dispatch path. Calls serialize on the session — the channel
// codec is a single ordered sequence stream — which is exactly the
// one-lane semantics a load slot wants (lateness behind a slow dispatch
// folds into the open-loop latency of queued arrivals).
func (s *LoadSession) Transmit(cmd []byte) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrBadChannel
	}
	payload, err := s.codec.EncodeRequest(cmd)
	if err != nil {
		return nil, err
	}
	resp, err := s.m.Dispatch(s.dom, s.launch, payload)
	if err != nil {
		return nil, err
	}
	atomic.AddUint64(&s.m.loadCommands, 1)
	return s.codec.DecodeResponse(resp)
}

// Close retires the session. The instance stays bound; callers own its
// lifecycle.
func (s *LoadSession) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.closed {
		s.closed = true
		atomic.AddInt64(&s.m.loadSessions, -1)
	}
}

// LoadSessionStats reports the manager's synthetic-session activity:
// currently open sessions and total commands dispatched through them.
func (m *Manager) LoadSessionStats() (open int64, commands uint64) {
	return atomic.LoadInt64(&m.loadSessions), atomic.LoadUint64(&m.loadCommands)
}
