package vtpm

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"xvtpm/internal/faults"
	"xvtpm/internal/tpm"
	"xvtpm/internal/xen"
)

// fastRetry keeps the health tests quick: one retry, microsecond backoff.
var fastRetry = RetryPolicy{
	MaxAttempts: 2,
	BaseBackoff: time.Microsecond,
	MaxBackoff:  time.Microsecond,
	Deadline:    time.Second,
}

// flakyStore fails Put on demand — the switchable version of failStore for
// driving the health state machine through its transitions.
type flakyStore struct {
	Store
	mu   sync.Mutex
	fail bool
	perm bool
}

func (f *flakyStore) setFail(fail, perm bool) {
	f.mu.Lock()
	f.fail, f.perm = fail, perm
	f.mu.Unlock()
}

func (f *flakyStore) Put(name string, data []byte) error {
	f.mu.Lock()
	fail, perm := f.fail, f.perm
	f.mu.Unlock()
	if fail {
		if perm {
			return faults.Permanent(errors.New("flaky: permanent put failure"))
		}
		return errors.New("flaky: put failure")
	}
	return f.Store.Put(name, data)
}

// healthRig builds a bound instance over a flaky store.
func healthRig(t *testing.T, cfg ManagerConfig) (*flakyStore, *Manager, *xen.Domain, InstanceID) {
	t.Helper()
	fs := &flakyStore{Store: NewMemStore()}
	cfg.RSABits = testBits
	cfg.Retry = fastRetry
	hv, mgr := newCkptRig(t, fs, &passGuard{}, cfg)
	t.Cleanup(func() { mgr.Close() }) //nolint:errcheck // tests wedge instances deliberately
	dom, err := hv.CreateDomain(xen.DomainConfig{Name: "g", Kernel: []byte("k")})
	if err != nil {
		t.Fatal(err)
	}
	id, err := mgr.CreateInstance()
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.BindInstance(id, dom); err != nil {
		t.Fatal(err)
	}
	return fs, mgr, dom, id
}

// TestHealthDegradeQuarantineRecover walks the full state machine under the
// eager policy: transient persist failure degrades, a second failure
// quarantines and fences dispatch, and a supervised Checkpoint heals.
func TestHealthDegradeQuarantineRecover(t *testing.T) {
	fs, mgr, dom, id := healthRig(t, ManagerConfig{Seed: []byte("health")})

	cmd, _ := extendStepCmd(7, 1)
	if _, err := mgr.Dispatch(dom.ID(), dom.Launch(), cmd); err != nil {
		t.Fatalf("healthy dispatch: %v", err)
	}
	if h, _ := mgr.Health(id); h.State != HealthHealthy {
		t.Fatalf("state = %v, want healthy", h.State)
	}

	// First persist failure: Healthy → Degraded, retries attempted first.
	fs.setFail(true, false)
	cmd, _ = extendStepCmd(7, 2)
	if _, err := mgr.Dispatch(dom.ID(), dom.Launch(), cmd); err == nil {
		t.Fatal("dispatch succeeded with a failing store")
	}
	h, err := mgr.Health(id)
	if err != nil {
		t.Fatal(err)
	}
	if h.State != HealthDegraded {
		t.Fatalf("state after first failure = %v, want degraded", h.State)
	}
	if h.LastError == "" || h.Failures != 1 || h.Retries == 0 {
		t.Fatalf("snapshot = %+v: want LastError set, Failures 1, Retries > 0", h)
	}
	if s := mgr.CheckpointStats(); s.Degradations != 1 || s.DegradedNow != 1 {
		t.Fatalf("stats = %+v: want one degradation, one degraded now", s)
	}

	// Second failure: Degraded → Quarantined.
	cmd, _ = extendStepCmd(7, 3)
	if _, err := mgr.Dispatch(dom.ID(), dom.Launch(), cmd); err == nil {
		t.Fatal("dispatch succeeded while store still failing")
	}
	if h, _ = mgr.Health(id); h.State != HealthQuarantined {
		t.Fatalf("state after second failure = %v, want quarantined", h.State)
	}
	if s := mgr.CheckpointStats(); s.Quarantines != 1 || s.QuarantinedNow != 1 || s.DegradedNow != 0 {
		t.Fatalf("stats = %+v: want one quarantine, zero degraded now", s)
	}

	// Quarantine fences dispatch without touching the engine.
	cmd, _ = extendStepCmd(7, 4)
	if _, err := mgr.Dispatch(dom.ID(), dom.Launch(), cmd); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("fenced dispatch err = %v, want ErrQuarantined", err)
	}

	// Supervised recovery: the store heals, an explicit Checkpoint persists
	// the held dirty state and releases the instance.
	fs.setFail(false, false)
	if err := mgr.Checkpoint(id); err != nil {
		t.Fatalf("supervised checkpoint: %v", err)
	}
	if h, _ = mgr.Health(id); h.State != HealthHealthy {
		t.Fatalf("state after recovery = %v, want healthy", h.State)
	}
	if s := mgr.CheckpointStats(); s.QuarantinedNow != 0 {
		t.Fatalf("QuarantinedNow = %d after recovery, want 0", s.QuarantinedNow)
	}
	cmd, _ = extendStepCmd(7, 5)
	if _, err := mgr.Dispatch(dom.ID(), dom.Launch(), cmd); err != nil {
		t.Fatalf("dispatch after recovery: %v", err)
	}

	// Nothing committed was lost: the persisted blob restores to the
	// engine's exact current state.
	eng, err := mgr.DirectClient(id)
	if err != nil {
		t.Fatal(err)
	}
	want, err := eng.PCRRead(7)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := fs.Get(stateName(id))
	if err != nil {
		t.Fatal(err)
	}
	profile, envelope, err := UnwrapCheckpoint(blob)
	if err != nil {
		t.Fatal(err)
	}
	state, err := (&passGuard{}).RecoverState(InstanceInfo{ID: id, Profile: profile}, envelope)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := tpm.RestoreState(state)
	if err != nil {
		t.Fatal(err)
	}
	got, err := tpm.NewClient(tpm.DirectTransport{TPM: restored}, nil).PCRRead(7)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("restored PCR %x, engine holds %x", got, want)
	}
}

// TestHealthPermanentFailureQuarantinesImmediately: a permanent (or corrupt)
// classification skips Degraded — retrying cannot help, so the instance is
// fenced at once.
func TestHealthPermanentFailureQuarantinesImmediately(t *testing.T) {
	fs, mgr, dom, id := healthRig(t, ManagerConfig{Seed: []byte("perm")})
	fs.setFail(true, true)
	cmd, _ := extendStepCmd(7, 1)
	if _, err := mgr.Dispatch(dom.ID(), dom.Launch(), cmd); err == nil {
		t.Fatal("dispatch succeeded with a permanently failing store")
	}
	h, _ := mgr.Health(id)
	if h.State != HealthQuarantined {
		t.Fatalf("state = %v, want quarantined (no degraded stop)", h.State)
	}
	if s := mgr.CheckpointStats(); s.Degradations != 0 || s.Quarantines != 1 {
		t.Fatalf("stats = %+v: want a direct quarantine, no degradation", s)
	}
	// Permanent failures are not retried.
	if h.Retries != 0 {
		t.Fatalf("Retries = %d, want 0 for a permanent failure", h.Retries)
	}
}

// TestHealthDegradedWritebackTurnsEager: a Degraded writeback instance
// persists synchronously on the next mutation — and heals when that persist
// succeeds — so a flaky store costs latency, never durability.
func TestHealthDegradedWritebackTurnsEager(t *testing.T) {
	fs, mgr, dom, id := healthRig(t, ManagerConfig{
		Seed:             []byte("wb-degrade"),
		Checkpoint:       CheckpointWriteback,
		MaxDirtyCommands: 1024, // the gate never trips; only the worker persists
		MaxDirtyInterval: time.Millisecond,
	})
	fs.setFail(true, false)
	cmd, _ := extendStepCmd(7, 1)
	if _, err := mgr.Dispatch(dom.ID(), dom.Launch(), cmd); err != nil {
		t.Fatalf("writeback dispatch: %v", err) // failure lands later, in the worker
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if h, _ := mgr.Health(id); h.State == HealthDegraded {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("worker persist failure never degraded the instance")
		}
		time.Sleep(time.Millisecond)
	}

	// Degraded + healed store: the very next mutation persists before its
	// response returns, and the success heals the instance.
	fs.setFail(false, false)
	cmd, _ = extendStepCmd(7, 2)
	if _, err := mgr.Dispatch(dom.ID(), dom.Launch(), cmd); err != nil {
		t.Fatalf("degraded dispatch: %v", err)
	}
	if h, _ := mgr.Health(id); h.State != HealthHealthy {
		t.Fatalf("state after synchronous persist = %v, want healthy", h.State)
	}
	// Synchronous means the store is current now, not eventually.
	blob, err := fs.Get(stateName(id))
	if err != nil {
		t.Fatal(err)
	}
	profile, envelope, err := UnwrapCheckpoint(blob)
	if err != nil {
		t.Fatal(err)
	}
	state, err := (&passGuard{}).RecoverState(InstanceInfo{ID: id, Profile: profile}, envelope)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := tpm.RestoreState(state)
	if err != nil {
		t.Fatal(err)
	}
	got, err := tpm.NewClient(tpm.DirectTransport{TPM: restored}, nil).PCRRead(7)
	if err != nil {
		t.Fatal(err)
	}
	chain := pcrChain(2)
	if got != chain[2] {
		t.Fatalf("store at step %d, want 2 (synchronous persist)", chainIndex(chain, got))
	}
}

// panicGuard panics inside AdmitCommand for one domain — the poisoned-path
// model for panic containment.
type panicGuard struct {
	passGuard
	panicDom xen.DomID
}

func (g *panicGuard) AdmitCommand(inst InstanceInfo, from xen.DomID, launch xen.LaunchDigest, payload []byte) ([]byte, ResponseFinisher, error) {
	if from == g.panicDom {
		panic("injected guard panic")
	}
	return g.passGuard.AdmitCommand(inst, from, launch, payload)
}

// TestDispatchPanicQuarantinesOnlyThatInstance: a panic anywhere inside one
// instance's dispatch is contained — recorded, quarantining that instance —
// while its siblings keep dispatching.
func TestDispatchPanicQuarantinesOnlyThatInstance(t *testing.T) {
	guard := &panicGuard{}
	hv, mgr := newCkptRig(t, NewMemStore(), guard, ManagerConfig{
		RSABits: testBits, Seed: []byte("panic"), Retry: fastRetry,
	})
	t.Cleanup(func() { mgr.Close() }) //nolint:errcheck // victim instance stays wedged
	var doms [2]*xen.Domain
	var ids [2]InstanceID
	for i := range doms {
		dom, err := hv.CreateDomain(xen.DomainConfig{Name: "g", Kernel: []byte{byte(i)}})
		if err != nil {
			t.Fatal(err)
		}
		id, err := mgr.CreateInstance()
		if err != nil {
			t.Fatal(err)
		}
		if err := mgr.BindInstance(id, dom); err != nil {
			t.Fatal(err)
		}
		doms[i], ids[i] = dom, id
	}
	guard.panicDom = doms[0].ID()

	cmd, _ := extendStepCmd(7, 1)
	_, err := mgr.Dispatch(doms[0].ID(), doms[0].Launch(), cmd)
	if !errors.Is(err, ErrInstancePanic) {
		t.Fatalf("panicking dispatch err = %v, want ErrInstancePanic", err)
	}
	h, _ := mgr.Health(ids[0])
	if h.State != HealthQuarantined || h.Panics != 1 {
		t.Fatalf("victim health = %+v: want quarantined with one panic", h)
	}
	if _, err := mgr.Dispatch(doms[0].ID(), doms[0].Launch(), cmd); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("post-panic dispatch err = %v, want ErrQuarantined", err)
	}

	// The sibling is untouched.
	if _, err := mgr.Dispatch(doms[1].ID(), doms[1].Launch(), cmd); err != nil {
		t.Fatalf("sibling dispatch: %v", err)
	}
	if h, _ := mgr.Health(ids[1]); h.State != HealthHealthy || h.Panics != 0 {
		t.Fatalf("sibling health = %+v: want untouched", h)
	}
	if s := mgr.CheckpointStats(); s.Panics != 1 {
		t.Fatalf("stats.Panics = %d, want 1", s.Panics)
	}
}

// TestCloseReportsWedgedInstance: an orderly shutdown that cannot drain an
// instance's dirty state reports it — through Manager.Close and on up.
func TestCloseReportsWedgedInstance(t *testing.T) {
	fs := &flakyStore{Store: NewMemStore()}
	hv, mgr := newCkptRig(t, fs, &passGuard{}, ManagerConfig{
		RSABits: testBits, Seed: []byte("close"), Retry: fastRetry,
		Checkpoint:       CheckpointWriteback,
		MaxDirtyCommands: 1024,
		MaxDirtyInterval: time.Hour, // only Close's flush barrier persists
	})
	dom, err := hv.CreateDomain(xen.DomainConfig{Name: "g", Kernel: []byte("k")})
	if err != nil {
		t.Fatal(err)
	}
	id, err := mgr.CreateInstance()
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.BindInstance(id, dom); err != nil {
		t.Fatal(err)
	}
	cmd, _ := extendStepCmd(7, 1)
	if _, err := mgr.Dispatch(dom.ID(), dom.Launch(), cmd); err != nil {
		t.Fatal(err)
	}
	fs.setFail(true, false)
	err = mgr.Close()
	if err == nil {
		t.Fatal("Close succeeded despite undrainable dirty state")
	}
	if !strings.Contains(err.Error(), "closing instance 1") {
		t.Fatalf("Close error does not name the wedged instance: %v", err)
	}
	_ = id
	// Close is idempotent: the second call does not re-drain or re-report.
	if err := mgr.Close(); err != nil {
		t.Fatalf("second Close = %v, want nil", err)
	}
}
