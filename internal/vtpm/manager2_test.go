package vtpm

import (
	"bytes"
	"crypto/sha1"
	"testing"

	"xvtpm/internal/tpm"
	"xvtpm/internal/xen"
)

func extendCmd(pcr uint32, seed byte) []byte {
	m := sha1.Sum([]byte{seed})
	w := tpm.NewWriter()
	w.U16(tpm.TagRQUCommand)
	w.U32(uint32(10 + 4 + len(m)))
	w.U32(tpm.OrdExtend)
	w.U32(pcr)
	w.Raw(m[:])
	return w.Bytes()
}

func TestDeferCheckpointsSkipsAutoPersist(t *testing.T) {
	hv := xen.NewHypervisor(xen.DomainConfig{Name: "Domain-0", Pages: 2048})
	dom0, _ := hv.Domain(xen.Dom0)
	mgr := NewManager(hv, NewMemStore(), xen.NewArena(dom0), &passGuard{}, ManagerConfig{
		RSABits: testBits, Seed: []byte("defer"), DeferCheckpoints: true,
	})
	defer mgr.Close()
	dom, err := hv.CreateDomain(xen.DomainConfig{Name: "g", Kernel: []byte("k")})
	if err != nil {
		t.Fatal(err)
	}
	id, _ := mgr.CreateInstance()
	mgr.BindInstance(id, dom)
	before, _ := mgr.Store().Get(stateName(id))
	if _, err := mgr.Dispatch(dom.ID(), dom.Launch(), extendCmd(7, 1)); err != nil {
		t.Fatal(err)
	}
	after, _ := mgr.Store().Get(stateName(id))
	if !bytes.Equal(before, after) {
		t.Fatal("deferred mode persisted automatically")
	}
	// Explicit CheckpointAll persists.
	if err := mgr.CheckpointAll(); err != nil {
		t.Fatal(err)
	}
	final, _ := mgr.Store().Get(stateName(id))
	if bytes.Equal(before, final) {
		t.Fatal("CheckpointAll did not persist")
	}
}

func TestReviveAllRestoresEveryPersistedInstance(t *testing.T) {
	hv, xs, mgr, _ := newTestRig(t, &passGuard{protect: true})
	_ = xs
	_ = hv
	// Three instances with distinct state.
	var ids []InstanceID
	var wants [][tpm.DigestSize]byte
	for i := 0; i < 3; i++ {
		id, err := mgr.CreateInstance()
		if err != nil {
			t.Fatal(err)
		}
		cli, _ := mgr.DirectClient(id)
		m := sha1.Sum([]byte{byte(i)})
		if _, err := cli.Extend(5, m); err != nil {
			t.Fatal(err)
		}
		v, _ := cli.PCRRead(5)
		if err := mgr.Checkpoint(id); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		wants = append(wants, v)
	}
	// Unrelated blob in the store must be ignored.
	mgr.Store().Put("policy.bin", []byte("not an instance"))
	// "Restart": drop all live instances but keep the store.
	blobs := make(map[InstanceID][]byte)
	for _, id := range ids {
		b, _ := mgr.Store().Get(stateName(id))
		blobs[id] = b
		mgr.DestroyInstance(id)
		mgr.Store().Put(stateName(id), b)
	}
	revived, err := mgr.ReviveAll()
	if err != nil {
		t.Fatalf("ReviveAll: %v", err)
	}
	if len(revived) != len(ids) {
		t.Fatalf("revived %d instances, want %d", len(revived), len(ids))
	}
	for i, id := range ids {
		cli, err := mgr.DirectClient(id)
		if err != nil {
			t.Fatalf("instance %d not live: %v", id, err)
		}
		v, err := cli.PCRRead(5)
		if err != nil || v != wants[i] {
			t.Fatalf("instance %d PCR = %x (%v), want %x", id, v, err, wants[i])
		}
	}
	// Idempotent: nothing new to revive.
	again, err := mgr.ReviveAll()
	if err != nil || len(again) != 0 {
		t.Fatalf("second ReviveAll: %v, %d revived", err, len(again))
	}
}
