package vtpm

import (
	"fmt"
	"sync"

	"xvtpm/internal/metrics"
	"xvtpm/internal/tpm"
	"xvtpm/internal/trace"
	"xvtpm/internal/xen"
)

// InstanceID names one vTPM instance within a manager.
type InstanceID uint32

// stateName is the Store key for an instance's state blob.
func stateName(id InstanceID) string { return fmt.Sprintf("vtpm-%08d.state", id) }

// instance is the manager's record of one vTPM.
//
// Each instance carries its own mutex, which owns everything per-instance:
// dispatch (guard admission, engine execution, exchange recording),
// checkpointing, and the binding metadata in info. Commands to different
// instances therefore never contend — the manager's registry lock (regMu) is
// only touched for the map lookup. Lock ordering: mu is never acquired while
// holding Manager.regMu, and vice versa (see DESIGN.md "Locking hierarchy").
type instance struct {
	mu   sync.Mutex
	info InstanceInfo
	eng  tpm.Engine

	// mirror is the manager's in-memory copy of the instance's protected
	// state, allocated from dom0 arena memory so that it is visible to a
	// dom0 core dump — the honesty requirement of the attack model. For the
	// baseline guard this mirror is plaintext; for the improved guard it is
	// an encrypted envelope.
	mirror []byte

	// exchange is the arena buffer holding the most recent decoded
	// command/response plaintext. The baseline leaves it in place between
	// commands (as the stock manager's heap does); the improved guard has
	// the manager scrub it as soon as the response is finished.
	exchange []byte

	attached bool

	// fence, when non-nil, rejects every dispatch with a redirect to the
	// instance's new owner — set for the source half of a federated
	// ownership handoff (see fence.go). Lock-free so the Dispatch fast path
	// pays one atomic load.
	fence fencePtr

	// ck is the instance's write-behind checkpoint pipeline state; see
	// checkpoint.go for the machinery and DESIGN.md for the durability
	// contract.
	ck ckptState

	// health is the instance's supervised-recovery state machine
	// (Healthy → Degraded → Quarantined); see health.go. Leaf lock.
	health healthState

	// persistMu serializes whole persist passes (snapshot → seal → store →
	// mirror) between the background checkpoint worker and forced
	// checkpoints, so a snapshot taken later can never be overwritten by an
	// earlier one. Ordering: persistMu is acquired before mu, never after.
	persistMu sync.Mutex

	// stateBuf and blobBuf are scratch buffers reused across persists
	// (guarded by persistMu): the serialized plaintext state and its
	// protected envelope. Steady-state checkpoints allocate nothing once
	// both have grown to the instance's working size.
	stateBuf []byte
	blobBuf  []byte

	// Per-instance observability (see observe.go): dispatch/failure
	// counters, an end-to-end latency histogram, and the bounded ring of
	// recent spans. spans is nil when tracing is disabled; both are fixed
	// allocations made at instance creation, never on the dispatch path.
	dispatches metrics.Counter
	failures   metrics.Counter
	lat        *metrics.Histogram
	spans      *trace.Ring
}

// newInstance builds an instance record with its checkpoint pipeline state
// and observability instruments initialized. All creation paths (create,
// revive, import) go through here, so this is also where every engine —
// including ones restored from checkpoints or migration images, which
// bypass tpm.Config — is attached to the manager's shared signing and
// key-generation pools.
func (m *Manager) newInstance(info InstanceInfo, eng tpm.Engine) *instance {
	if pa, ok := eng.(tpm.PoolAttacher); ok {
		pa.AttachPools(m.signPool, m.keyPool)
	}
	inst := &instance{
		info:  info,
		eng:   eng,
		lat:   metrics.NewHistogram(nil),
		spans: m.tel.tracer.NewRing(),
	}
	inst.ck.init()
	return inst
}

// Snapshot captures the identity metadata of an instance. Callers already
// holding i.mu must read i.info directly instead.
func (i *instance) Snapshot() InstanceInfo {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.info
}

// bindingFor derives the launch identity of a domain.
func bindingFor(d *xen.Domain) xen.LaunchDigest { return d.Launch() }
