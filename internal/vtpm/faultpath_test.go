package vtpm

import (
	"crypto/sha1"
	"fmt"
	"strings"
	"testing"
	"time"

	"xvtpm/internal/faults"
)

// Partial-failure sweeps through the faults.Store wrapper: CheckpointAll and
// ReviveAll must treat each instance independently — every failure joined
// into the aggregate error, every healthy instance fully handled.

// noRetry makes each injector draw map 1:1 onto one store operation, so the
// partition of instances into failed/succeeded is a pure function of the
// seed.
var noRetry = RetryPolicy{
	MaxAttempts: 1,
	BaseBackoff: time.Microsecond,
	MaxBackoff:  time.Microsecond,
	Deadline:    time.Second,
}

// faultRig builds a manager over an injector-wrapped store with n deferred
// instances, each with distinct engine state, and injection disabled during
// setup so the schedule starts at the sweep under test.
func faultRig(t *testing.T, seed int64, n int, retry RetryPolicy) (*faults.Injector, *faults.Store, *Manager, []InstanceID) {
	t.Helper()
	inj := faults.NewInjector(seed)
	inj.SetDisabled(true)
	fstore := faults.NewStore(NewMemStore(), inj)
	_, mgr := newCkptRig(t, fstore, &passGuard{}, ManagerConfig{
		RSABits: testBits, Seed: []byte("faultpath"),
		Checkpoint: CheckpointDeferred, Retry: retry,
	})
	t.Cleanup(func() { mgr.Close() }) //nolint:errcheck // instances may be wedged by injection
	ids := make([]InstanceID, n)
	for i := range ids {
		id, err := mgr.CreateInstance()
		if err != nil {
			t.Fatal(err)
		}
		cli, err := mgr.DirectClient(id)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cli.Extend(5, sha1.Sum([]byte{byte(i)})); err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	return inj, fstore, mgr, ids
}

// TestCheckpointAllPartialFailureUnderInjection: with a 50% Put error rate
// and no retries, the sweep's outcome partitions the instances exactly —
// named in the joined error XOR persisted to the inner store.
func TestCheckpointAllPartialFailureUnderInjection(t *testing.T) {
	inj, fstore, mgr, ids := faultRig(t, 3, 4, noRetry)
	before := make(map[InstanceID][]byte)
	for _, id := range ids {
		b, err := fstore.Inner().Get(stateName(id))
		if err != nil {
			t.Fatal(err)
		}
		before[id] = b
	}
	inj.SetDisabled(false)
	inj.SetPolicy(faults.OpPut, faults.Policy{ErrorRate: 0.5})
	err := mgr.CheckpointAll()
	inj.SetDisabled(true)
	if err == nil {
		t.Fatal("CheckpointAll reported success; seed 3 must inject Put failures")
	}
	if !faults.IsInjected(err) {
		t.Fatalf("aggregate error does not carry an injected failure: %v", err)
	}
	var failed, succeeded int
	for _, id := range ids {
		named := strings.Contains(err.Error(), fmt.Sprintf("instance %d:", id))
		after, gerr := fstore.Inner().Get(stateName(id))
		if gerr != nil {
			t.Fatal(gerr)
		}
		updated := string(after) != string(before[id])
		if named == updated {
			t.Fatalf("instance %d: named-in-error=%v, blob-updated=%v — want exactly one", id, named, updated)
		}
		if named {
			failed++
		} else {
			succeeded++
		}
	}
	if failed == 0 || succeeded == 0 {
		t.Fatalf("failed=%d succeeded=%d: seed 3 should split the sweep", failed, succeeded)
	}
	// The failures are observable in the health report, not just the error.
	var quarantinedOrDegraded int
	for _, h := range mgr.HealthAll() {
		if h.State != HealthHealthy {
			quarantinedOrDegraded++
		}
	}
	if quarantinedOrDegraded != failed {
		t.Fatalf("%d instances non-healthy, %d checkpoint failures", quarantinedOrDegraded, failed)
	}
}

// TestReviveAllPartialFailureUnderInjection: a restart sweep over a flaky
// store revives what it can and aggregates the rest, never aborting early.
func TestReviveAllPartialFailureUnderInjection(t *testing.T) {
	inj, fstore, mgr, ids := faultRig(t, 11, 4, noRetry)
	if err := mgr.CheckpointAll(); err != nil {
		t.Fatal(err)
	}
	// Restart: fresh manager, same store.
	_, mgr2 := newCkptRig(t, fstore, &passGuard{}, ManagerConfig{
		RSABits: testBits, Checkpoint: CheckpointDeferred, Retry: noRetry,
	})
	t.Cleanup(func() { mgr2.Close() }) //nolint:errcheck
	inj.SetDisabled(false)
	inj.SetPolicy(faults.OpGet, faults.Policy{ErrorRate: 0.5})
	revived, err := mgr2.ReviveAll()
	inj.SetDisabled(true)
	if err == nil {
		t.Fatal("ReviveAll reported success; seed 11 must inject Get failures")
	}
	got := make(map[InstanceID]bool, len(revived))
	for _, id := range revived {
		got[id] = true
	}
	var failed int
	for _, id := range ids {
		named := strings.Contains(err.Error(), fmt.Sprintf("instance %d:", id))
		if named == got[id] {
			t.Fatalf("instance %d: named-in-error=%v, revived=%v — want exactly one", id, named, got[id])
		}
		if named {
			failed++
		}
	}
	if failed == 0 || failed == len(ids) {
		t.Fatalf("failed=%d of %d: seed 11 should split the sweep", failed, len(ids))
	}
	// The survivors revived with usable state.
	for _, id := range revived {
		cli, err := mgr2.DirectClient(id)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cli.PCRRead(5); err != nil {
			t.Fatalf("revived instance %d unusable: %v", id, err)
		}
	}
}

// TestReviveAllRetriesToFullRecovery: with retries enabled, the same error
// rate that splits the no-retry sweep is fully absorbed — every instance
// revives, and the retry counter shows the work it took.
func TestReviveAllRetriesToFullRecovery(t *testing.T) {
	inj, fstore, mgr, ids := faultRig(t, 11, 4, noRetry)
	if err := mgr.CheckpointAll(); err != nil {
		t.Fatal(err)
	}
	retrying := RetryPolicy{
		MaxAttempts: 10,
		BaseBackoff: time.Microsecond,
		MaxBackoff:  time.Microsecond,
		Deadline:    time.Minute,
	}
	_, mgr2 := newCkptRig(t, fstore, &passGuard{}, ManagerConfig{
		RSABits: testBits, Checkpoint: CheckpointDeferred, Retry: retrying,
	})
	t.Cleanup(func() { mgr2.Close() }) //nolint:errcheck
	inj.SetDisabled(false)
	inj.SetPolicy(faults.OpGet, faults.Policy{ErrorRate: 0.5})
	inj.SetPolicy(faults.OpList, faults.Policy{ErrorRate: 0.5})
	revived, err := mgr2.ReviveAll()
	inj.SetDisabled(true)
	if err != nil {
		t.Fatalf("ReviveAll with retries: %v", err)
	}
	if len(revived) != len(ids) {
		t.Fatalf("revived %d of %d instances", len(revived), len(ids))
	}
	if s := mgr2.CheckpointStats(); s.Retries == 0 {
		t.Fatal("full recovery with zero retries: injection never engaged")
	}
}
