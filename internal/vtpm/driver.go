package vtpm

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"xvtpm/internal/ring"
	"xvtpm/internal/tpm"
	"xvtpm/internal/xen"
	"xvtpm/internal/xenstore"
)

// XenBus device states, as on real Xen.
const (
	XenbusInitialising = 1
	XenbusInitWait     = 2
	XenbusInitialised  = 3
	XenbusConnected    = 4
	XenbusClosing      = 5
	XenbusClosed       = 6
)

// Guard-refusal return codes delivered to the guest as TPM error responses.
const (
	RCGuardDenied    uint32 = 0x00000F01 // policy refused the ordinal
	RCGuardChannel   uint32 = 0x00000F02 // channel authentication/replay failure
	RCGuardThrottled uint32 = 0x00000F03 // instance over its command rate limit
	RCInstanceFailed uint32 = 0x00000F04 // instance quarantined after persistence failure
	RCInstanceMoved  uint32 = 0x00000F05 // instance fenced: ownership moved, retry at the new owner
)

// driverWaitPoll is how long the split-driver service loops block on the
// event channel before re-polling the ring. On real hardware a lost
// interrupt stalls the device until the next one; here a bounded wait turns
// a dropped notification (see xen.EventChannels.SetNotifyFault) into a short
// delay instead of a deadlock.
const driverWaitPoll = 2 * time.Millisecond

// Ring geometry of the vTPM device: 8 in-flight slots of 4 KiB, sized for
// the largest key blobs the engine emits.
var deviceRingGeometry = ring.Geometry{NumSlots: 8, SlotSize: 4096}

// Payload framing on the ring: one tag byte ahead of the body.
const (
	payloadRaw     byte = 0 // unencoded TPM response (guard refusals)
	payloadEncoded byte = 1 // codec-encoded command or response
)

// Driver errors.
var (
	ErrNotConnected = errors.New("vtpm: device not connected")
	ErrHandshake    = errors.New("vtpm: device handshake failed")
)

// frontPath is the frontend's XenStore directory.
func frontPath(dom xen.DomID) string {
	return fmt.Sprintf("/local/domain/%d/device/vtpm/0", dom)
}

// backPath is the backend's XenStore directory for one frontend.
func backPath(dom xen.DomID) string {
	return fmt.Sprintf("/local/domain/0/backend/vtpm/%d/0", dom)
}

// Frontend is the guest half of the vTPM split driver. It implements
// tpm.Transport, so a tpm.Client can sit directly on top of it.
type Frontend struct {
	hv        *xen.Hypervisor
	xs        *xenstore.Store
	dom       *xen.Domain
	codec     GuestCodec
	appendEnc AppendRequestEncoder  // non-nil when codec supports append encoding
	respDec   AppendResponseDecoder // non-nil when codec supports append decoding
	seqEnc    SeqCodec              // non-nil when codec supports pipelined sequencing
	cfg       FrontendConfig
	pipe      *pipeline // non-nil when cfg.PipelineDepth > 1

	mu     sync.Mutex
	r      *ring.Ring
	port   xen.EvtchnPort
	closed bool
	txBuf  []byte // reusable framed-request buffer (guarded by mu)
	rxBuf  []byte // reusable response-dequeue buffer (guarded by mu)
}

// NewFrontend prepares a lockstep frontend for a guest. codec is the channel
// codec installed by the domain builder.
func NewFrontend(hv *xen.Hypervisor, xs *xenstore.Store, dom *xen.Domain, codec GuestCodec) *Frontend {
	return NewFrontendCfg(hv, xs, dom, codec, FrontendConfig{})
}

// NewFrontendCfg is NewFrontend with explicit transport configuration.
func NewFrontendCfg(hv *xen.Hypervisor, xs *xenstore.Store, dom *xen.Domain, codec GuestCodec, cfg FrontendConfig) *Frontend {
	ae, _ := codec.(AppendRequestEncoder)
	rd, _ := codec.(AppendResponseDecoder)
	se, _ := codec.(SeqCodec)
	if cfg.PipelineDepth > int(deviceRingGeometry.NumSlots) {
		cfg.PipelineDepth = int(deviceRingGeometry.NumSlots)
	}
	f := &Frontend{hv: hv, xs: xs, dom: dom, codec: codec, appendEnc: ae, respDec: rd, seqEnc: se, cfg: cfg}
	if cfg.PipelineDepth > 1 {
		f.pipe = newPipeline(cfg.PipelineDepth)
	}
	return f
}

// Setup allocates the ring in guest memory, grants it to dom0, allocates the
// event channel and publishes the connection parameters in XenStore, leaving
// the device in state Initialised for the backend to pick up.
func (f *Frontend) Setup() error {
	pages := (deviceRingGeometry.RegionSize() + xen.PageSize - 1) / xen.PageSize
	first, err := f.dom.AllocPages(pages)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrHandshake, err)
	}
	region, err := f.dom.PageRun(first, pages)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrHandshake, err)
	}
	r, err := ring.Init(region, deviceRingGeometry, f.dom.MemBus())
	if err != nil {
		return fmt.Errorf("%w: %v", ErrHandshake, err)
	}
	refs, err := f.dom.GrantRun(xen.Dom0, first, pages, false)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrHandshake, err)
	}
	port := f.hv.EventChannels().AllocUnbound(f.dom.ID(), xen.Dom0)
	f.mu.Lock()
	f.r = r
	f.port = port
	f.mu.Unlock()

	dir := frontPath(f.dom.ID())
	err = f.xs.WithTxn(f.dom.ID(), 8, func(id xenstore.TxnID) error {
		if err := f.xs.Write(f.dom.ID(), id, dir+"/ring-ref-count", []byte(strconv.Itoa(len(refs)))); err != nil {
			return err
		}
		for i, ref := range refs {
			key := fmt.Sprintf("%s/ring-ref-%d", dir, i)
			if err := f.xs.Write(f.dom.ID(), id, key, []byte(strconv.FormatUint(uint64(ref), 10))); err != nil {
				return err
			}
		}
		if err := f.xs.Write(f.dom.ID(), id, dir+"/event-channel", []byte(strconv.FormatUint(uint64(port), 10))); err != nil {
			return err
		}
		return f.xs.Write(f.dom.ID(), id, dir+"/state", []byte(strconv.Itoa(XenbusInitialised)))
	})
	if err != nil {
		return fmt.Errorf("%w: publishing device keys: %v", ErrHandshake, err)
	}
	return nil
}

// WaitConnected blocks until the backend reports state Connected.
func (f *Frontend) WaitConnected() error {
	statePath := backPath(f.dom.ID()) + "/state"
	w, err := f.xs.Watch(f.dom.ID(), statePath)
	if err != nil {
		return err
	}
	defer f.xs.Unwatch(w)
	for range w.Events() {
		v, err := f.xs.Read(f.dom.ID(), xenstore.NoTxn, statePath)
		if err != nil {
			continue // backend directory not written yet
		}
		st, _ := strconv.Atoi(string(v))
		switch st {
		case XenbusConnected:
			return nil
		case XenbusClosing, XenbusClosed:
			return ErrHandshake
		}
	}
	return ErrHandshake
}

// Transmit implements tpm.Transport: encode, enqueue, kick the backend, and
// block for the response. With PipelineDepth <= 1 one command is in flight at
// a time per frontend, matching the /dev/tpm0 semantics guests see; larger
// depths route through the pipelined pending table. The returned slice is
// caller-owned: concurrent users of one client keep reading their response
// while the next command is already overwriting the frontend's scratch
// buffers, so the decode step lands in a fresh allocation.
func (f *Frontend) Transmit(cmd []byte) ([]byte, error) {
	if f.pipe != nil {
		return f.transmitPipelined(cmd)
	}
	var start time.Time
	tm := f.cfg.Metrics
	if tm != nil {
		start = time.Now()
	}
	f.mu.Lock()
	resp, err := f.transmitLocked(cmd)
	f.mu.Unlock()
	if err == nil && tm != nil {
		tm.GuestRTT.Record(time.Since(start))
	}
	return resp, err
}

// transmitLocked is the lockstep transmit path, under f.mu.
func (f *Frontend) transmitLocked(cmd []byte) ([]byte, error) {
	if f.r == nil || f.closed {
		return nil, ErrNotConnected
	}
	// Build the framed request in the reusable transmit buffer with the tag
	// byte reserved up front, so the encoder writes straight behind it and
	// no prefix copy is needed. EnqueueRequest copies the payload into the
	// ring slot, so reusing the buffer on the next command is safe.
	f.txBuf = append(f.txBuf[:0], payloadEncoded)
	if f.appendEnc != nil {
		buf, err := f.appendEnc.EncodeRequestAppend(f.txBuf, cmd)
		if err != nil {
			return nil, err
		}
		f.txBuf = buf
	} else {
		enc, err := f.codec.EncodeRequest(cmd)
		if err != nil {
			return nil, err
		}
		f.txBuf = append(f.txBuf, enc...)
	}
	id, err := f.r.EnqueueRequest(f.txBuf)
	if err != nil {
		return nil, err
	}
	// Skip the doorbell when the backend is already draining (it will pick
	// the request up in its final ring check before sleeping).
	if f.r.RequestNotifyWanted() {
		if err := f.hv.EventChannels().Notify(f.dom.ID(), f.port); err != nil {
			return nil, err
		}
	} else {
		f.hv.EventChannels().NoteSuppressed()
	}
	for spin := 0; ; spin++ {
		rid, rp, ok, err := f.r.TryDequeueResponseInto(f.rxBuf[:0])
		if err != nil {
			return nil, err
		}
		if !ok {
			// The backend usually answers within microseconds: re-poll a
			// bounded number of times before paying for a timed sleep.
			if spin < pipeSpinPolls {
				runtime.Gosched()
				continue
			}
			werr := f.hv.EventChannels().WaitTimeout(f.dom.ID(), f.port, driverWaitPoll)
			if werr != nil && !errors.Is(werr, xen.ErrWaitTimeout) {
				return nil, werr
			}
			spin = 0
			continue
		}
		f.rxBuf = rp
		if rid != id {
			return nil, fmt.Errorf("vtpm: response id %d for request %d", rid, id)
		}
		if len(rp) == 0 {
			return nil, ErrShortPayload
		}
		switch rp[0] {
		case payloadRaw:
			return append([]byte(nil), rp[1:]...), nil
		case payloadEncoded:
			if f.respDec != nil {
				return f.respDec.DecodeResponseAppend(nil, rp[1:])
			}
			return f.codec.DecodeResponse(rp[1:])
		default:
			return nil, fmt.Errorf("vtpm: unknown response framing %d", rp[0])
		}
	}
}

// Close tears the frontend down.
func (f *Frontend) Close() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return
	}
	f.closed = true
	if f.r != nil {
		f.r.Close()
	}
	f.hv.EventChannels().Close(f.dom.ID(), f.port) //nolint:errcheck // teardown
}

// backendDevice is the dom0 half of one connected vTPM device.
type backendDevice struct {
	front   xen.DomID
	launch  xen.LaunchDigest
	mapping *xen.GrantMapping
	r       *ring.Ring
	port    xen.EvtchnPort
	done    chan struct{}
}

// Backend runs the dom0 side of every vTPM device on one host, dispatching
// ring commands into the Manager (and therefore through the Guard).
type Backend struct {
	hv  *xen.Hypervisor
	xs  *xenstore.Store
	mgr *Manager

	// transport, when non-nil, receives per-drain batch sizes. Set it with
	// SetTransportMetrics before the first AttachDevice.
	transport *TransportMetrics

	mu      sync.Mutex
	devices map[xen.DomID]*backendDevice
}

// NewBackend creates the host's vTPM backend.
func NewBackend(hv *xen.Hypervisor, xs *xenstore.Store, mgr *Manager) *Backend {
	return &Backend{hv: hv, xs: xs, mgr: mgr, devices: make(map[xen.DomID]*backendDevice)}
}

// SetTransportMetrics installs the host's transport instruments (ring batch
// sizes per backend drain). Call before the first AttachDevice — service
// loops read the pointer without locking.
func (b *Backend) SetTransportMetrics(tm *TransportMetrics) { b.transport = tm }

// readInt reads a decimal XenStore value.
func (b *Backend) readInt(path string) (uint64, error) {
	v, err := b.xs.Read(xen.Dom0, xenstore.NoTxn, path)
	if err != nil {
		return 0, err
	}
	return strconv.ParseUint(string(v), 10, 64)
}

// AttachDevice completes the handshake with a frontend that has reached
// state Initialised: map the ring, bind the event channel, start the service
// loop and report Connected.
func (b *Backend) AttachDevice(front xen.DomID) error {
	dom, err := b.hv.Domain(front)
	if err != nil {
		return err
	}
	if _, ok := b.mgr.InstanceForDomain(front); !ok {
		return fmt.Errorf("%w: dom%d has no bound vTPM instance", ErrNoInstance, front)
	}
	dir := frontPath(front)
	st, err := b.readInt(dir + "/state")
	if err != nil || st != XenbusInitialised {
		return fmt.Errorf("%w: frontend state %d (%v)", ErrHandshake, st, err)
	}
	nRefs, err := b.readInt(dir + "/ring-ref-count")
	if err != nil {
		return fmt.Errorf("%w: %v", ErrHandshake, err)
	}
	refs := make([]xen.GrantRef, 0, nRefs)
	for i := uint64(0); i < nRefs; i++ {
		v, err := b.readInt(fmt.Sprintf("%s/ring-ref-%d", dir, i))
		if err != nil {
			return fmt.Errorf("%w: %v", ErrHandshake, err)
		}
		refs = append(refs, xen.GrantRef(v))
	}
	frontPort, err := b.readInt(dir + "/event-channel")
	if err != nil {
		return fmt.Errorf("%w: %v", ErrHandshake, err)
	}
	mapping, err := b.hv.MapGrantRun(xen.Dom0, front, refs)
	if err != nil {
		return fmt.Errorf("%w: mapping ring: %v", ErrHandshake, err)
	}
	r, err := ring.Attach(mapping.Bytes())
	if err != nil {
		mapping.Unmap()
		return fmt.Errorf("%w: %v", ErrHandshake, err)
	}
	port, err := b.hv.EventChannels().BindInterdomain(xen.Dom0, front, xen.EvtchnPort(frontPort))
	if err != nil {
		mapping.Unmap()
		return fmt.Errorf("%w: binding event channel: %v", ErrHandshake, err)
	}
	dev := &backendDevice{
		front:   front,
		launch:  dom.Launch(),
		mapping: mapping,
		r:       r,
		port:    port,
		done:    make(chan struct{}),
	}
	b.mu.Lock()
	b.devices[front] = dev
	b.mu.Unlock()
	go b.serve(dev)
	if err := b.xs.Write(xen.Dom0, xenstore.NoTxn, backPath(front)+"/state",
		[]byte(strconv.Itoa(XenbusConnected))); err != nil {
		return err
	}
	return nil
}

// serve is the per-device service loop, batched: each wakeup drains every
// pending request off the ring in one pass, dispatches them in order, and
// publishes the responses as one batch with (at most) one doorbell — the
// classic Xen RING_FINAL_CHECK shape. While draining, the backend clears the
// ring's request-notify flag so frontends coalesce their doorbells; before
// sleeping it re-raises the flag and checks the ring once more, so a request
// published into the gap is picked up instead of stalling until the poll
// timeout. Both batches reuse per-device scratch buffers, so a steady stream
// serves without allocating beyond dispatch itself.
func (b *Backend) serve(dev *backendDevice) {
	defer close(dev.done)
	ec := b.hv.EventChannels()
	var req, rsp ring.Batch
	for {
		dev.r.SetRequestNotify(false)
		// Hot phase: drain and dispatch until the ring stays empty through
		// the bounded re-poll window (the next request usually lands within
		// microseconds of the last, so yielding beats sleeping).
		for spin := 0; spin <= pipeSpinPolls; spin++ {
			n, err := dev.r.DequeueRequestBatchInto(&req, 0)
			if err != nil {
				return // ring closed
			}
			if n > 0 {
				if err := b.serveBatch(dev, &req, &rsp, n); err != nil {
					return
				}
				spin = 0
				continue
			}
			runtime.Gosched()
		}
		// Going idle: re-enable doorbells, then run the final check before
		// sleeping so a request published into the gap is never lost.
		dev.r.SetRequestNotify(true)
		n, err := dev.r.DequeueRequestBatchInto(&req, 0)
		if err != nil {
			return
		}
		if n > 0 {
			if err := b.serveBatch(dev, &req, &rsp, n); err != nil {
				return
			}
			continue
		}
		if werr := ec.WaitTimeout(xen.Dom0, dev.port, driverWaitPoll); werr != nil &&
			!errors.Is(werr, xen.ErrWaitTimeout) {
			return
		}
	}
}

// serveBatch dispatches one drained request batch and publishes the response
// batch, kicking the frontend once — and only if its notify flag asks for it.
func (b *Backend) serveBatch(dev *backendDevice, req, rsp *ring.Batch, n int) error {
	if tm := b.transport; tm != nil {
		tm.RingBatch.Record(time.Duration(n))
	}
	rsp.Reset()
	for i := 0; i < n; i++ {
		id, payload := req.Frame(i)
		rsp.Commit(id, b.handleAppend(dev, rsp.Take(), payload))
	}
	if err := dev.r.EnqueueResponseBatch(rsp); err != nil {
		return err
	}
	ec := b.hv.EventChannels()
	if dev.r.ResponseNotifyWanted() {
		ec.Notify(xen.Dom0, dev.port) //nolint:errcheck // frontend may be tearing down
	} else {
		ec.NoteSuppressed()
	}
	return nil
}

// handleAppend runs one ring payload through the manager and appends the
// framed response to dst (a batch scratch buffer), returning the extension.
func (b *Backend) handleAppend(dev *backendDevice, dst, payload []byte) []byte {
	if len(payload) < 1 || payload[0] != payloadEncoded {
		return append(append(dst, payloadRaw), tpm.ErrorResponse(RCGuardChannel)...)
	}
	out, err := b.mgr.Dispatch(dev.front, dev.launch, payload[1:])
	if err != nil {
		code := RCGuardDenied
		switch {
		case errors.Is(err, ErrBadChannel), errors.Is(err, ErrReplay):
			code = RCGuardChannel
		case errors.Is(err, ErrThrottled):
			code = RCGuardThrottled
		case errors.Is(err, ErrQuarantined), errors.Is(err, ErrInstancePanic):
			code = RCInstanceFailed
		case errors.Is(err, ErrFenced):
			// Fence rejections happen before guard and engine run, so the
			// guest may safely re-issue the command at the new owner.
			code = RCInstanceMoved
		}
		return append(append(dst, payloadRaw), tpm.ErrorResponse(code)...)
	}
	return append(append(dst, payloadEncoded), out...)
}

// WatchAndServe runs the backend event-driven, as real backend drivers do:
// it watches the XenStore frontend area and attaches any device that
// reaches state Initialised with a bound instance. It returns when stop is
// closed. Attach failures for individual devices are reported through
// onError (nil to ignore) and do not stop the loop.
func (b *Backend) WatchAndServe(stop <-chan struct{}, onError func(front xen.DomID, err error)) error {
	w, err := b.xs.Watch(xen.Dom0, "/local/domain")
	if err != nil {
		return err
	}
	defer b.xs.Unwatch(w)
	tryAttach := func(front xen.DomID) {
		if b.Connected(front) {
			return
		}
		st, err := b.readInt(frontPath(front) + "/state")
		if err != nil || st != XenbusInitialised {
			return
		}
		if _, ok := b.mgr.InstanceForDomain(front); !ok {
			return
		}
		if err := b.AttachDevice(front); err != nil && onError != nil {
			onError(front, err)
		}
	}
	scanAll := func() {
		doms, err := b.xs.List(xen.Dom0, xenstore.NoTxn, "/local/domain")
		if err != nil {
			return
		}
		for _, name := range doms {
			id, err := strconv.ParseUint(name, 10, 32)
			if err != nil || xen.DomID(id) == xen.Dom0 {
				continue
			}
			tryAttach(xen.DomID(id))
		}
	}
	for {
		select {
		case <-stop:
			return nil
		case _, ok := <-w.Events():
			if !ok {
				return nil
			}
			// Coalescing watches carry no reliable payload mapping; rescan.
			scanAll()
		}
	}
}

// DetachDevice tears down one device: close the ring (stopping the service
// loop), unmap the grant, close the channel and mark the backend Closed.
func (b *Backend) DetachDevice(front xen.DomID) error {
	b.mu.Lock()
	dev, ok := b.devices[front]
	if ok {
		delete(b.devices, front)
	}
	b.mu.Unlock()
	if !ok {
		return ErrNotConnected
	}
	dev.r.Close()
	b.hv.EventChannels().Close(xen.Dom0, dev.port) //nolint:errcheck // teardown
	<-dev.done
	dev.mapping.Unmap()
	return b.xs.Write(xen.Dom0, xenstore.NoTxn, backPath(front)+"/state",
		[]byte(strconv.Itoa(XenbusClosed)))
}

// Connected reports whether a frontend domain has a live backend device.
func (b *Backend) Connected(front xen.DomID) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	_, ok := b.devices[front]
	return ok
}

// DeviceStats is one connected device's ring-traffic digest.
type DeviceStats struct {
	Front xen.DomID
	Ring  ring.Stats
}

// DeviceStatsAll snapshots the ring counters of every connected device,
// sorted by frontend domain (for /debug introspection and vtpmctl top).
func (b *Backend) DeviceStatsAll() []DeviceStats {
	b.mu.Lock()
	out := make([]DeviceStats, 0, len(b.devices))
	for front, dev := range b.devices {
		out = append(out, DeviceStats{Front: front, Ring: dev.r.Stats()})
	}
	b.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Front < out[j].Front })
	return out
}
