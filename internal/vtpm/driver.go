package vtpm

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"xvtpm/internal/ring"
	"xvtpm/internal/tpm"
	"xvtpm/internal/xen"
	"xvtpm/internal/xenstore"
)

// XenBus device states, as on real Xen.
const (
	XenbusInitialising = 1
	XenbusInitWait     = 2
	XenbusInitialised  = 3
	XenbusConnected    = 4
	XenbusClosing      = 5
	XenbusClosed       = 6
)

// Guard-refusal return codes delivered to the guest as TPM error responses.
const (
	RCGuardDenied    uint32 = 0x00000F01 // policy refused the ordinal
	RCGuardChannel   uint32 = 0x00000F02 // channel authentication/replay failure
	RCGuardThrottled uint32 = 0x00000F03 // instance over its command rate limit
	RCInstanceFailed uint32 = 0x00000F04 // instance quarantined after persistence failure
)

// driverWaitPoll is how long the split-driver service loops block on the
// event channel before re-polling the ring. On real hardware a lost
// interrupt stalls the device until the next one; here a bounded wait turns
// a dropped notification (see xen.EventChannels.SetNotifyFault) into a short
// delay instead of a deadlock.
const driverWaitPoll = 2 * time.Millisecond

// Ring geometry of the vTPM device: 8 in-flight slots of 4 KiB, sized for
// the largest key blobs the engine emits.
var deviceRingGeometry = ring.Geometry{NumSlots: 8, SlotSize: 4096}

// Payload framing on the ring: one tag byte ahead of the body.
const (
	payloadRaw     byte = 0 // unencoded TPM response (guard refusals)
	payloadEncoded byte = 1 // codec-encoded command or response
)

// Driver errors.
var (
	ErrNotConnected = errors.New("vtpm: device not connected")
	ErrHandshake    = errors.New("vtpm: device handshake failed")
)

// frontPath is the frontend's XenStore directory.
func frontPath(dom xen.DomID) string {
	return fmt.Sprintf("/local/domain/%d/device/vtpm/0", dom)
}

// backPath is the backend's XenStore directory for one frontend.
func backPath(dom xen.DomID) string {
	return fmt.Sprintf("/local/domain/0/backend/vtpm/%d/0", dom)
}

// Frontend is the guest half of the vTPM split driver. It implements
// tpm.Transport, so a tpm.Client can sit directly on top of it.
type Frontend struct {
	hv        *xen.Hypervisor
	xs        *xenstore.Store
	dom       *xen.Domain
	codec     GuestCodec
	appendEnc AppendRequestEncoder // non-nil when codec supports append encoding

	mu     sync.Mutex
	r      *ring.Ring
	port   xen.EvtchnPort
	closed bool
	txBuf  []byte // reusable framed-request buffer (guarded by mu)
}

// NewFrontend prepares a frontend for a guest. codec is the channel codec
// installed by the domain builder.
func NewFrontend(hv *xen.Hypervisor, xs *xenstore.Store, dom *xen.Domain, codec GuestCodec) *Frontend {
	ae, _ := codec.(AppendRequestEncoder)
	return &Frontend{hv: hv, xs: xs, dom: dom, codec: codec, appendEnc: ae}
}

// Setup allocates the ring in guest memory, grants it to dom0, allocates the
// event channel and publishes the connection parameters in XenStore, leaving
// the device in state Initialised for the backend to pick up.
func (f *Frontend) Setup() error {
	pages := (deviceRingGeometry.RegionSize() + xen.PageSize - 1) / xen.PageSize
	first, err := f.dom.AllocPages(pages)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrHandshake, err)
	}
	region, err := f.dom.PageRun(first, pages)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrHandshake, err)
	}
	r, err := ring.Init(region, deviceRingGeometry, f.dom.MemBus())
	if err != nil {
		return fmt.Errorf("%w: %v", ErrHandshake, err)
	}
	refs, err := f.dom.GrantRun(xen.Dom0, first, pages, false)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrHandshake, err)
	}
	port := f.hv.EventChannels().AllocUnbound(f.dom.ID(), xen.Dom0)
	f.mu.Lock()
	f.r = r
	f.port = port
	f.mu.Unlock()

	dir := frontPath(f.dom.ID())
	err = f.xs.WithTxn(f.dom.ID(), 8, func(id xenstore.TxnID) error {
		if err := f.xs.Write(f.dom.ID(), id, dir+"/ring-ref-count", []byte(strconv.Itoa(len(refs)))); err != nil {
			return err
		}
		for i, ref := range refs {
			key := fmt.Sprintf("%s/ring-ref-%d", dir, i)
			if err := f.xs.Write(f.dom.ID(), id, key, []byte(strconv.FormatUint(uint64(ref), 10))); err != nil {
				return err
			}
		}
		if err := f.xs.Write(f.dom.ID(), id, dir+"/event-channel", []byte(strconv.FormatUint(uint64(port), 10))); err != nil {
			return err
		}
		return f.xs.Write(f.dom.ID(), id, dir+"/state", []byte(strconv.Itoa(XenbusInitialised)))
	})
	if err != nil {
		return fmt.Errorf("%w: publishing device keys: %v", ErrHandshake, err)
	}
	return nil
}

// WaitConnected blocks until the backend reports state Connected.
func (f *Frontend) WaitConnected() error {
	statePath := backPath(f.dom.ID()) + "/state"
	w, err := f.xs.Watch(f.dom.ID(), statePath)
	if err != nil {
		return err
	}
	defer f.xs.Unwatch(w)
	for range w.Events() {
		v, err := f.xs.Read(f.dom.ID(), xenstore.NoTxn, statePath)
		if err != nil {
			continue // backend directory not written yet
		}
		st, _ := strconv.Atoi(string(v))
		switch st {
		case XenbusConnected:
			return nil
		case XenbusClosing, XenbusClosed:
			return ErrHandshake
		}
	}
	return ErrHandshake
}

// Transmit implements tpm.Transport: encode, enqueue, kick the backend, and
// block for the response. One command is in flight at a time per frontend,
// matching the /dev/tpm0 semantics guests see.
func (f *Frontend) Transmit(cmd []byte) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.r == nil || f.closed {
		return nil, ErrNotConnected
	}
	// Build the framed request in the reusable transmit buffer with the tag
	// byte reserved up front, so the encoder writes straight behind it and
	// no prefix copy is needed. EnqueueRequest copies the payload into the
	// ring slot, so reusing the buffer on the next command is safe.
	f.txBuf = append(f.txBuf[:0], payloadEncoded)
	if f.appendEnc != nil {
		buf, err := f.appendEnc.EncodeRequestAppend(f.txBuf, cmd)
		if err != nil {
			return nil, err
		}
		f.txBuf = buf
	} else {
		enc, err := f.codec.EncodeRequest(cmd)
		if err != nil {
			return nil, err
		}
		f.txBuf = append(f.txBuf, enc...)
	}
	id, err := f.r.EnqueueRequest(f.txBuf)
	if err != nil {
		return nil, err
	}
	if err := f.hv.EventChannels().Notify(f.dom.ID(), f.port); err != nil {
		return nil, err
	}
	for {
		rid, rp, ok, err := f.r.TryDequeueResponse()
		if err != nil {
			return nil, err
		}
		if !ok {
			err := f.hv.EventChannels().WaitTimeout(f.dom.ID(), f.port, driverWaitPoll)
			if err != nil && !errors.Is(err, xen.ErrWaitTimeout) {
				return nil, err
			}
			continue
		}
		if rid != id {
			return nil, fmt.Errorf("vtpm: response id %d for request %d", rid, id)
		}
		if len(rp) == 0 {
			return nil, ErrShortPayload
		}
		switch rp[0] {
		case payloadRaw:
			return rp[1:], nil
		case payloadEncoded:
			return f.codec.DecodeResponse(rp[1:])
		default:
			return nil, fmt.Errorf("vtpm: unknown response framing %d", rp[0])
		}
	}
}

// Close tears the frontend down.
func (f *Frontend) Close() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return
	}
	f.closed = true
	if f.r != nil {
		f.r.Close()
	}
	f.hv.EventChannels().Close(f.dom.ID(), f.port) //nolint:errcheck // teardown
}

// backendDevice is the dom0 half of one connected vTPM device.
type backendDevice struct {
	front   xen.DomID
	launch  xen.LaunchDigest
	mapping *xen.GrantMapping
	r       *ring.Ring
	port    xen.EvtchnPort
	done    chan struct{}
}

// Backend runs the dom0 side of every vTPM device on one host, dispatching
// ring commands into the Manager (and therefore through the Guard).
type Backend struct {
	hv  *xen.Hypervisor
	xs  *xenstore.Store
	mgr *Manager

	mu      sync.Mutex
	devices map[xen.DomID]*backendDevice
}

// NewBackend creates the host's vTPM backend.
func NewBackend(hv *xen.Hypervisor, xs *xenstore.Store, mgr *Manager) *Backend {
	return &Backend{hv: hv, xs: xs, mgr: mgr, devices: make(map[xen.DomID]*backendDevice)}
}

// readInt reads a decimal XenStore value.
func (b *Backend) readInt(path string) (uint64, error) {
	v, err := b.xs.Read(xen.Dom0, xenstore.NoTxn, path)
	if err != nil {
		return 0, err
	}
	return strconv.ParseUint(string(v), 10, 64)
}

// AttachDevice completes the handshake with a frontend that has reached
// state Initialised: map the ring, bind the event channel, start the service
// loop and report Connected.
func (b *Backend) AttachDevice(front xen.DomID) error {
	dom, err := b.hv.Domain(front)
	if err != nil {
		return err
	}
	if _, ok := b.mgr.InstanceForDomain(front); !ok {
		return fmt.Errorf("%w: dom%d has no bound vTPM instance", ErrNoInstance, front)
	}
	dir := frontPath(front)
	st, err := b.readInt(dir + "/state")
	if err != nil || st != XenbusInitialised {
		return fmt.Errorf("%w: frontend state %d (%v)", ErrHandshake, st, err)
	}
	nRefs, err := b.readInt(dir + "/ring-ref-count")
	if err != nil {
		return fmt.Errorf("%w: %v", ErrHandshake, err)
	}
	refs := make([]xen.GrantRef, 0, nRefs)
	for i := uint64(0); i < nRefs; i++ {
		v, err := b.readInt(fmt.Sprintf("%s/ring-ref-%d", dir, i))
		if err != nil {
			return fmt.Errorf("%w: %v", ErrHandshake, err)
		}
		refs = append(refs, xen.GrantRef(v))
	}
	frontPort, err := b.readInt(dir + "/event-channel")
	if err != nil {
		return fmt.Errorf("%w: %v", ErrHandshake, err)
	}
	mapping, err := b.hv.MapGrantRun(xen.Dom0, front, refs)
	if err != nil {
		return fmt.Errorf("%w: mapping ring: %v", ErrHandshake, err)
	}
	r, err := ring.Attach(mapping.Bytes())
	if err != nil {
		mapping.Unmap()
		return fmt.Errorf("%w: %v", ErrHandshake, err)
	}
	port, err := b.hv.EventChannels().BindInterdomain(xen.Dom0, front, xen.EvtchnPort(frontPort))
	if err != nil {
		mapping.Unmap()
		return fmt.Errorf("%w: binding event channel: %v", ErrHandshake, err)
	}
	dev := &backendDevice{
		front:   front,
		launch:  dom.Launch(),
		mapping: mapping,
		r:       r,
		port:    port,
		done:    make(chan struct{}),
	}
	b.mu.Lock()
	b.devices[front] = dev
	b.mu.Unlock()
	go b.serve(dev)
	if err := b.xs.Write(xen.Dom0, xenstore.NoTxn, backPath(front)+"/state",
		[]byte(strconv.Itoa(XenbusConnected))); err != nil {
		return err
	}
	return nil
}

// serve is the per-device service loop. Requests pop into a per-device
// scratch buffer, so a steady stream dequeues without allocating; the
// payload is consumed synchronously by handle before the next pop reuses it.
func (b *Backend) serve(dev *backendDevice) {
	defer close(dev.done)
	ec := b.hv.EventChannels()
	var reqBuf []byte
	for {
		id, payload, ok, err := dev.r.TryDequeueRequestInto(reqBuf[:0])
		if err != nil {
			return // ring closed
		}
		if ok {
			reqBuf = payload
		}
		if !ok {
			if err := ec.WaitTimeout(xen.Dom0, dev.port, driverWaitPoll); err != nil &&
				!errors.Is(err, xen.ErrWaitTimeout) {
				return
			}
			continue
		}
		resp := b.handle(dev, payload)
		if err := dev.r.EnqueueResponse(id, resp); err != nil {
			return
		}
		ec.Notify(xen.Dom0, dev.port) //nolint:errcheck // frontend may be tearing down
	}
}

// handle runs one ring payload through the manager and frames the response.
func (b *Backend) handle(dev *backendDevice, payload []byte) []byte {
	if len(payload) < 1 || payload[0] != payloadEncoded {
		return append([]byte{payloadRaw}, tpm.ErrorResponse(RCGuardChannel)...)
	}
	out, err := b.mgr.Dispatch(dev.front, dev.launch, payload[1:])
	if err != nil {
		code := RCGuardDenied
		switch {
		case errors.Is(err, ErrBadChannel), errors.Is(err, ErrReplay):
			code = RCGuardChannel
		case errors.Is(err, ErrThrottled):
			code = RCGuardThrottled
		case errors.Is(err, ErrQuarantined), errors.Is(err, ErrInstancePanic):
			code = RCInstanceFailed
		}
		return append([]byte{payloadRaw}, tpm.ErrorResponse(code)...)
	}
	return append([]byte{payloadEncoded}, out...)
}

// WatchAndServe runs the backend event-driven, as real backend drivers do:
// it watches the XenStore frontend area and attaches any device that
// reaches state Initialised with a bound instance. It returns when stop is
// closed. Attach failures for individual devices are reported through
// onError (nil to ignore) and do not stop the loop.
func (b *Backend) WatchAndServe(stop <-chan struct{}, onError func(front xen.DomID, err error)) error {
	w, err := b.xs.Watch(xen.Dom0, "/local/domain")
	if err != nil {
		return err
	}
	defer b.xs.Unwatch(w)
	tryAttach := func(front xen.DomID) {
		if b.Connected(front) {
			return
		}
		st, err := b.readInt(frontPath(front) + "/state")
		if err != nil || st != XenbusInitialised {
			return
		}
		if _, ok := b.mgr.InstanceForDomain(front); !ok {
			return
		}
		if err := b.AttachDevice(front); err != nil && onError != nil {
			onError(front, err)
		}
	}
	scanAll := func() {
		doms, err := b.xs.List(xen.Dom0, xenstore.NoTxn, "/local/domain")
		if err != nil {
			return
		}
		for _, name := range doms {
			id, err := strconv.ParseUint(name, 10, 32)
			if err != nil || xen.DomID(id) == xen.Dom0 {
				continue
			}
			tryAttach(xen.DomID(id))
		}
	}
	for {
		select {
		case <-stop:
			return nil
		case _, ok := <-w.Events():
			if !ok {
				return nil
			}
			// Coalescing watches carry no reliable payload mapping; rescan.
			scanAll()
		}
	}
}

// DetachDevice tears down one device: close the ring (stopping the service
// loop), unmap the grant, close the channel and mark the backend Closed.
func (b *Backend) DetachDevice(front xen.DomID) error {
	b.mu.Lock()
	dev, ok := b.devices[front]
	if ok {
		delete(b.devices, front)
	}
	b.mu.Unlock()
	if !ok {
		return ErrNotConnected
	}
	dev.r.Close()
	b.hv.EventChannels().Close(xen.Dom0, dev.port) //nolint:errcheck // teardown
	<-dev.done
	dev.mapping.Unmap()
	return b.xs.Write(xen.Dom0, xenstore.NoTxn, backPath(front)+"/state",
		[]byte(strconv.Itoa(XenbusClosed)))
}

// Connected reports whether a frontend domain has a live backend device.
func (b *Backend) Connected(front xen.DomID) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	_, ok := b.devices[front]
	return ok
}

// DeviceStats is one connected device's ring-traffic digest.
type DeviceStats struct {
	Front xen.DomID
	Ring  ring.Stats
}

// DeviceStatsAll snapshots the ring counters of every connected device,
// sorted by frontend domain (for /debug introspection and vtpmctl top).
func (b *Backend) DeviceStatsAll() []DeviceStats {
	b.mu.Lock()
	out := make([]DeviceStats, 0, len(b.devices))
	for front, dev := range b.devices {
		out = append(out, DeviceStats{Front: front, Ring: dev.r.Stats()})
	}
	b.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Front < out[j].Front })
	return out
}
