package vtpm

import (
	"encoding/json"
	"net/http"
	"strconv"

	"xvtpm/internal/faults"
	"xvtpm/internal/metrics"
	"xvtpm/internal/store/logstore"
	"xvtpm/internal/trace"
)

// Runtime introspection: the JSON report behind the host daemon's
// /debug/vtpm endpoint and vtpmctl's `top`. Everything here is a read-only
// snapshot assembled from the same instruments the dispatch path feeds
// (observe.go); building a report takes registry read locks and per-instance
// leaf locks only, so it is safe to hit on a live, loaded manager.

// DebugInstance is one instance's row in a DebugReport.
type DebugInstance struct {
	ID            InstanceID               `json:"id"`
	Profile       string                   `json:"profile"`
	BoundDom      uint32                   `json:"bound_dom"`
	Health        string                   `json:"health"`
	Dispatches    uint64                   `json:"dispatches"`
	Failures      uint64                   `json:"failures"`
	PendingDirty  uint64                   `json:"pending_dirty"`
	Latency       metrics.HistogramSummary `json:"latency"`
	SpansRecorded uint64                   `json:"spans_recorded"`
	Spans         []trace.Span             `json:"spans,omitempty"`
}

// StoreDebug is the persistence-backend section of a DebugReport, present
// when the manager writes through the log-structured store (possibly under
// fault-injection wrappers).
type StoreDebug struct {
	Backend            string  `json:"backend"`
	Segments           int     `json:"segments"`
	Commits            uint64  `json:"commits"`
	CoalesceRatio      float64 `json:"coalesce_ratio"`
	BytesAppended      uint64  `json:"bytes_appended"`
	BytesLive          uint64  `json:"bytes_live"`
	BytesOnDisk        uint64  `json:"bytes_on_disk"`
	CompactionDebt     uint64  `json:"compaction_debt"`
	Compactions        uint64  `json:"compactions"`
	WriteAmplification float64 `json:"write_amplification"`
}

// DebugReport is the full /debug/vtpm document.
type DebugReport struct {
	Dispatch   DispatchStats    `json:"dispatch"`
	Checkpoint CheckpointStats  `json:"checkpoint"`
	Sign       *SignDebug       `json:"sign,omitempty"`
	Store      *StoreDebug      `json:"store,omitempty"`
	Health     []InstanceHealth `json:"health"`
	Instances  []DebugInstance  `json:"instances"`
}

// UnwrapLogStore digs through wrapper stores (anything exposing the
// faults.Store-shaped Inner accessor) to the log-structured backend, if one
// is at the bottom of the stack.
func UnwrapLogStore(s Store) (*logstore.Store, bool) {
	var cur any = s
	for cur != nil {
		if ls, ok := cur.(*logstore.Store); ok {
			return ls, true
		}
		u, ok := cur.(interface{ Inner() faults.BlobStore })
		if !ok {
			return nil, false
		}
		cur = u.Inner()
	}
	return nil, false
}

// StoreDebug snapshots the log store's counters, or returns nil when the
// manager persists through a flat backend.
func (m *Manager) StoreDebug() *StoreDebug {
	ls, ok := UnwrapLogStore(m.store)
	if !ok {
		return nil
	}
	st := ls.Stats()
	return &StoreDebug{
		Backend:            "log",
		Segments:           st.Segments,
		Commits:            st.Commits,
		CoalesceRatio:      st.CoalesceRatio(),
		BytesAppended:      st.BytesAppended,
		BytesLive:          st.BytesLive,
		BytesOnDisk:        st.BytesOnDisk,
		CompactionDebt:     st.CompactionDebt,
		Compactions:        st.Compactions,
		WriteAmplification: st.WriteAmplification(),
	}
}

// DebugReport assembles the introspection document. withSpans additionally
// dumps each instance's recent-span ring (bounded per instance by the
// configured trace depth).
func (m *Manager) DebugReport(withSpans bool) DebugReport {
	rep := DebugReport{
		Dispatch:   m.DispatchStats(),
		Checkpoint: m.CheckpointStats(),
		Sign:       m.SignDebug(),
		Store:      m.StoreDebug(),
		Health:     m.HealthAll(),
	}
	for _, s := range m.InstanceStatsAll() {
		di := DebugInstance{
			ID:            s.ID,
			Profile:       s.Profile.String(),
			BoundDom:      uint32(s.BoundDom),
			Health:        s.Health.String(),
			Dispatches:    s.Dispatches,
			Failures:      s.Failures,
			PendingDirty:  s.PendingDirty,
			Latency:       s.Latency,
			SpansRecorded: s.SpansRecorded,
		}
		if withSpans {
			di.Spans, _ = m.Spans(s.ID)
		}
		rep.Instances = append(rep.Instances, di)
	}
	return rep
}

// DebugHandler serves DebugReport as indented JSON. Spans are included by
// default; ?spans=0 trims the document to the digests.
func (m *Manager) DebugHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		withSpans := true
		if v := r.URL.Query().Get("spans"); v != "" {
			if b, err := strconv.ParseBool(v); err == nil {
				withSpans = b
			}
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(m.DebugReport(withSpans)); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
