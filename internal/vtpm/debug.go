package vtpm

import (
	"encoding/json"
	"net/http"
	"strconv"

	"xvtpm/internal/metrics"
	"xvtpm/internal/trace"
)

// Runtime introspection: the JSON report behind the host daemon's
// /debug/vtpm endpoint and vtpmctl's `top`. Everything here is a read-only
// snapshot assembled from the same instruments the dispatch path feeds
// (observe.go); building a report takes registry read locks and per-instance
// leaf locks only, so it is safe to hit on a live, loaded manager.

// DebugInstance is one instance's row in a DebugReport.
type DebugInstance struct {
	ID            InstanceID               `json:"id"`
	Profile       string                   `json:"profile"`
	BoundDom      uint32                   `json:"bound_dom"`
	Health        string                   `json:"health"`
	Dispatches    uint64                   `json:"dispatches"`
	Failures      uint64                   `json:"failures"`
	PendingDirty  uint64                   `json:"pending_dirty"`
	Latency       metrics.HistogramSummary `json:"latency"`
	SpansRecorded uint64                   `json:"spans_recorded"`
	Spans         []trace.Span             `json:"spans,omitempty"`
}

// DebugReport is the full /debug/vtpm document.
type DebugReport struct {
	Dispatch   DispatchStats    `json:"dispatch"`
	Checkpoint CheckpointStats  `json:"checkpoint"`
	Health     []InstanceHealth `json:"health"`
	Instances  []DebugInstance  `json:"instances"`
}

// DebugReport assembles the introspection document. withSpans additionally
// dumps each instance's recent-span ring (bounded per instance by the
// configured trace depth).
func (m *Manager) DebugReport(withSpans bool) DebugReport {
	rep := DebugReport{
		Dispatch:   m.DispatchStats(),
		Checkpoint: m.CheckpointStats(),
		Health:     m.HealthAll(),
	}
	for _, s := range m.InstanceStatsAll() {
		di := DebugInstance{
			ID:            s.ID,
			Profile:       s.Profile.String(),
			BoundDom:      uint32(s.BoundDom),
			Health:        s.Health.String(),
			Dispatches:    s.Dispatches,
			Failures:      s.Failures,
			PendingDirty:  s.PendingDirty,
			Latency:       s.Latency,
			SpansRecorded: s.SpansRecorded,
		}
		if withSpans {
			di.Spans, _ = m.Spans(s.ID)
		}
		rep.Instances = append(rep.Instances, di)
	}
	return rep
}

// DebugHandler serves DebugReport as indented JSON. Spans are included by
// default; ?spans=0 trims the document to the digests.
func (m *Manager) DebugHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		withSpans := true
		if v := r.URL.Query().Get("spans"); v != "" {
			if b, err := strconv.ParseBool(v); err == nil {
				withSpans = b
			}
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(m.DebugReport(withSpans)); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
