package faults

import "sync"

// BlobStore is the store surface the wrapper injects into. It is
// structurally identical to vtpm.Store, declared here so this package stays
// free of internal imports; *Store satisfies vtpm.Store by shape.
type BlobStore interface {
	Put(name string, data []byte) error
	Get(name string) ([]byte, error)
	Delete(name string) error
	List() ([]string, error)
}

// Store wraps a BlobStore with policy-driven fault injection: transient and
// permanent errors, stalls, torn writes (a prefix lands, then the write
// errors) and short reads (truncated data, nil error). Every fault is drawn
// deterministically from the shared Injector.
type Store struct {
	inner BlobStore
	inj   *Injector

	mu sync.Mutex
	// torn counts writes that landed partially — the blobs a revive sweep
	// should find corrupt if no retry repaired them.
	torn uint64
	// short counts reads that returned truncated data.
	short uint64
}

// NewStore wraps inner with fault injection driven by inj.
func NewStore(inner BlobStore, inj *Injector) *Store {
	return &Store{inner: inner, inj: inj}
}

// Inner returns the wrapped store, for post-run verification that bypasses
// injection.
func (s *Store) Inner() BlobStore { return s.inner }

// TornWrites reports how many Put calls landed only a prefix.
func (s *Store) TornWrites() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.torn
}

// ShortReads reports how many Get calls returned truncated data.
func (s *Store) ShortReads() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.short
}

// Put implements BlobStore. A torn verdict writes the first half of data to
// the inner store and then reports a transient error: the caller believes
// the write failed cleanly, but the store now holds a damaged blob — only a
// successful retry (or an envelope check at read time) repairs it.
func (s *Store) Put(name string, data []byte) error {
	switch out := s.inj.Decide(OpPut); out {
	case OutcomeError, OutcomePermanent:
		return errFor(OpPut, out)
	case OutcomeTorn:
		s.inner.Put(name, data[:len(data)/2]) //nolint:errcheck // the tear is the point; the caller sees the error below
		s.mu.Lock()
		s.torn++
		s.mu.Unlock()
		return errFor(OpPut, out)
	}
	return s.inner.Put(name, data)
}

// Get implements BlobStore. A short verdict truncates the returned blob
// without an error — the silent-corruption case the consumer's envelope
// authentication must catch.
func (s *Store) Get(name string) ([]byte, error) {
	switch out := s.inj.Decide(OpGet); out {
	case OutcomeError, OutcomePermanent:
		return nil, errFor(OpGet, out)
	case OutcomeShort:
		b, err := s.inner.Get(name)
		if err != nil {
			return nil, err
		}
		s.mu.Lock()
		s.short++
		s.mu.Unlock()
		return b[:len(b)/2], nil
	}
	return s.inner.Get(name)
}

// Delete implements BlobStore.
func (s *Store) Delete(name string) error {
	if out := s.inj.Decide(OpDelete); out == OutcomeError || out == OutcomePermanent {
		return errFor(OpDelete, out)
	}
	return s.inner.Delete(name)
}

// List implements BlobStore.
func (s *Store) List() ([]string, error) {
	if out := s.inj.Decide(OpList); out == OutcomeError || out == OutcomePermanent {
		return nil, errFor(OpList, out)
	}
	return s.inner.List()
}
