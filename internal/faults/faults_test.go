package faults

import (
	"errors"
	"sort"
	"sync"
	"testing"
)

// memStore is a minimal BlobStore for the wrapper tests.
type memStore struct {
	mu    sync.Mutex
	blobs map[string][]byte
}

func newMemStore() *memStore { return &memStore{blobs: make(map[string][]byte)} }

func (s *memStore) Put(name string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.blobs[name] = append([]byte(nil), data...)
	return nil
}

func (s *memStore) Get(name string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.blobs[name]
	if !ok {
		return nil, errors.New("no blob")
	}
	return append([]byte(nil), b...), nil
}

func (s *memStore) Delete(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.blobs, name)
	return nil
}

func (s *memStore) List() ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.blobs))
	for n := range s.blobs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// TestClassification: the wrappers carry their class through wrapping and
// unwrap to the original error.
func TestClassification(t *testing.T) {
	base := errors.New("disk on fire")
	cases := []struct {
		err  error
		want Class
	}{
		{nil, ClassNone},
		{base, ClassTransient}, // unmarked errors default to retryable
		{Transient(base), ClassTransient},
		{Permanent(base), ClassPermanent},
		{Corrupt(base), ClassCorrupt},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.err, got, c.want)
		}
		if c.err != nil && !errors.Is(c.err, base) {
			t.Errorf("%v does not unwrap to the base error", c.err)
		}
	}
	if Transient(nil) != nil || Permanent(nil) != nil || Corrupt(nil) != nil {
		t.Error("wrapping nil must stay nil")
	}
}

// TestSameSeedSameSchedule: the acceptance-criteria property — two injectors
// with the same seed and policy produce identical verdict sequences, and a
// different seed produces a different one.
func TestSameSeedSameSchedule(t *testing.T) {
	pol := Policy{ErrorRate: 0.05, TornRate: 0.03, ShortRate: 0.03}
	draw := func(seed int64) []Outcome {
		inj := NewInjector(seed)
		inj.SetPolicy(OpPut, pol)
		inj.SetPolicy(OpGet, pol)
		out := make([]Outcome, 0, 2000)
		for i := 0; i < 1000; i++ {
			out = append(out, inj.Decide(OpPut), inj.Decide(OpGet))
		}
		return out
	}
	a, b := draw(42), draw(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at op %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := draw(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestOpStreamsIndependent: extra traffic on one Op must not shift another
// Op's schedule — each Op has its own PRNG stream.
func TestOpStreamsIndependent(t *testing.T) {
	pol := Policy{ErrorRate: 0.2}
	getOnly := NewInjector(7)
	getOnly.SetPolicy(OpGet, pol)
	mixed := NewInjector(7)
	mixed.SetPolicy(OpGet, pol)
	mixed.SetPolicy(OpPut, pol)
	for i := 0; i < 500; i++ {
		mixed.Decide(OpPut) // interleaved traffic on a different op
		a, b := getOnly.Decide(OpGet), mixed.Decide(OpGet)
		if a != b {
			t.Fatalf("get schedule shifted by put traffic at op %d: %v vs %v", i, a, b)
		}
	}
}

// TestInjectionRate: at a 5%% error rate over many ops, the injected count
// lands in a loose band around 5%% (it is a PRNG, not a quota).
func TestInjectionRate(t *testing.T) {
	inj := NewInjector(1)
	inj.SetPolicy(OpPut, Policy{ErrorRate: 0.05})
	const n = 20000
	hits := 0
	for i := 0; i < n; i++ {
		if inj.Decide(OpPut) != OutcomeOK {
			hits++
		}
	}
	rate := float64(hits) / n
	if rate < 0.03 || rate > 0.07 {
		t.Fatalf("injected rate %.3f outside [0.03, 0.07]", rate)
	}
	st := inj.Stats()[OpPut]
	if st.Ops != n || st.Injected != uint64(hits) {
		t.Fatalf("stats = %+v, want Ops=%d Injected=%d", st, n, hits)
	}
}

// TestDisabled: a disabled injector passes everything and consumes no
// decision stream, so re-enabling resumes the schedule where it paused.
func TestDisabled(t *testing.T) {
	ref := NewInjector(9)
	ref.SetPolicy(OpPut, Policy{ErrorRate: 0.5})
	inj := NewInjector(9)
	inj.SetPolicy(OpPut, Policy{ErrorRate: 0.5})
	for i := 0; i < 10; i++ {
		if ref.Decide(OpPut) != inj.Decide(OpPut) {
			t.Fatal("schedules diverged before disable")
		}
	}
	inj.SetDisabled(true)
	for i := 0; i < 100; i++ {
		if inj.Decide(OpPut) != OutcomeOK {
			t.Fatal("disabled injector injected a fault")
		}
	}
	inj.SetDisabled(false)
	for i := 0; i < 10; i++ {
		if ref.Decide(OpPut) != inj.Decide(OpPut) {
			t.Fatal("disable/enable shifted the schedule")
		}
	}
}

// TestStoreTornWrite: a torn Put leaves a damaged blob in the inner store
// and reports a transient error; a retried Put repairs it.
func TestStoreTornWrite(t *testing.T) {
	inner := newMemStore()
	inj := NewInjector(3)
	inj.SetPolicy(OpPut, Policy{TornRate: 1})
	fs := NewStore(inner, inj)
	blob := []byte("0123456789abcdef")
	err := fs.Put("x", blob)
	if err == nil {
		t.Fatal("torn write reported success")
	}
	if Classify(err) != ClassTransient {
		t.Fatalf("torn write classified %v, want transient", Classify(err))
	}
	if !IsInjected(err) {
		t.Fatalf("torn write error not marked injected: %v", err)
	}
	got, err := inner.Get("x")
	if err != nil {
		t.Fatal("torn write left nothing behind; want a damaged prefix")
	}
	if len(got) >= len(blob) {
		t.Fatalf("torn write stored %d bytes, want a strict prefix of %d", len(got), len(blob))
	}
	if fs.TornWrites() != 1 {
		t.Fatalf("TornWrites = %d, want 1", fs.TornWrites())
	}
	// Retry with injection off: the damage is repaired.
	inj.SetPolicy(OpPut, Policy{})
	if err := fs.Put("x", blob); err != nil {
		t.Fatal(err)
	}
	got, _ = inner.Get("x")
	if string(got) != string(blob) {
		t.Fatal("retried Put did not repair the torn blob")
	}
}

// TestStoreShortRead: a short Get silently truncates — nil error, damaged
// data — and the inner blob stays intact.
func TestStoreShortRead(t *testing.T) {
	inner := newMemStore()
	inj := NewInjector(4)
	fs := NewStore(inner, inj)
	blob := []byte("0123456789abcdef")
	if err := fs.Put("x", blob); err != nil {
		t.Fatal(err)
	}
	inj.SetPolicy(OpGet, Policy{ShortRate: 1})
	got, err := fs.Get("x")
	if err != nil {
		t.Fatalf("short read must not error, got %v", err)
	}
	if len(got) >= len(blob) {
		t.Fatalf("short read returned %d bytes, want fewer than %d", len(got), len(blob))
	}
	if fs.ShortReads() != 1 {
		t.Fatalf("ShortReads = %d, want 1", fs.ShortReads())
	}
	inj.SetPolicy(OpGet, Policy{})
	got, err = fs.Get("x")
	if err != nil || string(got) != string(blob) {
		t.Fatal("inner blob damaged by the short read")
	}
}

// TestTruncateFrame halves payloads on a truncate verdict and passes them
// through otherwise.
func TestTruncateFrame(t *testing.T) {
	inj := NewInjector(5)
	inj.SetPolicy(OpFrame, Policy{TruncateRate: 1})
	p := []byte("abcdefgh")
	out := inj.TruncateFrame(p)
	if len(out) != len(p)/2 {
		t.Fatalf("truncated to %d bytes, want %d", len(out), len(p)/2)
	}
	inj.SetPolicy(OpFrame, Policy{})
	if got := inj.TruncateFrame(p); len(got) != len(p) {
		t.Fatal("pass-through frame was modified")
	}
}
