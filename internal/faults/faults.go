// Package faults is the deterministic fault-injection layer of the
// reproduction: a seeded, policy-driven injector that store wrappers and
// driver hooks consult to decide whether one operation fails, stalls, tears
// or corrupts, plus the error-classification vocabulary the recovery
// machinery keys its retry and quarantine decisions on.
//
// The threat model (DESIGN.md §3) assumes a hostile or unreliable dom0:
// state files live on dom0 storage, ring notifications travel through dom0
// code, and any of it can fail at any moment. The injector makes those
// failures reproducible — every decision is drawn from a PRNG seeded
// explicitly, one draw per operation, so the same seed replays the same
// fault schedule regardless of which fault kinds are enabled.
//
// The package is deliberately standalone (stdlib only, no internal
// imports): internal/vtpm consumes the classification vocabulary, while
// experiments and tests wire the injector into stores and driver hooks.
package faults

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Class partitions failures by the recovery action they permit.
type Class int

const (
	// ClassNone marks a nil error.
	ClassNone Class = iota
	// ClassTransient failures may succeed on retry (I/O hiccup, stall,
	// torn write that a rewrite repairs). The retry layer backs off and
	// tries again, bounded by attempts and deadline.
	ClassTransient
	// ClassPermanent failures will not succeed on retry (missing blob,
	// configuration error). Retrying wastes the deadline; fail now.
	ClassPermanent
	// ClassCorrupt failures mean the data itself is damaged (truncated
	// blob, broken envelope). Retrying re-reads the same damage; the
	// instance must be fenced until an operator or a fresh checkpoint
	// replaces the state.
	ClassCorrupt
)

// String returns the class name used in health reports.
func (c Class) String() string {
	switch c {
	case ClassNone:
		return "none"
	case ClassTransient:
		return "transient"
	case ClassPermanent:
		return "permanent"
	case ClassCorrupt:
		return "corrupt"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// classified wraps an error with its recovery class.
type classified struct {
	class Class
	err   error
}

func (e *classified) Error() string { return e.err.Error() }
func (e *classified) Unwrap() error { return e.err }

// Transient marks err as retryable. Nil stays nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &classified{class: ClassTransient, err: err}
}

// Permanent marks err as not worth retrying. Nil stays nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &classified{class: ClassPermanent, err: err}
}

// Corrupt marks err as data damage. Nil stays nil.
func Corrupt(err error) error {
	if err == nil {
		return nil
	}
	return &classified{class: ClassCorrupt, err: err}
}

// Classify returns the recovery class of err. Unmarked non-nil errors
// default to ClassTransient: an unknown store failure is worth one bounded
// round of retries before escalating, whereas misclassifying a transient
// hiccup as permanent would fail instances that one retry saves. Callers
// with stronger knowledge (a known not-found sentinel, say) check those
// sentinels before consulting Classify.
func Classify(err error) Class {
	if err == nil {
		return ClassNone
	}
	var c *classified
	if errors.As(err, &c) {
		return c.class
	}
	return ClassTransient
}

// Op names one injectable operation kind. Each Op has its own policy and
// its own deterministic decision stream.
type Op int

const (
	// OpPut is a store write.
	OpPut Op = iota
	// OpGet is a store read.
	OpGet
	// OpDelete is a store delete.
	OpDelete
	// OpList is a store enumeration.
	OpList
	// OpNotify is an event-channel notification send.
	OpNotify
	// OpFrame is a ring frame dequeue.
	OpFrame
	// OpTransfer is one cross-host migration transfer leg — the copy of a
	// guest's domain and vTPM images between hosts. The cluster's fenced
	// handoff consults it per attempt, so a fault storm tears migrations
	// mid-flight without touching the store or ring schedules.
	OpTransfer
	numOps
)

// String returns the operation name used in stats tables.
func (o Op) String() string {
	switch o {
	case OpPut:
		return "put"
	case OpGet:
		return "get"
	case OpDelete:
		return "delete"
	case OpList:
		return "list"
	case OpNotify:
		return "notify"
	case OpFrame:
		return "frame"
	case OpTransfer:
		return "transfer"
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Outcome is the injector's verdict for one operation.
type Outcome int

const (
	// OutcomeOK lets the operation through untouched.
	OutcomeOK Outcome = iota
	// OutcomeError fails the operation with a transient injected error.
	OutcomeError
	// OutcomePermanent fails the operation with a permanent injected error.
	OutcomePermanent
	// OutcomeTorn applies to writes: a prefix of the data lands, then the
	// operation errors — the crash-mid-write model.
	OutcomeTorn
	// OutcomeShort applies to reads: a truncated blob comes back with no
	// error — silent corruption the consumer must detect itself.
	OutcomeShort
	// OutcomeDrop applies to notifications: the event vanishes.
	OutcomeDrop
	// OutcomeTruncate applies to ring frames: the payload is cut short.
	OutcomeTruncate
	// OutcomeStall delays the operation by the policy's Latency, then lets
	// it through.
	OutcomeStall
)

// Policy sets the fault mix for one Op. Rates are probabilities in [0, 1]
// and are applied as cumulative, mutually exclusive bands over a single
// uniform draw per operation — so enabling one fault kind never perturbs
// the schedule of another, and rate sums above 1 are a configuration error.
type Policy struct {
	// ErrorRate injects transient failures.
	ErrorRate float64
	// PermanentRate injects permanent failures.
	PermanentRate float64
	// TornRate injects torn writes (OpPut: prefix lands, then error).
	TornRate float64
	// ShortRate injects short reads (OpGet: truncated data, nil error).
	ShortRate float64
	// DropRate injects dropped notifications (OpNotify).
	DropRate float64
	// TruncateRate injects truncated frames (OpFrame).
	TruncateRate float64
	// StallRate injects latency of Latency per hit.
	StallRate float64
	// Latency is the injected stall duration.
	Latency time.Duration
}

// errInjected is the root of every injected failure, so tests can assert a
// failure came from the harness and not from real machinery.
var errInjected = errors.New("faults: injected failure")

// IsInjected reports whether err originated in an Injector.
func IsInjected(err error) bool { return errors.Is(err, errInjected) }

// OpStats counts one operation kind's traffic and verdicts.
type OpStats struct {
	Ops      uint64 // operations decided
	Injected uint64 // non-OK verdicts
}

// Injector is the seeded decision engine. One Injector serves a whole test
// or experiment run; every wrapped component consults it through Decide.
// Decisions are serialized under a mutex: a run that issues operations in a
// deterministic order gets a fully deterministic schedule, and even
// concurrent runs keep a deterministic *set* of faulted operation indices
// per Op (each Op consumes its own decision stream).
type Injector struct {
	mu       sync.Mutex
	seed     int64
	rngs     [numOps]*rand.Rand
	policies [numOps]Policy
	stats    [numOps]OpStats
	disabled bool
}

// NewInjector creates an injector whose whole schedule is a pure function
// of seed. Each Op draws from its own PRNG (seeded from the root seed and
// the Op number) so interleaving Put traffic never shifts the Get schedule.
func NewInjector(seed int64) *Injector {
	inj := &Injector{seed: seed}
	for op := Op(0); op < numOps; op++ {
		inj.rngs[op] = rand.New(rand.NewSource(seed ^ (int64(op+1) * 0x5851f42d4c957f2d)))
	}
	return inj
}

// Seed returns the root seed, for failure reports ("reproduce with ...").
func (inj *Injector) Seed() int64 { return inj.seed }

// SetPolicy installs the fault mix for one Op. Policies may be swapped
// mid-run (e.g. disabling faults for a verification phase); the decision
// stream position is preserved.
func (inj *Injector) SetPolicy(op Op, p Policy) {
	inj.mu.Lock()
	inj.policies[op] = p
	inj.mu.Unlock()
}

// SetDisabled turns the whole injector off (every Decide returns OutcomeOK
// without consuming a draw) — the post-storm verification switch.
func (inj *Injector) SetDisabled(d bool) {
	inj.mu.Lock()
	inj.disabled = d
	inj.mu.Unlock()
}

// Stats returns the per-Op traffic counters.
func (inj *Injector) Stats() map[Op]OpStats {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	out := make(map[Op]OpStats, numOps)
	for op := Op(0); op < numOps; op++ {
		if inj.stats[op].Ops > 0 {
			out[op] = inj.stats[op]
		}
	}
	return out
}

// InjectedTotal sums injected faults across all Ops.
func (inj *Injector) InjectedTotal() uint64 {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	var n uint64
	for op := Op(0); op < numOps; op++ {
		n += inj.stats[op].Injected
	}
	return n
}

// Decide draws one verdict for an operation of kind op. The stall outcome
// sleeps here, inside Decide, so callers treat every non-OK verdict as a
// pure value.
func (inj *Injector) Decide(op Op) Outcome {
	inj.mu.Lock()
	if inj.disabled {
		inj.mu.Unlock()
		return OutcomeOK
	}
	p := inj.policies[op]
	inj.stats[op].Ops++
	u := inj.rngs[op].Float64()
	out := verdict(op, p, u)
	var stall time.Duration
	if out == OutcomeStall {
		stall = p.Latency
	}
	if out != OutcomeOK {
		inj.stats[op].Injected++
	}
	inj.mu.Unlock()
	if stall > 0 {
		time.Sleep(stall)
	}
	return out
}

// verdict maps one uniform draw onto the policy's cumulative bands.
func verdict(op Op, p Policy, u float64) Outcome {
	bands := []struct {
		rate float64
		out  Outcome
	}{
		{p.ErrorRate, OutcomeError},
		{p.PermanentRate, OutcomePermanent},
		{p.TornRate, OutcomeTorn},
		{p.ShortRate, OutcomeShort},
		{p.DropRate, OutcomeDrop},
		{p.TruncateRate, OutcomeTruncate},
		{p.StallRate, OutcomeStall},
	}
	var cum float64
	for _, b := range bands {
		cum += b.rate
		if b.rate > 0 && u < cum {
			return b.out
		}
	}
	return OutcomeOK
}

// errFor builds the classified error for an injected failure.
func errFor(op Op, out Outcome) error {
	switch out {
	case OutcomeError, OutcomeTorn:
		return Transient(fmt.Errorf("%w: %s %s", errInjected, op, out.describe()))
	case OutcomePermanent:
		return Permanent(fmt.Errorf("%w: %s %s", errInjected, op, out.describe()))
	}
	return nil
}

func (o Outcome) describe() string {
	switch o {
	case OutcomeError:
		return "transient error"
	case OutcomePermanent:
		return "permanent error"
	case OutcomeTorn:
		return "torn write"
	case OutcomeShort:
		return "short read"
	case OutcomeDrop:
		return "dropped notification"
	case OutcomeTruncate:
		return "truncated frame"
	case OutcomeStall:
		return "stall"
	}
	return "ok"
}

// ShouldDropNotify decides one OpNotify operation — the adapter driver
// hooks close over (the hook signature stays free of this package's types).
func (inj *Injector) ShouldDropNotify() bool {
	return inj.Decide(OpNotify) == OutcomeDrop
}

// TruncateFrame decides one OpFrame operation and applies it: a truncated
// verdict cuts the payload roughly in half (at least one byte shorter), so
// downstream framing and envelope checks must catch it.
func (inj *Injector) TruncateFrame(payload []byte) []byte {
	if inj.Decide(OpFrame) != OutcomeTruncate || len(payload) == 0 {
		return payload
	}
	return payload[:len(payload)/2]
}
