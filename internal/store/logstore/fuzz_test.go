package logstore

import (
	"bytes"
	"testing"
)

// FuzzWALRecordParse throws arbitrary bytes at the segment record/header
// scanner — the code recovery trusts with whatever a torn, truncated, or
// silently-corrupted device hands back. Invariants under fuzzing:
//
//   - parseRecord/scanSegment never panic and never over-read;
//   - a parsed record round-trips: re-encoding (crc, frame, body) yields
//     the exact input bytes it was parsed from;
//   - scanSegment's accounting is exact: consumed + dropped = segment body.
func FuzzWALRecordParse(f *testing.F) {
	// Seed with well-formed inputs so mutation explores the format's edges.
	good := appendSegmentHeader(nil, 7)
	good = appendRecord(good, kindPut, 1, "vtpm-00000001.state", bytes.Repeat([]byte{0xA5}, 64))
	good = appendRecord(good, kindDelete, 2, "vtpm-00000001.state", nil)
	good = appendRecord(good, kindPut, 3, "x", nil)
	f.Add(good)
	f.Add(good[:len(good)-7])            // torn tail
	f.Add(appendSegmentHeader(nil, 0))   // empty segment
	f.Add([]byte{})                      // no header at all
	f.Add([]byte("XSEG\x00\x01garbage")) // header then noise
	torn := append([]byte(nil), good...)
	torn[segHdrLen+2] ^= 0x10 // corrupt first record's length field
	f.Add(torn)

	f.Fuzz(func(t *testing.T, data []byte) {
		if _, err := parseSegmentHeader(data); err != nil {
			// Unreadable header: recovery drops the segment; the scanner
			// must still be safe to run on the raw bytes.
			_ = scanSegment(data, func(rec) {})
			return
		}
		consumed := segHdrLen
		dropped := scanSegment(data, func(r rec) {
			if r.off != consumed {
				t.Fatalf("record at %d, scanner position %d", r.off, consumed)
			}
			if r.dataOff+r.dataLen > len(data) || r.off+r.size > len(data) {
				t.Fatalf("record overruns input: off=%d size=%d dataOff=%d dataLen=%d len=%d",
					r.off, r.size, r.dataOff, r.dataLen, len(data))
			}
			if len(r.name) > maxNameLen || r.dataLen > maxDataLen {
				t.Fatalf("record exceeds bounds: name=%d data=%d", len(r.name), r.dataLen)
			}
			// Round-trip: the parsed fields must re-encode to the exact
			// bytes on disk, or the parser accepted a frame it shouldn't.
			re := appendRecord(nil, r.kind, r.gen, r.name, data[r.dataOff:r.dataOff+r.dataLen])
			if !bytes.Equal(re, data[r.off:r.off+r.size]) {
				t.Fatalf("record does not round-trip at off %d", r.off)
			}
			consumed += r.size
		})
		if consumed+dropped != len(data) {
			t.Fatalf("accounting: consumed %d + dropped %d != %d", consumed, dropped, len(data))
		}
		// A truncated frame must never parse.
		if len(data) > segHdrLen+recFrameLen {
			if r, ok := parseRecord(data, len(data)-recFrameLen+1); ok {
				t.Fatalf("parsed a record with no room for its frame: %+v", r)
			}
		}
	})
}

// FuzzWALRecordParse's sibling: mutate one well-formed log and ensure Open
// never panics and never invents data — every recovered blob must be one
// the builder wrote.
func FuzzOpenRecovery(f *testing.F) {
	s := New(Config{SegmentSize: 512, DisableAutoCompact: true})
	for i := 0; i < 6; i++ {
		name := []byte{'n', byte('0' + i)}
		_ = s.Put(string(name), bytes.Repeat([]byte{byte(i)}, 100))
	}
	var flat []byte
	s.Disk().mu.Lock()
	var lens []int
	for _, seg := range s.Disk().segs {
		flat = append(flat, seg.data...)
		lens = append(lens, len(seg.data))
	}
	s.Disk().mu.Unlock()
	f.Add(flat, uint16(0), byte(0))
	f.Add(flat, uint16(100), byte(0xFF))

	f.Fuzz(func(t *testing.T, data []byte, off uint16, xor byte) {
		mut := append([]byte(nil), data...)
		if len(mut) > 0 {
			mut[int(off)%len(mut)] ^= xor
		}
		// Rebuild a disk with the original segment geometry over the
		// mutated bytes.
		d := NewDisk()
		rest := mut
		for _, n := range lens {
			if n > len(rest) {
				n = len(rest)
			}
			seg := &diskSegment{data: append([]byte(nil), rest[:n]...)}
			seg.synced = len(seg.data)
			d.segs = append(d.segs, seg)
			rest = rest[n:]
		}
		if len(rest) > 0 {
			d.segs = append(d.segs, &diskSegment{data: append([]byte(nil), rest...), synced: len(rest)})
		}
		re, _, err := Open(d, Config{})
		if err != nil {
			return
		}
		names, _ := re.List()
		for _, name := range names {
			b, err := re.Get(name)
			if err != nil {
				t.Fatalf("listed name %q unreadable: %v", name, err)
			}
			if len(b) != 100 || len(name) != 2 || name[0] != 'n' {
				t.Fatalf("recovery invented a record: name=%q len=%d", name, len(b))
			}
			want := bytes.Repeat([]byte{byte(name[1] - '0')}, 100)
			if !bytes.Equal(b, want) {
				t.Fatalf("recovered %q with corrupt payload that passed CRC", name)
			}
		}
	})
}
