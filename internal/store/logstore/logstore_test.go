package logstore

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func testConfig() Config {
	return Config{SegmentSize: 1 << 12, DisableAutoCompact: true}
}

func TestPutGetRoundtrip(t *testing.T) {
	s := New(testConfig())
	if err := s.Put("a", []byte("alpha")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, err := s.Get("a")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if string(got) != "alpha" {
		t.Fatalf("Get = %q, want alpha", got)
	}
}

func TestPutReplaceKeepsNewest(t *testing.T) {
	s := New(testConfig())
	for i := 0; i < 5; i++ {
		if err := s.Put("x", []byte(fmt.Sprintf("gen-%d", i))); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	got, err := s.Get("x")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if string(got) != "gen-4" {
		t.Fatalf("Get = %q, want gen-4", got)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
}

func TestDeleteAndSentinel(t *testing.T) {
	sentinel := errors.New("custom missing")
	s := New(Config{NotFound: sentinel})
	if err := s.Delete("ghost"); !errors.Is(err, sentinel) {
		t.Fatalf("Delete missing = %v, want wrap of sentinel", err)
	}
	if _, err := s.Get("ghost"); !errors.Is(err, sentinel) {
		t.Fatalf("Get missing = %v, want wrap of sentinel", err)
	}
	if err := s.Put("a", []byte("v")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := s.Delete("a"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := s.Get("a"); !errors.Is(err, sentinel) {
		t.Fatalf("Get after Delete = %v, want sentinel", err)
	}
	// The default sentinel applies when none is configured.
	d := New(Config{})
	if err := d.Delete("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("default Delete missing = %v, want ErrNotFound", err)
	}
}

func TestSegmentRollingAndList(t *testing.T) {
	s := New(testConfig()) // 4 KiB segments
	blob := bytes.Repeat([]byte{0xAB}, 1024)
	var want []string
	for i := 0; i < 20; i++ {
		name := fmt.Sprintf("blob-%02d", i)
		want = append(want, name)
		if err := s.Put(name, blob); err != nil {
			t.Fatalf("Put %s: %v", name, err)
		}
	}
	if got := s.Disk().Segments(); got < 5 {
		t.Fatalf("Segments = %d, want rolling to at least 5", got)
	}
	names, err := s.List()
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	if len(names) != len(want) {
		t.Fatalf("List len = %d, want %d", len(names), len(want))
	}
	for i, n := range names {
		if n != want[i] {
			t.Fatalf("List[%d] = %q, want %q (sorted)", i, n, want[i])
		}
	}
}

func TestOversizedRecordGetsOwnSegment(t *testing.T) {
	s := New(Config{SegmentSize: 256, DisableAutoCompact: true})
	big := bytes.Repeat([]byte{1}, 4096)
	if err := s.Put("big", big); err != nil {
		t.Fatalf("Put oversized: %v", err)
	}
	got, err := s.Get("big")
	if err != nil || !bytes.Equal(got, big) {
		t.Fatalf("Get oversized mismatch (err=%v)", err)
	}
}

func TestRecoveryByGenerationNotScanOrder(t *testing.T) {
	// Compaction copies old generations into segments that sit after the
	// active segment's newer records in disk order; recovery must let the
	// generation decide, not the scan position.
	s := New(Config{SegmentSize: 512, DisableAutoCompact: true})
	for i := 0; i < 8; i++ {
		if err := s.Put("victim", bytes.Repeat([]byte{byte(i)}, 200)); err != nil {
			t.Fatalf("Put: %v", err)
		}
		if err := s.Put(fmt.Sprintf("other-%d", i), bytes.Repeat([]byte{0xEE}, 200)); err != nil {
			t.Fatalf("Put other: %v", err)
		}
	}
	s.Compact()
	// One more write after compaction lands in a fresh active segment.
	final := bytes.Repeat([]byte{0x77}, 200)
	if err := s.Put("victim", final); err != nil {
		t.Fatalf("Put final: %v", err)
	}
	re, rs, err := Open(s.Disk(), Config{DisableAutoCompact: true})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if rs.DroppedBytes != 0 || rs.DamagedSegments != 0 {
		t.Fatalf("clean reopen reported damage: %+v", rs)
	}
	got, err := re.Get("victim")
	if err != nil || !bytes.Equal(got, final) {
		t.Fatalf("recovered victim = %x err=%v, want newest generation", got[:4], err)
	}
	if re.Len() != 9 {
		t.Fatalf("recovered Len = %d, want 9", re.Len())
	}
}

func TestTombstoneSurvivesRecovery(t *testing.T) {
	s := New(testConfig())
	if err := s.Put("doomed", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("kept", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("doomed"); err != nil {
		t.Fatal(err)
	}
	re, _, err := Open(s.Disk(), testConfig())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := re.Get("doomed"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted name resurrected: %v", err)
	}
	if _, err := re.Get("kept"); err != nil {
		t.Fatalf("kept name lost: %v", err)
	}
}

func TestPutAliasingContract(t *testing.T) {
	s := New(testConfig())
	buf := []byte("original")
	if err := s.Put("a", buf); err != nil {
		t.Fatal(err)
	}
	copy(buf, "SCRIBBLE")
	got, err := s.Get("a")
	if err != nil || string(got) != "original" {
		t.Fatalf("Put aliased caller buffer: got %q err=%v", got, err)
	}
	got[0] = 'X'
	again, _ := s.Get("a")
	if string(again) != "original" {
		t.Fatalf("Get returned an aliased slice: %q", again)
	}
}

func TestGroupCommitCoalesces(t *testing.T) {
	// With a modeled sync cost, concurrent writers must share commits: the
	// commit count has to land well below the put count.
	s := New(Config{SyncDelay: 200 * time.Microsecond})
	const writers, rounds = 16, 8
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			blob := bytes.Repeat([]byte{byte(w)}, 128)
			for r := 0; r < rounds; r++ {
				if err := s.Put(fmt.Sprintf("w%02d", w), blob); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := s.Stats()
	if st.Puts != writers*rounds {
		t.Fatalf("Puts = %d, want %d", st.Puts, writers*rounds)
	}
	if st.Commits >= st.Puts {
		t.Fatalf("no coalescing: %d commits for %d puts", st.Commits, st.Puts)
	}
	if st.CoalesceRatio() < 2 {
		t.Fatalf("coalesce ratio %.2f, want >= 2 with %d concurrent writers", st.CoalesceRatio(), writers)
	}
	// Everything must still be individually durable and correct.
	for w := 0; w < writers; w++ {
		got, err := s.Get(fmt.Sprintf("w%02d", w))
		if err != nil || len(got) != 128 || got[0] != byte(w) {
			t.Fatalf("writer %d blob wrong after concurrent commit (err=%v)", w, err)
		}
	}
}

func TestCommitWindowBatchesSequentialBursts(t *testing.T) {
	s := New(Config{CommitWindow: 2 * time.Millisecond})
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			s.Put(fmt.Sprintf("n%d", w), []byte("v")) //nolint:errcheck
		}(w)
	}
	close(start)
	wg.Wait()
	st := s.Stats()
	if st.Commits >= 8 {
		t.Fatalf("commit window did not batch: %d commits for 8 puts", st.Commits)
	}
}

func TestCompactionDropsDeadBytes(t *testing.T) {
	s := New(Config{SegmentSize: 1 << 12, DisableAutoCompact: true})
	blob := bytes.Repeat([]byte{0xCC}, 512)
	for gen := 0; gen < 10; gen++ {
		for i := 0; i < 8; i++ {
			if err := s.Put(fmt.Sprintf("n%d", i), blob); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.Delete("n7"); err != nil {
		t.Fatal(err)
	}
	before := s.Stats()
	if before.CompactionDebt == 0 {
		t.Fatal("expected compaction debt before compaction")
	}
	reclaimed := s.Compact()
	if reclaimed <= 0 {
		t.Fatalf("Compact reclaimed %d, want > 0", reclaimed)
	}
	after := s.Stats()
	if after.CompactionDebt != 0 {
		t.Fatalf("debt after full compaction = %d, want 0", after.CompactionDebt)
	}
	if after.BytesOnDisk >= before.BytesOnDisk {
		t.Fatalf("disk footprint did not shrink: %d -> %d", before.BytesOnDisk, after.BytesOnDisk)
	}
	// Data intact, deleted name still gone.
	for i := 0; i < 7; i++ {
		got, err := s.Get(fmt.Sprintf("n%d", i))
		if err != nil || !bytes.Equal(got, blob) {
			t.Fatalf("n%d damaged by compaction (err=%v)", i, err)
		}
	}
	if _, err := s.Get("n7"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted name resurrected by compaction: %v", err)
	}
	// And the compacted log must still recover.
	re, rs, err := Open(s.Disk(), Config{})
	if err != nil || rs.DroppedBytes != 0 {
		t.Fatalf("post-compaction reopen: err=%v stats=%+v", err, rs)
	}
	if re.Len() != 7 {
		t.Fatalf("post-compaction recovered Len = %d, want 7", re.Len())
	}
}

func TestAutoCompactionTriggers(t *testing.T) {
	s := New(Config{SegmentSize: 1 << 10, CompactMinSegments: 2, CompactMinDead: 0.3})
	blob := bytes.Repeat([]byte{0xDD}, 256)
	for gen := 0; gen < 30; gen++ {
		for i := 0; i < 4; i++ {
			if err := s.Put(fmt.Sprintf("n%d", i), blob); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := s.Stats()
	if st.Compactions == 0 {
		t.Fatalf("auto-compaction never ran: %+v", st)
	}
	for i := 0; i < 4; i++ {
		if got, err := s.Get(fmt.Sprintf("n%d", i)); err != nil || !bytes.Equal(got, blob) {
			t.Fatalf("n%d damaged (err=%v)", i, err)
		}
	}
}

func TestConcurrentMixedOps(t *testing.T) {
	// Race-detector workout: concurrent Put/Get/List/Stats/Compact.
	s := New(Config{SegmentSize: 1 << 12, SyncDelay: 50 * time.Microsecond,
		CompactMinSegments: 2, CompactMinDead: 0.3})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			blob := bytes.Repeat([]byte{byte(w)}, 300)
			name := fmt.Sprintf("w%d", w)
			for r := 0; r < 40; r++ {
				if err := s.Put(name, blob); err != nil {
					t.Errorf("Put: %v", err)
				}
				if got, err := s.Get(name); err != nil || got[0] != byte(w) {
					t.Errorf("Get: %v", err)
				}
				if _, err := s.List(); err != nil {
					t.Errorf("List: %v", err)
				}
				_ = s.Stats()
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != 8 {
		t.Fatalf("Len = %d, want 8", s.Len())
	}
}

func TestStatsAccounting(t *testing.T) {
	s := New(testConfig())
	if err := s.Put("a", make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("a", make([]byte, 200)); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.UserBytes != 300 {
		t.Fatalf("UserBytes = %d, want 300", st.UserBytes)
	}
	if st.BytesAppended <= st.UserBytes {
		t.Fatalf("BytesAppended = %d, should exceed user bytes (framing)", st.BytesAppended)
	}
	if st.WriteAmplification() <= 1 {
		t.Fatalf("WriteAmplification = %.2f, want > 1", st.WriteAmplification())
	}
	wantLive := uint64(recordSize(1, 200))
	if st.BytesLive != wantLive {
		t.Fatalf("BytesLive = %d, want %d (only newest generation live)", st.BytesLive, wantLive)
	}
}

func TestPutBounds(t *testing.T) {
	s := New(testConfig())
	if err := s.Put("", []byte("v")); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := s.Put(string(make([]byte, maxNameLen+1)), []byte("v")); err == nil {
		t.Fatal("oversized name accepted")
	}
}
