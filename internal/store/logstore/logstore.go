// Package logstore is a segmented, append-only checkpoint store: the
// log-structured persistence backend behind the vTPM manager's write-behind
// checkpoint pipeline. The flat store pays one random write (and on a real
// device, one flush) per dirty instance; at fleet scale that is the dominant
// cost of keeping guest TPM state durable. This store turns that workload
// into sequential appends with cross-instance group commit: concurrent Puts
// from the checkpoint workers coalesce into a single buffered segment append
// and a single sync per commit window.
//
// The package deliberately imports nothing above the metrics layer — it
// knows nothing of vTPMs. It implements the four-method blob-store surface
// (Put/Get/Delete/List) structurally, so it satisfies vtpm.Store and slots
// under faults.Store without an import cycle. Config.NotFound lets the
// integrator supply its own missing-blob sentinel (the manager passes
// vtpm.ErrNoState) so errors.Is-based handling keeps working.
package logstore

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// ErrNotFound is the default missing-blob sentinel, used when Config.NotFound
// is nil. Errors from Get and Delete wrap it (or the configured sentinel).
var ErrNotFound = errors.New("logstore: no such blob")

// Config tunes a Store. The zero value is usable: 4 MiB segments, no commit
// window (group commit still coalesces via sync-latency piggybacking), no
// modeled sync delay, auto-compaction at 4 sealed segments / 50% dead bytes.
type Config struct {
	// SegmentSize bounds a segment's byte length. A record larger than this
	// gets a dedicated oversized segment rather than failing.
	SegmentSize int
	// CommitWindow is how long a commit leader lingers after its own append
	// is staged, letting more concurrent Puts join the batch. Zero relies on
	// piggybacking alone: writers that arrive while a sync is in flight form
	// the next batch and are committed together by a handed-off leader.
	CommitWindow time.Duration
	// CommitBytes cuts the window early once a batch has staged this many
	// bytes. Zero means 1 MiB.
	CommitBytes int
	// SyncDelay models the device flush cost paid once per group commit —
	// the knob E17 and the benchmarks use to make coalescing visible on an
	// in-memory device. Zero means syncs are free.
	SyncDelay time.Duration
	// CompactMinSegments is the sealed-segment count below which
	// auto-compaction never runs. Zero means 4.
	CompactMinSegments int
	// CompactMinDead is the dead-byte ratio (dead / total sealed bytes) that
	// triggers auto-compaction. Zero means 0.5.
	CompactMinDead float64
	// DisableAutoCompact leaves all superseded generations in place until
	// Compact is called explicitly. Crash tests use this to keep the log
	// layout deterministic.
	DisableAutoCompact bool
	// NotFound, when non-nil, is wrapped into missing-blob errors in place
	// of ErrNotFound so the caller's errors.Is checks see its own sentinel.
	NotFound error
}

func (c *Config) segmentSize() int {
	if c.SegmentSize <= 0 {
		return 4 << 20
	}
	return c.SegmentSize
}

func (c *Config) commitBytes() int {
	if c.CommitBytes <= 0 {
		return 1 << 20
	}
	return c.CommitBytes
}

func (c *Config) compactMinSegments() int {
	if c.CompactMinSegments <= 0 {
		return 4
	}
	return c.CompactMinSegments
}

func (c *Config) compactMinDead() float64 {
	if c.CompactMinDead <= 0 {
		return 0.5
	}
	return c.CompactMinDead
}

func (c *Config) notFound() error {
	if c.NotFound != nil {
		return c.NotFound
	}
	return ErrNotFound
}

// idxEntry locates a name's newest record on disk.
type idxEntry struct {
	seg     *diskSegment
	gen     uint64
	size    int // full framed record size (for dead-byte accounting)
	dataOff int
	dataLen int
}

// pendingRec is one staged record inside an open batch.
type pendingRec struct {
	name    string
	kind    byte
	gen     uint64
	size    int
	dataLen int
	// filled in by the leader while copying the batch to disk:
	seg     *diskSegment
	dataOff int
}

// batch is one group-commit unit: the concatenated encodings of every
// staged record plus the bookkeeping to apply them to the index after the
// sync. done is closed once the batch is durable and indexed; takeover
// carries the leadership token handed to one waiter of the *next* batch
// when the current leader retires.
type batch struct {
	buf      []byte
	recs     []*pendingRec
	done     chan struct{}
	takeover chan struct{}
}

func newBatch() *batch {
	return &batch{done: make(chan struct{}), takeover: make(chan struct{}, 1)}
}

// Store is the log-structured blob store. All mutation is serialized under
// mu; the disk's own lock nests inside it (lock order: Store.mu → Disk.mu).
// Commit leaders drop mu around the two sleeps (commit window, modeled sync
// delay) so concurrent writers can stage records meanwhile — that overlap
// is where group commit wins.
type Store struct {
	cfg  Config
	disk *Disk

	mu         sync.Mutex
	idx        map[string]idxEntry
	active     *diskSegment // tail segment new appends go to; nil until first write
	open       *batch       // batch accepting new records; nil when none staged
	committing bool         // a leader exists (possibly sleeping off-lock)
	nextGen    uint64

	stats   statsInner
	recover RecoverStats
}

// New creates a store over a fresh empty Disk.
func New(cfg Config) *Store {
	s, _, err := Open(NewDisk(), cfg)
	if err != nil {
		// An empty disk cannot fail to open; this is unreachable.
		panic(err)
	}
	return s
}

// RecoverStats describes what Open found while replaying the log.
type RecoverStats struct {
	// Segments scanned, including damaged ones.
	Segments int
	// Records parsed successfully (puts + tombstones, all generations).
	Records int
	// Tombstones among those records.
	Tombstones int
	// Live names in the rebuilt index.
	Live int
	// DroppedBytes is the byte count abandoned after damage: torn tails,
	// failed checksums, and everything after them in the affected segment.
	DroppedBytes int
	// DamagedSegments counts segments where the scan stopped early or the
	// header itself was unreadable.
	DamagedSegments int
	// Elapsed is the wall time of the replay scan.
	Elapsed time.Duration
}

// ReplayRate returns records replayed per second, the cold-start figure E17
// reports.
func (r RecoverStats) ReplayRate() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Records) / r.Elapsed.Seconds()
}

// Open rebuilds a store from an existing disk by scanning every segment in
// order and keeping, per name, the record with the highest generation —
// scan position does not decide, generations do, because compaction rewrites
// old generations into segments that sit after newer ones in disk order.
// A record that fails its checksum (or a header that does not parse)
// abandons the rest of its segment; in the crash model that is exactly the
// torn tail, and every generation whose Put had returned before the crash
// is still recovered.
func Open(disk *Disk, cfg Config) (*Store, RecoverStats, error) {
	s := &Store{
		cfg:     cfg,
		disk:    disk,
		idx:     make(map[string]idxEntry),
		nextGen: 1,
	}
	start := time.Now()
	var rs RecoverStats

	disk.mu.Lock()
	defer disk.mu.Unlock()
	type winner struct {
		e   idxEntry
		del bool
	}
	best := make(map[string]winner)
	for _, seg := range disk.segs {
		rs.Segments++
		id, err := parseSegmentHeader(seg.data)
		if err != nil {
			// Unreadable header: the segment's records are unreachable.
			// Only legal as crash damage; drop it and report.
			rs.DamagedSegments++
			rs.DroppedBytes += len(seg.data)
			continue
		}
		if id >= disk.nextSegID {
			disk.nextSegID = id + 1
		}
		seg := seg
		dropped := scanSegment(seg.data, func(r rec) {
			rs.Records++
			if r.kind == kindDelete {
				rs.Tombstones++
			}
			if r.gen >= s.nextGen {
				s.nextGen = r.gen + 1
			}
			if w, ok := best[r.name]; ok && w.e.gen >= r.gen {
				return
			}
			best[r.name] = winner{
				e: idxEntry{
					seg:     seg,
					gen:     r.gen,
					size:    r.size,
					dataOff: r.dataOff,
					dataLen: r.dataLen,
				},
				del: r.kind == kindDelete,
			}
		})
		if dropped > 0 {
			rs.DamagedSegments++
			rs.DroppedBytes += dropped
			// The abandoned suffix is dead weight; truncate it so future
			// appends to this disk cannot resurrect half-records, and clamp
			// the durable watermark with it.
			seg.data = seg.data[:len(seg.data)-dropped]
			if seg.synced > len(seg.data) {
				seg.synced = len(seg.data)
			}
		}
	}
	for name, w := range best {
		if w.del {
			continue
		}
		s.idx[name] = w.e
		s.stats.bytesLive += uint64(w.e.size)
	}
	rs.Live = len(s.idx)
	// Everything that survived the scan is considered durable: the store
	// only ever reports a Put as committed after a sync, and recovery is
	// itself the durability re-baseline.
	disk.syncLocked()
	if n := len(disk.segs); n > 0 {
		s.active = disk.segs[n-1]
	}
	rs.Elapsed = time.Since(start)
	s.recover = rs
	return s, rs, nil
}

// Disk returns the device under the store, for crash tests and experiments.
func (s *Store) Disk() *Disk { return s.disk }

// Put implements the blob-store surface. The data is copied into the open
// commit batch before Put blocks, so the caller may reuse the slice
// immediately (same aliasing contract as MemStore). Put returns only after
// the record — and every record batched with it — is synced and indexed.
func (s *Store) Put(name string, data []byte) error {
	if len(name) == 0 || len(name) > maxNameLen {
		return fmt.Errorf("logstore: invalid name length %d", len(name))
	}
	if len(data) > maxDataLen {
		return fmt.Errorf("logstore: blob of %d bytes exceeds record limit", len(data))
	}
	return s.commit(kindPut, name, data)
}

// Delete implements the blob-store surface: it appends a tombstone so the
// deletion survives recovery, then drops the name from the index. Deleting
// a missing name is an error wrapping the configured sentinel.
func (s *Store) Delete(name string) error {
	return s.commit(kindDelete, name, nil)
}

// commit stages one record into the open batch and sees it through a group
// commit, either as leader or as a waiting follower.
func (s *Store) commit(kind byte, name string, data []byte) error {
	s.mu.Lock()
	if kind == kindDelete {
		if _, ok := s.idx[name]; !ok {
			s.mu.Unlock()
			return fmt.Errorf("%w: %q", s.cfg.notFound(), name)
		}
	}
	gen := s.nextGen
	s.nextGen++
	b := s.open
	if b == nil {
		b = newBatch()
		s.open = b
	}
	p := &pendingRec{
		name:    name,
		kind:    kind,
		gen:     gen,
		size:    recordSize(len(name), len(data)),
		dataLen: len(data),
	}
	b.buf = appendRecord(b.buf, kind, gen, name, data)
	b.recs = append(b.recs, p)
	switch {
	case kind == kindPut:
		s.stats.puts++
		s.stats.userBytes += uint64(len(data))
	default:
		s.stats.deletes++
	}

	if s.committing {
		// A leader exists. Wait for this batch to become durable, or accept
		// the leadership token if the retiring leader hands it to us.
		s.mu.Unlock()
		select {
		case <-b.done:
			return nil
		case <-b.takeover:
			s.mu.Lock()
			s.lead(b, false)
			return nil
		}
	}

	// No commit in flight: become leader for this batch. Only the initial
	// leader observes the configured commit window — a handed-off leader's
	// batch already accumulated during the previous commit.
	s.committing = true
	s.lead(b, true)
	return nil
}

// lead runs group commits starting with batch b until no staged work
// remains, then either retires or hands leadership to a waiter of the next
// batch. Called with s.mu held; returns with it released. When fresh is
// true the leader lingers for the commit window before detaching b.
func (s *Store) lead(b *batch, fresh bool) {
	if fresh && s.cfg.CommitWindow > 0 && len(b.buf) < s.cfg.commitBytes() {
		s.mu.Unlock()
		time.Sleep(s.cfg.CommitWindow)
		s.mu.Lock()
	}
	// Detach: Puts arriving from here on start the next batch.
	if s.open == b {
		s.open = nil
	}
	s.appendBatchLocked(b)
	s.mu.Unlock()

	// The one device flush the whole batch shares. Slept off-lock so the
	// next batch fills while this one syncs — that overlap, not the timer
	// window, is what coalesces bursts from the write-behind workers.
	if s.cfg.SyncDelay > 0 {
		time.Sleep(s.cfg.SyncDelay)
	}

	s.mu.Lock()
	s.disk.mu.Lock()
	s.disk.syncLocked()
	s.disk.mu.Unlock()
	s.applyLocked(b)
	close(b.done)

	next := s.open
	if next == nil || len(next.recs) == 0 {
		s.committing = false
		s.maybeCompactLocked()
		s.mu.Unlock()
		return
	}
	// Hand the baton to one waiter of the next batch instead of committing
	// it ourselves — our own caller's Put must return now that its batch is
	// durable. Every staged record has exactly one goroutine blocked in
	// commit(), so the token is always consumed.
	s.maybeCompactLocked()
	s.mu.Unlock()
	next.takeover <- struct{}{}
}

// appendBatchLocked copies a detached batch into the active segment chain,
// rolling to fresh segments as the size bound requires, and stamps each
// pending record with its final location. Caller holds s.mu.
func (s *Store) appendBatchLocked(b *batch) {
	s.disk.mu.Lock()
	defer s.disk.mu.Unlock()
	segSize := s.cfg.segmentSize()
	off := 0
	for _, p := range b.recs {
		if s.active == nil || (len(s.active.data) > segHdrLen && len(s.active.data)+p.size > segSize) {
			s.active = s.disk.addSegmentLocked()
			s.stats.bytesAppended += segHdrLen
		}
		seg := s.active
		recStart := len(seg.data)
		seg.data = append(seg.data, b.buf[off:off+p.size]...)
		off += p.size
		p.seg = seg
		p.dataOff = recStart + recFrameLen + recMetaLen + len(p.name)
		s.stats.bytesAppended += uint64(p.size)
	}
}

// applyLocked updates the index and stats for a durable batch. Caller holds
// s.mu. Records apply in staging order; within one batch that is also
// generation order, so last-writer-wins falls out naturally.
func (s *Store) applyLocked(b *batch) {
	for _, p := range b.recs {
		old, existed := s.idx[p.name]
		if existed {
			s.stats.bytesLive -= uint64(old.size)
		}
		if p.kind == kindDelete {
			delete(s.idx, p.name)
			// The tombstone itself is dead weight the moment it applies;
			// it only matters to recovery until compaction drops it.
			continue
		}
		s.idx[p.name] = idxEntry{
			seg:     p.seg,
			gen:     p.gen,
			size:    p.size,
			dataOff: p.dataOff,
			dataLen: p.dataLen,
		}
		s.stats.bytesLive += uint64(p.size)
	}
	s.stats.commits++
	s.stats.batchRecords += uint64(len(b.recs))
}

// Get implements the blob-store surface, returning a copy of the newest
// committed generation. Reads of in-flight (staged, unsynced) generations
// are invisible: Get serves the index, and the index only advances at
// commit time.
func (s *Store) Get(name string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.idx[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", s.cfg.notFound(), name)
	}
	s.stats.gets++
	out := make([]byte, e.dataLen)
	copy(out, e.seg.data[e.dataOff:e.dataOff+e.dataLen])
	return out, nil
}

// List implements the blob-store surface: all live names, sorted.
func (s *Store) List() ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.idx))
	for name := range s.idx {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// Len reports the number of live names.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.idx)
}

// Generation reports the newest committed generation for a name, for tests
// that assert recovery kept or dropped specific writes.
func (s *Store) Generation(name string) (uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.idx[name]
	return e.gen, ok
}
