package logstore

import "sort"

// Compaction rewrites the live records of sealed segments into fresh
// segments and drops everything superseded: old generations, tombstones,
// and the dead bytes torn-and-retried writes left behind. Invariants:
//
//   - The active segment is never rewritten while a commit is in flight —
//     a leader sleeping through its sync holds record pointers into it.
//     Compaction therefore only runs from commit retirement (under the
//     store lock, no batch mid-flight) or from Compact(), which seals the
//     active segment first only when no leader exists.
//   - Generations are preserved verbatim, so recovery's generation-ordered
//     replay is indifferent to a compacted segment sitting at a later disk
//     position than the newer records in the active segment.
//   - Tombstones are dropped entirely: every sealed put they could shadow
//     is dropped in the same pass, and the active segment can only hold
//     generations newer than any sealed tombstone (appends are
//     generation-ordered across the log).
//   - The segment swap is modeled as atomic. On a real device this is the
//     classic write-new-then-rename step; the model's crash points are the
//     byte-stream tears the Disk hooks express, not half-swaps.

// Compact forces a full compaction: the active segment is sealed (unless a
// commit is in flight) and every sealed segment is rewritten to live
// records only. It returns the number of bytes reclaimed.
func (s *Store) Compact() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.committing {
		// Seal: the next append rolls a fresh segment, so the current tail
		// becomes eligible for rewriting.
		s.active = nil
	}
	return s.compactLocked()
}

// maybeCompactLocked applies the auto-compaction policy. Caller holds s.mu
// with no batch mid-flight. The cheap global-debt test runs first; the
// per-entry sealed-liveness sum is only computed once that passes, so the
// steady-state cost per commit is two integer reads.
func (s *Store) maybeCompactLocked() {
	if s.cfg.DisableAutoCompact {
		return
	}
	s.disk.mu.Lock()
	sealed, total := 0, 0
	for _, seg := range s.disk.segs {
		if seg != s.active {
			sealed++
			total += len(seg.data) - segHdrLen
		}
	}
	s.disk.mu.Unlock()
	if sealed < s.cfg.compactMinSegments() || total <= 0 {
		return
	}
	live := 0
	for _, e := range s.idx {
		if e.seg != s.active {
			live += e.size
		}
	}
	if float64(total-live)/float64(total) < s.cfg.compactMinDead() {
		return
	}
	s.compactLocked()
}

// compactLocked rewrites all sealed segments. Caller holds s.mu.
func (s *Store) compactLocked() int {
	s.disk.mu.Lock()
	defer s.disk.mu.Unlock()

	before := 0
	for _, seg := range s.disk.segs {
		if seg != s.active {
			before += len(seg.data)
		}
	}
	if before == 0 {
		return 0
	}

	// Deterministic rewrite order keeps the post-compaction layout
	// reproducible for the seeded crash tests.
	names := make([]string, 0, len(s.idx))
	for name, e := range s.idx {
		if e.seg != s.active {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	segSize := s.cfg.segmentSize()
	var newSegs []*diskSegment
	var cur *diskSegment
	for _, name := range names {
		e := s.idx[name]
		if cur == nil || (len(cur.data) > segHdrLen && len(cur.data)+e.size > segSize) {
			cur = &diskSegment{id: s.disk.nextSegID}
			s.disk.nextSegID++
			cur.data = appendSegmentHeader(nil, cur.id)
			s.stats.bytesAppended += segHdrLen
			newSegs = append(newSegs, cur)
		}
		// Copy the framed record verbatim — CRC and generation included.
		recStart := e.dataOff - recFrameLen - recMetaLen - len(name)
		off := len(cur.data)
		cur.data = append(cur.data, e.seg.data[recStart:recStart+e.size]...)
		s.stats.bytesAppended += uint64(e.size)
		e.seg = cur
		e.dataOff = off + (e.dataOff - recStart)
		s.idx[name] = e
	}
	after := 0
	for _, seg := range newSegs {
		seg.synced = len(seg.data) // the swap is the durability point
		after += len(seg.data)
	}
	if s.active != nil {
		newSegs = append(newSegs, s.active)
	}
	s.disk.segs = newSegs
	s.stats.compactions++
	reclaimed := before - after
	if reclaimed < 0 {
		reclaimed = 0
	}
	s.stats.bytesReclaimed += uint64(reclaimed)
	return reclaimed
}
