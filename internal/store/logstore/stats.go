package logstore

import "xvtpm/internal/metrics"

// statsInner is the store's internal tally, mutated under Store.mu.
type statsInner struct {
	puts           uint64
	gets           uint64
	deletes        uint64
	commits        uint64 // group commits, i.e. syncs
	batchRecords   uint64 // records carried by those commits
	bytesAppended  uint64 // log bytes written, compaction rewrites included
	userBytes      uint64 // payload bytes callers handed to Put
	bytesLive      uint64 // framed bytes of index-reachable records
	bytesReclaimed uint64
	compactions    uint64
}

// Stats is a consistent snapshot of the store's counters and levels.
type Stats struct {
	// Puts, Gets, Deletes count caller operations.
	Puts, Gets, Deletes uint64
	// Commits counts group commits — one sync each. BatchRecords is the
	// total records those commits carried; BatchRecords/Commits is the
	// coalesce ratio.
	Commits, BatchRecords uint64
	// BytesAppended is every byte written to the log, including segment
	// headers and compaction rewrites. UserBytes is the payload bytes the
	// callers supplied; BytesAppended/UserBytes is write amplification.
	BytesAppended, UserBytes uint64
	// BytesLive is the framed size of all index-reachable records;
	// BytesOnDisk is the full device footprint. CompactionDebt is the dead
	// weight between them (superseded generations + tombstones).
	BytesLive, BytesOnDisk, CompactionDebt uint64
	// Segments is the current segment-region count.
	Segments int
	// Compactions and BytesReclaimed tally compaction work.
	Compactions, BytesReclaimed uint64
	// Recover is what Open found when this store was last recovered.
	Recover RecoverStats
}

// CoalesceRatio reports mean records per group commit — 1.0 means the store
// degraded to one sync per Put, the flat-store cost.
func (st Stats) CoalesceRatio() float64 {
	if st.Commits == 0 {
		return 0
	}
	return float64(st.BatchRecords) / float64(st.Commits)
}

// WriteAmplification reports log bytes written per user payload byte.
func (st Stats) WriteAmplification() float64 {
	if st.UserBytes == 0 {
		return 0
	}
	return float64(st.BytesAppended) / float64(st.UserBytes)
}

// Stats snapshots the store.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Puts:           s.stats.puts,
		Gets:           s.stats.gets,
		Deletes:        s.stats.deletes,
		Commits:        s.stats.commits,
		BatchRecords:   s.stats.batchRecords,
		BytesAppended:  s.stats.bytesAppended,
		UserBytes:      s.stats.userBytes,
		BytesLive:      s.stats.bytesLive,
		BytesReclaimed: s.stats.bytesReclaimed,
		Compactions:    s.stats.compactions,
		Recover:        s.recover,
	}
	s.disk.mu.Lock()
	st.Segments = len(s.disk.segs)
	onDisk := uint64(s.disk.bytesLocked())
	s.disk.mu.Unlock()
	st.BytesOnDisk = onDisk
	headers := uint64(st.Segments * segHdrLen)
	if onDisk > st.BytesLive+headers {
		st.CompactionDebt = onDisk - st.BytesLive - headers
	}
	return st
}

// RegisterMetrics exposes the store's counters and levels on reg under the
// xvtpm_store_* namespace. Values are read live at exposition time.
func (s *Store) RegisterMetrics(reg *metrics.Registry) error {
	type gaugeDef struct {
		name string
		help string
		fn   func(Stats) float64
	}
	defs := []gaugeDef{
		{"xvtpm_store_puts_total", "Blob Put operations accepted by the log store.",
			func(st Stats) float64 { return float64(st.Puts) }},
		{"xvtpm_store_commits_total", "Group commits (device syncs) performed.",
			func(st Stats) float64 { return float64(st.Commits) }},
		{"xvtpm_store_coalesce_ratio", "Mean records per group commit.",
			func(st Stats) float64 { return st.CoalesceRatio() }},
		{"xvtpm_store_bytes_appended_total", "Log bytes written, including compaction rewrites.",
			func(st Stats) float64 { return float64(st.BytesAppended) }},
		{"xvtpm_store_bytes_live", "Framed bytes of index-reachable records.",
			func(st Stats) float64 { return float64(st.BytesLive) }},
		{"xvtpm_store_bytes_on_disk", "Total device footprint across segments.",
			func(st Stats) float64 { return float64(st.BytesOnDisk) }},
		{"xvtpm_store_compaction_debt_bytes", "Dead bytes awaiting compaction.",
			func(st Stats) float64 { return float64(st.CompactionDebt) }},
		{"xvtpm_store_segments", "Current segment count.",
			func(st Stats) float64 { return float64(st.Segments) }},
		{"xvtpm_store_compactions_total", "Compaction passes completed.",
			func(st Stats) float64 { return float64(st.Compactions) }},
		{"xvtpm_store_write_amplification", "Log bytes written per user payload byte.",
			func(st Stats) float64 { return st.WriteAmplification() }},
	}
	for _, d := range defs {
		d := d
		if err := reg.RegisterGaugeFunc(d.name, d.help, func() float64 { return d.fn(s.Stats()) }); err != nil {
			return err
		}
	}
	return nil
}
