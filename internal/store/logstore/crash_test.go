package logstore

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

// Package-level crash-consistency tests: tear the modeled device at every
// nasty point and prove recovery keeps each committed generation except the
// torn tail. The end-to-end variants (through the vTPM manager and the
// fault injector) live in the repo-root crash_test.go and chaos_test.go.

// buildLog writes names n00..n(count-1), each through gens generations, into
// a small-segment store and returns it. Every Put has returned, so every
// generation counts as committed.
func buildLog(t *testing.T, count, gens, blobLen int) *Store {
	t.Helper()
	s := New(Config{SegmentSize: 1 << 10, DisableAutoCompact: true})
	for g := 0; g < gens; g++ {
		for i := 0; i < count; i++ {
			blob := bytes.Repeat([]byte{byte(g)}, blobLen)
			if err := s.Put(fmt.Sprintf("n%02d", i), blob); err != nil {
				t.Fatalf("Put: %v", err)
			}
		}
	}
	return s
}

// verifyRecovered checks that every name survives with its final or an
// earlier committed generation, and returns how many fell back.
func verifyRecovered(t *testing.T, re *Store, count, gens, blobLen int) (fallbacks int) {
	t.Helper()
	for i := 0; i < count; i++ {
		name := fmt.Sprintf("n%02d", i)
		got, err := re.Get(name)
		if err != nil {
			t.Fatalf("committed name %s lost entirely: %v", name, err)
		}
		if len(got) != blobLen {
			t.Fatalf("%s recovered with %d bytes, want %d", name, len(got), blobLen)
		}
		g := int(got[0])
		if g >= gens || !bytes.Equal(got, bytes.Repeat([]byte{byte(g)}, blobLen)) {
			t.Fatalf("%s recovered with torn/unknown content (gen byte %d)", name, g)
		}
		if g != gens-1 {
			fallbacks++
		}
	}
	return fallbacks
}

func TestCrashTornWriteMidRecord(t *testing.T) {
	const count, gens, blobLen = 8, 3, 200
	s := buildLog(t, count, gens, blobLen)
	disk := s.Disk()
	// Cut into the middle of the final record: a tear smaller than one
	// record frame leaves the last record half-written.
	disk.TruncateTail(blobLen / 2)
	re, rs, err := Open(disk, Config{DisableAutoCompact: true})
	if err != nil {
		t.Fatalf("Open after tear: %v", err)
	}
	if rs.DroppedBytes == 0 {
		t.Fatalf("tear not detected: %+v", rs)
	}
	if fallbacks := verifyRecovered(t, re, count, gens, blobLen); fallbacks > 1 {
		t.Fatalf("%d names fell back, a mid-record tear can only claim the final record", fallbacks)
	}
}

func TestCrashTornWriteAcrossSegmentBoundary(t *testing.T) {
	const count, gens, blobLen = 8, 3, 200
	s := buildLog(t, count, gens, blobLen)
	disk := s.Disk()
	segBytes := disk.SegmentBytes()
	if len(segBytes) < 2 {
		t.Fatalf("need >= 2 segments for a boundary tear, have %d", len(segBytes))
	}
	// Erase the whole tail segment and tear into the one before it.
	disk.TruncateTail(segBytes[len(segBytes)-1] + 40)
	re, rs, err := Open(disk, Config{DisableAutoCompact: true})
	if err != nil {
		t.Fatalf("Open after boundary tear: %v", err)
	}
	if rs.DroppedBytes == 0 {
		t.Fatalf("tear not detected: %+v", rs)
	}
	verifyRecovered(t, re, count, gens, blobLen)
}

func TestCrashTruncatedTailSegment(t *testing.T) {
	const count, gens, blobLen = 8, 3, 200
	s := buildLog(t, count, gens, blobLen)
	disk := s.Disk()
	before := disk.Segments()
	disk.DropTailSegment()
	re, _, err := Open(disk, Config{DisableAutoCompact: true})
	if err != nil {
		t.Fatalf("Open after lost tail segment: %v", err)
	}
	if disk.Segments() != before-1 {
		t.Fatalf("segment count %d, want %d", disk.Segments(), before-1)
	}
	verifyRecovered(t, re, count, gens, blobLen)
}

func TestCrashDropsOnlyUnsyncedBytes(t *testing.T) {
	// Crash() models power loss at the durability watermarks: everything a
	// returned Put covered must survive, because Put returns post-sync.
	s := New(Config{SegmentSize: 1 << 10, DisableAutoCompact: true})
	for i := 0; i < 16; i++ {
		if err := s.Put(fmt.Sprintf("n%02d", i), bytes.Repeat([]byte{7}, 100)); err != nil {
			t.Fatal(err)
		}
	}
	disk := s.Disk()
	disk.Crash()
	re, rs, err := Open(disk, Config{})
	if err != nil {
		t.Fatalf("Open after crash: %v", err)
	}
	if rs.DroppedBytes != 0 {
		t.Fatalf("crash at watermarks dropped %d bytes; all puts had returned", rs.DroppedBytes)
	}
	if re.Len() != 16 {
		t.Fatalf("recovered %d names, want 16", re.Len())
	}
}

func TestCrashMidLogCorruptionAbandonsSegmentTail(t *testing.T) {
	const count, gens, blobLen = 8, 3, 200
	s := buildLog(t, count, gens, blobLen)
	disk := s.Disk()
	// Flip a bit early in the log body (first segment, inside the first
	// record). Recovery must survive, drop the poisoned segment's tail, and
	// still serve newer generations from later segments.
	disk.Corrupt(segHdrLen + recFrameLen + 3)
	re, rs, err := Open(disk, Config{DisableAutoCompact: true})
	if err != nil {
		t.Fatalf("Open after corruption: %v", err)
	}
	if rs.DamagedSegments == 0 || rs.DroppedBytes == 0 {
		t.Fatalf("corruption not reported: %+v", rs)
	}
	// Gen-0 records in the damaged segment are shadowed by gens 1-2 in
	// later segments, so every name must still resolve.
	if fallbacks := verifyRecovered(t, re, count, gens, blobLen); fallbacks != 0 {
		t.Fatalf("%d fallbacks; newest generations live outside the damaged segment", fallbacks)
	}
}

func TestRecoveredStoreKeepsWriting(t *testing.T) {
	// After a torn-tail recovery the store must accept new writes without
	// resurrecting half-records or colliding generations.
	const count, gens, blobLen = 8, 3, 200
	s := buildLog(t, count, gens, blobLen)
	disk := s.Disk()
	disk.TruncateTail(30)
	re, _, err := Open(disk, Config{SegmentSize: 1 << 10, DisableAutoCompact: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := re.Put("n00", []byte("fresh")); err != nil {
		t.Fatalf("Put after recovery: %v", err)
	}
	re2, rs, err := Open(disk, Config{})
	if err != nil {
		t.Fatalf("second reopen: %v", err)
	}
	if rs.DroppedBytes != 0 {
		t.Fatalf("second reopen found damage (%+v): the first recovery must truncate the torn tail", rs)
	}
	got, err := re2.Get("n00")
	if err != nil || string(got) != "fresh" {
		t.Fatalf("post-recovery write lost: %q err=%v", got, err)
	}
}

func TestDamagedHeaderSegmentDropped(t *testing.T) {
	s := buildLog(t, 4, 2, 200)
	disk := s.Disk()
	// Smash the tail segment's magic.
	disk.mu.Lock()
	tail := disk.segs[len(disk.segs)-1]
	tail.data[0] ^= 0xFF
	disk.mu.Unlock()
	re, rs, err := Open(disk, Config{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if rs.DamagedSegments == 0 {
		t.Fatal("damaged header not reported")
	}
	// Every name still resolves to some committed generation.
	for i := 0; i < 4; i++ {
		if _, err := re.Get(fmt.Sprintf("n%02d", i)); err != nil && !errors.Is(err, ErrNotFound) {
			t.Fatalf("Get: %v", err)
		}
	}
}
