package logstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sync"
)

// On-disk format. A segment is a bounded append-only byte region:
//
//	segment := header record*
//	header  := "XSEG" ∥ u16 version ∥ u64 segment-id          (14 bytes)
//	record  := u32 crc ∥ u32 bodyLen ∥ body
//	body    := u8 kind ∥ u64 generation ∥ u16 nameLen ∥ name ∥ data
//
// All integers are big-endian. The CRC (IEEE CRC32) covers bodyLen and the
// body, so a record whose length field was torn fails the checksum just like
// one whose payload was. Records never span segments: a record that does not
// fit in the active segment seals it and opens a new one, so every record can
// be recovered from its segment alone.
const (
	segMagic   = "XSEG"
	segVersion = 1
	segHdrLen  = 4 + 2 + 8

	recFrameLen = 4 + 4     // crc + bodyLen
	recMetaLen  = 1 + 8 + 2 // kind + generation + nameLen
	recMinLen   = recFrameLen + recMetaLen

	kindPut    = 1
	kindDelete = 2

	// maxNameLen / maxDataLen bound a single record. They exist so the
	// recovery scanner can reject a damaged length field without attempting
	// an absurd allocation, and so Put fails loudly instead of writing a
	// record recovery would refuse.
	maxNameLen = 1 << 12
	maxDataLen = 64 << 20
)

// recordSize returns the encoded size of a record carrying name and dataLen
// payload bytes.
func recordSize(nameLen, dataLen int) int {
	return recMinLen + nameLen + dataLen
}

// appendSegmentHeader appends a segment header for segment id to dst.
func appendSegmentHeader(dst []byte, id uint64) []byte {
	dst = append(dst, segMagic...)
	dst = binary.BigEndian.AppendUint16(dst, segVersion)
	dst = binary.BigEndian.AppendUint64(dst, id)
	return dst
}

// appendRecord encodes one record to dst and returns the extended slice.
// The caller guarantees name/data are within the max bounds.
func appendRecord(dst []byte, kind byte, gen uint64, name string, data []byte) []byte {
	bodyLen := recMetaLen + len(name) + len(data)
	start := len(dst)
	dst = binary.BigEndian.AppendUint32(dst, 0) // crc, patched below
	dst = binary.BigEndian.AppendUint32(dst, uint32(bodyLen))
	dst = append(dst, kind)
	dst = binary.BigEndian.AppendUint64(dst, gen)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(name)))
	dst = append(dst, name...)
	dst = append(dst, data...)
	crc := crc32.ChecksumIEEE(dst[start+4:])
	binary.BigEndian.PutUint32(dst[start:start+4], crc)
	return dst
}

// rec is one parsed record, with offsets relative to its segment start.
type rec struct {
	kind    byte
	gen     uint64
	name    string
	off     int // record start (the CRC word)
	size    int // full framed size
	dataOff int // payload start
	dataLen int
}

// parseRecord decodes the record starting at off in data. It returns the
// record and true on success; false means the bytes at off are not a whole,
// well-formed record — torn tail, damaged frame, or plain garbage. It never
// panics on arbitrary input (fuzzed by FuzzWALRecordParse).
func parseRecord(data []byte, off int) (rec, bool) {
	if off < 0 || off > len(data)-recFrameLen {
		return rec{}, false
	}
	crc := binary.BigEndian.Uint32(data[off:])
	bodyLen := int(binary.BigEndian.Uint32(data[off+4:]))
	if bodyLen < recMetaLen || bodyLen > recMetaLen+maxNameLen+maxDataLen {
		return rec{}, false
	}
	end := off + recFrameLen + bodyLen
	if end > len(data) || end < off {
		return rec{}, false
	}
	if crc32.ChecksumIEEE(data[off+4:end]) != crc {
		return rec{}, false
	}
	body := data[off+recFrameLen : end]
	kind := body[0]
	if kind != kindPut && kind != kindDelete {
		return rec{}, false
	}
	gen := binary.BigEndian.Uint64(body[1:])
	nameLen := int(binary.BigEndian.Uint16(body[9:]))
	if nameLen > maxNameLen || recMetaLen+nameLen > bodyLen {
		return rec{}, false
	}
	name := string(body[recMetaLen : recMetaLen+nameLen])
	return rec{
		kind:    kind,
		gen:     gen,
		name:    name,
		off:     off,
		size:    recFrameLen + bodyLen,
		dataOff: off + recFrameLen + recMetaLen + nameLen,
		dataLen: bodyLen - recMetaLen - nameLen,
	}, true
}

// scanSegment walks every well-formed record in a segment body, calling emit
// for each. It returns the number of bytes abandoned after the last good
// record. Scanning stops at the first byte position that does not parse as a
// record: past damage, record boundaries cannot be trusted, so the remainder
// of the segment is dropped rather than resynchronized (the durability
// argument for this is in DESIGN.md — damage only ever occurs at the global
// log tail in the crash model, and mid-log damage is surfaced via recovery
// stats while envelope authentication backstops integrity).
func scanSegment(data []byte, emit func(rec)) (dropped int) {
	off := segHdrLen
	for off < len(data) {
		r, ok := parseRecord(data, off)
		if !ok {
			return len(data) - off
		}
		emit(r)
		off += r.size
	}
	return 0
}

// parseSegmentHeader validates a segment header and returns the segment id.
func parseSegmentHeader(data []byte) (uint64, error) {
	if len(data) < segHdrLen {
		return 0, fmt.Errorf("logstore: segment shorter than header (%d bytes)", len(data))
	}
	if string(data[:4]) != segMagic {
		return 0, fmt.Errorf("logstore: bad segment magic %q", data[:4])
	}
	if v := binary.BigEndian.Uint16(data[4:]); v != segVersion {
		return 0, fmt.Errorf("logstore: unsupported segment version %d", v)
	}
	return binary.BigEndian.Uint64(data[6:]), nil
}

// diskSegment is one segment region on the modeled device. synced is the
// durable watermark: bytes past it are lost by Crash().
type diskSegment struct {
	id     uint64
	data   []byte
	synced int
}

// Disk models the dom0 block device under the log: an ordered list of
// segment regions with per-segment durable watermarks. It exists as its own
// type so crash-consistency tests can tear the byte stream at arbitrary
// points — mid-record, across a segment boundary, or by dropping the tail
// segment — exactly like the PR-3 fault injector tears blob writes.
//
// A Disk must be attached to at most one live Store. The mutating test hooks
// (Crash, TruncateTail, DropTailSegment, Corrupt) are for quiesced disks
// only: detach or close the owning store first.
type Disk struct {
	mu        sync.Mutex
	segs      []*diskSegment
	nextSegID uint64
}

// NewDisk creates an empty device.
func NewDisk() *Disk { return &Disk{} }

// Segments reports how many segment regions exist.
func (d *Disk) Segments() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.segs)
}

// SegmentBytes reports each segment's current length in order.
func (d *Disk) SegmentBytes() []int {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]int, len(d.segs))
	for i, s := range d.segs {
		out[i] = len(s.data)
	}
	return out
}

// Bytes reports the total bytes across all segments.
func (d *Disk) Bytes() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.bytesLocked()
}

func (d *Disk) bytesLocked() int {
	n := 0
	for _, s := range d.segs {
		n += len(s.data)
	}
	return n
}

// SyncedBytes reports the total durable bytes across all segments.
func (d *Disk) SyncedBytes() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	for _, s := range d.segs {
		n += s.synced
	}
	return n
}

// Crash discards everything past the durable watermarks, modeling power
// loss: each segment is truncated to its synced prefix and empty segments
// are removed. The store that was writing this disk must be discarded; call
// Open to recover.
func (d *Disk) Crash() {
	d.mu.Lock()
	defer d.mu.Unlock()
	kept := d.segs[:0]
	for _, s := range d.segs {
		s.data = s.data[:s.synced]
		if len(s.data) > 0 {
			kept = append(kept, s)
		}
	}
	d.segs = kept
}

// TruncateTail removes the last n bytes of the global byte stream, spanning
// segment boundaries: a small n tears the final record mid-body, a larger n
// erases the tail segment entirely and tears into the one before it.
// Segments truncated to zero are removed.
func (d *Disk) TruncateTail(n int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for i := len(d.segs) - 1; i >= 0 && n > 0; i-- {
		s := d.segs[i]
		cut := n
		if cut > len(s.data) {
			cut = len(s.data)
		}
		s.data = s.data[:len(s.data)-cut]
		if s.synced > len(s.data) {
			s.synced = len(s.data)
		}
		n -= cut
		if len(s.data) == 0 {
			d.segs = d.segs[:i]
		}
	}
}

// DropTailSegment removes the final segment region wholesale — the
// "truncated tail segment" crash case where the filesystem lost the last
// extent.
func (d *Disk) DropTailSegment() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.segs) > 0 {
		d.segs = d.segs[:len(d.segs)-1]
	}
}

// Corrupt flips one bit at global byte offset off, modeling silent media
// damage inside the log body.
func (d *Disk) Corrupt(off int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, s := range d.segs {
		if off < len(s.data) {
			s.data[off] ^= 0x40
			return
		}
		off -= len(s.data)
	}
}

// addSegment opens a fresh segment region and returns it. Caller holds d.mu.
func (d *Disk) addSegmentLocked() *diskSegment {
	s := &diskSegment{id: d.nextSegID}
	s.data = appendSegmentHeader(nil, s.id)
	d.nextSegID++
	d.segs = append(d.segs, s)
	return s
}

// syncLocked marks every written byte durable. Caller holds d.mu.
func (d *Disk) syncLocked() {
	for _, s := range d.segs {
		s.synced = len(s.data)
	}
}
