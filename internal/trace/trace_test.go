package trace

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func span(i int) Span {
	return Span{
		Instance:  1,
		Dom:       7,
		Ordinal:   uint32(i),
		Start:     time.Unix(0, int64(i)),
		QueueWait: time.Duration(i),
		Execute:   time.Duration(2 * i),
		Flush:     time.Duration(3 * i),
	}
}

func TestRingBoundedAndOrdered(t *testing.T) {
	tr := New(Config{Depth: 4})
	r := tr.NewRing()
	if r == nil {
		t.Fatal("NewRing returned nil for enabled tracer")
	}
	// Under capacity: everything retained, oldest first.
	for i := 1; i <= 3; i++ {
		r.Record(span(i))
	}
	got := r.Snapshot()
	if len(got) != 3 {
		t.Fatalf("len = %d, want 3", len(got))
	}
	for i, s := range got {
		if s.Ordinal != uint32(i+1) || s.Seq != uint64(i+1) {
			t.Errorf("span %d = ordinal %d seq %d", i, s.Ordinal, s.Seq)
		}
	}
	// Past capacity: bounded at depth, oldest dropped, order kept.
	for i := 4; i <= 10; i++ {
		r.Record(span(i))
	}
	got = r.Snapshot()
	if len(got) != 4 {
		t.Fatalf("len after wrap = %d, want depth 4", len(got))
	}
	for i, s := range got {
		if want := uint32(7 + i); s.Ordinal != want {
			t.Errorf("span %d ordinal = %d, want %d", i, s.Ordinal, want)
		}
	}
	if r.Total() != 10 {
		t.Errorf("Total = %d, want 10", r.Total())
	}
	if r.Len() != 4 {
		t.Errorf("Len = %d, want 4", r.Len())
	}
}

func TestSpanTotal(t *testing.T) {
	s := Span{QueueWait: 1, Execute: 2, Flush: 3}
	if s.Total() != 6 {
		t.Fatalf("Total = %d", s.Total())
	}
}

func TestDisabledTracer(t *testing.T) {
	tr := New(Config{Depth: -1})
	if tr.Enabled() {
		t.Error("negative depth should disable tracing")
	}
	if tr.NewRing() != nil {
		t.Error("disabled tracer minted a ring")
	}
	if tr.Sample() {
		t.Error("disabled tracer sampled")
	}
	var nilTracer *Tracer
	if nilTracer.Enabled() || nilTracer.Sample() {
		t.Error("nil tracer must be inert")
	}
}

func TestDefaultDepth(t *testing.T) {
	tr := New(Config{})
	r := tr.NewRing()
	for i := 0; i < DefaultDepth+10; i++ {
		r.Record(span(i))
	}
	if r.Len() != DefaultDepth {
		t.Fatalf("Len = %d, want DefaultDepth %d", r.Len(), DefaultDepth)
	}
}

// TestSamplingDeterministicAndProportional locks the seeded-sampling
// contract: the same seed yields the same decision stream, a different
// seed a different one, and the kept fraction tracks 1/rate.
func TestSamplingDeterministicAndProportional(t *testing.T) {
	draw := func(seed int64, rate, n int) []bool {
		tr := New(Config{SampleRate: rate, Seed: seed})
		out := make([]bool, n)
		for i := range out {
			out[i] = tr.Sample()
		}
		return out
	}
	const n = 4096
	a := draw(42, 16, n)
	b := draw(42, 16, n)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	c := draw(43, 16, n)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical decision streams")
	}
	kept := 0
	for _, v := range a {
		if v {
			kept++
		}
	}
	// Expect n/16 = 256 ± a generous 50%.
	if kept < 128 || kept > 384 {
		t.Errorf("rate 16 kept %d of %d draws", kept, n)
	}

	// Rate 1 (and the zero default) keep everything.
	for _, rate := range []int{0, 1} {
		tr := New(Config{SampleRate: rate})
		for i := 0; i < 100; i++ {
			if !tr.Sample() {
				t.Fatalf("rate %d dropped a draw", rate)
			}
		}
	}
}

// TestRingConcurrentRecord races Record against Snapshot under -race and
// checks no span count is lost and snapshots are never torn.
func TestRingConcurrentRecord(t *testing.T) {
	tr := New(Config{Depth: 32})
	r := tr.NewRing()
	const workers = 4
	const perWorker = 1000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				snap := r.Snapshot()
				for i := 1; i < len(snap); i++ {
					if snap[i].Seq != snap[i-1].Seq+1 {
						t.Errorf("torn snapshot: seq %d after %d", snap[i].Seq, snap[i-1].Seq)
						return
					}
				}
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Record(span(w*perWorker + i))
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	if got := r.Total(); got != workers*perWorker {
		t.Fatalf("Total = %d, want %d", got, workers*perWorker)
	}
}

func TestRecordDoesNotAllocate(t *testing.T) {
	tr := New(Config{})
	r := tr.NewRing()
	s := span(9)
	if got := testing.AllocsPerRun(1000, func() { r.Record(s) }); got != 0 {
		t.Fatalf("Record allocates %.2f objects/op, want 0", got)
	}
	if got := testing.AllocsPerRun(1000, func() { tr.Sample() }); got != 0 {
		t.Fatalf("Sample allocates %.2f objects/op, want 0", got)
	}
}

// Spans must serialize cleanly for the /debug/vtpm JSON dump.
func TestSpanJSONRoundTrip(t *testing.T) {
	in := Span{Seq: 3, Instance: 2, Dom: 5, Ordinal: 0x14, Health: 1,
		Mutated: true, Start: time.Unix(100, 0).UTC(),
		QueueWait: time.Microsecond, Execute: 2 * time.Microsecond}
	blob, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Span
	if err := json.Unmarshal(blob, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: got %+v, want %+v", out, in)
	}
}

func BenchmarkRingRecord(b *testing.B) {
	tr := New(Config{})
	r := tr.NewRing()
	s := span(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Record(s)
	}
}
