// Package trace is the per-command span recorder of the observability
// layer: a lightweight, fixed-memory flight recorder for the vTPM dispatch
// path. Each dispatched command can leave one Span — its ordinal, origin
// domain, health state at admission, and the phase breakdown the latency
// histograms aggregate away (queue-wait vs execute vs checkpoint-flush) —
// in a bounded per-instance ring of recent spans.
//
// Design constraints, in order:
//
//  1. Zero allocations on the record path. Spans are plain value structs
//     copied into a preallocated ring slot; recording takes one short
//     mutex hold and no heap traffic, so the alloc-guard budget of the
//     dispatch hot path is untouched.
//  2. Bounded memory. A ring holds Depth spans, period. A guest that
//     issues a million commands — or a chaos storm that quarantines and
//     revives instances all night — can never grow the recorder.
//  3. Deterministic sampling. The sampling decision stream is a pure
//     function of the tracer's seed (splitmix64), so a storm run replayed
//     with the same seed records the same spans, and the knob can dial
//     recording cost from every-command to off without rebuilding anything.
package trace

import (
	"sync"
	"sync/atomic"
	"time"
)

// Span is the record of one dispatched command. All fields are plain
// values: a Span is copied into and out of rings whole, never shared.
type Span struct {
	// Seq is the ring-local sequence number (1 = first span ever recorded
	// in that ring), so a JSON dump shows gaps when sampling skipped
	// commands.
	Seq uint64 `json:"seq"`
	// Instance and Dom identify the lane: vTPM instance and the guest
	// domain whose command this was.
	Instance uint32 `json:"instance"`
	Dom      uint32 `json:"dom"`
	// Ordinal is the TPM command ordinal (0 when admission failed before
	// the ordinal was decoded).
	Ordinal uint32 `json:"ordinal"`
	// Health is the instance's health state at dispatch (the integer value
	// of vtpm.HealthState; kept as a plain int to avoid an import cycle).
	Health uint8 `json:"health"`
	// Mutated marks commands that dirtied instance state; Denied marks
	// guard refusals and quarantine fences.
	Mutated bool `json:"mutated,omitempty"`
	Denied  bool `json:"denied,omitempty"`
	// SignErr marks a dispatch whose deferred signature failed in the
	// signing pool — the guest saw a TPM failure code; the cause is here
	// and in the manager's sign-error counter.
	SignErr bool `json:"sign_err,omitempty"`
	// Start is when the manager accepted the payload.
	Start time.Time `json:"start"`
	// The phase breakdown: QueueWait is time blocked on write-behind
	// backpressure before the instance lock; Execute is the locked section
	// (guard admission + engine execution + response finishing); Flush is
	// a synchronous checkpoint paid on the dispatch path (eager policy or
	// a degraded instance).
	QueueWait time.Duration `json:"queue_wait_ns"`
	Execute   time.Duration `json:"execute_ns"`
	// SignWait is time spent off-lane waiting for a pooled signature (the
	// instance lock is released for it, so it is not part of Execute).
	SignWait time.Duration `json:"sign_wait_ns,omitempty"`
	Flush    time.Duration `json:"flush_ns"`
}

// Total is the span's end-to-end dispatch time.
func (s Span) Total() time.Duration { return s.QueueWait + s.Execute + s.SignWait + s.Flush }

// Ring is a bounded buffer of the most recent spans of one instance.
// The zero value is unusable; obtain rings from a Tracer.
type Ring struct {
	mu    sync.Mutex
	spans []Span // preallocated to depth at construction
	n     uint64 // total spans ever recorded; spans[(n-1)%depth] is newest
}

// Record copies one span into the ring, overwriting the oldest when full.
// The ring assigns the stored copy's Seq. Taking the span by value keeps the
// caller's struct off the heap — the record path must never allocate.
func (r *Ring) Record(s Span) {
	r.mu.Lock()
	r.n++
	s.Seq = r.n
	r.spans[int((r.n-1)%uint64(len(r.spans)))] = s
	r.mu.Unlock()
}

// Total returns how many spans have ever been recorded (recorded, not
// retained: the ring keeps only the newest Depth of them).
func (r *Ring) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Len returns how many spans the ring currently retains.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lenLocked()
}

func (r *Ring) lenLocked() int {
	if r.n < uint64(len(r.spans)) {
		return int(r.n)
	}
	return len(r.spans)
}

// Snapshot copies the retained spans out in chronological order (oldest
// first). The copy is the caller's to keep; the ring keeps recording.
func (r *Ring) Snapshot() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	k := r.lenLocked()
	out := make([]Span, k)
	depth := uint64(len(r.spans))
	for i := 0; i < k; i++ {
		out[i] = r.spans[int((r.n-uint64(k)+uint64(i))%depth)]
	}
	return out
}

// Config parameterizes a Tracer.
type Config struct {
	// Depth is the per-instance ring capacity. Zero means DefaultDepth;
	// negative disables tracing entirely (NewRing returns nil and Sample
	// is always false — the knob the overhead ablation E14 turns).
	Depth int
	// SampleRate records one in every Rate commands on average: 1 traces
	// everything (the default when zero), 16 traces ~6%, and so on. The
	// decision stream is seeded, so a given rate and seed skip and keep
	// the same draws on every run.
	SampleRate int
	// Seed roots the sampling decision stream. The zero seed is valid and
	// deterministic like any other.
	Seed int64
}

// DefaultDepth is the per-instance ring capacity when Config.Depth is zero:
// deep enough to hold a burst, small enough (~100B/span) to keep thousands
// of instances cheap.
const DefaultDepth = 64

// Tracer owns the sampling knob and mints per-instance rings. Safe for
// concurrent use.
type Tracer struct {
	depth int
	rate  uint64
	state atomic.Uint64 // splitmix64 walk; advanced once per Sample call
}

// New creates a tracer from cfg.
func New(cfg Config) *Tracer {
	t := &Tracer{depth: cfg.Depth, rate: 1}
	if cfg.Depth == 0 {
		t.depth = DefaultDepth
	}
	if cfg.SampleRate > 1 {
		t.rate = uint64(cfg.SampleRate)
	}
	t.state.Store(uint64(cfg.Seed))
	return t
}

// Enabled reports whether this tracer records at all.
func (t *Tracer) Enabled() bool { return t != nil && t.depth > 0 }

// NewRing mints a ring for one instance (nil when tracing is disabled —
// Record must then be skipped, which Sample already guarantees).
func (t *Tracer) NewRing() *Ring {
	if !t.Enabled() {
		return nil
	}
	return &Ring{spans: make([]Span, t.depth)}
}

// splitmix64 is the output mix of the SplitMix64 generator — one multiply
// chain, no state beyond the input.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Sample decides whether the current command is traced. Lock-free and
// allocation-free: one atomic add plus the splitmix64 mix. With rate 1 it
// is always true; with tracing disabled always false. Under concurrency
// the interleaving of draws across goroutines follows the scheduler, but
// the draw *stream* itself is still the seeded sequence, so the sampled
// fraction — and a sequential replay — are deterministic.
func (t *Tracer) Sample() bool {
	if !t.Enabled() {
		return false
	}
	if t.rate <= 1 {
		return true
	}
	x := t.state.Add(0x9e3779b97f4a7c15)
	return splitmix64(x)%t.rate == 0
}
