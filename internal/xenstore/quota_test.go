package xenstore

import (
	"errors"
	"fmt"
	"testing"

	"xvtpm/internal/xen"
)

// guestRoot prepares a writable home directory for a guest.
func guestRoot(t *testing.T, s *Store, dom xen.DomID) string {
	t.Helper()
	base := fmt.Sprintf("/local/domain/%d", dom)
	if err := s.Write(xen.Dom0, NoTxn, base+"/name", []byte("g")); err != nil {
		t.Fatal(err)
	}
	if err := s.SetPerms(xen.Dom0, NoTxn, base, Perms{Owner: dom}); err != nil {
		t.Fatal(err)
	}
	return base
}

func TestNodeQuotaEnforcedOnGuests(t *testing.T) {
	s := New()
	s.SetNodeQuota(10)
	base := guestRoot(t, s, domA)
	// The guest owns its base dir (1 node). It can create until the quota.
	created := 0
	var err error
	for i := 0; i < 64; i++ {
		err = s.Write(domA, NoTxn, fmt.Sprintf("%s/n%02d", base, i), []byte("v"))
		if err != nil {
			break
		}
		created++
	}
	if !errors.Is(err, ErrQuota) {
		t.Fatalf("err = %v, want ErrQuota", err)
	}
	if got := s.OwnedNodes(domA); got > 10 {
		t.Fatalf("guest owns %d nodes, quota 10", got)
	}
	if created == 0 {
		t.Fatal("no nodes created before quota")
	}
	// Overwriting an existing node is not creation and stays allowed.
	if err := s.Write(domA, NoTxn, base+"/n00", []byte("new")); err != nil {
		t.Fatalf("overwrite within quota: %v", err)
	}
	// Removing nodes frees quota.
	if err := s.Remove(domA, NoTxn, base+"/n00"); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(domA, NoTxn, base+"/fresh", []byte("v")); err != nil {
		t.Fatalf("create after free: %v", err)
	}
}

func TestNodeQuotaExemptsDom0(t *testing.T) {
	s := New()
	s.SetNodeQuota(4)
	for i := 0; i < 50; i++ {
		if err := s.Write(xen.Dom0, NoTxn, fmt.Sprintf("/sys/n%02d", i), []byte("v")); err != nil {
			t.Fatalf("dom0 write %d: %v", i, err)
		}
	}
}

func TestNodeQuotaAppliesInsideTransactions(t *testing.T) {
	s := New()
	s.SetNodeQuota(6)
	base := guestRoot(t, s, domA)
	tx := s.TxnStart(domA)
	var err error
	for i := 0; i < 32; i++ {
		err = s.Write(domA, tx, fmt.Sprintf("%s/t%02d", base, i), []byte("v"))
		if err != nil {
			break
		}
	}
	if !errors.Is(err, ErrQuota) {
		t.Fatalf("txn err = %v, want ErrQuota", err)
	}
	s.TxnAbort(domA, tx)
}

func TestValueSizeLimit(t *testing.T) {
	s := New()
	base := guestRoot(t, s, domA)
	big := make([]byte, MaxValueSize+1)
	if err := s.Write(domA, NoTxn, base+"/big", big); !errors.Is(err, ErrTooLong) {
		t.Fatalf("err = %v, want ErrTooLong", err)
	}
	if err := s.Write(domA, NoTxn, base+"/ok", make([]byte, MaxValueSize)); err != nil {
		t.Fatalf("max-size value refused: %v", err)
	}
	// Dom0 is exempt (the manager writes nothing huge, but tooling may).
	if err := s.Write(xen.Dom0, NoTxn, "/sys/big", big); err != nil {
		t.Fatalf("dom0 large write: %v", err)
	}
}

func TestQuotaDisabled(t *testing.T) {
	s := New()
	s.SetNodeQuota(0)
	base := guestRoot(t, s, domA)
	for i := 0; i < 300; i++ {
		if err := s.Write(domA, NoTxn, fmt.Sprintf("%s/n%03d", base, i), []byte("v")); err != nil {
			t.Fatalf("write %d with quota disabled: %v", i, err)
		}
	}
}
