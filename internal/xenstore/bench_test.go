package xenstore

import (
	"fmt"
	"testing"

	"xvtpm/internal/xen"
)

// BenchmarkWrite measures one direct store write.
func BenchmarkWrite(b *testing.B) {
	s := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := s.Write(xen.Dom0, NoTxn, fmt.Sprintf("/bench/key%d", i%256), []byte("value")); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRead measures one store read.
func BenchmarkRead(b *testing.B) {
	s := New()
	if err := s.Write(xen.Dom0, NoTxn, "/bench/key", []byte("value")); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Read(xen.Dom0, NoTxn, "/bench/key"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTxnCommit measures a three-key transactional handshake (the
// split-driver connection pattern).
func BenchmarkTxnCommit(b *testing.B) {
	s := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		err := s.WithTxn(xen.Dom0, 4, func(id TxnID) error {
			if err := s.Write(xen.Dom0, id, "/dev/ring-ref", []byte("8")); err != nil {
				return err
			}
			if err := s.Write(xen.Dom0, id, "/dev/event-channel", []byte("3")); err != nil {
				return err
			}
			return s.Write(xen.Dom0, id, "/dev/state", []byte("4"))
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWatchFire measures mutation delivery to a subtree watch.
func BenchmarkWatchFire(b *testing.B) {
	s := New()
	w, err := s.Watch(xen.Dom0, "/dev")
	if err != nil {
		b.Fatal(err)
	}
	<-w.Events() // initial
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Write(xen.Dom0, NoTxn, "/dev/state", []byte{byte(i)}); err != nil {
			b.Fatal(err)
		}
		<-w.Events()
	}
}
