package xenstore

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"xvtpm/internal/xen"
)

const (
	dom0  = xen.Dom0
	domA  = xen.DomID(3)
	domB  = xen.DomID(7)
	noTxn = NoTxn
)

func TestWriteReadRoundTrip(t *testing.T) {
	s := New()
	if err := s.Write(dom0, noTxn, "/local/domain/3/name", []byte("guest-a")); err != nil {
		t.Fatal(err)
	}
	v, err := s.Read(dom0, noTxn, "/local/domain/3/name")
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "guest-a" {
		t.Fatalf("read %q", v)
	}
}

func TestReadMissingNode(t *testing.T) {
	s := New()
	if _, err := s.Read(dom0, noTxn, "/nope"); !errors.Is(err, ErrNoEnt) {
		t.Fatalf("err = %v", err)
	}
}

func TestBadPaths(t *testing.T) {
	s := New()
	for _, p := range []string{"", "relative", "/a//b", "/a/./b", "/a/../b"} {
		if err := s.Write(dom0, noTxn, p, nil); !errors.Is(err, ErrBadPath) {
			t.Errorf("Write(%q) err = %v, want ErrBadPath", p, err)
		}
	}
	if err := s.Write(dom0, noTxn, "/", nil); !errors.Is(err, ErrBadPath) {
		t.Errorf("write root err = %v", err)
	}
	if err := s.Remove(dom0, noTxn, "/"); !errors.Is(err, ErrBadPath) {
		t.Errorf("remove root err = %v", err)
	}
}

func TestListSorted(t *testing.T) {
	s := New()
	for _, k := range []string{"zeta", "alpha", "mid"} {
		if err := s.Write(dom0, noTxn, "/dir/"+k, []byte("1")); err != nil {
			t.Fatal(err)
		}
	}
	names, err := s.List(dom0, noTxn, "/dir")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"alpha", "mid", "zeta"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Fatalf("names = %v", names)
	}
}

func TestOwnershipAndPermissions(t *testing.T) {
	s := New()
	// dom0 creates a private area for domA.
	if err := s.Write(dom0, noTxn, "/local/domain/3/device/vtpm/0/ring-ref", []byte("8")); err != nil {
		t.Fatal(err)
	}
	if err := s.SetPerms(dom0, noTxn, "/local/domain/3/device/vtpm/0/ring-ref", Perms{
		Owner:   domA,
		Default: PermNone,
	}); err != nil {
		t.Fatal(err)
	}
	// Owner can read and write.
	if _, err := s.Read(domA, noTxn, "/local/domain/3/device/vtpm/0/ring-ref"); err != nil {
		t.Fatalf("owner read: %v", err)
	}
	if err := s.Write(domA, noTxn, "/local/domain/3/device/vtpm/0/ring-ref", []byte("9")); err != nil {
		t.Fatalf("owner write: %v", err)
	}
	// Stranger cannot.
	if _, err := s.Read(domB, noTxn, "/local/domain/3/device/vtpm/0/ring-ref"); !errors.Is(err, ErrPerm) {
		t.Fatalf("stranger read err = %v", err)
	}
	if err := s.Write(domB, noTxn, "/local/domain/3/device/vtpm/0/ring-ref", []byte("6")); !errors.Is(err, ErrPerm) {
		t.Fatalf("stranger write err = %v", err)
	}
	// ACL entry opens read-only access for domB.
	if err := s.SetPerms(domA, noTxn, "/local/domain/3/device/vtpm/0/ring-ref", Perms{
		Owner:   domA,
		Default: PermNone,
		ACL:     map[xen.DomID]PermBits{domB: PermRead},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read(domB, noTxn, "/local/domain/3/device/vtpm/0/ring-ref"); err != nil {
		t.Fatalf("ACL read: %v", err)
	}
	if err := s.Write(domB, noTxn, "/local/domain/3/device/vtpm/0/ring-ref", []byte("6")); !errors.Is(err, ErrPerm) {
		t.Fatalf("ACL write err = %v", err)
	}
	// Dom0 is always privileged.
	if _, err := s.Read(dom0, noTxn, "/local/domain/3/device/vtpm/0/ring-ref"); err != nil {
		t.Fatalf("dom0 read: %v", err)
	}
}

func TestSetPermsOnlyOwnerOrDom0(t *testing.T) {
	s := New()
	s.Write(dom0, noTxn, "/x", []byte("1"))
	s.SetPerms(dom0, noTxn, "/x", Perms{Owner: domA, Default: PermRead})
	if err := s.SetPerms(domB, noTxn, "/x", Perms{Owner: domB}); !errors.Is(err, ErrPerm) {
		t.Fatalf("err = %v", err)
	}
	if err := s.SetPerms(domA, noTxn, "/x", Perms{Owner: domA, Default: PermBoth}); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveSubtreeAndOwnership(t *testing.T) {
	s := New()
	s.Write(dom0, noTxn, "/a/b/c", []byte("1"))
	s.SetPerms(dom0, noTxn, "/a/b", Perms{Owner: domA, Default: PermRead})
	if err := s.Remove(domB, noTxn, "/a/b"); !errors.Is(err, ErrPerm) {
		t.Fatalf("stranger remove err = %v", err)
	}
	if err := s.Remove(domA, noTxn, "/a/b"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read(dom0, noTxn, "/a/b/c"); !errors.Is(err, ErrNoEnt) {
		t.Fatalf("read removed err = %v", err)
	}
}

func TestGuestCannotCreateUnderProtectedDir(t *testing.T) {
	s := New()
	s.Write(dom0, noTxn, "/vm/policy", []byte("locked"))
	// Root default is read-only for guests; creating /vm2 must fail.
	if err := s.Write(domA, noTxn, "/vm2/evil", []byte("x")); !errors.Is(err, ErrPerm) {
		t.Fatalf("err = %v", err)
	}
}

func TestTransactionIsolationAndCommit(t *testing.T) {
	s := New()
	s.Write(dom0, noTxn, "/dev/state", []byte("1"))
	tx := s.TxnStart(dom0)
	if err := s.Write(dom0, tx, "/dev/state", []byte("2")); err != nil {
		t.Fatal(err)
	}
	// Not visible outside the transaction yet.
	v, _ := s.Read(dom0, noTxn, "/dev/state")
	if string(v) != "1" {
		t.Fatalf("outside view = %q", v)
	}
	if err := s.TxnCommit(dom0, tx); err != nil {
		t.Fatal(err)
	}
	v, _ = s.Read(dom0, noTxn, "/dev/state")
	if string(v) != "2" {
		t.Fatalf("after commit = %q", v)
	}
}

func TestTransactionConflict(t *testing.T) {
	s := New()
	s.Write(dom0, noTxn, "/dev/state", []byte("1"))
	tx := s.TxnStart(dom0)
	if _, err := s.Read(dom0, tx, "/dev/state"); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(dom0, tx, "/dev/state", []byte("2")); err != nil {
		t.Fatal(err)
	}
	// A direct write lands in between.
	if err := s.Write(dom0, noTxn, "/dev/state", []byte("99")); err != nil {
		t.Fatal(err)
	}
	if err := s.TxnCommit(dom0, tx); !errors.Is(err, ErrConflict) {
		t.Fatalf("commit err = %v, want conflict", err)
	}
	v, _ := s.Read(dom0, noTxn, "/dev/state")
	if string(v) != "99" {
		t.Fatalf("store = %q after failed commit", v)
	}
}

func TestTransactionNoFalseConflict(t *testing.T) {
	s := New()
	s.Write(dom0, noTxn, "/dev/a", []byte("1"))
	s.Write(dom0, noTxn, "/other/b", []byte("1"))
	tx := s.TxnStart(dom0)
	if err := s.Write(dom0, tx, "/dev/a", []byte("2")); err != nil {
		t.Fatal(err)
	}
	// Unrelated mutation must not abort the transaction.
	if err := s.Write(dom0, noTxn, "/other/b", []byte("2")); err != nil {
		t.Fatal(err)
	}
	if err := s.TxnCommit(dom0, tx); err != nil {
		t.Fatalf("commit err = %v", err)
	}
}

func TestTransactionAbort(t *testing.T) {
	s := New()
	s.Write(dom0, noTxn, "/k", []byte("1"))
	tx := s.TxnStart(dom0)
	s.Write(dom0, tx, "/k", []byte("2"))
	if err := s.TxnAbort(dom0, tx); err != nil {
		t.Fatal(err)
	}
	v, _ := s.Read(dom0, noTxn, "/k")
	if string(v) != "1" {
		t.Fatalf("after abort = %q", v)
	}
	if err := s.TxnCommit(dom0, tx); !errors.Is(err, ErrBadTxn) {
		t.Fatalf("commit aborted txn err = %v", err)
	}
}

func TestTxnOwnershipEnforced(t *testing.T) {
	s := New()
	tx := s.TxnStart(domA)
	if err := s.TxnCommit(domB, tx); !errors.Is(err, ErrPerm) {
		t.Fatalf("foreign commit err = %v", err)
	}
	if err := s.TxnAbort(dom0, tx); err != nil {
		t.Fatalf("dom0 abort: %v", err)
	}
}

func TestWithTxnRetriesOnConflict(t *testing.T) {
	s := New()
	s.Write(dom0, noTxn, "/ctr", []byte("0"))
	conflicted := false
	err := s.WithTxn(dom0, 5, func(id TxnID) error {
		v, err := s.Read(dom0, id, "/ctr")
		if err != nil {
			return err
		}
		if !conflicted {
			conflicted = true
			// Sabotage the first attempt.
			if err := s.Write(dom0, noTxn, "/ctr", []byte("sabotage")); err != nil {
				return err
			}
		}
		return s.Write(dom0, id, "/ctr", append(v, 'x'))
	})
	if err != nil {
		t.Fatalf("WithTxn: %v", err)
	}
	v, _ := s.Read(dom0, noTxn, "/ctr")
	if string(v) != "sabotagex" {
		t.Fatalf("final = %q", v)
	}
}

func drainInitial(t *testing.T, w *Watch) {
	t.Helper()
	select {
	case p := <-w.Events():
		if p != w.Path() {
			t.Fatalf("initial event = %q, want %q", p, w.Path())
		}
	default:
		t.Fatal("no initial watch event")
	}
}

func TestWatchFiresOnWriteAndRemove(t *testing.T) {
	s := New()
	w, err := s.Watch(dom0, "/local/domain/3")
	if err != nil {
		t.Fatal(err)
	}
	drainInitial(t, w)
	s.Write(dom0, noTxn, "/local/domain/3/device/vtpm/0/state", []byte("3"))
	if p := <-w.Events(); p != "/local/domain/3/device/vtpm/0/state" {
		t.Fatalf("event = %q", p)
	}
	s.Remove(dom0, noTxn, "/local/domain/3/device/vtpm/0/state")
	if p := <-w.Events(); p != "/local/domain/3/device/vtpm/0/state" {
		t.Fatalf("remove event = %q", p)
	}
	// Unrelated path does not fire.
	s.Write(dom0, noTxn, "/local/domain/4/x", []byte("1"))
	select {
	case p := <-w.Events():
		t.Fatalf("unexpected event %q", p)
	default:
	}
}

func TestWatchFiresOnAncestorRemoval(t *testing.T) {
	s := New()
	s.Write(dom0, noTxn, "/a/b/c", []byte("1"))
	w, _ := s.Watch(dom0, "/a/b/c")
	drainInitial(t, w)
	s.Remove(dom0, noTxn, "/a")
	if p := <-w.Events(); p != "/a" {
		t.Fatalf("event = %q", p)
	}
}

func TestWatchFiresOnTxnCommitOnly(t *testing.T) {
	s := New()
	w, _ := s.Watch(dom0, "/dev")
	drainInitial(t, w)
	tx := s.TxnStart(dom0)
	s.Write(dom0, tx, "/dev/a", []byte("1"))
	select {
	case p := <-w.Events():
		t.Fatalf("event %q before commit", p)
	default:
	}
	if err := s.TxnCommit(dom0, tx); err != nil {
		t.Fatal(err)
	}
	if p := <-w.Events(); p != "/dev/a" {
		t.Fatalf("event = %q", p)
	}
}

func TestUnwatchClosesChannel(t *testing.T) {
	s := New()
	w, _ := s.Watch(dom0, "/x")
	drainInitial(t, w)
	s.Unwatch(w)
	if _, ok := <-w.Events(); ok {
		t.Fatal("channel not closed")
	}
	s.Unwatch(w) // idempotent
}

func TestConcurrentWritersDistinctKeys(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	const n = 8
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				path := fmt.Sprintf("/load/worker%d/item%d", i, j)
				if err := s.Write(dom0, noTxn, path, []byte{byte(j)}); err != nil {
					t.Errorf("write %s: %v", path, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		names, err := s.List(dom0, noTxn, fmt.Sprintf("/load/worker%d", i))
		if err != nil || len(names) != 50 {
			t.Fatalf("worker %d: %d names, %v", i, len(names), err)
		}
	}
}

func TestPropertyWriteThenReadIdentity(t *testing.T) {
	s := New()
	i := 0
	f := func(val []byte) bool {
		i++
		path := fmt.Sprintf("/prop/key%d", i)
		if err := s.Write(dom0, noTxn, path, val); err != nil {
			return false
		}
		got, err := s.Read(dom0, noTxn, path)
		return err == nil && bytes.Equal(got, val)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestReadReturnsCopy(t *testing.T) {
	s := New()
	s.Write(dom0, noTxn, "/k", []byte("abc"))
	v, _ := s.Read(dom0, noTxn, "/k")
	v[0] = 'Z'
	v2, _ := s.Read(dom0, noTxn, "/k")
	if string(v2) != "abc" {
		t.Fatal("Read leaks internal buffer")
	}
}

// A transaction commit must merge its mutations into the live tree, not
// swap its snapshot in wholesale: a node created concurrently on a path the
// transaction never touched has to survive the commit. (This is the shape
// of mass guest creation — every creator writes its own /local/domain/N
// while device handshakes commit transactions all around it.)
func TestTxnCommitPreservesConcurrentCreations(t *testing.T) {
	s := New()
	// Both parties' parents pre-exist, as /local/domain does on a live host;
	// conflicts are per-node, so only same-parent child churn could collide.
	if err := s.Write(dom0, noTxn, "/local/domain/1/name", []byte("seed")); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(dom0, noTxn, "/txn/only", nil); err != nil {
		t.Fatal(err)
	}
	id := s.TxnStart(dom0)
	if err := s.Write(dom0, id, "/txn/only/key", []byte("x")); err != nil {
		t.Fatal(err)
	}
	// Outside the transaction, after its snapshot: a brand-new subtree.
	if err := s.Write(dom0, noTxn, "/local/domain/7/name", []byte("guest")); err != nil {
		t.Fatal(err)
	}
	if err := s.TxnCommit(dom0, id); err != nil {
		t.Fatalf("commit conflicted on an untouched path: %v", err)
	}
	if v, err := s.Read(dom0, noTxn, "/local/domain/7/name"); err != nil || string(v) != "guest" {
		t.Fatalf("concurrent creation lost by commit: %v %q", err, v)
	}
	if v, err := s.Read(dom0, noTxn, "/txn/only/key"); err != nil || string(v) != "x" {
		t.Fatalf("transaction write missing after commit: %v %q", err, v)
	}
}

// Removals and permission changes recorded in a transaction must land on the
// live tree too, and only the transaction's own mutations may fire watches.
func TestTxnCommitReplaysRemoveAndSetPerms(t *testing.T) {
	s := New()
	s.Write(dom0, noTxn, "/a/b", []byte("1"))
	s.Write(dom0, noTxn, "/a/c", []byte("2"))
	id := s.TxnStart(dom0)
	if err := s.Remove(dom0, id, "/a/b"); err != nil {
		t.Fatal(err)
	}
	if err := s.SetPerms(dom0, id, "/a/c", Perms{Owner: 5, Default: PermNone}); err != nil {
		t.Fatal(err)
	}
	if err := s.TxnCommit(dom0, id); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read(dom0, noTxn, "/a/b"); !errors.Is(err, ErrNoEnt) {
		t.Fatalf("removed node survives commit: %v", err)
	}
	p, err := s.GetPerms(dom0, noTxn, "/a/c")
	if err != nil || p.Owner != 5 {
		t.Fatalf("perms not replayed: %v %+v", err, p)
	}
}
