package xenstore

import (
	"strings"

	"xvtpm/internal/xen"
)

// Watch delivers the paths of mutations at or below a watched path. Events
// are delivered on Events with a buffered channel; if the buffer overflows
// the watch coalesces (the consumer re-reads the store anyway, which is the
// XenStore protocol's contract).
type Watch struct {
	store  *Store
	caller xen.DomID
	path   string
	events chan string
	dead   bool
}

// watchBuffer is the per-watch event buffer size.
const watchBuffer = 64

// Events is the channel watch events arrive on. It is closed by Unwatch.
func (w *Watch) Events() <-chan string { return w.events }

// Path returns the watched path.
func (w *Watch) Path() string { return w.path }

// Watch registers interest in path and its subtree. Like the real store, an
// initial event for the watched path fires immediately so the consumer can
// pick up pre-existing state.
func (s *Store) Watch(caller xen.DomID, path string) (*Watch, error) {
	if _, err := split(path); err != nil {
		return nil, err
	}
	w := &Watch{store: s, caller: caller, path: path, events: make(chan string, watchBuffer)}
	s.mu.Lock()
	s.watches[w] = struct{}{}
	s.mu.Unlock()
	w.events <- path // initial synthetic event
	return w, nil
}

// Unwatch deregisters the watch and closes its channel.
func (s *Store) Unwatch(w *Watch) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.watches[w]; !ok {
		return
	}
	delete(s.watches, w)
	w.dead = true
	close(w.events)
}

// fireLocked delivers a mutation event to every matching watch. The caller
// holds s.mu.
func (s *Store) fireLocked(path string) {
	for w := range s.watches {
		if !watchMatches(w.path, path) {
			continue
		}
		select {
		case w.events <- path:
		default: // buffer full: coalesce
		}
	}
}

// watchMatches reports whether a mutation at mutated should fire a watch at
// watched: equal paths, mutation inside the watched subtree, or mutation at
// an ancestor (removal of an ancestor affects the watched node).
func watchMatches(watched, mutated string) bool {
	if watched == mutated {
		return true
	}
	if strings.HasPrefix(mutated, watched+"/") {
		return true
	}
	if strings.HasPrefix(watched, mutated+"/") {
		return true
	}
	return false
}
