package xenstore

import (
	"errors"
	"fmt"

	"xvtpm/internal/xen"
)

// TxnStart opens a transaction: a private snapshot of the whole tree the
// caller mutates in isolation until commit.
func (s *Store) TxnStart(caller xen.DomID) TxnID {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextTxn++
	id := s.nextTxn
	s.txns[id] = &txn{
		owner:   caller,
		root:    s.root.clone(),
		baseGen: s.gen,
		touched: make(map[string]struct{}),
	}
	return id
}

// TxnAbort discards a transaction.
func (s *Store) TxnAbort(caller xen.DomID, id TxnID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.txns[id]
	if !ok {
		return ErrBadTxn
	}
	if t.owner != caller && caller != xen.Dom0 {
		return fmt.Errorf("%w: dom%d abort txn of dom%d", ErrPerm, caller, t.owner)
	}
	delete(s.txns, id)
	return nil
}

// TxnCommit atomically applies a transaction. It fails with ErrConflict if
// any node the transaction read or wrote was modified in the store since the
// transaction began — the caller then retries, as with EAGAIN on real
// XenStore.
func (s *Store) TxnCommit(caller xen.DomID, id TxnID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.txns[id]
	if !ok {
		return ErrBadTxn
	}
	if t.owner != caller && caller != xen.Dom0 {
		return fmt.Errorf("%w: dom%d commit txn of dom%d", ErrPerm, caller, t.owner)
	}
	delete(s.txns, id)
	// Conflict check: every touched path must be unchanged in the live tree
	// since baseGen. A path counts as changed if its closest existing node
	// has a newer generation (covers removals, which bump the parent).
	for path := range t.touched {
		if s.newestGenAlong(path) > t.baseGen {
			return fmt.Errorf("%w: %s", ErrConflict, path)
		}
	}
	s.root = t.root
	s.gen++
	for path := range t.touched {
		if parts, err := split(path); err == nil {
			s.markGen(parts)
		}
		s.fireLocked(path)
	}
	return nil
}

// newestGenAlong returns the generation of the deepest existing node on the
// path in the live tree.
func (s *Store) newestGenAlong(path string) uint64 {
	parts, err := split(path)
	if err != nil {
		return s.gen
	}
	n := s.root
	g := n.gen
	for _, p := range parts {
		child, ok := n.children[p]
		if !ok {
			return g
		}
		n = child
		g = n.gen
	}
	return g
}

// WithTxn runs fn inside a transaction, retrying on ErrConflict up to
// maxRetries times. It is the idiom drivers use for multi-key handshakes.
func (s *Store) WithTxn(caller xen.DomID, maxRetries int, fn func(id TxnID) error) error {
	for attempt := 0; ; attempt++ {
		id := s.TxnStart(caller)
		if err := fn(id); err != nil {
			s.TxnAbort(caller, id) //nolint:errcheck // best-effort cleanup
			return err
		}
		err := s.TxnCommit(caller, id)
		if err == nil {
			return nil
		}
		if !errors.Is(err, ErrConflict) || attempt >= maxRetries {
			return err
		}
	}
}
