package xenstore

import (
	"errors"
	"fmt"

	"xvtpm/internal/xen"
)

// TxnStart opens a transaction: a private snapshot of the whole tree the
// caller mutates in isolation until commit.
func (s *Store) TxnStart(caller xen.DomID) TxnID {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextTxn++
	id := s.nextTxn
	s.txns[id] = &txn{
		owner:     caller,
		root:      s.root.clone(),
		baseGen:   s.gen,
		touched:   make(map[string]struct{}),
		ownedSeen: make(map[xen.DomID]int),
	}
	return id
}

// TxnAbort discards a transaction.
func (s *Store) TxnAbort(caller xen.DomID, id TxnID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.txns[id]
	if !ok {
		return ErrBadTxn
	}
	if t.owner != caller && caller != xen.Dom0 {
		return fmt.Errorf("%w: dom%d abort txn of dom%d", ErrPerm, caller, t.owner)
	}
	delete(s.txns, id)
	return nil
}

// TxnCommit atomically applies a transaction. It fails with ErrConflict if
// any node the transaction read or wrote was modified in the store since the
// transaction began — the caller then retries, as with EAGAIN on real
// XenStore.
func (s *Store) TxnCommit(caller xen.DomID, id TxnID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.txns[id]
	if !ok {
		return ErrBadTxn
	}
	if t.owner != caller && caller != xen.Dom0 {
		return fmt.Errorf("%w: dom%d commit txn of dom%d", ErrPerm, caller, t.owner)
	}
	delete(s.txns, id)
	// Conflict check: every touched path must be unchanged in the live tree
	// since baseGen, at per-node granularity — a node counts as changed when
	// its value, perms, or direct child set changed (creations and removals
	// stamp the parent). Writes in unrelated subtrees never conflict.
	for path := range t.touched {
		if s.pathChanged(path, t.baseGen) {
			return fmt.Errorf("%w: %s", ErrConflict, path)
		}
	}
	// Replay the transaction's mutations onto the live tree. Swapping in the
	// transaction's snapshot wholesale would silently drop every node created
	// concurrently on paths this transaction never looked at — a lost update
	// the conflict check above cannot see. The ops were permission-checked
	// against the snapshot when issued, and the conflict check just proved
	// the paths they touch are unchanged, so replay applies them directly;
	// quota is re-validated in a dry pass first so a failure leaves the live
	// tree untouched.
	if err := s.replayQuotaLocked(t); err != nil {
		return err
	}
	s.gen++
	for _, op := range t.ops {
		s.replayLocked(op)
	}
	for _, op := range t.ops {
		s.fireLocked(op.path)
	}
	return nil
}

// replayQuotaLocked dry-runs a transaction's writes against the live tree,
// counting the nodes each unprivileged domain would create, and rejects the
// commit if any would exceed the quota.
func (s *Store) replayQuotaLocked(t *txn) error {
	if s.nodeQuota <= 0 {
		return nil
	}
	needed := make(map[xen.DomID]int)
	virtual := make(map[string]struct{})
	for _, op := range t.ops {
		if op.kind != opWrite || op.caller == xen.Dom0 {
			continue
		}
		n := s.root
		missing := false
		prefix := ""
		for _, p := range op.parts {
			prefix += "/" + p
			if !missing {
				if child, ok := n.children[p]; ok {
					n = child
					continue
				}
				missing = true
			}
			if _, ok := virtual[prefix]; !ok {
				virtual[prefix] = struct{}{}
				needed[op.caller]++
			}
		}
	}
	for dom, k := range needed {
		if s.owned[dom]+k > s.nodeQuota {
			return fmt.Errorf("%w: dom%d at %d nodes", ErrQuota, dom, s.owned[dom])
		}
	}
	return nil
}

// replayLocked applies one recorded transaction op to the live tree,
// stamping the current store generation and the owned-node counters like the
// non-transactional paths do. Permission and quota checks already happened —
// at record time against the transaction's view, and in the commit's dry
// quota pass against the live tree — so replay cannot fail.
func (s *Store) replayLocked(op txnOp) {
	switch op.kind {
	case opWrite:
		n := s.root
		var createdParent *node
		for _, p := range op.parts {
			child, ok := n.children[p]
			if !ok {
				child = &node{
					children: make(map[string]*node),
					perms:    Perms{Owner: op.caller, Default: n.perms.Default},
				}
				if n.children == nil {
					n.children = make(map[string]*node)
				}
				n.children[p] = child
				s.owned[op.caller]++
				if createdParent == nil {
					createdParent = n
				}
			}
			n = child
		}
		n.value = append([]byte(nil), op.value...)
		n.gen = s.gen
		if createdParent != nil {
			createdParent.gen = s.gen
		}
	case opRemove:
		parent, n, err := lookup(s.root, op.parts)
		if err == nil {
			adjustOwned(s.owned, n, -1)
			delete(parent.children, op.parts[len(op.parts)-1])
			parent.gen = s.gen
		}
	case opSetPerms:
		if _, n, err := lookup(s.root, op.parts); err == nil {
			if n.perms.Owner != op.perms.Owner {
				s.owned[n.perms.Owner]--
				s.owned[op.perms.Owner]++
			}
			n.perms = op.perms.clone()
			n.gen = s.gen
		}
	}
}

// pathChanged reports whether the node a path names changed in the live
// tree since baseGen. If the path walks off the tree, the verdict is the
// deepest existing node's: its child-set generation covers the name having
// been created or removed underneath it since; siblings deeper down, and
// every unrelated subtree, stay invisible.
func (s *Store) pathChanged(path string, baseGen uint64) bool {
	parts, err := split(path)
	if err != nil {
		return true
	}
	n := s.root
	for _, p := range parts {
		child, ok := n.children[p]
		if !ok {
			return n.gen > baseGen
		}
		n = child
	}
	return n.gen > baseGen
}

// WithTxn runs fn inside a transaction, retrying on ErrConflict up to
// maxRetries times. It is the idiom drivers use for multi-key handshakes.
func (s *Store) WithTxn(caller xen.DomID, maxRetries int, fn func(id TxnID) error) error {
	for attempt := 0; ; attempt++ {
		id := s.TxnStart(caller)
		if err := fn(id); err != nil {
			s.TxnAbort(caller, id) //nolint:errcheck // best-effort cleanup
			return err
		}
		err := s.TxnCommit(caller, id)
		if err == nil {
			return nil
		}
		if !errors.Is(err, ErrConflict) || attempt >= maxRetries {
			return err
		}
	}
}
