// Package xenstore implements the XenStore hierarchical key-value store: the
// control-plane registry Xen's split drivers use to find each other and
// exchange connection parameters (ring grant references, event-channel
// ports, device state).
//
// The implementation follows the real store's semantics where they matter to
// the vTPM subsystem and its attackers:
//
//   - per-node permissions with an owner and per-domain ACL entries, with
//     dom0 always privileged;
//   - transactions with optimistic concurrency (commit fails with
//     ErrConflict if a touched node changed underneath, like EAGAIN);
//   - watches that fire on any mutation at or below a path, including the
//     initial synthetic event on registration.
package xenstore

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"xvtpm/internal/xen"
)

// Store errors.
var (
	ErrNoEnt     = errors.New("xenstore: no such node")
	ErrPerm      = errors.New("xenstore: permission denied")
	ErrConflict  = errors.New("xenstore: transaction conflict")
	ErrBadTxn    = errors.New("xenstore: no such transaction")
	ErrBadPath   = errors.New("xenstore: malformed path")
	ErrNotEmpty  = errors.New("xenstore: node has children")
	ErrWatchGone = errors.New("xenstore: watch cancelled")
	ErrQuota     = errors.New("xenstore: domain over its node quota")
	ErrTooLong   = errors.New("xenstore: value exceeds the size limit")
)

// Limits enforced on unprivileged domains, as real xenstored enforces them
// (a guest that can grow the store without bound can take down the whole
// host's control plane). Dom0 is exempt.
const (
	// DefaultNodeQuota is the number of nodes one unprivileged domain may
	// own.
	DefaultNodeQuota = 256
	// MaxValueSize is the largest value one node may hold.
	MaxValueSize = 2048
)

// PermBits is a node access mask.
type PermBits uint8

// Permission bits.
const (
	PermNone  PermBits = 0
	PermRead  PermBits = 1 << 0
	PermWrite PermBits = 1 << 1
	PermBoth           = PermRead | PermWrite
)

// Perms is a node's access policy: the owning domain (full access), the
// default for everyone else, and per-domain overrides.
type Perms struct {
	Owner   xen.DomID
	Default PermBits
	ACL     map[xen.DomID]PermBits
}

func (p Perms) clone() Perms {
	q := Perms{Owner: p.Owner, Default: p.Default}
	if len(p.ACL) > 0 {
		q.ACL = make(map[xen.DomID]PermBits, len(p.ACL))
		for k, v := range p.ACL {
			q.ACL[k] = v
		}
	}
	return q
}

// allows reports whether dom holds all bits in want.
func (p Perms) allows(dom xen.DomID, want PermBits) bool {
	if dom == xen.Dom0 || dom == p.Owner {
		return true
	}
	bits := p.Default
	if b, ok := p.ACL[dom]; ok {
		bits = b
	}
	return bits&want == want
}

// node is one tree entry.
type node struct {
	value    []byte
	children map[string]*node
	perms    Perms
	gen      uint64 // store generation of last mutation
}

func (n *node) clone() *node {
	c := &node{value: append([]byte(nil), n.value...), perms: n.perms.clone(), gen: n.gen}
	if n.children != nil {
		c.children = make(map[string]*node, len(n.children))
		for name, ch := range n.children {
			c.children[name] = ch.clone()
		}
	}
	return c
}

// Store is one host's XenStore.
type Store struct {
	mu      sync.Mutex
	root    *node
	gen     uint64
	txns    map[TxnID]*txn
	nextTxn TxnID
	watches map[*Watch]struct{}
	// owned tracks live nodes per owning domain incrementally, so quota
	// checks stay O(1) instead of walking the whole tree on every write —
	// at fleet scale (thousands of guest domains, each with its own
	// handshake nodes) the walk was quadratic across a mass creation.
	owned     map[xen.DomID]int
	nodeQuota int
}

// TxnID names an open transaction.
type TxnID uint32

// NoTxn is the TxnID meaning "operate directly on the store".
const NoTxn TxnID = 0

// txn is an open transaction: a private copy of the tree the owner mutates
// in isolation, the set of paths it touched (reads and writes alike, for
// conflict detection at commit), and the ordered log of its mutations.
// Commit replays the log onto the live tree rather than swapping trees, so
// nodes created concurrently on paths the transaction never touched
// survive — the real store's semantics, and the property mass guest
// creation depends on.
type txn struct {
	owner   xen.DomID
	root    *node
	baseGen uint64
	touched map[string]struct{}
	ops     []txnOp
	// ownedSeen carries per-domain owned-node counts as this transaction's
	// view evolves, seeded lazily from the store's live counters; it keeps
	// in-transaction quota checks O(1).
	ownedSeen map[xen.DomID]int
}

// txnOp is one recorded mutation, validated against the transaction's view
// when it was issued. caller is the domain that issued it (node creations
// replay under its ownership).
type txnOp struct {
	kind   opKind
	caller xen.DomID
	path   string
	parts  []string
	value  []byte
	perms  Perms
}

type opKind int

const (
	opWrite opKind = iota
	opRemove
	opSetPerms
)

// New creates an empty store whose root is owned by dom0 and world-readable,
// as on a real host.
func New() *Store {
	return &Store{
		root: &node{
			children: make(map[string]*node),
			perms:    Perms{Owner: xen.Dom0, Default: PermRead},
		},
		txns:      make(map[TxnID]*txn),
		watches:   make(map[*Watch]struct{}),
		owned:     map[xen.DomID]int{xen.Dom0: 1}, // the root
		nodeQuota: DefaultNodeQuota,
	}
}

// SetNodeQuota adjusts the per-domain node quota (0 disables enforcement).
func (s *Store) SetNodeQuota(n int) {
	s.mu.Lock()
	s.nodeQuota = n
	s.mu.Unlock()
}

// adjustOwned walks a subtree adding delta to each node's owner counter in
// the given counter map.
func adjustOwned(counts map[xen.DomID]int, n *node, delta int) {
	counts[n.perms.Owner] += delta
	for _, c := range n.children {
		adjustOwned(counts, c, delta)
	}
}

// txnOwnedAdjust mirrors adjustOwned onto a transaction's lazily-seeded
// view of the counters.
func (s *Store) txnOwnedAdjust(t *txn, n *node, delta int) {
	o := n.perms.Owner
	if _, ok := t.ownedSeen[o]; !ok {
		t.ownedSeen[o] = s.owned[o]
	}
	t.ownedSeen[o] += delta
	for _, c := range n.children {
		s.txnOwnedAdjust(t, c, delta)
	}
}

// OwnedNodes reports how many nodes a domain currently owns (live tree).
func (s *Store) OwnedNodes(dom xen.DomID) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.owned[dom]
}

// split validates a path and returns its components. The root is "/".
func split(path string) ([]string, error) {
	if path == "" || path[0] != '/' {
		return nil, fmt.Errorf("%w: %q", ErrBadPath, path)
	}
	if path == "/" {
		return nil, nil
	}
	parts := strings.Split(strings.Trim(path, "/"), "/")
	for _, p := range parts {
		if p == "" || p == "." || p == ".." {
			return nil, fmt.Errorf("%w: %q", ErrBadPath, path)
		}
	}
	return parts, nil
}

// lookup walks to a node, returning also its parent for removal.
func lookup(root *node, parts []string) (parent, n *node, err error) {
	n = root
	for _, p := range parts {
		parent = n
		child, ok := n.children[p]
		if !ok {
			return nil, nil, ErrNoEnt
		}
		n = child
	}
	return parent, n, nil
}

func (s *Store) treeFor(id TxnID) (*node, *txn, error) {
	if id == NoTxn {
		return s.root, nil, nil
	}
	t, ok := s.txns[id]
	if !ok {
		return nil, nil, ErrBadTxn
	}
	return t.root, t, nil
}

// Read returns a node's value.
func (s *Store) Read(caller xen.DomID, id TxnID, path string) ([]byte, error) {
	parts, err := split(path)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	root, t, err := s.treeFor(id)
	if err != nil {
		return nil, err
	}
	_, n, err := lookup(root, parts)
	if err != nil {
		return nil, fmt.Errorf("%w: %s", err, path)
	}
	if !n.perms.allows(caller, PermRead) {
		return nil, fmt.Errorf("%w: dom%d read %s", ErrPerm, caller, path)
	}
	if t != nil {
		t.touched[path] = struct{}{}
	}
	return append([]byte(nil), n.value...), nil
}

// List returns a node's child names, sorted.
func (s *Store) List(caller xen.DomID, id TxnID, path string) ([]string, error) {
	parts, err := split(path)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	root, t, err := s.treeFor(id)
	if err != nil {
		return nil, err
	}
	_, n, err := lookup(root, parts)
	if err != nil {
		return nil, fmt.Errorf("%w: %s", err, path)
	}
	if !n.perms.allows(caller, PermRead) {
		return nil, fmt.Errorf("%w: dom%d list %s", ErrPerm, caller, path)
	}
	if t != nil {
		t.touched[path] = struct{}{}
	}
	names := make([]string, 0, len(n.children))
	for name := range n.children {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// Write sets a node's value, creating the node (and intermediate nodes) if
// absent. Created nodes inherit the parent's permissions with the caller as
// owner, like the real store.
func (s *Store) Write(caller xen.DomID, id TxnID, path string, value []byte) error {
	parts, err := split(path)
	if err != nil {
		return err
	}
	if len(parts) == 0 {
		return fmt.Errorf("%w: cannot write root", ErrBadPath)
	}
	if caller != xen.Dom0 && len(value) > MaxValueSize {
		return fmt.Errorf("%w: %d bytes", ErrTooLong, len(value))
	}
	s.mu.Lock()
	root, t, err := s.treeFor(id)
	if err != nil {
		s.mu.Unlock()
		return err
	}
	// Quota check for unprivileged creators, O(1) against the incremental
	// counters (the transaction's lazily-seeded view when inside one).
	n := root
	created := false
	var createdParent *node
	for i, p := range parts {
		child, ok := n.children[p]
		if !ok {
			if !n.perms.allows(caller, PermWrite) {
				s.mu.Unlock()
				return fmt.Errorf("%w: dom%d create under %s", ErrPerm, caller, "/"+strings.Join(parts[:i], "/"))
			}
			if caller != xen.Dom0 && s.nodeQuota > 0 {
				cnt := s.owned[caller]
				if t != nil {
					if seen, ok := t.ownedSeen[caller]; ok {
						cnt = seen
					}
				}
				if cnt >= s.nodeQuota {
					s.mu.Unlock()
					return fmt.Errorf("%w: dom%d at %d nodes", ErrQuota, caller, cnt)
				}
			}
			child = &node{
				children: make(map[string]*node),
				perms:    Perms{Owner: caller, Default: n.perms.Default},
			}
			if n.children == nil {
				n.children = make(map[string]*node)
			}
			n.children[p] = child
			if t != nil {
				if _, ok := t.ownedSeen[caller]; !ok {
					t.ownedSeen[caller] = s.owned[caller]
				}
				t.ownedSeen[caller]++
			} else {
				s.owned[caller]++
			}
			if !created {
				createdParent = n
			}
			created = true
		}
		n = child
	}
	if !created && !n.perms.allows(caller, PermWrite) {
		s.mu.Unlock()
		return fmt.Errorf("%w: dom%d write %s", ErrPerm, caller, path)
	}
	n.value = append([]byte(nil), value...)
	if t != nil {
		t.touched[path] = struct{}{}
		t.ops = append(t.ops, txnOp{kind: opWrite, caller: caller, path: path, parts: parts, value: append([]byte(nil), value...)})
		s.mu.Unlock()
		return nil
	}
	s.gen++
	// A write modifies the written node; creating it also modifies the
	// deepest pre-existing ancestor (its child set changed) — per-node
	// granularity, like real xenstored, so unrelated subtrees never
	// conflict with each other's transactions.
	n.gen = s.gen
	if createdParent != nil {
		createdParent.gen = s.gen
	}
	s.fireLocked(path)
	s.mu.Unlock()
	return nil
}

// Remove deletes a node and its subtree. Only the owner or dom0 may remove.
func (s *Store) Remove(caller xen.DomID, id TxnID, path string) error {
	parts, err := split(path)
	if err != nil {
		return err
	}
	if len(parts) == 0 {
		return fmt.Errorf("%w: cannot remove root", ErrBadPath)
	}
	s.mu.Lock()
	root, t, err := s.treeFor(id)
	if err != nil {
		s.mu.Unlock()
		return err
	}
	parent, n, err := lookup(root, parts)
	if err != nil {
		s.mu.Unlock()
		return fmt.Errorf("%w: %s", err, path)
	}
	if caller != xen.Dom0 && caller != n.perms.Owner {
		s.mu.Unlock()
		return fmt.Errorf("%w: dom%d remove %s", ErrPerm, caller, path)
	}
	delete(parent.children, parts[len(parts)-1])
	if t != nil {
		s.txnOwnedAdjust(t, n, -1)
		t.touched[path] = struct{}{}
		t.ops = append(t.ops, txnOp{kind: opRemove, caller: caller, path: path, parts: parts})
		s.mu.Unlock()
		return nil
	}
	adjustOwned(s.owned, n, -1)
	s.gen++
	parent.gen = s.gen // the parent's child set changed
	s.fireLocked(path)
	s.mu.Unlock()
	return nil
}

// GetPerms returns a node's access policy.
func (s *Store) GetPerms(caller xen.DomID, id TxnID, path string) (Perms, error) {
	parts, err := split(path)
	if err != nil {
		return Perms{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	root, _, err := s.treeFor(id)
	if err != nil {
		return Perms{}, err
	}
	_, n, err := lookup(root, parts)
	if err != nil {
		return Perms{}, fmt.Errorf("%w: %s", err, path)
	}
	if !n.perms.allows(caller, PermRead) {
		return Perms{}, fmt.Errorf("%w: dom%d getperms %s", ErrPerm, caller, path)
	}
	return n.perms.clone(), nil
}

// SetPerms replaces a node's access policy. Only the owner or dom0 may.
func (s *Store) SetPerms(caller xen.DomID, id TxnID, path string, perms Perms) error {
	parts, err := split(path)
	if err != nil {
		return err
	}
	s.mu.Lock()
	root, t, err := s.treeFor(id)
	if err != nil {
		s.mu.Unlock()
		return err
	}
	_, n, err := lookup(root, parts)
	if err != nil {
		s.mu.Unlock()
		return fmt.Errorf("%w: %s", err, path)
	}
	if caller != xen.Dom0 && caller != n.perms.Owner {
		s.mu.Unlock()
		return fmt.Errorf("%w: dom%d setperms %s", ErrPerm, caller, path)
	}
	prevOwner := n.perms.Owner
	n.perms = perms.clone()
	if t != nil {
		if prevOwner != perms.Owner {
			if _, ok := t.ownedSeen[prevOwner]; !ok {
				t.ownedSeen[prevOwner] = s.owned[prevOwner]
			}
			if _, ok := t.ownedSeen[perms.Owner]; !ok {
				t.ownedSeen[perms.Owner] = s.owned[perms.Owner]
			}
			t.ownedSeen[prevOwner]--
			t.ownedSeen[perms.Owner]++
		}
		t.touched[path] = struct{}{}
		t.ops = append(t.ops, txnOp{kind: opSetPerms, caller: caller, path: path, parts: parts, perms: perms.clone()})
		s.mu.Unlock()
		return nil
	}
	if prevOwner != perms.Owner {
		s.owned[prevOwner]--
		s.owned[perms.Owner]++
	}
	s.gen++
	n.gen = s.gen
	s.fireLocked(path)
	s.mu.Unlock()
	return nil
}

// Exists reports whether a node exists and is visible to the caller.
func (s *Store) Exists(caller xen.DomID, id TxnID, path string) bool {
	_, err := s.Read(caller, id, path)
	return err == nil || errors.Is(err, ErrPerm)
}
