// Package xen implements a discrete simulator of the slice of the Xen
// hypervisor that the vTPM subsystem and its attackers interact with: domains
// with real backing memory pages, a grant table for sharing those pages,
// inter-domain event channels, privileged domain-control operations including
// core dumps (the attack vector named by the paper), and save/restore images
// for migration.
//
// The simulator is deliberately memory-faithful rather than timing-faithful:
// anything a component stores in domain memory is really there as bytes, so a
// core dump of the domain exposes exactly what a dump on real hardware would.
// Timing claims in the evaluation come from the crypto and the protocol work,
// which both the baseline and the improved access-control design pay on equal
// terms.
package xen

import (
	"crypto/sha1"
	"fmt"
)

// DomID identifies a domain on one host. Domain 0 is the privileged
// management domain, as on real Xen.
type DomID uint32

// Dom0 is the privileged management domain's ID.
const Dom0 DomID = 0

// PageSize is the size of one memory page, matching x86.
const PageSize = 4096

// DomainState is the lifecycle state of a domain.
type DomainState int

// Domain lifecycle states.
const (
	StateRunning DomainState = iota
	StatePaused
	StateSuspended
	StateShutdown
	StateDestroyed
)

// String implements fmt.Stringer for DomainState.
func (s DomainState) String() string {
	switch s {
	case StateRunning:
		return "running"
	case StatePaused:
		return "paused"
	case StateSuspended:
		return "suspended"
	case StateShutdown:
		return "shutdown"
	case StateDestroyed:
		return "destroyed"
	default:
		return fmt.Sprintf("DomainState(%d)", int(s))
	}
}

// DomainConfig describes a domain to be created. Kernel, Initrd and Cmdline
// stand in for the measured boot payload; their digest becomes the domain's
// launch measurement, which the improved access-control design binds vTPM
// access to.
type DomainConfig struct {
	Name    string
	Pages   int // memory size in pages; 0 means DefaultPages
	VCPUs   int // 0 means 1
	Kernel  []byte
	Initrd  []byte
	Cmdline string
}

// DefaultPages is the memory size used when DomainConfig.Pages is zero.
const DefaultPages = 64

// LaunchDigest is the SHA-1 measurement of a domain's boot payload, the
// identity the improved access control binds to. SHA-1 matches the TPM 1.2
// generation the paper targets.
type LaunchDigest [sha1.Size]byte

// String renders the digest in hex.
func (d LaunchDigest) String() string { return fmt.Sprintf("%x", d[:]) }

// MeasureLaunch computes the launch measurement for a boot payload.
func MeasureLaunch(kernel, initrd []byte, cmdline string) LaunchDigest {
	h := sha1.New()
	h.Write(kernel)
	h.Write(initrd)
	h.Write([]byte(cmdline))
	var d LaunchDigest
	copy(d[:], h.Sum(nil))
	return d
}

// GrantRef names an entry in a domain's grant table.
type GrantRef uint32

// EvtchnPort names one end of an event channel.
type EvtchnPort uint32
