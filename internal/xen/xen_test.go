package xen

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"testing/quick"
)

func newHost(t *testing.T) *Hypervisor {
	t.Helper()
	return NewHypervisor(DomainConfig{Name: "Domain-0"})
}

func mkGuest(t *testing.T, h *Hypervisor, name string) *Domain {
	t.Helper()
	d, err := h.CreateDomain(DomainConfig{
		Name:    name,
		Kernel:  []byte("vmlinuz-" + name),
		Cmdline: "root=/dev/xvda1",
	})
	if err != nil {
		t.Fatalf("CreateDomain(%s): %v", name, err)
	}
	return d
}

func TestDom0ExistsAndPrivileged(t *testing.T) {
	h := newHost(t)
	d0, err := h.Domain(Dom0)
	if err != nil {
		t.Fatalf("dom0 missing: %v", err)
	}
	if d0.Name() != "Domain-0" || d0.ID() != Dom0 {
		t.Fatalf("dom0 = %q id %d", d0.Name(), d0.ID())
	}
	if _, err := h.DumpCore(Dom0, Dom0); err != nil {
		t.Fatalf("dom0 dump of itself: %v", err)
	}
}

func TestCreateDomainAssignsIncreasingIDs(t *testing.T) {
	h := newHost(t)
	a := mkGuest(t, h, "a")
	b := mkGuest(t, h, "b")
	if a.ID() == Dom0 || b.ID() == Dom0 || b.ID() <= a.ID() {
		t.Fatalf("ids: a=%d b=%d", a.ID(), b.ID())
	}
	if a.State() != StateRunning {
		t.Fatalf("new domain state = %v", a.State())
	}
}

func TestCreateDomainRequiresName(t *testing.T) {
	h := newHost(t)
	if _, err := h.CreateDomain(DomainConfig{}); err == nil {
		t.Fatal("unnamed domain accepted")
	}
}

func TestLaunchDigestDependsOnPayload(t *testing.T) {
	a := MeasureLaunch([]byte("k1"), []byte("i1"), "c")
	b := MeasureLaunch([]byte("k1"), []byte("i1"), "c")
	c := MeasureLaunch([]byte("k2"), []byte("i1"), "c")
	d := MeasureLaunch([]byte("k1"), []byte("i2"), "c")
	e := MeasureLaunch([]byte("k1"), []byte("i1"), "x")
	if a != b {
		t.Fatal("measurement not deterministic")
	}
	if a == c || a == d || a == e {
		t.Fatal("measurement insensitive to payload change")
	}
}

func TestPauseUnpauseShutdownStates(t *testing.T) {
	h := newHost(t)
	g := mkGuest(t, h, "g")
	if err := h.Pause(Dom0, g.ID()); err != nil {
		t.Fatal(err)
	}
	if g.State() != StatePaused {
		t.Fatalf("state = %v", g.State())
	}
	if err := h.Pause(Dom0, g.ID()); !errors.Is(err, ErrBadState) {
		t.Fatalf("double pause err = %v", err)
	}
	if err := h.Unpause(Dom0, g.ID()); err != nil {
		t.Fatal(err)
	}
	if err := h.Shutdown(g.ID(), g.ID()); err != nil {
		t.Fatalf("self shutdown: %v", err)
	}
	if g.State() != StateShutdown {
		t.Fatalf("state = %v", g.State())
	}
}

func TestUnprivilegedDomctlDenied(t *testing.T) {
	h := newHost(t)
	g := mkGuest(t, h, "g")
	v := mkGuest(t, h, "victim")
	if err := h.Pause(g.ID(), v.ID()); !errors.Is(err, ErrNotPrivileged) {
		t.Fatalf("pause err = %v", err)
	}
	if _, err := h.DumpCore(g.ID(), v.ID()); !errors.Is(err, ErrNotPrivileged) {
		t.Fatalf("dump err = %v", err)
	}
	if err := h.Shutdown(g.ID(), v.ID()); !errors.Is(err, ErrNotPrivileged) {
		t.Fatalf("shutdown err = %v", err)
	}
	if err := h.DestroyDomain(g.ID(), v.ID()); !errors.Is(err, ErrNotPrivileged) {
		t.Fatalf("destroy err = %v", err)
	}
}

func TestPageAllocationAndAliasing(t *testing.T) {
	h := newHost(t)
	g := mkGuest(t, h, "g")
	first, err := g.AllocPages(2)
	if err != nil {
		t.Fatal(err)
	}
	p0, err := g.Page(first)
	if err != nil {
		t.Fatal(err)
	}
	copy(p0, "written-via-page")
	run, err := g.PageRun(first, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(run, []byte("written-via-page")) {
		t.Fatal("PageRun does not alias Page memory")
	}
	if len(run) != 2*PageSize {
		t.Fatalf("run len = %d", len(run))
	}
}

func TestAllocPagesExhaustion(t *testing.T) {
	h := newHost(t)
	g, err := h.CreateDomain(DomainConfig{Name: "tiny", Pages: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.AllocPages(5); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v", err)
	}
	if _, err := g.AllocPages(4); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AllocPages(1); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v", err)
	}
}

func TestDumpCoreSeesGuestMemory(t *testing.T) {
	h := newHost(t)
	g := mkGuest(t, h, "g")
	first, _ := g.AllocPages(1)
	p, _ := g.Page(first)
	secret := []byte("AKIA-FAKE-CLOUD-CREDENTIAL")
	copy(p, secret)
	img, err := h.DumpCore(Dom0, g.ID())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(img, secret) {
		t.Fatal("dump does not contain guest memory contents")
	}
}

func TestDumpCoreHookObserves(t *testing.T) {
	h := newHost(t)
	g := mkGuest(t, h, "g")
	var seen DomID
	h.OnDumpCore(func(target DomID, img []byte) { seen = target })
	if _, err := h.DumpCore(Dom0, g.ID()); err != nil {
		t.Fatal(err)
	}
	if seen != g.ID() {
		t.Fatalf("hook saw dom%d, want dom%d", seen, g.ID())
	}
}

func TestDestroyScrubsMemoryAndRemovesDomain(t *testing.T) {
	h := newHost(t)
	g := mkGuest(t, h, "g")
	first, _ := g.AllocPages(1)
	p, _ := g.Page(first)
	copy(p, "residual-secret")
	if err := h.DestroyDomain(Dom0, g.ID()); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(p, []byte("residual-secret")) {
		t.Fatal("destroyed domain memory not scrubbed")
	}
	if _, err := h.Domain(g.ID()); !errors.Is(err, ErrNoSuchDomain) {
		t.Fatalf("lookup after destroy err = %v", err)
	}
	if err := h.DestroyDomain(Dom0, Dom0); err == nil {
		t.Fatal("dom0 destroy accepted")
	}
}

func TestGrantMapRoundTrip(t *testing.T) {
	h := newHost(t)
	g := mkGuest(t, h, "front")
	back := mkGuest(t, h, "backend")
	first, _ := g.AllocPages(1)
	ref, err := g.Grant(back.ID(), first, false)
	if err != nil {
		t.Fatal(err)
	}
	m, err := h.MapGrant(back.ID(), g.ID(), ref)
	if err != nil {
		t.Fatal(err)
	}
	copy(m.Bytes(), "backend-wrote-this")
	p, _ := g.Page(first)
	if !bytes.HasPrefix(p, []byte("backend-wrote-this")) {
		t.Fatal("mapping does not alias granter memory")
	}
	m.Unmap()
	m.Unmap() // idempotent
	if err := g.Revoke(ref); err != nil {
		t.Fatalf("revoke after unmap: %v", err)
	}
}

func TestGrantDeniedForWrongPeer(t *testing.T) {
	h := newHost(t)
	g := mkGuest(t, h, "front")
	back := mkGuest(t, h, "backend")
	thief := mkGuest(t, h, "thief")
	first, _ := g.AllocPages(1)
	ref, _ := g.Grant(back.ID(), first, false)
	if _, err := h.MapGrant(thief.ID(), g.ID(), ref); !errors.Is(err, ErrGrantDenied) {
		t.Fatalf("err = %v, want ErrGrantDenied", err)
	}
}

func TestRevokeWhileMappedFails(t *testing.T) {
	h := newHost(t)
	g := mkGuest(t, h, "front")
	back := mkGuest(t, h, "backend")
	first, _ := g.AllocPages(1)
	ref, _ := g.Grant(back.ID(), first, false)
	m, err := h.MapGrant(back.ID(), g.ID(), ref)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Revoke(ref); !errors.Is(err, ErrGrantInUse) {
		t.Fatalf("revoke while mapped err = %v", err)
	}
	m.Unmap()
	if err := g.Revoke(ref); err != nil {
		t.Fatal(err)
	}
	if _, err := h.MapGrant(back.ID(), g.ID(), ref); !errors.Is(err, ErrGrantRevoked) {
		t.Fatalf("map after revoke err = %v", err)
	}
}

func TestGrantRunContiguousMapping(t *testing.T) {
	h := newHost(t)
	g := mkGuest(t, h, "front")
	back := mkGuest(t, h, "backend")
	first, _ := g.AllocPages(3)
	refs, err := g.GrantRun(back.ID(), first, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	m, err := h.MapGrantRun(back.ID(), g.ID(), refs)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Bytes()) != 3*PageSize {
		t.Fatalf("run mapping len = %d", len(m.Bytes()))
	}
	// Write at a page boundary and confirm via individual pages.
	m.Bytes()[PageSize] = 0xAB
	p1, _ := g.Page(first + 1)
	if p1[0] != 0xAB {
		t.Fatal("run mapping not contiguous over page boundary")
	}
	m.Unmap()
	for _, r := range refs {
		if err := g.Revoke(r); err != nil {
			t.Fatalf("revoke %d: %v", r, err)
		}
	}
}

func TestMapGrantRunRejectsNonContiguous(t *testing.T) {
	h := newHost(t)
	g := mkGuest(t, h, "front")
	back := mkGuest(t, h, "backend")
	first, _ := g.AllocPages(3)
	r0, _ := g.Grant(back.ID(), first, false)
	r2, _ := g.Grant(back.ID(), first+2, false)
	if _, err := h.MapGrantRun(back.ID(), g.ID(), []GrantRef{r0, r2}); !errors.Is(err, ErrBadGrant) {
		t.Fatalf("err = %v, want ErrBadGrant", err)
	}
}

func TestEventChannelNotifyWait(t *testing.T) {
	h := newHost(t)
	g := mkGuest(t, h, "g")
	ec := h.EventChannels()
	gPort := ec.AllocUnbound(g.ID(), Dom0)
	d0Port, err := ec.BindInterdomain(Dom0, g.ID(), gPort)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- ec.Wait(g.ID(), gPort) }()
	if err := ec.Notify(Dom0, d0Port); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// Notify in the other direction queues until consumed.
	if err := ec.Notify(g.ID(), gPort); err != nil {
		t.Fatal(err)
	}
	n, err := ec.Pending(Dom0, d0Port)
	if err != nil || n != 1 {
		t.Fatalf("pending = %d, %v", n, err)
	}
	if err := ec.Wait(Dom0, d0Port); err != nil {
		t.Fatal(err)
	}
}

func TestEventChannelWrongOwnerRejected(t *testing.T) {
	h := newHost(t)
	g := mkGuest(t, h, "g")
	ec := h.EventChannels()
	port := ec.AllocUnbound(g.ID(), Dom0)
	if err := ec.Notify(Dom0, port); !errors.Is(err, ErrPortMismatch) {
		t.Fatalf("notify err = %v", err)
	}
	if _, err := ec.BindInterdomain(g.ID(), g.ID(), port); !errors.Is(err, ErrPortMismatch) {
		t.Fatalf("bad bind err = %v", err)
	}
}

func TestEventChannelCloseUnblocksWaiter(t *testing.T) {
	h := newHost(t)
	g := mkGuest(t, h, "g")
	ec := h.EventChannels()
	gPort := ec.AllocUnbound(g.ID(), Dom0)
	if _, err := ec.BindInterdomain(Dom0, g.ID(), gPort); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- ec.Wait(g.ID(), gPort) }()
	if err := ec.Close(g.ID(), gPort); err != nil {
		t.Fatal(err)
	}
	if err := <-done; !errors.Is(err, ErrChannelClosed) {
		t.Fatalf("wait err = %v", err)
	}
}

func TestDestroyClosesDomainChannels(t *testing.T) {
	h := newHost(t)
	g := mkGuest(t, h, "g")
	ec := h.EventChannels()
	gPort := ec.AllocUnbound(g.ID(), Dom0)
	d0Port, _ := ec.BindInterdomain(Dom0, g.ID(), gPort)
	done := make(chan error, 1)
	go func() { done <- ec.Wait(Dom0, d0Port) }()
	if err := h.DestroyDomain(Dom0, g.ID()); err != nil {
		t.Fatal(err)
	}
	if err := <-done; !errors.Is(err, ErrChannelClosed) {
		t.Fatalf("wait err = %v", err)
	}
}

func TestSaveRestorePreservesMemoryAndIdentity(t *testing.T) {
	src := newHost(t)
	dst := NewHypervisor(DomainConfig{Name: "Domain-0"})
	g := mkGuest(t, src, "traveler")
	first, _ := g.AllocPages(1)
	p, _ := g.Page(first)
	copy(p, "migrate-me")
	img, err := src.SaveDomain(Dom0, g.ID())
	if err != nil {
		t.Fatal(err)
	}
	if g.State() != StateSuspended {
		t.Fatalf("source state = %v", g.State())
	}
	r, err := dst.RestoreDomain(Dom0, img)
	if err != nil {
		t.Fatal(err)
	}
	if r.Launch() != g.Launch() {
		t.Fatal("launch measurement lost in migration")
	}
	rp, _ := r.Page(first)
	if !bytes.HasPrefix(rp, []byte("migrate-me")) {
		t.Fatal("memory lost in migration")
	}
}

func TestSaveDomainBadState(t *testing.T) {
	h := newHost(t)
	g := mkGuest(t, h, "g")
	if _, err := h.SaveDomain(Dom0, g.ID()); err != nil {
		t.Fatal(err)
	}
	if _, err := h.SaveDomain(Dom0, g.ID()); !errors.Is(err, ErrBadState) {
		t.Fatalf("second save err = %v", err)
	}
}

func TestArenaAllocWritesVisibleInDump(t *testing.T) {
	h := newHost(t)
	d0, _ := h.Domain(Dom0)
	a := NewArena(d0)
	buf, err := a.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	copy(buf, "manager-plaintext-secret")
	img, err := h.DumpCore(Dom0, Dom0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(img, []byte("manager-plaintext-secret")) {
		t.Fatal("arena memory not visible in dom0 dump")
	}
	a.Bus().Zeroize(buf)
	img, _ = h.DumpCore(Dom0, Dom0)
	if bytes.Contains(img, []byte("manager-plaintext-secret")) {
		t.Fatal("zeroized buffer still visible in dump")
	}
}

func TestArenaAllocSizesProperty(t *testing.T) {
	h := newHost(t)
	d0, _ := h.Domain(Dom0)
	a := NewArena(d0)
	f := func(sz uint16) bool {
		n := int(sz%2048) + 1
		b, err := a.Alloc(n)
		if err != nil {
			// Exhaustion is acceptable; anything else is not.
			return errors.Is(err, ErrOutOfMemory)
		}
		if len(b) != n {
			return false
		}
		for _, c := range b {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestArenaConcurrentAllocDisjoint(t *testing.T) {
	h := newHost(t)
	d0, _ := h.Domain(Dom0)
	a := NewArena(d0)
	const workers, per = 8, 50
	bufs := make(chan []byte, workers*per)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				b, err := a.Alloc(32)
				if err != nil {
					t.Errorf("alloc: %v", err)
					return
				}
				for j := range b {
					b[j] = byte(w + 1)
				}
				bufs <- b
			}
		}(w)
	}
	wg.Wait()
	close(bufs)
	for b := range bufs {
		first := b[0]
		for _, c := range b {
			if c != first {
				t.Fatal("overlapping arena allocations detected")
			}
		}
	}
}

func TestCPUAccounting(t *testing.T) {
	h := newHost(t)
	g := mkGuest(t, h, "g")
	g.ChargeCPU(1500)
	g.ChargeCPU(500)
	if got := g.CPUNanos(); got != 2000 {
		t.Fatalf("CPUNanos = %d", got)
	}
}

func TestDomainsSortedListing(t *testing.T) {
	h := newHost(t)
	mkGuest(t, h, "a")
	mkGuest(t, h, "b")
	mkGuest(t, h, "c")
	ds := h.Domains()
	if len(ds) != 4 {
		t.Fatalf("len = %d", len(ds))
	}
	for i := 1; i < len(ds); i++ {
		if ds[i-1].ID() >= ds[i].ID() {
			t.Fatal("domains not sorted by ID")
		}
	}
}
