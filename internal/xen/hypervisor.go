package xen

import (
	"fmt"
	"sort"
	"sync"
)

// Hypervisor is one simulated Xen host: its domains, grant tables, event
// channels and privileged control operations.
type Hypervisor struct {
	mu      sync.Mutex
	domains map[DomID]*Domain
	nextID  DomID
	nextGen uint64
	evtchn  *EventChannels

	// dumpHooks run on every DumpCore with the dump contents; the exposure
	// window experiment (E7) uses this to sample what an attacker would see.
	dumpHooks []func(target DomID, image []byte)
}

// NewHypervisor boots a simulated host with a privileged dom0 of the given
// configuration.
func NewHypervisor(dom0 DomainConfig) *Hypervisor {
	h := &Hypervisor{
		domains: make(map[DomID]*Domain),
		nextID:  1,
		evtchn:  newEventChannels(),
	}
	if dom0.Name == "" {
		dom0.Name = "Domain-0"
	}
	if dom0.Pages == 0 {
		dom0.Pages = 4 * DefaultPages // dom0 hosts the manager's working memory
	}
	h.nextGen++
	h.domains[Dom0] = newDomain(Dom0, dom0, h.nextGen)
	return h
}

// EventChannels returns the host's event-channel port table.
func (h *Hypervisor) EventChannels() *EventChannels { return h.evtchn }

// CreateDomain builds and starts a new unprivileged domain.
func (h *Hypervisor) CreateDomain(cfg DomainConfig) (*Domain, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("xen: domain must be named")
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	id := h.nextID
	h.nextID++
	h.nextGen++
	d := newDomain(id, cfg, h.nextGen)
	h.domains[id] = d
	return d, nil
}

// Domain looks up a live domain by ID.
func (h *Hypervisor) Domain(id DomID) (*Domain, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	d, ok := h.domains[id]
	if !ok {
		return nil, fmt.Errorf("%w: dom%d", ErrNoSuchDomain, id)
	}
	return d, nil
}

// Domains returns all live domains in ID order.
func (h *Hypervisor) Domains() []*Domain {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]*Domain, 0, len(h.domains))
	for _, d := range h.domains {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// requirePrivileged validates that caller may perform domctl operations.
func (h *Hypervisor) requirePrivileged(caller DomID) error {
	if caller != Dom0 {
		return fmt.Errorf("%w: dom%d attempted a domctl", ErrNotPrivileged, caller)
	}
	return nil
}

// Pause moves a running domain to the paused state.
func (h *Hypervisor) Pause(caller, target DomID) error {
	return h.setState(caller, target, StateRunning, StatePaused)
}

// Unpause resumes a paused domain.
func (h *Hypervisor) Unpause(caller, target DomID) error {
	return h.setState(caller, target, StatePaused, StateRunning)
}

// Shutdown marks a domain cleanly shut down. A domain may shut itself down;
// anything else requires privilege.
func (h *Hypervisor) Shutdown(caller, target DomID) error {
	if caller != target {
		if err := h.requirePrivileged(caller); err != nil {
			return err
		}
	}
	d, err := h.Domain(target)
	if err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.state == StateDestroyed {
		return ErrBadState
	}
	d.state = StateShutdown
	return nil
}

func (h *Hypervisor) setState(caller, target DomID, from, to DomainState) error {
	if err := h.requirePrivileged(caller); err != nil {
		return err
	}
	d, err := h.Domain(target)
	if err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.state != from {
		return fmt.Errorf("%w: dom%d is %v, want %v", ErrBadState, target, d.state, from)
	}
	d.state = to
	return nil
}

// DestroyDomain tears a domain down, scrubbing its memory and closing its
// event channels. Dom0 cannot be destroyed.
func (h *Hypervisor) DestroyDomain(caller, target DomID) error {
	if err := h.requirePrivileged(caller); err != nil {
		return err
	}
	if target == Dom0 {
		return fmt.Errorf("%w: cannot destroy dom0", ErrBadState)
	}
	h.mu.Lock()
	d, ok := h.domains[target]
	if !ok {
		h.mu.Unlock()
		return fmt.Errorf("%w: dom%d", ErrNoSuchDomain, target)
	}
	delete(h.domains, target)
	h.mu.Unlock()
	h.evtchn.closeAllFor(target)
	d.mu.Lock()
	d.state = StateDestroyed
	d.bus.beginSnapshot()
	for i := range d.slab {
		d.slab[i] = 0 // scrub, as Xen does before freeing pages
	}
	d.bus.endSnapshot()
	d.mu.Unlock()
	return nil
}

// OnDumpCore registers a hook observing every core dump taken on this host.
func (h *Hypervisor) OnDumpCore(fn func(target DomID, image []byte)) {
	h.mu.Lock()
	h.dumpHooks = append(h.dumpHooks, fn)
	h.mu.Unlock()
}

// DumpCore returns a full memory image of the target domain, modeling
// `xm dump-core` — the host-side attack capability the paper's abstract
// names. Only the privileged domain may invoke it; the point of the paper is
// that on a consolidated server this privilege is exactly what an attacker or
// rogue administrator holds.
func (h *Hypervisor) DumpCore(caller, target DomID) ([]byte, error) {
	if err := h.requirePrivileged(caller); err != nil {
		return nil, err
	}
	d, err := h.Domain(target)
	if err != nil {
		return nil, err
	}
	img := d.snapshotMemory()
	h.mu.Lock()
	hooks := append([]func(DomID, []byte){}, h.dumpHooks...)
	h.mu.Unlock()
	for _, fn := range hooks {
		fn(target, img)
	}
	return img, nil
}

// DomainImage is a saved domain: configuration identity plus a full memory
// snapshot, the unit `xm save` / live migration moves between hosts.
type DomainImage struct {
	Name    string
	Launch  LaunchDigest
	VCPUs   int
	PagesN  int
	Memory  []byte
	SrcHost string
}

// SaveDomain suspends the target and returns its migration image.
func (h *Hypervisor) SaveDomain(caller, target DomID) (*DomainImage, error) {
	if err := h.requirePrivileged(caller); err != nil {
		return nil, err
	}
	d, err := h.Domain(target)
	if err != nil {
		return nil, err
	}
	d.mu.Lock()
	if d.state != StateRunning && d.state != StatePaused {
		d.mu.Unlock()
		return nil, fmt.Errorf("%w: dom%d is %v", ErrBadState, target, d.state)
	}
	d.state = StateSuspended
	d.mu.Unlock()
	return &DomainImage{
		Name:   d.name,
		Launch: d.launch,
		VCPUs:  d.vcpus,
		PagesN: len(d.pages),
		Memory: d.snapshotMemory(),
	}, nil
}

// RestoreDomain creates a new domain on this host from a migration image.
// The restored domain keeps its launch measurement — identity travels with
// the image, not with the (host-local) domain ID.
func (h *Hypervisor) RestoreDomain(caller DomID, img *DomainImage) (*Domain, error) {
	if err := h.requirePrivileged(caller); err != nil {
		return nil, err
	}
	h.mu.Lock()
	id := h.nextID
	h.nextID++
	h.nextGen++
	d := newDomain(id, DomainConfig{Name: img.Name, Pages: img.PagesN, VCPUs: img.VCPUs}, h.nextGen)
	d.launch = img.Launch
	h.domains[id] = d
	h.mu.Unlock()
	if err := d.restoreMemory(img.Memory); err != nil {
		h.mu.Lock()
		delete(h.domains, id)
		h.mu.Unlock()
		return nil, err
	}
	return d, nil
}
