package xen

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentGrantMapUnmap hammers grant/map/unmap/revoke from many
// goroutines; mappings must always alias the right page and revocation must
// never race a live mapping.
func TestConcurrentGrantMapUnmap(t *testing.T) {
	h := NewHypervisor(DomainConfig{Name: "Domain-0"})
	granter, err := h.CreateDomain(DomainConfig{Name: "granter", Kernel: []byte("k"), Pages: 64})
	if err != nil {
		t.Fatal(err)
	}
	peer, err := h.CreateDomain(DomainConfig{Name: "peer", Kernel: []byte("k")})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			page, err := granter.AllocPages(1)
			if err != nil {
				t.Errorf("alloc: %v", err)
				return
			}
			marker := []byte(fmt.Sprintf("worker-%d-marker", w))
			p, _ := granter.Page(page)
			granter.MemBus().BeginWrite()
			copy(p, marker)
			granter.MemBus().EndWrite()
			for i := 0; i < 50; i++ {
				ref, err := granter.Grant(peer.ID(), page, false)
				if err != nil {
					t.Errorf("grant: %v", err)
					return
				}
				m, err := h.MapGrant(peer.ID(), granter.ID(), ref)
				if err != nil {
					t.Errorf("map: %v", err)
					return
				}
				if !bytes.HasPrefix(m.Bytes(), marker) {
					t.Errorf("worker %d mapped the wrong page", w)
					m.Unmap()
					return
				}
				// Revoke must refuse while mapped.
				if err := granter.Revoke(ref); err == nil {
					t.Errorf("revoke succeeded while mapped")
					return
				}
				m.Unmap()
				if err := granter.Revoke(ref); err != nil {
					t.Errorf("revoke after unmap: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestConcurrentEventChannels stresses notify/wait pairs across many
// channels at once; every notification must be consumed exactly once.
func TestConcurrentEventChannels(t *testing.T) {
	h := NewHypervisor(DomainConfig{Name: "Domain-0"})
	g, err := h.CreateDomain(DomainConfig{Name: "g", Kernel: []byte("k")})
	if err != nil {
		t.Fatal(err)
	}
	ec := h.EventChannels()
	const channels = 16
	const events = 100
	var wg sync.WaitGroup
	for c := 0; c < channels; c++ {
		gPort := ec.AllocUnbound(g.ID(), Dom0)
		d0Port, err := ec.BindInterdomain(Dom0, g.ID(), gPort)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(2)
		go func(port EvtchnPort) {
			defer wg.Done()
			for i := 0; i < events; i++ {
				if err := ec.Notify(Dom0, port); err != nil {
					t.Errorf("notify: %v", err)
					return
				}
			}
		}(d0Port)
		go func(port EvtchnPort) {
			defer wg.Done()
			for i := 0; i < events; i++ {
				if err := ec.Wait(g.ID(), port); err != nil {
					t.Errorf("wait: %v", err)
					return
				}
			}
		}(gPort)
	}
	wg.Wait()
}

// TestConcurrentDumpDuringWrites exercises the memory bus: core dumps taken
// while writers mutate arena buffers must neither race (checked by -race)
// nor observe torn zeroization boundaries within one guarded write.
func TestConcurrentDumpDuringWrites(t *testing.T) {
	h := NewHypervisor(DomainConfig{Name: "Domain-0", Pages: 256})
	d0, _ := h.Domain(Dom0)
	arena := NewArena(d0)
	buf, err := arena.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		pattern := bytes.Repeat([]byte{0xAA}, 64)
		for {
			select {
			case <-stop:
				return
			default:
			}
			arena.Bus().GuardedCopy(buf, pattern)
			arena.Bus().Zeroize(buf)
		}
	}()
	for i := 0; i < 200; i++ {
		img, err := h.DumpCore(Dom0, Dom0)
		if err != nil {
			t.Fatal(err)
		}
		// The bus serializes whole guarded operations against the snapshot:
		// the buffer appears either fully written (64×0xAA) or fully
		// zeroized, never torn. (The -race detector additionally verifies
		// the absence of unsynchronized access.)
		if idx := bytes.Index(img, []byte{0xAA}); idx >= 0 && idx+64 <= len(img) {
			run := 0
			for j := idx; j < idx+64 && img[j] == 0xAA; j++ {
				run++
			}
			if run != 64 {
				t.Fatalf("dump %d observed a torn write: %d of 64 bytes", i, run)
			}
		}
	}
	close(stop)
	wg.Wait()
}
