package xen

import (
	"errors"
	"testing"
	"time"
)

func TestWaitTimeoutExpiresWithoutConsuming(t *testing.T) {
	h := newHost(t)
	g := mkGuest(t, h, "g")
	ec := h.EventChannels()
	gPort := ec.AllocUnbound(g.ID(), Dom0)
	d0Port, err := ec.BindInterdomain(Dom0, g.ID(), gPort)
	if err != nil {
		t.Fatal(err)
	}
	if err := ec.WaitTimeout(g.ID(), gPort, time.Millisecond); !errors.Is(err, ErrWaitTimeout) {
		t.Fatalf("wait err = %v, want ErrWaitTimeout", err)
	}
	// A pending event still satisfies a later timed wait in full.
	if err := ec.Notify(Dom0, d0Port); err != nil {
		t.Fatal(err)
	}
	if err := ec.WaitTimeout(g.ID(), gPort, time.Second); err != nil {
		t.Fatalf("wait after notify: %v", err)
	}
	n, err := ec.Pending(g.ID(), gPort)
	if err != nil || n != 0 {
		t.Fatalf("pending = %d, %v, want 0", n, err)
	}
}

func TestWaitTimeoutWokenByNotify(t *testing.T) {
	h := newHost(t)
	g := mkGuest(t, h, "g")
	ec := h.EventChannels()
	gPort := ec.AllocUnbound(g.ID(), Dom0)
	d0Port, err := ec.BindInterdomain(Dom0, g.ID(), gPort)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- ec.WaitTimeout(g.ID(), gPort, 30*time.Second) }()
	if err := ec.Notify(Dom0, d0Port); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("wait err = %v", err)
	}
}

func TestWaitTimeoutSeesClose(t *testing.T) {
	h := newHost(t)
	g := mkGuest(t, h, "g")
	ec := h.EventChannels()
	gPort := ec.AllocUnbound(g.ID(), Dom0)
	if _, err := ec.BindInterdomain(Dom0, g.ID(), gPort); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- ec.WaitTimeout(g.ID(), gPort, 30*time.Second) }()
	if err := ec.Close(g.ID(), gPort); err != nil {
		t.Fatal(err)
	}
	if err := <-done; !errors.Is(err, ErrChannelClosed) {
		t.Fatalf("wait err = %v, want ErrChannelClosed", err)
	}
}

func TestNotifyFaultDropsEvents(t *testing.T) {
	h := newHost(t)
	g := mkGuest(t, h, "g")
	ec := h.EventChannels()
	gPort := ec.AllocUnbound(g.ID(), Dom0)
	d0Port, err := ec.BindInterdomain(Dom0, g.ID(), gPort)
	if err != nil {
		t.Fatal(err)
	}
	drop := true
	ec.SetNotifyFault(func(DomID, EvtchnPort) bool { return drop })
	// Dropped: Notify reports success (the sender cannot tell) but nothing
	// becomes pending on the peer.
	if err := ec.Notify(Dom0, d0Port); err != nil {
		t.Fatalf("dropped notify err = %v", err)
	}
	if n, _ := ec.Pending(g.ID(), gPort); n != 0 {
		t.Fatalf("pending after dropped notify = %d, want 0", n)
	}
	if got := ec.DroppedNotifies(); got != 1 {
		t.Fatalf("DroppedNotifies = %d, want 1", got)
	}
	// Delivery resumes once the hook stops dropping.
	drop = false
	if err := ec.Notify(Dom0, d0Port); err != nil {
		t.Fatal(err)
	}
	if n, _ := ec.Pending(g.ID(), gPort); n != 1 {
		t.Fatalf("pending after clean notify = %d, want 1", n)
	}
	ec.SetNotifyFault(nil)
}

func TestSuppressedNotifyStats(t *testing.T) {
	h := newHost(t)
	ec := h.EventChannels()
	if got := ec.SuppressedNotifies(); got != 0 {
		t.Fatalf("fresh suppressed count = %d", got)
	}
	for i := 0; i < 3; i++ {
		ec.NoteSuppressed()
	}
	if got := ec.SuppressedNotifies(); got != 3 {
		t.Fatalf("suppressed = %d, want 3", got)
	}
}

// TestDroppedAndSuppressedDoorbellStillDrains models the batched-driver worst
// case: the producer coalesces its doorbell away (NoteSuppressed, no Notify)
// AND the one notify it does send is dropped by the fault hook. A consumer
// blocked in WaitTimeout must still come back via the timeout so it can
// re-check shared state — no event may be required for forward progress.
func TestDroppedAndSuppressedDoorbellStillDrains(t *testing.T) {
	h := newHost(t)
	g := mkGuest(t, h, "g")
	ec := h.EventChannels()
	gPort := ec.AllocUnbound(g.ID(), Dom0)
	d0Port, err := ec.BindInterdomain(Dom0, g.ID(), gPort)
	if err != nil {
		t.Fatal(err)
	}
	ec.SetNotifyFault(func(DomID, EvtchnPort) bool { return true })
	defer ec.SetNotifyFault(nil)

	// Producer: skips one doorbell entirely, sends one that gets dropped.
	ec.NoteSuppressed()
	if err := ec.Notify(Dom0, d0Port); err != nil {
		t.Fatal(err)
	}
	if ec.DroppedNotifies() == 0 {
		t.Fatal("notify was not dropped")
	}
	// Consumer: no event will ever arrive; the wait must return ErrWaitTimeout
	// within the polling interval, not hang.
	done := make(chan error, 1)
	go func() { done <- ec.WaitTimeout(g.ID(), gPort, 5*time.Millisecond) }()
	select {
	case err := <-done:
		if !errors.Is(err, ErrWaitTimeout) {
			t.Fatalf("wait err = %v, want ErrWaitTimeout", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitTimeout hung with all doorbells lost")
	}
	if ec.SuppressedNotifies() != 1 {
		t.Fatalf("suppressed = %d, want 1", ec.SuppressedNotifies())
	}
}
