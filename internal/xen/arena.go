package xen

import (
	"fmt"
	"sync"
)

// Arena is a byte-granular bump allocator over a domain's memory pages. The
// vTPM manager allocates its working buffers from a dom0 arena so that
// everything it holds in memory is visible to a dom0 core dump — the honesty
// requirement of the memory-dump attacker model. Buffers are never recycled
// between owners (real heap allocators do reuse memory, which only makes the
// attacker's life easier; the bump allocator is thus conservative toward the
// defender).
type Arena struct {
	dom *Domain
	mu  sync.Mutex
	cur []byte // remainder of the current page run
}

// arenaChunkPages is how many pages the arena reserves from the domain at a
// time.
const arenaChunkPages = 16

// NewArena creates an allocator over dom's memory.
func NewArena(dom *Domain) *Arena { return &Arena{dom: dom} }

// Bus returns the memory bus of the domain the arena allocates from. Holders
// of arena buffers use it to guard writes against whole-memory observers.
func (a *Arena) Bus() *MemBus { return a.dom.MemBus() }

// Alloc returns n bytes of the domain's memory, zeroed.
func (a *Arena) Alloc(n int) ([]byte, error) {
	if n <= 0 {
		return nil, fmt.Errorf("xen: arena alloc of %d bytes", n)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.cur) < n {
		chunk := arenaChunkPages
		if need := (n + PageSize - 1) / PageSize; need > chunk {
			chunk = need
		}
		first, err := a.dom.AllocPages(chunk)
		if err != nil {
			return nil, err
		}
		run, err := a.dom.PageRun(first, chunk)
		if err != nil {
			return nil, err
		}
		a.cur = run
	}
	buf := a.cur[:n:n]
	a.cur = a.cur[n:]
	for i := range buf {
		buf[i] = 0
	}
	return buf, nil
}

// MemBus serializes raw simulated-memory mutation against whole-memory
// observers (DumpCore, save/restore). On hardware these race benignly — a
// dump can contain torn writes — but in Go a concurrent read and write of
// the same bytes is a data race, so writers take the bus in read mode (they
// are mutually disjoint) and snapshots take it exclusively.
//
// Each Domain owns one bus covering its pages, so writers into one domain's
// memory never contend with writers or dumps of another domain — the global
// bus this replaces serialized every guest behind a single host-wide lock.
// A nil *MemBus is valid and synchronizes nothing; it is used for private
// buffers that no dump can observe.
type MemBus struct {
	mu sync.RWMutex
}

// BeginWrite enters a raw-memory mutation section. Never nest sections.
func (b *MemBus) BeginWrite() {
	if b == nil {
		return
	}
	b.mu.RLock()
}

// EndWrite leaves a raw-memory mutation section.
func (b *MemBus) EndWrite() {
	if b == nil {
		return
	}
	b.mu.RUnlock()
}

// beginSnapshot/endSnapshot bracket whole-memory observers.
func (b *MemBus) beginSnapshot() {
	if b == nil {
		return
	}
	b.mu.Lock()
}

func (b *MemBus) endSnapshot() {
	if b == nil {
		return
	}
	b.mu.Unlock()
}

// Zeroize scrubs a buffer in place under the bus. Callers use it to bound how
// long secrets stay resident in dumpable memory.
func (b *MemBus) Zeroize(buf []byte) {
	b.BeginWrite()
	defer b.EndWrite()
	for i := range buf {
		buf[i] = 0
	}
}

// GuardedCopy copies src into dst under the bus; use it for writes into
// simulated memory pages that may be dumped concurrently.
func (b *MemBus) GuardedCopy(dst, src []byte) int {
	b.BeginWrite()
	defer b.EndWrite()
	return copy(dst, src)
}
