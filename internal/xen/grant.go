package xen

import (
	"errors"
	"fmt"
	"sync"
)

// Grant-table errors.
var (
	ErrBadGrant     = errors.New("xen: bad grant reference")
	ErrGrantDenied  = errors.New("xen: grant does not permit this domain")
	ErrGrantInUse   = errors.New("xen: grant is still mapped")
	ErrGrantRevoked = errors.New("xen: grant has been revoked")
)

// grantEntry is one row of a domain's grant table.
type grantEntry struct {
	peer     DomID
	page     int
	readonly bool
	active   bool
	mapCount int
}

// grantTable tracks the pages a domain has shared with peers, like Xen's
// per-domain grant table.
type grantTable struct {
	owner *Domain
	mu    sync.Mutex
	ents  []grantEntry
}

func newGrantTable(owner *Domain) *grantTable {
	return &grantTable{owner: owner}
}

// Grant shares one page of the owner's memory with peer and returns the
// grant reference the peer uses to map it.
func (d *Domain) Grant(peer DomID, page int, readonly bool) (GrantRef, error) {
	if _, err := d.Page(page); err != nil {
		return 0, err
	}
	gt := d.grants
	gt.mu.Lock()
	defer gt.mu.Unlock()
	// Reuse a dead slot if one exists, else append.
	for i := range gt.ents {
		if !gt.ents[i].active && gt.ents[i].mapCount == 0 {
			gt.ents[i] = grantEntry{peer: peer, page: page, readonly: readonly, active: true}
			return GrantRef(i), nil
		}
	}
	gt.ents = append(gt.ents, grantEntry{peer: peer, page: page, readonly: readonly, active: true})
	return GrantRef(len(gt.ents) - 1), nil
}

// GrantRun grants n contiguous pages starting at first to peer and returns
// the grant references in page order. Used for multi-page rings.
func (d *Domain) GrantRun(peer DomID, first, n int, readonly bool) ([]GrantRef, error) {
	refs := make([]GrantRef, 0, n)
	for i := 0; i < n; i++ {
		ref, err := d.Grant(peer, first+i, readonly)
		if err != nil {
			for _, r := range refs {
				d.Revoke(r) //nolint:errcheck // best-effort rollback
			}
			return nil, err
		}
		refs = append(refs, ref)
	}
	return refs, nil
}

// Revoke deactivates a grant. It fails while the grant is mapped, matching
// the real hypervisor's refusal to yank pages from under a peer.
func (d *Domain) Revoke(ref GrantRef) error {
	gt := d.grants
	gt.mu.Lock()
	defer gt.mu.Unlock()
	if int(ref) >= len(gt.ents) || !gt.ents[ref].active {
		return ErrBadGrant
	}
	if gt.ents[ref].mapCount > 0 {
		return ErrGrantInUse
	}
	gt.ents[ref].active = false
	return nil
}

// GrantMapping is a peer's live mapping of one or more granted pages.
type GrantMapping struct {
	bytes   []byte
	ro      bool
	once    sync.Once
	release func()
}

// Bytes returns the mapped page contents. The slice aliases the granter's
// memory. For read-only grants a defensive copy would defeat the simulation,
// so callers of read-only mappings are trusted not to write, as mapped
// hardware would fault them.
func (m *GrantMapping) Bytes() []byte { return m.bytes }

// ReadOnly reports whether the grant was read-only.
func (m *GrantMapping) ReadOnly() bool { return m.ro }

// Unmap releases the mapping. Safe to call more than once.
func (m *GrantMapping) Unmap() { m.once.Do(m.release) }

// MapGrant maps granter's grant ref into the caller domain. The hypervisor
// validates that the caller is the peer the grant names.
func (h *Hypervisor) MapGrant(caller DomID, granter DomID, ref GrantRef) (*GrantMapping, error) {
	return h.MapGrantRun(caller, granter, []GrantRef{ref})
}

// MapGrantRun maps a run of grants for contiguous pages as one byte slice.
// All refs must target consecutive pages of the granter; this is how the
// multi-page vTPM ring is mapped by the backend.
func (h *Hypervisor) MapGrantRun(caller DomID, granter DomID, refs []GrantRef) (*GrantMapping, error) {
	if len(refs) == 0 {
		return nil, ErrBadGrant
	}
	gd, err := h.Domain(granter)
	if err != nil {
		return nil, err
	}
	gt := gd.grants
	gt.mu.Lock()
	first := -1
	ro := false
	for i, ref := range refs {
		if int(ref) >= len(gt.ents) {
			gt.mu.Unlock()
			return nil, ErrBadGrant
		}
		e := gt.ents[ref]
		if !e.active {
			gt.mu.Unlock()
			return nil, ErrGrantRevoked
		}
		if e.peer != caller {
			gt.mu.Unlock()
			return nil, fmt.Errorf("%w: grant for dom%d, caller dom%d", ErrGrantDenied, e.peer, caller)
		}
		if i == 0 {
			first = e.page
			ro = e.readonly
		} else if e.page != first+i {
			gt.mu.Unlock()
			return nil, fmt.Errorf("%w: refs not contiguous", ErrBadGrant)
		}
	}
	for _, ref := range refs {
		gt.ents[ref].mapCount++
	}
	gt.mu.Unlock()
	run, err := gd.PageRun(first, len(refs))
	if err != nil {
		gt.mu.Lock()
		for _, ref := range refs {
			gt.ents[ref].mapCount--
		}
		gt.mu.Unlock()
		return nil, err
	}
	held := append([]GrantRef(nil), refs...)
	return &GrantMapping{
		bytes: run,
		ro:    ro,
		release: func() {
			gt.mu.Lock()
			for _, ref := range held {
				gt.ents[ref].mapCount--
			}
			gt.mu.Unlock()
		},
	}, nil
}
