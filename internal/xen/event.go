package xen

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Event-channel errors.
var (
	ErrBadPort       = errors.New("xen: bad event channel port")
	ErrPortNotBound  = errors.New("xen: event channel not bound")
	ErrPortMismatch  = errors.New("xen: event channel does not belong to caller")
	ErrChannelClosed = errors.New("xen: event channel closed")
	// ErrWaitTimeout reports that WaitTimeout elapsed with no event — the
	// caller should re-check whatever state the notification would have
	// announced and wait again.
	ErrWaitTimeout = errors.New("xen: event wait timed out")
)

// channelState is the lifecycle of one event-channel endpoint.
type channelState int

const (
	chanUnbound channelState = iota
	chanBound
	chanClosed
)

// evtchn is one endpoint. Endpoints come in bound pairs; Notify on one sets
// the pending flag on the other and wakes its waiters, like Xen's
// EVTCHNOP_send.
type evtchn struct {
	owner   DomID
	remote  DomID
	peer    EvtchnPort
	state   channelState
	pending int
	cond    *sync.Cond
}

// EventChannels is a host-wide port table shared by all domains, guarded by a
// single lock (port operations are control-plane, not data-plane).
type EventChannels struct {
	mu    sync.Mutex
	ports map[EvtchnPort]*evtchn
	next  EvtchnPort
	// notifyFault, when set, is consulted on every Notify; returning true
	// drops the event silently (the peer is never woken). Fault injection
	// only — the hook runs under ec.mu and must not reenter EventChannels.
	notifyFault func(caller DomID, port EvtchnPort) bool
	dropped     uint64
}

// SetNotifyFault installs (or, with nil, removes) a notification-drop hook.
// The hook is called under the port-table lock and must not call back into
// EventChannels.
func (ec *EventChannels) SetNotifyFault(fn func(caller DomID, port EvtchnPort) bool) {
	ec.mu.Lock()
	defer ec.mu.Unlock()
	ec.notifyFault = fn
}

// DroppedNotifies returns how many notifications the fault hook has swallowed.
func (ec *EventChannels) DroppedNotifies() uint64 {
	ec.mu.Lock()
	defer ec.mu.Unlock()
	return ec.dropped
}

// newEventChannels creates an empty port table.
func newEventChannels() *EventChannels {
	return &EventChannels{ports: make(map[EvtchnPort]*evtchn), next: 1}
}

// AllocUnbound allocates a port owned by owner awaiting a bind from remote,
// like EVTCHNOP_alloc_unbound.
func (ec *EventChannels) AllocUnbound(owner, remote DomID) EvtchnPort {
	ec.mu.Lock()
	defer ec.mu.Unlock()
	port := ec.next
	ec.next++
	ch := &evtchn{owner: owner, remote: remote, state: chanUnbound}
	ch.cond = sync.NewCond(&ec.mu)
	ec.ports[port] = ch
	return port
}

// BindInterdomain binds caller's new port to remotePort, which remoteDom must
// have allocated for caller. Returns the caller's port.
func (ec *EventChannels) BindInterdomain(caller DomID, remoteDom DomID, remotePort EvtchnPort) (EvtchnPort, error) {
	ec.mu.Lock()
	defer ec.mu.Unlock()
	rch, ok := ec.ports[remotePort]
	if !ok {
		return 0, ErrBadPort
	}
	if rch.state != chanUnbound || rch.owner != remoteDom || rch.remote != caller {
		return 0, fmt.Errorf("%w: port %d owner dom%d remote dom%d state %d",
			ErrPortMismatch, remotePort, rch.owner, rch.remote, rch.state)
	}
	port := ec.next
	ec.next++
	lch := &evtchn{owner: caller, remote: remoteDom, peer: remotePort, state: chanBound}
	lch.cond = sync.NewCond(&ec.mu)
	ec.ports[port] = lch
	rch.peer = port
	rch.state = chanBound
	return port, nil
}

// Notify sends an event on caller's port, waking waiters on the peer end.
func (ec *EventChannels) Notify(caller DomID, port EvtchnPort) error {
	ec.mu.Lock()
	defer ec.mu.Unlock()
	ch, ok := ec.ports[port]
	if !ok {
		return ErrBadPort
	}
	if ch.owner != caller {
		return ErrPortMismatch
	}
	if ch.state != chanBound {
		return ErrPortNotBound
	}
	peer, ok := ec.ports[ch.peer]
	if !ok || peer.state != chanBound {
		return ErrPortNotBound
	}
	if ec.notifyFault != nil && ec.notifyFault(caller, port) {
		ec.dropped++
		return nil
	}
	peer.pending++
	peer.cond.Broadcast()
	return nil
}

// Wait blocks until an event is pending on caller's port (or the channel is
// closed) and consumes one pending event.
func (ec *EventChannels) Wait(caller DomID, port EvtchnPort) error {
	ec.mu.Lock()
	defer ec.mu.Unlock()
	ch, ok := ec.ports[port]
	if !ok {
		return ErrBadPort
	}
	if ch.owner != caller {
		return ErrPortMismatch
	}
	for ch.pending == 0 && ch.state == chanBound {
		ch.cond.Wait()
	}
	if ch.state == chanClosed {
		return ErrChannelClosed
	}
	ch.pending--
	return nil
}

// WaitTimeout is Wait with a deadline: it blocks until an event is pending,
// the channel closes, or d elapses, in which case it returns ErrWaitTimeout
// without consuming anything. Callers that must survive lost notifications
// (see SetNotifyFault) wait with a short timeout and re-poll shared state.
//
// sync.Cond has no timed wait, so a timer broadcasts the port's cond after d;
// every waiter on the port wakes, rechecks its predicate, and the one whose
// timer fired observes the deadline. Spurious wakeups are already part of the
// cond contract, so this costs nothing extra in correctness.
func (ec *EventChannels) WaitTimeout(caller DomID, port EvtchnPort, d time.Duration) error {
	ec.mu.Lock()
	defer ec.mu.Unlock()
	ch, ok := ec.ports[port]
	if !ok {
		return ErrBadPort
	}
	if ch.owner != caller {
		return ErrPortMismatch
	}
	deadline := time.Now().Add(d)
	expired := false
	timer := time.AfterFunc(d, func() {
		ec.mu.Lock()
		expired = true
		ch.cond.Broadcast()
		ec.mu.Unlock()
	})
	defer timer.Stop()
	for ch.pending == 0 && ch.state == chanBound {
		if expired || !time.Now().Before(deadline) {
			return ErrWaitTimeout
		}
		ch.cond.Wait()
	}
	if ch.state == chanClosed {
		return ErrChannelClosed
	}
	ch.pending--
	return nil
}

// Pending returns the number of unconsumed events on a port.
func (ec *EventChannels) Pending(caller DomID, port EvtchnPort) (int, error) {
	ec.mu.Lock()
	defer ec.mu.Unlock()
	ch, ok := ec.ports[port]
	if !ok {
		return 0, ErrBadPort
	}
	if ch.owner != caller {
		return 0, ErrPortMismatch
	}
	return ch.pending, nil
}

// Close tears down a port and wakes any waiters on it and on its peer.
func (ec *EventChannels) Close(caller DomID, port EvtchnPort) error {
	ec.mu.Lock()
	defer ec.mu.Unlock()
	ch, ok := ec.ports[port]
	if !ok {
		return ErrBadPort
	}
	if ch.owner != caller {
		return ErrPortMismatch
	}
	wasBound := ch.state == chanBound
	ch.state = chanClosed
	ch.cond.Broadcast()
	if wasBound {
		if peer, ok := ec.ports[ch.peer]; ok && peer.state == chanBound {
			peer.state = chanClosed
			peer.cond.Broadcast()
		}
	}
	return nil
}

// closeAllFor tears down every port owned by or remoted to dom; used on
// domain destruction.
func (ec *EventChannels) closeAllFor(dom DomID) {
	ec.mu.Lock()
	defer ec.mu.Unlock()
	for _, ch := range ec.ports {
		if (ch.owner == dom || ch.remote == dom) && ch.state != chanClosed {
			ch.state = chanClosed
			ch.cond.Broadcast()
		}
	}
}
