package xen

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Event-channel errors.
var (
	ErrBadPort       = errors.New("xen: bad event channel port")
	ErrPortNotBound  = errors.New("xen: event channel not bound")
	ErrPortMismatch  = errors.New("xen: event channel does not belong to caller")
	ErrChannelClosed = errors.New("xen: event channel closed")
	// ErrWaitTimeout reports that WaitTimeout elapsed with no event — the
	// caller should re-check whatever state the notification would have
	// announced and wait again.
	ErrWaitTimeout = errors.New("xen: event wait timed out")
)

// channelState is the lifecycle of one event-channel endpoint.
type channelState int

const (
	chanUnbound channelState = iota
	chanBound
	chanClosed
)

// evtchn is one endpoint. Endpoints come in bound pairs; Notify on one sets
// the pending flag on the other and wakes its waiters, like Xen's
// EVTCHNOP_send.
type evtchn struct {
	owner   DomID
	remote  DomID
	peer    EvtchnPort
	state   channelState
	pending int
	cond    *sync.Cond

	// timer is the port's single reusable wake-up timer for WaitTimeout: it
	// broadcasts cond when it fires and is re-armed in place, so a steady
	// polling driver waits without allocating a fresh timer per call.
	// timerDeadline is when the armed timer will fire (zero when unarmed).
	timer         *time.Timer
	timerDeadline time.Time
}

// EventChannels is a host-wide port table shared by all domains, guarded by a
// single lock (port operations are control-plane, not data-plane).
type EventChannels struct {
	mu    sync.Mutex
	ports map[EvtchnPort]*evtchn
	next  EvtchnPort
	// notifyFault, when set, is consulted on every Notify; returning true
	// drops the event silently (the peer is never woken). Fault injection
	// only — the hook runs under ec.mu and must not reenter EventChannels.
	notifyFault func(caller DomID, port EvtchnPort) bool
	dropped     uint64
	// suppressed counts doorbells a driver skipped because the peer's ring
	// notify flag said none was wanted (batched-drain coalescing).
	suppressed uint64
	// sent counts doorbells actually delivered; with suppressed it shows how
	// well a workload coalesces notifications.
	sent uint64

	// notifyLatency models what EVTCHNOP_send costs on real hardware: the
	// hypercall trap, event delivery, and the upcall into the peer domain —
	// typically tens of microseconds once scheduling is counted. The sender
	// pays it synchronously, before the event lands. Zero (the default)
	// keeps delivery instantaneous; benchmarks and experiments set it to
	// study how batching and doorbell suppression amortize per-notify cost.
	notifyLatency atomic.Int64
}

// SetNotifyLatency sets the modelled per-doorbell delivery cost (see
// notifyLatency). Safe to call while traffic is running.
func (ec *EventChannels) SetNotifyLatency(d time.Duration) {
	ec.notifyLatency.Store(int64(d))
}

// NotifyLatency returns the modelled per-doorbell delivery cost.
func (ec *EventChannels) NotifyLatency() time.Duration {
	return time.Duration(ec.notifyLatency.Load())
}

// SentNotifies returns how many doorbells were actually delivered.
func (ec *EventChannels) SentNotifies() uint64 {
	ec.mu.Lock()
	defer ec.mu.Unlock()
	return ec.sent
}

// NoteSuppressed records one doorbell a driver coalesced away. Drivers call
// it instead of Notify when the ring's notify flag shows the peer is already
// draining, so the stats still account for every would-be notification.
func (ec *EventChannels) NoteSuppressed() {
	ec.mu.Lock()
	ec.suppressed++
	ec.mu.Unlock()
}

// SuppressedNotifies returns how many doorbells drivers coalesced away.
func (ec *EventChannels) SuppressedNotifies() uint64 {
	ec.mu.Lock()
	defer ec.mu.Unlock()
	return ec.suppressed
}

// SetNotifyFault installs (or, with nil, removes) a notification-drop hook.
// The hook is called under the port-table lock and must not call back into
// EventChannels.
func (ec *EventChannels) SetNotifyFault(fn func(caller DomID, port EvtchnPort) bool) {
	ec.mu.Lock()
	defer ec.mu.Unlock()
	ec.notifyFault = fn
}

// DroppedNotifies returns how many notifications the fault hook has swallowed.
func (ec *EventChannels) DroppedNotifies() uint64 {
	ec.mu.Lock()
	defer ec.mu.Unlock()
	return ec.dropped
}

// newEventChannels creates an empty port table.
func newEventChannels() *EventChannels {
	return &EventChannels{ports: make(map[EvtchnPort]*evtchn), next: 1}
}

// AllocUnbound allocates a port owned by owner awaiting a bind from remote,
// like EVTCHNOP_alloc_unbound.
func (ec *EventChannels) AllocUnbound(owner, remote DomID) EvtchnPort {
	ec.mu.Lock()
	defer ec.mu.Unlock()
	port := ec.next
	ec.next++
	ch := &evtchn{owner: owner, remote: remote, state: chanUnbound}
	ch.cond = sync.NewCond(&ec.mu)
	ec.ports[port] = ch
	return port
}

// BindInterdomain binds caller's new port to remotePort, which remoteDom must
// have allocated for caller. Returns the caller's port.
func (ec *EventChannels) BindInterdomain(caller DomID, remoteDom DomID, remotePort EvtchnPort) (EvtchnPort, error) {
	ec.mu.Lock()
	defer ec.mu.Unlock()
	rch, ok := ec.ports[remotePort]
	if !ok {
		return 0, ErrBadPort
	}
	if rch.state != chanUnbound || rch.owner != remoteDom || rch.remote != caller {
		return 0, fmt.Errorf("%w: port %d owner dom%d remote dom%d state %d",
			ErrPortMismatch, remotePort, rch.owner, rch.remote, rch.state)
	}
	port := ec.next
	ec.next++
	lch := &evtchn{owner: caller, remote: remoteDom, peer: remotePort, state: chanBound}
	lch.cond = sync.NewCond(&ec.mu)
	ec.ports[port] = lch
	rch.peer = port
	rch.state = chanBound
	return port, nil
}

// Notify sends an event on caller's port, waking waiters on the peer end.
// When a notify latency is configured the caller sleeps it off first — the
// modelled hypercall traps before the event is delivered — outside the port
// lock so unrelated channels keep moving.
func (ec *EventChannels) Notify(caller DomID, port EvtchnPort) error {
	if d := ec.notifyLatency.Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
	ec.mu.Lock()
	defer ec.mu.Unlock()
	ch, ok := ec.ports[port]
	if !ok {
		return ErrBadPort
	}
	if ch.owner != caller {
		return ErrPortMismatch
	}
	if ch.state != chanBound {
		return ErrPortNotBound
	}
	peer, ok := ec.ports[ch.peer]
	if !ok || peer.state != chanBound {
		return ErrPortNotBound
	}
	if ec.notifyFault != nil && ec.notifyFault(caller, port) {
		ec.dropped++
		return nil
	}
	peer.pending++
	peer.cond.Broadcast()
	ec.sent++
	return nil
}

// Wait blocks until an event is pending on caller's port (or the channel is
// closed) and consumes one pending event.
func (ec *EventChannels) Wait(caller DomID, port EvtchnPort) error {
	ec.mu.Lock()
	defer ec.mu.Unlock()
	ch, ok := ec.ports[port]
	if !ok {
		return ErrBadPort
	}
	if ch.owner != caller {
		return ErrPortMismatch
	}
	for ch.pending == 0 && ch.state == chanBound {
		ch.cond.Wait()
	}
	if ch.state == chanClosed {
		return ErrChannelClosed
	}
	ch.pending--
	return nil
}

// WaitTimeout is Wait with a deadline: it blocks until an event is pending,
// the channel closes, or d elapses, in which case it returns ErrWaitTimeout
// without consuming anything. Callers that must survive lost notifications
// (see SetNotifyFault) wait with a short timeout and re-poll shared state.
//
// sync.Cond has no timed wait, so a timer broadcasts the port's cond; every
// waiter on the port wakes, rechecks its predicate, and the one whose
// deadline passed observes the timeout. Spurious wakeups are already part of
// the cond contract, so this costs nothing extra in correctness. Each port
// keeps ONE reusable timer, re-armed in place to the earliest outstanding
// deadline — a driver polling every few milliseconds waits without
// allocating a timer and closure per call.
func (ec *EventChannels) WaitTimeout(caller DomID, port EvtchnPort, d time.Duration) error {
	ec.mu.Lock()
	defer ec.mu.Unlock()
	ch, ok := ec.ports[port]
	if !ok {
		return ErrBadPort
	}
	if ch.owner != caller {
		return ErrPortMismatch
	}
	deadline := time.Now().Add(d)
	for ch.pending == 0 && ch.state == chanBound {
		now := time.Now()
		if !now.Before(deadline) {
			return ErrWaitTimeout
		}
		ec.armTimerLocked(ch, deadline, now)
		ch.cond.Wait()
	}
	if ch.state == chanClosed {
		return ErrChannelClosed
	}
	ch.pending--
	return nil
}

// armTimerLocked ensures ch's wake-up timer will broadcast ch.cond no later
// than deadline. Called with ec.mu held. The timer is created once per port
// and re-armed thereafter; a past timerDeadline means the last arming already
// fired.
func (ec *EventChannels) armTimerLocked(ch *evtchn, deadline, now time.Time) {
	if ch.timer == nil {
		ch.timer = time.AfterFunc(deadline.Sub(now), func() {
			ec.mu.Lock()
			ch.cond.Broadcast()
			ec.mu.Unlock()
		})
		ch.timerDeadline = deadline
		return
	}
	if ch.timerDeadline.After(now) && !ch.timerDeadline.After(deadline) {
		return // armed and firing at or before our deadline
	}
	ch.timer.Reset(deadline.Sub(now))
	ch.timerDeadline = deadline
}

// Pending returns the number of unconsumed events on a port.
func (ec *EventChannels) Pending(caller DomID, port EvtchnPort) (int, error) {
	ec.mu.Lock()
	defer ec.mu.Unlock()
	ch, ok := ec.ports[port]
	if !ok {
		return 0, ErrBadPort
	}
	if ch.owner != caller {
		return 0, ErrPortMismatch
	}
	return ch.pending, nil
}

// Close tears down a port and wakes any waiters on it and on its peer.
func (ec *EventChannels) Close(caller DomID, port EvtchnPort) error {
	ec.mu.Lock()
	defer ec.mu.Unlock()
	ch, ok := ec.ports[port]
	if !ok {
		return ErrBadPort
	}
	if ch.owner != caller {
		return ErrPortMismatch
	}
	wasBound := ch.state == chanBound
	ch.state = chanClosed
	stopTimerLocked(ch)
	ch.cond.Broadcast()
	if wasBound {
		if peer, ok := ec.ports[ch.peer]; ok && peer.state == chanBound {
			peer.state = chanClosed
			stopTimerLocked(peer)
			peer.cond.Broadcast()
		}
	}
	return nil
}

// stopTimerLocked stops a port's reusable wake-up timer, if any. A callback
// already in flight only broadcasts the cond, which closed-port waiters
// tolerate as a spurious wakeup.
func stopTimerLocked(ch *evtchn) {
	if ch.timer != nil {
		ch.timer.Stop()
		ch.timerDeadline = time.Time{}
	}
}

// closeAllFor tears down every port owned by or remoted to dom; used on
// domain destruction.
func (ec *EventChannels) closeAllFor(dom DomID) {
	ec.mu.Lock()
	defer ec.mu.Unlock()
	for _, ch := range ec.ports {
		if (ch.owner == dom || ch.remote == dom) && ch.state != chanClosed {
			ch.state = chanClosed
			stopTimerLocked(ch)
			ch.cond.Broadcast()
		}
	}
}
