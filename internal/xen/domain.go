package xen

import (
	"errors"
	"fmt"
	"sync"
)

// Errors returned by domain and hypervisor operations.
var (
	ErrNoSuchDomain  = errors.New("xen: no such domain")
	ErrBadState      = errors.New("xen: operation invalid in current domain state")
	ErrNotPrivileged = errors.New("xen: caller is not privileged")
	ErrOutOfMemory   = errors.New("xen: domain out of memory pages")
	ErrBadPage       = errors.New("xen: page index out of range")
)

// Domain is one virtual machine instance. All mutable state is guarded by mu;
// memory page contents are raw shared byte slices and follow the grant-table
// discipline instead (concurrent mapped access is exactly what shared rings
// do on real hardware).
type Domain struct {
	id     DomID
	name   string
	launch LaunchDigest
	vcpus  int

	mu        sync.Mutex
	state     DomainState
	slab      []byte // one contiguous arena; pages view into it
	pages     [][]byte
	nextAlloc int // next never-allocated page (bump allocator)
	grants    *grantTable
	cpuNanos  int64 // accumulated simulated CPU time
	genID     uint64

	// bus serializes raw writes into this domain's pages against
	// whole-memory observers of this domain only (see MemBus).
	bus MemBus
}

// MemBus returns the domain's memory bus. Writers into the domain's pages
// (rings, arena buffer holders) bracket their mutations with it so dumps of
// this domain — and only this domain — see untorn writes.
func (d *Domain) MemBus() *MemBus { return &d.bus }

// ID returns the domain's ID on its host.
func (d *Domain) ID() DomID { return d.id }

// Name returns the domain's configured name.
func (d *Domain) Name() string { return d.name }

// Launch returns the domain's boot measurement.
func (d *Domain) Launch() LaunchDigest { return d.launch }

// VCPUs returns the domain's virtual CPU count.
func (d *Domain) VCPUs() int { return d.vcpus }

// State returns the domain's lifecycle state.
func (d *Domain) State() DomainState {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.state
}

// Pages returns the number of memory pages the domain owns.
func (d *Domain) Pages() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.pages)
}

// AllocPages reserves n contiguous never-before-allocated pages and returns
// the index of the first one. Components running "inside" the domain use this
// to place rings and working buffers in dumpable memory.
func (d *Domain) AllocPages(n int) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.state == StateDestroyed {
		return 0, ErrBadState
	}
	if d.nextAlloc+n > len(d.pages) {
		return 0, fmt.Errorf("%w: want %d pages, %d free", ErrOutOfMemory, n, len(d.pages)-d.nextAlloc)
	}
	first := d.nextAlloc
	d.nextAlloc += n
	return first, nil
}

// Page returns the backing bytes of one page. The slice aliases domain
// memory: writes through it are visible to dumps and to grant mappings.
func (d *Domain) Page(idx int) ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if idx < 0 || idx >= len(d.pages) {
		return nil, fmt.Errorf("%w: %d of %d", ErrBadPage, idx, len(d.pages))
	}
	return d.pages[idx], nil
}

// PageRun returns a single contiguous byte slice spanning pages
// [first, first+n). The underlying pages were allocated contiguously by the
// simulator, so the run aliases domain memory just like Page does.
func (d *Domain) PageRun(first, n int) ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if first < 0 || n <= 0 || first+n > len(d.pages) {
		return nil, fmt.Errorf("%w: run [%d,%d) of %d", ErrBadPage, first, first+n, len(d.pages))
	}
	// Pages are carved from one arena slab at creation, so adjacent pages
	// are adjacent in memory and a run is just a wider view of the slab.
	return d.slab[first*PageSize : (first+n)*PageSize : (first+n)*PageSize], nil
}

// CPUNanos returns the accumulated simulated CPU time.
func (d *Domain) CPUNanos() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.cpuNanos
}

// ChargeCPU accounts simulated CPU time to the domain.
func (d *Domain) ChargeCPU(nanos int64) {
	d.mu.Lock()
	d.cpuNanos += nanos
	d.mu.Unlock()
}

// newDomain creates a domain with a contiguous page arena so PageRun can hand
// out multi-page spans.
func newDomain(id DomID, cfg DomainConfig, genID uint64) *Domain {
	pagesN := cfg.Pages
	if pagesN <= 0 {
		pagesN = DefaultPages
	}
	vcpus := cfg.VCPUs
	if vcpus <= 0 {
		vcpus = 1
	}
	slab := make([]byte, pagesN*PageSize)
	pages := make([][]byte, pagesN)
	for i := range pages {
		pages[i] = slab[i*PageSize : (i+1)*PageSize : (i+1)*PageSize]
	}
	d := &Domain{
		id:     id,
		name:   cfg.Name,
		launch: MeasureLaunch(cfg.Kernel, cfg.Initrd, cfg.Cmdline),
		vcpus:  vcpus,
		state:  StateRunning,
		slab:   slab,
		pages:  pages,
		genID:  genID,
	}
	d.grants = newGrantTable(d)
	return d
}

// snapshotMemory copies all page contents (used by dump-core and
// save/restore). It holds the domain's memory bus exclusively so concurrent
// ring and manager writes into this domain cannot race the copy; writes into
// other domains proceed untouched.
func (d *Domain) snapshotMemory() []byte {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.bus.beginSnapshot()
	defer d.bus.endSnapshot()
	out := make([]byte, len(d.pages)*PageSize)
	for i, p := range d.pages {
		copy(out[i*PageSize:], p)
	}
	return out
}

// restoreMemory overwrites page contents from a snapshot.
func (d *Domain) restoreMemory(img []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(img) != len(d.pages)*PageSize {
		return fmt.Errorf("xen: memory image is %d bytes, domain has %d", len(img), len(d.pages)*PageSize)
	}
	d.bus.beginSnapshot()
	defer d.bus.endSnapshot()
	for i, p := range d.pages {
		copy(p, img[i*PageSize:(i+1)*PageSize])
	}
	return nil
}
