package experiments

// The benchmark-regression gate: a small fixed suite of hot-path benchmarks
// whose results are serialized as JSON (BENCH_<n>.json in the repo root is
// the committed baseline) and compared against a baseline by `benchrunner
// -check`. CI runs the suite on every push and fails the gate job when a
// benchmark regresses by more than the tolerance in ns/op or grows its
// allocs/op. Absolute numbers vary across machines — the gate is advisory
// (continue-on-error in CI) but loud, and the same machine comparing against
// its own fresh baseline (make bench-gate) is authoritative.

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"xvtpm"
	"xvtpm/internal/cluster"
	"xvtpm/internal/core"
	"xvtpm/internal/metrics"
	"xvtpm/internal/store/logstore"
	"xvtpm/internal/tpm"
	"xvtpm/internal/trace"
	"xvtpm/internal/vtpm"
	"xvtpm/internal/workload"
	"xvtpm/internal/xen"
)

// BenchSchema tags bench-report JSON so a -check against a file from some
// other tool fails loudly instead of comparing nonsense.
const BenchSchema = "xvtpm-bench/v1"

// DefaultBenchTolerance is the relative ns/op regression that fails the
// gate: 15%, wide enough for shared-runner noise, narrow enough to catch a
// reintroduced lock or copy on the hot path.
const DefaultBenchTolerance = 0.15

// allocGrowthTolerance is the allocs/op increase that fails the gate.
// Steady-state allocation counts are near-deterministic; the half-object
// allowance absorbs background-worker scheduling jitter only.
const allocGrowthTolerance = 0.5

// allocNoiseRel widens the allowance for bulk rows like ReviveAll10k, whose
// millions of allocs/op jitter a few percent with GC scheduling: growth must
// exceed both the absolute half-object floor and this relative slack to
// fail. Hot-path rows (tens of allocs) are still governed by the absolute
// floor.
const allocNoiseRel = 0.05

// BenchResult is one benchmark's measurement.
type BenchResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// P95Ns is the p95 end-to-end dispatch latency observed by the
	// manager's histograms during the run (0 for micro-benchmarks that do
	// not cross the dispatch path).
	P95Ns float64 `json:"p95_ns,omitempty"`
}

// BenchReport is the serialized result set of one suite run.
type BenchReport struct {
	Schema  string        `json:"schema"`
	Bits    int           `json:"bits"`
	Results []BenchResult `json:"results"`
}

// WriteJSON serializes the report (indented, trailing newline).
func (r *BenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ParseBenchReport decodes and validates a serialized report.
func ParseBenchReport(data []byte) (*BenchReport, error) {
	var r BenchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("parsing bench report: %w", err)
	}
	if r.Schema != BenchSchema {
		return nil, fmt.Errorf("bench report schema %q, want %q", r.Schema, BenchSchema)
	}
	return &r, nil
}

// ReadBenchReport loads a baseline file.
func ReadBenchReport(path string) (*BenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseBenchReport(data)
}

// LatestBaseline resolves the highest-numbered BENCH_<n>.json in dir, so
// Makefile and CI reference "auto" instead of hard-coding the current
// baseline and editing two files on every bump.
func LatestBaseline(dir string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	best, bestN := "", -1
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		var n int
		if _, err := fmt.Sscanf(name, "BENCH_%d.json", &n); err != nil {
			continue
		}
		// Reject partial matches like BENCH_9.json.bak: re-render and compare.
		if fmt.Sprintf("BENCH_%d.json", n) != name {
			continue
		}
		if n > bestN {
			bestN, best = n, name
		}
	}
	if bestN < 0 {
		return "", fmt.Errorf("experiments: no BENCH_<n>.json baseline in %s", dir)
	}
	return filepath.Join(dir, best), nil
}

// benchCmd builds a raw marshaled TPM command (baseline-guard framing).
func benchCmd(ordinal uint32, params func(*tpm.Writer)) []byte {
	p := tpm.NewWriter()
	params(p)
	w := tpm.NewWriter()
	w.U16(tpm.TagRQUCommand)
	w.U32(uint32(10 + len(p.Bytes())))
	w.U32(ordinal)
	w.Raw(p.Bytes())
	return w.Bytes()
}

// benchRig is a writeback-policy manager with one bound domain — the same
// rig the alloc guard measures, so gate numbers and alloc budgets describe
// the same path.
type benchRig struct {
	mgr *vtpm.Manager
	dom *xen.Domain
}

// newBenchRig builds the rig; traceDepth is passed through to the manager
// (0 = default span ring, negative disables tracing — the E14 ablation).
func newBenchRig(bits, traceDepth int) (*benchRig, error) {
	hv := xen.NewHypervisor(xen.DomainConfig{Name: "Domain-0", Pages: 8192})
	dom0, err := hv.Domain(xen.Dom0)
	if err != nil {
		return nil, err
	}
	mgr := vtpm.NewManager(hv, vtpm.NewMemStore(), xen.NewArena(dom0),
		core.NewBaselineGuard(), vtpm.ManagerConfig{
			RSABits: bits, Seed: []byte("benchgate"),
			Checkpoint: vtpm.CheckpointWriteback,
			TraceDepth: traceDepth,
		})
	dom, err := hv.CreateDomain(xen.DomainConfig{Name: "bg", Kernel: []byte("bgk")})
	if err != nil {
		mgr.Close() //nolint:errcheck // constructor failure path
		return nil, err
	}
	id, err := mgr.CreateInstance()
	if err == nil {
		err = mgr.BindInstance(id, dom)
	}
	if err != nil {
		mgr.Close() //nolint:errcheck // constructor failure path
		return nil, err
	}
	return &benchRig{mgr: mgr, dom: dom}, nil
}

func (r *benchRig) dispatchBench(payload []byte) (testing.BenchmarkResult, float64, error) {
	// Warm scratch buffers before measuring, as the alloc guard does.
	for i := 0; i < 100; i++ {
		if _, err := r.mgr.Dispatch(r.dom.ID(), r.dom.Launch(), payload); err != nil {
			return testing.BenchmarkResult{}, 0, err
		}
	}
	var benchErr error
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := r.mgr.Dispatch(r.dom.ID(), r.dom.Launch(), payload); err != nil {
				benchErr = err
				b.FailNow()
			}
		}
	})
	return res, float64(r.mgr.DispatchStats().Total.P95), benchErr
}

// RunBenchSuite runs the gate's benchmark suite. With names, only the named
// benchmarks run (for tests). Quick mode trims nothing — testing.Benchmark
// self-calibrates — but the suite is small by design (~10s total).
func RunBenchSuite(cfg Config, names ...string) (*BenchReport, error) {
	wanted := func(name string) bool {
		if len(names) == 0 {
			return true
		}
		for _, n := range names {
			if n == name {
				return true
			}
		}
		return false
	}
	rep := &BenchReport{Schema: BenchSchema, Bits: cfg.bits()}
	add := func(name string, res testing.BenchmarkResult, p95 float64) {
		rep.Results = append(rep.Results, BenchResult{
			Name:        name,
			NsPerOp:     float64(res.NsPerOp()),
			AllocsPerOp: float64(res.AllocsPerOp()),
			P95Ns:       p95,
		})
	}

	getRandom := benchCmd(tpm.OrdGetRandom, func(w *tpm.Writer) { w.U32(16) })
	extend := benchCmd(tpm.OrdExtend, func(w *tpm.Writer) {
		w.U32(7)
		w.Raw(make([]byte, tpm.DigestSize))
	})
	for _, bc := range []struct {
		name    string
		payload []byte
	}{
		{"DispatchGetRandom", getRandom},
		{"DispatchExtend", extend},
	} {
		if !wanted(bc.name) {
			continue
		}
		rig, err := newBenchRig(cfg.bits(), 0)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", bc.name, err)
		}
		res, p95, err := rig.dispatchBench(bc.payload)
		cerr := rig.mgr.Close()
		if err == nil {
			err = cerr
		}
		if err != nil {
			return nil, fmt.Errorf("%s: %w", bc.name, err)
		}
		add(bc.name, res, p95)
	}

	if wanted("GuestGetRandom") {
		// The full guarded path: client → ring → backend → improved guard →
		// engine, the per-command figure the paper's tables are about.
		h, err := newHost(cfg, xvtpm.ModeImproved)
		if err != nil {
			return nil, fmt.Errorf("GuestGetRandom: %w", err)
		}
		g, err := h.CreateGuest(xvtpm.GuestConfig{Name: "bench", Kernel: []byte("bk")})
		if err == nil {
			for i := 0; i < 50; i++ { // warm the codec and response buffers
				if _, err = g.TPM.GetRandom(16); err != nil {
					break
				}
			}
		}
		if err != nil {
			h.Close() //nolint:errcheck // constructor failure path
			return nil, fmt.Errorf("GuestGetRandom: %w", err)
		}
		var benchErr error
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := g.TPM.GetRandom(16); err != nil {
					benchErr = err
					b.FailNow()
				}
			}
		})
		p95 := float64(h.Manager.DispatchStats().Total.P95)
		cerr := h.Close()
		if benchErr == nil {
			benchErr = cerr
		}
		if benchErr != nil {
			return nil, fmt.Errorf("GuestGetRandom: %w", benchErr)
		}
		add("GuestGetRandom", res, p95)
	}

	// Per-profile rows: the same logical op through each profile's wire
	// protocol over the full guarded path. The 12/20 pairs make a protocol
	// regression in either backend visible without changing the gate's
	// cross-profile expectations (absolute costs legitimately differ — 2.0
	// extends two PCR banks, and its quote signs with a different key
	// hierarchy than the 1.2 workload key).
	for _, pc := range []struct {
		name    string
		profile tpm.Profile
		setup   func(*xvtpm.Guest) (func() error, error)
	}{
		{"GuestExtend12", tpm.Profile12, func(g *xvtpm.Guest) (func() error, error) {
			var digest [tpm.DigestSize]byte
			return func() error { _, err := g.TPM.Extend(7, digest); return err }, nil
		}},
		{"GuestExtend20", tpm.Profile20, func(g *xvtpm.Guest) (func() error, error) {
			event := []byte("bench-event")
			return func() error { return g.TPM2.Extend(7, event) }, nil
		}},
		{"GuestQuote12", tpm.Profile12, func(g *xvtpm.Guest) (func() error, error) {
			r, err := workload.Prepare(g.TPM, 1, cfg.bits())
			if err != nil {
				return nil, err
			}
			return func() error { return r.Step(workload.OpQuote) }, nil
		}},
		{"GuestQuote20", tpm.Profile20, func(g *xvtpm.Guest) (func() error, error) {
			nonce := []byte("bench-nonce")
			pcrs := []int{0, 1, 10}
			return func() error { _, _, err := g.TPM2.Quote(nonce, pcrs); return err }, nil
		}},
	} {
		if !wanted(pc.name) {
			continue
		}
		res, p95, err := guestProfileBench(cfg, pc.profile, pc.setup)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", pc.name, err)
		}
		add(pc.name, res, p95)
	}

	for _, tc := range []struct {
		name  string
		depth int
	}{
		// The same 8-way concurrent offered load against a lockstep (depth-1)
		// and a pipelined (depth-8) frontend: the pair demonstrates what ring
		// batching and the pending table buy in sustained commands/sec.
		{"GuestLockstepThroughput", 1},
		{"GuestPipelinedThroughput", 8},
	} {
		if !wanted(tc.name) {
			continue
		}
		res, p95, err := guestThroughputBench(cfg, tc.depth)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", tc.name, err)
		}
		add(tc.name, res, p95)
	}

	if wanted("HistogramRecord") {
		h := metrics.NewHistogram(nil)
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				h.Record(time.Duration(i))
			}
		})
		add("HistogramRecord", res, 0)
	}

	if wanted("SpanRecord") {
		tr := trace.New(trace.Config{})
		ring := tr.NewRing()
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			sp := trace.Span{Instance: 1, Ordinal: tpm.OrdGetRandom}
			for i := 0; i < b.N; i++ {
				ring.Record(sp)
			}
		})
		add("SpanRecord", res, 0)
	}

	// Signing-pool rows (DESIGN.md §14): the quote path with the RSA
	// signature on the pool. QuoteSignPooled is one sequential client on an
	// otherwise idle engine — the deferred handoff must not tax the
	// single-quote cost. QuoteBatchAmortized is 8 concurrent quote streams
	// against one key through a batching pool — the Merkle batch must
	// amortize the signature across its members, which the synthetic
	// QuoteBatchSpeedup gate (current-run ratio of the two rows) enforces.
	for _, sc := range []struct {
		name    string
		poolCfg tpm.SignPoolConfig
		streams int
	}{
		{"QuoteSignPooled", tpm.SignPoolConfig{Workers: 2}, 1},
		{"QuoteBatchAmortized", tpm.SignPoolConfig{
			Workers: 2, BatchWindow: 2 * time.Millisecond, BatchMax: 8,
		}, 8},
	} {
		if !wanted(sc.name) {
			continue
		}
		res, err := signPoolBench(cfg, sc.poolCfg, sc.streams)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sc.name, err)
		}
		add(sc.name, res, 0)
	}

	// Store rows: the log-structured backend's three hot paths — concurrent
	// group-committed Puts (checkpoint flush waves), log replay (cold-start
	// index rebuild), and a full 10k-instance ReviveAll through the manager.

	if wanted("StorePutGroupCommit") {
		// 8-way concurrent checkpoint writers over a modeled 25µs flush: the
		// group-commit window must amortize the flush across the batch, so
		// ns/op lands well under what a serialized flush per Put would cost
		// (the sleep's effective granularity on the host, not its nominal
		// 25µs — E17 measures the flat-vs-grouped ratio directly).
		ls := logstore.New(logstore.Config{
			SyncDelay: 25 * time.Microsecond, NotFound: vtpm.ErrNoState,
		})
		names := make([]string, 4096)
		for i := range names {
			names[i] = fmt.Sprintf("vtpm-%08d.state", i)
		}
		blob := make([]byte, 512)
		var next atomic.Uint64
		var benchErr error
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			b.SetParallelism(8)
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					i := next.Add(1)
					if err := ls.Put(names[i%uint64(len(names))], blob); err != nil {
						benchErr = err
						return
					}
				}
			})
		})
		if benchErr != nil {
			return nil, fmt.Errorf("StorePutGroupCommit: %w", benchErr)
		}
		add("StorePutGroupCommit", res, 0)
	}

	if wanted("StoreRecoverReplay") || wanted("ReviveAll10k") {
		// Both recovery rows share one prebuilt 10k-blob log. ReviveAll needs
		// real checkpoint blobs, so one donor engine is serialized once and
		// its baseline-guard wrapping (plaintext, ID-independent) is reused
		// under every instance name.
		eng, err := tpm.NewEngine(tpm.Profile12, tpm.Config{RSABits: cfg.bits(), Seed: []byte("benchgate-donor")})
		if err != nil {
			return nil, fmt.Errorf("store bench donor: %w", err)
		}
		if err := tpm.StartupEngine(eng); err != nil {
			return nil, fmt.Errorf("store bench donor: %w", err)
		}
		blob, err := core.NewBaselineGuard().ProtectState(
			vtpm.InstanceInfo{ID: 1, Profile: tpm.Profile12}, eng.AppendState(nil))
		if err != nil {
			return nil, fmt.Errorf("store bench donor: %w", err)
		}
		const fleet = 10000
		seeded := logstore.New(logstore.Config{NotFound: vtpm.ErrNoState, DisableAutoCompact: true})
		for i := 1; i <= fleet; i++ {
			if err := seeded.Put(fmt.Sprintf("vtpm-%08d.state", i), blob); err != nil {
				return nil, fmt.Errorf("store bench seed: %w", err)
			}
		}
		disk := seeded.Disk()

		if wanted("StoreRecoverReplay") {
			// Warm the heap to steady state first: the opening iterations
			// grow the index maps and scan buffers from nothing, and that
			// one-time growth is noise, not replay cost.
			for i := 0; i < 3; i++ {
				if _, _, err := logstore.Open(disk, logstore.Config{NotFound: vtpm.ErrNoState}); err != nil {
					return nil, fmt.Errorf("StoreRecoverReplay: %w", err)
				}
			}
			var benchErr error
			res := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, _, err := logstore.Open(disk, logstore.Config{NotFound: vtpm.ErrNoState}); err != nil {
						benchErr = err
						b.FailNow()
					}
				}
			})
			if benchErr != nil {
				return nil, fmt.Errorf("StoreRecoverReplay: %w", benchErr)
			}
			add("StoreRecoverReplay", res, 0)
		}

		if wanted("ReviveAll10k") {
			hv := xen.NewHypervisor(xen.DomainConfig{Name: "Domain-0", Pages: 8192})
			dom0, err := hv.Domain(xen.Dom0)
			if err != nil {
				return nil, fmt.Errorf("ReviveAll10k: %w", err)
			}
			ls, _, err := logstore.Open(disk, logstore.Config{NotFound: vtpm.ErrNoState})
			if err != nil {
				return nil, fmt.Errorf("ReviveAll10k: %w", err)
			}
			var benchErr error
			res := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					mgr := vtpm.NewManager(hv, ls, xen.NewArena(dom0),
						core.NewBaselineGuard(), vtpm.ManagerConfig{
							RSABits: cfg.bits(), TraceDepth: -1,
						})
					b.StartTimer()
					revived, err := mgr.ReviveAll()
					b.StopTimer()
					if err == nil && len(revived) != fleet {
						err = fmt.Errorf("revived %d of %d", len(revived), fleet)
					}
					if cerr := mgr.Close(); err == nil {
						err = cerr
					}
					if err != nil {
						benchErr = err
						b.FailNow()
					}
					b.StartTimer()
				}
			})
			if benchErr != nil {
				return nil, fmt.Errorf("ReviveAll10k: %w", benchErr)
			}
			add("ReviveAll10k", res, 0)
		}
	}

	// Federation rows: the cluster package's three operational paths
	// (DESIGN.md §12) as wall-clock figures — ns/op is elapsed time over
	// instances moved or revived, so the gate catches a serialization or
	// extra-flush regression in the handoff pipeline.

	if wanted("DrainThroughput") {
		// Mass drain: a 256-guest fleet off one host through the bounded
		// worker pipeline; ns/op is the per-instance move cost at 16 workers.
		c, err := newBenchCluster(cfg)
		if err != nil {
			return nil, fmt.Errorf("DrainThroughput: %w", err)
		}
		const fleet = 256
		if _, err := e18CreateFleet(c, "h0", fleet, 16); err != nil {
			c.Close() //nolint:errcheck // constructor failure path
			return nil, fmt.Errorf("DrainThroughput: %w", err)
		}
		ds, err := c.Drain("h0", 16)
		if err == nil && (ds.Failed > 0 || ds.Moved != fleet) {
			err = fmt.Errorf("moved %d, failed %d of %d", ds.Moved, ds.Failed, fleet)
		}
		if cerr := c.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, fmt.Errorf("DrainThroughput: %w", err)
		}
		add("DrainThroughput", testing.BenchmarkResult{N: ds.Moved, T: ds.Elapsed}, 0)
	}

	if wanted("MigrateBlackoutP99") {
		// The guest-visible pause of one fenced handoff: one guest
		// ping-ponged between two hosts with a live session extending
		// throughout; ns/op is the blackout p99 across the moves. The row
		// is ceiling-gated (see blackoutCeiling), not baseline-gated: a
		// tail statistic over a few dozen moves is too noisy for a
		// relative tolerance.
		c, err := newBenchCluster(cfg)
		if err != nil {
			return nil, fmt.Errorf("MigrateBlackoutP99: %w", err)
		}
		err = func() error {
			if _, err := c.CreateGuestOn("h0", xvtpm.GuestConfig{
				Name: "bench", Kernel: []byte("bk"), Pages: 16,
			}); err != nil {
				return err
			}
			s := c.Session("bench")
			var stop atomic.Bool
			done := make(chan error, 1)
			go func() {
				var digest [tpm.DigestSize]byte
				for !stop.Load() {
					digest[0]++
					if _, err := s.Extend(8, digest); err != nil {
						done <- err
						return
					}
				}
				done <- s.Verify()
			}()
			const moves = 30
			for i := 0; i < moves; i++ {
				dst := "h1"
				if i%2 == 1 {
					dst = "h0"
				}
				if err := c.Migrate("bench", dst); err != nil {
					stop.Store(true)
					<-done
					return err
				}
			}
			stop.Store(true)
			return <-done
		}()
		if cerr := c.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, fmt.Errorf("MigrateBlackoutP99: %w", err)
		}
		p99 := c.ClusterStats().Blackout.Quantile(0.99)
		add("MigrateBlackoutP99", testing.BenchmarkResult{N: 1, T: p99}, 0)
	}

	if wanted("EvacuateDeadHost") {
		// Failure-driven evacuation: a condemned host's 128 guests revived
		// from committed checkpoints on the survivor; ns/op is the
		// per-instance revival cost at 16 workers.
		c, err := newBenchCluster(cfg)
		if err != nil {
			return nil, fmt.Errorf("EvacuateDeadHost: %w", err)
		}
		const fleet = 128
		var es cluster.EvacStats
		err = func() error {
			if _, err := e18CreateFleet(c, "h1", fleet, 16); err != nil {
				return err
			}
			h1, _ := c.Member("h1")
			if err := h1.Host.Manager.CheckpointAll(); err != nil {
				return err
			}
			if err := c.Condemn("h1"); err != nil {
				return err
			}
			var eerr error
			es, eerr = c.Evacuate("h1", 16)
			if eerr == nil && (es.Failed > 0 || es.Revived != fleet) {
				eerr = fmt.Errorf("revived %d, failed %d of %d", es.Revived, es.Failed, fleet)
			}
			return eerr
		}()
		if cerr := c.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, fmt.Errorf("EvacuateDeadHost: %w", err)
		}
		add("EvacuateDeadHost", testing.BenchmarkResult{N: es.Revived, T: es.Elapsed}, 0)
	}

	// Deterministic capacity rows (see capacitygate.go): appended when any
	// of them is wanted, computed in one sweep.
	capWanted := false
	for _, n := range CapacityRowNames {
		if wanted(n) {
			capWanted = true
			break
		}
	}
	if capWanted {
		capRows, err := CapacityRows()
		if err != nil {
			return nil, err
		}
		for _, row := range capRows {
			if wanted(row.Name) {
				rep.Results = append(rep.Results, row)
			}
		}
	}

	return rep, nil
}

// newBenchCluster builds the two-host federation the gate's cluster rows
// run against.
func newBenchCluster(cfg Config) (*cluster.Cluster, error) {
	return cluster.New(cluster.Config{
		Hosts:     2,
		Mode:      xvtpm.ModeImproved,
		RSABits:   cfg.bits(),
		Seed:      []byte("benchgate-cluster"),
		Dom0Pages: 1 << 17,
	})
}

// guestProfileBench builds an improved-mode host, creates one guest of the
// given profile, and benchmarks the closure setup returns against it.
func guestProfileBench(cfg Config, profile tpm.Profile, setup func(*xvtpm.Guest) (func() error, error)) (testing.BenchmarkResult, float64, error) {
	h, err := newHost(cfg, xvtpm.ModeImproved)
	if err != nil {
		return testing.BenchmarkResult{}, 0, err
	}
	g, err := h.CreateGuest(xvtpm.GuestConfig{Name: "bench", Kernel: []byte("bk"), Profile: profile})
	var op func() error
	if err == nil {
		op, err = setup(g)
	}
	if err == nil {
		for i := 0; i < 50; i++ { // warm the codec and response buffers
			if err = op(); err != nil {
				break
			}
		}
	}
	if err != nil {
		h.Close() //nolint:errcheck // constructor failure path
		return testing.BenchmarkResult{}, 0, err
	}
	var benchErr error
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := op(); err != nil {
				benchErr = err
				b.FailNow()
			}
		}
	})
	p95 := float64(h.Manager.DispatchStats().Total.P95)
	cerr := h.Close()
	if benchErr == nil {
		benchErr = cerr
	}
	if benchErr != nil {
		return testing.BenchmarkResult{}, 0, benchErr
	}
	return res, p95, nil
}

// signPoolBench builds a direct-transport 1.2 engine whose signatures run
// through pool, provisions one signing key, and measures Quote across
// `streams` concurrent clients sharing that key — same-key streams are
// what the pool's Merkle batches coalesce. One stream benchmarks the
// sequential deferred path.
func signPoolBench(cfg Config, poolCfg tpm.SignPoolConfig, streams int) (testing.BenchmarkResult, error) {
	pool := tpm.NewSignPool(poolCfg)
	defer pool.Close()
	eng, err := tpm.NewEngine(tpm.Profile12, tpm.Config{
		RSABits: cfg.bits(), Seed: []byte("benchgate-sign"), Signer: pool,
	})
	if err != nil {
		return testing.BenchmarkResult{}, err
	}
	var auth [tpm.AuthSize]byte
	copy(auth[:], "benchgate-sign-auth")
	cli := tpm.NewClient(tpm.DirectTransport{TPM: eng}, nil)
	if err := cli.Startup(tpm.STClear); err != nil {
		return testing.BenchmarkResult{}, err
	}
	if _, err := cli.TakeOwnership(auth, auth); err != nil {
		return testing.BenchmarkResult{}, err
	}
	blob, err := cli.CreateWrapKey(tpm.KHSRK, auth, auth, tpm.KeyParams{
		Usage: tpm.KeyUsageSigning, Scheme: tpm.SSRSASSAPKCS1v15SHA1, Bits: uint32(cfg.bits()),
	})
	if err != nil {
		return testing.BenchmarkResult{}, err
	}
	key, err := cli.LoadKey2(tpm.KHSRK, auth, blob)
	if err != nil {
		return testing.BenchmarkResult{}, err
	}
	sel := tpm.NewPCRSelection(0, 1, 10)
	quote := func(c *tpm.Client, n uint64) error {
		var nonce [tpm.NonceSize]byte
		nonce[0], nonce[1], nonce[2] = byte(n), byte(n>>8), byte(n>>16)
		_, err := c.Quote(key, auth, nonce, sel)
		return err
	}
	for i := 0; i < 20; i++ { // warm the codec and the pool's worker path
		if err := quote(cli, uint64(i)); err != nil {
			return testing.BenchmarkResult{}, err
		}
	}
	var benchErr error
	var res testing.BenchmarkResult
	if streams <= 1 {
		res = testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := quote(cli, uint64(i)); err != nil {
					benchErr = err
					b.FailNow()
				}
			}
		})
	} else {
		var next atomic.Uint64
		res = testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			b.SetParallelism(streams)
			b.RunParallel(func(pb *testing.PB) {
				c := tpm.NewClient(tpm.DirectTransport{TPM: eng}, nil)
				for pb.Next() {
					if err := quote(c, next.Add(1)); err != nil {
						benchErr = err
						return
					}
				}
			})
		})
	}
	if benchErr != nil {
		return testing.BenchmarkResult{}, benchErr
	}
	return res, nil
}

// benchEventLatency is the modelled event-channel delivery cost the
// throughput benchmarks run under: on real Xen every doorbell is a
// hypercall plus an upcall into the peer domain — tens of microseconds
// once scheduling is counted — and amortizing that cost is what ring
// batching and doorbell suppression exist for. Both depth rows pay the
// same modelled cost, so the lockstep/pipelined ratio isolates the
// transport discipline. Latency-oriented benchmarks (GuestGetRandom and
// friends) keep delivery instantaneous.
const benchEventLatency = 25 * time.Microsecond

// guestThroughputBench drives one improved-mode guest with 8 concurrent
// submitters at the given pipeline depth and reports inverse throughput:
// ns/op is wall time divided by completed commands across all workers.
func guestThroughputBench(cfg Config, depth int) (testing.BenchmarkResult, float64, error) {
	h, err := newHost(cfg, xvtpm.ModeImproved, func(hc *xvtpm.HostConfig) {
		hc.PipelineDepth = depth
		hc.EventLatency = benchEventLatency
	})
	if err != nil {
		return testing.BenchmarkResult{}, 0, err
	}
	g, err := h.CreateGuest(xvtpm.GuestConfig{Name: "bench", Kernel: []byte("bk")})
	if err == nil {
		for i := 0; i < 50; i++ {
			if _, err = g.TPM.GetRandom(16); err != nil {
				break
			}
		}
	}
	if err != nil {
		h.Close() //nolint:errcheck // constructor failure path
		return testing.BenchmarkResult{}, 0, err
	}
	var benchErr error
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		b.SetParallelism(8)
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if _, err := g.TPM.GetRandom(16); err != nil {
					benchErr = err
					return
				}
			}
		})
	})
	p95 := float64(h.Manager.DispatchStats().Total.P95)
	cerr := h.Close()
	if benchErr == nil {
		benchErr = cerr
	}
	if benchErr != nil {
		return testing.BenchmarkResult{}, 0, benchErr
	}
	return res, p95, nil
}

// BenchDelta is one benchmark's baseline-vs-current comparison.
type BenchDelta struct {
	Name    string
	Base    BenchResult
	Cur     BenchResult
	NsRatio float64 // cur/base - 1; +0.20 is a 20% regression
	Missing bool    // benchmark present in baseline, absent in current
	// New marks a benchmark present in the current run but absent from the
	// baseline: an informational addition, never a gate failure. It surfaces
	// in the report so a fresh baseline (which would fold the new benchmark
	// in) is an explicit, reviewed step rather than a silent one.
	New    bool
	Fail   bool
	Reason string
	// Synthetic marks a derived gate row (no measurements of its own), like
	// the pipelined-vs-lockstep speedup ratio.
	Synthetic bool
}

// Wall-clock throughput rows run with a modelled event-channel latency, so
// their absolute ns/op is dominated by sleep scheduling — run-to-run noise
// of 2-3× is normal and an absolute tolerance would flap. What the
// pipelined transport actually promises is the ratio: depth-8 must sustain
// at least pipelineSpeedupMin times the lockstep command rate within one
// run, where both rows share the machine's timer behaviour. CompareBench
// therefore skips the ns/op tolerance for these rows (allocs are still
// gated — they are deterministic) and gates the current run's ratio
// instead.
const (
	benchLockstepName   = "GuestLockstepThroughput"
	benchPipelinedName  = "GuestPipelinedThroughput"
	pipelineSpeedupMin  = 3.0
	pipelineSpeedupGate = "GuestPipelineSpeedup"
	ratioGatedNote      = "ratio-gated (see " + pipelineSpeedupGate + ")"
)

// ratioGated reports whether a benchmark row is exempt from the absolute
// ns/op tolerance because it is covered by the speedup-ratio gate.
func ratioGated(name string) bool {
	return name == benchLockstepName || name == benchPipelinedName
}

// The blackout row is a p99 over a few dozen millisecond-scale moves —
// effectively the max of the sample, and on this class of machine a single
// GC pause or scheduler stall shifts it 2×. An absolute tolerance against
// a committed baseline would flap on every noisy run, so CompareBench
// exempts it (like the throughput rows) and instead gates the current
// run's value against an absolute ceiling an order of magnitude above the
// quiet-machine measurement (~1-2ms): a regression that fences the whole
// host, loses the live-session overlap, or adds O(fleet) work to the
// handoff blows through the ceiling; scheduler noise does not.
const (
	benchBlackoutName   = "MigrateBlackoutP99"
	blackoutCeiling     = 50 * time.Millisecond
	blackoutCeilingGate = "MigrateBlackoutCeiling"
	ceilingGatedNote    = "ceiling-gated (see " + blackoutCeilingGate + ")"
)

// The batched-quote amortization promise, gated within one run like the
// pipeline speedup: 8 same-key quote streams through the batching pool
// must sustain at least quoteBatchSpeedupMin times the sequential pooled
// quote rate. The floor is deliberately far under the ideal (≈ batch
// size) so batch-composition jitter never flaps the gate, while a broken
// batcher (every quote signed alone) still lands well below it.
const (
	benchQuotePooledName  = "QuoteSignPooled"
	benchQuoteBatchName   = "QuoteBatchAmortized"
	quoteBatchSpeedupMin  = 1.3
	quoteBatchSpeedupGate = "QuoteBatchSpeedup"
)

// ceilingGated reports whether a row is exempt from the absolute ns/op
// tolerance because it is covered by an absolute-ceiling gate instead.
func ceilingGated(name string) bool {
	return name == benchBlackoutName
}

// rowTolerance widens the ns/op tolerance for the wall-clock federation
// rows: each is a macro-benchmark over dozens of real migrations (worker
// scheduling, checkpoint flushes, a full two-phase handoff per op), and
// their run-to-run spread on this class of machine is ±20% — inside the
// default 15% an honest run flaps. Doubling the tolerance keeps the gate's
// job (catching gross operational-path regressions) without the flapping;
// allocs stay gated at the normal allowance.
func rowTolerance(name string, tolerance float64) float64 {
	switch name {
	case "DrainThroughput", "EvacuateDeadHost":
		return 2 * tolerance
	case benchQuoteBatchName:
		// Concurrent batch composition depends on scheduler interleaving;
		// the amortization promise itself is held by QuoteBatchSpeedup.
		return 2 * tolerance
	}
	return tolerance
}

// CompareBench evaluates current against baseline with the given ns/op
// tolerance (0 means DefaultBenchTolerance). ok is false when any baseline
// benchmark is missing, slower than tolerated, or allocates more.
func CompareBench(base, cur *BenchReport, tolerance float64) (deltas []BenchDelta, ok bool) {
	if tolerance <= 0 {
		tolerance = DefaultBenchTolerance
	}
	byName := make(map[string]BenchResult, len(cur.Results))
	for _, r := range cur.Results {
		byName[r.Name] = r
	}
	ok = true
	for _, b := range base.Results {
		d := BenchDelta{Name: b.Name, Base: b}
		c, found := byName[b.Name]
		if !found {
			d.Missing, d.Fail, d.Reason = true, false, "missing from current run"
			// A missing benchmark fails the gate: silently dropping a
			// measurement is how regressions hide.
			d.Fail = true
		} else {
			d.Cur = c
			if b.NsPerOp > 0 {
				d.NsRatio = c.NsPerOp/b.NsPerOp - 1
			}
			allocAllowance := allocGrowthTolerance
			if rel := b.AllocsPerOp * allocNoiseRel; rel > allocAllowance {
				allocAllowance = rel
			}
			tol := rowTolerance(b.Name, tolerance)
			switch {
			case d.NsRatio > tol && !ratioGated(b.Name) && !ceilingGated(b.Name):
				d.Fail = true
				d.Reason = fmt.Sprintf("ns/op +%.1f%% (tolerance %.0f%%)", d.NsRatio*100, tol*100)
			case c.AllocsPerOp > b.AllocsPerOp+allocAllowance:
				d.Fail = true
				d.Reason = fmt.Sprintf("allocs/op %.1f → %.1f", b.AllocsPerOp, c.AllocsPerOp)
			case ratioGated(b.Name):
				d.Reason = ratioGatedNote
			case ceilingGated(b.Name):
				d.Reason = ceilingGatedNote
			}
		}
		if d.Fail {
			ok = false
		}
		deltas = append(deltas, d)
	}
	// Current-run benchmarks the baseline does not know yet are reported as
	// informational additions (in current-run order), not failures.
	inBase := make(map[string]bool, len(base.Results))
	for _, b := range base.Results {
		inBase[b.Name] = true
	}
	for _, c := range cur.Results {
		if !inBase[c.Name] {
			deltas = append(deltas, BenchDelta{
				Name: c.Name, Cur: c, New: true,
				Reason: "new benchmark, not in baseline (informational)",
			})
		}
	}
	// The speedup gate: within the current run, depth-8 pipelining must
	// sustain at least pipelineSpeedupMin times the lockstep command rate.
	lock, hasLock := byName[benchLockstepName]
	pipe, hasPipe := byName[benchPipelinedName]
	if hasLock && hasPipe && pipe.NsPerOp > 0 {
		ratio := lock.NsPerOp / pipe.NsPerOp
		d := BenchDelta{Name: pipelineSpeedupGate, Synthetic: true}
		if ratio < pipelineSpeedupMin {
			d.Fail = true
			d.Reason = fmt.Sprintf("depth-8 sustains only %.2fx the lockstep rate (floor %.1fx)",
				ratio, pipelineSpeedupMin)
			ok = false
		} else {
			d.Reason = fmt.Sprintf("depth-8 sustains %.2fx the lockstep rate (floor %.1fx)",
				ratio, pipelineSpeedupMin)
		}
		deltas = append(deltas, d)
	}
	// The batch-amortization gate: within the current run, the concurrent
	// batched quote streams must beat the sequential pooled quote rate.
	pooled, hasPooled := byName[benchQuotePooledName]
	batched, hasBatched := byName[benchQuoteBatchName]
	if hasPooled && hasBatched && batched.NsPerOp > 0 {
		ratio := pooled.NsPerOp / batched.NsPerOp
		d := BenchDelta{Name: quoteBatchSpeedupGate, Synthetic: true}
		if ratio < quoteBatchSpeedupMin {
			d.Fail = true
			d.Reason = fmt.Sprintf("batched quotes sustain only %.2fx the pooled sequential rate (floor %.1fx)",
				ratio, quoteBatchSpeedupMin)
			ok = false
		} else {
			d.Reason = fmt.Sprintf("batched quotes sustain %.2fx the pooled sequential rate (floor %.1fx)",
				ratio, quoteBatchSpeedupMin)
		}
		deltas = append(deltas, d)
	}
	// The blackout ceiling gate: the current run's per-move blackout p99
	// must stay under the absolute ceiling, whatever the baseline says.
	if bo, hasBo := byName[benchBlackoutName]; hasBo {
		d := BenchDelta{Name: blackoutCeilingGate, Synthetic: true}
		if bo.NsPerOp > float64(blackoutCeiling) {
			d.Fail = true
			d.Reason = fmt.Sprintf("blackout p99 %.1fms over the %v ceiling",
				bo.NsPerOp/1e6, blackoutCeiling)
			ok = false
		} else {
			d.Reason = fmt.Sprintf("blackout p99 %.2fms under the %v ceiling",
				bo.NsPerOp/1e6, blackoutCeiling)
		}
		deltas = append(deltas, d)
	}
	return deltas, ok
}

// RenderBenchDeltas prints the comparison as an aligned table.
func RenderBenchDeltas(w io.Writer, deltas []BenchDelta) {
	rows := make([][]string, 0, len(deltas))
	for _, d := range deltas {
		status := "ok"
		switch {
		case d.Fail:
			status = "FAIL: " + d.Reason
		case d.New:
			status = "NEW: " + d.Reason
		case d.Reason != "":
			status = "ok: " + d.Reason
		}
		if d.Synthetic {
			rows = append(rows, []string{d.Name, "-", "-", "-", "-", "-", status})
			continue
		}
		cur, ratio := "-", "-"
		if !d.Missing {
			cur = fmt.Sprintf("%.0f", d.Cur.NsPerOp)
			if !d.New && !math.IsNaN(d.NsRatio) {
				ratio = fmt.Sprintf("%+.1f%%", d.NsRatio*100)
			}
		}
		baseNs, baseAllocs := "-", "-"
		if !d.New {
			baseNs = fmt.Sprintf("%.0f", d.Base.NsPerOp)
			baseAllocs = fmt.Sprintf("%.1f", d.Base.AllocsPerOp)
		}
		rows = append(rows, []string{
			d.Name,
			baseNs,
			cur,
			ratio,
			baseAllocs,
			func() string {
				if d.Missing {
					return "-"
				}
				return fmt.Sprintf("%.1f", d.Cur.AllocsPerOp)
			}(),
			status,
		})
	}
	metrics.Table(w, "benchmark gate: baseline vs current",
		[]string{"benchmark", "base ns/op", "cur ns/op", "delta", "base allocs", "cur allocs", "status"}, rows)
}
