package experiments

// The benchmark-regression gate: a small fixed suite of hot-path benchmarks
// whose results are serialized as JSON (BENCH_<n>.json in the repo root is
// the committed baseline) and compared against a baseline by `benchrunner
// -check`. CI runs the suite on every push and fails the gate job when a
// benchmark regresses by more than the tolerance in ns/op or grows its
// allocs/op. Absolute numbers vary across machines — the gate is advisory
// (continue-on-error in CI) but loud, and the same machine comparing against
// its own fresh baseline (make bench-gate) is authoritative.

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"testing"
	"time"

	"xvtpm"
	"xvtpm/internal/core"
	"xvtpm/internal/metrics"
	"xvtpm/internal/tpm"
	"xvtpm/internal/trace"
	"xvtpm/internal/vtpm"
	"xvtpm/internal/xen"
)

// BenchSchema tags bench-report JSON so a -check against a file from some
// other tool fails loudly instead of comparing nonsense.
const BenchSchema = "xvtpm-bench/v1"

// DefaultBenchTolerance is the relative ns/op regression that fails the
// gate: 15%, wide enough for shared-runner noise, narrow enough to catch a
// reintroduced lock or copy on the hot path.
const DefaultBenchTolerance = 0.15

// allocGrowthTolerance is the allocs/op increase that fails the gate.
// Steady-state allocation counts are near-deterministic; the half-object
// allowance absorbs background-worker scheduling jitter only.
const allocGrowthTolerance = 0.5

// BenchResult is one benchmark's measurement.
type BenchResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// P95Ns is the p95 end-to-end dispatch latency observed by the
	// manager's histograms during the run (0 for micro-benchmarks that do
	// not cross the dispatch path).
	P95Ns float64 `json:"p95_ns,omitempty"`
}

// BenchReport is the serialized result set of one suite run.
type BenchReport struct {
	Schema  string        `json:"schema"`
	Bits    int           `json:"bits"`
	Results []BenchResult `json:"results"`
}

// WriteJSON serializes the report (indented, trailing newline).
func (r *BenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ParseBenchReport decodes and validates a serialized report.
func ParseBenchReport(data []byte) (*BenchReport, error) {
	var r BenchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("parsing bench report: %w", err)
	}
	if r.Schema != BenchSchema {
		return nil, fmt.Errorf("bench report schema %q, want %q", r.Schema, BenchSchema)
	}
	return &r, nil
}

// ReadBenchReport loads a baseline file.
func ReadBenchReport(path string) (*BenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseBenchReport(data)
}

// benchCmd builds a raw marshaled TPM command (baseline-guard framing).
func benchCmd(ordinal uint32, params func(*tpm.Writer)) []byte {
	p := tpm.NewWriter()
	params(p)
	w := tpm.NewWriter()
	w.U16(tpm.TagRQUCommand)
	w.U32(uint32(10 + len(p.Bytes())))
	w.U32(ordinal)
	w.Raw(p.Bytes())
	return w.Bytes()
}

// benchRig is a writeback-policy manager with one bound domain — the same
// rig the alloc guard measures, so gate numbers and alloc budgets describe
// the same path.
type benchRig struct {
	mgr *vtpm.Manager
	dom *xen.Domain
}

// newBenchRig builds the rig; traceDepth is passed through to the manager
// (0 = default span ring, negative disables tracing — the E14 ablation).
func newBenchRig(bits, traceDepth int) (*benchRig, error) {
	hv := xen.NewHypervisor(xen.DomainConfig{Name: "Domain-0", Pages: 8192})
	dom0, err := hv.Domain(xen.Dom0)
	if err != nil {
		return nil, err
	}
	mgr := vtpm.NewManager(hv, vtpm.NewMemStore(), xen.NewArena(dom0),
		core.NewBaselineGuard(), vtpm.ManagerConfig{
			RSABits: bits, Seed: []byte("benchgate"),
			Checkpoint: vtpm.CheckpointWriteback,
			TraceDepth: traceDepth,
		})
	dom, err := hv.CreateDomain(xen.DomainConfig{Name: "bg", Kernel: []byte("bgk")})
	if err != nil {
		mgr.Close() //nolint:errcheck // constructor failure path
		return nil, err
	}
	id, err := mgr.CreateInstance()
	if err == nil {
		err = mgr.BindInstance(id, dom)
	}
	if err != nil {
		mgr.Close() //nolint:errcheck // constructor failure path
		return nil, err
	}
	return &benchRig{mgr: mgr, dom: dom}, nil
}

func (r *benchRig) dispatchBench(payload []byte) (testing.BenchmarkResult, float64, error) {
	// Warm scratch buffers before measuring, as the alloc guard does.
	for i := 0; i < 100; i++ {
		if _, err := r.mgr.Dispatch(r.dom.ID(), r.dom.Launch(), payload); err != nil {
			return testing.BenchmarkResult{}, 0, err
		}
	}
	var benchErr error
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := r.mgr.Dispatch(r.dom.ID(), r.dom.Launch(), payload); err != nil {
				benchErr = err
				b.FailNow()
			}
		}
	})
	return res, float64(r.mgr.DispatchStats().Total.P95), benchErr
}

// RunBenchSuite runs the gate's benchmark suite. With names, only the named
// benchmarks run (for tests). Quick mode trims nothing — testing.Benchmark
// self-calibrates — but the suite is small by design (~10s total).
func RunBenchSuite(cfg Config, names ...string) (*BenchReport, error) {
	wanted := func(name string) bool {
		if len(names) == 0 {
			return true
		}
		for _, n := range names {
			if n == name {
				return true
			}
		}
		return false
	}
	rep := &BenchReport{Schema: BenchSchema, Bits: cfg.bits()}
	add := func(name string, res testing.BenchmarkResult, p95 float64) {
		rep.Results = append(rep.Results, BenchResult{
			Name:        name,
			NsPerOp:     float64(res.NsPerOp()),
			AllocsPerOp: float64(res.AllocsPerOp()),
			P95Ns:       p95,
		})
	}

	getRandom := benchCmd(tpm.OrdGetRandom, func(w *tpm.Writer) { w.U32(16) })
	extend := benchCmd(tpm.OrdExtend, func(w *tpm.Writer) {
		w.U32(7)
		w.Raw(make([]byte, tpm.DigestSize))
	})
	for _, bc := range []struct {
		name    string
		payload []byte
	}{
		{"DispatchGetRandom", getRandom},
		{"DispatchExtend", extend},
	} {
		if !wanted(bc.name) {
			continue
		}
		rig, err := newBenchRig(cfg.bits(), 0)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", bc.name, err)
		}
		res, p95, err := rig.dispatchBench(bc.payload)
		cerr := rig.mgr.Close()
		if err == nil {
			err = cerr
		}
		if err != nil {
			return nil, fmt.Errorf("%s: %w", bc.name, err)
		}
		add(bc.name, res, p95)
	}

	if wanted("GuestGetRandom") {
		// The full guarded path: client → ring → backend → improved guard →
		// engine, the per-command figure the paper's tables are about.
		h, err := newHost(cfg, xvtpm.ModeImproved)
		if err != nil {
			return nil, fmt.Errorf("GuestGetRandom: %w", err)
		}
		g, err := h.CreateGuest(xvtpm.GuestConfig{Name: "bench", Kernel: []byte("bk")})
		if err == nil {
			for i := 0; i < 50; i++ { // warm the codec and response buffers
				if _, err = g.TPM.GetRandom(16); err != nil {
					break
				}
			}
		}
		if err != nil {
			h.Close() //nolint:errcheck // constructor failure path
			return nil, fmt.Errorf("GuestGetRandom: %w", err)
		}
		var benchErr error
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := g.TPM.GetRandom(16); err != nil {
					benchErr = err
					b.FailNow()
				}
			}
		})
		p95 := float64(h.Manager.DispatchStats().Total.P95)
		cerr := h.Close()
		if benchErr == nil {
			benchErr = cerr
		}
		if benchErr != nil {
			return nil, fmt.Errorf("GuestGetRandom: %w", benchErr)
		}
		add("GuestGetRandom", res, p95)
	}

	if wanted("HistogramRecord") {
		h := metrics.NewHistogram(nil)
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				h.Record(time.Duration(i))
			}
		})
		add("HistogramRecord", res, 0)
	}

	if wanted("SpanRecord") {
		tr := trace.New(trace.Config{})
		ring := tr.NewRing()
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			sp := trace.Span{Instance: 1, Ordinal: tpm.OrdGetRandom}
			for i := 0; i < b.N; i++ {
				ring.Record(sp)
			}
		})
		add("SpanRecord", res, 0)
	}

	return rep, nil
}

// BenchDelta is one benchmark's baseline-vs-current comparison.
type BenchDelta struct {
	Name    string
	Base    BenchResult
	Cur     BenchResult
	NsRatio float64 // cur/base - 1; +0.20 is a 20% regression
	Missing bool    // benchmark present in baseline, absent in current
	Fail    bool
	Reason  string
}

// CompareBench evaluates current against baseline with the given ns/op
// tolerance (0 means DefaultBenchTolerance). ok is false when any baseline
// benchmark is missing, slower than tolerated, or allocates more.
func CompareBench(base, cur *BenchReport, tolerance float64) (deltas []BenchDelta, ok bool) {
	if tolerance <= 0 {
		tolerance = DefaultBenchTolerance
	}
	byName := make(map[string]BenchResult, len(cur.Results))
	for _, r := range cur.Results {
		byName[r.Name] = r
	}
	ok = true
	for _, b := range base.Results {
		d := BenchDelta{Name: b.Name, Base: b}
		c, found := byName[b.Name]
		if !found {
			d.Missing, d.Fail, d.Reason = true, false, "missing from current run"
			// A missing benchmark fails the gate: silently dropping a
			// measurement is how regressions hide.
			d.Fail = true
		} else {
			d.Cur = c
			if b.NsPerOp > 0 {
				d.NsRatio = c.NsPerOp/b.NsPerOp - 1
			}
			switch {
			case d.NsRatio > tolerance:
				d.Fail = true
				d.Reason = fmt.Sprintf("ns/op +%.1f%% (tolerance %.0f%%)", d.NsRatio*100, tolerance*100)
			case c.AllocsPerOp > b.AllocsPerOp+allocGrowthTolerance:
				d.Fail = true
				d.Reason = fmt.Sprintf("allocs/op %.1f → %.1f", b.AllocsPerOp, c.AllocsPerOp)
			}
		}
		if d.Fail {
			ok = false
		}
		deltas = append(deltas, d)
	}
	return deltas, ok
}

// RenderBenchDeltas prints the comparison as an aligned table.
func RenderBenchDeltas(w io.Writer, deltas []BenchDelta) {
	rows := make([][]string, 0, len(deltas))
	for _, d := range deltas {
		status := "ok"
		if d.Fail {
			status = "FAIL: " + d.Reason
		}
		cur, ratio := "-", "-"
		if !d.Missing {
			cur = fmt.Sprintf("%.0f", d.Cur.NsPerOp)
			if !math.IsNaN(d.NsRatio) {
				ratio = fmt.Sprintf("%+.1f%%", d.NsRatio*100)
			}
		}
		rows = append(rows, []string{
			d.Name,
			fmt.Sprintf("%.0f", d.Base.NsPerOp),
			cur,
			ratio,
			fmt.Sprintf("%.1f", d.Base.AllocsPerOp),
			func() string {
				if d.Missing {
					return "-"
				}
				return fmt.Sprintf("%.1f", d.Cur.AllocsPerOp)
			}(),
			status,
		})
	}
	metrics.Table(w, "benchmark gate: baseline vs current",
		[]string{"benchmark", "base ns/op", "cur ns/op", "delta", "base allocs", "cur allocs", "status"}, rows)
}
