package experiments

// E14: what does the observability layer itself cost? The latency
// histograms and counters are always on (they are the measurement
// apparatus), so the togglable half of the instrumentation — per-command
// span recording at sample rate 1, the most expensive setting — is measured
// against a tracing-disabled manager on the identical direct-dispatch
// workload. The acceptance bar is ≤5% mean ns/op overhead and zero
// additional allocations per dispatch.

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"xvtpm/internal/metrics"
	"xvtpm/internal/tpm"
)

// E14Row is one configuration's measurement.
type E14Row struct {
	Config string // "tracing off" / "tracing on (rate 1)"
	MeanNs float64
	P95Ns  float64
	Allocs float64
}

// E14Result is the experiment outcome.
type E14Result struct {
	Rows []E14Row
	// OverheadFrac is (traced mean / untraced mean) - 1.
	OverheadFrac float64
	// AllocDelta is traced allocs/op minus untraced allocs/op.
	AllocDelta float64
}

// e14Measure runs the direct-dispatch GetRandom workload against a rig with
// the given trace depth and returns median-of-trials mean ns/op, the
// manager's own p95, and allocs/op.
func e14Measure(cfg Config, traceDepth int) (E14Row, error) {
	reps := cfg.reps(20000, 500)
	trials := cfg.reps(5, 2)
	payload := benchCmd(tpm.OrdGetRandom, func(w *tpm.Writer) { w.U32(16) })

	rig, err := newBenchRig(cfg.bits(), traceDepth)
	if err != nil {
		return E14Row{}, err
	}
	defer rig.mgr.Close() //nolint:errcheck // measurement teardown

	dispatch := func() error {
		_, err := rig.mgr.Dispatch(rig.dom.ID(), rig.dom.Launch(), payload)
		return err
	}
	// Warm scratch buffers and the DRBG before timing.
	for i := 0; i < 200; i++ {
		if err := dispatch(); err != nil {
			return E14Row{}, err
		}
	}
	means := make([]float64, 0, trials)
	for t := 0; t < trials; t++ {
		start := time.Now()
		for i := 0; i < reps; i++ {
			if err := dispatch(); err != nil {
				return E14Row{}, err
			}
		}
		means = append(means, float64(time.Since(start).Nanoseconds())/float64(reps))
	}
	sort.Float64s(means)
	var allocErr error
	allocs := testing.AllocsPerRun(500, func() {
		if err := dispatch(); err != nil {
			allocErr = err
		}
	})
	if allocErr != nil {
		return E14Row{}, allocErr
	}
	return E14Row{
		MeanNs: means[len(means)/2],
		P95Ns:  float64(rig.mgr.DispatchStats().Total.P95),
		Allocs: allocs,
	}, nil
}

// E14Observability measures the instrumented-vs-uninstrumented dispatch
// overhead. Reconstructed for DESIGN.md §8 (no analogue in the paper, which
// predates always-on telemetry as table stakes).
func E14Observability(cfg Config) (E14Result, error) {
	off, err := e14Measure(cfg, -1)
	if err != nil {
		return E14Result{}, fmt.Errorf("E14 untraced: %w", err)
	}
	off.Config = "tracing off"
	on, err := e14Measure(cfg, 0)
	if err != nil {
		return E14Result{}, fmt.Errorf("E14 traced: %w", err)
	}
	on.Config = "tracing on (rate 1)"

	res := E14Result{
		Rows:         []E14Row{off, on},
		OverheadFrac: on.MeanNs/off.MeanNs - 1,
		AllocDelta:   on.Allocs - off.Allocs,
	}
	if cfg.Out != nil {
		rows := make([][]string, 0, 2)
		for _, r := range res.Rows {
			rows = append(rows, []string{
				r.Config,
				fmt.Sprintf("%.0f", r.MeanNs),
				fmt.Sprintf("%.0f", r.P95Ns),
				fmt.Sprintf("%.2f", r.Allocs),
			})
		}
		metrics.Table(cfg.Out, "E14: observability overhead (GetRandom direct dispatch)",
			[]string{"config", "mean ns/op", "p95 ns", "allocs/op"}, rows)
		fmt.Fprintf(cfg.Out, "span recording overhead: %+.2f%% ns/op, %+.2f allocs/op\n\n",
			res.OverheadFrac*100, res.AllocDelta)
	}
	return res, nil
}
