package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestE20SignPoolShape(t *testing.T) {
	var buf bytes.Buffer
	rep, err := E20SignPool(quickCfg(&buf))
	if err != nil {
		t.Fatalf("E20: %v", err)
	}
	if rep.KneeRatio < 1.5 {
		t.Fatalf("pooled knee only %.2fx the inline knee (floor 1.5x)", rep.KneeRatio)
	}
	if rep.QuoteBusyShare >= rep.ExtendRandomBusyShare {
		t.Fatalf("quote busy share %.3f not below extend+getrandom %.3f",
			rep.QuoteBusyShare, rep.ExtendRandomBusyShare)
	}
	if rep.QuoteBusyShare >= rep.QuoteBusyShareInline {
		t.Fatalf("pooling did not reduce quote busy share: %.3f vs inline %.3f",
			rep.QuoteBusyShare, rep.QuoteBusyShareInline)
	}
	if rep.EquivalenceFailures != 0 {
		t.Fatalf("%d quotes failed verification", rep.EquivalenceFailures)
	}
	if rep.QuotesBatched == 0 || rep.QuotesVerified == 0 {
		t.Fatalf("verified %d quotes, %d batched — batching untested", rep.QuotesVerified, rep.QuotesBatched)
	}
	if rep.InlineQuoteUs <= 0 || rep.PooledQuoteUs <= 0 || rep.BatchedQuoteUs <= 0 {
		t.Fatalf("missing quote-cost measurements: inline %.0f pooled %.0f batched %.0f",
			rep.InlineQuoteUs, rep.PooledQuoteUs, rep.BatchedQuoteUs)
	}
	if rep.CreateNoPoolSecs <= 0 || rep.CreatePoolSecs < 0 || rep.FleetN == 0 {
		t.Fatalf("fleet-create phase did not run: %d instances, %.3fs/%.3fs",
			rep.FleetN, rep.CreateNoPoolSecs, rep.CreatePoolSecs)
	}
	out := buf.String()
	for _, want := range []string{"E20", "modeled knee", "quote busy share", "batched streams", "attestation", "fleet create"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}
