package experiments

import (
	"fmt"
	"sync/atomic"
	"time"

	"xvtpm"
	"xvtpm/internal/metrics"
	"xvtpm/internal/workload"
)

// E9Row is one row of the flood-control table.
type E9Row struct {
	Scenario         string
	VictimThroughput float64 // victim commands/s
	VictimP99        time.Duration
	FlooderAdmitted  uint64
}

// E9FloodControl is an extension experiment (not a reconstructed paper
// artifact; DESIGN.md lists it as an ablation of the improved design's
// flood-control option): a victim guest runs a paced command stream while a
// co-resident flooder sprays commands as fast as it can. Measured is the
// victim's command latency in three configurations: no flood, flood with no
// rate limit, and flood with the per-instance rate limit enabled.
func E9FloodControl(cfg Config) ([]E9Row, error) {
	// The victim runs for a fixed wall-clock window (long enough for the
	// scheduler to interleave both guests fairly on any core count).
	window := cfg.durOrQuick(1500*time.Millisecond, 300*time.Millisecond)
	scenarios := []struct {
		name      string
		flood     bool
		rateLimit int
	}{
		{"no-flood", false, 0},
		{"flood-unlimited", true, 0},
		{"flood-limited", true, 2000},
	}
	var rows []E9Row
	for _, sc := range scenarios {
		h, err := newHost(cfg, xvtpm.ModeImproved, func(hc *xvtpm.HostConfig) {
			hc.Dom0Pages = 16384
		})
		if err != nil {
			return nil, err
		}
		_, victim, err := newGuestRunner(h, 1, cfg.bits())
		if err != nil {
			return nil, err
		}
		flooderGuest, flooder, err := newGuestRunner(h, 2, cfg.bits())
		if err != nil {
			return nil, err
		}
		ig, ok := h.ImprovedGuard()
		if !ok {
			return nil, fmt.Errorf("E9: improved guard missing")
		}
		if sc.rateLimit > 0 {
			// The administrator throttles the misbehaving instance only.
			ig.SetRateLimitFor(flooderGuest.Instance, sc.rateLimit)
		}

		var stop atomic.Bool
		var admitted atomic.Uint64
		floodDone := make(chan struct{})
		if sc.flood {
			go func() {
				defer close(floodDone)
				stream := workload.NewStream(workload.CheapMix, 99)
				for !stop.Load() {
					if err := flooder.Step(stream.Next()); err == nil {
						admitted.Add(1)
					}
					// Throttled commands return errors; the flooder keeps
					// hammering regardless, as a misbehaving guest would.
				}
			}()
		} else {
			close(floodDone)
		}

		rec := metrics.NewRecorder()
		stream := workload.NewStream(workload.CheapMix, 7)
		for i := 0; i < cfg.reps(40, 5); i++ { // warm-up, not recorded
			if err := victim.Step(stream.Next()); err != nil {
				stop.Store(true)
				<-floodDone
				return nil, err
			}
		}
		wall := time.Now()
		deadline := wall.Add(window)
		ops := 0
		for time.Now().Before(deadline) {
			start := time.Now()
			if err := victim.Step(stream.Next()); err != nil {
				stop.Store(true)
				<-floodDone
				return nil, fmt.Errorf("E9 victim in %s: %w", sc.name, err)
			}
			rec.Add(time.Since(start))
			ops++
		}
		elapsed := time.Since(wall)
		stop.Store(true)
		<-floodDone
		rows = append(rows, E9Row{
			Scenario:         sc.name,
			VictimThroughput: float64(ops) / elapsed.Seconds(),
			VictimP99:        rec.Percentile(99),
			FlooderAdmitted:  admitted.Load(),
		})
		h.Close()
	}
	if cfg.Out != nil {
		tbl := make([][]string, 0, len(rows))
		for _, r := range rows {
			tbl = append(tbl, []string{
				r.Scenario,
				fmt.Sprintf("%.0f", r.VictimThroughput),
				metrics.Micros(r.VictimP99),
				fmt.Sprintf("%d", r.FlooderAdmitted),
			})
		}
		metrics.Table(cfg.Out, "E9 (extension) — victim service under a co-resident flooder",
			[]string{"scenario", "victim-cmds/s", "victim-p99(µs)", "flooder-cmds-admitted"}, tbl)
	}
	return rows, nil
}
