package experiments

import (
	"sort"
	"time"

	"xvtpm"
)

// medianPhases aggregates migration runs by taking the per-field median —
// single migrations are microsecond-scale and noisy on a shared machine.
func medianPhases(mode xvtpm.Mode, runs []E6Phases) E6Phases {
	pick := func(get func(E6Phases) time.Duration) time.Duration {
		vals := make([]time.Duration, len(runs))
		for i, r := range runs {
			vals[i] = get(r)
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		return vals[len(vals)/2]
	}
	out := E6Phases{
		Mode:     mode,
		Suspend:  pick(func(p E6Phases) time.Duration { return p.Suspend }),
		Transfer: pick(func(p E6Phases) time.Duration { return p.Transfer }),
		Resume:   pick(func(p E6Phases) time.Duration { return p.Resume }),
		Total:    pick(func(p E6Phases) time.Duration { return p.Total }),
	}
	if len(runs) > 0 {
		out.WireBytes = runs[len(runs)/2].WireBytes
	}
	return out
}
