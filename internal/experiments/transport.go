package experiments

// E15: the transport pipeline study (DESIGN.md §9). One improved-mode guest
// is driven by 8 concurrent submitters at pipeline depths 1..8 under the
// same modelled event-channel delivery cost the throughput gate uses
// (benchEventLatency). Depth 1 is the /dev/tpm0 lockstep discipline: every
// command pays a full sealed round trip including two doorbells. Deeper
// pipelines overlap round trips, so the backend drains multi-frame batches
// per wakeup and the RING_FINAL_CHECK handshake suppresses most doorbells —
// per-command notify cost collapses toward zero and throughput rises until
// the serial crypto-plus-dispatch floor takes over. Reported per depth:
// inverse throughput, guest RTT percentiles, mean request frames per
// backend drain, and doorbells actually sent per command.

import (
	"fmt"
	"sync"
	"time"

	"xvtpm"
	"xvtpm/internal/metrics"
)

// E15Row is one pipeline depth's measurement.
type E15Row struct {
	Depth     int
	NsPerCmd  float64 // wall time / completed commands, 8 submitters
	RTTp50    time.Duration
	RTTp95    time.Duration
	RTTp99    time.Duration
	MeanBatch float64 // request frames per backend drain
	// NotifiesPerCmd is doorbells actually delivered per command (both
	// directions); SuppressedFrac is the share of would-be doorbells the
	// ring notify flags coalesced away.
	NotifiesPerCmd float64
	SuppressedFrac float64
}

// E15Result is the experiment outcome.
type E15Result struct {
	EventLatency time.Duration
	Rows         []E15Row
	// Speedup is depth-8 commands/sec over depth-1.
	Speedup float64
}

// e15Measure runs one depth configuration and returns its row.
func e15Measure(cfg Config, depth, cmds int) (E15Row, error) {
	h, err := newHost(cfg, xvtpm.ModeImproved, func(hc *xvtpm.HostConfig) {
		hc.PipelineDepth = depth
		hc.EventLatency = benchEventLatency
	})
	if err != nil {
		return E15Row{}, err
	}
	defer h.Close() //nolint:errcheck // measurement teardown
	g, err := h.CreateGuest(xvtpm.GuestConfig{Name: "e15", Kernel: []byte("e15k")})
	if err != nil {
		return E15Row{}, err
	}
	for i := 0; i < 50; i++ { // warm codec, scratch and response buffers
		if _, err := g.TPM.GetRandom(16); err != nil {
			return E15Row{}, err
		}
	}

	const workers = 8
	ec := h.HV.EventChannels()
	sent0, supp0 := ec.SentNotifies(), ec.SuppressedNotifies()
	per := cmds / workers
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := g.TPM.GetRandom(16); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	close(errs)
	for err := range errs {
		return E15Row{}, err
	}

	total := float64(workers * per)
	sent := float64(ec.SentNotifies() - sent0)
	supp := float64(ec.SuppressedNotifies() - supp0)
	rtt := h.TransportMetrics().GuestRTT.Summarize()
	batch := h.TransportMetrics().RingBatch.Summarize()
	row := E15Row{
		Depth:          depth,
		NsPerCmd:       float64(wall.Nanoseconds()) / total,
		RTTp50:         rtt.P50,
		RTTp95:         rtt.P95,
		RTTp99:         rtt.P99,
		NotifiesPerCmd: sent / total,
	}
	if batch.Count > 0 {
		// RingBatch records the frame count of each drain as an integer
		// Duration, so the histogram mean is the mean batch size.
		row.MeanBatch = float64(batch.Mean)
	}
	if sent+supp > 0 {
		row.SuppressedFrac = supp / (sent + supp)
	}
	return row, nil
}

// E15Transport sweeps the pipeline depth and reports how batching and
// doorbell suppression convert per-command notify cost into per-batch cost.
func E15Transport(cfg Config) (E15Result, error) {
	cmds := cfg.reps(4000, 400)
	res := E15Result{EventLatency: benchEventLatency}
	for _, depth := range []int{1, 2, 4, 8} {
		row, err := e15Measure(cfg, depth, cmds)
		if err != nil {
			return E15Result{}, fmt.Errorf("E15 depth %d: %w", depth, err)
		}
		res.Rows = append(res.Rows, row)
	}
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	if last.NsPerCmd > 0 {
		res.Speedup = first.NsPerCmd / last.NsPerCmd
	}
	if cfg.Out != nil {
		rows := make([][]string, 0, len(res.Rows))
		for _, r := range res.Rows {
			rows = append(rows, []string{
				fmt.Sprintf("%d", r.Depth),
				fmt.Sprintf("%.0f", r.NsPerCmd),
				metrics.Micros(r.RTTp50),
				metrics.Micros(r.RTTp95),
				metrics.Micros(r.RTTp99),
				fmt.Sprintf("%.2f", r.MeanBatch),
				fmt.Sprintf("%.2f", r.NotifiesPerCmd),
				fmt.Sprintf("%.0f%%", r.SuppressedFrac*100),
			})
		}
		metrics.Table(cfg.Out,
			fmt.Sprintf("E15: transport pipeline, 8 submitters, %s modelled doorbell latency (GetRandom)",
				res.EventLatency),
			[]string{"depth", "ns/cmd", "rtt p50 µs", "rtt p95 µs", "rtt p99 µs",
				"frames/drain", "notifies/cmd", "suppressed"}, rows)
		fmt.Fprintf(cfg.Out, "\ndepth-8 speedup over lockstep: %.2fx\n\n", res.Speedup)
	}
	return res, nil
}
