package experiments

import (
	"fmt"
	"time"

	"xvtpm"
	"xvtpm/internal/metrics"
)

// E11Point is one point of the concurrent-dispatch figure.
type E11Point struct {
	Guests     int
	Throughput float64 // commands/second, aggregate
	PerGuest   float64 // commands/second, per guest
}

// E11ConcurrentDispatch measures how aggregate dispatch throughput scales
// with the number of concurrently active guests under the per-instance
// concurrency model. Unlike E2 (mixed workload, engine-dominated), every
// guest here drives a pure GetRandom stream — no RSA, no checkpointing — so
// the measurement isolates manager/guard lock contention. With per-instance
// dispatch lanes the per-guest rate should degrade only with CPU
// oversubscription, not with a shared lock; a global dispatch lock shows up
// as per-guest throughput collapsing ~1/N.
func E11ConcurrentDispatch(cfg Config) (map[xvtpm.Mode][]E11Point, error) {
	guestCounts := []int{1, 4, 16, 64}
	perGuest := cfg.reps(2000, 50)
	if cfg.Quick {
		guestCounts = []int{1, 4}
	}
	out := make(map[xvtpm.Mode][]E11Point)
	for _, mode := range Modes {
		for _, n := range guestCounts {
			h, err := newHost(cfg, mode, func(hc *xvtpm.HostConfig) {
				hc.Dom0Pages = 65536 // room for many instance mirrors
			})
			if err != nil {
				return nil, err
			}
			guests := make([]*xvtpm.Guest, n)
			for i := 0; i < n; i++ {
				g, err := h.CreateGuest(xvtpm.GuestConfig{
					Name:   fmt.Sprintf("cd-%d", i),
					Kernel: []byte(fmt.Sprintf("cd-kernel-%d", i)),
				})
				if err != nil {
					return nil, fmt.Errorf("E11 guest %d/%d on %s: %w", i, n, mode, err)
				}
				guests[i] = g
			}
			errCh := make(chan error, n)
			start := time.Now()
			for _, g := range guests {
				go func(g *xvtpm.Guest) {
					for j := 0; j < perGuest; j++ {
						if _, err := g.TPM.GetRandom(16); err != nil {
							errCh <- err
							return
						}
					}
					errCh <- nil
				}(g)
			}
			for i := 0; i < n; i++ {
				if err := <-errCh; err != nil {
					return nil, fmt.Errorf("E11 run on %s: %w", mode, err)
				}
			}
			elapsed := time.Since(start)
			total := float64(n * perGuest)
			out[mode] = append(out[mode], E11Point{
				Guests:     n,
				Throughput: total / elapsed.Seconds(),
				PerGuest:   total / elapsed.Seconds() / float64(n),
			})
			h.Close()
		}
	}
	if cfg.Out != nil {
		var series []metrics.Series
		for _, mode := range Modes {
			s := metrics.Series{Name: mode.String()}
			for _, p := range out[mode] {
				s.Points = append(s.Points, metrics.Point{X: float64(p.Guests), Y: p.Throughput})
			}
			series = append(series, s)
		}
		metrics.PrintSeries(cfg.Out,
			"E11 — aggregate dispatch throughput vs concurrent guests (GetRandom-only, per-instance lanes)",
			"guests", "commands/s", series)
	}
	return out, nil
}
