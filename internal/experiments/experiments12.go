package experiments

// E20 — signing pool & batched attestation (extension; DESIGN.md §14).
// PR 10 moves RSA private-key operations off the dispatch critical path:
// quotes snapshot their digest under the instance lock, release it, and
// complete when a pooled worker delivers the signature — with concurrent
// same-key quotes sharing one signature over a Merkle batch root. E20
// quantifies what that buys and proves the batched form verifies:
//
//   - Model: the committed capacity-gate scenario replayed with the sign
//     pool on and off. The knee must move by at least 1.5×, and the
//     dispatch-lane busy time attributed to Quote must fall below Extend
//     and GetRandom combined (it dominates them inline).
//   - Real engine: per-quote cost inline vs pooled vs 8 concurrent
//     batched streams, measured end-to-end through AIK enrollment and
//     attest.Verifier — every quote, batched or not, must verify, with
//     zero equivalence failures.
//   - Fleet create: instance creation against the background-replenished
//     key pool vs cold keygen (the E3 ablation at fleet granularity).

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"xvtpm"
	"xvtpm/internal/attest"
	"xvtpm/internal/loadgen"
	"xvtpm/internal/metrics"
	"xvtpm/internal/tpm"
	"xvtpm/internal/workload"
)

// E20Report is the measured summary.
type E20Report struct {
	// Modeled capacity: the gate scenario with and without the pool.
	KneeInline float64 // commands/sec
	KneePooled float64
	KneeRatio  float64
	// Dispatch-lane busy-share attribution (fraction of lane busy time).
	QuoteBusyShareInline  float64
	QuoteBusyShare        float64
	ExtendRandomBusyShare float64

	// Real-engine quote cost, end to end (enroll-verified), in µs.
	InlineQuoteUs   float64
	PooledQuoteUs   float64
	BatchedQuoteUs  float64
	BatchAmortRatio float64 // pooled sequential / batched concurrent
	// Attestation outcomes over every quote issued above.
	QuotesVerified      int
	QuotesBatched       int
	EquivalenceFailures int

	// Fleet create against the background key pool.
	FleetN           int
	CreateNoPoolSecs float64
	CreatePoolSecs   float64
	CreateSpeedup    float64
}

// e20Knee sweeps a scenario's rate ladder through the model and returns
// the saturation-knee rate.
func e20Knee(s *loadgen.Scenario) (float64, error) {
	var points []loadgen.SweepPoint
	for _, rate := range s.SweepRates() {
		rep, err := loadgen.RunModel(s.ModelConfig(rate))
		if err != nil {
			return 0, fmt.Errorf("model at %.0f cps: %w", rate, err)
		}
		points = append(points, loadgen.SweepPoint{
			Offered: rate, Throughput: rep.Throughput, Goodput: rep.Goodput,
			P99: rep.P99, P999: rep.P999, SLOFrac: rep.SLOFraction(),
		})
	}
	knee, ok := loadgen.FindKnee(points)
	if !ok {
		return 0, fmt.Errorf("ladder never saturates: %v", points)
	}
	return knee, nil
}

// e20BusyShare attributes dispatch-lane busy time to op: mix weight ×
// the time the op holds a dispatch lane (prep only when its signature is
// pooled), normalized over the mix.
func e20BusyShare(s *loadgen.Scenario, pooled bool, ops ...workload.Op) float64 {
	var total, picked float64
	for op, w := range s.Mix {
		if w <= 0 {
			continue
		}
		hold := s.Service[op]
		if pooled && s.SignWorkers > 0 {
			if sc := s.SignCost[op]; sc > 0 {
				if hold -= sc; hold < time.Nanosecond {
					hold = time.Nanosecond
				}
			}
		}
		t := float64(w) * hold.Seconds()
		total += t
		for _, want := range ops {
			if op == want {
				picked += t
				break
			}
		}
	}
	if total == 0 {
		return 0
	}
	return picked / total
}

// e20Rig is one direct-transport engine with an enrolled AIK and a
// pinned verifier: the full attestation loop of examples/attestation,
// minus the guest transport, so the quote path under test is the engine
// plus (optionally) the signing pool.
type e20Rig struct {
	eng      tpm.Engine
	verifier *attest.Verifier
	cert     *attest.AIKCert
	aik      uint32
	aikAuth  [tpm.AuthSize]byte
	sel      tpm.PCRSelection
}

func newE20Rig(bits int, seed string, pool *tpm.SignPool) (*e20Rig, *tpm.Client, error) {
	eng, err := tpm.NewEngine(tpm.Profile12, tpm.Config{
		RSABits: bits, Seed: []byte(seed), Signer: pool,
	})
	if err != nil {
		return nil, nil, err
	}
	cli := tpm.NewClient(tpm.DirectTransport{TPM: eng}, nil)
	if err := cli.Startup(tpm.STClear); err != nil {
		return nil, nil, err
	}
	ekPub, err := cli.ReadPubek()
	if err != nil {
		return nil, nil, err
	}
	var owner, srk, aikAuth [tpm.AuthSize]byte
	copy(owner[:], "e20-owner")
	copy(srk[:], "e20-srk")
	copy(aikAuth[:], "e20-aik")
	if _, err := cli.TakeOwnership(owner, srk); err != nil {
		return nil, nil, err
	}
	ca, err := attest.NewPrivacyCA(bits)
	if err != nil {
		return nil, nil, err
	}
	cert, aik, err := attest.Enroll(cli, ca, ekPub, owner, srk, aikAuth, "e20-aik")
	if err != nil {
		return nil, nil, fmt.Errorf("enrollment: %w", err)
	}
	return &e20Rig{
		eng: eng, verifier: attest.NewVerifier(ca.PublicKey(), nil),
		cert: cert, aik: aik, aikAuth: aikAuth,
		sel: tpm.NewPCRSelection(0, 1, 10),
	}, cli, nil
}

// client opens another concurrent stream into the rig's engine.
func (r *e20Rig) client() *tpm.Client {
	return tpm.NewClient(tpm.DirectTransport{TPM: r.eng}, nil)
}

// quote runs one challenge → quote → verify round trip and reports
// whether the signature arrived in Merkle-batched form.
func (r *e20Rig) quote(c *tpm.Client) (batched bool, err error) {
	nonce, err := r.verifier.Challenge()
	if err != nil {
		return false, err
	}
	q, err := c.Quote(r.aik, r.aikAuth, nonce, r.sel)
	if err != nil {
		return false, err
	}
	if err := r.verifier.VerifyQuote(r.cert, nonce, q); err != nil {
		return false, err
	}
	return tpm.IsBatchedQuote(q.Signature), nil
}

// E20SignPool runs the three phases and renders the summary table.
func E20SignPool(cfg Config) (*E20Report, error) {
	rep := &E20Report{}

	// Phase 1 — model. The pooled knee comes from the committed gate
	// scenario verbatim; the inline knee from the same scenario with the
	// pool stripped, so the two ladders differ only in where signatures
	// run. SLO tables are identical: the knee moves at unchanged SLOs.
	pooled, err := loadgen.ParseScenario(CapacityScenarioText)
	if err != nil {
		return nil, fmt.Errorf("E20 scenario: %w", err)
	}
	inline := *pooled
	inline.SignWorkers, inline.SignCost = 0, nil
	inline.SignBatchWindow, inline.SignBatchMax = 0, 0
	if rep.KneeInline, err = e20Knee(&inline); err != nil {
		return nil, fmt.Errorf("E20 inline sweep: %w", err)
	}
	if rep.KneePooled, err = e20Knee(pooled); err != nil {
		return nil, fmt.Errorf("E20 pooled sweep: %w", err)
	}
	rep.KneeRatio = rep.KneePooled / rep.KneeInline
	if rep.KneeRatio < 1.5 {
		return nil, fmt.Errorf("E20: pooled knee %.0f/s is only %.2fx the inline %.0f/s (floor 1.5x)",
			rep.KneePooled, rep.KneeRatio, rep.KneeInline)
	}
	rep.QuoteBusyShareInline = e20BusyShare(pooled, false, workload.OpQuote)
	rep.QuoteBusyShare = e20BusyShare(pooled, true, workload.OpQuote)
	rep.ExtendRandomBusyShare = e20BusyShare(pooled, true, workload.OpExtend, workload.OpGetRandom)
	if rep.QuoteBusyShare >= rep.ExtendRandomBusyShare {
		return nil, fmt.Errorf("E20: Quote still holds %.1f%% of dispatch-lane busy time, above Extend+GetRandom's %.1f%%",
			100*rep.QuoteBusyShare, 100*rep.ExtendRandomBusyShare)
	}

	// Phase 2 — real engine, end to end through the attest package.
	reps := cfg.reps(60, 8)
	seqRun := func(seed string, pool *tpm.SignPool) (float64, error) {
		rig, cli, err := newE20Rig(cfg.bits(), seed, pool)
		if err != nil {
			return 0, err
		}
		rec := metrics.NewRecorder()
		for i := 0; i < reps; i++ {
			start := time.Now()
			batched, err := rig.quote(cli)
			if err != nil {
				rep.EquivalenceFailures++
				return 0, err
			}
			rec.Add(time.Since(start))
			rep.QuotesVerified++
			if batched {
				rep.QuotesBatched++
			}
		}
		return float64(rec.Percentile(50).Nanoseconds()) / 1e3, nil
	}
	if rep.InlineQuoteUs, err = seqRun("e20-inline", nil); err != nil {
		return nil, fmt.Errorf("E20 inline quotes: %w", err)
	}
	seqPool := tpm.NewSignPool(tpm.SignPoolConfig{Workers: 2})
	rep.PooledQuoteUs, err = seqRun("e20-pooled", seqPool)
	seqPool.Close()
	if err != nil {
		return nil, fmt.Errorf("E20 pooled quotes: %w", err)
	}

	// The batched rig: 8 concurrent same-key streams through a batching
	// pool. Every response is independently challenge-verified; at least
	// one must arrive Merkle-batched or the window never coalesced.
	batchPool := tpm.NewSignPool(tpm.SignPoolConfig{
		Workers: 2, BatchWindow: 2 * time.Millisecond, BatchMax: 8,
	})
	defer batchPool.Close()
	rig, _, err := newE20Rig(cfg.bits(), "e20-batched", batchPool)
	if err != nil {
		return nil, fmt.Errorf("E20 batched rig: %w", err)
	}
	const streams = 8
	var wg sync.WaitGroup
	var verified, batchedN, failures atomic.Int64
	errCh := make(chan error, streams)
	start := time.Now()
	for w := 0; w < streams; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := rig.client()
			for i := 0; i < reps; i++ {
				batched, err := rig.quote(c)
				if err != nil {
					failures.Add(1)
					errCh <- err
					return
				}
				verified.Add(1)
				if batched {
					batchedN.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	rep.QuotesVerified += int(verified.Load())
	rep.QuotesBatched += int(batchedN.Load())
	rep.EquivalenceFailures += int(failures.Load())
	if rep.EquivalenceFailures > 0 {
		return nil, fmt.Errorf("E20: %d of %d batched-stream quotes failed verification: %w",
			rep.EquivalenceFailures, streams*reps, <-errCh)
	}
	if rep.QuotesBatched == 0 {
		return nil, fmt.Errorf("E20: no quote arrived Merkle-batched across %d concurrent streams", streams)
	}
	rep.BatchedQuoteUs = float64(elapsed.Nanoseconds()) / float64(streams*reps) / 1e3
	if rep.BatchedQuoteUs > 0 {
		rep.BatchAmortRatio = rep.PooledQuoteUs / rep.BatchedQuoteUs
	}

	// Phase 3 — fleet create with and without the background key pool.
	rep.FleetN = cfg.reps(32, 6)
	for _, poolSize := range []int{0, rep.FleetN} {
		h, err := newHost(cfg, xvtpm.ModeImproved, func(hc *xvtpm.HostConfig) {
			hc.EKPoolSize = poolSize
			hc.Dom0Pages = 32768
		})
		if err != nil {
			return nil, fmt.Errorf("E20 fleet host: %w", err)
		}
		if poolSize > 0 {
			// Let the background filler stock the pool, as a host that has
			// been up for more than a burst would be.
			time.Sleep(cfg.durOrQuick(500*time.Millisecond, 100*time.Millisecond))
		}
		start := time.Now()
		for i := 0; i < rep.FleetN; i++ {
			if _, err := h.Manager.CreateInstance(); err != nil {
				h.Close() //nolint:errcheck // error path
				return nil, fmt.Errorf("E20 fleet create: %w", err)
			}
		}
		secs := time.Since(start).Seconds()
		if poolSize == 0 {
			rep.CreateNoPoolSecs = secs
		} else {
			rep.CreatePoolSecs = secs
		}
		h.Close()
	}
	if rep.CreatePoolSecs > 0 {
		rep.CreateSpeedup = rep.CreateNoPoolSecs / rep.CreatePoolSecs
	}

	if cfg.Out != nil {
		row := func(metric, value string) []string { return []string{metric, value} }
		metrics.Table(cfg.Out, "E20 (extension) — signing pool: offloaded quotes, Merkle batching, key pool",
			[]string{"metric", "value"}, [][]string{
				row("modeled knee", fmt.Sprintf("%.0f/s inline → %.0f/s pooled (%.2fx, floor 1.5x, SLOs unchanged)",
					rep.KneeInline, rep.KneePooled, rep.KneeRatio)),
				row("quote busy share", fmt.Sprintf("%.1f%% inline → %.1f%% pooled (extend+getrandom %.1f%%)",
					100*rep.QuoteBusyShareInline, 100*rep.QuoteBusyShare, 100*rep.ExtendRandomBusyShare)),
				row("quote+verify median", fmt.Sprintf("inline %.0fµs, pooled %.0fµs", rep.InlineQuoteUs, rep.PooledQuoteUs)),
				row("batched streams", fmt.Sprintf("8×%d quotes at %.0fµs/quote (%.2fx the sequential pooled rate)",
					reps, rep.BatchedQuoteUs, rep.BatchAmortRatio)),
				row("attestation", fmt.Sprintf("%d verified (%d Merkle-batched), %d failures",
					rep.QuotesVerified, rep.QuotesBatched, rep.EquivalenceFailures)),
				row("fleet create", fmt.Sprintf("%d instances: %.3fs cold keygen → %.3fs key pool (%.1fx)",
					rep.FleetN, rep.CreateNoPoolSecs, rep.CreatePoolSecs, rep.CreateSpeedup)),
			})
	}
	return rep, nil
}
