package experiments

// E17 — log-structured checkpoint store at fleet scale. The write-behind
// checkpoint pipeline (E11-E13) made persistence asynchronous, but the flat
// blob store still pays one random device write — and on real hardware one
// flush — per dirty instance. E17 measures what the segmented log with
// cross-instance group commit (internal/store/logstore, DESIGN.md §11) buys
// at fleet scale, on a modeled device whose flush cost is charged
// explicitly:
//
//   - group-commit throughput vs the flat store at `dirty` concurrent
//     checkpoint writers per window (the ISSUE criterion: ≥5× at 10k);
//   - fleet persistence and recovery at 100k+ instances: creation
//     throughput, write amplification, compaction debt and reclaim;
//   - cold-start: log replay rate (records/s) and full ReviveAll of the
//     fleet through the vTPM manager;
//   - torn-tail discipline: a crash mid-record must cost at most the one
//     uncommitted record and zero committed generations.
//
// Instance state is donor-replicated: one TPM 1.2 engine is serialized once
// and wrapped per instance ID through the baseline guard (whose state
// protection is ID-independent plaintext — the paper's point of attack), so
// the experiment measures store mechanics, not 100k RSA key generations.

import (
	"bytes"
	"fmt"
	"sync"
	"time"

	"xvtpm/internal/core"
	"xvtpm/internal/metrics"
	"xvtpm/internal/store/logstore"
	"xvtpm/internal/tpm"
	"xvtpm/internal/vtpm"
	"xvtpm/internal/xen"
)

// e17SyncDelay is the modeled device flush cost, charged once per Put on
// the flat store and once per group commit on the log store. 50µs sits
// between an NVMe flush and a disk-array write-back ack.
const e17SyncDelay = 50 * time.Microsecond

// E17Report is the measured summary.
type E17Report struct {
	// Phase A — group-commit throughput at DirtyPerWindow concurrent
	// checkpoint writers.
	DirtyPerWindow int
	FlatSecs       float64
	GroupSecs      float64
	Speedup        float64
	CoalesceRatio  float64

	// Phase B — fleet persistence at Instances blobs.
	Instances      int
	CreateSecs     float64
	WriteAmp       float64
	Segments       int
	DebtBytes      uint64
	ReclaimedBytes int

	// Phase C — cold start over the compacted fleet log.
	ReplayRecords int
	ReplaySecs    float64
	ReplayRate    float64
	Revived       int
	ReviveSecs    float64
	ReviveRate    float64

	// Phase D — torn-tail recovery discipline.
	TornDroppedBytes int
	TornFallbacks    int
	LostCommitted    int
}

// e17FlatStore models the seed persistence backend on the same device: one
// random write plus one flush per dirty instance, serialized at the device
// like any single blockdev queue.
type e17FlatStore struct {
	mu    sync.Mutex
	inner *vtpm.MemStore
}

func (s *e17FlatStore) Put(name string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	time.Sleep(e17SyncDelay)
	return s.inner.Put(name, data)
}
func (s *e17FlatStore) Get(name string) ([]byte, error) { return s.inner.Get(name) }
func (s *e17FlatStore) Delete(name string) error        { return s.inner.Delete(name) }
func (s *e17FlatStore) List() ([]string, error)         { return s.inner.List() }

// e17PutStorm writes blobs for ids [0, n) through workers concurrent
// goroutines — the shape of a write-behind flush wave — and returns the
// wall time.
func e17PutStorm(store vtpm.Store, n, workers int, blob []byte) (time.Duration, error) {
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for id := w; id < n; id += workers {
				if err := store.Put(fmt.Sprintf("vtpm-%08d.state", id), blob); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errCh:
		return 0, err
	default:
		return elapsed, nil
	}
}

// e17DonorBlob serializes one freshly-started TPM 1.2 engine and wraps it
// the way the manager's checkpoint path would under the baseline guard.
func e17DonorBlob(cfg Config) ([]byte, error) {
	eng, err := tpm.NewEngine(tpm.Profile12, tpm.Config{RSABits: cfg.bits(), Seed: []byte("e17-donor")})
	if err != nil {
		return nil, err
	}
	if err := tpm.StartupEngine(eng); err != nil {
		return nil, err
	}
	state := eng.AppendState(nil)
	return core.NewBaselineGuard().ProtectState(
		vtpm.InstanceInfo{ID: 1, Profile: tpm.Profile12}, state)
}

// E17LogStore runs the four phases and renders the summary table.
func E17LogStore(cfg Config) (*E17Report, error) {
	rep := &E17Report{
		DirtyPerWindow: cfg.reps(10000, 1000),
		Instances:      cfg.reps(100000, 5000),
	}
	blob, err := e17DonorBlob(cfg)
	if err != nil {
		return nil, fmt.Errorf("E17 donor: %w", err)
	}
	workers := 64

	// Phase A: one window of dirty instances, flat vs group commit.
	flat := &e17FlatStore{inner: vtpm.NewMemStore()}
	flatDur, err := e17PutStorm(flat, rep.DirtyPerWindow, workers, blob)
	if err != nil {
		return nil, fmt.Errorf("E17 flat storm: %w", err)
	}
	gs := logstore.New(logstore.Config{SyncDelay: e17SyncDelay, NotFound: vtpm.ErrNoState})
	groupDur, err := e17PutStorm(gs, rep.DirtyPerWindow, workers, blob)
	if err != nil {
		return nil, fmt.Errorf("E17 group storm: %w", err)
	}
	rep.FlatSecs = flatDur.Seconds()
	rep.GroupSecs = groupDur.Seconds()
	if rep.GroupSecs > 0 {
		rep.Speedup = rep.FlatSecs / rep.GroupSecs
	}
	rep.CoalesceRatio = gs.Stats().CoalesceRatio()

	// Phase B: persist the whole fleet, then churn 10% of it through three
	// more generations to build compaction debt.
	fleet := logstore.New(logstore.Config{
		SyncDelay: e17SyncDelay, NotFound: vtpm.ErrNoState, DisableAutoCompact: true,
	})
	createDur, err := e17PutStorm(fleet, rep.Instances, workers, blob)
	if err != nil {
		return nil, fmt.Errorf("E17 fleet create: %w", err)
	}
	rep.CreateSecs = createDur.Seconds()
	churn := rep.Instances / 10
	for round := 0; round < 3; round++ {
		if _, err := e17PutStorm(fleet, churn, workers, blob); err != nil {
			return nil, fmt.Errorf("E17 churn: %w", err)
		}
	}
	st := fleet.Stats()
	rep.WriteAmp = st.WriteAmplification()
	rep.Segments = st.Segments
	rep.DebtBytes = st.CompactionDebt
	rep.ReclaimedBytes = fleet.Compact()

	// Phase C: cold start — replay the compacted log, then revive the
	// whole fleet through a fresh manager.
	ls2, rs, err := logstore.Open(fleet.Disk(), logstore.Config{NotFound: vtpm.ErrNoState})
	if err != nil {
		return nil, fmt.Errorf("E17 reopen: %w", err)
	}
	rep.ReplayRecords = rs.Records
	rep.ReplaySecs = rs.Elapsed.Seconds()
	rep.ReplayRate = rs.ReplayRate()

	hv := xen.NewHypervisor(xen.DomainConfig{Name: "Domain-0", Pages: 8192})
	dom0, err := hv.Domain(xen.Dom0)
	if err != nil {
		return nil, err
	}
	mgr := vtpm.NewManager(hv, ls2, xen.NewArena(dom0), core.NewBaselineGuard(),
		vtpm.ManagerConfig{RSABits: cfg.bits(), TraceDepth: -1})
	reviveStart := time.Now()
	revived, err := mgr.ReviveAll()
	reviveDur := time.Since(reviveStart)
	if err != nil {
		return nil, fmt.Errorf("E17 revive: %w", err)
	}
	if len(revived) != rep.Instances {
		return nil, fmt.Errorf("E17: revived %d of %d", len(revived), rep.Instances)
	}
	rep.Revived = len(revived)
	rep.ReviveSecs = reviveDur.Seconds()
	if rep.ReviveSecs > 0 {
		rep.ReviveRate = float64(rep.Revived) / rep.ReviveSecs
	}
	if err := mgr.Close(); err != nil {
		return nil, err
	}

	// Phase D: torn tail. A small deterministic fleet, three committed
	// generations per name, then a crash mid-final-record.
	torn := logstore.New(logstore.Config{SegmentSize: 64 << 10, NotFound: vtpm.ErrNoState, DisableAutoCompact: true})
	const tornNames, tornGens, tornLen = 100, 3, 256
	for g := 0; g < tornGens; g++ {
		payload := bytes.Repeat([]byte{byte(g)}, tornLen)
		for i := 0; i < tornNames; i++ {
			if err := torn.Put(fmt.Sprintf("vtpm-%08d.state", i), payload); err != nil {
				return nil, err
			}
		}
	}
	torn.Disk().TruncateTail(tornLen / 2)
	tre, trs, err := logstore.Open(torn.Disk(), logstore.Config{NotFound: vtpm.ErrNoState})
	if err != nil {
		return nil, fmt.Errorf("E17 torn reopen: %w", err)
	}
	rep.TornDroppedBytes = trs.DroppedBytes
	for i := 0; i < tornNames; i++ {
		b, err := tre.Get(fmt.Sprintf("vtpm-%08d.state", i))
		if err != nil || len(b) != tornLen {
			rep.LostCommitted++
			continue
		}
		if b[0] != tornGens-1 {
			rep.TornFallbacks++
		}
	}
	if rep.LostCommitted > 0 {
		return nil, fmt.Errorf("E17: %d committed names lost to a torn tail", rep.LostCommitted)
	}

	if cfg.Out != nil {
		row := func(metric, value string) []string { return []string{metric, value} }
		metrics.Table(cfg.Out, "E17 (extension) — log-structured checkpoint store with group commit",
			[]string{"metric", "value"}, [][]string{
				row("dirty instances per window", fmt.Sprintf("%d", rep.DirtyPerWindow)),
				row("flat-store window", fmt.Sprintf("%.3fs (%.0f puts/s)", rep.FlatSecs, float64(rep.DirtyPerWindow)/rep.FlatSecs)),
				row("group-commit window", fmt.Sprintf("%.3fs (%.0f puts/s)", rep.GroupSecs, float64(rep.DirtyPerWindow)/rep.GroupSecs)),
				row("speedup", fmt.Sprintf("%.1fx (coalesce %.1f puts/commit)", rep.Speedup, rep.CoalesceRatio)),
				row("fleet size", fmt.Sprintf("%d instances (%.3fs create, %.0f puts/s)", rep.Instances, rep.CreateSecs, float64(rep.Instances)/rep.CreateSecs)),
				row("write amplification", fmt.Sprintf("%.3fx over %d segments", rep.WriteAmp, rep.Segments)),
				row("compaction", fmt.Sprintf("%d bytes debt, %d reclaimed", rep.DebtBytes, rep.ReclaimedBytes)),
				row("replay", fmt.Sprintf("%d records in %.3fs (%.0f records/s)", rep.ReplayRecords, rep.ReplaySecs, rep.ReplayRate)),
				row("ReviveAll", fmt.Sprintf("%d instances in %.3fs (%.0f instances/s)", rep.Revived, rep.ReviveSecs, rep.ReviveRate)),
				row("torn tail", fmt.Sprintf("%d bytes dropped, %d fallbacks, %d committed lost", rep.TornDroppedBytes, rep.TornFallbacks, rep.LostCommitted)),
			})
	}
	return rep, nil
}
