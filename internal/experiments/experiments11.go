package experiments

// E18 — federation under churn and failure. The cluster package (DESIGN.md
// §12) federates hosts behind a generation-fenced placement directory;
// every cross-host move is a two-phase fenced handoff and every failure
// path must end with exactly one owner. E18 measures and verifies the three
// operations a fleet actually runs:
//
//   - Phase A — drain: one host's whole fleet (≥5k guests in full mode)
//     evacuates through the bounded-concurrency migration pipeline while
//     guest sessions keep dispatching; the guest-visible pause is per
//     instance (blackout p50/p99), never per host, and every session's PCR
//     chain must survive intact.
//   - Phase B — failure: a host stops heartbeating, the detector walks it
//     Alive → Suspect → Condemned, and evacuation revives every guest it
//     owned from committed checkpoints in the shared log — with zero
//     committed-generation loss (PCR digests equal pre-kill snapshots) and
//     the zombie's late writes and dispatches fenced off.
//   - Phase C — storm: a ~5% transfer-leg fault rate (transient and
//     permanent) over a migration barrage; afterwards the accounting must
//     balance (started = committed + aborted) and a full ownership audit
//     must find exactly one owner per guest, still serving.
//
// Guests use RSA-512 vTPM keys regardless of mode: key size is orthogonal
// to federation mechanics, and it keeps the 5k-guest fleet's creation
// affordable (the same trade E17 makes with its donor blob).

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"xvtpm"
	"xvtpm/internal/cluster"
	"xvtpm/internal/faults"
	"xvtpm/internal/metrics"
	"xvtpm/internal/tpm"
	"xvtpm/internal/vtpm"
)

// E18Report is the measured summary.
type E18Report struct {
	// Phase A — mass drain under live dispatch.
	Guests           int
	CreateSecs       float64
	DrainMoved       int
	DrainFailed      int
	DrainSecs        float64
	DrainRate        float64
	BlackoutP50      time.Duration
	BlackoutP99      time.Duration
	SessionExtends   uint64
	SessionRedirects uint64
	SessionRetries   uint64
	ChainFailures    int

	// Phase B — condemnation and evacuation.
	EvacRequested      int
	EvacRevived        int
	EvacFailed         int
	EvacSecs           float64
	EvacRate           float64
	DigestMismatches   int
	ZombieStoreRejects uint64
	ZombieFenceRejects uint64

	// Phase C — transfer-leg fault storm.
	StormMoves          int
	StormStarted        uint64
	StormCommitted      uint64
	StormAborted        uint64
	StormRetries        uint64
	OwnershipViolations int
}

// e18CreateFleet places n guests on host through a worker pool.
func e18CreateFleet(c *cluster.Cluster, host string, n, workers int) (time.Duration, error) {
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += workers {
				_, err := c.CreateGuestOn(host, xvtpm.GuestConfig{
					Name:   fmt.Sprintf("fed-%05d", i),
					Kernel: []byte(fmt.Sprintf("vmlinuz-%05d", i)),
					Pages:  16,
				})
				if err != nil {
					errCh <- fmt.Errorf("creating fed-%05d: %w", i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errCh:
		return 0, err
	default:
		return elapsed, nil
	}
}

// E18Federation runs the three phases and renders the summary table.
func E18Federation(cfg Config) (*E18Report, error) {
	rep := &E18Report{
		Guests:     cfg.reps(5000, 60),
		StormMoves: cfg.reps(2000, 100),
	}
	const seed = 0xE18
	workers := 16

	// The injector is armed only for phase C; phases A and B run clean.
	inj := faults.NewInjector(seed)
	inj.SetPolicy(faults.OpTransfer, faults.Policy{ErrorRate: 0.04, PermanentRate: 0.01})
	inj.SetDisabled(true)

	c, err := cluster.New(cluster.Config{
		Hosts:         3,
		Mode:          xvtpm.ModeImproved,
		RSABits:       512,
		Seed:          []byte("e18-federation"),
		Dom0Pages:     1 << 18,
		Injector:      inj,
		TransferRetry: vtpm.RetryPolicy{MaxAttempts: 4, Deadline: 5 * time.Second},
	})
	if err != nil {
		return nil, fmt.Errorf("E18 cluster: %w", err)
	}
	defer c.Close() //nolint:errcheck // condemned member's flush is expected to be refused

	// Phase A: fleet onto h0, then drain it with sessions dispatching the
	// whole time.
	createDur, err := e18CreateFleet(c, "h0", rep.Guests, workers)
	if err != nil {
		return nil, fmt.Errorf("E18 fleet: %w", err)
	}
	rep.CreateSecs = createDur.Seconds()

	nSessions := 24
	if nSessions > rep.Guests {
		nSessions = rep.Guests
	}
	sessions := make([]*cluster.Session, nSessions)
	var stop atomic.Bool
	var extends atomic.Uint64
	var chainFailures atomic.Int64
	var wg sync.WaitGroup
	for i := range sessions {
		// Spread sessions across the fleet; each owns one PCR of one guest.
		key := fmt.Sprintf("fed-%05d", i*(rep.Guests/nSessions))
		sessions[i] = c.Session(key)
		wg.Add(1)
		go func(i int, s *cluster.Session) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(i))) //nolint:gosec // deterministic workload
			pcr := uint32(8 + i%8)
			for !stop.Load() {
				var d [tpm.DigestSize]byte
				rng.Read(d[:]) //nolint:errcheck // never fails
				if _, err := s.Extend(pcr, d); err != nil {
					chainFailures.Add(1)
					return
				}
				extends.Add(1)
			}
		}(i, sessions[i])
	}

	ds, err := c.Drain("h0", workers)
	stop.Store(true)
	wg.Wait()
	if err != nil {
		return nil, fmt.Errorf("E18 drain: %w", err)
	}
	rep.DrainMoved = ds.Moved
	rep.DrainFailed = ds.Failed
	rep.DrainSecs = ds.Elapsed.Seconds()
	rep.DrainRate = ds.Throughput()
	blackout := c.ClusterStats().Blackout
	rep.BlackoutP50 = blackout.Quantile(0.50)
	rep.BlackoutP99 = blackout.Quantile(0.99)
	rep.SessionExtends = extends.Load()
	for _, s := range sessions {
		rep.SessionRedirects += s.Redirects
		rep.SessionRetries += s.Retried
		if err := s.Verify(); err != nil {
			chainFailures.Add(1)
		}
	}
	rep.ChainFailures = int(chainFailures.Load())
	if rep.DrainFailed > 0 || rep.DrainMoved != rep.Guests {
		return nil, fmt.Errorf("E18: drain moved %d, failed %d, want all %d moved",
			rep.DrainMoved, rep.DrainFailed, rep.Guests)
	}
	if rep.ChainFailures > 0 {
		return nil, fmt.Errorf("E18: %d session PCR chains broke across the drain", rep.ChainFailures)
	}

	// Phase B: snapshot h1's committed truth, then let it go silent.
	h1, _ := c.Member("h1")
	preDigests := make(map[string][tpm.DigestSize]byte)
	preHandles := make(map[string]*xvtpm.Guest)
	for _, key := range c.Keys() {
		owner, g, err := c.Owner(key)
		if err != nil {
			return nil, err
		}
		if owner != "h1" {
			continue
		}
		d, err := h1.Host.Manager.PCRDigest(g.Instance)
		if err != nil {
			return nil, fmt.Errorf("E18 pre-kill digest of %q: %w", key, err)
		}
		preDigests[key] = d
		preHandles[key] = g
	}
	// Commit everything pending so the shared log's committed generation is
	// the snapshot just taken.
	if err := h1.Host.Manager.CheckpointAll(); err != nil {
		return nil, fmt.Errorf("E18 pre-kill flush: %w", err)
	}

	// Drive the detector on an explicit clock: all beat at t0, the
	// survivors beat on, h1 never again.
	t0 := time.Now()
	for _, m := range c.Members() {
		c.Beat(m.Name, t0)
	}
	t1 := t0.Add(3 * time.Second) // past SuspectAfter (2s), short of condemnation
	c.Beat("h0", t1)
	c.Beat("h2", t1)
	if condemned := c.CheckFailures(t1); len(condemned) != 0 {
		return nil, fmt.Errorf("E18: %v condemned at suspect horizon", condemned)
	}
	if st, _ := c.FailStateOf("h1"); st != cluster.Suspect {
		return nil, fmt.Errorf("E18: h1 is %v at suspect horizon, want suspect", st)
	}
	t2 := t0.Add(5 * time.Second) // past SuspectAfter+CondemnAfter (4s)
	c.Beat("h0", t2)
	c.Beat("h2", t2)
	condemned := c.CheckFailures(t2)
	if len(condemned) != 1 || condemned[0] != "h1" {
		return nil, fmt.Errorf("E18: condemned %v, want exactly h1", condemned)
	}

	es, err := c.Evacuate("h1", workers)
	if err != nil {
		return nil, fmt.Errorf("E18 evacuate: %w", err)
	}
	rep.EvacRequested = es.Requested
	rep.EvacRevived = es.Revived
	rep.EvacFailed = es.Failed
	rep.EvacSecs = es.Elapsed.Seconds()
	if rep.EvacSecs > 0 {
		rep.EvacRate = float64(rep.EvacRevived) / rep.EvacSecs
	}
	rep.ZombieStoreRejects = es.ZombieStoreRejects
	if rep.EvacFailed > 0 || rep.EvacRevived != rep.EvacRequested {
		return nil, fmt.Errorf("E18: evacuation revived %d of %d (%d failed)",
			rep.EvacRevived, rep.EvacRequested, rep.EvacFailed)
	}

	// Zero committed-generation loss: every revived guest's PCR bank equals
	// the pre-kill snapshot.
	for key, want := range preDigests {
		owner, g, err := c.Owner(key)
		if err != nil {
			return nil, err
		}
		m, _ := c.Member(owner)
		got, err := m.Host.Manager.PCRDigest(g.Instance)
		if err != nil || got != want {
			rep.DigestMismatches++
		}
	}
	if rep.DigestMismatches > 0 {
		return nil, fmt.Errorf("E18: %d revived guests lost committed PCR state", rep.DigestMismatches)
	}

	// The zombie: its guests' late dispatches must be redirected, never
	// executed against superseded state.
	zombieBase := h1.Host.Manager.FenceRejects()
	probes := 0
	for _, g := range preHandles {
		if _, err := g.TPM.GetRandom(4); err == nil {
			return nil, fmt.Errorf("E18: a zombie dispatch executed after condemnation")
		}
		if probes++; probes >= 8 {
			break
		}
	}
	rep.ZombieFenceRejects = h1.Host.Manager.FenceRejects() - zombieBase
	if rep.ZombieFenceRejects == 0 {
		return nil, fmt.Errorf("E18: zombie dispatches were not fence-rejected")
	}

	// Phase C: arm the injector and run the storm over the survivors.
	preStorm := c.ClusterStats()
	inj.SetDisabled(false)
	keys := c.Keys()
	stormHosts := []string{"h0", "h2"}
	var sw sync.WaitGroup
	stormWorkers := 8
	if stormWorkers > rep.StormMoves {
		stormWorkers = rep.StormMoves
	}
	for w := 0; w < stormWorkers; w++ {
		sw.Add(1)
		go func(w int) {
			defer sw.Done()
			rng := rand.New(rand.NewSource(seed ^ int64(0x9E3779B9*(w+1)))) //nolint:gosec // deterministic schedule
			for n := w; n < rep.StormMoves; n += stormWorkers {
				key := keys[rng.Intn(len(keys))]
				dst := stormHosts[rng.Intn(len(stormHosts))]
				// Rollbacks under injected faults are the point; the audit
				// below is the verdict.
				c.Migrate(key, dst) //nolint:errcheck // storm leg
			}
		}(w)
	}
	sw.Wait()
	inj.SetDisabled(true)

	post := c.ClusterStats()
	rep.StormStarted = post.MigStarted - preStorm.MigStarted
	rep.StormCommitted = post.MigCommitted - preStorm.MigCommitted
	rep.StormAborted = post.MigAborted - preStorm.MigAborted
	rep.StormRetries = post.MigRetried - preStorm.MigRetried
	if rep.StormStarted != rep.StormCommitted+rep.StormAborted {
		return nil, fmt.Errorf("E18: migration accounting leak: %d started != %d committed + %d aborted",
			rep.StormStarted, rep.StormCommitted, rep.StormAborted)
	}

	// The audit: exactly one owner per guest — directory settled, record in
	// agreement, owner's manager holding the instance, a live dispatch
	// served.
	for _, key := range keys {
		pl, ok := c.Directory().Lookup(key)
		if !ok || pl.State != cluster.Owned || pl.Dest != "" {
			rep.OwnershipViolations++
			continue
		}
		owner, g, err := c.Owner(key)
		if err != nil || owner != pl.Host {
			rep.OwnershipViolations++
			continue
		}
		m, ok := c.Member(owner)
		if !ok {
			rep.OwnershipViolations++
			continue
		}
		if _, err := m.Host.Manager.InstanceInfo(g.Instance); err != nil {
			rep.OwnershipViolations++
			continue
		}
		if _, err := g.TPM.GetRandom(4); err != nil {
			rep.OwnershipViolations++
		}
	}
	if rep.OwnershipViolations > 0 {
		return nil, fmt.Errorf("E18: %d guests violate exactly-one-owner after the storm", rep.OwnershipViolations)
	}

	if cfg.Out != nil {
		row := func(metric, value string) []string { return []string{metric, value} }
		metrics.Table(cfg.Out, "E18 (extension) — federation: fenced drain, evacuation, fault storm",
			[]string{"metric", "value"}, [][]string{
				row("fleet", fmt.Sprintf("%d guests on 3 hosts (%.3fs create, %.0f guests/s)",
					rep.Guests, rep.CreateSecs, float64(rep.Guests)/rep.CreateSecs)),
				row("drain h0", fmt.Sprintf("%d moved, %d failed in %.3fs (%.0f moves/s)",
					rep.DrainMoved, rep.DrainFailed, rep.DrainSecs, rep.DrainRate)),
				row("blackout per instance", fmt.Sprintf("p50 %v, p99 %v", rep.BlackoutP50, rep.BlackoutP99)),
				row("live sessions", fmt.Sprintf("%d extends, %d redirects, %d retries, %d chains broken",
					rep.SessionExtends, rep.SessionRedirects, rep.SessionRetries, rep.ChainFailures)),
				row("evacuate dead h1", fmt.Sprintf("%d of %d revived in %.3fs (%.0f revives/s)",
					rep.EvacRevived, rep.EvacRequested, rep.EvacSecs, rep.EvacRate)),
				row("committed-state loss", fmt.Sprintf("%d digest mismatches", rep.DigestMismatches)),
				row("zombie containment", fmt.Sprintf("%d store rejects, %d fence rejects",
					rep.ZombieStoreRejects, rep.ZombieFenceRejects)),
				row("fault storm", fmt.Sprintf("%d moves at 5%% injected faults: %d committed, %d aborted, %d retries",
					rep.StormMoves, rep.StormCommitted, rep.StormAborted, rep.StormRetries)),
				row("ownership audit", fmt.Sprintf("%d violations across %d guests", rep.OwnershipViolations, len(keys))),
			})
	}
	return rep, nil
}
