package experiments

import (
	"fmt"

	"xvtpm"
	"xvtpm/internal/faults"
	"xvtpm/internal/metrics"
	"xvtpm/internal/tpm"
	"xvtpm/internal/vtpm"
)

// E13Seed is the root seed of the fault storm. Every verdict the injector
// hands out is a pure function of this seed (per-operation decision
// streams, see internal/faults), so a failing run is replayed by running
// again with the same seed — which the table header prints.
const E13Seed int64 = 0xC0FFEE

// E13StoreErrorRate is the total store fault probability per operation:
// 4% transient errors plus 1% torn writes.
const (
	e13ErrorRate = 0.04
	e13TornRate  = 0.01
)

// E13Row is one row of the fault-storm recovery table.
type E13Row struct {
	Policy      vtpm.CheckpointPolicy
	Commands    int    // Extend commands attempted during the storm
	Failed      int    // commands that returned an error to the guest
	Injected    uint64 // faults the injector delivered
	Retries     uint64 // store-I/O retry attempts beyond the first
	Degraded    uint64 // Healthy→Degraded transitions taken
	Quarantined uint64 // →Quarantined transitions taken
	Recovered   int    // instances healed by supervised checkpoint post-storm
	Lost        int    // guests whose recovered store state trails their engine
}

// E13FaultStorm drives every checkpoint policy through a seeded store-fault
// storm in two phases — transient Put failures and torn writes at a
// combined 5% rate (absorbed by retries), then a brief total store outage
// (exhausts retries, forcing Degraded/Quarantined transitions) — and then
// exercises the supervised recovery path: injection off, every non-healthy
// instance checkpointed under supervision, and the store's recovered state
// compared against each live engine.
//
// The claim under test is the failure model's durability promise: a command
// the guest saw succeed is never lost. Transient faults are retried to
// success inside the dispatch path; faults that exhaust their retries leave
// the instance visibly Degraded (eager-synchronous persistence) or
// Quarantined (fenced until supervised recovery) — and once the storm ends,
// one supervised Checkpoint per instance brings the store exactly current,
// so the lost column must be zero under all three policies.
func E13FaultStorm(cfg Config) ([]E13Row, error) {
	policies := []vtpm.CheckpointPolicy{
		vtpm.CheckpointEager,
		vtpm.CheckpointWriteback,
		vtpm.CheckpointDeferred,
	}
	const guests = 3
	const pcr = 10
	perGuest := cfg.reps(300, 30)
	var rows []E13Row
	for _, pol := range policies {
		inj := faults.NewInjector(E13Seed)
		inj.SetDisabled(true) // quiet while the host assembles
		fstore := faults.NewStore(vtpm.NewMemStore(), inj)
		h, err := newHost(cfg, xvtpm.ModeImproved, func(hc *xvtpm.HostConfig) {
			hc.Checkpoint = pol
			hc.Store = fstore
			// A tight dirty window keeps writeback's coalescing from shrinking
			// the storm to a handful of Puts — the point here is fault
			// exposure, not throughput.
			hc.MaxDirtyCommands = 4
		})
		if err != nil {
			return nil, err
		}
		gs := make([]*xvtpm.Guest, guests)
		for i := range gs {
			g, err := h.CreateGuest(xvtpm.GuestConfig{
				Name:   fmt.Sprintf("storm-%d", i),
				Kernel: []byte(fmt.Sprintf("storm-kernel-%d", i)),
			})
			if err != nil {
				return nil, fmt.Errorf("E13 guest %d under %s: %w", i, pol, err)
			}
			gs[i] = g
		}

		// The storm: round-robin Extend streams under injection. Sequential
		// dispatch keeps the draw order, and therefore the whole fault
		// schedule, a pure function of the seed for the eager and deferred
		// policies (writeback's worker consumes draws on its own clock).
		inj.SetPolicy(faults.OpPut, faults.Policy{ErrorRate: e13ErrorRate, TornRate: e13TornRate})
		inj.SetDisabled(false)
		row := E13Row{Policy: pol}
		for step := 1; step <= perGuest; step++ {
			for i, g := range gs {
				var m [tpm.DigestSize]byte
				m[0], m[1], m[2] = byte(i), byte(step), byte(step>>8)
				row.Commands++
				if _, err := g.TPM.Extend(pcr, m); err != nil {
					row.Failed++
				}
			}
			// Deferred persists only on explicit checkpoints; issue them
			// periodically so that policy faces the storm too.
			if pol == vtpm.CheckpointDeferred && step%5 == 0 {
				h.Manager.CheckpointAll() //nolint:errcheck // failures surface as health transitions
			}
		}

		// Phase two: a total store outage. 5% is absorbed by retries; a
		// dead store must instead exhaust them and surface as Degraded →
		// Quarantined transitions that supervised recovery then heals.
		inj.SetPolicy(faults.OpPut, faults.Policy{ErrorRate: 1})
		for burst := 1; burst <= 4; burst++ {
			for i, g := range gs {
				var m [tpm.DigestSize]byte
				m[0], m[1], m[2] = byte(i), byte(burst), 0xFF
				row.Commands++
				if _, err := g.TPM.Extend(pcr, m); err != nil {
					row.Failed++
				}
			}
			if pol == vtpm.CheckpointDeferred {
				h.Manager.CheckpointAll() //nolint:errcheck // failures surface as health transitions
			}
		}

		// Storm over: injection off, recover under supervision.
		inj.SetDisabled(true)
		for _, id := range h.Manager.Instances() {
			ih, err := h.Manager.Health(id)
			if err != nil {
				return nil, err
			}
			if ih.State == vtpm.HealthHealthy {
				continue
			}
			if err := h.Manager.Checkpoint(id); err != nil {
				return nil, fmt.Errorf("E13 supervised recovery of instance %d under %s: %w", id, pol, err)
			}
			row.Recovered++
		}
		if err := h.Manager.CheckpointAll(); err != nil {
			return nil, fmt.Errorf("E13 final flush under %s: %w", pol, err)
		}
		for _, ih := range h.Manager.HealthAll() {
			if ih.State != vtpm.HealthHealthy {
				return nil, fmt.Errorf("E13 instance %d still %s after recovery under %s (last error: %s)",
					ih.ID, ih.State, pol, ih.LastError)
			}
		}

		// Verification against the inner store, bypassing the injector: each
		// guest's recovered state must match its live engine exactly — every
		// command the guest saw succeed is in the engine, so engine == store
		// means zero committed mutations lost.
		inner, ok := fstore.Inner().(vtpm.Store)
		if !ok {
			return nil, fmt.Errorf("E13: inner store does not implement vtpm.Store")
		}
		for _, g := range gs {
			eng, err := h.Manager.DirectClient(g.Instance)
			if err != nil {
				return nil, err
			}
			want, err := eng.PCRRead(pcr)
			if err != nil {
				return nil, err
			}
			blob, err := inner.Get(fmt.Sprintf("vtpm-%08d.state", g.Instance))
			if err != nil {
				row.Lost++
				continue
			}
			profile, envelope, err := vtpm.UnwrapCheckpoint(blob)
			if err != nil {
				row.Lost++
				continue
			}
			state, err := h.Guard().RecoverState(vtpm.InstanceInfo{ID: g.Instance, Profile: profile}, envelope)
			if err != nil {
				row.Lost++
				continue
			}
			restored, err := tpm.RestoreState(state)
			if err != nil {
				row.Lost++
				continue
			}
			got, err := tpm.NewClient(tpm.DirectTransport{TPM: restored}, nil).PCRRead(pcr)
			if err != nil || got != want {
				row.Lost++
			}
		}

		stats := h.Manager.CheckpointStats()
		row.Injected = inj.InjectedTotal()
		row.Retries = stats.Retries
		row.Degraded = stats.Degradations
		row.Quarantined = stats.Quarantines
		rows = append(rows, row)
		h.Close() //nolint:errcheck // every instance verified healthy above
	}
	if cfg.Out != nil {
		tbl := make([][]string, 0, len(rows))
		for _, r := range rows {
			tbl = append(tbl, []string{
				r.Policy.String(),
				fmt.Sprintf("%d", r.Commands),
				fmt.Sprintf("%d", r.Failed),
				fmt.Sprintf("%d", r.Injected),
				fmt.Sprintf("%d", r.Retries),
				fmt.Sprintf("%d", r.Degraded),
				fmt.Sprintf("%d", r.Quarantined),
				fmt.Sprintf("%d", r.Recovered),
				fmt.Sprintf("%d", r.Lost),
			})
		}
		metrics.Table(cfg.Out,
			fmt.Sprintf("E13 — store-fault storm at %.0f%% error rate and supervised recovery (seed %d)",
				(e13ErrorRate+e13TornRate)*100, E13Seed),
			[]string{"policy", "commands", "failed", "injected", "retries", "degraded", "quarantined", "recovered", "lost"},
			tbl)
	}
	return rows, nil
}
