package experiments

import (
	"fmt"
	"time"

	"xvtpm"
	"xvtpm/internal/metrics"
	"xvtpm/internal/vtpm"
)

// E10Row is one row of the recovery-time table.
type E10Row struct {
	Instances int
	Baseline  time.Duration
	Improved  time.Duration
}

// E10Recovery is an extension experiment: vTPM manager crash-recovery time.
// After a manager restart the instances are revived from the state store
// (ReviveAll); the improved guard additionally pays envelope authentication
// and decryption per instance. Measured is the full revive time as a
// function of instance count, per guard.
func E10Recovery(cfg Config) ([]E10Row, error) {
	counts := []int{4, 16, 64}
	if cfg.Quick {
		counts = []int{2, 4}
	}
	times := make(map[xvtpm.Mode]map[int]time.Duration)
	for _, mode := range Modes {
		times[mode] = make(map[int]time.Duration)
		for _, n := range counts {
			h, err := newHost(cfg, mode, func(hc *xvtpm.HostConfig) {
				hc.Dom0Pages = 65536
			})
			if err != nil {
				return nil, err
			}
			ids := make([]vtpm.InstanceID, 0, n)
			for i := 0; i < n; i++ {
				id, err := h.Manager.CreateInstance()
				if err != nil {
					return nil, err
				}
				ids = append(ids, id)
			}
			// "Crash": forget the live engines, keep the store blobs.
			blobs := make(map[vtpm.InstanceID][]byte, n)
			for _, id := range ids {
				name := fmt.Sprintf("vtpm-%08d.state", id)
				b, err := h.Store.Get(name)
				if err != nil {
					return nil, err
				}
				blobs[id] = b
				if err := h.Manager.DestroyInstance(id); err != nil {
					return nil, err
				}
				if err := h.Store.Put(name, b); err != nil {
					return nil, err
				}
			}
			start := time.Now()
			revived, err := h.Manager.ReviveAll()
			if err != nil {
				return nil, fmt.Errorf("E10 revive on %s: %w", mode, err)
			}
			elapsed := time.Since(start)
			if len(revived) != n {
				return nil, fmt.Errorf("E10: revived %d of %d", len(revived), n)
			}
			times[mode][n] = elapsed
			h.Close()
		}
	}
	rows := make([]E10Row, 0, len(counts))
	for _, n := range counts {
		rows = append(rows, E10Row{
			Instances: n,
			Baseline:  times[xvtpm.ModeBaseline][n],
			Improved:  times[xvtpm.ModeImproved][n],
		})
	}
	if cfg.Out != nil {
		tbl := make([][]string, 0, len(rows))
		for _, r := range rows {
			perB := time.Duration(0)
			perI := time.Duration(0)
			if r.Instances > 0 {
				perB = r.Baseline / time.Duration(r.Instances)
				perI = r.Improved / time.Duration(r.Instances)
			}
			tbl = append(tbl, []string{
				fmt.Sprintf("%d", r.Instances),
				metrics.Micros(r.Baseline),
				metrics.Micros(r.Improved),
				metrics.Micros(perB),
				metrics.Micros(perI),
			})
		}
		metrics.Table(cfg.Out, "E10 (extension) — manager crash-recovery time (µs)",
			[]string{"instances", "baseline-total", "improved-total", "baseline/inst", "improved/inst"}, tbl)
	}
	return rows, nil
}
