package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"xvtpm/internal/workload"
)

func TestE19RateSweepShape(t *testing.T) {
	var buf bytes.Buffer
	rep, err := E19RateSweep(quickCfg(&buf))
	if err != nil {
		t.Fatalf("E19: %v", err)
	}
	if rep.Capacity <= 0 {
		t.Fatalf("calibration capacity %v", rep.Capacity)
	}
	if len(rep.Points) < 5 {
		t.Fatalf("sweep has %d rates, want >= 5", len(rep.Points))
	}
	last := rep.Points[len(rep.Points)-1]
	if last.Offered <= rep.Capacity {
		t.Fatalf("ladder top %.0f does not cross calibrated capacity %.0f", last.Offered, rep.Capacity)
	}
	for i, p := range rep.Points {
		// Accounting sanity: goodput cannot exceed what actually arrived.
		// The seeded schedule's frozen Poisson fluctuation puts Realized
		// several percent off Offered at quick/-race arrival counts, so
		// the bound is against Realized (see loadgen.SweepPoint).
		realized := p.Realized
		if realized == 0 {
			realized = p.Offered
		}
		if p.Goodput > realized*1.05 {
			t.Fatalf("rate %d: goodput %.0f exceeds realized arrivals %.0f (offered %.0f)",
				i, p.Goodput, realized, p.Offered)
		}
		if p.P999 < p.P99 {
			t.Fatalf("rate %d: p999 %v < p99 %v", i, p.P999, p.P99)
		}
	}
	if rep.Saturated == nil || len(rep.Saturated.PerOp) == 0 {
		t.Fatal("no per-op SLO table at saturation")
	}
	for _, st := range rep.Saturated.PerOp {
		if st.SLO == 0 || st.Attained < 0 || st.Attained > 1 {
			t.Fatalf("per-op stats malformed: %+v", st)
		}
	}
	if rep.ServiceEst[workload.OpQuote] <= rep.ServiceEst[workload.OpGetRandom] {
		t.Fatalf("service probe inverted: quote %v <= getrandom %v",
			rep.ServiceEst[workload.OpQuote], rep.ServiceEst[workload.OpGetRandom])
	}
	out := buf.String()
	for _, want := range []string{"E19", "goodput vs offered", "SLO attainment", "bottleneck"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered output missing %q:\n%s", want, out)
		}
	}
}

func TestCapacityRowsDeterministic(t *testing.T) {
	a, err := CapacityRows()
	if err != nil {
		t.Fatal(err)
	}
	b, err := CapacityRows()
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(CapacityRowNames) {
		t.Fatalf("got %d rows, want %d", len(a), len(CapacityRowNames))
	}
	for i := range a {
		if a[i].Name != CapacityRowNames[i] {
			t.Fatalf("row %d named %q, want %q", i, a[i].Name, CapacityRowNames[i])
		}
		if a[i].NsPerOp <= 0 {
			t.Fatalf("row %s non-positive: %v", a[i].Name, a[i].NsPerOp)
		}
		if a[i] != b[i] {
			t.Fatalf("capacity rows not deterministic: %+v vs %+v", a[i], b[i])
		}
	}
}

func TestCapacitySmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := CapacitySmoke(&buf); err != nil {
		t.Fatalf("smoke: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "capacity smoke ok") {
		t.Fatalf("smoke output:\n%s", buf.String())
	}
}

func TestLatestBaseline(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"BENCH_2.json", "BENCH_10.json", "BENCH_9.json", "BENCH_x.json", "BENCH_3.json.bak", "notes.txt"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := LatestBaseline(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got != filepath.Join(dir, "BENCH_10.json") {
		t.Fatalf("latest baseline %q", got)
	}
	if _, err := LatestBaseline(t.TempDir()); err == nil {
		t.Fatal("empty dir produced a baseline")
	}
}

func TestLatestBaselineFindsCommitted(t *testing.T) {
	// Run from the package dir; the committed baselines live two levels up.
	got, err := LatestBaseline(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(filepath.Base(got), "BENCH_") {
		t.Fatalf("resolved %q", got)
	}
}
