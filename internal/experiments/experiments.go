// Package experiments implements the reconstructed evaluation of the paper:
// one function per table/figure (E1–E8 in DESIGN.md), each runnable from
// cmd/benchrunner and wrapped by the root benchmark suite. The paper's
// evaluation section is unavailable (see DESIGN.md), so these are the
// measurements a 2010 systems-security workshop paper of this kind reports,
// always comparing the improved access-control design against the stock-Xen
// baseline on identical workloads.
package experiments

import (
	"fmt"
	"io"
	"time"

	"xvtpm"
	"xvtpm/internal/metrics"
	"xvtpm/internal/workload"
)

// Config parameterizes one experiment run.
type Config struct {
	// RSABits sizes all keys; benchmarks use 512 to keep RSA cost from
	// drowning the protocol costs under test, the full runs use 1024.
	RSABits int
	// Quick shrinks repetition counts for use inside the test suite.
	Quick bool
	// Out receives the rendered tables/series.
	Out io.Writer
}

func (c Config) bits() int {
	if c.RSABits == 0 {
		return 512
	}
	return c.RSABits
}

func (c Config) reps(full, quick int) int {
	if c.Quick {
		return quick
	}
	return full
}

// Modes under comparison, in presentation order.
var Modes = []xvtpm.Mode{xvtpm.ModeBaseline, xvtpm.ModeImproved}

// hostCounter disambiguates host names across experiments.
var hostCounter int

// newHost builds a host for an experiment.
func newHost(cfg Config, mode xvtpm.Mode, extra ...func(*xvtpm.HostConfig)) (*xvtpm.Host, error) {
	hostCounter++
	hc := xvtpm.HostConfig{
		Name:    fmt.Sprintf("exp-%s-%d", mode, hostCounter),
		Mode:    mode,
		RSABits: cfg.bits(),
	}
	for _, fn := range extra {
		fn(&hc)
	}
	return xvtpm.NewHost(hc)
}

// newGuestRunner creates a guest and provisions its workload state.
func newGuestRunner(h *xvtpm.Host, id int, bits int) (*xvtpm.Guest, *workload.Runner, error) {
	g, err := h.CreateGuest(xvtpm.GuestConfig{
		Name:   fmt.Sprintf("wl-%d", id),
		Kernel: []byte(fmt.Sprintf("kernel-%d", id)),
	})
	if err != nil {
		return nil, nil, err
	}
	r, err := workload.Prepare(g.TPM, id, bits)
	if err != nil {
		return nil, nil, err
	}
	return g, r, nil
}

// E1Row is one row of the per-command overhead table.
type E1Row struct {
	Op       workload.Op
	Baseline time.Duration // mean
	Improved time.Duration // mean
}

// E1PerCommand measures per-command latency through the full path (client →
// ring → backend → guard → instance engine) for both guards.
// Reconstructed Table 1.
func E1PerCommand(cfg Config) ([]E1Row, error) {
	reps := cfg.reps(300, 10)
	warmup := cfg.reps(20, 2)
	means := make(map[xvtpm.Mode]map[workload.Op]time.Duration)
	for _, mode := range Modes {
		h, err := newHost(cfg, mode)
		if err != nil {
			return nil, err
		}
		g, runner, err := newGuestRunner(h, 1, cfg.bits())
		if err != nil {
			return nil, err
		}
		opMeans := make(map[workload.Op]time.Duration)
		for _, op := range workload.AllOps {
			for i := 0; i < warmup; i++ {
				if err := runner.Step(op); err != nil {
					return nil, fmt.Errorf("E1 warmup %v on %s: %w", op, mode, err)
				}
			}
			rec := metrics.NewRecorder()
			for i := 0; i < reps; i++ {
				start := time.Now()
				if err := runner.Step(op); err != nil {
					return nil, fmt.Errorf("E1 %v on %s: %w", op, mode, err)
				}
				rec.Add(time.Since(start))
			}
			opMeans[op] = rec.Percentile(50)
		}
		means[mode] = opMeans
		_ = g
		h.Close()
	}
	rows := make([]E1Row, 0, len(workload.AllOps))
	for _, op := range workload.AllOps {
		rows = append(rows, E1Row{
			Op:       op,
			Baseline: means[xvtpm.ModeBaseline][op],
			Improved: means[xvtpm.ModeImproved][op],
		})
	}
	if cfg.Out != nil {
		tbl := make([][]string, 0, len(rows))
		for _, r := range rows {
			tbl = append(tbl, []string{
				r.Op.String(),
				metrics.Micros(r.Baseline),
				metrics.Micros(r.Improved),
				metrics.Ratio(r.Baseline, r.Improved),
			})
		}
		metrics.Table(cfg.Out, "E1 / Table 1 — per-command median latency (µs), baseline vs improved",
			[]string{"command", "baseline", "improved", "overhead"}, tbl)
	}
	return rows, nil
}

// E2Point is one point of the scalability figure.
type E2Point struct {
	Guests     int
	Throughput float64 // commands/second, aggregate
}

// E2Scalability measures aggregate throughput as the number of concurrently
// active guests grows. Reconstructed Figure 1.
func E2Scalability(cfg Config) (map[xvtpm.Mode][]E2Point, error) {
	guestCounts := []int{1, 2, 4, 8, 16, 32}
	perGuest := cfg.reps(500, 10)
	if cfg.Quick {
		guestCounts = []int{1, 2, 4}
	}
	out := make(map[xvtpm.Mode][]E2Point)
	for _, mode := range Modes {
		for _, n := range guestCounts {
			h, err := newHost(cfg, mode, func(hc *xvtpm.HostConfig) {
				hc.Dom0Pages = 16384 // room for many instance mirrors
			})
			if err != nil {
				return nil, err
			}
			runners := make([]*workload.Runner, n)
			for i := 0; i < n; i++ {
				_, r, err := newGuestRunner(h, i, cfg.bits())
				if err != nil {
					return nil, fmt.Errorf("E2 guest %d/%d on %s: %w", i, n, mode, err)
				}
				runners[i] = r
			}
			errCh := make(chan error, n)
			start := time.Now()
			for i, r := range runners {
				go func(i int, r *workload.Runner) {
					stream := workload.NewStream(workload.CheapMix, int64(i))
					for j := 0; j < perGuest; j++ {
						if err := r.Step(stream.Next()); err != nil {
							errCh <- err
							return
						}
					}
					errCh <- nil
				}(i, r)
			}
			for i := 0; i < n; i++ {
				if err := <-errCh; err != nil {
					return nil, fmt.Errorf("E2 run on %s: %w", mode, err)
				}
			}
			elapsed := time.Since(start)
			total := float64(n * perGuest)
			out[mode] = append(out[mode], E2Point{
				Guests:     n,
				Throughput: total / elapsed.Seconds(),
			})
			h.Close()
		}
	}
	if cfg.Out != nil {
		var series []metrics.Series
		for _, mode := range Modes {
			s := metrics.Series{Name: mode.String()}
			for _, p := range out[mode] {
				s.Points = append(s.Points, metrics.Point{X: float64(p.Guests), Y: p.Throughput})
			}
			series = append(series, s)
		}
		metrics.PrintSeries(cfg.Out, "E2 / Figure 1 — aggregate vTPM throughput vs concurrent guests",
			"guests", "commands/s", series)
	}
	return out, nil
}

// E3Point is one point of the instance-creation figure.
type E3Point struct {
	Existing int
	Latency  time.Duration
}

// E3InstanceCreation measures vTPM instance creation latency as a function
// of how many instances already exist, with and without the EK pool
// optimization. Reconstructed Figure 2 (plus the pool ablation).
func E3InstanceCreation(cfg Config) (map[string][]E3Point, error) {
	existing := []int{0, 16, 32, 64}
	if cfg.Quick {
		existing = []int{0, 4}
	}
	variants := map[string]int{"no-pool": 0, "ek-pool": 8}
	out := make(map[string][]E3Point)
	for name, pool := range variants {
		h, err := newHost(cfg, xvtpm.ModeImproved, func(hc *xvtpm.HostConfig) {
			hc.EKPoolSize = pool
			hc.Dom0Pages = 32768
		})
		if err != nil {
			return nil, err
		}
		if pool > 0 {
			// Let the background generator fill the pool.
			time.Sleep(cfg.durOrQuick(300*time.Millisecond, 50*time.Millisecond))
		}
		created := 0
		for _, target := range existing {
			for created < target {
				if _, err := h.Manager.CreateInstance(); err != nil {
					return nil, err
				}
				created++
			}
			rec := metrics.NewRecorder()
			samples := cfg.reps(5, 2)
			for i := 0; i < samples; i++ {
				start := time.Now()
				if _, err := h.Manager.CreateInstance(); err != nil {
					return nil, err
				}
				rec.Add(time.Since(start))
				created++
			}
			out[name] = append(out[name], E3Point{Existing: target, Latency: rec.Percentile(50)})
		}
		h.Close()
	}
	if cfg.Out != nil {
		var series []metrics.Series
		for _, name := range []string{"no-pool", "ek-pool"} {
			s := metrics.Series{Name: name}
			for _, p := range out[name] {
				s.Points = append(s.Points, metrics.Point{X: float64(p.Existing), Y: float64(p.Latency.Microseconds())})
			}
			series = append(series, s)
		}
		metrics.PrintSeries(cfg.Out, "E3 / Figure 2 — vTPM instance creation latency vs existing instances",
			"existing instances", "create latency (µs)", series)
	}
	return out, nil
}

// durOrQuick selects a duration by mode.
func (c Config) durOrQuick(full, quick time.Duration) time.Duration {
	if c.Quick {
		return quick
	}
	return full
}

// sealWorkloadSecret is used by E7's detector.
const sealWorkloadSecret = "workload reference secret"
