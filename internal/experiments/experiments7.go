package experiments

import (
	"fmt"
	"time"

	"xvtpm"
	"xvtpm/internal/attack"
	"xvtpm/internal/metrics"
	"xvtpm/internal/vtpm"
)

// E12Row is one row of the checkpoint-policy throughput table.
type E12Row struct {
	Policy      vtpm.CheckpointPolicy
	Throughput  float64 // mutating commands/second, aggregate
	Checkpoints uint64  // store writes during the stream (plus the final flush)
	Coalesce    float64 // mutations persisted per checkpoint
	Bytes       uint64  // protected envelope bytes handed to the store
	LeakedBlobs int     // stored blobs carrying plaintext state magic
}

// E12CheckpointPolicy measures mutation-heavy dispatch throughput under the
// three checkpoint policies. Every guest drives a pure Extend stream — the
// worst case for eager persistence, which reseals and rewrites the full
// state envelope inside the dispatch path on each command. Write-behind
// should recover most of the gap to deferred (the durability floor) while
// keeping the store at most MaxDirtyCommands mutations behind the engine;
// the coalesce ratio and bytes-written columns show where the win comes
// from. All runs use the improved guard, and after the final flush the
// store is scanned for plaintext state magic — the policy change must not
// reopen the state-theft channel E4 closes.
func E12CheckpointPolicy(cfg Config) ([]E12Row, error) {
	policies := []vtpm.CheckpointPolicy{
		vtpm.CheckpointEager,
		vtpm.CheckpointWriteback,
		vtpm.CheckpointDeferred,
	}
	const guests = 4
	perGuest := cfg.reps(1500, 30)
	var rows []E12Row
	for _, pol := range policies {
		h, err := newHost(cfg, xvtpm.ModeImproved, func(hc *xvtpm.HostConfig) {
			hc.Checkpoint = pol
		})
		if err != nil {
			return nil, err
		}
		gs := make([]*xvtpm.Guest, guests)
		for i := range gs {
			g, err := h.CreateGuest(xvtpm.GuestConfig{
				Name:   fmt.Sprintf("cp-%d", i),
				Kernel: []byte(fmt.Sprintf("cp-kernel-%d", i)),
			})
			if err != nil {
				return nil, fmt.Errorf("E12 guest %d under %s: %w", i, pol, err)
			}
			gs[i] = g
		}
		// Exclude instance creation (and its forced initial checkpoint) from
		// the stream's checkpoint counters.
		base := h.Manager.CheckpointStats()
		errCh := make(chan error, guests)
		start := time.Now()
		for i, g := range gs {
			go func(i int, g *xvtpm.Guest) {
				var m [20]byte
				m[0] = byte(i)
				for j := 0; j < perGuest; j++ {
					m[1], m[2] = byte(j), byte(j>>8)
					if _, err := g.TPM.Extend(uint32(8+i%4), m); err != nil {
						errCh <- err
						return
					}
				}
				errCh <- nil
			}(i, g)
		}
		for i := 0; i < guests; i++ {
			if err := <-errCh; err != nil {
				return nil, fmt.Errorf("E12 stream under %s: %w", pol, err)
			}
		}
		elapsed := time.Since(start)
		// Flush barrier: deferred has persisted nothing yet, writeback may
		// still hold a dirty tail. After this the store holds every
		// instance's latest state under all three policies, which is also
		// what the leak scan must inspect.
		if err := h.Manager.CheckpointAll(); err != nil {
			return nil, fmt.Errorf("E12 final flush under %s: %w", pol, err)
		}
		stats := h.Manager.CheckpointStats()
		delta := vtpm.CheckpointStats{
			Mutations:    stats.Mutations - base.Mutations,
			Checkpoints:  stats.Checkpoints - base.Checkpoints,
			Coalesced:    stats.Coalesced - base.Coalesced,
			BytesWritten: stats.BytesWritten - base.BytesWritten,
		}
		hits, err := attack.ScanStore(h.Store, []attack.Probe{attack.StateMagicProbe})
		if err != nil {
			return nil, fmt.Errorf("E12 store scan under %s: %w", pol, err)
		}
		rows = append(rows, E12Row{
			Policy:      pol,
			Throughput:  float64(guests*perGuest) / elapsed.Seconds(),
			Checkpoints: delta.Checkpoints,
			Coalesce:    delta.CoalesceRatio(),
			Bytes:       delta.BytesWritten,
			LeakedBlobs: len(hits),
		})
		h.Close()
	}
	if cfg.Out != nil {
		tbl := make([][]string, 0, len(rows))
		for _, r := range rows {
			tbl = append(tbl, []string{
				r.Policy.String(),
				fmt.Sprintf("%.0f", r.Throughput),
				fmt.Sprintf("%d", r.Checkpoints),
				fmt.Sprintf("%.1f", r.Coalesce),
				fmt.Sprintf("%d", r.Bytes),
				fmt.Sprintf("%d", r.LeakedBlobs),
			})
		}
		metrics.Table(cfg.Out,
			"E12 — mutation-heavy throughput by checkpoint policy (Extend stream, improved guard)",
			[]string{"policy", "commands/s", "checkpoints", "coalesce", "bytes-written", "plaintext-leaks"}, tbl)
	}
	return rows, nil
}
