package experiments

import (
	"bytes"
	"strings"
	"testing"

	"xvtpm/internal/vtpm"
)

func TestE12AllPoliciesMeasuredAndLeakFree(t *testing.T) {
	var buf bytes.Buffer
	rows, err := E12CheckpointPolicy(quickCfg(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("want 3 policy rows, got %d", len(rows))
	}
	seen := make(map[vtpm.CheckpointPolicy]bool)
	for _, r := range rows {
		seen[r.Policy] = true
		if r.Throughput <= 0 {
			t.Fatalf("%s: non-positive throughput", r.Policy)
		}
		if r.Checkpoints == 0 || r.Bytes == 0 {
			// Every run ends with a forced CheckpointAll, so even deferred
			// must have written protected state.
			t.Fatalf("%s: no checkpoints recorded (ckpts=%d bytes=%d)", r.Policy, r.Checkpoints, r.Bytes)
		}
		if r.LeakedBlobs != 0 {
			t.Fatalf("%s: %d stored blobs carry plaintext state magic", r.Policy, r.LeakedBlobs)
		}
	}
	for _, pol := range []vtpm.CheckpointPolicy{vtpm.CheckpointEager, vtpm.CheckpointWriteback, vtpm.CheckpointDeferred} {
		if !seen[pol] {
			t.Fatalf("policy %s missing from rows", pol)
		}
	}
	if !strings.Contains(buf.String(), "E12") {
		t.Fatal("table not rendered")
	}
}
