package experiments

import (
	"bytes"
	"strings"
	"testing"

	"xvtpm/internal/vtpm"
)

func TestE13(t *testing.T) {
	var buf bytes.Buffer
	rows, err := E13FaultStorm(quickCfg(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("E13 rows = %d, want 3", len(rows))
	}
	seen := map[vtpm.CheckpointPolicy]bool{}
	for _, r := range rows {
		seen[r.Policy] = true
		if r.Commands == 0 {
			t.Fatalf("%s: no commands dispatched", r.Policy)
		}
		if r.Lost != 0 {
			t.Fatalf("%s: %d guests lost committed state (seed %d)", r.Policy, r.Lost, E13Seed)
		}
		// The outage phase must drive observable health transitions, and
		// supervised recovery must heal at least one fenced instance.
		if r.Degraded == 0 && r.Quarantined == 0 {
			t.Fatalf("%s: outage produced no health transitions", r.Policy)
		}
		if r.Recovered == 0 {
			t.Fatalf("%s: supervised recovery never engaged", r.Policy)
		}
	}
	for _, pol := range []vtpm.CheckpointPolicy{
		vtpm.CheckpointEager, vtpm.CheckpointWriteback, vtpm.CheckpointDeferred,
	} {
		if !seen[pol] {
			t.Fatalf("missing row for policy %s", pol)
		}
	}
	// Across the whole storm at least one fault must have landed somewhere;
	// otherwise the experiment exercised nothing.
	var injected uint64
	for _, r := range rows {
		injected += r.Injected
	}
	if injected == 0 {
		t.Fatal("injector delivered zero faults across all policies")
	}
	out := buf.String()
	if !strings.Contains(out, "E13") || !strings.Contains(out, "lost") {
		t.Fatalf("table not rendered:\n%s", out)
	}
}
