package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestE18FederationShape(t *testing.T) {
	var buf bytes.Buffer
	rep, err := E18Federation(quickCfg(&buf))
	if err != nil {
		t.Fatalf("E18: %v", err)
	}
	if rep.DrainMoved != rep.Guests || rep.DrainFailed != 0 {
		t.Fatalf("drain moved %d / failed %d, want all %d moved", rep.DrainMoved, rep.DrainFailed, rep.Guests)
	}
	if rep.DrainRate <= 0 {
		t.Fatalf("drain rate not reported: %.0f", rep.DrainRate)
	}
	wholeDrain := time.Duration(rep.DrainSecs * float64(time.Second))
	if rep.BlackoutP99 <= 0 || rep.BlackoutP99 >= wholeDrain {
		t.Fatalf("blackout p99 %v outside (0, whole-drain %v) — the pause must be per instance", rep.BlackoutP99, wholeDrain)
	}
	if rep.SessionExtends == 0 {
		t.Fatal("sessions recorded no extends — the drain was not under live load")
	}
	if rep.ChainFailures != 0 {
		t.Fatalf("%d session chains broke", rep.ChainFailures)
	}
	if rep.EvacRevived != rep.EvacRequested || rep.EvacRequested == 0 {
		t.Fatalf("evacuation revived %d of %d", rep.EvacRevived, rep.EvacRequested)
	}
	if rep.DigestMismatches != 0 {
		t.Fatalf("%d committed digests lost in evacuation", rep.DigestMismatches)
	}
	if rep.ZombieFenceRejects == 0 {
		t.Fatal("zombie dispatches were not fence-rejected")
	}
	if rep.StormStarted == 0 || rep.StormStarted != rep.StormCommitted+rep.StormAborted {
		t.Fatalf("storm accounting: %d started, %d committed, %d aborted",
			rep.StormStarted, rep.StormCommitted, rep.StormAborted)
	}
	if rep.OwnershipViolations != 0 {
		t.Fatalf("%d ownership violations after the storm", rep.OwnershipViolations)
	}
	out := buf.String()
	for _, want := range []string{"E18", "drain h0", "blackout", "evacuate dead h1", "zombie", "fault storm", "ownership audit"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}
