package experiments

import (
	"fmt"
	"net"
	"time"

	"xvtpm"
	"xvtpm/internal/attack"
	"xvtpm/internal/core"
	"xvtpm/internal/metrics"
	"xvtpm/internal/tpm"
	"xvtpm/internal/vtpm"
	"xvtpm/internal/workload"
	"xvtpm/internal/xen"
)

// E4AttackMatrix runs the six attack scenarios against both guards.
// Reconstructed Table 2.
func E4AttackMatrix(cfg Config) (map[xvtpm.Mode][]attack.Result, error) {
	out := make(map[xvtpm.Mode][]attack.Result)
	for _, mode := range Modes {
		mode := mode
		factory := func() (*xvtpm.Host, *xvtpm.Guest, *xvtpm.Host, error) {
			h, err := newHost(cfg, mode)
			if err != nil {
				return nil, nil, nil, err
			}
			g, err := h.CreateGuest(xvtpm.GuestConfig{Name: "victim", Kernel: []byte("victim-kernel")})
			if err != nil {
				return nil, nil, nil, err
			}
			peer, err := newHost(cfg, mode)
			if err != nil {
				return nil, nil, nil, err
			}
			return h, g, peer, nil
		}
		results, err := attack.RunMatrix(factory)
		if err != nil {
			return nil, fmt.Errorf("E4 on %s: %w", mode, err)
		}
		out[mode] = results
	}
	if cfg.Out != nil {
		rows := make([][]string, 0, len(attack.Kinds))
		byKind := func(rs []attack.Result, k attack.Kind) attack.Result {
			for _, r := range rs {
				if r.Kind == k {
					return r
				}
			}
			return attack.Result{}
		}
		outcome := func(r attack.Result) string {
			if r.Succeeded {
				return "SUCCEEDED"
			}
			return "blocked"
		}
		for _, k := range attack.Kinds {
			rows = append(rows, []string{
				string(k),
				outcome(byKind(out[xvtpm.ModeBaseline], k)),
				outcome(byKind(out[xvtpm.ModeImproved], k)),
			})
		}
		metrics.Table(cfg.Out, "E4 / Table 2 — attack resistance (attacker outcome)",
			[]string{"attack", "baseline", "improved"}, rows)
	}
	return out, nil
}

// E5Point is one point of the policy-cost figure.
type E5Point struct {
	Rules   int
	Latency time.Duration
}

// E5PolicyCost measures access-control decision latency as the rule count
// grows, with and without the decision cache. Reconstructed Figure 3 (and
// the cache ablation DESIGN.md calls out). Pure policy-engine microbench:
// no host needed.
func E5PolicyCost(cfg Config) (map[string][]E5Point, error) {
	ruleCounts := []int{1, 16, 64, 256, 1024, 4096}
	if cfg.Quick {
		ruleCounts = []int{1, 16, 64}
	}
	evals := cfg.reps(20000, 500)
	out := make(map[string][]E5Point)
	for _, variant := range []string{"uncached", "cached"} {
		for _, n := range ruleCounts {
			// Build n-1 non-matching rules and one matching rule at the end
			// (worst-case scan depth).
			rules := make([]core.Rule, 0, n)
			for i := 0; i < n-1; i++ {
				rules = append(rules, core.Rule{
					Identity: xen.MeasureLaunch([]byte{byte(i), byte(i >> 8)}, nil, "other"),
					Instance: vtpm.InstanceID(i + 100),
					Group:    core.GroupNV,
					Effect:   core.Allow,
				})
			}
			subject := xen.MeasureLaunch([]byte("subject"), nil, "")
			rules = append(rules, core.Rule{Identity: subject, Instance: 1, Group: core.GroupPCR, Effect: core.Allow})
			p := core.NewPolicy(rules...)
			p.SetCache(variant == "cached")
			// Warm the cache with the single hot key.
			p.Evaluate(tpm.Profile12, subject, 1, tpm.OrdExtend)
			start := time.Now()
			for i := 0; i < evals; i++ {
				if p.Evaluate(tpm.Profile12, subject, 1, tpm.OrdExtend) != core.Allow {
					return nil, fmt.Errorf("E5: unexpected deny at %d rules", n)
				}
			}
			per := time.Since(start) / time.Duration(evals)
			out[variant] = append(out[variant], E5Point{Rules: n, Latency: per})
		}
	}
	if cfg.Out != nil {
		var series []metrics.Series
		for _, variant := range []string{"uncached", "cached"} {
			s := metrics.Series{Name: variant}
			for _, p := range out[variant] {
				s.Points = append(s.Points, metrics.Point{X: float64(p.Rules), Y: float64(p.Latency.Nanoseconds())})
			}
			series = append(series, s)
		}
		metrics.PrintSeries(cfg.Out, "E5 / Figure 3 — access-control decision latency vs policy size",
			"rules", "latency (ns)", series)
	}
	return out, nil
}

// E6Phases is the migration time breakdown for one mode.
type E6Phases struct {
	Mode      xvtpm.Mode
	Suspend   time.Duration // detach + unbind + domain save
	Transfer  time.Duration // export + wire + import (includes guard crypto)
	Resume    time.Duration // domain restore + rebind + reconnect
	Total     time.Duration
	WireBytes int
}

// countConn counts bytes crossing a connection.
type countConn struct {
	inner net.Conn
	n     *int
}

func (c countConn) Read(p []byte) (int, error) {
	n, err := c.inner.Read(p)
	*c.n += n
	return n, err
}

func (c countConn) Write(p []byte) (int, error) {
	n, err := c.inner.Write(p)
	*c.n += n
	return n, err
}

// E6Migration measures the vTPM migration time breakdown for both guards,
// reporting the median over several migrations. Reconstructed Table 3. The
// phases are timed on the source side; Transfer spans first wire byte to
// acknowledgement, so it contains the destination's import work — the same
// accounting a wall-clock measurement on the source host gives.
func E6Migration(cfg Config) ([]E6Phases, error) {
	samples := cfg.reps(7, 1)
	var out []E6Phases
	for _, mode := range Modes {
		var runs []E6Phases
		for s := 0; s < samples; s++ {
			src, err := newHost(cfg, mode)
			if err != nil {
				return nil, err
			}
			dst, err := newHost(cfg, mode)
			if err != nil {
				return nil, err
			}
			g, err := src.CreateGuest(xvtpm.GuestConfig{Name: "traveler", Kernel: []byte("traveler-kernel")})
			if err != nil {
				return nil, err
			}
			// Populate state so there is something to move.
			runner, err := workload.Prepare(g.TPM, 7, cfg.bits())
			if err != nil {
				return nil, err
			}
			for i := 0; i < cfg.reps(20, 3); i++ {
				if err := runner.Step(workload.OpExtend); err != nil {
					return nil, err
				}
			}

			var phases E6Phases
			phases.Mode = mode
			totalStart := time.Now()

			start := time.Now()
			g.Frontend.Close()
			if err := src.Backend.DetachDevice(g.Dom.ID()); err != nil {
				return nil, err
			}
			if err := src.Manager.UnbindInstance(g.Instance); err != nil {
				return nil, err
			}
			domImg, err := src.HV.SaveDomain(xen.Dom0, g.Dom.ID())
			if err != nil {
				return nil, err
			}
			phases.Suspend = time.Since(start)

			c1, c2 := net.Pipe()
			wire := 0
			type recvRes struct {
				inst vtpm.InstanceID
				img  *xen.DomainImage
				err  error
			}
			done := make(chan recvRes, 1)
			go func() {
				img, inst, err := vtpm.ReceiveMigration(c2, dst.Manager, dst.Guard().MigrationIdentity())
				done <- recvRes{inst, img, err}
			}()
			start = time.Now()
			if err := vtpm.SendMigration(countConn{inner: c1, n: &wire}, src.Manager, domImg, g.Instance); err != nil {
				return nil, fmt.Errorf("E6 send on %s: %w", mode, err)
			}
			r := <-done
			if r.err != nil {
				return nil, fmt.Errorf("E6 receive on %s: %w", mode, r.err)
			}
			phases.Transfer = time.Since(start)
			phases.WireBytes = wire
			c1.Close()
			c2.Close()

			start = time.Now()
			dom, err := dst.HV.RestoreDomain(xen.Dom0, r.img)
			if err != nil {
				return nil, err
			}
			if err := dst.Manager.BindInstance(r.inst, dom); err != nil {
				return nil, err
			}
			phases.Resume = time.Since(start)
			phases.Total = time.Since(totalStart)
			runs = append(runs, phases)

			src.Manager.DestroyInstance(g.Instance)
			src.Close()
			dst.Close()
		}
		out = append(out, medianPhases(mode, runs))
	}
	if cfg.Out != nil {
		rows := make([][]string, 0, len(out))
		for _, p := range out {
			rows = append(rows, []string{
				p.Mode.String(),
				metrics.Micros(p.Suspend),
				metrics.Micros(p.Transfer),
				metrics.Micros(p.Resume),
				metrics.Micros(p.Total),
				fmt.Sprintf("%d", p.WireBytes),
			})
		}
		metrics.Table(cfg.Out, "E6 / Table 3 — vTPM migration breakdown (µs)",
			[]string{"guard", "suspend", "transfer", "resume", "total", "wire-bytes"}, rows)
	}
	return out, nil
}
