package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"xvtpm"
)

// quickCfg keeps experiment runs small enough for the test suite while
// still validating the *shape* claims DESIGN.md makes for each table and
// figure.
func quickCfg(buf *bytes.Buffer) Config {
	return Config{RSABits: 512, Quick: true, Out: buf}
}

func TestE1ShapeAndRendering(t *testing.T) {
	var buf bytes.Buffer
	rows, err := E1PerCommand(quickCfg(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range rows {
		if r.Baseline <= 0 || r.Improved <= 0 {
			t.Fatalf("non-positive latency in %+v", r)
		}
	}
	if !strings.Contains(buf.String(), "Table 1") {
		t.Fatal("table not rendered")
	}
}

func TestE2ShapeMonotonicLoad(t *testing.T) {
	var buf bytes.Buffer
	points, err := E2Scalability(quickCfg(&buf))
	if err != nil {
		t.Fatal(err)
	}
	for mode, ps := range points {
		if len(ps) == 0 {
			t.Fatalf("no points for %v", mode)
		}
		for _, p := range ps {
			if p.Throughput <= 0 {
				t.Fatalf("%v: non-positive throughput at %d guests", mode, p.Guests)
			}
		}
	}
	if !strings.Contains(buf.String(), "Figure 1") {
		t.Fatal("series not rendered")
	}
}

func TestE3BothVariantsMeasured(t *testing.T) {
	var buf bytes.Buffer
	points, err := E3InstanceCreation(quickCfg(&buf))
	if err != nil {
		t.Fatal(err)
	}
	for _, variant := range []string{"no-pool", "ek-pool"} {
		if len(points[variant]) == 0 {
			t.Fatalf("variant %s not measured", variant)
		}
	}
}

func TestE4MatrixShape(t *testing.T) {
	var buf bytes.Buffer
	results, err := E4AttackMatrix(quickCfg(&buf))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results[xvtpm.ModeBaseline] {
		if !r.Succeeded {
			t.Errorf("baseline should lose %s: %s", r.Kind, r.Detail)
		}
	}
	for _, r := range results[xvtpm.ModeImproved] {
		if r.Succeeded {
			t.Errorf("improved should block %s: %s", r.Kind, r.Detail)
		}
	}
	if !strings.Contains(buf.String(), "Table 2") {
		t.Fatal("matrix not rendered")
	}
}

func TestE5CacheFlattensCost(t *testing.T) {
	var buf bytes.Buffer
	points, err := E5PolicyCost(quickCfg(&buf))
	if err != nil {
		t.Fatal(err)
	}
	cached := points["cached"]
	uncached := points["uncached"]
	if len(cached) == 0 || len(uncached) == 0 {
		t.Fatal("missing variants")
	}
	// Shape: at the largest rule count, the cached decision is cheaper
	// than the uncached one.
	lastC := cached[len(cached)-1]
	lastU := uncached[len(uncached)-1]
	if lastC.Latency >= lastU.Latency {
		t.Errorf("cache not cheaper at %d rules: cached %v, uncached %v",
			lastU.Rules, lastC.Latency, lastU.Latency)
	}
}

func TestE6BothModesMigrate(t *testing.T) {
	var buf bytes.Buffer
	phases, err := E6Migration(quickCfg(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(phases) != 2 {
		t.Fatalf("phases for %d modes", len(phases))
	}
	for _, p := range phases {
		if p.Total <= 0 || p.WireBytes <= 0 {
			t.Fatalf("degenerate measurement: %+v", p)
		}
		if p.Suspend+p.Transfer+p.Resume > 2*p.Total {
			t.Fatalf("phase accounting inconsistent: %+v", p)
		}
	}
}

func TestE7ImprovedReducesExposure(t *testing.T) {
	var buf bytes.Buffer
	points, err := E7ExposureWindow(quickCfg(&buf))
	if err != nil {
		t.Fatal(err)
	}
	base := points[xvtpm.ModeBaseline]
	impr := points[xvtpm.ModeImproved]
	if len(base) == 0 || len(impr) == 0 {
		t.Fatal("missing modes")
	}
	// Shape: the baseline's plaintext mirror makes exposure ~constant and
	// high; the improved guard's exposure must be strictly lower.
	if base[0].ExposedFraction < 0.5 {
		t.Errorf("baseline exposure %.2f, expected high (plaintext mirror always resident)",
			base[0].ExposedFraction)
	}
	if impr[0].ExposedFraction >= base[0].ExposedFraction {
		t.Errorf("improved exposure %.2f not below baseline %.2f",
			impr[0].ExposedFraction, base[0].ExposedFraction)
	}
}

func TestE9FloodLimitCutsFlooder(t *testing.T) {
	var buf bytes.Buffer
	rows, err := E9FloodControl(quickCfg(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	byName := map[string]E9Row{}
	for _, r := range rows {
		byName[r.Scenario] = r
		if r.VictimThroughput <= 0 {
			t.Fatalf("degenerate victim throughput in %s", r.Scenario)
		}
	}
	// The robust shape claim (even in short quick-mode windows): the rate
	// limit cuts the flooder's admitted volume hard.
	unl := byName["flood-unlimited"].FlooderAdmitted
	lim := byName["flood-limited"].FlooderAdmitted
	// The limiter (2000/s + 200 burst over a ~300 ms quick window) can only
	// bind when the unlimited flooder actually got scheduled well past that
	// budget; under heavy instrumentation (-race) it sometimes does not.
	if unl < 1200 {
		t.Skipf("flooder admitted only %d in this window; no binding signal", unl)
	}
	if lim >= unl {
		t.Fatalf("limit did not reduce flooder volume: %d vs %d", lim, unl)
	}
}

func TestE10RecoveryRevivesEverything(t *testing.T) {
	// The shape assertion compares two sub-millisecond measurements, so a
	// single descheduling (common under -race on loaded machines) can blow
	// the band; retry the whole experiment before declaring a failure.
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		var buf bytes.Buffer
		rows, err := E10Recovery(quickCfg(&buf))
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) == 0 {
			t.Fatal("no rows")
		}
		if !strings.Contains(buf.String(), "E10") {
			t.Fatal("table not rendered")
		}
		lastErr = nil
		for _, r := range rows {
			if r.Baseline <= 0 || r.Improved <= 0 {
				t.Fatalf("degenerate recovery time: %+v", r)
			}
			// Shape: the envelope work is tiny against the per-instance RSA
			// validation, so improved recovery stays within 3× of baseline
			// even under scheduler noise.
			if r.Improved > 3*r.Baseline {
				lastErr = fmt.Errorf("improved recovery %v vs baseline %v at %d instances",
					r.Improved, r.Baseline, r.Instances)
				break
			}
		}
		if lastErr == nil {
			return
		}
	}
	t.Fatal(lastErr)
}

func TestE8EnvelopeOverheadSmallAndConstant(t *testing.T) {
	var buf bytes.Buffer
	rows, err := E8StorageOverhead(quickCfg(&buf))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.PlainBytes <= 0 || r.EnvelopeBytes <= r.PlainBytes {
			t.Fatalf("envelope must add bounded overhead: %+v", r)
		}
		if r.EnvelopeBytes-r.PlainBytes > 256 {
			t.Fatalf("envelope overhead too large: %+v", r)
		}
	}
	// More NV areas → bigger blobs.
	if rows[len(rows)-1].PlainBytes <= rows[0].PlainBytes {
		t.Fatal("NV growth not reflected in blob size")
	}
}
