package experiments

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"xvtpm"
	"xvtpm/internal/loadgen"
	"xvtpm/internal/metrics"
	"xvtpm/internal/tpm"
	"xvtpm/internal/workload"
)

// E19 — open-loop capacity: offered-load rate sweep over a simulated
// large-guest fleet multiplexed onto a pool of manager load sessions.
// Closed-loop experiments (E2/E11/E15/E18) measure what the system *can*
// do; E19 measures how it degrades when traffic does not politely wait:
// goodput vs offered load, coordinated-omission-safe p99/p999 through
// saturation, per-command SLO attainment, and the knee — plus a busy-share
// attribution naming the op that owns the bottleneck (expected: the
// RSA-backed Quote, the follow-up ROADMAP item).

// E19Report is the rendered result set.
type E19Report struct {
	Guests   int
	Slots    int
	Capacity float64 // closed-loop calibration estimate, commands/sec

	Points    []loadgen.SweepPoint
	Knee      float64
	KneeFound bool

	// Saturated is the full report at the top of the rate ladder: its
	// PerOp table is the SLO-attainment exhibit.
	Saturated *loadgen.Report

	// Bottleneck attribution at saturation: per-op busy share =
	// completions × measured service time, normalized.
	Bottleneck      workload.Op
	BottleneckShare float64
	ServiceEst      map[workload.Op]time.Duration
}

// e19Slots builds the execution lanes: dedicated load slots on an
// improved-mode host, three 1.2 lanes to one 2.0 lane, each with a
// prepared workload runner (1.2) or a direct 2.0 stepper.
func e19Slots(h *xvtpm.Host, n int, bits int) ([]loadgen.Slot, []*xvtpm.LoadSlot, error) {
	var slots []loadgen.Slot
	var raw []*xvtpm.LoadSlot
	for i := 0; i < n; i++ {
		profile := tpm.Profile12
		if i%4 == 3 {
			profile = tpm.Profile20
		}
		ls, err := h.OpenLoadSlot(fmt.Sprintf("e19-slot-%d", i), profile)
		if err != nil {
			return nil, raw, err
		}
		raw = append(raw, ls)
		if profile == tpm.Profile20 {
			cli := ls.TPM2
			var ctr uint32
			nonce := []byte("e19-qualifying-data")
			pcrs := []int{0, 1, 10}
			event := []byte("e19-event")
			step := func(op workload.Op) error {
				switch op {
				case workload.OpExtend:
					c := atomic.AddUint32(&ctr, 1)
					return cli.Extend(int(10+c%6), event)
				case workload.OpQuote:
					_, _, err := cli.Quote(nonce, pcrs)
					return err
				default:
					_, err := cli.GetRandom(32)
					return err
				}
			}
			slots = append(slots, loadgen.Slot{Step: step, Mix: loadgen.Mix20})
		} else {
			runner, err := workload.Prepare(ls.TPM, i, bits)
			if err != nil {
				return nil, raw, err
			}
			slots = append(slots, loadgen.Slot{Step: runner.Step, Mix: loadgen.Mix12})
		}
	}
	return slots, raw, nil
}

// calibrate estimates aggregate closed-loop capacity: every slot steps its
// mix back-to-back for the window; capacity = total completions / window.
func calibrate(slots []loadgen.Slot, window time.Duration, seed int64) (float64, error) {
	var wg sync.WaitGroup
	var total, firstErr atomic.Int64
	errs := make([]error, len(slots))
	deadline := time.Now().Add(window)
	for i, slot := range slots {
		wg.Add(1)
		go func(i int, slot loadgen.Slot) {
			defer wg.Done()
			stream := workload.NewStream(slot.Mix, seed+int64(i))
			for time.Now().Before(deadline) {
				if err := slot.Step(stream.Next()); err != nil {
					errs[i] = err
					firstErr.Store(int64(i) + 1)
					return
				}
				total.Add(1)
			}
		}(i, slot)
	}
	wg.Wait()
	if at := firstErr.Load(); at != 0 {
		return 0, fmt.Errorf("calibration slot %d: %w", at-1, errs[at-1])
	}
	return float64(total.Load()) / window.Seconds(), nil
}

// probeService measures per-op mean service time on one representative 1.2
// slot (closed loop, small rep count) for the busy-share attribution.
func probeService(step loadgen.Stepper, reps int) (map[workload.Op]time.Duration, error) {
	est := make(map[workload.Op]time.Duration, 4)
	for _, op := range []workload.Op{workload.OpGetRandom, workload.OpExtend, workload.OpSeal, workload.OpQuote} {
		rec := metrics.NewRecorder()
		for i := 0; i < reps; i++ {
			start := time.Now()
			if err := step(op); err != nil {
				return nil, fmt.Errorf("service probe %v: %w", op, err)
			}
			rec.Add(time.Since(start))
		}
		est[op] = rec.Mean()
	}
	return est, nil
}

// E19RateSweep runs the open-loop capacity sweep on the improved host.
func E19RateSweep(cfg Config) (*E19Report, error) {
	nSlots := cfg.reps(16, 4)
	guests := cfg.reps(100_000, 2_000)
	stepDur := cfg.durOrQuick(1200*time.Millisecond, 200*time.Millisecond)
	calibDur := cfg.durOrQuick(400*time.Millisecond, 120*time.Millisecond)

	h, err := newHost(cfg, xvtpm.ModeImproved, func(hc *xvtpm.HostConfig) {
		hc.Dom0Pages = 1 << 16
	})
	if err != nil {
		return nil, err
	}
	defer h.Close() //nolint:errcheck // teardown

	slots, raw, err := e19Slots(h, nSlots, cfg.bits())
	defer func() {
		for _, ls := range raw {
			h.CloseLoadSlot(ls) //nolint:errcheck // teardown
		}
	}()
	if err != nil {
		return nil, err
	}

	rep := &E19Report{Guests: guests, Slots: nSlots}

	// Closed-loop calibration anchors the ladder so it brackets the knee
	// whatever this machine's speed is.
	if rep.Capacity, err = calibrate(slots, calibDur, 17); err != nil {
		return nil, err
	}
	if rep.ServiceEst, err = probeService(slots[0].Step, cfg.reps(120, 15)); err != nil {
		return nil, err
	}

	var lastRep *loadgen.Report
	for _, mult := range []float64{0.25, 0.5, 0.75, 1.0, 1.15, 1.3} {
		offered := mult * rep.Capacity
		r, err := loadgen.Run(loadgen.Config{
			Guests: guests, Offered: offered, Duration: stepDur,
			Seed: 19, Slots: slots,
		})
		if err != nil {
			return nil, fmt.Errorf("E19 at %.0f cps: %w", offered, err)
		}
		if r.Errors > 0 {
			return nil, fmt.Errorf("E19 at %.0f cps: %d command errors", offered, r.Errors)
		}
		realized := offered
		if r.Horizon > 0 {
			realized = float64(r.Scheduled) / r.Horizon.Seconds()
		}
		rep.Points = append(rep.Points, loadgen.SweepPoint{
			Offered: offered, Realized: realized,
			Throughput: r.Throughput, Goodput: r.Goodput,
			P99: r.P99, P999: r.P999, SLOFrac: r.SLOFraction(),
		})
		lastRep = r
	}
	rep.Saturated = lastRep
	rep.Knee, rep.KneeFound = loadgen.FindKnee(rep.Points)

	// Busy-share attribution at saturation: completions × service time.
	var shares [8]float64
	var sum float64
	for _, st := range lastRep.PerOp {
		svc, ok := rep.ServiceEst[st.Op]
		if !ok {
			continue
		}
		s := float64(st.Count) * svc.Seconds()
		shares[st.Op] = s
		sum += s
	}
	for op, s := range shares {
		if s > shares[rep.Bottleneck] {
			rep.Bottleneck = workload.Op(op)
		}
	}
	if sum > 0 {
		rep.BottleneckShare = shares[rep.Bottleneck] / sum
	}

	renderE19(cfg.Out, rep)
	return rep, nil
}

func renderE19(w io.Writer, rep *E19Report) {
	if w == nil {
		return
	}
	fmt.Fprintf(w, "E19 — open-loop capacity: %d simulated guests on %d load slots (improved mode)\n",
		rep.Guests, rep.Slots)
	fmt.Fprintf(w, "  closed-loop calibration: %.0f commands/sec\n", rep.Capacity)
	rows := make([][]string, 0, len(rep.Points))
	for _, p := range rep.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%.0f", p.Offered),
			fmt.Sprintf("%.0f", p.Throughput),
			fmt.Sprintf("%.0f", p.Goodput),
			fmt.Sprintf("%.1f%%", 100*p.SLOFrac),
			p.P99.String(),
			p.P999.String(),
		})
	}
	metrics.Table(w, "goodput vs offered load (CO-safe latency)",
		[]string{"offered/s", "tput/s", "goodput/s", "in-SLO", "p99", "p999"}, rows)
	if rep.KneeFound {
		fmt.Fprintf(w, "  saturation knee: ~%.0f commands/sec (goodput < 95%% of offered)\n", rep.Knee)
	} else {
		fmt.Fprintf(w, "  saturation knee: not reached inside the ladder\n")
	}
	if rep.Saturated != nil {
		rows = rows[:0]
		for _, st := range rep.Saturated.PerOp {
			rows = append(rows, []string{
				st.Op.String(),
				fmt.Sprintf("%d", st.Count),
				st.SLO.String(),
				fmt.Sprintf("%.1f%%", 100*st.Attained),
				st.P50.String(),
				st.P99.String(),
				st.P999.String(),
			})
		}
		metrics.Table(w, "per-command SLO attainment at saturation",
			[]string{"op", "count", "SLO", "attained", "p50", "p99", "p999"}, rows)
		fmt.Fprintf(w, "  generator lateness p99 at saturation: %v\n", rep.Saturated.LatenessP99)
	}
	fmt.Fprintf(w, "  bottleneck attribution: %v owns %.0f%% of busy time (service est %v)\n",
		rep.Bottleneck, 100*rep.BottleneckShare, rep.ServiceEst[rep.Bottleneck])
}
