package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func gateReport(results ...BenchResult) *BenchReport {
	return &BenchReport{Schema: BenchSchema, Bits: 512, Results: results}
}

// TestCompareBenchRegression is the acceptance criterion for the gate: a
// synthetic 20% ns/op regression against a 15% tolerance must fail, and the
// rendered table must say why.
func TestCompareBenchRegression(t *testing.T) {
	base := gateReport(
		BenchResult{Name: "DispatchGetRandom", NsPerOp: 1000, AllocsPerOp: 3},
		BenchResult{Name: "DispatchExtend", NsPerOp: 2000, AllocsPerOp: 6},
	)
	cur := gateReport(
		BenchResult{Name: "DispatchGetRandom", NsPerOp: 1200, AllocsPerOp: 3}, // +20%
		BenchResult{Name: "DispatchExtend", NsPerOp: 2000, AllocsPerOp: 6},
	)
	deltas, ok := CompareBench(base, cur, DefaultBenchTolerance)
	if ok {
		t.Fatal("20% regression passed a 15% gate")
	}
	if len(deltas) != 2 {
		t.Fatalf("got %d deltas, want 2", len(deltas))
	}
	if !deltas[0].Fail || deltas[1].Fail {
		t.Fatalf("wrong benchmark flagged: %+v", deltas)
	}
	if deltas[0].NsRatio < 0.19 || deltas[0].NsRatio > 0.21 {
		t.Fatalf("NsRatio = %v, want ~0.20", deltas[0].NsRatio)
	}
	var buf bytes.Buffer
	RenderBenchDeltas(&buf, deltas)
	out := buf.String()
	if !strings.Contains(out, "FAIL") || !strings.Contains(out, "ns/op +20.0%") {
		t.Fatalf("rendered table missing failure reason:\n%s", out)
	}
}

func TestCompareBenchPassesWithinTolerance(t *testing.T) {
	base := gateReport(
		BenchResult{Name: "DispatchGetRandom", NsPerOp: 1000, AllocsPerOp: 3},
		BenchResult{Name: "SpanRecord", NsPerOp: 10, AllocsPerOp: 0},
	)
	cur := gateReport(
		BenchResult{Name: "DispatchGetRandom", NsPerOp: 1100, AllocsPerOp: 3}, // +10% < 15%
		BenchResult{Name: "SpanRecord", NsPerOp: 9, AllocsPerOp: 0},
		BenchResult{Name: "NewBenchmark", NsPerOp: 50, AllocsPerOp: 1}, // extra is fine
	)
	deltas, ok := CompareBench(base, cur, DefaultBenchTolerance)
	if !ok {
		t.Fatalf("within-tolerance run failed the gate: %+v", deltas)
	}
	for _, d := range deltas {
		if d.Fail {
			t.Fatalf("unexpected failure: %+v", d)
		}
	}
}

func TestCompareBenchAllocGrowthAndMissing(t *testing.T) {
	base := gateReport(
		BenchResult{Name: "DispatchGetRandom", NsPerOp: 1000, AllocsPerOp: 3},
		BenchResult{Name: "DispatchExtend", NsPerOp: 2000, AllocsPerOp: 6},
	)
	cur := gateReport(
		// Faster but allocating more: still a failure.
		BenchResult{Name: "DispatchGetRandom", NsPerOp: 900, AllocsPerOp: 5},
		// DispatchExtend silently dropped: also a failure.
	)
	deltas, ok := CompareBench(base, cur, DefaultBenchTolerance)
	if ok {
		t.Fatal("alloc growth + missing benchmark passed the gate")
	}
	if !deltas[0].Fail || !strings.Contains(deltas[0].Reason, "allocs/op") {
		t.Fatalf("alloc growth not flagged: %+v", deltas[0])
	}
	if !deltas[1].Fail || !deltas[1].Missing {
		t.Fatalf("missing benchmark not flagged: %+v", deltas[1])
	}
}

// TestCompareBenchPipelineRatioGate covers the throughput rows: wall-clock
// ns/op drift on them is exempt from the absolute tolerance, and the
// synthetic GuestPipelineSpeedup row enforces the depth-8 vs lockstep ratio
// within the current run instead.
func TestCompareBenchPipelineRatioGate(t *testing.T) {
	base := gateReport(
		BenchResult{Name: benchLockstepName, NsPerOp: 90000, AllocsPerOp: 7},
		BenchResult{Name: benchPipelinedName, NsPerOp: 5500, AllocsPerOp: 8},
	)
	// 3x slower wall clock on both rows (scheduler noise), but the ratio
	// between them still clears the floor: the gate must pass.
	cur := gateReport(
		BenchResult{Name: benchLockstepName, NsPerOp: 270000, AllocsPerOp: 7},
		BenchResult{Name: benchPipelinedName, NsPerOp: 16500, AllocsPerOp: 8},
	)
	deltas, ok := CompareBench(base, cur, DefaultBenchTolerance)
	if !ok {
		t.Fatalf("ratio-gated rows failed on absolute ns/op drift: %+v", deltas)
	}
	if len(deltas) != 3 {
		t.Fatalf("got %d deltas, want 2 rows + synthetic speedup: %+v", len(deltas), deltas)
	}
	syn := deltas[2]
	if !syn.Synthetic || syn.Name != pipelineSpeedupGate || syn.Fail {
		t.Fatalf("synthetic speedup row wrong: %+v", syn)
	}
	var buf bytes.Buffer
	RenderBenchDeltas(&buf, deltas)
	if out := buf.String(); !strings.Contains(out, pipelineSpeedupGate) || !strings.Contains(out, ratioGatedNote) {
		t.Fatalf("rendered table missing ratio-gate rows:\n%s", out)
	}

	// Collapse the pipelined advantage below the floor: the synthetic row
	// alone must fail the gate.
	cur = gateReport(
		BenchResult{Name: benchLockstepName, NsPerOp: 90000, AllocsPerOp: 7},
		BenchResult{Name: benchPipelinedName, NsPerOp: 45000, AllocsPerOp: 8}, // only 2x
	)
	deltas, ok = CompareBench(base, cur, DefaultBenchTolerance)
	if ok {
		t.Fatalf("2x speedup passed a 3x floor: %+v", deltas)
	}
	syn = deltas[len(deltas)-1]
	if !syn.Synthetic || !syn.Fail || !strings.Contains(syn.Reason, "lockstep rate") {
		t.Fatalf("speedup failure not on the synthetic row: %+v", deltas)
	}

	// Alloc growth on a ratio-gated row is still an absolute failure.
	cur = gateReport(
		BenchResult{Name: benchLockstepName, NsPerOp: 90000, AllocsPerOp: 7},
		BenchResult{Name: benchPipelinedName, NsPerOp: 5500, AllocsPerOp: 12},
	)
	if deltas, ok = CompareBench(base, cur, DefaultBenchTolerance); ok {
		t.Fatalf("alloc growth on ratio-gated row passed: %+v", deltas)
	}
}

// TestCompareBenchBlackoutCeilingGate covers the blackout row: relative
// ns/op drift is exempt (a p99 over a few dozen moves is max-like noise),
// and the synthetic MigrateBlackoutCeiling row fails only when the current
// run's p99 crosses the absolute ceiling.
func TestCompareBenchBlackoutCeilingGate(t *testing.T) {
	base := gateReport(
		BenchResult{Name: benchBlackoutName, NsPerOp: 1.0e6},
	)
	// 3x the baseline but far under the ceiling: must pass.
	cur := gateReport(
		BenchResult{Name: benchBlackoutName, NsPerOp: 3.0e6},
	)
	deltas, ok := CompareBench(base, cur, DefaultBenchTolerance)
	if !ok {
		t.Fatalf("ceiling-gated row failed on relative drift: %+v", deltas)
	}
	if len(deltas) != 2 {
		t.Fatalf("got %d deltas, want row + synthetic ceiling: %+v", len(deltas), deltas)
	}
	syn := deltas[1]
	if !syn.Synthetic || syn.Name != blackoutCeilingGate || syn.Fail {
		t.Fatalf("synthetic ceiling row wrong: %+v", syn)
	}
	var buf bytes.Buffer
	RenderBenchDeltas(&buf, deltas)
	if out := buf.String(); !strings.Contains(out, blackoutCeilingGate) || !strings.Contains(out, ceilingGatedNote) {
		t.Fatalf("rendered table missing ceiling-gate rows:\n%s", out)
	}

	// Over the ceiling: the synthetic row alone must fail the gate.
	cur = gateReport(
		BenchResult{Name: benchBlackoutName, NsPerOp: float64(blackoutCeiling) * 2},
	)
	deltas, ok = CompareBench(base, cur, DefaultBenchTolerance)
	if ok {
		t.Fatalf("blackout over the ceiling passed: %+v", deltas)
	}
	syn = deltas[len(deltas)-1]
	if !syn.Synthetic || !syn.Fail || !strings.Contains(syn.Reason, "ceiling") {
		t.Fatalf("ceiling failure not on the synthetic row: %+v", deltas)
	}
}

func TestBenchReportRoundTrip(t *testing.T) {
	rep := gateReport(
		BenchResult{Name: "DispatchGetRandom", NsPerOp: 1234.5, AllocsPerOp: 3, P95Ns: 2048},
	)
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ParseBenchReport(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Results) != 1 || got.Results[0] != rep.Results[0] || got.Bits != 512 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if _, err := ParseBenchReport([]byte(`{"schema":"other/v1","results":[]}`)); err == nil {
		t.Fatal("wrong schema accepted")
	}
	if _, err := ParseBenchReport([]byte(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
}

// TestRunBenchSuiteSubset exercises the real suite machinery on the two
// cheapest benchmarks so CI covers the measurement path end to end.
func TestRunBenchSuiteSubset(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmarks under -short")
	}
	rep, err := RunBenchSuite(Config{RSABits: 512, Quick: true}, "HistogramRecord", "SpanRecord")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 2 {
		t.Fatalf("got %d results, want 2: %+v", len(rep.Results), rep.Results)
	}
	for _, r := range rep.Results {
		if r.NsPerOp <= 0 {
			t.Fatalf("%s: non-positive ns/op %v", r.Name, r.NsPerOp)
		}
		if r.AllocsPerOp != 0 {
			t.Fatalf("%s: hot-path instrument allocates (%v allocs/op)", r.Name, r.AllocsPerOp)
		}
	}
	// Self-comparison always passes.
	if _, ok := CompareBench(rep, rep, 0); !ok {
		t.Fatal("report failed the gate against itself")
	}
}

// TestRunBenchSuiteClusterRows exercises the federation gate rows end to
// end: each must produce a positive per-instance figure with no allocs
// accounting (wall-clock rows).
func TestRunBenchSuiteClusterRows(t *testing.T) {
	rep, err := RunBenchSuite(Config{RSABits: 512, Quick: true},
		"DrainThroughput", "MigrateBlackoutP99", "EvacuateDeadHost")
	if err != nil {
		t.Fatalf("RunBenchSuite: %v", err)
	}
	if len(rep.Results) != 3 {
		t.Fatalf("got %d results, want 3: %+v", len(rep.Results), rep.Results)
	}
	for _, r := range rep.Results {
		if r.NsPerOp <= 0 {
			t.Fatalf("%s reported %v ns/op", r.Name, r.NsPerOp)
		}
	}
}
