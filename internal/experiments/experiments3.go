package experiments

import (
	"fmt"
	"sync/atomic"
	"time"

	"xvtpm"
	"xvtpm/internal/attack"
	"xvtpm/internal/metrics"
	"xvtpm/internal/tpm"
	"xvtpm/internal/workload"
	"xvtpm/internal/xen"
)

// E7Point is one point of the exposure-window figure.
type E7Point struct {
	LoadLabel string
	// ExposedFraction is the fraction of dump samples in which plaintext
	// vTPM material was visible in dom0 memory.
	ExposedFraction float64
	Samples         int
}

// E7ExposureWindow runs a guest workload while a dump sampler repeatedly
// images dom0 memory and scans it for plaintext vTPM state. The fraction of
// samples that hit is the secret-exposure window. Reconstructed Figure 4.
func E7ExposureWindow(cfg Config) (map[xvtpm.Mode][]E7Point, error) {
	loads := []struct {
		label string
		gap   time.Duration
	}{
		{"saturated", 0},
		{"medium", 500 * time.Microsecond},
		{"light", 2 * time.Millisecond},
	}
	if cfg.Quick {
		loads = loads[:1]
	}
	samples := cfg.reps(60, 8)
	out := make(map[xvtpm.Mode][]E7Point)
	for _, mode := range Modes {
		for _, load := range loads {
			h, err := newHost(cfg, mode, func(hc *xvtpm.HostConfig) {
				hc.Dom0Pages = 1024 // keep dump snapshots cheap
			})
			if err != nil {
				return nil, err
			}
			_, runner, err := newGuestRunner(h, 1, cfg.bits())
			if err != nil {
				return nil, err
			}
			probes := []attack.Probe{
				attack.StateMagicProbe,
				{Name: "exchange-plaintext", Pattern: []byte(sealWorkloadSecret)},
			}
			var stop atomic.Bool
			workErr := make(chan error, 1)
			go func() {
				stream := workload.NewStream(workload.DefaultMix, 11)
				for !stop.Load() {
					if err := runner.Step(stream.Next()); err != nil {
						workErr <- err
						return
					}
					if load.gap > 0 {
						time.Sleep(load.gap)
					}
				}
				workErr <- nil
			}()
			hits := 0
			for i := 0; i < samples; i++ {
				found, err := attack.DumpAndScan(h.HV, xen.Dom0, probes)
				if err != nil {
					stop.Store(true)
					<-workErr
					return nil, err
				}
				if len(found) > 0 {
					hits++
				}
				time.Sleep(time.Millisecond)
			}
			stop.Store(true)
			if err := <-workErr; err != nil {
				return nil, fmt.Errorf("E7 workload on %s: %w", mode, err)
			}
			out[mode] = append(out[mode], E7Point{
				LoadLabel:       load.label,
				ExposedFraction: float64(hits) / float64(samples),
				Samples:         samples,
			})
			h.Close()
		}
	}
	if cfg.Out != nil {
		var series []metrics.Series
		for _, mode := range Modes {
			s := metrics.Series{Name: mode.String()}
			for i, p := range out[mode] {
				s.Points = append(s.Points, metrics.Point{X: float64(i), Y: p.ExposedFraction * 100})
			}
			series = append(series, s)
		}
		metrics.PrintSeries(cfg.Out,
			"E7 / Figure 4 — plaintext exposure window in dom0 memory (% of dump samples; x: 0=saturated,1=medium,2=light)",
			"load level", "% samples exposed", series)
	}
	return out, nil
}

// E8Row is one row of the storage-overhead table.
type E8Row struct {
	NVAreas       int
	PlainBytes    int
	EnvelopeBytes int
}

// E8StorageOverhead measures vTPM state blob sizes as stored by each guard,
// as the instance accumulates NV areas. Reconstructed Table 4.
func E8StorageOverhead(cfg Config) ([]E8Row, error) {
	nvCounts := []int{0, 2, 4, 8}
	if cfg.Quick {
		nvCounts = []int{0, 2}
	}
	var rows []E8Row
	for _, nv := range nvCounts {
		sizes := make(map[xvtpm.Mode]int)
		for _, mode := range Modes {
			h, err := newHost(cfg, mode)
			if err != nil {
				return nil, err
			}
			g, runner, err := newGuestRunner(h, 1, cfg.bits())
			if err != nil {
				return nil, err
			}
			owner := runner.OwnerAuth()
			for i := 0; i < nv; i++ {
				var areaAuth [tpm.AuthSize]byte
				if err := g.TPM.NVDefineSpace(owner, uint32(0x1000+i), 256, 0, areaAuth); err != nil {
					return nil, fmt.Errorf("E8 define nv %d: %w", i, err)
				}
				if err := g.TPM.NVWrite(uint32(0x1000+i), 0, make([]byte, 256), nil); err != nil {
					return nil, err
				}
			}
			if err := h.Manager.Checkpoint(g.Instance); err != nil {
				return nil, err
			}
			blob, err := h.Store.Get(fmt.Sprintf("vtpm-%08d.state", g.Instance))
			if err != nil {
				return nil, err
			}
			sizes[mode] = len(blob)
			h.Close()
		}
		rows = append(rows, E8Row{
			NVAreas:       nv,
			PlainBytes:    sizes[xvtpm.ModeBaseline],
			EnvelopeBytes: sizes[xvtpm.ModeImproved],
		})
	}
	if cfg.Out != nil {
		tbl := make([][]string, 0, len(rows))
		for _, r := range rows {
			tbl = append(tbl, []string{
				fmt.Sprintf("%d", r.NVAreas),
				fmt.Sprintf("%d", r.PlainBytes),
				fmt.Sprintf("%d", r.EnvelopeBytes),
				fmt.Sprintf("%+d", r.EnvelopeBytes-r.PlainBytes),
			})
		}
		metrics.Table(cfg.Out, "E8 / Table 4 — stored vTPM state size (bytes)",
			[]string{"nv-areas", "baseline(plain)", "improved(envelope)", "delta"}, tbl)
	}
	return rows, nil
}
