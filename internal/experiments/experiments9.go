package experiments

// E16 — per-profile command sweep. The engine abstraction (DESIGN.md §10)
// claims the guard stack is profile-generic: the same logical operation,
// driven through the TPM 1.2 and TPM 2.0 wire protocols over the full guest
// path (client → ring → backend → guard → engine), should show the same
// baseline-vs-improved story under both profiles. E16 measures the four
// operations both profiles implement and tabulates median latency per
// (profile, mode) cell.

import (
	"fmt"
	"time"

	"xvtpm"
	"xvtpm/internal/metrics"
	"xvtpm/internal/tpm"
	"xvtpm/internal/workload"
)

// e16Ops are the operations with a counterpart in both command sets, in
// presentation order.
var e16Ops = []string{"GetRandom", "Extend", "PCRRead", "Quote"}

// e16Profiles are the profiles under comparison, in presentation order.
var e16Profiles = []tpm.Profile{tpm.Profile12, tpm.Profile20}

// E16Row is one (operation, profile) row of the per-profile sweep.
type E16Row struct {
	Op       string
	Profile  tpm.Profile
	Baseline time.Duration // median
	Improved time.Duration // median
}

// e16Drivers returns the per-op closures for one guest. The 1.2 Quote signs
// with a workload-provisioned identity-style key under its SRK; the 2.0
// Quote signs with the endorsement key directly (the engine's 2.0 EK is
// usable as a signing key), so the quote rows compare protocol cost, not an
// identical key hierarchy.
func e16Drivers(g *xvtpm.Guest, r *workload.Runner) map[string]func() error {
	if g.Profile == tpm.Profile20 {
		event := []byte("e16-event")
		nonce := []byte("e16-qualifying-data")
		pcrs := []int{0, 1, 10}
		return map[string]func() error{
			"GetRandom": func() error { _, err := g.TPM2.GetRandom(16); return err },
			"Extend":    func() error { return g.TPM2.Extend(10, event) },
			"PCRRead":   func() error { _, _, err := g.TPM2.PCRRead(tpm.TPM2AlgSHA256, 10); return err },
			"Quote":     func() error { _, _, err := g.TPM2.Quote(nonce, pcrs); return err },
		}
	}
	var digest [tpm.DigestSize]byte
	return map[string]func() error{
		"GetRandom": func() error { _, err := g.TPM.GetRandom(16); return err },
		"Extend":    func() error { _, err := g.TPM.Extend(10, digest); return err },
		"PCRRead":   func() error { _, err := g.TPM.PCRRead(10); return err },
		"Quote":     func() error { return r.Step(workload.OpQuote) },
	}
}

// E16ProfileSweep measures per-command median latency through the full
// guarded path for a TPM 1.2 guest and a TPM 2.0 guest under both guards.
func E16ProfileSweep(cfg Config) ([]E16Row, error) {
	reps := cfg.reps(200, 8)
	warmup := cfg.reps(15, 2)
	medians := make(map[xvtpm.Mode]map[tpm.Profile]map[string]time.Duration)
	for _, mode := range Modes {
		medians[mode] = make(map[tpm.Profile]map[string]time.Duration)
		for _, profile := range e16Profiles {
			h, err := newHost(cfg, mode)
			if err != nil {
				return nil, err
			}
			g, err := h.CreateGuest(xvtpm.GuestConfig{
				Name:    fmt.Sprintf("e16-%s", profile),
				Kernel:  []byte("e16-kernel"),
				Profile: profile,
			})
			var runner *workload.Runner
			if err == nil && profile == tpm.Profile12 {
				// Quote on 1.2 needs an owned TPM and a loaded signing key.
				runner, err = workload.Prepare(g.TPM, 1, cfg.bits())
			}
			if err != nil {
				h.Close() //nolint:errcheck // constructor failure path
				return nil, fmt.Errorf("E16 %s/%s setup: %w", mode, profile, err)
			}
			drivers := e16Drivers(g, runner)
			cell := make(map[string]time.Duration, len(e16Ops))
			for _, op := range e16Ops {
				drive := drivers[op]
				for i := 0; i < warmup; i++ {
					if err := drive(); err != nil {
						h.Close() //nolint:errcheck // measurement failure path
						return nil, fmt.Errorf("E16 warmup %s on %s/%s: %w", op, mode, profile, err)
					}
				}
				rec := metrics.NewRecorder()
				for i := 0; i < reps; i++ {
					start := time.Now()
					if err := drive(); err != nil {
						h.Close() //nolint:errcheck // measurement failure path
						return nil, fmt.Errorf("E16 %s on %s/%s: %w", op, mode, profile, err)
					}
					rec.Add(time.Since(start))
				}
				cell[op] = rec.Percentile(50)
			}
			medians[mode][profile] = cell
			if err := h.Close(); err != nil {
				return nil, err
			}
		}
	}
	rows := make([]E16Row, 0, len(e16Ops)*len(e16Profiles))
	for _, profile := range e16Profiles {
		for _, op := range e16Ops {
			rows = append(rows, E16Row{
				Op:       op,
				Profile:  profile,
				Baseline: medians[xvtpm.ModeBaseline][profile][op],
				Improved: medians[xvtpm.ModeImproved][profile][op],
			})
		}
	}
	if cfg.Out != nil {
		tbl := make([][]string, 0, len(rows))
		for _, r := range rows {
			tbl = append(tbl, []string{
				r.Profile.String(),
				r.Op,
				metrics.Micros(r.Baseline),
				metrics.Micros(r.Improved),
				metrics.Ratio(r.Baseline, r.Improved),
			})
		}
		metrics.Table(cfg.Out, "E16 — per-profile median latency (µs), baseline vs improved",
			[]string{"profile", "command", "baseline", "improved", "overhead"}, tbl)
	}
	return rows, nil
}
