package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestE17LogStoreShape(t *testing.T) {
	var buf bytes.Buffer
	rep, err := E17LogStore(quickCfg(&buf))
	if err != nil {
		t.Fatalf("E17: %v", err)
	}
	if rep.Speedup < 2 {
		t.Fatalf("group commit speedup %.2fx, want >= 2x even in quick mode", rep.Speedup)
	}
	if rep.CoalesceRatio <= 1 {
		t.Fatalf("coalesce ratio %.2f, want > 1 put/commit", rep.CoalesceRatio)
	}
	if rep.Revived != rep.Instances {
		t.Fatalf("revived %d of %d instances", rep.Revived, rep.Instances)
	}
	if rep.ReplayRate <= 0 || rep.ReviveRate <= 0 {
		t.Fatalf("rates not reported: replay %.0f, revive %.0f", rep.ReplayRate, rep.ReviveRate)
	}
	if rep.WriteAmp < 1 {
		t.Fatalf("write amplification %.3f < 1 — accounting is broken", rep.WriteAmp)
	}
	if rep.ReclaimedBytes <= 0 {
		t.Fatalf("compaction reclaimed %d bytes after 30%% churn, want > 0", rep.ReclaimedBytes)
	}
	if rep.LostCommitted != 0 {
		t.Fatalf("torn tail lost %d committed names", rep.LostCommitted)
	}
	if rep.TornFallbacks > 1 {
		t.Fatalf("torn mid-record cost %d generations, want <= 1", rep.TornFallbacks)
	}
	out := buf.String()
	for _, want := range []string{"E17", "speedup", "ReviveAll", "replay", "torn tail"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}
