package experiments

import (
	"fmt"
	"io"
	"strings"

	"xvtpm/internal/loadgen"
	"xvtpm/internal/metrics"
)

// The capacity gate: a fixed scenario replayed through loadgen's
// deterministic virtual-time model. No wall clock, no goroutines, seeded
// PRNG only — the resulting rows are identical on every machine, so they
// sit in BENCH_*.json under the ordinary regression gate and a capacity
// regression (slower modeled service path, broken scheduler, broken SLO
// accounting) fails CI like any ns/op regression. The live E19 sweep
// measures this machine; these rows guard the harness itself and the
// committed capacity envelope.
//
// CapacityScenarioText is the committed stable subset: reduced fleet,
// fixed seed, modeled per-op service times shaped like the measured
// dispatch path (cheap symmetric ops vs RSA-backed seal/quote).
const CapacityScenarioText = `# deterministic capacity-gate scenario (modeled; see DESIGN.md §13-14)
guests 20000
seed 9
duration 250ms
alpha 1.1
skew 1000
servers 4
signworkers 4
jitter 0.2
signbatch 200µs 32
mix extend:40 getrandom:35 seal:15 quote:10
service extend:5µs getrandom:6µs seal:60µs quote:130µs
signcost quote:115µs
slo extend:2ms getrandom:2ms seal:10ms quote:25ms
rates 0.5 0.75 0.9 1.1 1.3
`

// CapacityRowNames lists the gate rows CapacityRows produces, in order.
// benchrunner's -capacity-check runs exactly these.
var CapacityRowNames = []string{
	"CapacityKneeOpNs",
	"CapacitySatGoodOpNs",
	"CapacityPreKneeP99Ns",
	"CapacitySatP999Ns",
}

// capacitySweep replays the scenario ladder through the model.
func capacitySweep() (*loadgen.Scenario, []loadgen.SweepPoint, []*loadgen.Report, error) {
	s, err := loadgen.ParseScenario(CapacityScenarioText)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("capacity scenario: %w", err)
	}
	var points []loadgen.SweepPoint
	var reps []*loadgen.Report
	for _, rate := range s.SweepRates() {
		rep, err := loadgen.RunModel(s.ModelConfig(rate))
		if err != nil {
			return nil, nil, nil, fmt.Errorf("capacity model at %.0f cps: %w", rate, err)
		}
		realized := rate
		if rep.Horizon > 0 {
			realized = float64(rep.Scheduled) / rep.Horizon.Seconds()
		}
		points = append(points, loadgen.SweepPoint{
			Offered: rate, Realized: realized,
			Throughput: rep.Throughput, Goodput: rep.Goodput,
			P99: rep.P99, P999: rep.P999, SLOFrac: rep.SLOFraction(),
		})
		reps = append(reps, rep)
	}
	return s, points, reps, nil
}

// CapacityRows produces the deterministic gate rows. Rates are encoded as
// ns-per-op (1e9 / commands-per-sec) so "higher is worse" and the existing
// tolerance machinery applies unchanged:
//
//	CapacityKneeOpNs     — inverse of the saturation-knee rate
//	CapacitySatGoodOpNs  — inverse of goodput at the top of the ladder
//	CapacityPreKneeP99Ns — CO-safe p99 at the lowest (pre-knee) rate
//	CapacitySatP999Ns    — CO-safe p999 at the top of the ladder
func CapacityRows() ([]BenchResult, error) {
	_, points, reps, err := capacitySweep()
	if err != nil {
		return nil, err
	}
	knee, ok := loadgen.FindKnee(points)
	if !ok {
		return nil, fmt.Errorf("capacity scenario never saturates: ladder %v", points)
	}
	sat := points[len(points)-1]
	if sat.Goodput <= 0 {
		return nil, fmt.Errorf("capacity scenario has zero goodput at saturation")
	}
	pre := reps[0]
	satRep := reps[len(reps)-1]
	return []BenchResult{
		{Name: "CapacityKneeOpNs", NsPerOp: 1e9 / knee},
		{Name: "CapacitySatGoodOpNs", NsPerOp: 1e9 / sat.Goodput},
		{Name: "CapacityPreKneeP99Ns", NsPerOp: float64(pre.P99)},
		{Name: "CapacitySatP999Ns", NsPerOp: float64(satRep.P999)},
	}, nil
}

// CapacitySmoke is the PR-time shape check (`make capacity-smoke`): it
// re-runs the deterministic sweep and fails on *structural* violations —
// accounting that could silently neuter the nightly gate — without
// comparing against a baseline (that comparison is the nightly job's).
func CapacitySmoke(out io.Writer) error {
	s, points, reps, err := capacitySweep()
	if err != nil {
		return err
	}
	var problems []string
	for i, p := range points {
		// The schedule's realized arrival rate, not the nominal one: the
		// deterministic per-guest schedule can emit a few tenths of a
		// percent off the requested rate, and goodput legitimately tracks
		// what actually arrived. Goodput above realized arrivals means
		// double-counted completions or a shrunken elapsed denominator.
		realized := p.Offered
		if reps[i].Horizon > 0 {
			realized = float64(reps[i].Scheduled) / reps[i].Horizon.Seconds()
		}
		if p.Goodput > realized*1.001 {
			problems = append(problems, fmt.Sprintf("rate %d: goodput %.0f exceeds realized arrival rate %.0f", i, p.Goodput, realized))
		}
		if p.Goodput > p.Throughput+0.5 {
			problems = append(problems, fmt.Sprintf("rate %d: goodput %.0f exceeds throughput %.0f", i, p.Goodput, p.Throughput))
		}
		if p.P999 < p.P99 {
			problems = append(problems, fmt.Sprintf("rate %d: p999 %v < p99 %v", i, p.P999, p.P99))
		}
		if i > 0 && p.P99 < points[i-1].P99 {
			problems = append(problems, fmt.Sprintf("rate %d: p99 %v improved under more load (%v before)", i, p.P99, points[i-1].P99))
		}
	}
	if _, ok := loadgen.FindKnee(points); !ok {
		problems = append(problems, "ladder never crosses the saturation knee")
	}
	last := reps[len(reps)-1]
	if last.Scheduled == 0 || last.Completed != last.Scheduled {
		problems = append(problems, fmt.Sprintf("modeled run dropped arrivals: %d of %d", last.Completed, last.Scheduled))
	}
	if out != nil {
		rows := make([][]string, 0, len(points))
		for _, p := range points {
			rows = append(rows, []string{
				fmt.Sprintf("%.0f", p.Offered), fmt.Sprintf("%.0f", p.Goodput),
				fmt.Sprintf("%.1f%%", 100*p.SLOFrac), p.P99.String(), p.P999.String(),
			})
		}
		metrics.Table(out, fmt.Sprintf("capacity smoke (modeled, %d guests, %d servers)", s.Guests, s.Servers),
			[]string{"offered/s", "goodput/s", "in-SLO", "p99", "p999"}, rows)
	}
	if len(problems) > 0 {
		return fmt.Errorf("capacity smoke failed:\n  %s", strings.Join(problems, "\n  "))
	}
	if out != nil {
		fmt.Fprintln(out, "capacity smoke ok")
	}
	return nil
}
