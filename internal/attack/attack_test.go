package attack

import (
	"fmt"
	"testing"

	"xvtpm"
	"xvtpm/internal/vtpm"
)

const testBits = 512

var hostCtr int

func factoryFor(t *testing.T, mode xvtpm.Mode) HostFactory {
	t.Helper()
	return func() (*xvtpm.Host, *xvtpm.Guest, *xvtpm.Host, error) {
		hostCtr++
		h, err := xvtpm.NewHost(xvtpm.HostConfig{
			Name: fmt.Sprintf("atk-%s-%d", mode, hostCtr), Mode: mode, RSABits: testBits,
		})
		if err != nil {
			return nil, nil, nil, err
		}
		g, err := h.CreateGuest(xvtpm.GuestConfig{Name: "victim", Kernel: []byte("victim-kernel")})
		if err != nil {
			return nil, nil, nil, err
		}
		hostCtr++
		peer, err := xvtpm.NewHost(xvtpm.HostConfig{
			Name: fmt.Sprintf("atk-peer-%s-%d", mode, hostCtr), Mode: mode, RSABits: testBits,
		})
		if err != nil {
			return nil, nil, nil, err
		}
		return h, g, peer, nil
	}
}

// TestMatrixBaselineAllSucceed is the left column of reconstructed Table 2:
// every attack works against stock Xen vTPM access control.
func TestMatrixBaselineAllSucceed(t *testing.T) {
	results, err := RunMatrix(factoryFor(t, xvtpm.ModeBaseline))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if !r.Succeeded {
			t.Errorf("%s should succeed against baseline: %s", r.Kind, r.Detail)
		}
	}
}

// TestMatrixImprovedAllBlocked is the right column: the improved design
// blocks all five attacks.
func TestMatrixImprovedAllBlocked(t *testing.T) {
	results, err := RunMatrix(factoryFor(t, xvtpm.ModeImproved))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Succeeded {
			t.Errorf("%s should be blocked by improved guard: %s", r.Kind, r.Detail)
		}
	}
}

func TestScanBytesFindsPatterns(t *testing.T) {
	data := []byte("xxxxSECRETyyyy")
	found := ScanBytes(data, []Probe{
		{Name: "hit", Pattern: []byte("SECRET")},
		{Name: "miss", Pattern: []byte("ABSENT")},
		{Name: "empty", Pattern: nil},
	})
	if len(found) != 1 || found[0] != "hit" {
		t.Fatalf("found = %v", found)
	}
}

func TestScanStoreReportsPerBlob(t *testing.T) {
	s := vtpm.NewMemStore()
	s.Put("clean", []byte("nothing here"))
	s.Put("dirty", []byte("prefix-MARKER-suffix"))
	hits, err := ScanStore(s, []Probe{{Name: "m", Pattern: []byte("MARKER")}})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || len(hits["dirty"]) != 1 {
		t.Fatalf("hits = %v", hits)
	}
}

func TestResultString(t *testing.T) {
	r := Result{Kind: KindReplay, Guard: "baseline", Succeeded: true, Detail: "d"}
	if s := r.String(); s == "" {
		t.Fatal("empty string")
	}
	r2 := Result{Kind: KindReplay, Guard: "improved", Succeeded: false, Detail: "d"}
	if r.String() == r2.String() {
		t.Fatal("outcomes render identically")
	}
}
