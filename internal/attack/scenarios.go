package attack

import (
	"bytes"
	"crypto/sha1"
	"fmt"
	"io"
	"net"
	"sync"

	"xvtpm"
	"xvtpm/internal/tpm"
	"xvtpm/internal/vtpm"
	"xvtpm/internal/xen"
)

// Scenario drives one attack against a prepared host+guest and reports the
// outcome. Scenarios may consume the guest (migration moves it away).
type Scenario func(h *xvtpm.Host, g *xvtpm.Guest, peer *xvtpm.Host) (Result, error)

// guestAuth are the guest-side TPM secrets scenarios provision with.
func guestAuth(role string) (a [tpm.AuthSize]byte) {
	h := sha1.Sum([]byte("attack-guest|" + role))
	copy(a[:], h[:])
	return a
}

// plantedSecret is the application secret scenarios push through the vTPM;
// finding it in attacker-visible data is the leak criterion.
var plantedSecret = []byte("PLANTED-SECRET-0xFEEDFACE-DO-NOT-LEAK")

// provisionAndExercise owns the guest's vTPM and runs a seal/unseal so the
// secret transits the full command path (ring, backend, manager buffers).
func provisionAndExercise(g *xvtpm.Guest) error {
	owner, srk, data := guestAuth("owner"), guestAuth("srk"), guestAuth("data")
	if _, err := g.TPM.TakeOwnership(owner, srk); err != nil {
		return fmt.Errorf("attack: provisioning guest vTPM: %w", err)
	}
	blob, err := g.TPM.Seal(tpm.KHSRK, srk, data, nil, plantedSecret)
	if err != nil {
		return err
	}
	got, err := g.TPM.Unseal(tpm.KHSRK, srk, data, blob)
	if err != nil {
		return err
	}
	if !bytes.Equal(got, plantedSecret) {
		return fmt.Errorf("attack: unseal mismatch")
	}
	return nil
}

// MemDump dumps dom0 (manager working memory, mirrors, exchange buffers)
// and the guest, hunting for the planted secret and plaintext TPM state.
func MemDump(h *xvtpm.Host, g *xvtpm.Guest, _ *xvtpm.Host) (Result, error) {
	if err := provisionAndExercise(g); err != nil {
		return Result{}, err
	}
	probes := []Probe{
		{Name: "planted-secret", Pattern: plantedSecret},
		StateMagicProbe,
	}
	found, err := DumpAndScan(h.HV, xen.Dom0, probes)
	if err != nil {
		return Result{}, err
	}
	r := Result{
		Kind:      KindMemDump,
		Guard:     h.Guard().Name(),
		Succeeded: len(found) > 0,
		Detail:    fmt.Sprintf("dom0 dump hits: %v", found),
	}
	return r, nil
}

// RingSpoof injects a forged PCR-extend into the victim's vTPM, claiming
// the victim's domain identity from the compromised dom0 code path. Success
// criterion: the victim's PCR changed.
func RingSpoof(h *xvtpm.Host, g *xvtpm.Guest, _ *xvtpm.Host) (Result, error) {
	before, err := g.TPM.PCRRead(10)
	if err != nil {
		return Result{}, err
	}
	evil := sha1.Sum([]byte("attacker-chosen-measurement"))
	cmd := tpm.NewWriter()
	cmd.U16(tpm.TagRQUCommand)
	cmd.U32(uint32(10 + 4 + len(evil)))
	cmd.U32(tpm.OrdExtend)
	cmd.U32(10)
	cmd.Raw(evil[:])
	// The spoofer claims the victim's identity outright.
	_, dispatchErr := h.Manager.Dispatch(g.Dom.ID(), g.Dom.Launch(), cmd.Bytes())
	after, err := g.TPM.PCRRead(10)
	if err != nil {
		return Result{}, err
	}
	r := Result{
		Kind:      KindRingSpoof,
		Guard:     h.Guard().Name(),
		Succeeded: after != before,
		Detail:    fmt.Sprintf("dispatch err=%v, pcr changed=%v", dispatchErr, after != before),
	}
	return r, nil
}

// Replay captures one legitimate guest command from the dom0 vantage point
// and re-injects it. Success criterion: the duplicate executed (the PCR
// moved one extra step).
func Replay(h *xvtpm.Host, g *xvtpm.Guest, _ *xvtpm.Host) (Result, error) {
	var mu sync.Mutex
	var captured []byte
	h.Manager.OnDispatch(func(from xen.DomID, payload []byte) {
		mu.Lock()
		if captured == nil && from == g.Dom.ID() {
			captured = payload
		}
		mu.Unlock()
	})
	m := sha1.Sum([]byte("legitimate-measurement"))
	if _, err := g.TPM.Extend(11, m); err != nil {
		return Result{}, err
	}
	afterLegit, err := g.TPM.PCRRead(11)
	if err != nil {
		return Result{}, err
	}
	mu.Lock()
	payload := captured
	mu.Unlock()
	if payload == nil {
		return Result{}, fmt.Errorf("attack: no traffic captured")
	}
	_, dispatchErr := h.Manager.Dispatch(g.Dom.ID(), g.Dom.Launch(), payload)
	afterReplay, err := g.TPM.PCRRead(11)
	if err != nil {
		return Result{}, err
	}
	r := Result{
		Kind:      KindReplay,
		Guard:     h.Guard().Name(),
		Succeeded: afterReplay != afterLegit,
		Detail:    fmt.Sprintf("dispatch err=%v, pcr moved=%v", dispatchErr, afterReplay != afterLegit),
	}
	return r, nil
}

// StateTheft copies the victim's vTPM state file off the host and tries to
// extract key material by deserializing it. Success criterion: the stolen
// blob parses as TPM state (which contains the EK/SRK private keys).
func StateTheft(h *xvtpm.Host, g *xvtpm.Guest, _ *xvtpm.Host) (Result, error) {
	if err := provisionAndExercise(g); err != nil {
		return Result{}, err
	}
	hits, err := ScanStore(h.Store, []Probe{StateMagicProbe})
	if err != nil {
		return Result{}, err
	}
	// Try full key extraction on every blob. The attacker knows the on-disk
	// format: strip the plaintext checkpoint header, then deserialize
	// whichever profile's state follows it.
	names, _ := h.Store.List()
	extracted := false
	for _, name := range names {
		blob, err := h.Store.Get(name)
		if err != nil {
			continue
		}
		_, envelope, err := vtpm.UnwrapCheckpoint(blob)
		if err != nil {
			continue
		}
		if _, err := tpm.RestoreEngine(envelope); err == nil {
			extracted = true
			break
		}
	}
	r := Result{
		Kind:      KindStateTheft,
		Guard:     h.Guard().Name(),
		Succeeded: extracted,
		Detail:    fmt.Sprintf("plaintext blobs: %d, keys extracted: %v", len(hits), extracted),
	}
	return r, nil
}

// tapConn records everything both directions of a connection carry and can
// flip a byte mid-stream (active tampering).
type tapConn struct {
	inner io.ReadWriter
	mu    sync.Mutex
	log   bytes.Buffer
}

func (t *tapConn) Read(p []byte) (int, error) {
	n, err := t.inner.Read(p)
	t.mu.Lock()
	t.log.Write(p[:n])
	t.mu.Unlock()
	return n, err
}

func (t *tapConn) Write(p []byte) (int, error) {
	t.mu.Lock()
	t.log.Write(p)
	t.mu.Unlock()
	return t.inner.Write(p)
}

func (t *tapConn) captured() []byte {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]byte(nil), t.log.Bytes()...)
}

// MigIntercept migrates the guest to peer over a tapped channel and scans
// the recorded stream for plaintext TPM state. Success criterion: the
// eavesdropper recovered vTPM state (or the planted secret) from the wire.
func MigIntercept(h *xvtpm.Host, g *xvtpm.Guest, peer *xvtpm.Host) (Result, error) {
	if peer == nil {
		return Result{}, fmt.Errorf("attack: migration intercept needs a peer host")
	}
	if err := provisionAndExercise(g); err != nil {
		return Result{}, err
	}
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	tap := &tapConn{inner: c1}
	errCh := make(chan error, 1)
	go func() {
		_, err := peer.ReceiveGuest(c2)
		errCh <- err
	}()
	if err := h.SendGuest(tap, g); err != nil {
		return Result{}, err
	}
	if err := <-errCh; err != nil {
		return Result{}, err
	}
	found := ScanBytes(tap.captured(), []Probe{StateMagicProbe})
	r := Result{
		Kind:      KindMigIntercept,
		Guard:     h.Guard().Name(),
		Succeeded: len(found) > 0,
		Detail:    fmt.Sprintf("wire capture hits: %v (%d bytes observed)", found, len(tap.captured())),
	}
	return r, nil
}

// MigTamper modifies the vTPM state envelope while it crosses the migration
// channel. The flipped byte lands inside the serialized PCR bank: with
// plaintext state the destination imports the corrupted instance without
// noticing (the guest now attests to measurements it never made); with the
// improved guard's MACed envelope the import fails closed. Success
// criterion: the destination accepted the tampered instance.
func MigTamper(h *xvtpm.Host, g *xvtpm.Guest, peer *xvtpm.Host) (Result, error) {
	if peer == nil {
		return Result{}, fmt.Errorf("attack: migration tamper needs a peer host")
	}
	if err := provisionAndExercise(g); err != nil {
		return Result{}, err
	}
	inst := g.Instance
	g.Frontend.Close()
	if err := h.Backend.DetachDevice(g.Dom.ID()); err != nil {
		return Result{}, err
	}
	if err := h.Manager.UnbindInstance(inst); err != nil {
		return Result{}, err
	}
	img, err := h.Manager.ExportInstance(inst, peer.Guard().MigrationIdentity())
	if err != nil {
		return Result{}, err
	}
	// Flip one byte well inside the payload — past the header, inside the
	// PCR bank of a plaintext blob.
	tampered := append([]byte(nil), img.StateEnvelope...)
	if len(tampered) < 64 {
		return Result{}, fmt.Errorf("attack: envelope too small to tamper")
	}
	tampered[40] ^= 0xFF
	forged := &vtpm.InstanceImage{Launch: img.Launch, StateEnvelope: tampered}
	_, importErr := peer.Manager.ImportInstance(forged)
	r := Result{
		Kind:      KindMigTamper,
		Guard:     h.Guard().Name(),
		Succeeded: importErr == nil,
		Detail:    fmt.Sprintf("destination import err=%v", importErr),
	}
	return r, nil
}

// Scenarios maps kinds to their implementations.
var Scenarios = map[Kind]Scenario{
	KindMemDump:      MemDump,
	KindRingSpoof:    RingSpoof,
	KindReplay:       Replay,
	KindStateTheft:   StateTheft,
	KindMigIntercept: MigIntercept,
	KindMigTamper:    MigTamper,
}

// HostFactory builds a fresh (host, guest, peer) triple for one scenario
// run; every scenario gets a pristine environment.
type HostFactory func() (*xvtpm.Host, *xvtpm.Guest, *xvtpm.Host, error)

// RunMatrix executes every scenario against hosts from the factory and
// returns the matrix rows in Kinds order.
func RunMatrix(factory HostFactory) ([]Result, error) {
	var results []Result
	for _, kind := range Kinds {
		h, g, peer, err := factory()
		if err != nil {
			return nil, fmt.Errorf("attack: building host for %s: %w", kind, err)
		}
		res, err := Scenarios[kind](h, g, peer)
		if err != nil {
			return nil, fmt.Errorf("attack: running %s: %w", kind, err)
		}
		results = append(results, res)
		h.Close()
		if peer != nil {
			peer.Close()
		}
	}
	return results, nil
}
