// Package attack implements the attacker models of the paper's threat
// analysis and the scripted scenarios behind the attack-resistance matrix
// (experiment E4, reconstructed Table 2).
//
// Each scenario models a capability a host-side attacker on a consolidated
// 2010-era Xen server realistically holds — dump-capable dom0 access is the
// capability the paper's abstract names explicitly — and reports whether
// the attack succeeded against the host's configured access-control guard.
// The expectation the evaluation checks: every scenario succeeds against
// the baseline guard and is blocked by the improved one.
package attack

import (
	"bytes"
	"fmt"

	"xvtpm/internal/tpm"
	"xvtpm/internal/vtpm"
	"xvtpm/internal/xen"
)

// Kind names one attack scenario.
type Kind string

// The six attack scenarios of the matrix.
const (
	KindMemDump      Kind = "mem-dump"      // dump dom0 / guest memory, scan for secrets
	KindRingSpoof    Kind = "ring-spoof"    // inject commands claiming a victim's identity
	KindReplay       Kind = "replay"        // re-inject captured ring traffic
	KindStateTheft   Kind = "state-theft"   // copy vTPM state files off the host
	KindMigIntercept Kind = "mig-intercept" // observe the migration channel (passive)
	KindMigTamper    Kind = "mig-tamper"    // modify vTPM state in transit (active)
)

// Kinds lists all scenarios in matrix order.
var Kinds = []Kind{KindMemDump, KindRingSpoof, KindReplay, KindStateTheft, KindMigIntercept, KindMigTamper}

// Result is one cell of the attack matrix.
type Result struct {
	Kind      Kind
	Guard     string // guard under attack ("baseline"/"improved")
	Succeeded bool   // true means the attacker got what they came for
	Detail    string // human-readable evidence
}

// String renders one result row.
func (r Result) String() string {
	outcome := "BLOCKED"
	if r.Succeeded {
		outcome = "SUCCEEDED"
	}
	return fmt.Sprintf("%-14s vs %-9s %-9s %s", r.Kind, r.Guard, outcome, r.Detail)
}

// Probe is a byte pattern whose presence in attacker-visible data counts as
// a leak.
type Probe struct {
	Name    string
	Pattern []byte
}

// StateMagicProbe matches serialized plaintext TPM state (which carries the
// instance's EK, SRK and owner secrets).
var StateMagicProbe = Probe{Name: "tpm-state-blob", Pattern: []byte(tpm.StateMagic)}

// ScanBytes reports which probes appear in data.
func ScanBytes(data []byte, probes []Probe) []string {
	var found []string
	for _, p := range probes {
		if len(p.Pattern) > 0 && bytes.Contains(data, p.Pattern) {
			found = append(found, p.Name)
		}
	}
	return found
}

// DumpAndScan takes a core dump of target (requires the dom0 capability the
// attacker holds) and scans it for the probes.
func DumpAndScan(hv *xen.Hypervisor, target xen.DomID, probes []Probe) ([]string, error) {
	img, err := hv.DumpCore(xen.Dom0, target)
	if err != nil {
		return nil, err
	}
	return ScanBytes(img, probes), nil
}

// ScanStore reads every blob in a vTPM state store (the dom0 filesystem
// surface) and reports probe hits per blob name.
func ScanStore(store vtpm.Store, probes []Probe) (map[string][]string, error) {
	names, err := store.List()
	if err != nil {
		return nil, err
	}
	hits := make(map[string][]string)
	for _, name := range names {
		blob, err := store.Get(name)
		if err != nil {
			return nil, err
		}
		if f := ScanBytes(blob, probes); len(f) > 0 {
			hits[name] = f
		}
	}
	return hits, nil
}
