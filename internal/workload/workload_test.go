package workload

import (
	"testing"

	"xvtpm/internal/tpm"
)

const testBits = 512

func newCli(t testing.TB, seed string) *tpm.Client {
	t.Helper()
	eng, err := tpm.New(tpm.Config{RSABits: testBits, Seed: []byte(seed)})
	if err != nil {
		t.Fatal(err)
	}
	cli := tpm.NewClient(tpm.DirectTransport{TPM: eng}, nil)
	if err := cli.Startup(tpm.STClear); err != nil {
		t.Fatal(err)
	}
	return cli
}

func TestStreamDeterministicAndWeighted(t *testing.T) {
	a := NewStream(DefaultMix, 42)
	b := NewStream(DefaultMix, 42)
	counts := make(map[Op]int)
	for i := 0; i < 5000; i++ {
		oa, ob := a.Next(), b.Next()
		if oa != ob {
			t.Fatalf("streams diverge at %d: %v vs %v", i, oa, ob)
		}
		counts[oa]++
	}
	// Weighted sampling: GetRandom (weight 30) should dominate Sign (4).
	if counts[OpGetRandom] <= counts[OpSign] {
		t.Fatalf("weights not respected: %v", counts)
	}
	// Every op with positive weight appears.
	for op, w := range DefaultMix {
		if w > 0 && counts[op] == 0 {
			t.Fatalf("op %v never drawn", op)
		}
	}
}

func TestStreamEmptyMixFallsBack(t *testing.T) {
	s := NewStream(Mix{}, 1)
	if op := s.Next(); op != OpGetRandom {
		t.Fatalf("fallback op = %v", op)
	}
}

func TestPrepareAndStepAllOps(t *testing.T) {
	cli := newCli(t, "wl")
	r, err := Prepare(cli, 1, testBits)
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	for _, op := range AllOps {
		if err := r.Step(op); err != nil {
			t.Fatalf("Step(%v): %v", op, err)
		}
	}
	// Repeated steps keep working (sessions do not leak, handles stay
	// valid).
	for i := 0; i < 3; i++ {
		for _, op := range AllOps {
			if err := r.Step(op); err != nil {
				t.Fatalf("round %d Step(%v): %v", i, op, err)
			}
		}
	}
}

func TestStepUnknownOp(t *testing.T) {
	cli := newCli(t, "wl2")
	r, err := Prepare(cli, 2, testBits)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Step(Op(99)); err == nil {
		t.Fatal("unknown op accepted")
	}
}

func TestOpStrings(t *testing.T) {
	for _, op := range AllOps {
		if op.String() == "" || op.String()[0] == 'O' && op.String() != "Op(99)" && false {
			t.Fatal("unreachable")
		}
	}
	if Op(99).String() != "Op(99)" {
		t.Fatalf("unknown op string = %s", Op(99).String())
	}
}
