// Package workload generates the deterministic guest TPM command streams
// the experiments run: single-op loops for the per-command table (E1) and
// weighted mixed streams for the scalability and exposure experiments
// (E2, E7). The mix weights model the request profile of an attestation-
// and sealing-heavy guest, the workload class the paper's motivation
// (protecting service VMs on consolidated servers) implies.
package workload

import (
	"crypto/sha1"
	"fmt"
	"math/rand"

	"xvtpm/internal/tpm"
)

// Op names one guest TPM operation.
type Op int

// The operations the generators emit.
const (
	OpGetRandom Op = iota
	OpExtend
	OpPCRRead
	OpSeal
	OpUnseal
	OpQuote
	OpSign
	numOps
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpGetRandom:
		return "GetRandom"
	case OpExtend:
		return "Extend"
	case OpPCRRead:
		return "PCRRead"
	case OpSeal:
		return "Seal"
	case OpUnseal:
		return "Unseal"
	case OpQuote:
		return "Quote"
	case OpSign:
		return "Sign"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// AllOps lists every operation in table order.
var AllOps = []Op{OpGetRandom, OpExtend, OpPCRRead, OpSeal, OpUnseal, OpQuote, OpSign}

// Mix is a weighted operation profile.
type Mix map[Op]int

// DefaultMix models a measurement- and sealing-heavy guest: frequent PCR
// activity and RNG draws, periodic seal/unseal of application secrets,
// occasional quotes for remote attestation.
var DefaultMix = Mix{
	OpGetRandom: 30,
	OpExtend:    20,
	OpPCRRead:   25,
	OpSeal:      8,
	OpUnseal:    8,
	OpQuote:     5,
	OpSign:      4,
}

// CheapMix avoids RSA-heavy operations, isolating protocol and
// access-control overhead (used by the scalability sweep).
var CheapMix = Mix{
	OpGetRandom: 40,
	OpExtend:    30,
	OpPCRRead:   30,
}

// Stream yields a deterministic operation sequence drawn from a mix.
type Stream struct {
	ops []Op
	rng *rand.Rand
}

// NewStream builds a generator with the given seed.
func NewStream(mix Mix, seed int64) *Stream {
	var ops []Op
	for op := Op(0); op < numOps; op++ {
		for i := 0; i < mix[op]; i++ {
			ops = append(ops, op)
		}
	}
	if len(ops) == 0 {
		ops = []Op{OpGetRandom}
	}
	return &Stream{ops: ops, rng: rand.New(rand.NewSource(seed))}
}

// Next returns the next operation.
func (s *Stream) Next() Op { return s.ops[s.rng.Intn(len(s.ops))] }

// Runner owns one guest's workload state: TPM secrets, a loaded signing
// key and a pre-sealed blob, so every operation is ready to issue.
type Runner struct {
	cli       *tpm.Client
	ownerAuth [tpm.AuthSize]byte
	srkAuth   [tpm.AuthSize]byte
	keyAuth   [tpm.AuthSize]byte
	dataAuth  [tpm.AuthSize]byte
	signKey   uint32
	sealed    []byte
	counter   uint32
}

// authFor derives a per-runner secret.
func authFor(tag string, id int) (a [tpm.AuthSize]byte) {
	h := sha1.Sum([]byte(fmt.Sprintf("workload|%s|%d", tag, id)))
	copy(a[:], h[:])
	return a
}

// Prepare provisions a guest vTPM for the workload: take ownership, create
// and load a signing key, seal a reference secret. bits sizes the signing
// key (zero = engine default).
func Prepare(cli *tpm.Client, id int, bits int) (*Runner, error) {
	r := &Runner{
		cli:       cli,
		ownerAuth: authFor("owner", id),
		srkAuth:   authFor("srk", id),
		keyAuth:   authFor("key", id),
		dataAuth:  authFor("data", id),
	}
	if _, err := cli.TakeOwnership(r.ownerAuth, r.srkAuth); err != nil {
		return nil, fmt.Errorf("workload: TakeOwnership: %w", err)
	}
	blob, err := cli.CreateWrapKey(tpm.KHSRK, r.srkAuth, r.keyAuth, tpm.KeyParams{
		Usage: tpm.KeyUsageSigning, Scheme: tpm.SSRSASSAPKCS1v15SHA1, Bits: uint32(bits),
	})
	if err != nil {
		return nil, fmt.Errorf("workload: CreateWrapKey: %w", err)
	}
	r.signKey, err = cli.LoadKey2(tpm.KHSRK, r.srkAuth, blob)
	if err != nil {
		return nil, fmt.Errorf("workload: LoadKey2: %w", err)
	}
	r.sealed, err = cli.Seal(tpm.KHSRK, r.srkAuth, r.dataAuth, nil, []byte("workload reference secret"))
	if err != nil {
		return nil, fmt.Errorf("workload: Seal: %w", err)
	}
	return r, nil
}

// Step executes one operation against the runner's TPM.
func (r *Runner) Step(op Op) error {
	r.counter++
	switch op {
	case OpGetRandom:
		_, err := r.cli.GetRandom(32)
		return err
	case OpExtend:
		m := sha1.Sum([]byte{byte(r.counter), byte(r.counter >> 8)})
		_, err := r.cli.Extend(10+r.counter%6, m)
		return err
	case OpPCRRead:
		_, err := r.cli.PCRRead(r.counter % tpm.NumPCRs)
		return err
	case OpSeal:
		_, err := r.cli.Seal(tpm.KHSRK, r.srkAuth, r.dataAuth, nil, []byte("transient secret"))
		return err
	case OpUnseal:
		_, err := r.cli.Unseal(tpm.KHSRK, r.srkAuth, r.dataAuth, r.sealed)
		return err
	case OpQuote:
		var nonce [tpm.NonceSize]byte
		nonce[0] = byte(r.counter)
		_, err := r.cli.Quote(r.signKey, r.keyAuth, nonce, tpm.NewPCRSelection(0, 1, 10))
		return err
	case OpSign:
		digest := sha1.Sum([]byte{byte(r.counter)})
		_, err := r.cli.Sign(r.signKey, r.keyAuth, digest)
		return err
	default:
		return fmt.Errorf("workload: unknown op %d", op)
	}
}

// SRKAuth exposes the runner's SRK secret for experiment setup.
func (r *Runner) SRKAuth() [tpm.AuthSize]byte { return r.srkAuth }

// DataAuth exposes the runner's sealed-blob secret.
func (r *Runner) DataAuth() [tpm.AuthSize]byte { return r.dataAuth }

// OwnerAuth exposes the runner's owner secret.
func (r *Runner) OwnerAuth() [tpm.AuthSize]byte { return r.ownerAuth }
