package loadgen

import (
	"math"
	"testing"
	"time"

	"xvtpm/internal/workload"
)

var testService = map[workload.Op]time.Duration{
	workload.OpGetRandom: 10 * time.Microsecond,
	workload.OpExtend:    10 * time.Microsecond,
	workload.OpSeal:      50 * time.Microsecond,
	workload.OpQuote:     100 * time.Microsecond,
}

func TestModelUnderSaturationKeepsUp(t *testing.T) {
	cap := ModelCapacity(4, Mix12, testService)
	rep, err := RunModel(ModelConfig{
		Guests: 20000, Offered: 0.5 * cap, Duration: 500 * time.Millisecond,
		Seed: 9, Servers: 4, Service: testService,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goodput < 0.97*rep.Offered {
		t.Fatalf("under-saturated goodput %.0f vs offered %.0f", rep.Goodput, rep.Offered)
	}
	if frac := rep.SLOFraction(); frac < 0.99 {
		t.Fatalf("SLO fraction %.3f under light load", frac)
	}
}

func TestModelOverSaturationCapsThroughput(t *testing.T) {
	cap := ModelCapacity(4, Mix12, testService)
	rep, err := RunModel(ModelConfig{
		Guests: 20000, Offered: 1.5 * cap, Duration: 500 * time.Millisecond,
		Seed: 9, Servers: 4, Service: testService,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Throughput > 1.05*cap {
		t.Fatalf("throughput %.0f exceeds modeled capacity %.0f", rep.Throughput, cap)
	}
	if rep.Goodput >= kneeGoodputFrac*rep.Offered {
		t.Fatalf("over-saturated run kept up: goodput %.0f offered %.0f", rep.Goodput, rep.Offered)
	}
	if rep.P999 < rep.P99 {
		t.Fatalf("p999 %v < p99 %v", rep.P999, rep.P99)
	}
	// Elapsed stretches past the horizon: the backlog drains after the
	// last arrival.
	if rep.Elapsed <= rep.Horizon {
		t.Fatalf("saturated elapsed %v did not exceed horizon %v", rep.Elapsed, rep.Horizon)
	}
}

func TestModelDeterministic(t *testing.T) {
	cfg := ModelConfig{
		Guests: 5000, Offered: 60000, Duration: 300 * time.Millisecond,
		Seed: 42, Servers: 4, Service: testService, ServiceJitter: 0.2,
	}
	a, err := RunModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if *aSum(a) != *aSum(b) {
		t.Fatalf("model not deterministic:\n%+v\n%+v", aSum(a), aSum(b))
	}
}

type modelSum struct {
	Scheduled, Completed, WithinSLO int64
	P50, P99, P999, Max             time.Duration
	Goodput                         float64
}

func aSum(r *Report) *modelSum {
	return &modelSum{r.Scheduled, r.Completed, r.WithinSLO, r.P50, r.P99, r.P999, r.Max, r.Goodput}
}

func TestModelSweepFindsKnee(t *testing.T) {
	cap := ModelCapacity(4, Mix12, testService)
	var points []SweepPoint
	for _, mult := range []float64{0.5, 0.75, 0.9, 1.1, 1.3} {
		rep, err := RunModel(ModelConfig{
			Guests: 10000, Offered: mult * cap, Duration: 400 * time.Millisecond,
			Seed: 9, Servers: 4, Service: testService,
		})
		if err != nil {
			t.Fatal(err)
		}
		points = append(points, SweepPoint{
			Offered: rep.Offered, Throughput: rep.Throughput, Goodput: rep.Goodput,
			P99: rep.P99, P999: rep.P999, SLOFrac: rep.SLOFraction(),
		})
	}
	knee, ok := FindKnee(points)
	if !ok {
		t.Fatalf("sweep across the capacity did not find a knee: %+v", points)
	}
	if math.Abs(knee-cap) > 0.35*cap {
		t.Fatalf("knee %.0f too far from modeled capacity %.0f", knee, cap)
	}
}

func TestModelTraceReplay(t *testing.T) {
	trace := []TraceEvent{
		{At: 0, Guest: 0, Op: workload.OpExtend},
		{At: 5 * time.Microsecond, Guest: 1, Op: workload.OpQuote},
		{At: 10 * time.Microsecond, Guest: 0, Op: workload.OpGetRandom},
	}
	rep, err := RunModel(ModelConfig{
		Trace: trace, Guests: 2, Duration: time.Second, Servers: 1, Service: testService,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != 3 {
		t.Fatalf("trace replay completed %d of 3", rep.Completed)
	}
	// Single server, FIFO: the GetRandom at t=10µs waits behind the
	// 100µs quote that started at t=10µs... the quote started at 10µs
	// (after extend's 10µs), so GetRandom completes at 120µs: open-loop
	// latency 110µs.
	if rep.Max < 100*time.Microsecond {
		t.Fatalf("queueing not reflected in open-loop latency: max %v", rep.Max)
	}
}
