package loadgen

import (
	"errors"
	"math"
	"sync/atomic"
	"testing"
	"time"

	"xvtpm/internal/workload"
)

func TestRateTableShape(t *testing.T) {
	const n, total = 10000, 50000.0
	rates := rateTable(n, 7, 1.1, 1000, total)
	if len(rates) != n {
		t.Fatalf("got %d rates", len(rates))
	}
	var sum, min, max float64
	min = math.Inf(1)
	for _, r := range rates {
		if r <= 0 {
			t.Fatalf("non-positive rate %v", r)
		}
		sum += r
		min = math.Min(min, r)
		max = math.Max(max, r)
	}
	if math.Abs(sum-total) > 1e-6*total {
		t.Fatalf("rates sum %v, want %v", sum, total)
	}
	if ratio := max / min; ratio > 1000.0001 {
		t.Fatalf("skew %v exceeds bound", ratio)
	}
	// Heavy tail: guests far above the mean rate should carry a
	// disproportionate share of the load under alpha=1.1.
	var top float64
	for _, r := range rates {
		if r > 20*total/n {
			top += r
		}
	}
	if top < 0.05*total {
		t.Fatalf("tail too light: guests above 20x mean carry only %.1f%% of load", 100*top/total)
	}
	again := rateTable(n, 7, 1.1, 1000, total)
	for i := range rates {
		if rates[i] != again[i] {
			t.Fatalf("rate table not deterministic at %d", i)
		}
	}
}

func TestScheduleOrderedAndOnRate(t *testing.T) {
	const guests, offered = 5000, 100000.0
	horizon := 500 * time.Millisecond
	rates := rateTable(guests, 3, 1.1, 1000, offered)
	ids := make([]int32, guests)
	for i := range ids {
		ids[i] = int32(i)
	}
	s := newSchedule(ids, rates, Mix12, 3, horizon)
	var last int64 = -1
	var n int64
	seen := make(map[workload.Op]int)
	for {
		ev, ok := s.next()
		if !ok {
			break
		}
		if ev.at < last {
			t.Fatalf("arrivals out of order: %d after %d", ev.at, last)
		}
		last = ev.at
		seen[ev.op]++
		n++
	}
	want := offered * horizon.Seconds()
	if math.Abs(float64(n)-want) > 0.05*want {
		t.Fatalf("schedule emitted %d events, want ~%.0f", n, want)
	}
	for op := range Mix12 {
		if seen[op] == 0 {
			t.Fatalf("mix op %v never drawn", op)
		}
	}
	if seen[workload.OpExtend] < seen[workload.OpQuote] {
		t.Fatalf("mix weights ignored: extend %d < quote %d", seen[workload.OpExtend], seen[workload.OpQuote])
	}
}

func TestRunLiveSmoke(t *testing.T) {
	var steps atomic.Int64
	step := func(op workload.Op) error {
		steps.Add(1)
		if op == workload.OpSeal {
			return errors.New("synthetic")
		}
		return nil
	}
	m := NewMetrics()
	rep, err := Run(Config{
		Guests: 500, Offered: 20000, Duration: 100 * time.Millisecond, Seed: 11,
		Slots:   []Slot{{Step: step, Mix: Mix12}, {Step: step, Mix: Mix20}},
		Metrics: m,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed == 0 || rep.Completed != steps.Load() {
		t.Fatalf("completed %d, stepped %d", rep.Completed, steps.Load())
	}
	if rep.Errors == 0 {
		t.Fatalf("synthetic seal errors not counted")
	}
	if rep.Goodput <= 0 || rep.Goodput > rep.Throughput+1 {
		t.Fatalf("goodput %v vs throughput %v", rep.Goodput, rep.Throughput)
	}
	if rep.P999 < rep.P99 || rep.P99 < rep.P50 {
		t.Fatalf("percentiles not ordered: %v %v %v", rep.P50, rep.P99, rep.P999)
	}
	if len(rep.PerOp) == 0 {
		t.Fatalf("no per-op stats")
	}
	for _, st := range rep.PerOp {
		if st.SLO == 0 {
			t.Fatalf("op %v has no SLO", st.Op)
		}
	}
	if got := m.Completed.Load(); int64(got) != rep.Completed {
		t.Fatalf("metrics completed %d, report %d", got, rep.Completed)
	}
	if m.GoodputCPS.Load() == 0 {
		t.Fatalf("goodput gauge not published")
	}
}

func TestRunEventCapTruncatesHorizon(t *testing.T) {
	cfg := Config{Guests: 10, Offered: 1e9, Duration: time.Hour, MaxEvents: 1000,
		Slots: []Slot{{Step: func(workload.Op) error { return nil }, Mix: Mix12}}}
	if err := cfg.defaults(); err != nil {
		t.Fatal(err)
	}
	if cfg.Duration > time.Millisecond {
		t.Fatalf("horizon not truncated: %v", cfg.Duration)
	}
}

func TestFindKnee(t *testing.T) {
	mk := func(off, good float64) SweepPoint { return SweepPoint{Offered: off, Goodput: good} }
	knee, ok := FindKnee([]SweepPoint{mk(100, 100), mk(200, 199), mk(300, 240), mk(400, 245)})
	if !ok {
		t.Fatal("no knee found")
	}
	if knee <= 200 || knee >= 300 {
		t.Fatalf("knee %v outside (200,300)", knee)
	}
	if _, ok := FindKnee([]SweepPoint{mk(100, 100), mk(200, 200)}); ok {
		t.Fatal("knee claimed on an unsaturated sweep")
	}
	// Saturated from the very first point: knee clamps to its goodput.
	knee, ok = FindKnee([]SweepPoint{mk(100, 50)})
	if !ok || knee != 50 {
		t.Fatalf("first-point saturation: knee %v ok %v", knee, ok)
	}
}
