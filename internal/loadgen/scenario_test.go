package loadgen

import (
	"strings"
	"testing"
	"time"

	"xvtpm/internal/workload"
)

const sampleScenario = `# capacity scenario
guests 20000
seed 9
duration 250ms
alpha 1.1
skew 1000
servers 4
jitter 0.2
mix extend:40 getrandom:35 seal:15 quote:10
service extend:5µs getrandom:6µs seal:60µs quote:130µs
slo extend:2ms getrandom:2ms seal:10ms quote:25ms
rates 0.5 0.75 0.9 1.1 1.3
`

func TestParseScenario(t *testing.T) {
	s, err := ParseScenario(sampleScenario)
	if err != nil {
		t.Fatal(err)
	}
	if s.Guests != 20000 || s.Seed != 9 || s.Servers != 4 {
		t.Fatalf("basic fields wrong: %+v", s)
	}
	if s.Mix[workload.OpSeal] != 15 {
		t.Fatalf("mix seal weight %d", s.Mix[workload.OpSeal])
	}
	if s.Service[workload.OpQuote] != 130*time.Microsecond {
		t.Fatalf("quote service %v", s.Service[workload.OpQuote])
	}
	if s.SLO[workload.OpExtend] != 2*time.Millisecond {
		t.Fatalf("extend slo %v", s.SLO[workload.OpExtend])
	}
	if len(s.Rates) != 5 {
		t.Fatalf("rates %v", s.Rates)
	}
	if c := s.Capacity(); c <= 0 {
		t.Fatalf("capacity %v", c)
	}
	ladder := s.SweepRates()
	if len(ladder) != 5 || ladder[0] >= ladder[4] {
		t.Fatalf("sweep ladder %v", ladder)
	}
	if ladder[4] <= s.Capacity() {
		t.Fatalf("ladder %v never crosses capacity %v", ladder, s.Capacity())
	}
}

func TestScenarioRoundTrip(t *testing.T) {
	s, err := ParseScenario(sampleScenario)
	if err != nil {
		t.Fatal(err)
	}
	text := s.String()
	s2, err := ParseScenario(text)
	if err != nil {
		t.Fatalf("canonical form does not re-parse: %v\n%s", err, text)
	}
	if s2.String() != text {
		t.Fatalf("canonical form is not a fixed point:\n%q\n%q", text, s2.String())
	}
}

func TestScenarioTraceDirective(t *testing.T) {
	s, err := ParseScenario("trace 0s 0 extend\ntrace 100µs 1 quote\nduration 1s\nservers 1\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Trace) != 2 || s.Trace[1].Op != workload.OpQuote {
		t.Fatalf("trace %+v", s.Trace)
	}
	rep, err := RunModel(s.ModelConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != 2 {
		t.Fatalf("trace run completed %d", rep.Completed)
	}
}

func TestScenarioRejects(t *testing.T) {
	for _, bad := range []string{
		"guests",                     // missing arg
		"guests -4",                  // negative
		"bogus 1",                    // unknown directive
		"mix extend",                 // not op:value
		"mix warp:4",                 // unknown op
		"offered NaN",                // non-finite
		"duration -1s",               // negative duration
		"stall 1s",                   // arity
		"trace 2s 0 extend\ntrace 1s 0 extend", // out of order
		"rates",                      // empty ladder
	} {
		if _, err := ParseScenario(bad); err == nil {
			t.Fatalf("accepted %q", bad)
		} else if !strings.Contains(err.Error(), "line") {
			t.Fatalf("error for %q lacks line info: %v", bad, err)
		}
	}
}
