package loadgen

import (
	"testing"
	"time"

	"xvtpm/internal/workload"
)

// TestCoordinatedOmissionStall is the harness's correctness anchor: on a
// deterministic virtual clock, freeze every server for a 300ms window
// while arrivals keep coming, and check that
//
//  1. the open-loop digest (latency from *intended* send time) surfaces
//     the stall — requests scheduled early in the window wait nearly the
//     whole 300ms, so the tail must reach it, and
//  2. the closed-loop digest over the *same completions* (latency from
//     actual send time, what a generator that politely waits for the
//     server would record) hides the stall almost entirely.
//
// This is the coordinated-omission failure mode: a blocked generator
// stops sampling exactly when the system is at its worst.
func TestCoordinatedOmissionStall(t *testing.T) {
	service := map[workload.Op]time.Duration{workload.OpGetRandom: 100 * time.Microsecond}
	mix := workload.Mix{workload.OpGetRandom: 1}
	const stallFor = 300 * time.Millisecond
	cfg := ModelConfig{
		Guests: 2000, Offered: 5000, Duration: time.Second, Seed: 1,
		Servers: 2, Service: service, Mix: mix,
		StallAt: 200 * time.Millisecond, StallFor: stallFor,
		SLO: map[workload.Op]time.Duration{workload.OpGetRandom: 2 * time.Millisecond},
	}
	rep, err := RunModel(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// ~5000/s offered for 1s with a 300ms outage: ~1500 arrivals land in
	// the window. That is ~30% of all samples, so even p99 of the
	// open-loop digest must sit deep inside the stall.
	if rep.Max < stallFor-10*time.Millisecond {
		t.Fatalf("open-loop max %v does not span the %v stall", rep.Max, stallFor)
	}
	if rep.P99 < 100*time.Millisecond {
		t.Fatalf("open-loop p99 %v does not surface the stall", rep.P99)
	}

	// The same completions timed from actual send: the stall collapses
	// to queue-free service times. An order of magnitude under-report.
	if rep.ClosedP99 > rep.P99/10 {
		t.Fatalf("closed-loop p99 %v not an under-report of open-loop p99 %v", rep.ClosedP99, rep.P99)
	}
	if rep.ClosedP999 > 5*time.Millisecond {
		t.Fatalf("closed-loop p999 %v should look healthy (that is the bug it demonstrates)", rep.ClosedP999)
	}

	// Goodput accounting must see the outage too.
	if frac := rep.SLOFraction(); frac > 0.9 {
		t.Fatalf("SLO fraction %.3f ignores a 30%% outage", frac)
	}

	// And the whole scenario is a fixed point: identical on every run.
	rep2, err := RunModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.P99 != rep2.P99 || rep.ClosedP99 != rep2.ClosedP99 || rep.Completed != rep2.Completed {
		t.Fatalf("stall scenario not deterministic")
	}
}

// TestLiveRunFoldsLatenessIn drives the wall-clock runner with a stepper
// that blocks once for a long beat: every arrival scheduled during the
// block must record a latency that includes its schedule slip, not just
// its own service time.
func TestLiveRunFoldsLatenessIn(t *testing.T) {
	const block = 150 * time.Millisecond
	first := true
	step := func(op workload.Op) error {
		if first {
			first = false
			time.Sleep(block)
		}
		return nil
	}
	rep, err := Run(Config{
		Guests: 200, Offered: 2000, Duration: 200 * time.Millisecond, Seed: 5,
		Slots: []Slot{{Step: step, Mix: workload.Mix{workload.OpGetRandom: 1}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Max < block/2 {
		t.Fatalf("blocked stepper invisible in open-loop latency: max %v", rep.Max)
	}
	if rep.LatenessMax < block/2 {
		t.Fatalf("schedule slip not recorded: lateness max %v", rep.LatenessMax)
	}
}
