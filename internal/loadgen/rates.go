package loadgen

import "math"

// splitmix is a splitmix64 PRNG: tiny state, excellent mixing, and —
// unlike math/rand sources — trivially forkable per guest, which keeps a
// million-guest schedule deterministic regardless of how guests interleave.
type splitmix struct{ s uint64 }

func (r *splitmix) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float64 in [0,1) with 53 bits of precision.
func (r *splitmix) float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// expDur draws an exponential with the given mean (in ns), for Poisson
// inter-arrival gaps. The +tiny offset keeps log() off zero.
func (r *splitmix) expDur(meanNs float64) int64 {
	u := r.float64()
	d := -math.Log(1-u+1e-18) * meanNs
	if d < 1 {
		d = 1
	}
	return int64(d)
}

// rateTable assigns each of n simulated guests an arrival rate from a
// bounded Pareto distribution (shape alpha, support [1, maxSkew]) and
// normalizes the table so the rates sum to total commands/sec. A heavy
// tail is the realistic fleet shape: most guests idle along at a trickle
// while a few busy ones dominate, so per-slot load is bursty rather than
// uniform.
func rateTable(n int, seed int64, alpha, maxSkew, total float64) []float64 {
	if alpha <= 0 {
		alpha = 1.1
	}
	if maxSkew <= 1 {
		maxSkew = 1000
	}
	rng := splitmix{s: uint64(seed)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d}
	rates := make([]float64, n)
	// Inverse CDF of bounded Pareto on [1, H]: w = (1 - u(1 - H^-a))^(-1/a).
	hma := math.Pow(maxSkew, -alpha)
	var sum float64
	for i := range rates {
		u := rng.float64()
		w := math.Pow(1-u*(1-hma), -1/alpha)
		rates[i] = w
		sum += w
	}
	scale := total / sum
	for i := range rates {
		rates[i] *= scale
	}
	return rates
}
