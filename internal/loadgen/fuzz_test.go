package loadgen

import "testing"

// FuzzLoadgenTraceParse hammers the scenario/trace decoder: any input
// either fails cleanly or parses to a Scenario whose canonical rendering
// is a fixed point (parse → String → parse → String is stable). Scenarios
// ride in CI baselines and vtpmctl arguments, so the decoder must never
// panic and never round-trip lossily.
func FuzzLoadgenTraceParse(f *testing.F) {
	f.Add(sampleScenario)
	f.Add("guests 100\nseed 1\n")
	f.Add("stall 200ms 100ms\nmix getrandom:1\n")
	f.Add("trace 0s 0 extend\ntrace 5µs 1 quote\n")
	f.Add("rates 0.5 1 2\nservers 8\njitter 0.3\n")
	f.Add("# only a comment\n\n")
	f.Add("offered 1e6\nduration 30s\nskew 1e4\n")
	f.Fuzz(func(t *testing.T, src string) {
		s, err := ParseScenario(src)
		if err != nil {
			return
		}
		text := s.String()
		s2, err := ParseScenario(text)
		if err != nil {
			t.Fatalf("canonical form rejected: %v\n%q", err, text)
		}
		if again := s2.String(); again != text {
			t.Fatalf("canonical form unstable:\n%q\n%q", text, again)
		}
	})
}
