package loadgen

import (
	"errors"
	"sort"
	"time"

	"xvtpm/internal/workload"
)

// ModelConfig parameterizes a deterministic virtual-time run: the same
// arrival schedule as Run, replayed through a modeled G/G/c queue instead
// of real dispatches. No wall clock, no goroutines, no map iteration —
// identical numbers on every machine, which is what lets the capacity
// rows sit in BENCH_*.json behind the regression gate.
type ModelConfig struct {
	Guests   int
	Offered  float64 // commands/sec
	Duration time.Duration
	Seed     int64
	Alpha    float64
	MaxSkew  float64
	Mix      workload.Mix // nil = Mix12

	Servers int                           // modeled dispatch lanes (c)
	Service map[workload.Op]time.Duration // per-op service time
	// ServiceJitter widens each service time by a deterministic
	// ±fraction (0.2 = ±20%), so tails are not artificially flat.
	ServiceJitter float64

	// Sign-pool modeling. When SignWorkers > 0, an op with a SignCost
	// entry pays only its prep share (service − sign cost) on the
	// dispatch lane; the private-key operation is handed to one of
	// SignWorkers dedicated sign lanes, mirroring the deferred-execution
	// split in vtpm dispatch. With a positive SignBatchWindow, jobs of
	// the same op that become ready within the window share one modeled
	// signature (the Merkle-batched quote path); a batch seals when the
	// window expires or SignBatchMax jobs have joined, whichever is
	// first. The model batches across the whole fleet — an idealization
	// of the real pool's per-key grouping that the skewed fleets used by
	// the capacity scenarios (a few hot guests dominating the quote
	// stream) approach in practice.
	SignWorkers     int
	SignCost        map[workload.Op]time.Duration
	SignBatchWindow time.Duration
	SignBatchMax    int

	// StallAt/StallFor freeze every server for a window — the scenario
	// the coordinated-omission test exercises: an open-loop recorder
	// must surface the stall in its tail, a closed-loop one hides it.
	StallAt, StallFor time.Duration

	SLO       map[workload.Op]time.Duration
	MaxEvents int64

	// Trace, when non-nil, replaces the synthetic guest schedule.
	Trace []TraceEvent
}

// TraceEvent is one explicit arrival in a scenario trace.
type TraceEvent struct {
	At    time.Duration
	Guest int
	Op    workload.Op
}

// defaultService models the measured shape of the dispatch path (cheap
// symmetric ops vs RSA-backed seal/quote) without claiming any machine's
// absolute numbers; scenarios override it.
var defaultService = map[workload.Op]time.Duration{
	workload.OpGetRandom: 6 * time.Microsecond,
	workload.OpExtend:    5 * time.Microsecond,
	workload.OpPCRRead:   5 * time.Microsecond,
	workload.OpSeal:      60 * time.Microsecond,
	workload.OpUnseal:    60 * time.Microsecond,
	workload.OpQuote:     130 * time.Microsecond,
	workload.OpSign:      120 * time.Microsecond,
}

// RunModel drains the schedule through the modeled queue and reports both
// the open-loop digest (latency from intended send) and the closed-loop
// comparison digest (latency from actual send) over the same completions.
func RunModel(cfg ModelConfig) (*Report, error) {
	if cfg.Guests <= 0 && cfg.Trace == nil {
		return nil, errors.New("loadgen: model needs Guests or a Trace")
	}
	if cfg.Servers <= 0 {
		cfg.Servers = 4
	}
	if cfg.Mix == nil {
		cfg.Mix = Mix12
	}
	if cfg.MaxEvents <= 0 {
		cfg.MaxEvents = 2_000_000
	}
	if cfg.Duration <= 0 {
		cfg.Duration = time.Second
	}
	if cfg.Trace == nil {
		if cfg.Offered <= 0 {
			return nil, errors.New("loadgen: model needs a positive Offered rate")
		}
		if want := cfg.Offered * cfg.Duration.Seconds(); want > float64(cfg.MaxEvents) {
			cfg.Duration = time.Duration(float64(cfg.MaxEvents) / cfg.Offered * 1e9)
		}
	}
	service := cfg.Service
	if service == nil {
		service = defaultService
	}
	slo := cfg.SLO
	if slo == nil {
		slo = DefaultSLO
	}

	var sched *schedule
	if cfg.Trace != nil {
		evs := make([]event, len(cfg.Trace))
		for i, t := range cfg.Trace {
			evs[i] = event{at: int64(t.At), guest: int32(t.Guest), op: t.Op}
		}
		sched = newTraceSchedule(evs, cfg.Duration)
	} else {
		rates := rateTable(cfg.Guests, cfg.Seed, cfg.Alpha, cfg.MaxSkew, cfg.Offered)
		ids := make([]int32, cfg.Guests)
		for i := range ids {
			ids[i] = int32(i)
		}
		sched = newSchedule(ids, rates, cfg.Mix, cfg.Seed, cfg.Duration)
	}

	// Per-op service time in ns, indexed densely for the hot loop.
	svcNs := make([]int64, opCount)
	for _, op := range workload.AllOps {
		d := service[op]
		if d == 0 {
			d = defaultService[op]
		}
		svcNs[op] = int64(d)
	}
	signNs := make([]int64, opCount)
	signEnabled := cfg.SignWorkers > 0 && len(cfg.SignCost) > 0
	if signEnabled {
		for op, d := range cfg.SignCost {
			if int(op) < len(signNs) && d > 0 {
				signNs[op] = int64(d)
			}
		}
	}
	var signJobs []signJob

	free := make([]int64, cfg.Servers) // per-server next-free virtual time
	stallStart, stallEnd := int64(cfg.StallAt), int64(cfg.StallAt+cfg.StallFor)
	jrng := splitmix{s: uint64(cfg.Seed)*0x100000001b3 + 0xcbf29ce484222325}

	col := newCollector()
	var lastDone int64
	for {
		ev, ok := sched.next()
		if !ok {
			break
		}
		// Earliest-free server takes the command (c is small; linear scan).
		srv := 0
		for i := 1; i < len(free); i++ {
			if free[i] < free[srv] {
				srv = i
			}
		}
		start := ev.at
		if free[srv] > start {
			start = free[srv]
		}
		if cfg.StallFor > 0 && start >= stallStart && start < stallEnd {
			start = stallEnd
		}
		svc := svcNs[ev.op]
		if cfg.ServiceJitter > 0 {
			j := 1 + cfg.ServiceJitter*(2*jrng.float64()-1)
			svc = int64(float64(svc) * j)
			if svc < 1 {
				svc = 1
			}
		}
		if signEnabled && signNs[ev.op] > 0 {
			// Deferred execution: the dispatch lane pays prep only and
			// frees up; the signature completes on a sign lane (second
			// pass below), which is when the response — and the
			// latency — lands.
			prep := svc - signNs[ev.op]
			if prep < 1 {
				prep = 1
			}
			free[srv] = start + prep
			signJobs = append(signJobs, signJob{
				ready: start + prep, at: ev.at, start: start, op: ev.op,
			})
			continue
		}
		done := start + svc
		free[srv] = done
		if done > lastDone {
			lastDone = done
		}
		// Open-loop: from intended arrival. Closed-loop comparator: from
		// actual issue (what a generator that waits for the server would
		// have measured for the very same completion).
		col.record(ev.op, time.Duration(done-ev.at), time.Duration(start-ev.at), nil)
		col.closed = append(col.closed, done-start)
	}

	if len(signJobs) > 0 {
		if d := runSignLanes(signJobs, cfg.SignWorkers, signNs, int64(cfg.SignBatchWindow), cfg.SignBatchMax, col); d > lastDone {
			lastDone = d
		}
	}

	elapsed := cfg.Duration
	if v := time.Duration(lastDone); v > elapsed {
		elapsed = v
	}
	return col.report(cfg.Guests, cfg.Servers, cfg.Offered, cfg.Duration, elapsed, sched.emitted, slo), nil
}

// signJob is one deferred private-key operation waiting for a sign lane.
type signJob struct {
	ready int64 // prep done on the dispatch lane, digest enqueued
	at    int64 // intended arrival (open-loop latency anchor)
	start int64 // actual dispatch start (closed-loop anchor)
	op    workload.Op
}

// runSignLanes drains the deferred sign jobs through the modeled sign
// pool: jobs of the same op that become ready within the batch window
// share one signature; each member's completion is the batch's. Returns
// the last completion time.
func runSignLanes(jobs []signJob, workers int, signNs []int64, window int64, batchMax int, col *collector) int64 {
	sort.SliceStable(jobs, func(i, j int) bool { return jobs[i].ready < jobs[j].ready })
	if batchMax <= 0 {
		batchMax = 16
	}
	lanes := make([]int64, workers)
	var lastDone int64
	for i := 0; i < len(jobs); {
		// Batch membership: same op, ready before the leader's window
		// expires, capped at batchMax (which also seals the batch early).
		j := i + 1
		if window > 0 {
			deadline := jobs[i].ready + window
			for j < len(jobs) && j-i < batchMax && jobs[j].op == jobs[i].op && jobs[j].ready <= deadline {
				j++
			}
		}
		sealAt := jobs[i].ready
		if window > 0 {
			if j-i >= batchMax {
				sealAt = jobs[j-1].ready
			} else {
				sealAt = jobs[i].ready + window
			}
		}
		lane := 0
		for l := 1; l < len(lanes); l++ {
			if lanes[l] < lanes[lane] {
				lane = l
			}
		}
		begin := sealAt
		if lanes[lane] > begin {
			begin = lanes[lane]
		}
		done := begin + signNs[jobs[i].op] // one signature covers the batch
		lanes[lane] = done
		if done > lastDone {
			lastDone = done
		}
		for k := i; k < j; k++ {
			jb := jobs[k]
			col.record(jb.op, time.Duration(done-jb.at), time.Duration(jb.start-jb.at), nil)
			col.closed = append(col.closed, done-jb.start)
		}
		i = j
	}
	return lastDone
}

// ModelCapacity is the modeled queue's theoretical throughput ceiling for
// a mix: servers / mean service time. Sweeps anchor their rate ladders on
// it so the knee always sits inside the sweep.
func ModelCapacity(servers int, mix workload.Mix, service map[workload.Op]time.Duration) float64 {
	if servers <= 0 {
		servers = 4
	}
	if mix == nil {
		mix = Mix12
	}
	if service == nil {
		service = defaultService
	}
	var wsum, tsum float64
	for _, op := range workload.AllOps {
		w := float64(mix[op])
		if w <= 0 {
			continue
		}
		d := service[op]
		if d == 0 {
			d = defaultService[op]
		}
		wsum += w
		tsum += w * d.Seconds()
	}
	if tsum == 0 {
		return 0
	}
	return float64(servers) * wsum / tsum
}

// ModelCapacitySign is ModelCapacity for a run with a modeled sign pool:
// dispatch lanes pay only the prep share (service − sign cost) of
// offloaded ops, and the sign lanes bound those ops separately. The sign
// bound is the unbatched one — batching only raises it — so the returned
// ceiling (the tighter of the two) is safe to anchor sweep ladders on.
func ModelCapacitySign(servers, signWorkers int, mix workload.Mix, service, signCost map[workload.Op]time.Duration) float64 {
	if signWorkers <= 0 || len(signCost) == 0 {
		return ModelCapacity(servers, mix, service)
	}
	if servers <= 0 {
		servers = 4
	}
	if mix == nil {
		mix = Mix12
	}
	if service == nil {
		service = defaultService
	}
	var wsum, prepSum, signSum float64
	for _, op := range workload.AllOps {
		w := float64(mix[op])
		if w <= 0 {
			continue
		}
		d := service[op]
		if d == 0 {
			d = defaultService[op]
		}
		prep := d.Seconds()
		if sc := signCost[op]; sc > 0 {
			prep -= sc.Seconds()
			if prep <= 0 {
				prep = 1e-9 // mirrors the 1ns floor in RunModel
			}
			signSum += w * sc.Seconds()
		}
		wsum += w
		prepSum += w * prep
	}
	if prepSum == 0 {
		return 0
	}
	cap := float64(servers) * wsum / prepSum
	if signSum > 0 {
		if sc := float64(signWorkers) * wsum / signSum; sc < cap {
			cap = sc
		}
	}
	return cap
}
