// Package loadgen is the open-loop load harness: it offers traffic to the
// vTPM stack at a configured aggregate arrival rate — the schedule does not
// slow down when the system does — and records latency from each request's
// *intended* send time on that schedule, so queueing delay caused by a slow
// or stalled server is folded into the recorded latency instead of being
// silently omitted (coordinated-omission-safe, after Tene's HdrHistogram
// critique of closed-loop load generators).
//
// The harness simulates large guest fleets (10⁵–10⁶ guests) cheaply: each
// simulated guest has a heavy-tailed arrival rate (bounded Pareto) and an
// operation mix drawn from internal/workload traits, and the resulting
// per-guest Poisson streams are multiplexed onto a small pool of real
// execution slots (manager load sessions or guest clients). Two executors
// share the schedule and reporting code:
//
//   - Run drives real slots on the wall clock (E19, vtpmctl load).
//   - RunModel replays the same schedule through a deterministic
//     virtual-time multi-server queue (the CI capacity gate: same numbers
//     on every machine).
package loadgen

import (
	"fmt"
	"sort"
	"time"

	"xvtpm/internal/workload"
)

// opCount sizes per-op arrays; workload.AllOps is the dense op universe.
var opCount = len(workload.AllOps)

// Mix12 is the default command profile for simulated 1.2 guests: the
// measurement/attestation mix the paper's consolidated-server scenario
// implies, restricted to the four ops the issue tracks.
var Mix12 = workload.Mix{
	workload.OpExtend:    40,
	workload.OpGetRandom: 35,
	workload.OpSeal:      15,
	workload.OpQuote:     10,
}

// Mix20 is the default profile for simulated 2.0 guests (the 2.0 client
// has no Seal; its share moves to Extend/Quote).
var Mix20 = workload.Mix{
	workload.OpExtend:    45,
	workload.OpGetRandom: 35,
	workload.OpQuote:     20,
}

// DefaultSLO is the per-command latency objective used when a config gives
// none: generous for RSA-backed ops, tight for the cheap path.
var DefaultSLO = map[workload.Op]time.Duration{
	workload.OpGetRandom: 2 * time.Millisecond,
	workload.OpExtend:    2 * time.Millisecond,
	workload.OpPCRRead:   2 * time.Millisecond,
	workload.OpSeal:      10 * time.Millisecond,
	workload.OpUnseal:    10 * time.Millisecond,
	workload.OpQuote:     25 * time.Millisecond,
	workload.OpSign:      25 * time.Millisecond,
}

// OpStats is the per-command slice of a Report.
type OpStats struct {
	Op       workload.Op
	Count    int64
	Errors   int64
	SLO      time.Duration
	Attained float64 // fraction of completions within SLO
	P50      time.Duration
	P99      time.Duration
	P999     time.Duration
}

// Report is the outcome of one offered-load run.
type Report struct {
	Guests     int
	Slots      int
	Offered    float64       // requested aggregate rate, commands/sec
	Horizon    time.Duration // schedule length
	Scheduled  int64         // arrivals the schedule emitted
	Completed  int64         // responses received (ok or TPM error)
	Errors     int64         // non-ok responses
	WithinSLO  int64         // completions within their op's SLO
	Elapsed    time.Duration // wall (or virtual) time to drain the schedule
	Throughput float64       // Completed / Elapsed
	Goodput    float64       // WithinSLO / Elapsed

	// Open-loop latency digest: completion − intended send time.
	P50, P99, P999, Max time.Duration
	// Lateness digest: actual − intended send time (how far the
	// generator itself fell behind schedule; already inside the
	// latency numbers above, reported separately for diagnosis).
	LatenessP99, LatenessMax time.Duration

	// Closed-loop comparison digest (modeled runs only): the same
	// completions timed from *actual* send, the number a coordinated-
	// omission-blind recorder would report.
	ClosedP50, ClosedP99, ClosedP999 time.Duration

	PerOp []OpStats
}

// SLOFraction is WithinSLO/Completed (1 when nothing completed).
func (r *Report) SLOFraction() float64 {
	if r.Completed == 0 {
		return 1
	}
	return float64(r.WithinSLO) / float64(r.Completed)
}

// String renders a one-line summary (vtpmctl top uses it).
func (r *Report) String() string {
	return fmt.Sprintf("offered %.0f/s goodput %.0f/s (%.1f%% in SLO) p99 %v p999 %v lateness-p99 %v",
		r.Offered, r.Goodput, 100*r.SLOFraction(), r.P99, r.P999, r.LatenessP99)
}

// collector accumulates one executor's samples without locking; executors
// keep one per slot and merge at the end.
type collector struct {
	lat      [][]int64 // per-op open-loop latencies, ns
	closed   []int64   // closed-loop latencies (modeled runs)
	lateness []int64
	errs     []int64 // per-op
}

func newCollector() *collector {
	return &collector{lat: make([][]int64, opCount), errs: make([]int64, opCount)}
}

func (c *collector) record(op workload.Op, lat, late time.Duration, err error) {
	c.lat[op] = append(c.lat[op], int64(lat))
	c.lateness = append(c.lateness, int64(late))
	if err != nil {
		c.errs[op]++
	}
}

func (c *collector) merge(o *collector) {
	for i := range c.lat {
		c.lat[i] = append(c.lat[i], o.lat[i]...)
		c.errs[i] += o.errs[i]
	}
	c.closed = append(c.closed, o.closed...)
	c.lateness = append(c.lateness, o.lateness...)
}

// pctl is the nearest-rank percentile of a sorted ns slice, matching
// metrics.Recorder semantics.
func pctl(sorted []int64, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(p / 100 * float64(len(sorted)))
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return time.Duration(sorted[rank])
}

func sortedCopy(v []int64) []int64 {
	out := append([]int64(nil), v...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// report assembles the Report from merged samples. slo entries missing an
// op fall back to DefaultSLO.
func (c *collector) report(guests, slots int, offered float64, horizon, elapsed time.Duration, scheduled int64, slo map[workload.Op]time.Duration) *Report {
	r := &Report{
		Guests: guests, Slots: slots, Offered: offered,
		Horizon: horizon, Scheduled: scheduled, Elapsed: elapsed,
	}
	var all []int64
	for _, op := range workload.AllOps {
		lats := c.lat[op]
		if len(lats) == 0 && c.errs[op] == 0 {
			continue
		}
		objective := slo[op]
		if objective == 0 {
			objective = DefaultSLO[op]
		}
		s := sortedCopy(lats)
		var within int64
		for _, l := range s {
			if time.Duration(l) <= objective {
				within++
			}
		}
		st := OpStats{
			Op: op, Count: int64(len(s)), Errors: c.errs[op], SLO: objective,
			P50: pctl(s, 50), P99: pctl(s, 99), P999: pctl(s, 99.9),
		}
		if st.Count > 0 {
			st.Attained = float64(within) / float64(st.Count)
		}
		r.PerOp = append(r.PerOp, st)
		r.Completed += st.Count
		r.Errors += st.Errors
		r.WithinSLO += within
		all = append(all, s...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	r.P50, r.P99, r.P999 = pctl(all, 50), pctl(all, 99), pctl(all, 99.9)
	if n := len(all); n > 0 {
		r.Max = time.Duration(all[n-1])
	}
	late := sortedCopy(c.lateness)
	r.LatenessP99 = pctl(late, 99)
	if n := len(late); n > 0 {
		r.LatenessMax = time.Duration(late[n-1])
	}
	if len(c.closed) > 0 {
		cl := sortedCopy(c.closed)
		r.ClosedP50, r.ClosedP99, r.ClosedP999 = pctl(cl, 50), pctl(cl, 99), pctl(cl, 99.9)
	}
	if sec := elapsed.Seconds(); sec > 0 {
		r.Throughput = float64(r.Completed) / sec
		r.Goodput = float64(r.WithinSLO) / sec
	}
	return r
}

// SweepPoint is one offered-load step of a rate sweep.
type SweepPoint struct {
	Offered float64
	// Realized is the arrival rate the schedule actually emitted
	// (Scheduled/Horizon). The seeded Poisson streams carry a frozen
	// fluctuation around Offered that does not shrink with reruns — at
	// small schedules it reaches several percent — so accounting sanity
	// checks (goodput cannot exceed arrivals) must compare against
	// Realized, not Offered. 0 means unknown (treat as Offered).
	Realized   float64
	Throughput float64
	Goodput    float64
	P99        time.Duration
	P999       time.Duration
	SLOFrac    float64
}

// kneeGoodputFrac: the sweep is saturated once goodput falls below this
// fraction of offered load.
const kneeGoodputFrac = 0.95

// FindKnee locates the saturation knee of a sweep: the offered rate at
// which goodput drops below 95% of offered, linearly interpolated between
// the last good point and the first saturated one. ok is false while every
// point keeps up (the sweep never found saturation).
func FindKnee(points []SweepPoint) (knee float64, ok bool) {
	for i, p := range points {
		if p.Offered <= 0 {
			continue
		}
		if p.Goodput >= kneeGoodputFrac*p.Offered {
			continue
		}
		if i == 0 {
			return p.Goodput, true
		}
		prev := points[i-1]
		// Interpolate on the goodput/offered ratio crossing 0.95.
		r0 := prev.Goodput / prev.Offered
		r1 := p.Goodput / p.Offered
		if r0 <= r1 { // not a monotone crossing; take the boundary
			return prev.Offered, true
		}
		t := (r0 - kneeGoodputFrac) / (r0 - r1)
		if t < 0 {
			t = 0
		} else if t > 1 {
			t = 1
		}
		return prev.Offered + t*(p.Offered-prev.Offered), true
	}
	return 0, false
}
