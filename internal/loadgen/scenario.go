package loadgen

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"xvtpm/internal/workload"
)

// Scenario is the declarative form of a modeled load run: a small
// line-oriented text format so capacity scenarios can be committed,
// diffed, fuzzed, and replayed byte-for-byte. Directives:
//
//	# comment
//	guests 20000          simulated fleet size
//	seed 9                PRNG seed
//	offered 120000        aggregate rate, commands/sec (sweeps override)
//	duration 500ms        schedule horizon
//	alpha 1.1             Pareto shape of per-guest rates
//	skew 1000             max/min per-guest rate bound
//	servers 4             modeled dispatch lanes
//	signworkers 4         modeled sign-pool lanes (0 = signing stays inline)
//	jitter 0.2            ± service-time jitter fraction
//	stall 200ms 100ms     freeze all servers at t=200ms for 100ms
//	signbatch 200µs 32    sign-pool batch window and max batch size
//	mix extend:40 getrandom:35 seal:15 quote:10
//	service extend:5µs getrandom:6µs seal:60µs quote:130µs
//	signcost quote:115µs  private-key share of service, offloaded to sign lanes
//	slo extend:2ms getrandom:2ms seal:10ms quote:25ms
//	rates 0.5 0.75 0.9 1.1 1.3   sweep ladder, × modeled capacity
//	trace 100µs 3 extend         explicit arrival (repeatable; replaces
//	                             the synthetic schedule when present)
type Scenario struct {
	Guests   int
	Seed     int64
	Offered  float64
	Duration time.Duration
	Alpha    float64
	MaxSkew  float64
	Servers  int
	Jitter   float64
	StallAt  time.Duration
	StallFor time.Duration

	SignWorkers     int
	SignBatchWindow time.Duration
	SignBatchMax    int
	SignCost        map[workload.Op]time.Duration

	Mix     workload.Mix
	Service map[workload.Op]time.Duration
	SLO     map[workload.Op]time.Duration
	Rates   []float64
	Trace   []TraceEvent
}

// opNames maps lowercase directive tokens to ops (and back, via AllOps).
var opNames = func() map[string]workload.Op {
	m := make(map[string]workload.Op, opCount)
	for _, op := range workload.AllOps {
		m[strings.ToLower(op.String())] = op
	}
	return m
}()

func parseOp(tok string) (workload.Op, error) {
	op, ok := opNames[strings.ToLower(tok)]
	if !ok {
		return 0, fmt.Errorf("unknown op %q", tok)
	}
	return op, nil
}

func parseFiniteFloat(tok string) (float64, error) {
	v, err := strconv.ParseFloat(tok, 64)
	if err != nil {
		return 0, err
	}
	if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
		return 0, fmt.Errorf("value %q out of range", tok)
	}
	return v, nil
}

func parseDur(tok string) (time.Duration, error) {
	d, err := time.ParseDuration(tok)
	if err != nil {
		return 0, err
	}
	if d < 0 {
		return 0, fmt.Errorf("negative duration %q", tok)
	}
	return d, nil
}

// parseOpTable reads "op:value" fields into a map via conv.
func parseOpTable(fields []string, conv func(string) (int64, error)) (map[workload.Op]int64, error) {
	out := make(map[workload.Op]int64, len(fields))
	for _, f := range fields {
		k, v, ok := strings.Cut(f, ":")
		if !ok {
			return nil, fmt.Errorf("field %q is not op:value", f)
		}
		op, err := parseOp(k)
		if err != nil {
			return nil, err
		}
		n, err := conv(v)
		if err != nil {
			return nil, fmt.Errorf("field %q: %v", f, err)
		}
		out[op] = n
	}
	return out, nil
}

// ParseScenario decodes the scenario/trace text format.
func ParseScenario(src string) (*Scenario, error) {
	s := &Scenario{}
	for ln, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		key, args := fields[0], fields[1:]
		fail := func(err error) (*Scenario, error) {
			return nil, fmt.Errorf("loadgen: scenario line %d (%s): %v", ln+1, key, err)
		}
		need := func(n int) error {
			if len(args) != n {
				return fmt.Errorf("want %d args, got %d", n, len(args))
			}
			return nil
		}
		var err error
		switch key {
		case "guests":
			if err = need(1); err == nil {
				s.Guests, err = strconv.Atoi(args[0])
				if err == nil && s.Guests < 0 {
					err = fmt.Errorf("negative guests")
				}
			}
		case "seed":
			if err = need(1); err == nil {
				s.Seed, err = strconv.ParseInt(args[0], 10, 64)
			}
		case "offered":
			if err = need(1); err == nil {
				s.Offered, err = parseFiniteFloat(args[0])
			}
		case "duration":
			if err = need(1); err == nil {
				s.Duration, err = parseDur(args[0])
			}
		case "alpha":
			if err = need(1); err == nil {
				s.Alpha, err = parseFiniteFloat(args[0])
			}
		case "skew":
			if err = need(1); err == nil {
				s.MaxSkew, err = parseFiniteFloat(args[0])
			}
		case "servers":
			if err = need(1); err == nil {
				s.Servers, err = strconv.Atoi(args[0])
				if err == nil && s.Servers < 0 {
					err = fmt.Errorf("negative servers")
				}
			}
		case "signworkers":
			if err = need(1); err == nil {
				s.SignWorkers, err = strconv.Atoi(args[0])
				if err == nil && s.SignWorkers < 0 {
					err = fmt.Errorf("negative signworkers")
				}
			}
		case "signbatch":
			if err = need(2); err == nil {
				if s.SignBatchWindow, err = parseDur(args[0]); err == nil {
					s.SignBatchMax, err = strconv.Atoi(args[1])
					if err == nil && s.SignBatchMax < 0 {
						err = fmt.Errorf("negative batch max")
					}
				}
			}
		case "jitter":
			if err = need(1); err == nil {
				s.Jitter, err = parseFiniteFloat(args[0])
			}
		case "stall":
			if err = need(2); err == nil {
				if s.StallAt, err = parseDur(args[0]); err == nil {
					s.StallFor, err = parseDur(args[1])
				}
			}
		case "mix":
			var tbl map[workload.Op]int64
			tbl, err = parseOpTable(args, func(v string) (int64, error) {
				n, e := strconv.ParseInt(v, 10, 32)
				if e == nil && n < 0 {
					e = fmt.Errorf("negative weight")
				}
				return n, e
			})
			if err == nil {
				s.Mix = make(workload.Mix, len(tbl))
				for op, w := range tbl {
					s.Mix[op] = int(w)
				}
			}
		case "service", "slo", "signcost":
			var tbl map[workload.Op]int64
			tbl, err = parseOpTable(args, func(v string) (int64, error) {
				d, e := parseDur(v)
				return int64(d), e
			})
			if err == nil {
				m := make(map[workload.Op]time.Duration, len(tbl))
				for op, d := range tbl {
					m[op] = time.Duration(d)
				}
				switch key {
				case "service":
					s.Service = m
				case "signcost":
					s.SignCost = m
				default:
					s.SLO = m
				}
			}
		case "rates":
			if len(args) == 0 {
				err = fmt.Errorf("want at least one rate")
			}
			s.Rates = nil
			for _, a := range args {
				var v float64
				if v, err = parseFiniteFloat(a); err != nil {
					break
				}
				s.Rates = append(s.Rates, v)
			}
		case "trace":
			if err = need(3); err == nil {
				var ev TraceEvent
				if ev.At, err = parseDur(args[0]); err == nil {
					if ev.Guest, err = strconv.Atoi(args[1]); err == nil && ev.Guest < 0 {
						err = fmt.Errorf("negative guest")
					}
					if err == nil {
						ev.Op, err = parseOp(args[2])
					}
				}
				if err == nil {
					if len(s.Trace) > 0 && ev.At < s.Trace[len(s.Trace)-1].At {
						err = fmt.Errorf("trace not time-ordered")
					} else {
						s.Trace = append(s.Trace, ev)
					}
				}
			}
		default:
			err = fmt.Errorf("unknown directive")
		}
		if err != nil {
			return fail(err)
		}
	}
	return s, nil
}

func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func writeOpTable(b *strings.Builder, key string, get func(workload.Op) (string, bool)) {
	vals := make([]string, 0, opCount)
	for _, op := range workload.AllOps {
		if v, ok := get(op); ok {
			vals = append(vals, strings.ToLower(op.String())+":"+v)
		}
	}
	if len(vals) > 0 {
		fmt.Fprintf(b, "%s %s\n", key, strings.Join(vals, " "))
	}
}

// String renders the canonical form: fixed directive order, ops in AllOps
// order, zero-valued directives omitted. Parse(s.String()) round-trips.
func (s *Scenario) String() string {
	var b strings.Builder
	if s.Guests != 0 {
		fmt.Fprintf(&b, "guests %d\n", s.Guests)
	}
	if s.Seed != 0 {
		fmt.Fprintf(&b, "seed %d\n", s.Seed)
	}
	if s.Offered != 0 {
		fmt.Fprintf(&b, "offered %s\n", fmtFloat(s.Offered))
	}
	if s.Duration != 0 {
		fmt.Fprintf(&b, "duration %s\n", s.Duration)
	}
	if s.Alpha != 0 {
		fmt.Fprintf(&b, "alpha %s\n", fmtFloat(s.Alpha))
	}
	if s.MaxSkew != 0 {
		fmt.Fprintf(&b, "skew %s\n", fmtFloat(s.MaxSkew))
	}
	if s.Servers != 0 {
		fmt.Fprintf(&b, "servers %d\n", s.Servers)
	}
	if s.SignWorkers != 0 {
		fmt.Fprintf(&b, "signworkers %d\n", s.SignWorkers)
	}
	if s.Jitter != 0 {
		fmt.Fprintf(&b, "jitter %s\n", fmtFloat(s.Jitter))
	}
	if s.StallAt != 0 || s.StallFor != 0 {
		fmt.Fprintf(&b, "stall %s %s\n", s.StallAt, s.StallFor)
	}
	if s.SignBatchWindow != 0 || s.SignBatchMax != 0 {
		fmt.Fprintf(&b, "signbatch %s %d\n", s.SignBatchWindow, s.SignBatchMax)
	}
	writeOpTable(&b, "mix", func(op workload.Op) (string, bool) {
		w, ok := s.Mix[op]
		return strconv.Itoa(w), ok && w != 0
	})
	writeOpTable(&b, "service", func(op workload.Op) (string, bool) {
		d, ok := s.Service[op]
		return d.String(), ok
	})
	writeOpTable(&b, "signcost", func(op workload.Op) (string, bool) {
		d, ok := s.SignCost[op]
		return d.String(), ok
	})
	writeOpTable(&b, "slo", func(op workload.Op) (string, bool) {
		d, ok := s.SLO[op]
		return d.String(), ok
	})
	if len(s.Rates) > 0 {
		vals := make([]string, len(s.Rates))
		for i, r := range s.Rates {
			vals[i] = fmtFloat(r)
		}
		fmt.Fprintf(&b, "rates %s\n", strings.Join(vals, " "))
	}
	for _, ev := range s.Trace {
		fmt.Fprintf(&b, "trace %s %d %s\n", ev.At, ev.Guest, strings.ToLower(ev.Op.String()))
	}
	return b.String()
}

// Capacity is the modeled throughput ceiling for the scenario's mix;
// with a sign pool configured, dispatch lanes are charged prep only and
// the sign lanes impose their own (unbatched) bound.
func (s *Scenario) Capacity() float64 {
	return ModelCapacitySign(s.Servers, s.SignWorkers, s.Mix, s.Service, s.SignCost)
}

// ModelConfig builds the modeled-run config at one offered rate (sweeps
// call this once per ladder step).
func (s *Scenario) ModelConfig(offered float64) ModelConfig {
	return ModelConfig{
		Guests: s.Guests, Offered: offered, Duration: s.Duration,
		Seed: s.Seed, Alpha: s.Alpha, MaxSkew: s.MaxSkew, Mix: s.Mix,
		Servers: s.Servers, Service: s.Service, ServiceJitter: s.Jitter,
		StallAt: s.StallAt, StallFor: s.StallFor, SLO: s.SLO,
		SignWorkers: s.SignWorkers, SignCost: s.SignCost,
		SignBatchWindow: s.SignBatchWindow, SignBatchMax: s.SignBatchMax,
		Trace: s.Trace,
	}
}

// SweepRates resolves the scenario's rate ladder (multipliers × modeled
// capacity) to absolute offered rates, ascending.
func (s *Scenario) SweepRates() []float64 {
	cap := s.Capacity()
	mults := s.Rates
	if len(mults) == 0 {
		mults = []float64{0.5, 0.75, 0.9, 1.1, 1.3}
	}
	out := make([]float64, len(mults))
	for i, m := range mults {
		out[i] = m * cap
	}
	sort.Float64s(out)
	return out
}
