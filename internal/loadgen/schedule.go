package loadgen

import (
	"time"

	"xvtpm/internal/workload"
)

// event is one scheduled arrival: at is the intended send time relative to
// run start (virtual time, ns).
type event struct {
	at    int64
	guest int32
	op    workload.Op
}

// guestState is one simulated guest inside a schedule: its own PRNG stream
// (so the schedule is deterministic no matter how guests interleave), its
// mean inter-arrival gap, and its next arrival time.
type guestState struct {
	next   int64
	meanNs float64
	rng    splitmix
	id     int32
}

// opPicker draws operations from a weighted mix, deterministically.
type opPicker struct {
	ops []workload.Op
	cum []uint64
	tot uint64
}

func newOpPicker(mix workload.Mix) *opPicker {
	p := &opPicker{}
	for _, op := range workload.AllOps {
		if w := mix[op]; w > 0 {
			p.tot += uint64(w)
			p.ops = append(p.ops, op)
			p.cum = append(p.cum, p.tot)
		}
	}
	if p.tot == 0 {
		p.ops = []workload.Op{workload.OpGetRandom}
		p.cum = []uint64{1}
		p.tot = 1
	}
	return p
}

func (p *opPicker) pick(r *splitmix) workload.Op {
	x := r.next() % p.tot
	for i, c := range p.cum {
		if x < c {
			return p.ops[i]
		}
	}
	return p.ops[len(p.ops)-1]
}

// schedule merges the Poisson arrival streams of a set of simulated guests
// into one ordered event stream via a binary min-heap keyed on next
// arrival time. Pops are ~log(guests); a million-guest schedule advances in
// well under a microsecond per event.
type schedule struct {
	guests  []guestState
	heap    []int32 // indexes into guests, min-heap on next
	pick    *opPicker
	horizon int64
	emitted int64
	trace   []event // when set, replaces synthetic arrivals entirely
	traceAt int
}

// newSchedule builds the merged arrival stream for guests[ids] with the
// given per-guest rates (commands/sec). Arrivals stop at horizon.
func newSchedule(ids []int32, rates []float64, mix workload.Mix, seed int64, horizon time.Duration) *schedule {
	s := &schedule{
		guests:  make([]guestState, 0, len(ids)),
		pick:    newOpPicker(mix),
		horizon: int64(horizon),
	}
	for _, id := range ids {
		rate := rates[id]
		if rate <= 0 {
			continue
		}
		g := guestState{
			meanNs: 1e9 / rate,
			rng:    splitmix{s: uint64(seed) ^ (uint64(id)+1)*0xd1342543de82ef95},
			id:     id,
		}
		// First arrival is a full exponential gap: the fleet phase-staggers
		// itself instead of stampeding at t=0.
		g.next = g.rng.expDur(g.meanNs)
		if g.next <= s.horizon {
			s.guests = append(s.guests, g)
		}
	}
	s.heap = make([]int32, len(s.guests))
	for i := range s.heap {
		s.heap[i] = int32(i)
	}
	for i := len(s.heap)/2 - 1; i >= 0; i-- {
		s.siftDown(i)
	}
	return s
}

// newTraceSchedule replays an explicit arrival trace instead of drawing
// synthetic Poisson streams (scenario files can embed one).
func newTraceSchedule(trace []event, horizon time.Duration) *schedule {
	return &schedule{trace: trace, horizon: int64(horizon)}
}

func (s *schedule) less(a, b int32) bool { return s.guests[a].next < s.guests[b].next }

func (s *schedule) siftDown(i int) {
	n := len(s.heap)
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && s.less(s.heap[l], s.heap[min]) {
			min = l
		}
		if r < n && s.less(s.heap[r], s.heap[min]) {
			min = r
		}
		if min == i {
			return
		}
		s.heap[i], s.heap[min] = s.heap[min], s.heap[i]
		i = min
	}
}

// next pops the earliest arrival and schedules that guest's following one.
// ok is false once every remaining arrival lies beyond the horizon.
func (s *schedule) next() (event, bool) {
	if s.trace != nil {
		for s.traceAt < len(s.trace) {
			ev := s.trace[s.traceAt]
			s.traceAt++
			if ev.at > s.horizon {
				return event{}, false
			}
			s.emitted++
			return ev, true
		}
		return event{}, false
	}
	for len(s.heap) > 0 {
		gi := s.heap[0]
		g := &s.guests[gi]
		if g.next > s.horizon {
			// Heap min is past the horizon — everything else is too.
			return event{}, false
		}
		ev := event{at: g.next, guest: g.id, op: s.pick.pick(&g.rng)}
		g.next += g.rng.expDur(g.meanNs)
		if g.next > s.horizon {
			// Retire the guest: swap-remove from the heap.
			last := len(s.heap) - 1
			s.heap[0] = s.heap[last]
			s.heap = s.heap[:last]
		}
		s.siftDown(0)
		s.emitted++
		return ev, true
	}
	return event{}, false
}

// partition deals guest ids across nSlots round-robin; with a seeded
// shuffle this would bias nothing further since rates are already i.i.d.
func partition(nGuests, nSlots int) [][]int32 {
	out := make([][]int32, nSlots)
	for i := 0; i < nGuests; i++ {
		s := i % nSlots
		out[s] = append(out[s], int32(i))
	}
	return out
}
