package loadgen

import (
	"time"

	"xvtpm/internal/metrics"
)

// Metrics is the harness's Prometheus surface: live per-command
// observations during a run plus end-of-run gauges, all under the
// loadgen_* prefix.
type Metrics struct {
	Latency  *metrics.Histogram // open-loop latency (intended send → done)
	Lateness *metrics.Histogram // schedule slip (intended → actual send)

	Offered   *metrics.Counter // arrivals issued
	Completed *metrics.Counter
	Errors    *metrics.Counter
	SLOMiss   *metrics.Counter

	OfferedCPS *metrics.Gauge // last run's configured rate
	GoodputCPS *metrics.Gauge // last run's goodput
}

// NewMetrics builds unregistered instruments (tests use them bare).
func NewMetrics() *Metrics {
	return &Metrics{
		Latency:    metrics.NewHistogram(nil),
		Lateness:   metrics.NewHistogram(nil),
		Offered:    &metrics.Counter{},
		Completed:  &metrics.Counter{},
		Errors:     &metrics.Counter{},
		SLOMiss:    &metrics.Counter{},
		OfferedCPS: &metrics.Gauge{},
		GoodputCPS: &metrics.Gauge{},
	}
}

// Register installs the loadgen_* rows on a registry.
func (m *Metrics) Register(reg *metrics.Registry) error {
	for _, row := range []struct {
		name, help string
		install    func(string, string) error
	}{
		{"loadgen_latency_seconds", "Open-loop command latency from intended send time (CO-safe).",
			func(n, h string) error { return reg.RegisterHistogram(n, h, m.Latency) }},
		{"loadgen_lateness_seconds", "Generator schedule slip: actual minus intended send time.",
			func(n, h string) error { return reg.RegisterHistogram(n, h, m.Lateness) }},
		{"loadgen_offered_total", "Commands the open-loop schedule issued.",
			func(n, h string) error { return reg.RegisterCounter(n, h, m.Offered) }},
		{"loadgen_completed_total", "Commands that returned a response.",
			func(n, h string) error { return reg.RegisterCounter(n, h, m.Completed) }},
		{"loadgen_errors_total", "Commands that returned a non-success response.",
			func(n, h string) error { return reg.RegisterCounter(n, h, m.Errors) }},
		{"loadgen_slo_miss_total", "Commands completing over their per-op SLO.",
			func(n, h string) error { return reg.RegisterCounter(n, h, m.SLOMiss) }},
		{"loadgen_offered_cps", "Configured offered rate of the last run (commands/sec).",
			func(n, h string) error { return reg.RegisterGauge(n, h, m.OfferedCPS) }},
		{"loadgen_goodput_cps", "Goodput of the last run (within-SLO completions/sec).",
			func(n, h string) error { return reg.RegisterGauge(n, h, m.GoodputCPS) }},
	} {
		if err := row.install(row.name, row.help); err != nil {
			return err
		}
	}
	return nil
}

// observe records one completion (called from slot workers; everything
// underneath is atomic).
func (m *Metrics) observe(lat, late time.Duration, err error, withinSLO bool) {
	m.Offered.Inc()
	m.Completed.Inc()
	m.Latency.Record(lat)
	m.Lateness.Record(late)
	if err != nil {
		m.Errors.Inc()
	}
	if !withinSLO {
		m.SLOMiss.Inc()
	}
}

// observeReport publishes end-of-run gauges.
func (m *Metrics) observeReport(r *Report) {
	m.OfferedCPS.Set(int64(r.Offered))
	m.GoodputCPS.Set(int64(r.Goodput))
}
