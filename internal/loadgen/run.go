package loadgen

import (
	"errors"
	"sync"
	"time"

	"xvtpm/internal/workload"
)

// Stepper executes one operation on a slot's real backing (a load session
// client or a guest TPM client) and returns the command error, if any.
type Stepper func(op workload.Op) error

// Slot is one real execution lane: simulated guests are dealt across
// slots, and each slot replays its guests' merged arrival stream through
// Step. The slot's Mix is the op profile of the guests homed on it (how
// 1.2 and 2.0 fleets coexist: give their slots different mixes).
type Slot struct {
	Step Stepper
	Mix  workload.Mix
}

// Config parameterizes a live (wall-clock) open-loop run.
type Config struct {
	Guests   int           // simulated guests
	Offered  float64       // aggregate arrival rate, commands/sec
	Duration time.Duration // schedule horizon
	Seed     int64
	Alpha    float64 // Pareto shape for per-guest rates (default 1.1)
	MaxSkew  float64 // max/min per-guest rate ratio bound (default 1000)
	Slots    []Slot
	SLO      map[workload.Op]time.Duration // nil = DefaultSLO
	// MaxEvents bounds the schedule (default 2e6): an over-ambitious
	// offered×duration product truncates the horizon instead of
	// building an unbounded schedule.
	MaxEvents int64
	// Metrics, when set, receives per-command observations live (the
	// Prometheus rows); the Report is produced either way.
	Metrics *Metrics
}

func (c *Config) defaults() error {
	if c.Guests <= 0 || c.Offered <= 0 || c.Duration <= 0 {
		return errors.New("loadgen: Guests, Offered and Duration must be positive")
	}
	if len(c.Slots) == 0 {
		return errors.New("loadgen: need at least one slot")
	}
	if c.MaxEvents <= 0 {
		c.MaxEvents = 2_000_000
	}
	if want := c.Offered * c.Duration.Seconds(); want > float64(c.MaxEvents) {
		c.Duration = time.Duration(float64(c.MaxEvents) / c.Offered * 1e9)
	}
	return nil
}

// Run offers load to the slots on the wall clock. Each slot worker walks
// its schedule: it waits until an arrival's intended send time, issues the
// op, and records completion − *intended* send time — if the worker (or the
// system behind it) falls behind, the lateness lands in the recorded
// latency rather than stretching the schedule (open loop, CO-safe).
func Run(cfg Config) (*Report, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	rates := rateTable(cfg.Guests, cfg.Seed, cfg.Alpha, cfg.MaxSkew, cfg.Offered)
	parts := partition(cfg.Guests, len(cfg.Slots))
	slo := cfg.SLO
	if slo == nil {
		slo = DefaultSLO
	}

	cols := make([]*collector, len(cfg.Slots))
	scheds := make([]*schedule, len(cfg.Slots))
	for i, slot := range cfg.Slots {
		cols[i] = newCollector()
		scheds[i] = newSchedule(parts[i], rates, slot.Mix, cfg.Seed+int64(i)*1009, cfg.Duration)
	}

	start := time.Now()
	var wg sync.WaitGroup
	for i := range cfg.Slots {
		wg.Add(1)
		go func(slot Slot, sched *schedule, col *collector) {
			defer wg.Done()
			for {
				ev, ok := sched.next()
				if !ok {
					return
				}
				intended := start.Add(time.Duration(ev.at))
				if wait := time.Until(intended); wait > 0 {
					time.Sleep(wait)
				}
				late := time.Since(intended)
				if late < 0 {
					late = 0
				}
				err := slot.Step(ev.op)
				lat := time.Since(intended) // includes lateness: CO-safe
				col.record(ev.op, lat, late, err)
				if m := cfg.Metrics; m != nil {
					m.observe(lat, late, err, lat <= sloFor(slo, ev.op))
				}
			}
		}(cfg.Slots[i], scheds[i], cols[i])
	}
	wg.Wait()
	elapsed := time.Since(start)

	merged := newCollector()
	var scheduled int64
	for i, col := range cols {
		merged.merge(col)
		scheduled += scheds[i].emitted
	}
	rep := merged.report(cfg.Guests, len(cfg.Slots), cfg.Offered, cfg.Duration, elapsed, scheduled, slo)
	if cfg.Metrics != nil {
		cfg.Metrics.observeReport(rep)
	}
	return rep, nil
}

func sloFor(slo map[workload.Op]time.Duration, op workload.Op) time.Duration {
	if d := slo[op]; d != 0 {
		return d
	}
	return DefaultSLO[op]
}
