package attest

import (
	"crypto/sha1"
	"errors"
	"net"
	"testing"

	"xvtpm/internal/ima"
	"xvtpm/internal/tpm"
)

// startService runs a Service on a loopback listener.
func startService(t *testing.T, refDB ima.ReferenceDB) (*Service, string) {
	t.Helper()
	svc, err := NewService(testBits, refDB)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go svc.Serve(l) //nolint:errcheck // exits on Close
	t.Cleanup(svc.Close)
	return svc, l.Addr().String()
}

// newAgent builds a guest TPM + IMA agent wired to the service address.
func newAgentRig(t *testing.T, addr, seed string) (*Agent, *tpm.Client) {
	t.Helper()
	eng, err := tpm.New(tpm.Config{RSABits: testBits, Seed: []byte(seed)})
	if err != nil {
		t.Fatal(err)
	}
	cli := tpm.NewClient(tpm.DirectTransport{TPM: eng}, nil)
	if err := cli.Startup(tpm.STClear); err != nil {
		t.Fatal(err)
	}
	ekPub, err := cli.ReadPubek()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cli.TakeOwnership(ownerAuth, srkAuth); err != nil {
		t.Fatal(err)
	}
	a := &Agent{
		Addr: addr, TPM: cli, IMA: ima.NewAgent(cli),
		OwnerAuth: ownerAuth, SRKAuth: srkAuth, AIKAuth: aikAuth,
	}
	if err := a.EnrollRemote(ekPub); err != nil {
		t.Fatalf("EnrollRemote: %v", err)
	}
	return a, cli
}

func TestServiceFullAttestationOverTCP(t *testing.T) {
	refDB := ima.ReferenceDB{
		"/sbin/init":   sha1.Sum([]byte("init-ok")),
		"/usr/bin/app": sha1.Sum([]byte("app-ok")),
	}
	_, addr := startService(t, refDB)
	agent, _ := newAgentRig(t, addr, "svc1")
	if _, err := agent.IMA.Measure("/sbin/init", []byte("init-ok")); err != nil {
		t.Fatal(err)
	}
	if _, err := agent.IMA.Measure("/usr/bin/app", []byte("app-ok")); err != nil {
		t.Fatal(err)
	}
	violations, err := agent.AttestRemote()
	if err != nil {
		t.Fatalf("AttestRemote: %v", err)
	}
	if len(violations) != 0 {
		t.Fatalf("healthy agent flagged: %v", violations)
	}
	// A rogue binary is measured: the next round flags it, by name.
	if _, err := agent.IMA.Measure("/tmp/rogue", []byte("evil")); err != nil {
		t.Fatal(err)
	}
	violations, err = agent.AttestRemote()
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) != 1 || violations[0] != "/tmp/rogue" {
		t.Fatalf("violations = %v", violations)
	}
}

func TestServiceRejectsUnenrolledCredential(t *testing.T) {
	svc, addr := startService(t, nil)
	_ = svc
	eng, _ := tpm.New(tpm.Config{RSABits: testBits, Seed: []byte("rogue")})
	cli := tpm.NewClient(tpm.DirectTransport{TPM: eng}, nil)
	cli.Startup(tpm.STClear)
	cli.TakeOwnership(ownerAuth, srkAuth)
	blob, aikPub, err := cli.MakeIdentity(ownerAuth, aikAuth, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	_ = blob
	// PROV with a guessed credential (no ENRL round) must be refused.
	req := tpm.NewWriter()
	req.B32(tpm.MarshalPublicKey(aikPub))
	req.B32([]byte("guessed-credential-bytes"))
	if _, err := roundTrip(addr, msgProve, req.Bytes()); !errors.Is(err, ErrRemote) {
		t.Fatalf("err = %v, want ErrRemote", err)
	}
}

func TestServiceRejectsScrubbedMeasurementList(t *testing.T) {
	refDB := ima.ReferenceDB{"/sbin/init": sha1.Sum([]byte("init-ok"))}
	_, addr := startService(t, refDB)
	agent, _ := newAgentRig(t, addr, "svc2")
	agent.IMA.Measure("/sbin/init", []byte("init-ok"))
	agent.IMA.Measure("/tmp/rootkit", []byte("evil"))
	// The agent lies: it presents a scrubbed list. The server replays the
	// list against the quoted PCR and refuses.
	honest := agent.IMA
	scrubbed := ima.NewAgent(agent.TPM)
	// Re-measure only the clean file into the *scrubbed list object* —
	// note the PCR already contains both measurements, so the replay fails.
	agent.IMA = scrubbed
	if _, err := agent.TPM.PCRRead(ima.MeasurementPCR); err != nil {
		t.Fatal(err)
	}
	_, err := agent.AttestRemote()
	if !errors.Is(err, ErrRemote) {
		t.Fatalf("scrubbed list err = %v", err)
	}
	agent.IMA = honest
	if v, err := agent.AttestRemote(); err != nil || len(v) != 1 {
		t.Fatalf("honest retry: %v %v", v, err)
	}
}

func TestServiceRejectsNonceReuseOverTCP(t *testing.T) {
	_, addr := startService(t, nil)
	agent, _ := newAgentRig(t, addr, "svc3")
	if _, err := agent.AttestRemote(); err != nil {
		t.Fatal(err)
	}
	// Hand-roll a replay: fetch a nonce, attest twice with the same one.
	nonceBytes, err := roundTrip(addr, msgChal, nil)
	if err != nil {
		t.Fatal(err)
	}
	var nonce [tpm.NonceSize]byte
	copy(nonce[:], nonceBytes)
	quote, err := agent.TPM.Quote(agent.aikHandle, aikAuth, nonce, tpm.NewPCRSelection(ima.MeasurementPCR))
	if err != nil {
		t.Fatal(err)
	}
	req := tpm.NewWriter()
	req.B32(agent.cert.AIKPub)
	req.B32(agent.cert.Sig)
	req.Raw(nonce[:])
	req.B32(quote.Composite)
	req.B32(quote.Signature)
	req.B32(ima.Marshal(agent.IMA.List()))
	if _, err := roundTrip(addr, msgAttest, req.Bytes()); err != nil {
		t.Fatalf("first use: %v", err)
	}
	if _, err := roundTrip(addr, msgAttest, req.Bytes()); !errors.Is(err, ErrRemote) {
		t.Fatalf("replayed attestation err = %v", err)
	}
}

func TestServiceGarbageFrames(t *testing.T) {
	_, addr := startService(t, nil)
	// Unknown type.
	if _, err := roundTrip(addr, [4]byte{'W', 'H', 'A', 'T'}, []byte("x")); !errors.Is(err, ErrRemote) {
		t.Fatalf("unknown type err = %v", err)
	}
	// Garbage body on a known type.
	if _, err := roundTrip(addr, msgEnroll, []byte{1, 2, 3}); !errors.Is(err, ErrRemote) {
		t.Fatalf("garbage body err = %v", err)
	}
	// Raw garbage bytes on the socket must not kill the service.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	conn.Write([]byte("not a frame at all"))
	conn.Close()
	// Service still answers.
	if _, err := roundTrip(addr, msgChal, nil); err != nil {
		t.Fatalf("service dead after garbage: %v", err)
	}
}
