package attest

import (
	"crypto/rsa"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"xvtpm/internal/ima"
	"xvtpm/internal/tpm"
)

// Networked attestation: the verifier/privacy-CA side runs as a service a
// fleet of guests talks to over TCP. The protocol is four request types on
// a fresh connection each (2010-era request/response, no session state on
// the wire):
//
//	ENRL: ekPub, aikPub            → encCred              (CA challenge)
//	PROV: aikPub, credential       → certificate          (CA issue)
//	CHAL: (empty)                  → nonce                (verifier)
//	ATTS: cert, nonce, quote, ml   → verdict              (verifier)
//
// Messages are length-prefixed (u32) with a 4-byte type tag; every field is
// in the tpm wire style. The measurement list rides with the quote and is
// judged against the server's reference database (ima semantics).

// Protocol message types.
var (
	msgEnroll = [4]byte{'E', 'N', 'R', 'L'}
	msgProve  = [4]byte{'P', 'R', 'O', 'V'}
	msgChal   = [4]byte{'C', 'H', 'A', 'L'}
	msgAttest = [4]byte{'A', 'T', 'T', 'S'}
	msgOK     = [4]byte{'O', 'K', 'A', 'Y'}
	msgErr    = [4]byte{'E', 'R', 'R', 'R'}
)

// maxProtoMessage bounds one protocol message.
const maxProtoMessage = 1 << 20

// ErrRemote wraps a failure reported by the attestation service.
var ErrRemote = errors.New("attest: service refused")

// writeFrame sends one typed, length-prefixed message.
func writeFrame(w io.Writer, typ [4]byte, body []byte) error {
	hdr := tpm.NewWriter()
	hdr.Raw(typ[:])
	hdr.U32(uint32(len(body)))
	if _, err := w.Write(hdr.Bytes()); err != nil {
		return err
	}
	if len(body) == 0 {
		return nil
	}
	_, err := w.Write(body)
	return err
}

// readFrame receives one message.
func readFrame(r io.Reader) (typ [4]byte, body []byte, err error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return typ, nil, err
	}
	copy(typ[:], hdr[:4])
	n := tpm.NewReader(hdr[4:]).U32()
	if n > maxProtoMessage {
		return typ, nil, fmt.Errorf("attest: %d-byte frame exceeds cap", n)
	}
	body = make([]byte, n)
	if n > 0 {
		if _, err := io.ReadFull(r, body); err != nil {
			return typ, nil, err
		}
	}
	return typ, body, nil
}

// Service is the verifier + privacy-CA daemon.
type Service struct {
	ca       *PrivacyCA
	verifier *Verifier
	refDB    ima.ReferenceDB

	mu     sync.Mutex
	closed bool
	l      net.Listener
}

// NewService assembles a daemon: its CA, a verifier pinning that CA, and a
// reference database of approved measurements.
func NewService(bits int, refDB ima.ReferenceDB) (*Service, error) {
	ca, err := NewPrivacyCA(bits)
	if err != nil {
		return nil, err
	}
	db := make(ima.ReferenceDB, len(refDB))
	for k, v := range refDB {
		db[k] = v
	}
	return &Service{
		ca:       ca,
		verifier: NewVerifier(ca.PublicKey(), nil),
		refDB:    db,
	}, nil
}

// CAPublicKey exposes the CA key for out-of-band pinning.
func (s *Service) CAPublicKey() *rsa.PublicKey { return s.ca.PublicKey() }

// AddReference registers an approved measurement.
func (s *Service) AddReference(path string, hash [tpm.DigestSize]byte) {
	s.mu.Lock()
	s.refDB[path] = hash
	s.mu.Unlock()
}

// Serve accepts connections until the listener closes. One request per
// connection.
func (s *Service) Serve(l net.Listener) error {
	s.mu.Lock()
	s.l = l
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		go s.handle(conn)
	}
}

// Close stops the service.
func (s *Service) Close() {
	s.mu.Lock()
	s.closed = true
	l := s.l
	s.mu.Unlock()
	if l != nil {
		l.Close()
	}
}

// handle serves one request.
func (s *Service) handle(conn net.Conn) {
	defer conn.Close()
	typ, body, err := readFrame(conn)
	if err != nil {
		return
	}
	resp, err := s.dispatch(typ, body)
	if err != nil {
		writeFrame(conn, msgErr, []byte(err.Error())) //nolint:errcheck // best effort
		return
	}
	writeFrame(conn, msgOK, resp) //nolint:errcheck // best effort
}

// dispatch routes one request.
func (s *Service) dispatch(typ [4]byte, body []byte) ([]byte, error) {
	switch typ {
	case msgEnroll:
		r := tpm.NewReader(body)
		ekPub, err := tpm.UnmarshalPublicKey(r.B32())
		if err != nil {
			return nil, err
		}
		aikPub, err := tpm.UnmarshalPublicKey(r.B32())
		if err != nil {
			return nil, err
		}
		if err := r.Err(); err != nil {
			return nil, err
		}
		encCred, err := s.ca.Challenge(ekPub, aikPub)
		if err != nil {
			return nil, err
		}
		w := tpm.NewWriter()
		w.B32(encCred)
		return w.Bytes(), nil
	case msgProve:
		r := tpm.NewReader(body)
		aikPub, err := tpm.UnmarshalPublicKey(r.B32())
		if err != nil {
			return nil, err
		}
		cred := r.B32()
		if err := r.Err(); err != nil {
			return nil, err
		}
		cert, err := s.ca.Issue(aikPub, cred)
		if err != nil {
			return nil, err
		}
		w := tpm.NewWriter()
		w.B32(cert.AIKPub)
		w.B32(cert.Sig)
		return w.Bytes(), nil
	case msgChal:
		nonce, err := s.verifier.Challenge()
		if err != nil {
			return nil, err
		}
		return nonce[:], nil
	case msgAttest:
		return s.handleAttest(body)
	default:
		return nil, fmt.Errorf("attest: unknown request %q", typ[:])
	}
}

// handleAttest validates one quote + measurement list.
func (s *Service) handleAttest(body []byte) ([]byte, error) {
	r := tpm.NewReader(body)
	cert := &AIKCert{AIKPub: r.B32(), Sig: r.B32()}
	var nonce [tpm.NonceSize]byte
	copy(nonce[:], r.Raw(tpm.NonceSize))
	quote := &tpm.QuoteResult{Composite: r.B32(), Signature: r.B32()}
	mlBytes := r.B32()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if err := s.verifier.VerifyQuote(cert, nonce, quote); err != nil {
		return nil, err
	}
	// The quote must cover the measurement PCR; replay the list against it.
	sel, vals, err := tpm.ParseQuoteComposite(quote.Composite)
	if err != nil {
		return nil, err
	}
	var mlPCR [tpm.DigestSize]byte
	found := false
	for i, idx := range sel.Indices() {
		if idx == ima.MeasurementPCR && i < len(vals) {
			mlPCR = vals[i]
			found = true
		}
	}
	if !found {
		return nil, fmt.Errorf("attest: quote does not cover PCR %d", ima.MeasurementPCR)
	}
	entries, err := ima.Unmarshal(mlBytes)
	if err != nil {
		return nil, err
	}
	if err := ima.VerifyList(entries, mlPCR); err != nil {
		return nil, err
	}
	s.mu.Lock()
	violations := s.refDB.Judge(entries)
	s.mu.Unlock()
	w := tpm.NewWriter()
	w.U32(uint32(len(violations)))
	for _, v := range violations {
		w.B16([]byte(v))
	}
	return w.Bytes(), nil
}

// roundTrip dials, sends one request, and returns the OK body.
func roundTrip(addr string, typ [4]byte, body []byte) ([]byte, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if err := writeFrame(conn, typ, body); err != nil {
		return nil, err
	}
	rtyp, rbody, err := readFrame(conn)
	if err != nil {
		return nil, err
	}
	if rtyp == msgErr {
		return nil, fmt.Errorf("%w: %s", ErrRemote, rbody)
	}
	if rtyp != msgOK {
		return nil, fmt.Errorf("attest: unexpected response %q", rtyp[:])
	}
	return rbody, nil
}

// Agent is the guest-side client of the attestation service.
type Agent struct {
	Addr      string
	TPM       *tpm.Client
	IMA       *ima.Agent
	OwnerAuth [tpm.AuthSize]byte
	SRKAuth   [tpm.AuthSize]byte
	AIKAuth   [tpm.AuthSize]byte

	cert      *AIKCert
	aikHandle uint32
}

// EnrollRemote performs AIK enrollment against the service: MakeIdentity,
// ENRL, ActivateIdentity, PROV. ekPub must have been captured before
// ownership.
func (a *Agent) EnrollRemote(ekPub *rsa.PublicKey) error {
	blob, aikPub, err := a.TPM.MakeIdentity(a.OwnerAuth, a.AIKAuth, []byte("agent-aik"))
	if err != nil {
		return err
	}
	a.aikHandle, err = a.TPM.LoadKey2(tpm.KHSRK, a.SRKAuth, blob)
	if err != nil {
		return err
	}
	req := tpm.NewWriter()
	req.B32(tpm.MarshalPublicKey(ekPub))
	req.B32(tpm.MarshalPublicKey(aikPub))
	resp, err := roundTrip(a.Addr, msgEnroll, req.Bytes())
	if err != nil {
		return err
	}
	encCred := tpm.NewReader(resp).B32()
	cred, err := a.TPM.ActivateIdentity(a.aikHandle, a.OwnerAuth, encCred)
	if err != nil {
		return err
	}
	req = tpm.NewWriter()
	req.B32(tpm.MarshalPublicKey(aikPub))
	req.B32(cred)
	resp, err = roundTrip(a.Addr, msgProve, req.Bytes())
	if err != nil {
		return err
	}
	r := tpm.NewReader(resp)
	a.cert = &AIKCert{AIKPub: r.B32(), Sig: r.B32()}
	return r.Err()
}

// AttestRemote runs one challenge round: CHAL, Quote over the measurement
// PCR, ATTS with the measurement list. It returns the service's violation
// verdict (empty = healthy).
func (a *Agent) AttestRemote() ([]string, error) {
	if a.cert == nil {
		return nil, errors.New("attest: agent not enrolled")
	}
	nonceBytes, err := roundTrip(a.Addr, msgChal, nil)
	if err != nil {
		return nil, err
	}
	var nonce [tpm.NonceSize]byte
	copy(nonce[:], nonceBytes)
	quote, err := a.TPM.Quote(a.aikHandle, a.AIKAuth, nonce, tpm.NewPCRSelection(ima.MeasurementPCR))
	if err != nil {
		return nil, err
	}
	req := tpm.NewWriter()
	req.B32(a.cert.AIKPub)
	req.B32(a.cert.Sig)
	req.Raw(nonce[:])
	req.B32(quote.Composite)
	req.B32(quote.Signature)
	req.B32(ima.Marshal(a.IMA.List()))
	resp, err := roundTrip(a.Addr, msgAttest, req.Bytes())
	if err != nil {
		return nil, err
	}
	r := tpm.NewReader(resp)
	n := r.U32()
	var violations []string
	for i := uint32(0); i < n && r.Err() == nil; i++ {
		violations = append(violations, string(r.B16()))
	}
	return violations, r.Err()
}
