// Package attest implements the remote-attestation protocols that sit on
// top of the vTPM: privacy-CA enrollment of attestation identity keys
// (AIKs) and challenge-response quote verification. These are the consumers
// the vTPM exists for — a verifier off the host deciding whether a guest
// runs the software it claims — and the examples and experiments exercise
// them over the full guarded command path.
package attest

import (
	"bytes"
	"crypto"
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha1"
	"errors"
	"fmt"
	"io"
	"sync"

	"xvtpm/internal/tpm"
)

// Attestation errors.
var (
	ErrBadCert      = errors.New("attest: AIK certificate does not verify")
	ErrBadNonce     = errors.New("attest: unknown or reused nonce")
	ErrBadQuote     = errors.New("attest: quote signature does not verify")
	ErrWrongPCRs    = errors.New("attest: PCR values do not match the expected measurements")
	ErrBadChallenge = errors.New("attest: enrollment response does not match the challenge")
)

// AIKCert binds an AIK public key to a privacy-CA signature.
type AIKCert struct {
	AIKPub []byte // tpm wire form
	Sig    []byte // CA signature over SHA1(AIKPub)
}

// PrivacyCA issues AIK certificates after verifying, via the
// ActivateIdentity round trip, that the AIK lives in the TPM whose EK the
// requester presented.
type PrivacyCA struct {
	key *rsa.PrivateKey

	mu      sync.Mutex
	pending map[[sha1.Size]byte][]byte // aik digest → expected credential
}

// NewPrivacyCA creates a CA with a fresh signing key.
func NewPrivacyCA(bits int) (*PrivacyCA, error) {
	if bits == 0 {
		bits = tpm.DefaultRSABits
	}
	key, err := rsa.GenerateKey(rand.Reader, bits)
	if err != nil {
		return nil, err
	}
	return &PrivacyCA{key: key, pending: make(map[[sha1.Size]byte][]byte)}, nil
}

// PublicKey returns the CA verification key verifiers pin.
func (ca *PrivacyCA) PublicKey() *rsa.PublicKey { return &ca.key.PublicKey }

// Challenge starts an enrollment: the CA binds a fresh credential to the
// claimed (EK, AIK) pair and returns it encrypted to the EK. Only the TPM
// holding that EK can release it — via ActivateIdentity, under owner
// authorization.
func (ca *PrivacyCA) Challenge(ekPub, aikPub *rsa.PublicKey) (encCred []byte, err error) {
	cred := make([]byte, 20)
	if _, err := io.ReadFull(rand.Reader, cred); err != nil {
		return nil, err
	}
	encCred, err = tpm.BindEncrypt(nil, ekPub, cred)
	if err != nil {
		return nil, fmt.Errorf("attest: encrypting credential: %w", err)
	}
	ca.mu.Lock()
	ca.pending[sha1.Sum(tpm.MarshalPublicKey(aikPub))] = cred
	ca.mu.Unlock()
	return encCred, nil
}

// Issue completes an enrollment: the requester returns the released
// credential, proving TPM residency, and receives the AIK certificate.
func (ca *PrivacyCA) Issue(aikPub *rsa.PublicKey, cred []byte) (*AIKCert, error) {
	pubBytes := tpm.MarshalPublicKey(aikPub)
	digest := sha1.Sum(pubBytes)
	ca.mu.Lock()
	want, ok := ca.pending[digest]
	if ok {
		delete(ca.pending, digest)
	}
	ca.mu.Unlock()
	if !ok || !bytes.Equal(want, cred) {
		return nil, ErrBadChallenge
	}
	sig, err := rsa.SignPKCS1v15(rand.Reader, ca.key, crypto.SHA1, digest[:])
	if err != nil {
		return nil, err
	}
	return &AIKCert{AIKPub: pubBytes, Sig: sig}, nil
}

// VerifyCert checks an AIK certificate against a CA public key.
func VerifyCert(caPub *rsa.PublicKey, cert *AIKCert) (*rsa.PublicKey, error) {
	digest := sha1.Sum(cert.AIKPub)
	if err := rsa.VerifyPKCS1v15(caPub, crypto.SHA1, digest[:], cert.Sig); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCert, err)
	}
	return tpm.UnmarshalPublicKey(cert.AIKPub)
}

// Verifier is a remote party deciding whether a guest's measured state
// matches a reference. It pins a CA key and a set of expected PCR values.
type Verifier struct {
	caPub    *rsa.PublicKey
	expected map[int][tpm.DigestSize]byte

	mu     sync.Mutex
	nonces map[[tpm.NonceSize]byte]bool
}

// NewVerifier creates a verifier pinning caPub and expecting the given PCR
// values.
func NewVerifier(caPub *rsa.PublicKey, expected map[int][tpm.DigestSize]byte) *Verifier {
	exp := make(map[int][tpm.DigestSize]byte, len(expected))
	for k, v := range expected {
		exp[k] = v
	}
	return &Verifier{caPub: caPub, expected: exp, nonces: make(map[[tpm.NonceSize]byte]bool)}
}

// Challenge issues a fresh single-use nonce.
func (v *Verifier) Challenge() ([tpm.NonceSize]byte, error) {
	var n [tpm.NonceSize]byte
	if _, err := io.ReadFull(rand.Reader, n[:]); err != nil {
		return n, err
	}
	v.mu.Lock()
	v.nonces[n] = true
	v.mu.Unlock()
	return n, nil
}

// VerifyQuote validates one attestation response: certificate chain, nonce
// freshness, quote signature, and PCR expectations. The selection must
// cover every expected register.
func (v *Verifier) VerifyQuote(cert *AIKCert, nonce [tpm.NonceSize]byte, q *tpm.QuoteResult) error {
	v.mu.Lock()
	fresh := v.nonces[nonce]
	if fresh {
		delete(v.nonces, nonce) // single use
	}
	v.mu.Unlock()
	if !fresh {
		return ErrBadNonce
	}
	aikPub, err := VerifyCert(v.caPub, cert)
	if err != nil {
		return err
	}
	sel, vals, err := tpm.ParseQuoteComposite(q.Composite)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadQuote, err)
	}
	composite := tpm.CompositeHash(sel, vals)
	// Accepts both plain signatures and XBQ1 Merkle-batched blobs (one
	// signing-pool root signature plus this quote's inclusion proof).
	if err := tpm.VerifyBatchedQuote(aikPub, tpm.QuoteInfoDigest(composite, nonce), q.Signature); err != nil {
		return fmt.Errorf("%w: %v", ErrBadQuote, err)
	}
	// Map selection indices to values (vals are in ascending index order).
	byIndex := make(map[int][tpm.DigestSize]byte, len(vals))
	for i, idx := range sel.Indices() {
		if i < len(vals) {
			byIndex[idx] = vals[i]
		}
	}
	for idx, want := range v.expected {
		got, ok := byIndex[idx]
		if !ok {
			return fmt.Errorf("%w: PCR %d not quoted", ErrWrongPCRs, idx)
		}
		if got != want {
			return fmt.Errorf("%w: PCR %d is %x, want %x", ErrWrongPCRs, idx, got, want)
		}
	}
	return nil
}

// VerifyKeyCertification checks a TPM_CertifyKey result: the certification
// must verify under an AIK certified by the pinned CA, proving the target
// key lives in the same TPM as the AIK. Returns the certified public key.
func VerifyKeyCertification(caPub *rsa.PublicKey, aikCert *AIKCert, res *tpm.CertifyKeyResult, antiReplay [tpm.NonceSize]byte) (*rsa.PublicKey, error) {
	aikPub, err := VerifyCert(caPub, aikCert)
	if err != nil {
		return nil, err
	}
	digest := tpm.CertifyInfoDigest(res.Usage, res.Scheme, res.PubKey, antiReplay)
	if err := tpm.VerifySHA1(aikPub, digest, res.Signature); err != nil {
		return nil, fmt.Errorf("%w: key certification: %v", ErrBadQuote, err)
	}
	return tpm.UnmarshalPublicKey(res.PubKey)
}

// Enroll performs the full AIK enrollment for a guest TPM over its client:
// MakeIdentity, CA challenge, ActivateIdentity, certificate issue. It
// returns the certificate, the loaded AIK handle and the AIK auth used.
func Enroll(cli *tpm.Client, ca *PrivacyCA, ekPub *rsa.PublicKey, ownerAuth, srkAuth, aikAuth [tpm.AuthSize]byte, label string) (*AIKCert, uint32, error) {
	blob, aikPub, err := cli.MakeIdentity(ownerAuth, aikAuth, []byte(label))
	if err != nil {
		return nil, 0, fmt.Errorf("attest: MakeIdentity: %w", err)
	}
	handle, err := cli.LoadKey2(tpm.KHSRK, srkAuth, blob)
	if err != nil {
		return nil, 0, fmt.Errorf("attest: loading AIK: %w", err)
	}
	encCred, err := ca.Challenge(ekPub, aikPub)
	if err != nil {
		return nil, 0, err
	}
	cred, err := cli.ActivateIdentity(handle, ownerAuth, encCred)
	if err != nil {
		return nil, 0, fmt.Errorf("attest: ActivateIdentity: %w", err)
	}
	cert, err := ca.Issue(aikPub, cred)
	if err != nil {
		return nil, 0, err
	}
	return cert, handle, nil
}
