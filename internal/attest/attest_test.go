package attest

import (
	"crypto/sha1"
	"errors"
	"testing"

	"xvtpm/internal/tpm"
)

const testBits = 512

func authOf(s string) (a [tpm.AuthSize]byte) {
	h := sha1.Sum([]byte(s))
	copy(a[:], h[:])
	return a
}

var (
	ownerAuth = authOf("owner")
	srkAuth   = authOf("srk")
	aikAuth   = authOf("aik")
)

// rig is one guest TPM plus the attestation parties.
type rig struct {
	cli    *tpm.Client
	ca     *PrivacyCA
	cert   *AIKCert
	handle uint32
}

func newRig(t testing.TB, seed string) *rig {
	t.Helper()
	eng, err := tpm.New(tpm.Config{RSABits: testBits, Seed: []byte(seed)})
	if err != nil {
		t.Fatal(err)
	}
	cli := tpm.NewClient(tpm.DirectTransport{TPM: eng}, nil)
	if err := cli.Startup(tpm.STClear); err != nil {
		t.Fatal(err)
	}
	ekPub, err := cli.ReadPubek()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cli.TakeOwnership(ownerAuth, srkAuth); err != nil {
		t.Fatal(err)
	}
	ca, err := NewPrivacyCA(testBits)
	if err != nil {
		t.Fatal(err)
	}
	cert, handle, err := Enroll(cli, ca, ekPub, ownerAuth, srkAuth, aikAuth, "test-aik")
	if err != nil {
		t.Fatalf("Enroll: %v", err)
	}
	return &rig{cli: cli, ca: ca, cert: cert, handle: handle}
}

func TestEnrollmentIssuesVerifiableCert(t *testing.T) {
	r := newRig(t, "e1")
	if _, err := VerifyCert(r.ca.PublicKey(), r.cert); err != nil {
		t.Fatalf("VerifyCert: %v", err)
	}
	// Tampered certificate fails.
	bad := &AIKCert{AIKPub: r.cert.AIKPub, Sig: append([]byte(nil), r.cert.Sig...)}
	bad.Sig[0] ^= 0xFF
	if _, err := VerifyCert(r.ca.PublicKey(), bad); !errors.Is(err, ErrBadCert) {
		t.Fatalf("tampered cert err = %v", err)
	}
}

func TestEnrollmentRejectsWrongCredential(t *testing.T) {
	r := newRig(t, "e2")
	aikPub, err := tpm.UnmarshalPublicKey(r.cert.AIKPub)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ca.Issue(aikPub, []byte("guessed-credential")); !errors.Is(err, ErrBadChallenge) {
		t.Fatalf("err = %v", err)
	}
}

func TestFullAttestationRoundTrip(t *testing.T) {
	r := newRig(t, "a1")
	// The guest measures two stages.
	m0 := sha1.Sum([]byte("bios"))
	m1 := sha1.Sum([]byte("kernel"))
	v0, _ := r.cli.Extend(0, m0)
	v1, _ := r.cli.Extend(1, m1)

	verifier := NewVerifier(r.ca.PublicKey(), map[int][tpm.DigestSize]byte{0: v0, 1: v1})
	nonce, err := verifier.Challenge()
	if err != nil {
		t.Fatal(err)
	}
	q, err := r.cli.Quote(r.handle, aikAuth, nonce, tpm.NewPCRSelection(0, 1))
	if err != nil {
		t.Fatalf("Quote: %v", err)
	}
	if err := verifier.VerifyQuote(r.cert, nonce, q); err != nil {
		t.Fatalf("VerifyQuote: %v", err)
	}
}

func TestAttestationDetectsWrongMeasurements(t *testing.T) {
	r := newRig(t, "a2")
	good := sha1.Sum([]byte("kernel"))
	v0, _ := r.cli.Extend(0, good)
	verifier := NewVerifier(r.ca.PublicKey(), map[int][tpm.DigestSize]byte{0: v0})
	// The guest's PCR 0 drifts (rootkit loads).
	r.cli.Extend(0, sha1.Sum([]byte("rootkit")))
	nonce, _ := verifier.Challenge()
	q, err := r.cli.Quote(r.handle, aikAuth, nonce, tpm.NewPCRSelection(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := verifier.VerifyQuote(r.cert, nonce, q); !errors.Is(err, ErrWrongPCRs) {
		t.Fatalf("err = %v, want ErrWrongPCRs", err)
	}
}

func TestAttestationRejectsNonceReuse(t *testing.T) {
	r := newRig(t, "a3")
	v0, _ := r.cli.PCRRead(0)
	verifier := NewVerifier(r.ca.PublicKey(), map[int][tpm.DigestSize]byte{0: v0})
	nonce, _ := verifier.Challenge()
	q, err := r.cli.Quote(r.handle, aikAuth, nonce, tpm.NewPCRSelection(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := verifier.VerifyQuote(r.cert, nonce, q); err != nil {
		t.Fatal(err)
	}
	// Replaying the same quote (same nonce) fails.
	if err := verifier.VerifyQuote(r.cert, nonce, q); !errors.Is(err, ErrBadNonce) {
		t.Fatalf("replay err = %v", err)
	}
	// A made-up nonce fails too.
	var fake [tpm.NonceSize]byte
	if err := verifier.VerifyQuote(r.cert, fake, q); !errors.Is(err, ErrBadNonce) {
		t.Fatalf("fake nonce err = %v", err)
	}
}

func TestAttestationRejectsMissingPCR(t *testing.T) {
	r := newRig(t, "a4")
	v0, _ := r.cli.PCRRead(0)
	v5, _ := r.cli.PCRRead(5)
	verifier := NewVerifier(r.ca.PublicKey(), map[int][tpm.DigestSize]byte{0: v0, 5: v5})
	nonce, _ := verifier.Challenge()
	// Quote covers only PCR 0 — the verifier expects 5 as well.
	q, err := r.cli.Quote(r.handle, aikAuth, nonce, tpm.NewPCRSelection(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := verifier.VerifyQuote(r.cert, nonce, q); !errors.Is(err, ErrWrongPCRs) {
		t.Fatalf("err = %v", err)
	}
}

func TestKeyCertificationChain(t *testing.T) {
	r := newRig(t, "kc1")
	// A fresh signing key, certified by the enrolled AIK.
	keyAuth := authOf("app-key")
	blob, err := r.cli.CreateWrapKey(tpm.KHSRK, srkAuth, keyAuth, tpm.KeyParams{
		Usage: tpm.KeyUsageSigning, Scheme: tpm.SSRSASSAPKCS1v15SHA1, Bits: testBits,
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := r.cli.LoadKey2(tpm.KHSRK, srkAuth, blob)
	if err != nil {
		t.Fatal(err)
	}
	var antiReplay [tpm.NonceSize]byte
	antiReplay[0] = 0x42
	res, err := r.cli.CertifyKey(r.handle, aikAuth, h, keyAuth, antiReplay)
	if err != nil {
		t.Fatalf("CertifyKey: %v", err)
	}
	certifiedPub, err := VerifyKeyCertification(r.ca.PublicKey(), r.cert, res, antiReplay)
	if err != nil {
		t.Fatalf("VerifyKeyCertification: %v", err)
	}
	// The certified key really signs.
	digest := sha1.Sum([]byte("doc"))
	sig, err := r.cli.Sign(h, keyAuth, digest)
	if err != nil {
		t.Fatal(err)
	}
	if err := tpm.VerifySHA1(certifiedPub, digest[:], sig); err != nil {
		t.Fatalf("certified key signature: %v", err)
	}
	// Wrong anti-replay refuses.
	var other [tpm.NonceSize]byte
	if _, err := VerifyKeyCertification(r.ca.PublicKey(), r.cert, res, other); err == nil {
		t.Fatal("certification accepted under wrong anti-replay")
	}
}

func TestAttestationRejectsForeignAIK(t *testing.T) {
	r1 := newRig(t, "f1")
	r2 := newRig(t, "f2")
	v0, _ := r1.cli.PCRRead(0)
	verifier := NewVerifier(r1.ca.PublicKey(), map[int][tpm.DigestSize]byte{0: v0})
	nonce, _ := verifier.Challenge()
	// Quote signed by rig2's AIK but presented with rig1's cert.
	q, err := r2.cli.Quote(r2.handle, aikAuth, nonce, tpm.NewPCRSelection(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := verifier.VerifyQuote(r1.cert, nonce, q); !errors.Is(err, ErrBadQuote) {
		t.Fatalf("err = %v", err)
	}
}
