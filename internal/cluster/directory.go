package cluster

import (
	"fmt"
	"sort"
	"sync"

	"xvtpm/internal/vtpm"
)

// The placement directory is the cluster's single source of truth for
// instance ownership: one entry per guest key mapping to the owning host,
// the instance's local ID there, and a generation-fenced epoch. Every
// ownership transition — registration, a two-phase move, a failure-driven
// reassignment — bumps the epoch, and every epoch-checked write (see
// fencedStore) must present the current epoch, so a host acting on a stale
// view of ownership is rejected rather than trusted.

// PlacementState is one directory entry's ownership phase.
type PlacementState int

const (
	// Owned: exactly one host holds the instance.
	Owned PlacementState = iota
	// Moving: a two-phase handoff is open; the source still holds the
	// fenced instance and the destination is activating its copy.
	Moving
)

// String implements fmt.Stringer.
func (s PlacementState) String() string {
	if s == Moving {
		return "moving"
	}
	return "owned"
}

// Placement is one directory entry.
type Placement struct {
	// Host owns the instance (the move source while Moving).
	Host string
	// Dest is the move destination; empty unless Moving.
	Dest string
	// LocalID is the instance's ID on Host. It switches to the
	// destination's local ID only at CommitMove.
	LocalID vtpm.InstanceID
	// Epoch is the ownership generation: bumped by every transition, echoed
	// in every checkpoint header, checked on every bound write.
	Epoch uint64
	// State is the ownership phase.
	State PlacementState
}

// Directory is the fenced placement map. All methods are safe for
// concurrent use; per-key handoff serialization is the caller's job (the
// cluster holds a per-record lock across a whole two-phase move).
type Directory struct {
	mu      sync.Mutex
	entries map[string]Placement
}

// NewDirectory creates an empty directory.
func NewDirectory() *Directory {
	return &Directory{entries: make(map[string]Placement)}
}

// Register enters a freshly created instance at epoch 1.
func (d *Directory) Register(key, host string, id vtpm.InstanceID) (uint64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.entries[key]; ok {
		return 0, fmt.Errorf("cluster: key %q already placed", key)
	}
	d.entries[key] = Placement{Host: host, LocalID: id, Epoch: 1, State: Owned}
	return 1, nil
}

// Lookup returns the entry for key.
func (d *Directory) Lookup(key string) (Placement, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	p, ok := d.entries[key]
	return p, ok
}

// BeginMove opens a two-phase handoff src → dst: the epoch bumps and the
// entry enters Moving. Fails unless src owns the key outright (a concurrent
// move or reassignment loses the race here, deterministically).
func (d *Directory) BeginMove(key, src, dst string) (uint64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	p, ok := d.entries[key]
	if !ok {
		return 0, fmt.Errorf("cluster: key %q not placed", key)
	}
	if p.State != Owned || p.Host != src {
		return 0, fmt.Errorf("cluster: key %q is %s by %q, not owned by %q", key, p.State, p.Host, src)
	}
	if dst == src || dst == "" {
		return 0, fmt.Errorf("cluster: bad move destination %q for key %q", dst, key)
	}
	p.Epoch++
	p.State = Moving
	p.Dest = dst
	d.entries[key] = p
	return p.Epoch, nil
}

// CommitMove completes a handoff: dst owns the key at the move epoch under
// its own local ID. Fails unless the entry is still Moving to dst at
// exactly that epoch — a commit racing an abort (or a reassignment) loses.
func (d *Directory) CommitMove(key, dst string, id vtpm.InstanceID, epoch uint64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	p, ok := d.entries[key]
	if !ok {
		return fmt.Errorf("cluster: key %q not placed", key)
	}
	if p.State != Moving || p.Dest != dst || p.Epoch != epoch {
		return fmt.Errorf("cluster: key %q cannot commit to %q at epoch %d (%s by %q→%q at %d)",
			key, dst, epoch, p.State, p.Host, p.Dest, p.Epoch)
	}
	d.entries[key] = Placement{Host: dst, LocalID: id, Epoch: epoch, State: Owned}
	return nil
}

// AbortMove rolls an open handoff back to the source at a fresh epoch (so a
// straggling write from the abandoned destination, stamped with the move
// epoch, is rejected from then on). Returns the post-abort epoch.
func (d *Directory) AbortMove(key string, epoch uint64) (uint64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	p, ok := d.entries[key]
	if !ok {
		return 0, fmt.Errorf("cluster: key %q not placed", key)
	}
	if p.State != Moving || p.Epoch != epoch {
		return 0, fmt.Errorf("cluster: key %q cannot abort at epoch %d (%s at %d)", key, epoch, p.State, p.Epoch)
	}
	p.Epoch++
	p.State = Owned
	p.Dest = ""
	d.entries[key] = p
	return p.Epoch, nil
}

// Reassign forcibly re-homes a key — the failure-driven evacuation path. It
// succeeds from any state (the dead host cannot be asked to cooperate) and
// bumps the epoch past whatever the zombie last held.
func (d *Directory) Reassign(key, host string, id vtpm.InstanceID) (uint64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	p, ok := d.entries[key]
	if !ok {
		return 0, fmt.Errorf("cluster: key %q not placed", key)
	}
	p.Epoch++
	d.entries[key] = Placement{Host: host, LocalID: id, Epoch: p.Epoch, State: Owned}
	return p.Epoch, nil
}

// Remove drops a key (guest destroyed).
func (d *Directory) Remove(key string) {
	d.mu.Lock()
	delete(d.entries, key)
	d.mu.Unlock()
}

// AllowWrite is the durable fence: may host write key's state at epoch? True
// only for the current epoch, and only for the owner — or, mid-move, for
// either end of the open handoff (the source flushes its final checkpoint,
// the destination lands its first). Any stale epoch, and any host outside
// the current transition, is a zombie.
func (d *Directory) AllowWrite(key, host string, epoch uint64) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	p, ok := d.entries[key]
	if !ok || p.Epoch != epoch {
		return false
	}
	switch p.State {
	case Owned:
		return p.Host == host
	case Moving:
		return p.Host == host || p.Dest == host
	}
	return false
}

// Owners returns each host's keys (move sources count as owners), sorted,
// for drain planning and operator tooling.
func (d *Directory) Owners() map[string][]string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[string][]string)
	for key, p := range d.entries {
		out[p.Host] = append(out[p.Host], key)
	}
	for _, keys := range out {
		sort.Strings(keys)
	}
	return out
}

// Len returns the number of placed keys.
func (d *Directory) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.entries)
}
