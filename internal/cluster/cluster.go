// Package cluster federates N simulated hosts behind a generation-fenced
// placement directory (DESIGN.md §12): every guest key maps to exactly one
// owning host at an ownership epoch, every cross-host migration is a
// two-phase fenced handoff over the export/import envelope path, and any
// mid-handoff failure rolls back deterministically to exactly one owner.
// On top of the handoff primitive sit Drain — evacuating a host's whole
// fleet through a bounded-concurrency pipeline while guests keep
// dispatching (the pause window is per instance, never per host) — and a
// missed-heartbeat failure detector whose condemnation path revives a dead
// host's instances from their committed checkpoints on the survivors,
// fenced by epoch so the zombie's late writes and dispatches are rejected.
package cluster

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"sync"
	"time"

	"xvtpm"
	"xvtpm/internal/faults"
	"xvtpm/internal/metrics"
	"xvtpm/internal/store/logstore"
	"xvtpm/internal/tpm"
	"xvtpm/internal/vtpm"
)

// Config parameterizes a cluster.
type Config struct {
	// Hosts is the member count. Zero means 3.
	Hosts int
	// Mode selects every member's access-control guard. Federation's
	// shared-key distribution only applies to ModeImproved (baseline
	// persists plaintext and needs no key to share).
	Mode xvtpm.Mode
	// RSABits, Seed, Dom0Pages, Checkpoint, MaxDirtyCommands,
	// MaxDirtyInterval, PipelineDepth and Profile pass through to each
	// member's HostConfig.
	RSABits          int
	Seed             []byte
	Dom0Pages        int
	Checkpoint       vtpm.CheckpointPolicy
	MaxDirtyCommands int
	MaxDirtyInterval time.Duration
	PipelineDepth    int
	Profile          tpm.Profile
	// LogStore tunes the shared checkpoint log all members write through
	// their fenced prefixes. The NotFound sentinel is forced to
	// vtpm.ErrNoState.
	LogStore logstore.Config
	// TransferRetry bounds the migration transfer leg's retry loop; zero
	// fields take the vtpm defaults.
	TransferRetry vtpm.RetryPolicy
	// Injector, when set, decides one faults.OpTransfer verdict per
	// transfer-leg attempt — the chaos hook.
	Injector *faults.Injector
	// SuspectAfter is how long without a heartbeat before a member turns
	// Suspect; CondemnAfter is how much longer before it is Condemned.
	// Zeros mean 2s and 2s.
	SuspectAfter time.Duration
	CondemnAfter time.Duration
}

// Member is one federated host.
type Member struct {
	Name string
	Host *xvtpm.Host
	fs   *fencedStore

	// Guarded by the cluster mutex.
	fail     FailState
	lastBeat time.Time
	draining bool
}

// record tracks one guest across ownership changes. rec.mu serializes this
// key's ownership transitions (a whole two-phase move, or an evacuation
// step, holds it end to end); the current owner/guest pair is additionally
// guarded by the cluster mutex so readers never hold rec.mu.
type record struct {
	key  string
	spec xvtpm.GuestConfig
	mu   sync.Mutex

	// Guarded by the cluster mutex.
	host  string
	guest *xvtpm.Guest
}

// Cluster is the federation.
type Cluster struct {
	dir    *Directory
	shared vtpm.Store
	retry  vtpm.RetryPolicy
	inj    *faults.Injector
	mode   xvtpm.Mode

	suspectAfter time.Duration
	condemnAfter time.Duration

	mu      sync.Mutex
	members []*Member
	byName  map[string]*Member
	recs    map[string]*record
	rr      int

	migStarted   metrics.Counter
	migCommitted metrics.Counter
	migAborted   metrics.Counter
	migRetried   metrics.Counter
	evacuated    metrics.Counter
	blackout     *metrics.Histogram
}

// New boots a federation: the shared checkpoint log, the placement
// directory, one host per member writing through its fenced prefix, and —
// in improved mode — a cluster state-key master delivered to each member
// wrapped to its hardware-TPM migration bind key, so every member can open
// every member's committed checkpoints (the evacuation path) while channel
// keys stay host-local.
func New(cfg Config) (*Cluster, error) {
	n := cfg.Hosts
	if n == 0 {
		n = 3
	}
	if n < 2 {
		return nil, errors.New("cluster: need at least 2 hosts")
	}
	lcfg := cfg.LogStore
	lcfg.NotFound = vtpm.ErrNoState
	c := &Cluster{
		dir:          NewDirectory(),
		shared:       logstore.New(lcfg),
		retry:        cfg.TransferRetry,
		inj:          cfg.Injector,
		mode:         cfg.Mode,
		suspectAfter: cfg.SuspectAfter,
		condemnAfter: cfg.CondemnAfter,
		byName:       make(map[string]*Member),
		recs:         make(map[string]*record),
		blackout:     metrics.NewHistogram(nil),
	}
	if c.suspectAfter <= 0 {
		c.suspectAfter = 2 * time.Second
	}
	if c.condemnAfter <= 0 {
		c.condemnAfter = 2 * time.Second
	}
	// The federation master: a cluster-wide secret state-envelope keys
	// derive from. Deterministic under a seeded cluster so experiments
	// replay. 16 bytes: it must fit one OAEP block under the smallest bind
	// key the benchmarks use (RSA-512 ⇒ 22-byte capacity), and it is only
	// ever an HMAC key, never raw key material.
	var fedMaster []byte
	if cfg.Mode == xvtpm.ModeImproved {
		sum := sha256.Sum256(append([]byte("cluster-fed-master|"), cfg.Seed...))
		fedMaster = sum[:16]
	}
	now := time.Now()
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("h%d", i)
		fs := newFencedStore(name, c.dir, c.shared)
		var seed []byte
		if cfg.Seed != nil {
			seed = append(append([]byte(nil), cfg.Seed...), []byte("|"+name)...)
		}
		h, err := xvtpm.NewHost(xvtpm.HostConfig{
			Name:             name,
			Mode:             cfg.Mode,
			RSABits:          cfg.RSABits,
			Seed:             seed,
			Dom0Pages:        cfg.Dom0Pages,
			Checkpoint:       cfg.Checkpoint,
			MaxDirtyCommands: cfg.MaxDirtyCommands,
			MaxDirtyInterval: cfg.MaxDirtyInterval,
			PipelineDepth:    cfg.PipelineDepth,
			Profile:          cfg.Profile,
			Store:            fs,
		})
		if err != nil {
			return nil, fmt.Errorf("cluster: booting %s: %w", name, err)
		}
		if fedMaster != nil {
			// The join must precede any protected instance state; members
			// are freshly booted here, so nothing is sealed under the
			// host-local master yet.
			wrapped, err := tpm.BindEncrypt(nil, h.MigrationIdentity(), fedMaster)
			if err != nil {
				return nil, fmt.Errorf("cluster: wrapping federation master for %s: %w", name, err)
			}
			if err := h.FederationJoin(wrapped); err != nil {
				return nil, fmt.Errorf("cluster: %s joining federation: %w", name, err)
			}
		}
		m := &Member{Name: name, Host: h, fs: fs, fail: Alive, lastBeat: now}
		c.members = append(c.members, m)
		c.byName[name] = m
	}
	return c, nil
}

// Members returns the federation's members in boot order.
func (c *Cluster) Members() []*Member {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*Member(nil), c.members...)
}

// Member returns a member by name.
func (c *Cluster) Member(name string) (*Member, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.byName[name]
	return m, ok
}

// Directory exposes the placement directory (read-mostly tooling).
func (c *Cluster) Directory() *Directory { return c.dir }

// record returns the tracked record for key.
func (c *Cluster) record(key string) (*record, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rec, ok := c.recs[key]
	if !ok {
		return nil, fmt.Errorf("cluster: no guest %q", key)
	}
	return rec, nil
}

// Owner returns the member currently owning key and the live guest handle.
func (c *Cluster) Owner(key string) (string, *xvtpm.Guest, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rec, ok := c.recs[key]
	if !ok {
		return "", nil, fmt.Errorf("cluster: no guest %q", key)
	}
	return rec.host, rec.guest, nil
}

// pickHost chooses a placement target round-robin over members that are
// alive and not draining.
func (c *Cluster) pickHost() (*Member, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := 0; i < len(c.members); i++ {
		m := c.members[(c.rr+i)%len(c.members)]
		if m.fail == Alive && !m.draining {
			c.rr = (c.rr + i + 1) % len(c.members)
			return m, nil
		}
	}
	return nil, errors.New("cluster: no schedulable host")
}

// CreateGuest places a new guest on an automatically chosen member. The
// guest's name is its cluster-wide placement key and must be unique.
func (c *Cluster) CreateGuest(spec xvtpm.GuestConfig) (*xvtpm.Guest, error) {
	m, err := c.pickHost()
	if err != nil {
		return nil, err
	}
	return c.CreateGuestOn(m.Name, spec)
}

// CreateGuestOn places a new guest on a named member and registers it in
// the directory at epoch 1. The instance's first bound checkpoint carries
// that epoch, arming the durable fence.
func (c *Cluster) CreateGuestOn(host string, spec xvtpm.GuestConfig) (*xvtpm.Guest, error) {
	m, ok := c.Member(host)
	if !ok {
		return nil, fmt.Errorf("cluster: no member %q", host)
	}
	if c.failStateOf(m) == Condemned {
		return nil, fmt.Errorf("cluster: member %q is condemned", host)
	}
	key := spec.Name
	if key == "" {
		return nil, errors.New("cluster: guest needs a name (its placement key)")
	}
	g, err := m.Host.CreateGuest(spec)
	if err != nil {
		return nil, err
	}
	epoch, err := c.dir.Register(key, m.Name, g.Instance)
	if err != nil {
		m.Host.DestroyGuest(g) //nolint:errcheck // unwinding a lost registration race
		return nil, err
	}
	if err := m.Host.Manager.SetEpoch(g.Instance, epoch); err != nil {
		return nil, err
	}
	m.fs.bind(vtpm.StateName(g.Instance), key)
	if err := m.Host.Manager.Checkpoint(g.Instance); err != nil {
		return nil, fmt.Errorf("cluster: first fenced checkpoint of %q: %w", key, err)
	}
	rec := &record{key: key, spec: spec, host: m.Name, guest: g}
	c.mu.Lock()
	c.recs[key] = rec
	c.mu.Unlock()
	return g, nil
}

// DestroyGuest tears a guest down cluster-wide: host-side teardown, then
// the directory entry and record.
func (c *Cluster) DestroyGuest(key string) error {
	rec, err := c.record(key)
	if err != nil {
		return err
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	c.mu.Lock()
	host, g := rec.host, rec.guest
	c.mu.Unlock()
	m, ok := c.Member(host)
	if !ok {
		return fmt.Errorf("cluster: no member %q", host)
	}
	m.fs.unbind(vtpm.StateName(g.Instance))
	if err := m.Host.DestroyGuest(g); err != nil {
		return err
	}
	c.dir.Remove(key)
	c.mu.Lock()
	delete(c.recs, key)
	c.mu.Unlock()
	return nil
}

// Keys returns all placed guest keys (unordered).
func (c *Cluster) Keys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.recs))
	for k := range c.recs {
		out = append(out, k)
	}
	return out
}

// keysOn snapshots the keys whose record currently lives on host.
func (c *Cluster) keysOn(host string) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []string
	for k, rec := range c.recs {
		if rec.host == host {
			out = append(out, k)
		}
	}
	return out
}

// Stats is a point-in-time federation snapshot.
type Stats struct {
	Guests       int
	MigStarted   uint64
	MigCommitted uint64
	MigAborted   uint64
	MigRetried   uint64
	Evacuated    uint64
	// Blackout is the per-instance guest-visible pause distribution across
	// committed migrations (fence → destination reattached).
	Blackout metrics.HistogramSnapshot
	Members  []MemberStats
}

// MemberStats is one member's slice of the snapshot.
type MemberStats struct {
	Name         string
	Fail         FailState
	Draining     bool
	Guests       int
	FenceRejects uint64
	StoreRejects uint64
}

// ClusterStats snapshots the federation.
func (c *Cluster) ClusterStats() Stats {
	owners := c.dir.Owners()
	c.mu.Lock()
	s := Stats{
		Guests:       len(c.recs),
		MigStarted:   c.migStarted.Load(),
		MigCommitted: c.migCommitted.Load(),
		MigAborted:   c.migAborted.Load(),
		MigRetried:   c.migRetried.Load(),
		Evacuated:    c.evacuated.Load(),
		Blackout:     c.blackout.Snapshot(),
	}
	for _, m := range c.members {
		s.Members = append(s.Members, MemberStats{
			Name:         m.Name,
			Fail:         m.fail,
			Draining:     m.draining,
			Guests:       len(owners[m.Name]),
			FenceRejects: m.Host.Manager.FenceRejects(),
			StoreRejects: m.fs.Rejects(),
		})
	}
	c.mu.Unlock()
	return s
}

// RegisterMetrics exposes the federation's instruments in reg.
func (c *Cluster) RegisterMetrics(reg *metrics.Registry) error {
	for name, ctr := range map[string]*metrics.Counter{
		"cluster_migrations_started":   &c.migStarted,
		"cluster_migrations_committed": &c.migCommitted,
		"cluster_migrations_aborted":   &c.migAborted,
		"cluster_transfer_retries":     &c.migRetried,
		"cluster_evacuated_instances":  &c.evacuated,
	} {
		if err := reg.RegisterCounter(name, "federation "+name, ctr); err != nil {
			return err
		}
	}
	if err := reg.RegisterHistogram("cluster_migration_blackout_ns",
		"guest-visible pause per committed migration", c.blackout); err != nil {
		return err
	}
	return reg.RegisterGaugeFunc("cluster_store_rejects",
		"writes the epoch fence refused, summed over members", func() float64 {
			var n uint64
			for _, m := range c.Members() {
				n += m.fs.Rejects()
			}
			return float64(n)
		})
}

// Close shuts every member down, draining pending checkpoint work.
func (c *Cluster) Close() error {
	var errs []error
	for _, m := range c.Members() {
		if c.failStateOf(m) == Condemned {
			// A condemned member's store is sealed; its final flush can only
			// fail, and its state has already been adopted elsewhere.
			continue
		}
		if err := m.Host.Close(); err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", m.Name, err))
		}
	}
	return errors.Join(errs...)
}
