package cluster

import (
	"crypto/sha1"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"xvtpm"
	"xvtpm/internal/faults"
	"xvtpm/internal/metrics"
	"xvtpm/internal/tpm"
	"xvtpm/internal/vtpm"
)

// testCluster boots a small deterministic improved-mode federation.
func testCluster(t *testing.T, hosts int, tweak ...func(*Config)) *Cluster {
	t.Helper()
	cfg := Config{
		Hosts:   hosts,
		Mode:    xvtpm.ModeImproved,
		RSABits: 512,
		Seed:    []byte("cluster-test"),
	}
	for _, fn := range tweak {
		fn(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() {
		if err := c.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return c
}

func mkGuest(t *testing.T, c *Cluster, name string) *xvtpm.Guest {
	t.Helper()
	g, err := c.CreateGuest(xvtpm.GuestConfig{
		Name: name, Kernel: []byte("kernel-" + name), Pages: 16,
	})
	if err != nil {
		t.Fatalf("CreateGuest %s: %v", name, err)
	}
	return g
}

func TestClusterMigrateRoundTrip(t *testing.T) {
	c := testCluster(t, 2)
	g := mkGuest(t, c, "web")
	var d [tpm.DigestSize]byte
	d[0] = 7
	before, err := g.TPM.Extend(10, d)
	if err != nil {
		t.Fatalf("Extend: %v", err)
	}
	if err := c.Migrate("web", "h1"); err != nil {
		t.Fatalf("Migrate: %v", err)
	}
	owner, g2, err := c.Owner("web")
	if err != nil || owner != "h1" {
		t.Fatalf("Owner = %q, %v; want h1", owner, err)
	}
	after, err := g2.TPM.PCRRead(10)
	if err != nil {
		t.Fatalf("PCRRead on h1: %v", err)
	}
	if after != before {
		t.Fatalf("PCR 10 changed across migration")
	}
	pl, ok := c.Directory().Lookup("web")
	if !ok || pl.Host != "h1" || pl.State != Owned || pl.Epoch != 2 {
		t.Fatalf("placement after move = %+v", pl)
	}
	// The source manager no longer knows the instance.
	h0, _ := c.Member("h0")
	if _, err := h0.Host.Manager.InstanceInfo(g.Instance); err == nil {
		t.Fatal("source instance survived a committed move")
	}
	// Migrating back works and bumps the epoch again.
	if err := c.Migrate("web", "h0"); err != nil {
		t.Fatalf("Migrate back: %v", err)
	}
	pl, _ = c.Directory().Lookup("web")
	if pl.Host != "h0" || pl.Epoch != 3 {
		t.Fatalf("placement after return = %+v", pl)
	}
}

// The ErrFenced redirect round-trip (satellite): a fenced instance rejects
// dispatch with a FencedError carrying the new owner and epoch, the guest
// sees RCInstanceMoved, and lifting the fence restores service.
func TestFenceRedirectRoundTrip(t *testing.T) {
	c := testCluster(t, 2)
	g := mkGuest(t, c, "web")
	h0, _ := c.Member("h0")
	mgr := h0.Host.Manager
	if err := mgr.FenceInstance(g.Instance, "h1", 42); err != nil {
		t.Fatalf("FenceInstance: %v", err)
	}
	// Manager-level dispatch rejection carries the redirect.
	fe, ok := mgr.InstanceFence(g.Instance)
	if !ok || fe.Owner != "h1" || fe.Epoch != 42 {
		t.Fatalf("InstanceFence = %+v, %v", fe, ok)
	}
	if !errors.Is(fe, vtpm.ErrFenced) {
		t.Fatal("FencedError does not match ErrFenced")
	}
	// Guest-visible rejection is the RCInstanceMoved code.
	_, err := g.TPM.GetRandom(8)
	if err == nil {
		t.Fatal("fenced dispatch succeeded")
	}
	if !tpm.IsTPMError(err, vtpm.RCInstanceMoved) {
		t.Fatalf("fenced dispatch error = %v; want RCInstanceMoved", err)
	}
	if mgr.FenceRejects() == 0 {
		t.Fatal("fence reject not counted")
	}
	if err := mgr.UnfenceInstance(g.Instance); err != nil {
		t.Fatalf("UnfenceInstance: %v", err)
	}
	if _, err := g.TPM.GetRandom(8); err != nil {
		t.Fatalf("dispatch after unfence: %v", err)
	}
}

// A transfer leg that fails permanently must roll back to exactly one
// owner: the source keeps the guest, the epoch advances past the move, and
// the guest keeps serving.
func TestMigrateRollbackOnTransferFault(t *testing.T) {
	inj := faults.NewInjector(1)
	inj.SetPolicy(faults.OpTransfer, faults.Policy{PermanentRate: 1})
	c := testCluster(t, 2, func(cfg *Config) { cfg.Injector = inj })
	g := mkGuest(t, c, "web")
	var d [tpm.DigestSize]byte
	d[0] = 9
	want, err := g.TPM.Extend(5, d)
	if err != nil {
		t.Fatalf("Extend: %v", err)
	}
	if err := c.Migrate("web", "h1"); err == nil {
		t.Fatal("Migrate succeeded through a permanent transfer fault")
	}
	owner, g2, err := c.Owner("web")
	if err != nil || owner != "h0" {
		t.Fatalf("Owner after rollback = %q, %v; want h0", owner, err)
	}
	pl, _ := c.Directory().Lookup("web")
	if pl.State != Owned || pl.Host != "h0" || pl.Epoch != 3 {
		t.Fatalf("placement after rollback = %+v (want owned h0 at epoch 3)", pl)
	}
	got, err := g2.TPM.PCRRead(5)
	if err != nil {
		t.Fatalf("PCRRead after rollback: %v", err)
	}
	if got != want {
		t.Fatal("PCR state lost across rollback")
	}
	// h1 must hold nothing.
	h1, _ := c.Member("h1")
	if n := len(h1.Host.Manager.Instances()); n != 0 {
		t.Fatalf("destination kept %d instances after rollback", n)
	}
	s := c.ClusterStats()
	if s.MigAborted != 1 || s.MigCommitted != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

// Transient transfer faults are retried within the policy and the move
// still commits.
func TestMigrateRetriesTransientTransferFault(t *testing.T) {
	inj := faults.NewInjector(7)
	// ~half the attempts fail; 4 attempts make success overwhelmingly
	// likely, and the seed is fixed anyway.
	inj.SetPolicy(faults.OpTransfer, faults.Policy{ErrorRate: 0.5})
	c := testCluster(t, 2, func(cfg *Config) {
		cfg.Injector = inj
		cfg.TransferRetry = vtpm.RetryPolicy{MaxAttempts: 8, Deadline: time.Second}
	})
	mkGuest(t, c, "web")
	// Ping-pong until the injector has provably fired at least once; with
	// 50% transient faults the expected number of round trips is ~1.
	var committed int
	for i := 0; i < 20; i++ {
		dst := "h1"
		if i%2 == 1 {
			dst = "h0"
		}
		if err := c.Migrate("web", dst); err == nil {
			committed++
		}
		if committed > 0 && c.ClusterStats().MigRetried > 0 {
			break
		}
	}
	if committed == 0 {
		t.Fatal("no migration committed under 50% transient faults with retry")
	}
	if c.ClusterStats().MigRetried == 0 {
		t.Fatal("no transfer retries counted")
	}
}

// The failure-driven evacuation path: kill a host, condemn it, revive its
// guests on the survivors with zero committed-generation loss, and verify
// the zombie's writes and dispatches are fenced off.
func TestEvacuateDeadHost(t *testing.T) {
	c := testCluster(t, 3)
	const n = 8
	digests := make(map[string][tpm.DigestSize]byte)
	old := make(map[string]*xvtpm.Guest)
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("g%d", i)
		g, err := c.CreateGuestOn("h1", xvtpm.GuestConfig{
			Name: key, Kernel: []byte("k-" + key), Pages: 16,
		})
		if err != nil {
			t.Fatalf("CreateGuestOn: %v", err)
		}
		var d [tpm.DigestSize]byte
		d[0] = byte(i + 1)
		if _, err := g.TPM.Extend(11, d); err != nil {
			t.Fatalf("Extend: %v", err)
		}
		old[key] = g
	}
	h1, _ := c.Member("h1")
	// Everything dirty is committed before the "crash" — the shared log
	// holds each guest's final generation.
	if err := h1.Host.Manager.CheckpointAll(); err != nil {
		t.Fatalf("CheckpointAll: %v", err)
	}
	for key, g := range old {
		dg, err := h1.Host.Manager.PCRDigest(g.Instance)
		if err != nil {
			t.Fatalf("PCRDigest: %v", err)
		}
		digests[key] = dg
	}

	// h1 goes silent; h0 and h2 keep beating.
	base := time.Now()
	for _, name := range []string{"h0", "h1", "h2"} {
		c.Beat(name, base)
	}
	c.Beat("h0", base.Add(5*time.Second))
	c.Beat("h2", base.Add(5*time.Second))
	if st, _ := c.FailStateOf("h1"); st != Alive {
		t.Fatalf("h1 pre-check state = %v", st)
	}
	if newly := c.CheckFailures(base.Add(3 * time.Second)); len(newly) != 0 {
		t.Fatalf("condemned too early: %v", newly)
	}
	if st, _ := c.FailStateOf("h1"); st != Suspect {
		t.Fatalf("h1 at 3s = %v; want suspect", st)
	}
	newly := c.CheckFailures(base.Add(5 * time.Second))
	if len(newly) != 1 || newly[0] != "h1" {
		t.Fatalf("condemned = %v; want [h1]", newly)
	}

	stats, err := c.Evacuate("h1", 4)
	if err != nil {
		t.Fatalf("Evacuate: %v", err)
	}
	if stats.Revived != n || stats.Failed != 0 {
		t.Fatalf("EvacStats = %+v", stats)
	}
	for key, want := range digests {
		owner, g, err := c.Owner(key)
		if err != nil {
			t.Fatalf("Owner(%s): %v", key, err)
		}
		if owner == "h1" {
			t.Fatalf("%s still owned by the dead host", key)
		}
		m, _ := c.Member(owner)
		got, err := m.Host.Manager.PCRDigest(g.Instance)
		if err != nil {
			t.Fatalf("survivor PCRDigest(%s): %v", key, err)
		}
		if got != want {
			t.Fatalf("%s lost committed state across evacuation", key)
		}
		// The revived guest serves.
		if _, err := g.TPM.GetRandom(8); err != nil {
			t.Fatalf("revived %s dispatch: %v", key, err)
		}
	}
	// Zombie dispatches are fenced with a redirect.
	var zombieRejects int
	for _, g := range old {
		if _, err := g.TPM.GetRandom(8); tpm.IsTPMError(err, vtpm.RCInstanceMoved) {
			zombieRejects++
		}
	}
	if zombieRejects != n {
		t.Fatalf("zombie dispatch rejects = %d; want %d", zombieRejects, n)
	}
	// Zombie writes die at the sealed store.
	for _, g := range old {
		if err := h1.Host.Manager.Checkpoint(g.Instance); err == nil {
			t.Fatal("zombie checkpoint succeeded past the seal")
		}
	}
	if h1.fs.Rejects() == 0 {
		t.Fatal("no zombie store rejects counted")
	}
	// A condemned host cannot be a migration destination.
	if err := c.Migrate("g0", "h1"); err == nil {
		t.Fatal("migration to a condemned host succeeded")
	}
}

// Concurrent Drain + guest dispatch (satellite): guests hammer Extend and
// GetRandom through sessions while their host drains under them. No
// command may be lost or double-executed (each session verifies its full
// PCR chain), and every per-op blackout is bounded by the session deadline.
func TestDrainUnderChurn(t *testing.T) {
	c := testCluster(t, 3)
	const guests = 12
	sessions := make([]*Session, guests)
	for i := 0; i < guests; i++ {
		key := fmt.Sprintf("g%d", i)
		if _, err := c.CreateGuestOn("h0", xvtpm.GuestConfig{
			Name: key, Kernel: []byte("k-" + key), Pages: 16,
		}); err != nil {
			t.Fatalf("CreateGuestOn: %v", err)
		}
		sessions[i] = c.Session(key)
	}

	stop := make(chan struct{})
	var ops atomic.Int64
	var wg sync.WaitGroup
	errCh := make(chan error, guests)
	for i, s := range sessions {
		wg.Add(1)
		go func(i int, s *Session) {
			defer wg.Done()
			pcr := uint32(8 + i%8)
			rng := rand.New(rand.NewSource(int64(i))) //nolint:gosec // test traffic
			for step := 0; ; step++ {
				select {
				case <-stop:
					return
				default:
				}
				if step%3 == 0 {
					if _, err := s.GetRandom(16); err != nil {
						errCh <- fmt.Errorf("session %d GetRandom: %w", i, err)
						return
					}
				} else {
					var d [tpm.DigestSize]byte
					rng.Read(d[:])
					if _, err := s.Extend(pcr, d); err != nil {
						errCh <- fmt.Errorf("session %d Extend: %w", i, err)
						return
					}
				}
				ops.Add(1)
			}
		}(i, s)
	}

	stats, err := c.Drain("h0", 4)
	if err != nil {
		t.Fatalf("Drain: %v", err)
	}
	// Let the churn keep running against the new owners briefly.
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatalf("churn failed: %v", err)
	default:
	}
	if stats.Moved != guests || stats.Failed != 0 {
		t.Fatalf("DrainStats = %+v", stats)
	}
	if n := len(c.keysOn("h0")); n != 0 {
		t.Fatalf("%d guests left on the drained host", n)
	}
	if ops.Load() == 0 {
		t.Fatal("no guest ops completed during the drain")
	}
	// Exactly-once: every session's full chain must verify on the final
	// owner.
	for i, s := range sessions {
		if err := s.Verify(); err != nil {
			t.Fatalf("session %d chain: %v", i, err)
		}
	}
	// Blackouts were per-instance and bounded.
	snap := c.ClusterStats().Blackout
	if snap.Count == 0 {
		t.Fatal("no blackout samples recorded")
	}
}

// The durable fence: a write stamped with a stale epoch is rejected by the
// shared store even when the writing manager believes it owns the instance.
func TestFencedStoreRejectsStaleEpoch(t *testing.T) {
	c := testCluster(t, 2)
	g := mkGuest(t, c, "web")
	owner, _, _ := c.Owner("web")
	m, _ := c.Member(owner)
	// Stamp the instance with a stale epoch and force a checkpoint: the
	// directory is at epoch 1, the blob claims 7.
	if err := m.Host.Manager.SetEpoch(g.Instance, 7); err != nil {
		t.Fatalf("SetEpoch: %v", err)
	}
	err := m.Host.Manager.Checkpoint(g.Instance)
	if err == nil {
		t.Fatal("stale-epoch checkpoint accepted")
	}
	if !IsFencedWrite(errors.Unwrap(err)) && !IsFencedWrite(err) {
		t.Fatalf("stale write error = %v; want fenced-write rejection", err)
	}
	if m.fs.Rejects() == 0 {
		t.Fatal("rejection not counted")
	}
	// Restoring the true epoch restores writability.
	if err := m.Host.Manager.SetEpoch(g.Instance, 1); err != nil {
		t.Fatalf("SetEpoch back: %v", err)
	}
	if err := m.Host.Manager.Checkpoint(g.Instance); err != nil {
		t.Fatalf("checkpoint at true epoch: %v", err)
	}
}

func TestSessionExtendChainAcrossMigrations(t *testing.T) {
	c := testCluster(t, 2)
	mkGuest(t, c, "web")
	s := c.Session("web")
	// Interleave extends with migrations; the chain must stay intact.
	var want [tpm.DigestSize]byte
	seed, err := s.PCRRead(9)
	if err != nil {
		t.Fatalf("PCRRead: %v", err)
	}
	want = seed
	hosts := []string{"h1", "h0"}
	for i := 0; i < 6; i++ {
		var d [tpm.DigestSize]byte
		d[0] = byte(i + 1)
		got, err := s.Extend(9, d)
		if err != nil {
			t.Fatalf("Extend %d: %v", i, err)
		}
		h := sha1.New()
		h.Write(want[:])
		h.Write(d[:])
		copy(want[:], h.Sum(nil))
		if got != want {
			t.Fatalf("chain diverged at step %d", i)
		}
		if err := c.Migrate("web", hosts[i%2]); err != nil {
			t.Fatalf("Migrate %d: %v", i, err)
		}
	}
	if err := s.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestClusterMetricsRegistry(t *testing.T) {
	c := testCluster(t, 2)
	mkGuest(t, c, "web")
	if err := c.Migrate("web", "h1"); err != nil {
		t.Fatalf("Migrate: %v", err)
	}
	reg := metrics.NewRegistry()
	if err := c.RegisterMetrics(reg); err != nil {
		t.Fatalf("RegisterMetrics: %v", err)
	}
	var sink countingWriter
	if err := reg.WritePrometheus(&sink); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	if sink.n == 0 {
		t.Fatal("empty exposition")
	}
}

type countingWriter struct{ n int }

func (w *countingWriter) Write(p []byte) (int, error) { w.n += len(p); return len(p), nil }
