package cluster

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"xvtpm"
	"xvtpm/internal/faults"
	"xvtpm/internal/vtpm"
	"xvtpm/internal/xen"
)

// errTransferFault is the injected transfer-leg failure (classification is
// applied per verdict at the injection site).
var errTransferFault = errors.New("cluster: transfer leg failed")

// Migrate moves one guest to dst through the fenced two-phase handoff:
//
//  1. Quiesce: the source instance is fenced (dispatch rejected with a
//     redirect) and its pending write-behind checkpoints flushed at the
//     current epoch.
//  2. Open: the directory bumps the epoch and enters Moving; the fence and
//     the instance are re-stamped with the move epoch.
//  3. Transfer: the guest's domain image and guard-protected vTPM envelope
//     travel (encoded, with bounded retry/backoff/deadline and the
//     OpTransfer chaos hook per attempt).
//  4. Verify + activate: the destination imports, and its PCR bank must
//     equal the quiesced source's before anything else happens.
//  5. Commit: the directory flips ownership, the destination's checkpoint
//     name is bound (epoch-checked from then on), and only then do the
//     source copies die.
//
// Any failure after step 2 rolls back deterministically: the directory
// aborts the move at a fresh epoch (fencing off straggler writes stamped
// with the move epoch), the destination copy is destroyed, and the source
// guest is restored, unfenced and re-checkpointed — exactly one live owner
// on every path.
func (c *Cluster) Migrate(key, dstName string) error {
	rec, err := c.record(key)
	if err != nil {
		return err
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()

	c.mu.Lock()
	srcName, g := rec.host, rec.guest
	c.mu.Unlock()
	if srcName == dstName {
		return nil
	}
	src, ok := c.Member(srcName)
	if !ok {
		return fmt.Errorf("cluster: no member %q", srcName)
	}
	dst, ok := c.Member(dstName)
	if !ok {
		return fmt.Errorf("cluster: no member %q", dstName)
	}
	if c.failStateOf(dst) == Condemned {
		return fmt.Errorf("cluster: destination %q is condemned", dstName)
	}
	if c.failStateOf(src) == Condemned {
		return fmt.Errorf("cluster: source %q is condemned — evacuate, don't migrate", srcName)
	}

	c.migStarted.Inc()
	start := time.Now()

	// 1. Quiesce before the epoch moves: fence (the redirect's epoch is
	// refined once the move is open), drain the in-flight dispatch, and
	// flush pending write-behind work while the current epoch still admits
	// this member's writes — so no checkpoint is ever in flight with a
	// stale stamp once the directory bumps.
	if err := src.Host.Manager.FenceInstance(g.Instance, dstName, 0); err != nil {
		return err
	}
	if err := src.Host.Manager.Checkpoint(g.Instance); err != nil {
		src.Host.Manager.UnfenceInstance(g.Instance) //nolint:errcheck // fence rollback
		return fmt.Errorf("cluster: pre-move flush of %q: %w", key, err)
	}

	// 2. Open the move.
	epoch, err := c.dir.BeginMove(key, srcName, dstName)
	if err != nil {
		src.Host.Manager.UnfenceInstance(g.Instance) //nolint:errcheck // fence rollback
		return err
	}
	src.Host.Manager.FenceInstance(g.Instance, dstName, epoch) //nolint:errcheck // refines the epoch-0 fence just installed
	if err := src.Host.Manager.SetEpoch(g.Instance, epoch); err != nil {
		return c.rollback(rec, src, g, nil, epoch, err)
	}

	domImg, err := src.Host.BeginMigration(g)
	if err != nil {
		return c.rollback(rec, src, g, nil, epoch, err)
	}
	srcPCRs, err := src.Host.Manager.PCRDigest(g.Instance)
	if err != nil {
		return c.rollback(rec, src, g, domImg, epoch, err)
	}
	img, err := src.Host.Manager.ExportInstance(g.Instance, dst.Host.MigrationIdentity())
	if err != nil {
		return c.rollback(rec, src, g, domImg, epoch, err)
	}
	img.Epoch = epoch // the destination's first checkpoint must carry the move epoch
	enc := vtpm.EncodeInstanceImage(img)

	// 3. The transfer leg: wire-format round trip under bounded retry, with
	// the chaos injector deciding each attempt's fate.
	var rimg *vtpm.InstanceImage
	err = c.retry.Do("transfer", func(attempt int) error {
		if attempt > 1 {
			c.migRetried.Inc()
		}
		if c.inj != nil {
			switch c.inj.Decide(faults.OpTransfer) {
			case faults.OutcomeOK:
			case faults.OutcomePermanent:
				return faults.Permanent(fmt.Errorf("%w: permanent, %s→%s", errTransferFault, srcName, dstName))
			default:
				return faults.Transient(fmt.Errorf("%w: torn mid-flight, %s→%s", errTransferFault, srcName, dstName))
			}
		}
		var derr error
		rimg, derr = vtpm.DecodeInstanceImage(enc)
		return derr
	})
	if err != nil {
		return c.rollback(rec, src, g, domImg, epoch, err)
	}

	// 4. Activate and verify.
	g2, err := dst.Host.ReceiveImage(domImg, rimg)
	if err != nil {
		return c.rollback(rec, src, g, domImg, epoch, err)
	}
	dstPCRs, err := dst.Host.Manager.PCRDigest(g2.Instance)
	if err == nil && dstPCRs != srcPCRs {
		err = xvtpm.ErrMigrationDiverged
	}
	if err == nil {
		dst.fs.bind(vtpm.StateName(g2.Instance), key)
		if cerr := dst.Host.Manager.Checkpoint(g2.Instance); cerr != nil {
			dst.fs.unbind(vtpm.StateName(g2.Instance))
			err = fmt.Errorf("cluster: first fenced checkpoint on %s: %w", dstName, cerr)
		}
	}
	if err != nil {
		dst.Host.DestroyGuest(g2) //nolint:errcheck // discarding the unverified copy
		return c.rollback(rec, src, g, domImg, epoch, err)
	}

	// 5. Commit. After this, the source is a bystander: its copy dies, but
	// even if teardown fails the directory and the epoch fence already
	// exclude it.
	if err := c.dir.CommitMove(key, dstName, g2.Instance, epoch); err != nil {
		dst.fs.unbind(vtpm.StateName(g2.Instance))
		dst.Host.DestroyGuest(g2) //nolint:errcheck // discarding the uncommitted copy
		return c.rollback(rec, src, g, domImg, epoch, err)
	}
	c.mu.Lock()
	rec.host, rec.guest = dstName, g2
	c.mu.Unlock()
	c.blackout.Record(time.Since(start))
	c.migCommitted.Inc()

	src.fs.unbind(vtpm.StateName(g.Instance))
	if err := src.Host.FinishMigration(g); err != nil {
		return fmt.Errorf("cluster: source teardown after committed move of %q: %w", key, err)
	}
	return nil
}

// rollback unwinds a failed handoff to exactly one owner: directory abort
// at a fresh epoch, source guest restored (from its saved image if the
// domain was already suspended, by reattach otherwise), fence lifted, and a
// forced checkpoint stamping the post-abort epoch durable.
func (c *Cluster) rollback(rec *record, src *Member, g *xvtpm.Guest, domImg *xen.DomainImage, moveEpoch uint64, cause error) error {
	c.migAborted.Inc()
	newEpoch, dirErr := c.dir.AbortMove(rec.key, moveEpoch)

	var rg *xvtpm.Guest
	var restoreErr error
	if domImg != nil {
		rg, restoreErr = src.Host.CancelMigration(g, domImg)
	} else {
		rg, restoreErr = src.Host.ReattachGuest(g)
	}
	if restoreErr == nil && dirErr == nil {
		var errs []error
		if err := src.Host.Manager.SetEpoch(rg.Instance, newEpoch); err != nil {
			errs = append(errs, err)
		}
		if err := src.Host.Manager.UnfenceInstance(rg.Instance); err != nil {
			errs = append(errs, err)
		}
		if err := src.Host.Manager.Checkpoint(rg.Instance); err != nil {
			errs = append(errs, fmt.Errorf("cluster: post-abort checkpoint of %q: %w", rec.key, err))
		}
		c.mu.Lock()
		rec.guest = rg
		c.mu.Unlock()
		if len(errs) > 0 {
			return errors.Join(append([]error{cause}, errs...)...)
		}
		return cause
	}
	return errors.Join(cause, dirErr, restoreErr)
}

// DrainStats summarizes one Drain.
type DrainStats struct {
	Requested int
	Moved     int
	Failed    int
	Elapsed   time.Duration
}

// Throughput returns moved instances per second.
func (s DrainStats) Throughput() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Moved) / s.Elapsed.Seconds()
}

// Drain evacuates every guest off one member through a bounded-concurrency
// migration pipeline, spreading them round-robin over the schedulable
// members. Guests keep dispatching throughout — each instance pauses only
// for its own handoff window, never for the host's. The member is marked
// draining so the placer stops handing it new guests; it stays alive and
// serves its remaining guests until their turn comes.
func (c *Cluster) Drain(hostName string, workers int) (DrainStats, error) {
	m, ok := c.Member(hostName)
	if !ok {
		return DrainStats{}, fmt.Errorf("cluster: no member %q", hostName)
	}
	c.mu.Lock()
	m.draining = true
	var targets []string
	for _, t := range c.members {
		if t != m && t.fail == Alive && !t.draining {
			targets = append(targets, t.Name)
		}
	}
	c.mu.Unlock()
	if len(targets) == 0 {
		return DrainStats{}, errors.New("cluster: nowhere to drain to")
	}
	if workers <= 0 {
		workers = 16
	}
	keys := c.keysOn(hostName)
	stats := DrainStats{Requested: len(keys)}
	start := time.Now()

	var moved, failed atomic.Int64
	var next atomic.Int64
	work := make(chan string)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for key := range work {
				dst := targets[int(next.Add(1))%len(targets)]
				if err := c.Migrate(key, dst); err != nil {
					failed.Add(1)
					continue
				}
				moved.Add(1)
			}
		}()
	}
	for _, key := range keys {
		work <- key
	}
	close(work)
	wg.Wait()
	stats.Moved = int(moved.Load())
	stats.Failed = int(failed.Load())
	stats.Elapsed = time.Since(start)
	return stats, nil
}
