package cluster

import (
	"testing"

	"xvtpm/internal/vtpm"
)

// FuzzPlacementDirectoryOps drives the placement directory through arbitrary
// op sequences and checks the fencing invariants that the whole federation
// design leans on:
//
//   - epochs are strictly monotonic per key across every transition
//     (register, begin/commit/abort, reassign) — a re-registered key restarts
//     its history;
//   - an Owned entry has no destination; a Moving entry has a destination
//     distinct from its source and from "";
//   - AllowWrite admits only the current epoch, and only the owner (plus the
//     destination while a move is open) — never a third host, never a stale
//     or future epoch;
//   - a committed move lands exactly the destination as owner at the move
//     epoch; an aborted move returns to the source at a strictly later one.
func FuzzPlacementDirectoryOps(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5})
	f.Add([]byte{0, 0x11, 1, 0x12, 2, 0x12, 1, 0x21, 3, 0x21})
	f.Add([]byte{0, 0xff, 4, 0xff, 5, 0x01, 0, 0x01, 1, 0x01, 2, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDirectory()
		hosts := []string{"h0", "h1", "h2", "h3"}
		keys := []string{"a", "b", "c"}
		// lastEpoch tracks the highest epoch ever observed per key while the
		// key stays placed; any transition must move strictly past it.
		lastEpoch := make(map[string]uint64)
		// openEpoch remembers each key's move epoch while Moving.
		openEpoch := make(map[string]uint64)

		check := func(key string) {
			p, ok := d.Lookup(key)
			if !ok {
				return
			}
			if last := lastEpoch[key]; p.Epoch < last {
				t.Fatalf("key %q epoch regressed: %d after %d", key, p.Epoch, last)
			}
			lastEpoch[key] = p.Epoch
			switch p.State {
			case Owned:
				if p.Dest != "" {
					t.Fatalf("key %q owned with leftover dest %q", key, p.Dest)
				}
			case Moving:
				if p.Dest == "" || p.Dest == p.Host {
					t.Fatalf("key %q moving with bad dest %q (host %q)", key, p.Dest, p.Host)
				}
			default:
				t.Fatalf("key %q in unknown state %d", key, p.State)
			}
			// The fence: exactly the expected host set writes at exactly the
			// current epoch.
			for _, h := range hosts {
				want := p.Host == h || (p.State == Moving && p.Dest == h)
				if got := d.AllowWrite(key, h, p.Epoch); got != want {
					t.Fatalf("key %q AllowWrite(%q, %d) = %v, want %v (state %s %q→%q)",
						key, h, p.Epoch, got, want, p.State, p.Host, p.Dest)
				}
				if d.AllowWrite(key, h, p.Epoch-1) {
					t.Fatalf("key %q admits stale epoch %d for %q", key, p.Epoch-1, h)
				}
				if d.AllowWrite(key, h, p.Epoch+1) {
					t.Fatalf("key %q admits future epoch %d for %q", key, p.Epoch+1, h)
				}
			}
		}

		for i := 0; i+1 < len(data); i += 2 {
			op, arg := data[i]%6, data[i+1]
			key := keys[int(arg)%len(keys)]
			host := hosts[int(arg>>4)%len(hosts)]
			switch op {
			case 0:
				if _, err := d.Register(key, host, vtpm.InstanceID(arg)); err == nil {
					// A fresh registration legally restarts the epoch history.
					delete(lastEpoch, key)
					delete(openEpoch, key)
				}
			case 1:
				p, _ := d.Lookup(key)
				if e, err := d.BeginMove(key, p.Host, host); err == nil {
					openEpoch[key] = e
					if e != p.Epoch+1 {
						t.Fatalf("key %q BeginMove epoch %d, want %d", key, e, p.Epoch+1)
					}
				}
			case 2:
				e := openEpoch[key]
				if err := d.CommitMove(key, host, vtpm.InstanceID(arg), e); err == nil {
					p, _ := d.Lookup(key)
					if p.Host != host || p.State != Owned || p.Epoch != e {
						t.Fatalf("key %q after commit: %+v, want %q owned at %d", key, p, host, e)
					}
					delete(openEpoch, key)
				}
			case 3:
				e := openEpoch[key]
				if ne, err := d.AbortMove(key, e); err == nil {
					if ne <= e {
						t.Fatalf("key %q abort epoch %d not past move epoch %d", key, ne, e)
					}
					delete(openEpoch, key)
				}
			case 4:
				prev, placed := d.Lookup(key)
				if e, err := d.Reassign(key, host, vtpm.InstanceID(arg)); err == nil {
					if !placed || e != prev.Epoch+1 {
						t.Fatalf("key %q Reassign epoch %d (was placed=%v at %d)", key, e, placed, prev.Epoch)
					}
					delete(openEpoch, key)
				}
			case 5:
				d.Remove(key)
				delete(lastEpoch, key)
				delete(openEpoch, key)
			}
			check(key)
		}

		// Owners must account for every placed key exactly once.
		total := 0
		for _, ks := range d.Owners() {
			total += len(ks)
		}
		if total != d.Len() {
			t.Fatalf("Owners lists %d keys, directory holds %d", total, d.Len())
		}
	})
}
