package cluster

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"xvtpm/internal/faults"
	"xvtpm/internal/metrics"
	"xvtpm/internal/vtpm"
)

// fencedStore is one member's view of the cluster's shared checkpoint
// store: every name is qualified with the member's prefix (so hosts never
// collide), and writes to names bound to a placement key are epoch-checked
// against the directory — the durable half of the fence. A condemned
// member's store is sealed outright, so a zombie host's late checkpoint
// writes die here no matter what its manager believes about ownership.
//
// Names not (yet) bound to a key pass through unchecked: the manager
// persists an instance at creation and at import before the cluster has
// bound it, and those writes are the member's own private names.

// errZombieWrite is the root of every fenced-store rejection. Rejections
// are permanent by classification: retrying cannot make a stale epoch
// current again.
var errZombieWrite = errors.New("cluster: write fenced off by placement directory")

// IsFencedWrite reports whether err is a fenced-store rejection.
func IsFencedWrite(err error) bool { return errors.Is(err, errZombieWrite) }

type fencedStore struct {
	host   string
	dir    *Directory
	shared vtpm.Store

	sealed  atomic.Bool
	rejects metrics.Counter

	mu    sync.Mutex
	bound map[string]string // local blob name → placement key
}

func newFencedStore(host string, dir *Directory, shared vtpm.Store) *fencedStore {
	return &fencedStore{host: host, dir: dir, shared: shared, bound: make(map[string]string)}
}

// qualify maps a member-local blob name into the shared namespace.
func (s *fencedStore) qualify(name string) string { return s.host + "/" + name }

// bind attaches a local blob name to a placement key: writes to it are
// epoch-checked from now on.
func (s *fencedStore) bind(name, key string) {
	s.mu.Lock()
	s.bound[name] = key
	s.mu.Unlock()
}

// unbind detaches a local blob name after ownership left this member.
func (s *fencedStore) unbind(name string) {
	s.mu.Lock()
	delete(s.bound, name)
	s.mu.Unlock()
}

// seal rejects every subsequent write — the condemned-host switch.
func (s *fencedStore) seal() { s.sealed.Store(true) }

// Rejects counts writes the fence refused.
func (s *fencedStore) Rejects() uint64 { return s.rejects.Load() }

// Put implements vtpm.Store with the epoch check.
func (s *fencedStore) Put(name string, data []byte) error {
	if s.sealed.Load() {
		s.rejects.Inc()
		return faults.Permanent(fmt.Errorf("%w: host %q condemned", errZombieWrite, s.host))
	}
	s.mu.Lock()
	key, isBound := s.bound[name]
	s.mu.Unlock()
	if isBound {
		_, epoch, _, err := vtpm.UnwrapCheckpointEpoch(data)
		if err != nil {
			return faults.Permanent(fmt.Errorf("cluster: unstampable checkpoint for %q: %w", name, err))
		}
		if !s.dir.AllowWrite(key, s.host, epoch) {
			s.rejects.Inc()
			return faults.Permanent(fmt.Errorf("%w: host %q epoch %d stale for key %q", errZombieWrite, s.host, epoch, key))
		}
	}
	return s.shared.Put(s.qualify(name), data)
}

// Get implements vtpm.Store. Reads stay open even on a sealed store: a
// zombie reading its own stale state is harmless, and forensics wants it.
func (s *fencedStore) Get(name string) ([]byte, error) {
	return s.shared.Get(s.qualify(name))
}

// Delete implements vtpm.Store. Sealed members may not delete either — a
// zombie must not destroy the committed state a survivor will revive from.
func (s *fencedStore) Delete(name string) error {
	if s.sealed.Load() {
		s.rejects.Inc()
		return faults.Permanent(fmt.Errorf("%w: host %q condemned", errZombieWrite, s.host))
	}
	return s.shared.Delete(s.qualify(name))
}

// List implements vtpm.Store over the member's own prefix.
func (s *fencedStore) List() ([]string, error) {
	all, err := s.shared.List()
	if err != nil {
		return nil, err
	}
	prefix := s.host + "/"
	var out []string
	for _, n := range all {
		if strings.HasPrefix(n, prefix) {
			out = append(out, strings.TrimPrefix(n, prefix))
		}
	}
	return out, nil
}
