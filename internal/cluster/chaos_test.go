// Cluster chaos: a seeded transfer-leg fault storm racing live sessions and
// concurrent migrations, meant to run under `go test -race` (see
// `make chaos`). The injector throws transient and permanent faults at the
// migration transfer leg while sessions stream Extend/GetRandom through
// every handoff; afterwards injection stops and the federation must hold
// the contract the design promises — exactly one owner per guest, every
// session's PCR chain intact, every guest still serving.
//
// Override the storm seed with CHAOS_SEED=<int64> to replay a schedule; the
// active seed is logged either way so a CI failure is reproducible.
package cluster

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"xvtpm"
	"xvtpm/internal/faults"
	"xvtpm/internal/tpm"
	"xvtpm/internal/vtpm"
)

const defaultClusterChaosSeed int64 = 0xFED5EED

func clusterChaosSeed(t *testing.T) int64 {
	if env := os.Getenv("CHAOS_SEED"); env != "" {
		seed, err := strconv.ParseInt(env, 0, 64)
		if err != nil {
			t.Fatalf("CHAOS_SEED=%q: %v", env, err)
		}
		return seed
	}
	return defaultClusterChaosSeed
}

func TestClusterChaosStorm(t *testing.T) {
	seed := clusterChaosSeed(t)
	t.Logf("cluster chaos seed %d (replay with CHAOS_SEED=%d)", seed, seed)

	inj := faults.NewInjector(seed)
	inj.SetPolicy(faults.OpTransfer, faults.Policy{ErrorRate: 0.15, PermanentRate: 0.05})
	c := testCluster(t, 3, func(cfg *Config) {
		cfg.Injector = inj
		cfg.TransferRetry = vtpm.RetryPolicy{MaxAttempts: 4, Deadline: 2 * time.Second}
		cfg.Dom0Pages = 16384
	})

	const guests = 12
	hosts := []string{"h0", "h1", "h2"}
	keys := make([]string, guests)
	for i := range keys {
		keys[i] = fmt.Sprintf("storm-%d", i)
		if _, err := c.CreateGuest(xvtpm.GuestConfig{
			Name: keys[i], Kernel: []byte("k-" + keys[i]), Pages: 16,
		}); err != nil {
			t.Fatalf("CreateGuest %s: %v", keys[i], err)
		}
	}

	var stop atomic.Bool
	var wg sync.WaitGroup

	// One session per guest, each the sole writer of its PCR, hammering
	// Extend + GetRandom straight through every fence and handoff.
	sessions := make([]*Session, guests)
	for i, key := range keys {
		sessions[i] = c.Session(key)
		wg.Add(1)
		go func(i int, s *Session) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(i))) //nolint:gosec // deterministic workload
			pcr := uint32(8 + i%8)
			for !stop.Load() {
				var d [tpm.DigestSize]byte
				rng.Read(d[:]) //nolint:errcheck // never fails
				if _, err := s.Extend(pcr, d); err != nil {
					t.Errorf("session %d Extend: %v", i, err)
					return
				}
				if _, err := s.GetRandom(8); err != nil {
					t.Errorf("session %d GetRandom: %v", i, err)
					return
				}
			}
		}(i, sessions[i])
	}

	// Migration drivers shuffle guests between hosts under the fault storm.
	const drivers, movesPerDriver = 3, 25
	for d := 0; d < drivers; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed ^ int64(0x9E3779B9*(d+1)))) //nolint:gosec // deterministic schedule
			for n := 0; n < movesPerDriver; n++ {
				key := keys[rng.Intn(len(keys))]
				dst := hosts[rng.Intn(len(hosts))]
				// Rollbacks under permanent faults are expected; what is not
				// tolerated is asserted after the storm.
				c.Migrate(key, dst) //nolint:errcheck // storm leg
			}
		}(d)
	}

	// Let the storm run on its own clock: drivers finish their schedules,
	// then the sessions stand down.
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	time.Sleep(300 * time.Millisecond)
	stop.Store(true)
	<-done

	inj.SetDisabled(true)
	stats := c.ClusterStats()
	t.Logf("storm: %d started, %d committed, %d aborted, %d transfer retries",
		stats.MigStarted, stats.MigCommitted, stats.MigAborted, stats.MigRetried)
	if stats.MigStarted != stats.MigCommitted+stats.MigAborted {
		t.Fatalf("migration accounting leak: %d started != %d committed + %d aborted",
			stats.MigStarted, stats.MigCommitted, stats.MigAborted)
	}

	// Exactly one owner per guest: the directory says Owned, the record
	// agrees, the owner's manager holds the instance, and a live dispatch
	// round-trips.
	ownedPerHost := make(map[string]int)
	for _, key := range keys {
		pl, ok := c.Directory().Lookup(key)
		if !ok {
			t.Fatalf("key %q lost its placement", key)
		}
		if pl.State != Owned || pl.Dest != "" {
			t.Fatalf("key %q not settled after the storm: %+v", key, pl)
		}
		owner, g, err := c.Owner(key)
		if err != nil {
			t.Fatalf("Owner(%q): %v", key, err)
		}
		if owner != pl.Host {
			t.Fatalf("key %q: record says %q, directory says %q", key, owner, pl.Host)
		}
		m, _ := c.Member(owner)
		if _, err := m.Host.Manager.InstanceInfo(g.Instance); err != nil {
			t.Fatalf("key %q: owner %q does not hold instance %d: %v", key, owner, g.Instance, err)
		}
		if _, err := g.TPM.GetRandom(4); err != nil {
			t.Fatalf("key %q does not serve after the storm: %v", key, err)
		}
		ownedPerHost[owner]++
	}

	// No orphaned copies: every manager holds exactly the instances the
	// directory assigns it.
	total := 0
	for _, m := range c.Members() {
		n := len(m.Host.Manager.Instances())
		if n != ownedPerHost[m.Name] {
			t.Fatalf("%s holds %d instances, directory assigns it %d", m.Name, n, ownedPerHost[m.Name])
		}
		total += n
	}
	if total != guests {
		t.Fatalf("%d live instances across the cluster, want %d", total, guests)
	}

	// Every session's chain survived: nothing lost, nothing doubled.
	for i, s := range sessions {
		if err := s.Verify(); err != nil {
			t.Fatalf("session %d chain: %v", i, err)
		}
	}
}
