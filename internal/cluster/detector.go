package cluster

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"xvtpm/internal/vtpm"
)

// The failure detector: members heartbeat the directory; a member that
// misses beats long enough turns Suspect, then Condemned. Condemnation is
// one-way — the member's fenced store is sealed (its late writes die), its
// instances are fenced on its own manager (its guests' late dispatches are
// redirected), and every guest it owned is revived on a survivor from its
// last committed checkpoint at a freshly bumped epoch. Time is passed in
// explicitly so experiments drive the state machine without real waiting.

// FailState is one member's liveness verdict.
type FailState int

const (
	// Alive members heartbeat on schedule.
	Alive FailState = iota
	// Suspect members have missed beats for SuspectAfter; they take no new
	// placements but are not yet acted on (a stall may recover).
	Suspect
	// Condemned members missed beats for SuspectAfter+CondemnAfter; they
	// are fenced, sealed and evacuated, and never return.
	Condemned
)

// String implements fmt.Stringer.
func (s FailState) String() string {
	switch s {
	case Suspect:
		return "suspect"
	case Condemned:
		return "condemned"
	}
	return "alive"
}

// Beat records a heartbeat from a member at time now. A Suspect member
// recovers to Alive; a Condemned member does not (its beat is the zombie
// talking).
func (c *Cluster) Beat(name string, now time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.byName[name]
	if !ok || m.fail == Condemned {
		return
	}
	m.lastBeat = now
	m.fail = Alive
}

// failStateOf reads one member's liveness under the cluster mutex.
func (c *Cluster) failStateOf(m *Member) FailState {
	c.mu.Lock()
	defer c.mu.Unlock()
	return m.fail
}

// FailStateOf returns a member's liveness verdict.
func (c *Cluster) FailStateOf(name string) (FailState, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.byName[name]
	if !ok {
		return Alive, false
	}
	return m.fail, true
}

// CheckFailures advances the detector to time now and returns the names of
// members newly condemned by this check (already-condemned members are not
// repeated). The caller decides when to Evacuate them — typically
// immediately.
func (c *Cluster) CheckFailures(now time.Time) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var condemned []string
	for _, m := range c.members {
		if m.fail == Condemned {
			continue
		}
		silent := now.Sub(m.lastBeat)
		switch {
		case silent > c.suspectAfter+c.condemnAfter:
			m.fail = Condemned
			condemned = append(condemned, m.Name)
		case silent > c.suspectAfter:
			m.fail = Suspect
		default:
			m.fail = Alive
		}
	}
	return condemned
}

// Condemn marks a member Condemned directly (operator action or test
// harness); the usual path is CheckFailures.
func (c *Cluster) Condemn(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.byName[name]
	if !ok {
		return fmt.Errorf("cluster: no member %q", name)
	}
	m.fail = Condemned
	return nil
}

// EvacStats summarizes one evacuation.
type EvacStats struct {
	Requested int
	Revived   int
	Failed    int
	Elapsed   time.Duration
	// ZombieStoreRejects is the dead member's fenced-store rejection count
	// after sealing — every one a late write that would have resurrected
	// stale state.
	ZombieStoreRejects uint64
}

// Evacuate revives every guest a condemned member owned on the survivors,
// from the last committed checkpoint in the shared store:
//
//   - the dead member's store is sealed (zombie writes rejected);
//   - per guest: the committed blob is read from the shared log under the
//     dead member's prefix, adopted by a survivor (the federation master
//     lets it open the envelope), re-registered in the directory at a
//     bumped epoch, and bound + checkpointed under the survivor's prefix;
//   - the instance is fenced on the dead member's own manager, so a zombie
//     host's guests get redirects, not execution.
//
// Work fans out over a bounded worker pool. The member must already be
// Condemned (by CheckFailures or Condemn).
func (c *Cluster) Evacuate(hostName string, workers int) (EvacStats, error) {
	m, ok := c.Member(hostName)
	if !ok {
		return EvacStats{}, fmt.Errorf("cluster: no member %q", hostName)
	}
	if c.failStateOf(m) != Condemned {
		return EvacStats{}, fmt.Errorf("cluster: member %q is not condemned", hostName)
	}
	m.fs.seal()

	// Prefer alive, non-draining members like Drain does; if every
	// survivor is draining, revive there anyway — an evacuation is an
	// emergency, and a draining member beats losing the guests.
	c.mu.Lock()
	var survivors, fallback []*Member
	for _, t := range c.members {
		if t == m || t.fail == Condemned {
			continue
		}
		fallback = append(fallback, t)
		if t.fail == Alive && !t.draining {
			survivors = append(survivors, t)
		}
	}
	c.mu.Unlock()
	if len(survivors) == 0 {
		survivors = fallback
	}
	if len(survivors) == 0 {
		return EvacStats{}, errors.New("cluster: no survivor to evacuate to")
	}
	if workers <= 0 {
		workers = 16
	}
	keys := c.keysOn(hostName)
	stats := EvacStats{Requested: len(keys)}
	start := time.Now()

	var revived, failed atomic.Int64
	var next atomic.Int64
	work := make(chan string)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for key := range work {
				dst := survivors[int(next.Add(1))%len(survivors)]
				if err := c.evacuateOne(key, m, dst); err != nil {
					failed.Add(1)
					continue
				}
				revived.Add(1)
			}
		}()
	}
	for _, key := range keys {
		work <- key
	}
	close(work)
	wg.Wait()
	stats.Revived = int(revived.Load())
	stats.Failed = int(failed.Load())
	stats.Elapsed = time.Since(start)
	stats.ZombieStoreRejects = m.fs.Rejects()
	return stats, nil
}

// evacuateOne revives one guest of a condemned member on dst.
func (c *Cluster) evacuateOne(key string, dead, dst *Member) error {
	rec, err := c.record(key)
	if err != nil {
		return err
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	c.mu.Lock()
	stillHere := rec.host == dead.Name
	c.mu.Unlock()
	if !stillHere {
		// A racing migration committed this guest elsewhere first.
		return nil
	}
	pl, ok := c.dir.Lookup(key)
	if !ok {
		return fmt.Errorf("cluster: key %q lost its placement", key)
	}
	// The authoritative bytes: the dead member's last *committed*
	// checkpoint, read straight from the shared log under its prefix.
	blob, err := c.shared.Get(dead.fs.qualify(vtpm.StateName(pl.LocalID)))
	if err != nil {
		return fmt.Errorf("cluster: committed checkpoint of %q: %w", key, err)
	}
	g, err := dst.Host.AdoptGuest(rec.spec, pl.LocalID, blob)
	if err != nil {
		return fmt.Errorf("cluster: %s adopting %q: %w", dst.Name, key, err)
	}
	epoch, err := c.dir.Reassign(key, dst.Name, g.Instance)
	if err != nil {
		dst.Host.DestroyGuest(g) //nolint:errcheck // unwinding a lost reassignment race
		return err
	}
	// Fence the zombie's copy on its own manager: a dead host that is
	// merely partitioned still rejects and redirects its guests' dispatches
	// instead of executing against superseded state.
	dead.Host.Manager.FenceInstance(pl.LocalID, dst.Name, epoch) //nolint:errcheck // instance may already be gone
	if err := dst.Host.Manager.SetEpoch(g.Instance, epoch); err != nil {
		return err
	}
	dst.fs.bind(vtpm.StateName(g.Instance), key)
	if err := dst.Host.Manager.Checkpoint(g.Instance); err != nil {
		return fmt.Errorf("cluster: fenced checkpoint of revived %q: %w", key, err)
	}
	c.mu.Lock()
	rec.host, rec.guest = dst.Name, g
	c.mu.Unlock()
	c.evacuated.Inc()
	return nil
}
