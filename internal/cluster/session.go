package cluster

import (
	"crypto/sha1"
	"errors"
	"fmt"
	"time"

	"xvtpm"
	"xvtpm/internal/tpm"
	"xvtpm/internal/vtpm"
)

// Session is a guest-side command handle that survives ownership moves: it
// resolves the guest's current owner per call, follows fence redirects, and
// keeps Extend exactly-once across handoffs.
//
// The protocol exploits what the fence guarantees: a fence rejection (or a
// rejection before the frontend accepted the command) happened *before*
// execution, so retrying is always safe. Every other failure — a frontend
// that closed mid-flight, a torn connection — is ambiguous: the command may
// have executed with its response lost. For idempotent reads (GetRandom,
// PCRRead) the session retries blindly. For Extend, the one guest-visible
// mutation in the workload, the session reconciles: it tracks the expected
// PCR chain value, re-reads the register on the current owner, and either
// observes its extend landed (chain advanced to exactly the expected value)
// or proves it did not (chain unchanged) and retries. A chain at any third
// value means another writer touched the register — the session is built
// for the one-writer-per-PCR discipline the experiments use, and reports
// that as corruption rather than guessing.
//
// Sessions drive TPM 1.2 guests (the workload profile of the federation
// experiments); GetRandom also supports 2.0 guests.
type Session struct {
	c   *Cluster
	key string

	// OpDeadline bounds one logical operation including all redirects and
	// retries across handoffs. Zero means 30s.
	OpDeadline time.Duration

	// Redirects counts fence redirects followed; Reconciled counts
	// ambiguous Extends proven landed by the chain re-read; Retried counts
	// all retried attempts.
	Redirects  uint64
	Reconciled uint64
	Retried    uint64

	shadow map[uint32][tpm.DigestSize]byte
}

// Session opens a command handle for one guest key.
func (c *Cluster) Session(key string) *Session {
	return &Session{c: c, key: key, shadow: make(map[uint32][tpm.DigestSize]byte)}
}

// errSessionChain reports a PCR chain at a value neither pre- nor
// post-extend — a second writer, or a lost/duplicated command.
var errSessionChain = errors.New("cluster: PCR chain diverged")

func (s *Session) deadline() time.Time {
	d := s.OpDeadline
	if d <= 0 {
		d = 30 * time.Second
	}
	return time.Now().Add(d)
}

// resolve returns the guest's current live handle.
func (s *Session) resolve() (*xvtpm.Guest, error) {
	_, g, err := s.c.Owner(s.key)
	return g, err
}

// fenceRejected reports whether err is a fence redirect — a rejection the
// manager issued before the guard or engine ran, proving the command never
// executed.
func fenceRejected(err error) bool {
	return tpm.IsTPMError(err, vtpm.RCInstanceMoved) || errors.Is(err, vtpm.ErrFenced)
}

func (s *Session) backoff() { time.Sleep(200 * time.Microsecond) }

// GetRandom draws n random bytes, retrying blindly across handoffs (the
// command has no guest-visible state, so at-least-once is exactly-once).
func (s *Session) GetRandom(n int) ([]byte, error) {
	dl := s.deadline()
	var lastErr error
	for time.Now().Before(dl) {
		g, err := s.resolve()
		if err != nil {
			return nil, err
		}
		var out []byte
		if g.TPM2 != nil {
			out, err = g.TPM2.GetRandom(n)
		} else {
			out, err = g.TPM.GetRandom(n)
		}
		if err == nil {
			return out, nil
		}
		if fenceRejected(err) {
			s.Redirects++
		}
		s.Retried++
		lastErr = err
		s.backoff()
	}
	return nil, fmt.Errorf("cluster: GetRandom on %q deadline exhausted: %w", s.key, lastErr)
}

// PCRRead reads one PCR on the current owner, retrying across handoffs.
func (s *Session) PCRRead(pcr uint32) ([tpm.DigestSize]byte, error) {
	dl := s.deadline()
	var zero [tpm.DigestSize]byte
	var lastErr error
	for time.Now().Before(dl) {
		g, err := s.resolve()
		if err != nil {
			return zero, err
		}
		if g.TPM == nil {
			return zero, fmt.Errorf("cluster: session %q: PCRRead needs a 1.2 guest", s.key)
		}
		v, err := g.TPM.PCRRead(pcr)
		if err == nil {
			return v, nil
		}
		if fenceRejected(err) {
			s.Redirects++
		}
		s.Retried++
		lastErr = err
		s.backoff()
	}
	return zero, fmt.Errorf("cluster: PCRRead on %q deadline exhausted: %w", s.key, lastErr)
}

// chain computes the TPM extend function: SHA1(old ∥ digest).
func chain(old, digest [tpm.DigestSize]byte) [tpm.DigestSize]byte {
	h := sha1.New()
	h.Write(old[:])
	h.Write(digest[:])
	var out [tpm.DigestSize]byte
	copy(out[:], h.Sum(nil))
	return out
}

// Extend extends one PCR exactly once across handoffs and returns the new
// register value. The session must be the register's only writer.
func (s *Session) Extend(pcr uint32, digest [tpm.DigestSize]byte) ([tpm.DigestSize]byte, error) {
	var zero [tpm.DigestSize]byte
	prev, ok := s.shadow[pcr]
	if !ok {
		v, err := s.PCRRead(pcr)
		if err != nil {
			return zero, err
		}
		prev = v
	}
	want := chain(prev, digest)
	dl := s.deadline()
	var lastErr error
	for time.Now().Before(dl) {
		g, err := s.resolve()
		if err != nil {
			return zero, err
		}
		if g.TPM == nil {
			return zero, fmt.Errorf("cluster: session %q: Extend needs a 1.2 guest", s.key)
		}
		v, err := g.TPM.Extend(pcr, digest)
		if err == nil {
			if v != want {
				return zero, fmt.Errorf("%w: key %q PCR %d extended to unexpected value", errSessionChain, s.key, pcr)
			}
			s.shadow[pcr] = want
			return want, nil
		}
		lastErr = err
		s.Retried++
		if fenceRejected(err) {
			// Provably not executed: the fence rejects before the guard and
			// engine run. Retry against the new owner.
			s.Redirects++
			s.backoff()
			continue
		}
		// Ambiguous: the command may have executed with its response lost
		// (frontend closed mid-flight during a handoff). Reconcile against
		// the chain on the then-current owner.
		cur, rerr := s.PCRRead(pcr)
		if rerr != nil {
			return zero, fmt.Errorf("cluster: Extend on %q unreconcilable: %w", s.key, errors.Join(err, rerr))
		}
		switch cur {
		case want:
			// It landed; the response was lost in the handoff.
			s.Reconciled++
			s.shadow[pcr] = want
			return want, nil
		case prev:
			// It never executed; retry.
			s.backoff()
			continue
		default:
			return zero, fmt.Errorf("%w: key %q PCR %d at a third value after ambiguous extend", errSessionChain, s.key, pcr)
		}
	}
	return zero, fmt.Errorf("cluster: Extend on %q deadline exhausted: %w", s.key, lastErr)
}

// Verify confirms the guest's PCR chain matches the session's shadow — the
// end-of-run no-lost-no-double check.
func (s *Session) Verify() error {
	for pcr, want := range s.shadow {
		got, err := s.PCRRead(pcr)
		if err != nil {
			return err
		}
		if got != want {
			return fmt.Errorf("%w: key %q PCR %d final value mismatch", errSessionChain, s.key, pcr)
		}
	}
	return nil
}
