package ima_test

import (
	"crypto/sha1"
	"fmt"
	"log"

	"xvtpm/internal/ima"
	"xvtpm/internal/tpm"
)

// Example shows the measure → quote → replay → judge pipeline.
func Example() {
	eng, err := tpm.New(tpm.Config{RSABits: 512, Seed: []byte("ima-example")})
	if err != nil {
		log.Fatal(err)
	}
	cli := tpm.NewClient(tpm.DirectTransport{TPM: eng}, nil)
	if err := cli.Startup(tpm.STClear); err != nil {
		log.Fatal(err)
	}

	agent := ima.NewAgent(cli)
	db := ima.ReferenceDB{"/sbin/init": sha1.Sum([]byte("init v1"))}
	if _, err := agent.Measure("/sbin/init", []byte("init v1")); err != nil {
		log.Fatal(err)
	}
	if _, err := agent.Measure("/tmp/rootkit", []byte("evil")); err != nil {
		log.Fatal(err)
	}

	pcr, err := cli.PCRRead(ima.MeasurementPCR)
	if err != nil {
		log.Fatal(err)
	}
	list := agent.List()
	fmt.Println("list replays to PCR:", ima.VerifyList(list, pcr) == nil)
	fmt.Println("violations:", db.Judge(list))
	// Hiding the rootkit entry breaks the replay.
	fmt.Println("scrubbed list replays:", ima.VerifyList(list[:1], pcr) == nil)
	// Output:
	// list replays to PCR: true
	// violations: [/tmp/rootkit]
	// scrubbed list replays: false
}
