package ima

import (
	"crypto/sha1"
	"errors"
	"testing"
	"testing/quick"

	"xvtpm/internal/tpm"
)

func newAgent(t testing.TB, seed string) (*Agent, *tpm.Client) {
	t.Helper()
	eng, err := tpm.New(tpm.Config{RSABits: 512, Seed: []byte(seed)})
	if err != nil {
		t.Fatal(err)
	}
	cli := tpm.NewClient(tpm.DirectTransport{TPM: eng}, nil)
	if err := cli.Startup(tpm.STClear); err != nil {
		t.Fatal(err)
	}
	return NewAgent(cli), cli
}

func TestMeasureAndReplayMatchPCR(t *testing.T) {
	a, cli := newAgent(t, "m1")
	files := map[string][]byte{
		"/sbin/init":     []byte("init-binary"),
		"/usr/bin/dbd":   []byte("database-daemon"),
		"/etc/dbd.conf":  []byte("config contents"),
		"/lib/libssl.so": []byte("crypto library"),
	}
	for path, content := range files {
		if _, err := a.Measure(path, content); err != nil {
			t.Fatalf("Measure(%s): %v", path, err)
		}
	}
	pcr, err := cli.PCRRead(MeasurementPCR)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyList(a.List(), pcr); err != nil {
		t.Fatalf("honest list does not verify: %v", err)
	}
}

func TestVerifyDetectsTampering(t *testing.T) {
	a, cli := newAgent(t, "m2")
	for i, c := range []string{"one", "two", "three"} {
		if _, err := a.Measure("/bin/"+c, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	pcr, _ := cli.PCRRead(MeasurementPCR)
	honest := a.List()

	// Edited entry.
	edited := append([]Entry(nil), honest...)
	edited[1].FileHash[0] ^= 0xFF
	if err := VerifyList(edited, pcr); !errors.Is(err, ErrAggregateMismatch) {
		t.Fatalf("edited list err = %v", err)
	}
	// Removed entry (hiding a measurement).
	removed := append(append([]Entry(nil), honest[:1]...), honest[2:]...)
	if err := VerifyList(removed, pcr); !errors.Is(err, ErrAggregateMismatch) {
		t.Fatalf("removed list err = %v", err)
	}
	// Reordered entries.
	reordered := []Entry{honest[1], honest[0], honest[2]}
	if err := VerifyList(reordered, pcr); !errors.Is(err, ErrAggregateMismatch) {
		t.Fatalf("reordered list err = %v", err)
	}
	// Appended entry not reflected in the PCR.
	appended := append(append([]Entry(nil), honest...), Entry{Path: "/bin/fake"})
	if err := VerifyList(appended, pcr); !errors.Is(err, ErrAggregateMismatch) {
		t.Fatalf("appended list err = %v", err)
	}
}

func TestTemplateHashBindsPathAndContent(t *testing.T) {
	e1 := Entry{Path: "/a", FileHash: sha1.Sum([]byte("x"))}
	e2 := Entry{Path: "/b", FileHash: sha1.Sum([]byte("x"))}
	e3 := Entry{Path: "/a", FileHash: sha1.Sum([]byte("y"))}
	if e1.TemplateHash() == e2.TemplateHash() || e1.TemplateHash() == e3.TemplateHash() {
		t.Fatal("template hash does not bind both path and content")
	}
}

func TestReferenceDBJudge(t *testing.T) {
	db := ReferenceDB{
		"/sbin/init": sha1.Sum([]byte("init-binary")),
		"/bin/sh":    sha1.Sum([]byte("shell")),
	}
	entries := []Entry{
		{Path: "/sbin/init", FileHash: sha1.Sum([]byte("init-binary"))}, // ok
		{Path: "/bin/sh", FileHash: sha1.Sum([]byte("trojaned-shell"))}, // hash deviates
		{Path: "/tmp/rootkit", FileHash: sha1.Sum([]byte("evil"))},      // unknown
	}
	v := db.Judge(entries)
	if len(v) != 2 || v[0] != "/bin/sh" || v[1] != "/tmp/rootkit" {
		t.Fatalf("violations = %v", v)
	}
	if db.Judge(entries[:1]) != nil {
		t.Fatal("clean list reported violations")
	}
}

func TestMarshalRoundTripProperty(t *testing.T) {
	f := func(paths []string, hashes [][tpm.DigestSize]byte) bool {
		n := len(paths)
		if len(hashes) < n {
			n = len(hashes)
		}
		entries := make([]Entry, 0, n)
		for i := 0; i < n; i++ {
			p := paths[i]
			if len(p) > 1000 {
				p = p[:1000]
			}
			entries = append(entries, Entry{Path: p, FileHash: hashes[i]})
		}
		got, err := Unmarshal(Marshal(entries))
		if err != nil || len(got) != len(entries) {
			return false
		}
		for i := range entries {
			if got[i] != entries[i] {
				return false
			}
		}
		return Replay(got) == Replay(entries)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	if _, err := Unmarshal([]byte{0, 0, 0, 5, 1}); err == nil {
		t.Fatal("truncated list accepted")
	}
	blob := Marshal([]Entry{{Path: "/a"}})
	if _, err := Unmarshal(append(blob, 9)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestEmptyListReplaysToZero(t *testing.T) {
	if Replay(nil) != ([tpm.DigestSize]byte{}) {
		t.Fatal("empty replay not zero")
	}
	if err := VerifyList(nil, [tpm.DigestSize]byte{}); err != nil {
		t.Fatal(err)
	}
}
