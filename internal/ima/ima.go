// Package ima implements a guest-side integrity measurement architecture in
// the style of Linux IMA (Sailer et al., USENIX Security 2004), the
// canonical workload of the Xen vTPM: every file or binary the guest loads
// is hashed, the hash is extended into a dedicated PCR through the vTPM,
// and an append-only measurement list records what was measured. A remote
// verifier later obtains a quote over that PCR and replays the list — if
// the replayed aggregate matches the quoted register, the list is complete
// and untampered, and the verifier can then judge each entry against its
// reference database.
package ima

import (
	"crypto/sha1"
	"errors"
	"fmt"
	"sync"

	"xvtpm/internal/tpm"
)

// MeasurementPCR is the register the measurement list aggregates into
// (PCR 10, as Linux IMA uses).
const MeasurementPCR = 10

// Verification errors.
var (
	ErrAggregateMismatch = errors.New("ima: measurement list does not replay to the quoted PCR")
	ErrUnknownEntry      = errors.New("ima: measured file not in the reference database")
)

// Entry is one measurement: the file identity and its content hash. The
// template hash (what actually enters the PCR) binds both.
type Entry struct {
	Path     string
	FileHash [tpm.DigestSize]byte
}

// TemplateHash is the digest extended into the PCR for an entry:
// SHA1(fileHash ∥ path), matching IMA's ima-ng binding of name and content.
func (e Entry) TemplateHash() [tpm.DigestSize]byte {
	h := sha1.New()
	h.Write(e.FileHash[:])
	h.Write([]byte(e.Path))
	var d [tpm.DigestSize]byte
	copy(d[:], h.Sum(nil))
	return d
}

// Agent runs inside a guest: it measures content into the vTPM and keeps
// the measurement list.
type Agent struct {
	cli *tpm.Client

	mu      sync.Mutex
	entries []Entry
}

// NewAgent creates an agent over a guest's TPM client.
func NewAgent(cli *tpm.Client) *Agent { return &Agent{cli: cli} }

// Measure hashes content, extends the measurement PCR through the vTPM and
// appends the list entry. It returns the new PCR value.
func (a *Agent) Measure(path string, content []byte) ([tpm.DigestSize]byte, error) {
	e := Entry{Path: path, FileHash: sha1.Sum(content)}
	v, err := a.cli.Extend(MeasurementPCR, e.TemplateHash())
	if err != nil {
		return v, fmt.Errorf("ima: extending for %s: %w", path, err)
	}
	a.mu.Lock()
	a.entries = append(a.entries, e)
	a.mu.Unlock()
	return v, nil
}

// List returns a copy of the measurement list, in measurement order.
func (a *Agent) List() []Entry {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]Entry(nil), a.entries...)
}

// Replay computes the PCR value a measurement list implies, starting from
// the all-zero register.
func Replay(entries []Entry) [tpm.DigestSize]byte {
	var pcr [tpm.DigestSize]byte
	for _, e := range entries {
		th := e.TemplateHash()
		h := sha1.New()
		h.Write(pcr[:])
		h.Write(th[:])
		copy(pcr[:], h.Sum(nil))
	}
	return pcr
}

// VerifyList checks a measurement list against a quoted PCR value: the
// replayed aggregate must equal the register. On success the list is known
// complete and in order (any insertion, removal, reorder or edit changes
// the aggregate).
func VerifyList(entries []Entry, quotedPCR [tpm.DigestSize]byte) error {
	if got := Replay(entries); got != quotedPCR {
		return fmt.Errorf("%w: replay %x, quoted %x", ErrAggregateMismatch, got, quotedPCR)
	}
	return nil
}

// ReferenceDB is the verifier's database of approved file hashes.
type ReferenceDB map[string][tpm.DigestSize]byte

// Judge validates every entry of a verified list against the database.
// It returns the paths that are unknown or whose hashes deviate.
func (db ReferenceDB) Judge(entries []Entry) (violations []string) {
	for _, e := range entries {
		want, ok := db[e.Path]
		if !ok || want != e.FileHash {
			violations = append(violations, e.Path)
		}
	}
	return violations
}

// Marshal serializes a measurement list for transport to the verifier.
func Marshal(entries []Entry) []byte {
	w := tpm.NewWriter()
	w.U32(uint32(len(entries)))
	for _, e := range entries {
		w.B16([]byte(e.Path))
		w.Raw(e.FileHash[:])
	}
	return w.Bytes()
}

// Unmarshal reverses Marshal.
func Unmarshal(b []byte) ([]Entry, error) {
	r := tpm.NewReader(b)
	n := r.U32()
	entries := make([]Entry, 0, n)
	for i := uint32(0); i < n && r.Err() == nil; i++ {
		var e Entry
		e.Path = string(r.B16())
		copy(e.FileHash[:], r.Raw(tpm.DigestSize))
		entries = append(entries, e)
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("ima: %d trailing bytes", r.Remaining())
	}
	return entries, nil
}
