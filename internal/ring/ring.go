// Package ring implements the shared-memory request/response ring used by the
// vTPM split driver, modeled after Xen's tpmif ring protocol.
//
// The ring lives inside a caller-supplied byte region, which in this codebase
// is a run of guest memory pages shared with the backend through the grant
// table. Keeping the actual request and response bytes inside that region is
// deliberate: it is what makes the ring contents visible to the memory-dump
// attacker model, exactly as they would be on real hardware.
//
// The layout mirrors the single-ring in-place scheme used by Xen's TPM
// front/backend: a request is written into slot (reqProd mod numSlots) and the
// backend later overwrites the same slot with the response. Producer indices
// are stored in the shared header; consumer indices are private to each end,
// as in the real protocol.
package ring

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"xvtpm/internal/xen"
)

// Shared-header field offsets within the region. All fields are little-endian,
// matching the x86 guests the original system ran on. The two notify flags
// implement the classic Xen RING_FINAL_CHECK doorbell-suppression handshake:
// each consumer publishes whether it wants an event-channel notify for new
// frames in its direction, and clears the flag while it is actively draining.
const (
	offReqProd   = 0
	offRspProd   = 4
	offNumSlots  = 8
	offSlotSize  = 12
	offReqNotify = 16 // backend wants a doorbell for new requests
	offRspNotify = 17 // frontend wants a doorbell for new responses
	headerSize   = 24
)

// Per-slot header: status(1) pad(3) id(8) length(4).
const slotHeaderSize = 16

// Slot status values stored in shared memory.
const (
	slotFree     = 0
	slotRequest  = 1
	slotResponse = 2
)

// Errors returned by ring operations.
var (
	ErrClosed      = errors.New("ring: closed")
	ErrTooLarge    = errors.New("ring: payload exceeds slot size")
	ErrOutOfOrder  = errors.New("ring: response enqueued out of order")
	ErrUnknownID   = errors.New("ring: response id does not match pending request")
	ErrBadRegion   = errors.New("ring: region too small for requested geometry")
	ErrBadGeometry = errors.New("ring: slot count must be a power of two")
)

// Ring is one shared request/response ring connecting a frontend (guest) and a
// backend (driver domain). Both ends hold the same *Ring; the role split is
// purely in which methods each end calls.
type Ring struct {
	mu       sync.Mutex
	notFull  sync.Cond // frontend waits here for a free slot
	haveReq  sync.Cond // backend waits here for a request
	haveRsp  sync.Cond // frontend waits here for a response
	region   []byte
	bus      *xen.MemBus // memory bus of the domain owning the region
	numSlots uint32
	slotSize uint32

	// Private consumer indices (not in shared memory, per the Xen protocol).
	reqCons uint32
	rspCons uint32

	nextID uint64
	closed bool

	// onRequest and onResponse, when non-nil, are invoked (outside the ring
	// lock) after a request or response is published. Drivers use them to
	// send event-channel notifications.
	onRequest  func()
	onResponse func()

	// dequeueFault, when non-nil, rewrites every dequeued payload before it
	// reaches the consumer — fault injection for torn/truncated frames. It
	// runs under r.mu and must not reenter the ring. Returning the payload
	// unchanged is a no-op; returning a prefix models a truncated frame.
	dequeueFault func(payload []byte) []byte
	faulted      uint64

	// Traffic counters (under mu, so counting costs nothing beyond the lock
	// every operation already holds). fullWaits counts EnqueueRequest calls
	// that found the ring full and had to block — the backpressure signal
	// /metrics exports per device. batchDrains/batchFrames size the mean
	// request batch a backend drain pulls per wakeup.
	requests    uint64
	responses   uint64
	fullWaits   uint64
	batchDrains uint64
	batchFrames uint64
}

// Stats is a point-in-time traffic digest of one ring.
type Stats struct {
	// Requests and Responses count frames ever published in each direction.
	Requests  uint64
	Responses uint64
	// FullWaits counts EnqueueRequest calls that blocked on a full ring.
	FullWaits uint64
	// Faulted counts dequeued payloads rewritten by the fault-injection hook.
	Faulted uint64
	// BatchDrains counts non-empty DequeueRequestBatchInto drains and
	// BatchFrames the frames they carried, so BatchFrames/BatchDrains is the
	// mean request batch size per backend wakeup.
	BatchDrains uint64
	BatchFrames uint64
	// PendingRequests and PendingResponses are published-but-unconsumed
	// frames right now.
	PendingRequests  int
	PendingResponses int
}

// Stats snapshots the ring's traffic counters.
func (r *Ring) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return Stats{
		Requests:         r.requests,
		Responses:        r.responses,
		FullWaits:        r.fullWaits,
		Faulted:          r.faulted,
		BatchDrains:      r.batchDrains,
		BatchFrames:      r.batchFrames,
		PendingRequests:  int(r.reqProd() - r.reqCons),
		PendingResponses: int(r.rspProd() - r.rspCons),
	}
}

// SetDequeueFault installs (or, with nil, removes) a payload-rewrite hook
// applied to every dequeued request and response. The hook runs under the
// ring lock and must not call back into the Ring.
func (r *Ring) SetDequeueFault(fn func(payload []byte) []byte) {
	r.mu.Lock()
	r.dequeueFault = fn
	r.mu.Unlock()
}

// FaultedFrames returns how many dequeued payloads the fault hook rewrote.
func (r *Ring) FaultedFrames() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.faulted
}

// applyDequeueFault runs the fault hook over a just-dequeued payload.
// Called with r.mu held.
func (r *Ring) applyDequeueFault(payload []byte) []byte {
	if r.dequeueFault == nil {
		return payload
	}
	out := r.dequeueFault(payload)
	if len(out) != len(payload) || (len(payload) > 0 && &out[0] != &payload[0]) {
		r.faulted++
	}
	return out
}

// Geometry describes a ring's slot layout.
type Geometry struct {
	NumSlots uint32 // must be a power of two
	SlotSize uint32 // max payload bytes per slot
}

// RegionSize returns the number of bytes of shared memory the geometry needs.
func (g Geometry) RegionSize() int {
	return headerSize + int(g.NumSlots)*(slotHeaderSize+int(g.SlotSize))
}

// registry maps initialized ring regions (by the identity of their first
// byte) to their Ring. On real hardware the two ends of a ring coordinate
// through memory barriers on the shared page; in Go, separate Ring structs
// over the same bytes would be a data race, so Attach resolves a mapped
// region back to the one Ring that owns its synchronization state. Only a
// party holding the mapped bytes — i.e. one that passed the grant-table
// check — can attach.
var (
	registryMu sync.Mutex
	registry   = make(map[*byte]*Ring)
)

// Init formats region for the given geometry and returns a Ring over it.
// The region is typically a run of grant-mapped guest pages; bus is the
// memory bus of the domain owning those pages (nil for private regions that
// no dump can observe).
func Init(region []byte, g Geometry, bus *xen.MemBus) (*Ring, error) {
	if g.NumSlots == 0 || g.NumSlots&(g.NumSlots-1) != 0 {
		return nil, ErrBadGeometry
	}
	if len(region) < g.RegionSize() {
		return nil, fmt.Errorf("%w: have %d, need %d", ErrBadRegion, len(region), g.RegionSize())
	}
	bus.BeginWrite()
	for i := range region[:g.RegionSize()] {
		region[i] = 0
	}
	binary.LittleEndian.PutUint32(region[offNumSlots:], g.NumSlots)
	binary.LittleEndian.PutUint32(region[offSlotSize:], g.SlotSize)
	// Both ends start out wanting doorbells; consumers that run the batched
	// drain loop clear their flag while draining to coalesce notifies.
	region[offReqNotify] = 1
	region[offRspNotify] = 1
	bus.EndWrite()
	r := &Ring{region: region, bus: bus, numSlots: g.NumSlots, slotSize: g.SlotSize}
	r.notFull.L = &r.mu
	r.haveReq.L = &r.mu
	r.haveRsp.L = &r.mu
	registryMu.Lock()
	registry[&region[0]] = r
	registryMu.Unlock()
	return r, nil
}

// Attach resolves a mapped ring region to its live Ring. The region must
// alias memory previously passed to Init (any view with the same first
// byte).
func Attach(region []byte) (*Ring, error) {
	if len(region) == 0 {
		return nil, ErrBadRegion
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	r, ok := registry[&region[0]]
	if !ok {
		return nil, fmt.Errorf("%w: region not an initialized ring", ErrBadRegion)
	}
	return r, nil
}

// OnRequest registers a callback fired after each request is published.
func (r *Ring) OnRequest(fn func()) { r.mu.Lock(); r.onRequest = fn; r.mu.Unlock() }

// OnResponse registers a callback fired after each response is published.
func (r *Ring) OnResponse(fn func()) { r.mu.Lock(); r.onResponse = fn; r.mu.Unlock() }

// Close shuts the ring down. Blocked and future operations fail with ErrClosed.
func (r *Ring) Close() {
	registryMu.Lock()
	delete(registry, &r.region[0])
	registryMu.Unlock()
	r.mu.Lock()
	r.closed = true
	r.mu.Unlock()
	r.notFull.Broadcast()
	r.haveReq.Broadcast()
	r.haveRsp.Broadcast()
}

// Closed reports whether Close has been called.
func (r *Ring) Closed() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.closed
}

func (r *Ring) reqProd() uint32 { return binary.LittleEndian.Uint32(r.region[offReqProd:]) }
func (r *Ring) rspProd() uint32 { return binary.LittleEndian.Uint32(r.region[offRspProd:]) }
func (r *Ring) setReqProd(v uint32) {
	binary.LittleEndian.PutUint32(r.region[offReqProd:], v)
}
func (r *Ring) setRspProd(v uint32) {
	binary.LittleEndian.PutUint32(r.region[offRspProd:], v)
}

func (r *Ring) slot(idx uint32) []byte {
	stride := slotHeaderSize + int(r.slotSize)
	off := headerSize + int(idx&(r.numSlots-1))*stride
	return r.region[off : off+stride]
}

func writeSlot(s []byte, status byte, id uint64, payload []byte) {
	// Zeroize the slot tail so stale bytes from a previous, possibly larger,
	// message never linger in shared memory. The previous occupant's length
	// field bounds how far stale bytes can reach, so only that span is
	// cleared — not the whole slot. The field lives in shared memory, so it
	// is clamped rather than trusted.
	old := slotHeaderSize + int(binary.LittleEndian.Uint32(s[12:]))
	if old > len(s) {
		old = len(s)
	}
	s[0] = status
	binary.LittleEndian.PutUint64(s[4:], id)
	binary.LittleEndian.PutUint32(s[12:], uint32(len(payload)))
	n := slotHeaderSize + copy(s[slotHeaderSize:], payload)
	if n < old {
		clear(s[n:old])
	}
}

func readSlot(s []byte) (status byte, id uint64, payload []byte) {
	return readSlotInto(s, nil)
}

// slotHeader reads a slot's status and id without copying the payload — the
// response-enqueue id check uses it so matching a response to its request
// slot costs no allocation.
func slotHeader(s []byte) (status byte, id uint64) {
	return s[0], binary.LittleEndian.Uint64(s[4:])
}

// zeroizeSlot frees a slot, clearing its header plus the payload span the
// length field records rather than the whole slot — past occupants were
// already scrubbed when the slot was rewritten. The length field lives in
// shared memory, so it is clamped rather than trusted.
func zeroizeSlot(s []byte) {
	end := slotHeaderSize + int(binary.LittleEndian.Uint32(s[12:]))
	if end > len(s) {
		end = len(s)
	}
	clear(s[:end])
}

// readSlotInto is readSlot appending the payload to buf instead of
// allocating a fresh slice — the backend service loop's pop path.
func readSlotInto(s, buf []byte) (status byte, id uint64, payload []byte) {
	status = s[0]
	id = binary.LittleEndian.Uint64(s[4:])
	n := binary.LittleEndian.Uint32(s[12:])
	if int(n) > len(s)-slotHeaderSize {
		n = uint32(len(s) - slotHeaderSize)
	}
	payload = append(buf, s[slotHeaderSize:slotHeaderSize+int(n)]...)
	return status, id, payload
}

// EnqueueRequest publishes a request on the ring, blocking while the ring is
// full. It returns the request ID the response will carry.
func (r *Ring) EnqueueRequest(payload []byte) (uint64, error) {
	if uint32(len(payload)) > r.slotSize {
		return 0, fmt.Errorf("%w: %d > %d", ErrTooLarge, len(payload), r.slotSize)
	}
	r.mu.Lock()
	if !r.closed && r.reqProd()-r.rspCons >= r.numSlots {
		r.fullWaits++
		for !r.closed && r.reqProd()-r.rspCons >= r.numSlots {
			r.notFull.Wait()
		}
	}
	if r.closed {
		r.mu.Unlock()
		return 0, ErrClosed
	}
	r.requests++
	r.nextID++
	id := r.nextID
	prod := r.reqProd()
	r.bus.BeginWrite()
	writeSlot(r.slot(prod), slotRequest, id, payload)
	r.setReqProd(prod + 1)
	r.bus.EndWrite()
	cb := r.onRequest
	r.mu.Unlock()
	r.haveReq.Signal()
	if cb != nil {
		cb()
	}
	return id, nil
}

// DequeueRequest removes the oldest unprocessed request, blocking until one is
// available. The backend calls this.
func (r *Ring) DequeueRequest() (uint64, []byte, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for !r.closed && r.reqCons == r.reqProd() {
		r.haveReq.Wait()
	}
	if r.closed {
		return 0, nil, ErrClosed
	}
	status, id, payload := readSlot(r.slot(r.reqCons))
	if status != slotRequest {
		return 0, nil, fmt.Errorf("ring: slot %d has status %d, want request", r.reqCons, status)
	}
	r.reqCons++
	return id, r.applyDequeueFault(payload), nil
}

// TryDequeueRequest is the non-blocking variant of DequeueRequest; ok is false
// when no request is pending.
func (r *Ring) TryDequeueRequest() (id uint64, payload []byte, ok bool, err error) {
	return r.TryDequeueRequestInto(nil)
}

// TryDequeueRequestInto is TryDequeueRequest with the payload appended to buf
// — typically buf[:0] of a scratch slice the caller reuses across pops, so a
// steady service loop dequeues without allocating. The returned payload
// aliases buf's array when capacity sufficed.
func (r *Ring) TryDequeueRequestInto(buf []byte) (id uint64, payload []byte, ok bool, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return 0, nil, false, ErrClosed
	}
	if r.reqCons == r.reqProd() {
		return 0, nil, false, nil
	}
	status, id, payload := readSlotInto(r.slot(r.reqCons), buf)
	if status != slotRequest {
		return 0, nil, false, fmt.Errorf("ring: slot %d has status %d, want request", r.reqCons, status)
	}
	r.reqCons++
	return id, r.applyDequeueFault(payload), true, nil
}

// TryDequeueResponse is the non-blocking variant of DequeueResponse; ok is
// false when no response is pending.
func (r *Ring) TryDequeueResponse() (id uint64, payload []byte, ok bool, err error) {
	return r.TryDequeueResponseInto(nil)
}

// TryDequeueResponseInto is TryDequeueResponse with the payload appended to
// buf — typically buf[:0] of a scratch slice the frontend reuses across pops,
// mirroring TryDequeueRequestInto on the backend side.
func (r *Ring) TryDequeueResponseInto(buf []byte) (id uint64, payload []byte, ok bool, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return 0, nil, false, ErrClosed
	}
	if r.rspCons == r.rspProd() {
		return 0, nil, false, nil
	}
	s := r.slot(r.rspCons)
	status, id, payload := readSlotInto(s, buf)
	if status != slotResponse {
		return 0, nil, false, fmt.Errorf("ring: slot %d has status %d, want response", r.rspCons, status)
	}
	r.bus.BeginWrite()
	zeroizeSlot(s)
	r.bus.EndWrite()
	r.rspCons++
	r.notFull.Signal()
	return id, r.applyDequeueFault(payload), true, nil
}

// EnqueueResponse publishes the response for request id, overwriting the slot
// the request occupied. Responses must be produced in request order, which the
// serial TPM command model guarantees.
func (r *Ring) EnqueueResponse(id uint64, payload []byte) error {
	if uint32(len(payload)) > r.slotSize {
		return fmt.Errorf("%w: %d > %d", ErrTooLarge, len(payload), r.slotSize)
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrClosed
	}
	prod := r.rspProd()
	if prod >= r.reqCons {
		r.mu.Unlock()
		return ErrOutOfOrder
	}
	s := r.slot(prod)
	_, slotID := slotHeader(s)
	if slotID != id {
		r.mu.Unlock()
		return fmt.Errorf("%w: slot holds %d, got %d", ErrUnknownID, slotID, id)
	}
	r.bus.BeginWrite()
	writeSlot(s, slotResponse, id, payload)
	r.setRspProd(prod + 1)
	r.bus.EndWrite()
	r.responses++
	cb := r.onResponse
	r.mu.Unlock()
	r.haveRsp.Signal()
	if cb != nil {
		cb()
	}
	return nil
}

// DequeueResponse removes the oldest unconsumed response, blocking until one
// is available. The frontend calls this.
func (r *Ring) DequeueResponse() (uint64, []byte, error) {
	r.mu.Lock()
	for !r.closed && r.rspCons == r.rspProd() {
		r.haveRsp.Wait()
	}
	if r.closed {
		r.mu.Unlock()
		return 0, nil, ErrClosed
	}
	s := r.slot(r.rspCons)
	status, id, payload := readSlot(s)
	if status != slotResponse {
		r.mu.Unlock()
		return 0, nil, fmt.Errorf("ring: slot %d has status %d, want response", r.rspCons, status)
	}
	// Free the slot: zeroize so completed exchanges do not linger in shared
	// memory for a dump to harvest.
	r.bus.BeginWrite()
	zeroizeSlot(s)
	r.bus.EndWrite()
	r.rspCons++
	payload = r.applyDequeueFault(payload)
	r.mu.Unlock()
	r.notFull.Signal()
	return id, payload, nil
}

// Pending returns the number of published-but-unconsumed requests and
// responses. It exists for tests and metrics.
func (r *Ring) Pending() (requests, responses int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return int(r.reqProd() - r.reqCons), int(r.rspProd() - r.rspCons)
}

// Geometry reports the ring's slot layout.
func (r *Ring) Geometry() Geometry {
	return Geometry{NumSlots: r.numSlots, SlotSize: r.slotSize}
}

// setNotifyFlag publishes a notify-wanted flag in the shared header.
func (r *Ring) setNotifyFlag(off int, on bool) {
	var v byte
	if on {
		v = 1
	}
	r.mu.Lock()
	r.bus.BeginWrite()
	r.region[off] = v
	r.bus.EndWrite()
	r.mu.Unlock()
}

func (r *Ring) notifyFlag(off int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.region[off] != 0
}

// SetRequestNotify publishes whether the backend wants a doorbell for newly
// enqueued requests. A batched backend clears it on entry to its drain loop
// and re-sets it just before sleeping, then re-checks the ring once more (the
// RING_FINAL_CHECK pattern) so a request published in the gap is never lost.
func (r *Ring) SetRequestNotify(on bool) { r.setNotifyFlag(offReqNotify, on) }

// RequestNotifyWanted reports whether the backend currently wants a doorbell
// for new requests; frontends may skip the event-channel notify when false.
func (r *Ring) RequestNotifyWanted() bool { return r.notifyFlag(offReqNotify) }

// SetResponseNotify publishes whether the frontend wants a doorbell for newly
// enqueued responses (the response-direction twin of SetRequestNotify).
func (r *Ring) SetResponseNotify(on bool) { r.setNotifyFlag(offRspNotify, on) }

// ResponseNotifyWanted reports whether the frontend currently wants a doorbell
// for new responses; backends may skip the notify when false.
func (r *Ring) ResponseNotifyWanted() bool { return r.notifyFlag(offRspNotify) }
