package ring

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

func TestBatchRoundTrip(t *testing.T) {
	r := newTestRing(t, Geometry{NumSlots: 8, SlotSize: 256})
	payloads := [][]byte{[]byte("alpha"), []byte("bb"), []byte("gamma-long-payload"), []byte("d")}
	ids, err := r.EnqueueRequestBatch(nil, payloads...)
	if err != nil {
		t.Fatalf("EnqueueRequestBatch: %v", err)
	}
	if len(ids) != len(payloads) {
		t.Fatalf("got %d ids, want %d", len(ids), len(payloads))
	}

	var req Batch
	n, err := r.DequeueRequestBatchInto(&req, 0)
	if err != nil {
		t.Fatalf("DequeueRequestBatchInto: %v", err)
	}
	if n != len(payloads) || req.Len() != len(payloads) {
		t.Fatalf("drained %d frames (batch %d), want %d", n, req.Len(), len(payloads))
	}
	var rsp Batch
	for i := 0; i < n; i++ {
		id, p := req.Frame(i)
		if id != ids[i] || !bytes.Equal(p, payloads[i]) {
			t.Fatalf("frame %d = (%d, %q), want (%d, %q)", i, id, p, ids[i], payloads[i])
		}
		rsp.Append(id, append([]byte("re:"), p...))
	}
	if err := r.EnqueueResponseBatch(&rsp); err != nil {
		t.Fatalf("EnqueueResponseBatch: %v", err)
	}

	var back Batch
	n, err = r.DequeueResponseBatchInto(&back, 0)
	if err != nil {
		t.Fatalf("DequeueResponseBatchInto: %v", err)
	}
	if n != len(payloads) {
		t.Fatalf("drained %d responses, want %d", n, len(payloads))
	}
	for i := 0; i < n; i++ {
		id, p := back.Frame(i)
		want := append([]byte("re:"), payloads[i]...)
		if id != ids[i] || !bytes.Equal(p, want) {
			t.Fatalf("response %d = (%d, %q), want (%d, %q)", i, id, p, ids[i], want)
		}
	}
}

func TestBatchDequeueMax(t *testing.T) {
	r := newTestRing(t, Geometry{NumSlots: 8, SlotSize: 64})
	var payloads [][]byte
	for i := 0; i < 6; i++ {
		payloads = append(payloads, []byte{byte(i)})
	}
	if _, err := r.EnqueueRequestBatch(nil, payloads...); err != nil {
		t.Fatal(err)
	}
	var b Batch
	n, err := r.DequeueRequestBatchInto(&b, 4)
	if err != nil || n != 4 {
		t.Fatalf("first drain = (%d, %v), want (4, nil)", n, err)
	}
	n, err = r.DequeueRequestBatchInto(&b, 4)
	if err != nil || n != 2 {
		t.Fatalf("second drain = (%d, %v), want (2, nil)", n, err)
	}
	if id, p := b.Frame(1); id == 0 || p[0] != 5 {
		t.Fatalf("last frame = (%d, %v)", id, p)
	}
	n, err = r.DequeueRequestBatchInto(&b, 0)
	if err != nil || n != 0 {
		t.Fatalf("empty drain = (%d, %v), want (0, nil)", n, err)
	}
}

func TestBatchStatsCountDrains(t *testing.T) {
	r := newTestRing(t, Geometry{NumSlots: 8, SlotSize: 64})
	var b Batch
	// Two non-empty drains of 3 and 2 frames; empty drains must not count.
	r.DequeueRequestBatchInto(&b, 0)
	if _, err := r.EnqueueRequestBatch(nil, []byte("a"), []byte("b"), []byte("c")); err != nil {
		t.Fatal(err)
	}
	r.DequeueRequestBatchInto(&b, 0)
	if _, err := r.EnqueueRequestBatch(nil, []byte("d"), []byte("e")); err != nil {
		t.Fatal(err)
	}
	r.DequeueRequestBatchInto(&b, 0)
	s := r.Stats()
	if s.BatchDrains != 2 || s.BatchFrames != 5 {
		t.Fatalf("stats = %d drains / %d frames, want 2 / 5", s.BatchDrains, s.BatchFrames)
	}
}

func TestBatchResponseIDMismatch(t *testing.T) {
	r := newTestRing(t, Geometry{NumSlots: 4, SlotSize: 64})
	ids, err := r.EnqueueRequestBatch(nil, []byte("x"), []byte("y"))
	if err != nil {
		t.Fatal(err)
	}
	var req Batch
	if _, err := r.DequeueRequestBatchInto(&req, 0); err != nil {
		t.Fatal(err)
	}
	// Responses must land in request order with matching ids: swapping the
	// two ids must be refused at the first frame.
	var rsp Batch
	rsp.Append(ids[1], []byte("r1"))
	rsp.Append(ids[0], []byte("r0"))
	if err := r.EnqueueResponseBatch(&rsp); !errors.Is(err, ErrUnknownID) {
		t.Fatalf("err = %v, want ErrUnknownID", err)
	}
}

func TestBatchRejectsOversizedFrame(t *testing.T) {
	r := newTestRing(t, Geometry{NumSlots: 4, SlotSize: 16})
	if _, err := r.EnqueueRequestBatch(nil, []byte("ok"), make([]byte, 17)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestBatchFillsWholeRing(t *testing.T) {
	g := Geometry{NumSlots: 8, SlotSize: 32}
	r := newTestRing(t, g)
	var payloads [][]byte
	for i := 0; i < int(g.NumSlots); i++ {
		payloads = append(payloads, []byte(fmt.Sprintf("p%d", i)))
	}
	ids, err := r.EnqueueRequestBatch(nil, payloads...)
	if err != nil {
		t.Fatal(err)
	}
	var req, rsp Batch
	n, err := r.DequeueRequestBatchInto(&req, 0)
	if err != nil || n != int(g.NumSlots) {
		t.Fatalf("drain = (%d, %v)", n, err)
	}
	for i := 0; i < n; i++ {
		id, p := req.Frame(i)
		rsp.Commit(id, append(rsp.Take(), p...))
	}
	if err := r.EnqueueResponseBatch(&rsp); err != nil {
		t.Fatal(err)
	}
	var back Batch
	if n, err := r.DequeueResponseBatchInto(&back, 0); err != nil || n != int(g.NumSlots) {
		t.Fatalf("response drain = (%d, %v)", n, err)
	}
	_ = ids
}

func TestNotifyFlagsDefaultOnAndToggle(t *testing.T) {
	r := newTestRing(t, Geometry{NumSlots: 4, SlotSize: 64})
	// A fresh ring wants doorbells in both directions — a peer that never
	// touches the flags keeps the pre-batching behaviour.
	if !r.RequestNotifyWanted() || !r.ResponseNotifyWanted() {
		t.Fatal("fresh ring must want notifies in both directions")
	}
	r.SetRequestNotify(false)
	if r.RequestNotifyWanted() {
		t.Fatal("request notify still wanted after clear")
	}
	if !r.ResponseNotifyWanted() {
		t.Fatal("clearing request notify must not touch the response flag")
	}
	r.SetRequestNotify(true)
	r.SetResponseNotify(false)
	if !r.RequestNotifyWanted() || r.ResponseNotifyWanted() {
		t.Fatal("flags did not toggle independently")
	}
}

func TestBatchZeroizesDrainedResponseSlots(t *testing.T) {
	r := newTestRing(t, Geometry{NumSlots: 4, SlotSize: 64})
	secret := []byte("super-secret-response")
	ids, err := r.EnqueueRequestBatch(nil, []byte("q"))
	if err != nil {
		t.Fatal(err)
	}
	var req, rsp, back Batch
	if _, err := r.DequeueRequestBatchInto(&req, 0); err != nil {
		t.Fatal(err)
	}
	rsp.Append(ids[0], secret)
	if err := r.EnqueueResponseBatch(&rsp); err != nil {
		t.Fatal(err)
	}
	if _, err := r.DequeueResponseBatchInto(&back, 0); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(r.region, secret) {
		t.Fatal("drained response still present in shared memory")
	}
}
