package ring

import (
	"bytes"
	"testing"
)

func TestDequeueFaultTruncatesRequest(t *testing.T) {
	r := newTestRing(t, Geometry{NumSlots: 4, SlotSize: 256})
	r.SetDequeueFault(func(p []byte) []byte { return p[:len(p)/2] })
	want := []byte("0123456789abcdef")
	if _, err := r.EnqueueRequest(want); err != nil {
		t.Fatal(err)
	}
	_, payload, err := r.DequeueRequest()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(payload, want[:len(want)/2]) {
		t.Fatalf("payload = %q, want truncated %q", payload, want[:len(want)/2])
	}
	if got := r.FaultedFrames(); got != 1 {
		t.Fatalf("FaultedFrames = %d, want 1", got)
	}
	// The shared slot still holds the full request; only the dequeued view
	// was torn, so the response path is unaffected.
	r.SetDequeueFault(nil)
}

func TestDequeueFaultTruncatesResponse(t *testing.T) {
	r := newTestRing(t, Geometry{NumSlots: 4, SlotSize: 256})
	id, err := r.EnqueueRequest([]byte("req"))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.DequeueRequest(); err != nil {
		t.Fatal(err)
	}
	if err := r.EnqueueResponse(id, []byte("full response")); err != nil {
		t.Fatal(err)
	}
	r.SetDequeueFault(func(p []byte) []byte { return p[:4] })
	_, payload, err := r.DequeueResponse()
	if err != nil {
		t.Fatal(err)
	}
	if string(payload) != "full" {
		t.Fatalf("payload = %q, want %q", payload, "full")
	}
	if got := r.FaultedFrames(); got != 1 {
		t.Fatalf("FaultedFrames = %d, want 1", got)
	}
}

func TestDequeueFaultPassThroughNotCounted(t *testing.T) {
	r := newTestRing(t, Geometry{NumSlots: 4, SlotSize: 256})
	r.SetDequeueFault(func(p []byte) []byte { return p })
	if _, err := r.EnqueueRequest([]byte("intact")); err != nil {
		t.Fatal(err)
	}
	_, payload, err := r.DequeueRequest()
	if err != nil {
		t.Fatal(err)
	}
	if string(payload) != "intact" {
		t.Fatalf("payload = %q", payload)
	}
	if got := r.FaultedFrames(); got != 0 {
		t.Fatalf("FaultedFrames = %d, want 0", got)
	}
}
