package ring

import "fmt"

// Batch is a reusable collection of dequeued or to-be-enqueued frames. All
// payloads live back-to-back in one scratch buffer, so a service loop that
// keeps a Batch across iterations drains and refills whole rings without
// allocating once the buffers reach steady-state size.
//
// Frame payloads alias the Batch's scratch buffer: they are valid until the
// next Reset or batched dequeue into the same Batch.
type Batch struct {
	ids  []uint64
	ends []int // frame i's payload is buf[ends[i-1]:ends[i]] (ends[-1] == 0)
	buf  []byte
}

// Reset empties the batch, keeping its buffers for reuse.
func (b *Batch) Reset() {
	b.ids = b.ids[:0]
	b.ends = b.ends[:0]
	b.buf = b.buf[:0]
}

// Len returns the number of frames in the batch.
func (b *Batch) Len() int { return len(b.ids) }

// Frame returns frame i's id and payload. The payload aliases the batch
// scratch buffer.
func (b *Batch) Frame(i int) (id uint64, payload []byte) {
	start := 0
	if i > 0 {
		start = b.ends[i-1]
	}
	return b.ids[i], b.buf[start:b.ends[i]]
}

// Append copies payload into the batch as a new frame tagged id.
func (b *Batch) Append(id uint64, payload []byte) {
	b.buf = append(b.buf, payload...)
	b.ids = append(b.ids, id)
	b.ends = append(b.ends, len(b.buf))
}

// Take hands the caller the scratch buffer so a producer can append one
// frame's payload in place (avoiding an intermediate copy); the extended
// buffer must be returned through Commit before the next Take.
func (b *Batch) Take() []byte { return b.buf }

// Commit completes a Take: buf is the scratch returned by Take with exactly
// one frame's payload appended, which becomes the next frame, tagged id.
func (b *Batch) Commit(id uint64, buf []byte) {
	b.buf = buf
	b.ids = append(b.ids, id)
	b.ends = append(b.ends, len(b.buf))
}

// EnqueueRequestBatch publishes every payload as a request frame, in order,
// blocking while the ring is full, and fires the request callback and
// condition once for the whole batch — so one event-channel notify can cover
// N frames. The assigned ids are appended to ids and returned.
func (r *Ring) EnqueueRequestBatch(ids []uint64, payloads ...[]byte) ([]uint64, error) {
	for _, p := range payloads {
		if uint32(len(p)) > r.slotSize {
			return ids, fmt.Errorf("%w: %d > %d", ErrTooLarge, len(p), r.slotSize)
		}
	}
	r.mu.Lock()
	for _, p := range payloads {
		if !r.closed && r.reqProd()-r.rspCons >= r.numSlots {
			r.fullWaits++
			for !r.closed && r.reqProd()-r.rspCons >= r.numSlots {
				r.notFull.Wait()
			}
		}
		if r.closed {
			r.mu.Unlock()
			return ids, ErrClosed
		}
		r.requests++
		r.nextID++
		prod := r.reqProd()
		r.bus.BeginWrite()
		writeSlot(r.slot(prod), slotRequest, r.nextID, p)
		r.setReqProd(prod + 1)
		r.bus.EndWrite()
		ids = append(ids, r.nextID)
	}
	cb := r.onRequest
	r.mu.Unlock()
	r.haveReq.Broadcast()
	if cb != nil && len(payloads) > 0 {
		cb()
	}
	return ids, nil
}

// DequeueRequestBatchInto drains pending requests into b (which is Reset
// first), up to max frames (max <= 0 drains everything pending). It never
// blocks; n == 0 means the ring was empty. The backend's batched service
// loop calls this once per wakeup instead of popping one frame per notify.
func (r *Ring) DequeueRequestBatchInto(b *Batch, max int) (int, error) {
	b.Reset()
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return 0, ErrClosed
	}
	n := 0
	for r.reqCons != r.reqProd() && (max <= 0 || n < max) {
		start := len(b.buf)
		status, id, full := readSlotInto(r.slot(r.reqCons), b.buf)
		if status != slotRequest {
			return n, fmt.Errorf("ring: slot %d has status %d, want request", r.reqCons, status)
		}
		frame := r.applyDequeueFault(full[start:])
		// The fault hook may truncate or replace the frame; re-append so the
		// batch buffer always ends exactly at this frame's last byte. When
		// the hook was a no-op this copies a region onto itself.
		b.buf = append(full[:start], frame...)
		b.ids = append(b.ids, id)
		b.ends = append(b.ends, len(b.buf))
		r.reqCons++
		n++
	}
	if n > 0 {
		r.batchDrains++
		r.batchFrames += uint64(n)
	}
	return n, nil
}

// EnqueueResponseBatch publishes every frame in b as a response, in order,
// firing the response callback and condition once for the whole batch. The
// same in-order and id-match rules as EnqueueResponse apply per frame.
func (r *Ring) EnqueueResponseBatch(b *Batch) error {
	for i := 0; i < b.Len(); i++ {
		_, p := b.Frame(i)
		if uint32(len(p)) > r.slotSize {
			return fmt.Errorf("%w: %d > %d", ErrTooLarge, len(p), r.slotSize)
		}
	}
	r.mu.Lock()
	for i := 0; i < b.Len(); i++ {
		if r.closed {
			r.mu.Unlock()
			return ErrClosed
		}
		id, p := b.Frame(i)
		prod := r.rspProd()
		if prod >= r.reqCons {
			r.mu.Unlock()
			return ErrOutOfOrder
		}
		s := r.slot(prod)
		_, slotID := slotHeader(s)
		if slotID != id {
			r.mu.Unlock()
			return fmt.Errorf("%w: slot holds %d, got %d", ErrUnknownID, slotID, id)
		}
		r.bus.BeginWrite()
		writeSlot(s, slotResponse, id, p)
		r.setRspProd(prod + 1)
		r.bus.EndWrite()
		r.responses++
	}
	cb := r.onResponse
	r.mu.Unlock()
	r.haveRsp.Broadcast()
	if cb != nil && b.Len() > 0 {
		cb()
	}
	return nil
}

// DequeueResponseBatchInto drains pending responses into b (Reset first), up
// to max frames (max <= 0 drains everything pending), zeroizing and freeing
// each slot. It never blocks; n == 0 means no responses were pending. A
// pipelined frontend calls this once per wakeup and matches the drained
// frames to in-flight commands by id.
func (r *Ring) DequeueResponseBatchInto(b *Batch, max int) (int, error) {
	b.Reset()
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return 0, ErrClosed
	}
	n := 0
	for r.rspCons != r.rspProd() && (max <= 0 || n < max) {
		s := r.slot(r.rspCons)
		start := len(b.buf)
		status, id, full := readSlotInto(s, b.buf)
		if status != slotResponse {
			return n, fmt.Errorf("ring: slot %d has status %d, want response", r.rspCons, status)
		}
		frame := r.applyDequeueFault(full[start:])
		b.buf = append(full[:start], frame...)
		b.ids = append(b.ids, id)
		b.ends = append(b.ends, len(b.buf))
		// Free the slot: zeroize so completed exchanges do not linger in
		// shared memory for a dump to harvest.
		r.bus.BeginWrite()
		zeroizeSlot(s)
		r.bus.EndWrite()
		r.rspCons++
		n++
	}
	if n > 0 {
		r.notFull.Broadcast()
	}
	return n, nil
}
