package ring

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func newTestRing(t *testing.T, g Geometry) *Ring {
	t.Helper()
	region := make([]byte, g.RegionSize())
	r, err := Init(region, g, nil)
	if err != nil {
		t.Fatalf("Init: %v", err)
	}
	return r
}

func TestInitRejectsBadGeometry(t *testing.T) {
	cases := []Geometry{
		{NumSlots: 0, SlotSize: 64},
		{NumSlots: 3, SlotSize: 64},
		{NumSlots: 6, SlotSize: 64},
	}
	for _, g := range cases {
		if _, err := Init(make([]byte, 1<<16), g, nil); !errors.Is(err, ErrBadGeometry) {
			t.Errorf("Init(%+v) err = %v, want ErrBadGeometry", g, err)
		}
	}
}

func TestInitRejectsShortRegion(t *testing.T) {
	g := Geometry{NumSlots: 4, SlotSize: 128}
	if _, err := Init(make([]byte, g.RegionSize()-1), g, nil); !errors.Is(err, ErrBadRegion) {
		t.Fatalf("err = %v, want ErrBadRegion", err)
	}
}

func TestRoundTripSingle(t *testing.T) {
	r := newTestRing(t, Geometry{NumSlots: 4, SlotSize: 256})
	id, err := r.EnqueueRequest([]byte("hello tpm"))
	if err != nil {
		t.Fatalf("EnqueueRequest: %v", err)
	}
	gotID, payload, err := r.DequeueRequest()
	if err != nil {
		t.Fatalf("DequeueRequest: %v", err)
	}
	if gotID != id || string(payload) != "hello tpm" {
		t.Fatalf("got (%d, %q), want (%d, %q)", gotID, payload, id, "hello tpm")
	}
	if err := r.EnqueueResponse(id, []byte("resp")); err != nil {
		t.Fatalf("EnqueueResponse: %v", err)
	}
	rid, rp, err := r.DequeueResponse()
	if err != nil {
		t.Fatalf("DequeueResponse: %v", err)
	}
	if rid != id || string(rp) != "resp" {
		t.Fatalf("got (%d, %q), want (%d, %q)", rid, rp, id, "resp")
	}
}

func TestPayloadTooLarge(t *testing.T) {
	r := newTestRing(t, Geometry{NumSlots: 2, SlotSize: 8})
	if _, err := r.EnqueueRequest(make([]byte, 9)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("EnqueueRequest err = %v, want ErrTooLarge", err)
	}
	if err := r.EnqueueResponse(1, make([]byte, 9)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("EnqueueResponse err = %v, want ErrTooLarge", err)
	}
}

func TestResponseWithoutRequestFails(t *testing.T) {
	r := newTestRing(t, Geometry{NumSlots: 2, SlotSize: 32})
	if err := r.EnqueueResponse(1, []byte("x")); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("err = %v, want ErrOutOfOrder", err)
	}
}

func TestResponseWrongIDFails(t *testing.T) {
	r := newTestRing(t, Geometry{NumSlots: 2, SlotSize: 32})
	id, _ := r.EnqueueRequest([]byte("a"))
	if _, _, err := r.DequeueRequest(); err != nil {
		t.Fatal(err)
	}
	if err := r.EnqueueResponse(id+7, []byte("x")); !errors.Is(err, ErrUnknownID) {
		t.Fatalf("err = %v, want ErrUnknownID", err)
	}
}

func TestBlockingWhenFullThenDrain(t *testing.T) {
	r := newTestRing(t, Geometry{NumSlots: 2, SlotSize: 32})
	for i := 0; i < 2; i++ {
		if _, err := r.EnqueueRequest([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan error, 1)
	go func() {
		_, err := r.EnqueueRequest([]byte{9})
		done <- err
	}()
	// Drain one full exchange to free a slot.
	id, _, err := r.DequeueRequest()
	if err != nil {
		t.Fatal(err)
	}
	if err := r.EnqueueResponse(id, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.DequeueResponse(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("blocked enqueue returned %v", err)
	}
}

func TestCloseUnblocksWaiters(t *testing.T) {
	r := newTestRing(t, Geometry{NumSlots: 2, SlotSize: 32})
	errs := make(chan error, 2)
	go func() { _, _, err := r.DequeueRequest(); errs <- err }()
	go func() { _, _, err := r.DequeueResponse(); errs <- err }()
	r.Close()
	for i := 0; i < 2; i++ {
		if err := <-errs; !errors.Is(err, ErrClosed) {
			t.Fatalf("waiter err = %v, want ErrClosed", err)
		}
	}
	if _, err := r.EnqueueRequest([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close enqueue err = %v, want ErrClosed", err)
	}
	if !r.Closed() {
		t.Fatal("Closed() = false after Close")
	}
}

func TestTryDequeueRequest(t *testing.T) {
	r := newTestRing(t, Geometry{NumSlots: 2, SlotSize: 32})
	if _, _, ok, err := r.TryDequeueRequest(); ok || err != nil {
		t.Fatalf("empty ring: ok=%v err=%v", ok, err)
	}
	id, _ := r.EnqueueRequest([]byte("q"))
	gid, p, ok, err := r.TryDequeueRequest()
	if err != nil || !ok || gid != id || string(p) != "q" {
		t.Fatalf("got (%d,%q,%v,%v)", gid, p, ok, err)
	}
}

func TestNotifyCallbacks(t *testing.T) {
	r := newTestRing(t, Geometry{NumSlots: 2, SlotSize: 32})
	var reqN, rspN int
	r.OnRequest(func() { reqN++ })
	r.OnResponse(func() { rspN++ })
	id, _ := r.EnqueueRequest([]byte("a"))
	r.DequeueRequest()
	r.EnqueueResponse(id, []byte("b"))
	r.DequeueResponse()
	if reqN != 1 || rspN != 1 {
		t.Fatalf("callbacks fired req=%d rsp=%d, want 1 and 1", reqN, rspN)
	}
}

func TestSlotZeroizedAfterResponseConsumed(t *testing.T) {
	r := newTestRing(t, Geometry{NumSlots: 2, SlotSize: 64})
	secret := []byte("super-secret-auth-value")
	id, _ := r.EnqueueRequest(secret)
	region := r.region
	if !bytes.Contains(region, secret) {
		t.Fatal("request bytes should be visible in shared memory while in flight")
	}
	r.DequeueRequest()
	r.EnqueueResponse(id, []byte("fine"))
	r.DequeueResponse()
	if bytes.Contains(region, secret) {
		t.Fatal("request bytes still present in shared memory after exchange completed")
	}
	if bytes.Contains(region, []byte("fine")) {
		t.Fatal("response bytes still present in shared memory after exchange completed")
	}
}

func TestManyExchangesWrapIndices(t *testing.T) {
	r := newTestRing(t, Geometry{NumSlots: 4, SlotSize: 16})
	for i := 0; i < 1000; i++ {
		want := []byte(fmt.Sprintf("m%04d", i))
		id, err := r.EnqueueRequest(want)
		if err != nil {
			t.Fatal(err)
		}
		gid, p, err := r.DequeueRequest()
		if err != nil || gid != id || !bytes.Equal(p, want) {
			t.Fatalf("i=%d: (%d,%q,%v)", i, gid, p, err)
		}
		if err := r.EnqueueResponse(id, p); err != nil {
			t.Fatal(err)
		}
		rid, rp, err := r.DequeueResponse()
		if err != nil || rid != id || !bytes.Equal(rp, want) {
			t.Fatalf("i=%d: response (%d,%q,%v)", i, rid, rp, err)
		}
	}
}

func TestConcurrentFrontBack(t *testing.T) {
	r := newTestRing(t, Geometry{NumSlots: 8, SlotSize: 32})
	const n = 500
	var wg sync.WaitGroup
	wg.Add(2)
	// Backend: echo every request.
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			id, p, err := r.DequeueRequest()
			if err != nil {
				t.Errorf("backend: %v", err)
				return
			}
			if err := r.EnqueueResponse(id, p); err != nil {
				t.Errorf("backend: %v", err)
				return
			}
		}
	}()
	// Frontend consumer.
	got := make(map[uint64][]byte, n)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			id, p, err := r.DequeueResponse()
			if err != nil {
				t.Errorf("frontend: %v", err)
				return
			}
			got[id] = p
		}
	}()
	sent := make(map[uint64][]byte, n)
	for i := 0; i < n; i++ {
		msg := []byte(fmt.Sprintf("msg-%d", i))
		id, err := r.EnqueueRequest(msg)
		if err != nil {
			t.Fatal(err)
		}
		sent[id] = msg
	}
	wg.Wait()
	if len(got) != n {
		t.Fatalf("got %d responses, want %d", len(got), n)
	}
	for id, p := range sent {
		if !bytes.Equal(got[id], p) {
			t.Fatalf("id %d: got %q want %q", id, got[id], p)
		}
	}
}

// TestPropertyEchoPreservesPayloads is a property-based check: any sequence of
// payloads within slot size echoes back intact and in order.
func TestPropertyEchoPreservesPayloads(t *testing.T) {
	g := Geometry{NumSlots: 8, SlotSize: 128}
	f := func(msgs [][]byte) bool {
		r, err := Init(make([]byte, g.RegionSize()), g, nil)
		if err != nil {
			return false
		}
		for _, m := range msgs {
			if len(m) > int(g.SlotSize) {
				m = m[:g.SlotSize]
			}
			id, err := r.EnqueueRequest(m)
			if err != nil {
				return false
			}
			gid, p, err := r.DequeueRequest()
			if err != nil || gid != id || !bytes.Equal(p, m) {
				return false
			}
			if err := r.EnqueueResponse(id, p); err != nil {
				return false
			}
			rid, rp, err := r.DequeueResponse()
			if err != nil || rid != id || !bytes.Equal(rp, m) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAttachResolvesSameRing(t *testing.T) {
	g := Geometry{NumSlots: 4, SlotSize: 64}
	region := make([]byte, g.RegionSize())
	r, err := Init(region, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Any view sharing the first byte resolves to the same Ring.
	attached, err := Attach(region[:1])
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	if attached != r {
		t.Fatal("Attach returned a different Ring")
	}
	if attached.Geometry() != g {
		t.Fatalf("geometry = %+v", attached.Geometry())
	}
	// Foreign regions are refused.
	if _, err := Attach(make([]byte, 64)); !errors.Is(err, ErrBadRegion) {
		t.Fatalf("foreign attach err = %v", err)
	}
	if _, err := Attach(nil); !errors.Is(err, ErrBadRegion) {
		t.Fatalf("nil attach err = %v", err)
	}
	// Closing deregisters.
	r.Close()
	if _, err := Attach(region); !errors.Is(err, ErrBadRegion) {
		t.Fatalf("attach after close err = %v", err)
	}
}

func TestTryDequeueResponseAndPending(t *testing.T) {
	r := newTestRing(t, Geometry{NumSlots: 4, SlotSize: 32})
	if _, _, ok, err := r.TryDequeueResponse(); ok || err != nil {
		t.Fatalf("empty: ok=%v err=%v", ok, err)
	}
	id, _ := r.EnqueueRequest([]byte("q"))
	if reqs, rsps := r.Pending(); reqs != 1 || rsps != 0 {
		t.Fatalf("pending = %d/%d", reqs, rsps)
	}
	r.DequeueRequest()
	r.EnqueueResponse(id, []byte("a"))
	if reqs, rsps := r.Pending(); reqs != 0 || rsps != 1 {
		t.Fatalf("pending = %d/%d", reqs, rsps)
	}
	gid, p, ok, err := r.TryDequeueResponse()
	if err != nil || !ok || gid != id || string(p) != "a" {
		t.Fatalf("got (%d,%q,%v,%v)", gid, p, ok, err)
	}
	// Closed ring refuses.
	r.Close()
	if _, _, _, err := r.TryDequeueResponse(); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed err = %v", err)
	}
}

func BenchmarkRingRoundTrip(b *testing.B) {
	g := Geometry{NumSlots: 8, SlotSize: 4096}
	r, err := Init(make([]byte, g.RegionSize()), g, nil)
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id, err := r.EnqueueRequest(payload)
		if err != nil {
			b.Fatal(err)
		}
		gid, p, err := r.DequeueRequest()
		if err != nil {
			b.Fatal(err)
		}
		_ = gid
		if err := r.EnqueueResponse(id, p); err != nil {
			b.Fatal(err)
		}
		if _, _, err := r.DequeueResponse(); err != nil {
			b.Fatal(err)
		}
	}
}

// TestStats locks the traffic-counter contract: requests/responses count
// published frames, fullWaits counts blocked enqueues, pending tracks the
// live backlog.
func TestStats(t *testing.T) {
	r := newTestRing(t, Geometry{NumSlots: 2, SlotSize: 64})
	if s := r.Stats(); s != (Stats{}) {
		t.Fatalf("fresh ring stats = %+v, want zero", s)
	}
	id1, err := r.EnqueueRequest([]byte("a"))
	if err != nil {
		t.Fatal(err)
	}
	id2, err := r.EnqueueRequest([]byte("b"))
	if err != nil {
		t.Fatal(err)
	}
	s := r.Stats()
	if s.Requests != 2 || s.PendingRequests != 2 || s.Responses != 0 || s.FullWaits != 0 {
		t.Fatalf("after 2 enqueues: %+v", s)
	}

	// Ring is full (2 slots, neither response consumed): a third enqueue
	// must block and be counted as a full-wait.
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := r.EnqueueRequest([]byte("c")); err != nil {
			t.Errorf("blocked EnqueueRequest: %v", err)
		}
	}()
	// Wait until the third enqueue has actually blocked (the counter is
	// bumped before the wait), then open a slot to release it.
	for r.Stats().FullWaits == 0 {
		time.Sleep(50 * time.Microsecond)
	}
	if _, _, err := r.DequeueRequest(); err != nil {
		t.Fatal(err)
	}
	if err := r.EnqueueResponse(id1, []byte("A")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.DequeueResponse(); err != nil {
		t.Fatal(err)
	}
	<-done
	s = r.Stats()
	if s.Requests != 3 || s.Responses != 1 || s.FullWaits != 1 {
		t.Fatalf("after blocked enqueue cycle: %+v", s)
	}
	if s.PendingRequests != 2 || s.PendingResponses != 0 {
		t.Fatalf("pending after cycle: %+v", s)
	}
	_ = id2
}
