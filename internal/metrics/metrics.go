// Package metrics provides the small measurement toolkit the benchmark
// harness uses: latency recorders with percentile summaries, throughput
// accounting, and fixed-width table/series printers that render the
// reconstructed tables and figures of the evaluation.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"time"
)

// Recorder accumulates latency samples.
//
// Percentile queries sort a snapshot of the samples outside the sample lock
// and cache the sorted copy until the next Add or Reset, so repeated
// Percentile/Min/Max/Summarize calls sort once, and a query never blocks
// concurrent recording for the duration of a sort.
type Recorder struct {
	mu      sync.Mutex
	samples []time.Duration
	gen     uint64 // bumped on every Add/Reset

	// sortMu guards the cached sorted snapshot (taken at generation
	// sortedGen). It is never held while mu is held.
	sortMu    sync.Mutex
	sorted    []time.Duration
	sortedGen uint64
}

// NewRecorder creates an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Add records one sample.
func (r *Recorder) Add(d time.Duration) {
	r.mu.Lock()
	r.samples = append(r.samples, d)
	r.gen++
	r.mu.Unlock()
}

// Time runs fn and records its duration.
func (r *Recorder) Time(fn func()) {
	start := time.Now()
	fn()
	r.Add(time.Since(start))
}

// Reset discards all samples, returning the recorder to its initial state
// (so one recorder can be reused across benchmark phases without
// reallocating). The cached sorted snapshot is released too: its generation
// tag already guarantees a stale cache can never be *served* (audited and
// locked by TestRecorderCacheInvalidation), but without the release a large
// pre-Reset snapshot would stay pinned until the next percentile query.
// Lock order matches sortedSnapshot: sortMu before mu, never the reverse.
func (r *Recorder) Reset() {
	r.sortMu.Lock()
	r.sorted = nil
	r.mu.Lock()
	r.samples = r.samples[:0]
	r.gen++
	r.mu.Unlock()
	r.sortMu.Unlock()
}

// Count returns the sample count.
func (r *Recorder) Count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.samples)
}

// sortedSnapshot returns the samples sorted ascending, cached until the
// sample set changes. The copy is taken under mu but sorted outside it.
func (r *Recorder) sortedSnapshot() []time.Duration {
	r.sortMu.Lock()
	defer r.sortMu.Unlock()
	r.mu.Lock()
	gen := r.gen
	if r.sorted != nil && r.sortedGen == gen {
		r.mu.Unlock()
		return r.sorted
	}
	snap := append([]time.Duration(nil), r.samples...)
	r.mu.Unlock()
	sort.Slice(snap, func(i, j int) bool { return snap[i] < snap[j] })
	r.sorted = snap
	r.sortedGen = gen
	return snap
}

// percentileOf returns the p-th percentile of a sorted sample set by
// nearest-rank.
func percentileOf(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// Percentile returns the p-th percentile (0 < p <= 100) by nearest-rank.
func (r *Recorder) Percentile(p float64) time.Duration {
	return percentileOf(r.sortedSnapshot(), p)
}

// Mean returns the arithmetic mean.
func (r *Recorder) Mean() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.samples) == 0 {
		return 0
	}
	var total time.Duration
	for _, s := range r.samples {
		total += s
	}
	return total / time.Duration(len(r.samples))
}

// Min returns the smallest sample.
func (r *Recorder) Min() time.Duration {
	s := r.sortedSnapshot()
	if len(s) == 0 {
		return 0
	}
	return s[0]
}

// Max returns the largest sample.
func (r *Recorder) Max() time.Duration {
	s := r.sortedSnapshot()
	if len(s) == 0 {
		return 0
	}
	return s[len(s)-1]
}

// Summary is a one-line digest of a recorder.
type Summary struct {
	Count          int
	Mean, P50, P99 time.Duration
	Min, Max       time.Duration
}

// Summarize computes the digest from a single snapshot (one sort, even on a
// recorder that is still being written to).
func (r *Recorder) Summarize() Summary {
	s := r.sortedSnapshot()
	sum := Summary{Count: len(s)}
	if len(s) == 0 {
		return sum
	}
	var total time.Duration
	for _, d := range s {
		total += d
	}
	sum.Mean = total / time.Duration(len(s))
	sum.P50 = percentileOf(s, 50)
	sum.P99 = percentileOf(s, 99)
	sum.Min = s[0]
	sum.Max = s[len(s)-1]
	return sum
}

// Point is one (x, y) sample of a series.
type Point struct {
	X float64
	Y float64
}

// Series is one labeled curve of a figure.
type Series struct {
	Name   string
	Points []Point
}

// Table renders rows under headers with fixed-width columns.
func Table(w io.Writer, title string, headers []string, rows [][]string) {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if title != "" {
		fmt.Fprintf(w, "%s\n", title)
	}
	var b strings.Builder
	for i, h := range headers {
		fmt.Fprintf(&b, "%-*s  ", widths[i], h)
	}
	fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	b.Reset()
	for i := range headers {
		b.WriteString(strings.Repeat("-", widths[i]) + "  ")
	}
	fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	for _, row := range rows {
		b.Reset()
		for i, cell := range row {
			width := 0
			if i < len(widths) {
				width = widths[i]
			}
			fmt.Fprintf(&b, "%-*s  ", width, cell)
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	fmt.Fprintln(w)
}

// PrintSeries renders a figure's series as aligned columns of (x, y) pairs,
// one block per series — the textual equivalent of the paper's plots.
func PrintSeries(w io.Writer, title, xLabel, yLabel string, series []Series) {
	fmt.Fprintf(w, "%s\n", title)
	for _, s := range series {
		fmt.Fprintf(w, "  series %q (%s → %s)\n", s.Name, xLabel, yLabel)
		for _, p := range s.Points {
			fmt.Fprintf(w, "    %12.2f  %14.3f\n", p.X, p.Y)
		}
	}
	fmt.Fprintln(w)
}

// Micros renders a duration in microseconds with two decimals.
func Micros(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d.Nanoseconds())/1e3)
}

// Ratio renders b/a as a percentage-overhead string ("+12.3%").
func Ratio(a, b time.Duration) string {
	if a == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", (float64(b)/float64(a)-1)*100)
}
