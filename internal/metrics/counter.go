package metrics

import "sync/atomic"

// Counter is a monotonically increasing, concurrency-safe event counter —
// the cheap companion to Recorder for rates background machinery reports
// (checkpoints completed, bytes written, mutations coalesced). The zero
// value is ready to use.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }
