package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]int64{10, 100, 1000})
	cases := []struct {
		d      time.Duration
		bucket int
	}{
		{0, 0},           // smallest bucket catches zero
		{-5, 0},          // negative durations clamp to zero
		{10, 0},          // exactly on a bound lands in that bucket (le semantics)
		{11, 1},          // one past the bound spills to the next
		{100, 1},         //
		{101, 2},         //
		{1000, 2},        //
		{1001, 3},        // past the last bound → +Inf bucket
		{time.Second, 3}, //
	}
	for _, tc := range cases {
		if got := h.bucketOf(int64(tc.d)); got != tc.bucket {
			t.Errorf("bucketOf(%d) = %d, want %d", tc.d, got, tc.bucket)
		}
	}
	for _, tc := range cases {
		h.Record(tc.d)
	}
	s := h.Snapshot()
	want := []uint64{3, 2, 2, 2}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d count = %d, want %d (%v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != uint64(len(cases)) {
		t.Errorf("Count = %d, want %d", s.Count, len(cases))
	}
}

func TestHistogramDefaultBounds(t *testing.T) {
	h := NewHistogram(nil)
	if got, want := len(h.bounds), 24; got != want {
		t.Fatalf("default bounds: %d, want %d", got, want)
	}
	if h.bounds[0] != 1000 {
		t.Errorf("first bound = %d ns, want 1µs", h.bounds[0])
	}
	for i := 1; i < len(h.bounds); i++ {
		if h.bounds[i] != 2*h.bounds[i-1] {
			t.Errorf("bound %d = %d, want double of %d", i, h.bounds[i], h.bounds[i-1])
		}
	}
}

func TestHistogramRejectsUnsortedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewHistogram accepted non-increasing bounds")
		}
	}()
	NewHistogram([]int64{10, 10})
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram([]int64{int64(time.Microsecond), int64(10 * time.Microsecond), int64(100 * time.Microsecond)})
	// 100 samples at ~5µs: p50 and p99 must both land inside the (1µs,10µs]
	// bucket.
	for i := 0; i < 100; i++ {
		h.Record(5 * time.Microsecond)
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		got := h.Quantile(q)
		if got <= time.Microsecond || got > 10*time.Microsecond {
			t.Errorf("Quantile(%v) = %v, want within (1µs, 10µs]", q, got)
		}
	}
	if got := h.Quantile(0); got < 0 {
		t.Errorf("Quantile(0) = %v", got)
	}

	// A bimodal population: 90 fast (~5µs), 10 slow (~50µs). p50 stays in
	// the fast bucket, p99 must report the slow one.
	h2 := NewHistogram([]int64{int64(time.Microsecond), int64(10 * time.Microsecond), int64(100 * time.Microsecond)})
	for i := 0; i < 90; i++ {
		h2.Record(5 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h2.Record(50 * time.Microsecond)
	}
	if p50 := h2.Quantile(0.50); p50 > 10*time.Microsecond {
		t.Errorf("bimodal p50 = %v, want <= 10µs", p50)
	}
	if p99 := h2.Quantile(0.99); p99 <= 10*time.Microsecond {
		t.Errorf("bimodal p99 = %v, want > 10µs", p99)
	}
}

func TestHistogramQuantileEmptyAndOverflow(t *testing.T) {
	h := NewHistogram([]int64{10, 20})
	if got := h.Quantile(0.99); got != 0 {
		t.Errorf("empty Quantile = %v, want 0", got)
	}
	// Everything in the +Inf bucket: quantiles report the largest finite
	// bound rather than inventing a value.
	h.Record(time.Hour)
	if got := h.Quantile(0.5); got != 20 {
		t.Errorf("overflow Quantile = %v, want largest bound 20ns", got)
	}
}

func TestHistogramSummarize(t *testing.T) {
	h := NewHistogram(nil)
	if s := h.Summarize(); s.Count != 0 || s.Mean != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	for i := 0; i < 10; i++ {
		h.Record(4 * time.Microsecond)
	}
	s := h.Summarize()
	if s.Count != 10 {
		t.Errorf("Count = %d", s.Count)
	}
	if s.Mean != 4*time.Microsecond {
		t.Errorf("Mean = %v, want 4µs", s.Mean)
	}
	if s.P50 == 0 || s.P95 == 0 || s.P99 == 0 {
		t.Errorf("zero percentile in %+v", s)
	}
	if h.Sum() != 40*time.Microsecond {
		t.Errorf("Sum = %v", h.Sum())
	}
	if h.Mean() != 4*time.Microsecond {
		t.Errorf("Mean = %v", h.Mean())
	}
}

// TestHistogramConcurrentRecord locks the concurrency contract: Record from
// many goroutines races with Snapshot, and no sample is lost (run under
// -race in make race / make ci).
func TestHistogramConcurrentRecord(t *testing.T) {
	h := NewHistogram(nil)
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				h.Snapshot().Quantile(0.95)
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Record(time.Duration(w+1) * time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	if got, want := h.Count(), uint64(workers*perWorker); got != want {
		t.Fatalf("Count = %d, want %d", got, want)
	}
	s := h.Snapshot()
	if s.Count != uint64(workers*perWorker) {
		t.Fatalf("snapshot Count = %d, want %d", s.Count, workers*perWorker)
	}
}

func BenchmarkHistogramRecord(b *testing.B) {
	h := NewHistogram(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(time.Duration(i) * 100)
	}
}

func TestHistogramRecordDoesNotAllocate(t *testing.T) {
	h := NewHistogram(nil)
	got := testing.AllocsPerRun(1000, func() { h.Record(3 * time.Microsecond) })
	if got != 0 {
		t.Fatalf("Record allocates %.2f objects/op, want 0", got)
	}
}
