package metrics

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestRegistryExpositionGolden locks the exact Prometheus text format the
// /metrics endpoint serves: sorted names, HELP/TYPE headers, cumulative
// histogram buckets in seconds, counter and gauge values.
func TestRegistryExpositionGolden(t *testing.T) {
	reg := NewRegistry()
	var c Counter
	c.Add(42)
	var g Gauge
	g.Set(-3)
	h := NewHistogram([]int64{int64(time.Microsecond), int64(time.Millisecond)})
	h.Record(500 * time.Nanosecond) // bucket le=1µs
	h.Record(2 * time.Microsecond)  // bucket le=1ms
	h.Record(2 * time.Second)       // +Inf

	reg.MustRegister(reg.RegisterCounter("xvtpm_commands_total", "Commands dispatched.", &c))
	reg.MustRegister(reg.RegisterGauge("xvtpm_degraded_now", "Instances currently degraded.", &g))
	reg.MustRegister(reg.RegisterHistogram("xvtpm_dispatch_seconds", "Dispatch latency.", h))
	reg.MustRegister(reg.RegisterGaugeFunc("xvtpm_up", "Liveness.", func() float64 { return 1 }))

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP xvtpm_commands_total Commands dispatched.
# TYPE xvtpm_commands_total counter
xvtpm_commands_total 42
# HELP xvtpm_degraded_now Instances currently degraded.
# TYPE xvtpm_degraded_now gauge
xvtpm_degraded_now -3
# HELP xvtpm_dispatch_seconds Dispatch latency.
# TYPE xvtpm_dispatch_seconds histogram
xvtpm_dispatch_seconds_bucket{le="1e-06"} 1
xvtpm_dispatch_seconds_bucket{le="0.001"} 2
xvtpm_dispatch_seconds_bucket{le="+Inf"} 3
xvtpm_dispatch_seconds_sum 2.0000025
xvtpm_dispatch_seconds_count 3
# HELP xvtpm_up Liveness.
# TYPE xvtpm_up gauge
xvtpm_up 1
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestRegistryLateRegistration is the lock on the snapshot-cache
// invalidation contract: an instrument registered *after* the first
// exposition (which populates the sorted-name cache) must appear in the
// next one.
func TestRegistryLateRegistration(t *testing.T) {
	reg := NewRegistry()
	var c Counter
	reg.MustRegister(reg.RegisterCounter("a_total", "", &c))
	var first strings.Builder
	if err := reg.WritePrometheus(&first); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(first.String(), "a_total 0") {
		t.Fatalf("first exposition missing a_total:\n%s", first.String())
	}

	// Late gauge — this is the case the cached sort must not drop.
	var g Gauge
	g.Set(7)
	reg.MustRegister(reg.RegisterGauge("late_gauge", "", &g))
	var second strings.Builder
	if err := reg.WritePrometheus(&second); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(second.String(), "late_gauge 7") {
		t.Fatalf("late-registered gauge missing from exposition:\n%s", second.String())
	}
	// Names stay sorted even across the cache rebuild.
	if strings.Index(second.String(), "a_total") > strings.Index(second.String(), "late_gauge") {
		t.Errorf("exposition not sorted:\n%s", second.String())
	}
}

func TestRegistryRejectsBadAndDuplicateNames(t *testing.T) {
	reg := NewRegistry()
	var c Counter
	if err := reg.RegisterCounter("0bad", "", &c); err == nil {
		t.Error("accepted name starting with a digit")
	}
	if err := reg.RegisterCounter("has space", "", &c); err == nil {
		t.Error("accepted name with a space")
	}
	if err := reg.RegisterCounter("", "", &c); err == nil {
		t.Error("accepted empty name")
	}
	if err := reg.RegisterCounter("ok_total", "", &c); err != nil {
		t.Fatalf("rejected valid name: %v", err)
	}
	if err := reg.RegisterCounter("ok_total", "", &c); err == nil {
		t.Error("accepted duplicate registration")
	}
}

func TestRegistryHandler(t *testing.T) {
	reg := NewRegistry()
	var c Counter
	c.Inc()
	reg.MustRegister(reg.RegisterCounter("hits_total", "Hits.", &c))
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	buf := make([]byte, 1<<16)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "hits_total 1") {
		t.Errorf("handler body missing metric:\n%s", buf[:n])
	}
}

func TestRegistryMustRegisterPanics(t *testing.T) {
	reg := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("MustRegister did not panic on error")
		}
	}()
	var c Counter
	reg.MustRegister(reg.RegisterCounter("bad name", "", &c))
}
