package metrics

import (
	"sync"
	"testing"
	"time"
)

// The Recorder caches its sorted snapshot between percentile queries
// (PR 1). These tests are the audit lock on the invalidation contract:
// samples added — or discarded — after the cache is populated must be
// reflected by the very next query, with no window in which a stale cache
// is served.

func TestRecorderCacheInvalidation(t *testing.T) {
	r := NewRecorder()
	r.Add(10 * time.Microsecond)
	if got := r.Percentile(100); got != 10*time.Microsecond {
		t.Fatalf("p100 = %v, want 10µs", got)
	}
	// The cache now holds the one-sample snapshot. A later Add must
	// invalidate it.
	r.Add(50 * time.Microsecond)
	if got := r.Percentile(100); got != 50*time.Microsecond {
		t.Fatalf("p100 after Add = %v, want 50µs (stale cache served)", got)
	}
	if got := r.Min(); got != 10*time.Microsecond {
		t.Fatalf("Min = %v, want 10µs", got)
	}

	// Reset must invalidate too: a query after Reset+Add sees only the new
	// sample, never the pre-Reset population.
	r.Reset()
	if got := r.Count(); got != 0 {
		t.Fatalf("Count after Reset = %d", got)
	}
	if got := r.Percentile(50); got != 0 {
		t.Fatalf("p50 of empty recorder = %v (stale cache served)", got)
	}
	r.Add(time.Microsecond)
	if got := r.Max(); got != time.Microsecond {
		t.Fatalf("Max after Reset+Add = %v, want 1µs", got)
	}
}

// TestRecorderCacheConcurrent races Add, Reset and the cached-percentile
// path under -race, then verifies the final generation's snapshot is
// internally consistent: the cache may only ever serve a *complete* sorted
// snapshot of some past generation, never a torn one.
func TestRecorderCacheConcurrent(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Add(time.Duration(w*1000+i) * time.Nanosecond)
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				s := r.Summarize()
				if s.Count > 0 && (s.P50 < s.Min || s.P50 > s.Max || s.P99 > s.Max) {
					t.Errorf("torn snapshot: %+v", s)
					return
				}
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			r.Reset()
		}
	}()
	time.Sleep(5 * time.Millisecond)
	close(stop)
	wg.Wait()

	// Quiesced: one more Add, and the fresh generation must be served.
	r.Add(time.Hour)
	if got := r.Max(); got != time.Hour {
		t.Fatalf("Max after quiesce = %v, want 1h", got)
	}
}
