package metrics

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestRecorderBasics(t *testing.T) {
	r := NewRecorder()
	if r.Count() != 0 || r.Mean() != 0 || r.Min() != 0 || r.Max() != 0 || r.Percentile(50) != 0 {
		t.Fatal("empty recorder not zero-valued")
	}
	for _, ms := range []int{5, 1, 3, 2, 4} {
		r.Add(time.Duration(ms) * time.Millisecond)
	}
	if r.Count() != 5 {
		t.Fatalf("count = %d", r.Count())
	}
	if r.Min() != time.Millisecond || r.Max() != 5*time.Millisecond {
		t.Fatalf("min/max = %v/%v", r.Min(), r.Max())
	}
	if r.Mean() != 3*time.Millisecond {
		t.Fatalf("mean = %v", r.Mean())
	}
	if r.Percentile(50) != 3*time.Millisecond {
		t.Fatalf("p50 = %v", r.Percentile(50))
	}
	if r.Percentile(100) != 5*time.Millisecond {
		t.Fatalf("p100 = %v", r.Percentile(100))
	}
}

func TestRecorderTime(t *testing.T) {
	r := NewRecorder()
	r.Time(func() { time.Sleep(time.Millisecond) })
	if r.Count() != 1 || r.Percentile(50) < time.Millisecond {
		t.Fatalf("timed sample = %v", r.Percentile(50))
	}
}

func TestPercentileWithinBounds(t *testing.T) {
	f := func(raw []uint16, p uint8) bool {
		if len(raw) == 0 {
			return true
		}
		r := NewRecorder()
		for _, v := range raw {
			r.Add(time.Duration(v))
		}
		pct := float64(p%100) + 1
		got := r.Percentile(pct)
		return got >= r.Min() && got <= r.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	r := NewRecorder()
	for i := 1; i <= 100; i++ {
		r.Add(time.Duration(i) * time.Microsecond)
	}
	s := r.Summarize()
	if s.Count != 100 || s.P50 != 50*time.Microsecond || s.P99 != 99*time.Microsecond {
		t.Fatalf("summary = %+v", s)
	}
}

func TestTableRendering(t *testing.T) {
	var buf bytes.Buffer
	Table(&buf, "T1 — demo", []string{"op", "latency"}, [][]string{
		{"Extend", "12.3"},
		{"Seal", "450.1"},
	})
	out := buf.String()
	for _, want := range []string{"T1 — demo", "op", "latency", "Extend", "450.1", "---"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
	// Columns align: both data rows start their second column at the same
	// offset.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 4 {
		t.Fatalf("unexpected line count: %d", len(lines))
	}
}

func TestPrintSeries(t *testing.T) {
	var buf bytes.Buffer
	PrintSeries(&buf, "F1 — demo", "guests", "cmds/s", []Series{
		{Name: "baseline", Points: []Point{{X: 1, Y: 100}, {X: 2, Y: 190}}},
		{Name: "improved", Points: []Point{{X: 1, Y: 90}}},
	})
	out := buf.String()
	for _, want := range []string{"F1 — demo", "baseline", "improved", "190.000"} {
		if !strings.Contains(out, want) {
			t.Fatalf("series output missing %q:\n%s", want, out)
		}
	}
}

func TestMicrosAndRatio(t *testing.T) {
	if Micros(1500*time.Nanosecond) != "1.50" {
		t.Fatalf("Micros = %s", Micros(1500*time.Nanosecond))
	}
	if Ratio(100, 112) != "+12.0%" {
		t.Fatalf("Ratio = %s", Ratio(100, 112))
	}
	if Ratio(0, 5) != "n/a" {
		t.Fatalf("Ratio(0) = %s", Ratio(0, 5))
	}
}
