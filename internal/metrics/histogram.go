package metrics

import (
	"math"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket latency histogram: a Recorder that never
// grows. Where Recorder keeps every sample (exact percentiles, unbounded
// memory, a lock per Add), Histogram keeps one atomic counter per bucket —
// Record is lock-free, allocation-free and constant-time, which is what the
// dispatch hot path needs to stay inside the alloc-guard budget while still
// producing p50/p95/p99 for the paper's latency-distribution tables.
//
// Bucket boundaries are fixed at construction and never change, so a
// snapshot is a plain copy of the counter array. Quantiles are estimated by
// linear interpolation inside the bucket containing the requested rank; the
// error is bounded by the bucket width (a factor of 2 with the default
// exponential bounds), which is accurate enough for regression gating and
// dashboards, if not for microbenchmark verdicts.
type Histogram struct {
	// bounds are the inclusive upper bounds of each bucket, in nanoseconds,
	// strictly increasing. Sample d lands in the first bucket with
	// d <= bounds[i]; anything larger lands in the implicit +Inf bucket.
	// Immutable after construction.
	bounds []int64

	// counts has len(bounds)+1 entries: one per bound plus the +Inf bucket.
	counts []atomic.Uint64

	count atomic.Uint64 // total samples
	sum   atomic.Int64  // total nanoseconds
}

// DefaultLatencyBounds covers 1µs to ~8.6s in factor-of-2 steps — wide
// enough for everything from a cached policy decision to an RSA keygen,
// tight enough (24 buckets) that a snapshot is one cache line of counters.
func DefaultLatencyBounds() []int64 {
	bounds := make([]int64, 24)
	b := int64(1000) // 1µs
	for i := range bounds {
		bounds[i] = b
		b *= 2
	}
	return bounds
}

// NewHistogram creates a histogram over the given bucket bounds
// (nanoseconds, strictly increasing). Nil or empty bounds select
// DefaultLatencyBounds.
func NewHistogram(bounds []int64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBounds()
	}
	own := make([]int64, len(bounds))
	copy(own, bounds)
	for i := 1; i < len(own); i++ {
		if own[i] <= own[i-1] {
			panic("metrics: histogram bounds must be strictly increasing")
		}
	}
	return &Histogram{
		bounds: own,
		counts: make([]atomic.Uint64, len(own)+1),
	}
}

// bucketOf returns the index of the bucket a sample of n nanoseconds lands
// in. Manual binary search: no closures, no allocations.
func (h *Histogram) bucketOf(n int64) int {
	lo, hi := 0, len(h.bounds) // hi is the +Inf bucket
	for lo < hi {
		mid := (lo + hi) / 2
		if n <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Record adds one latency sample. Safe for concurrent use; never allocates.
func (h *Histogram) Record(d time.Duration) {
	n := int64(d)
	if n < 0 {
		n = 0
	}
	h.counts[h.bucketOf(n)].Add(1)
	h.count.Add(1)
	h.sum.Add(n)
}

// Count returns the total number of recorded samples.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the total recorded time.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Mean returns the arithmetic mean of the recorded samples.
func (h *Histogram) Mean() time.Duration {
	c := h.count.Load()
	if c == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / int64(c))
}

// HistogramSnapshot is a point-in-time copy of a histogram's counters.
// Counts[i] pairs with Bounds[i]; the final entry of Counts is the +Inf
// bucket.
type HistogramSnapshot struct {
	Bounds []int64
	Counts []uint64
	Count  uint64
	Sum    time.Duration
}

// Snapshot copies the histogram's counters. Concurrent Records may land
// between individual counter loads; the snapshot is still a valid histogram
// (every sample counted at most once per counter), just not an atomic cut —
// the same contract Prometheus client libraries give.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds, // immutable; shared, not copied
		Counts: make([]uint64, len(h.counts)),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	s.Sum = time.Duration(h.sum.Load())
	return s
}

// Quantile estimates the q-th quantile (0 < q <= 1) of a snapshot by
// locating the bucket holding the rank and interpolating linearly inside
// it. The +Inf bucket reports its lower bound (the largest finite bound).
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= rank || i == len(s.Counts)-1 {
			if i >= len(s.Bounds) {
				// +Inf bucket: the best honest answer is the largest
				// finite bound.
				return time.Duration(s.Bounds[len(s.Bounds)-1])
			}
			lower := int64(0)
			if i > 0 {
				lower = s.Bounds[i-1]
			}
			upper := s.Bounds[i]
			frac := (rank - cum) / float64(c)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			v := float64(lower) + frac*float64(upper-lower)
			return time.Duration(math.Round(v))
		}
		cum = next
	}
	return 0
}

// Quantile estimates the q-th quantile (0 < q <= 1) from the live counters.
func (h *Histogram) Quantile(q float64) time.Duration {
	return h.Snapshot().Quantile(q)
}

// HistogramSummary digests a histogram into the percentiles the evaluation
// tables report.
type HistogramSummary struct {
	Count               uint64
	Mean, P50, P95, P99 time.Duration
}

// Summarize computes the digest from one snapshot.
func (h *Histogram) Summarize() HistogramSummary {
	s := h.Snapshot()
	out := HistogramSummary{Count: s.Count}
	if s.Count == 0 {
		return out
	}
	out.Mean = time.Duration(int64(s.Sum) / int64(s.Count))
	out.P50 = s.Quantile(0.50)
	out.P95 = s.Quantile(0.95)
	out.P99 = s.Quantile(0.99)
	return out
}
