package metrics

import "sync/atomic"

// Gauge is a concurrency-safe up/down level indicator — the companion to
// Counter for population counts that rise and fall (instances currently
// degraded, currently quarantined, dirty windows open). The zero value is
// ready to use.
type Gauge struct{ v atomic.Int64 }

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Set forces the gauge to v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Load returns the current level.
func (g *Gauge) Load() int64 { return g.v.Load() }
