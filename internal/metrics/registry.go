package metrics

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Registry names a set of live metric instruments and renders them in the
// Prometheus text exposition format (version 0.0.4). Instruments register
// once and are read live at exposition time — the registry holds pointers,
// never copies, so a counter registered at boot keeps counting without
// touching the registry again.
//
// Snapshot caching: exposition sorts metric names once and caches the
// sorted list. The cache is invalidated on *every* registration — including
// ones that happen after the first exposition — so a gauge added late can
// never be silently dropped from the output. (The Recorder in this package
// had the analogous invalidation audited and locked with a test; the
// registry gets the same treatment via TestRegistryLateRegistration.)
type Registry struct {
	mu      sync.Mutex
	entries map[string]*entry
	sorted  []string // cached sorted names; nil means invalid
}

// entry is one registered instrument. Exactly one of the instrument fields
// is set, matched by kind.
type entry struct {
	kind    string // "counter", "gauge", "histogram"
	help    string
	counter *Counter
	gauge   *Gauge
	gaugeFn func() float64
	hist    *Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*entry)}
}

// validName reports whether name fits the Prometheus metric-name grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		alpha := (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r == '_' || r == ':'
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// register installs an entry, invalidating the sorted-name cache.
func (r *Registry) register(name string, e *entry) error {
	if !validName(name) {
		return fmt.Errorf("metrics: invalid metric name %q", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.entries[name]; dup {
		return fmt.Errorf("metrics: metric %q already registered", name)
	}
	r.entries[name] = e
	r.sorted = nil // late registrations must appear in the next exposition
	return nil
}

// RegisterCounter exposes c under name.
func (r *Registry) RegisterCounter(name, help string, c *Counter) error {
	return r.register(name, &entry{kind: "counter", help: help, counter: c})
}

// RegisterGauge exposes g under name.
func (r *Registry) RegisterGauge(name, help string, g *Gauge) error {
	return r.register(name, &entry{kind: "gauge", help: help, gauge: g})
}

// RegisterGaugeFunc exposes the value returned by fn under name, evaluated
// at each exposition. fn must be safe for concurrent use.
func (r *Registry) RegisterGaugeFunc(name, help string, fn func() float64) error {
	return r.register(name, &entry{kind: "gauge", help: help, gaugeFn: fn})
}

// RegisterHistogram exposes h under name. Durations are rendered in
// seconds, per Prometheus convention; name should end in "_seconds".
func (r *Registry) RegisterHistogram(name, help string, h *Histogram) error {
	return r.register(name, &entry{kind: "histogram", help: help, hist: h})
}

// MustRegister panics on a registration error — for boot-time wiring where
// a duplicate name is a programming bug.
func (r *Registry) MustRegister(err error) {
	if err != nil {
		panic(err)
	}
}

// names returns the sorted metric names, computing and caching the sort
// only when a registration has invalidated it.
func (r *Registry) names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.sorted == nil {
		r.sorted = make([]string, 0, len(r.entries))
		for name := range r.entries {
			r.sorted = append(r.sorted, name)
		}
		sort.Strings(r.sorted)
	}
	return r.sorted
}

// seconds renders nanoseconds as a seconds float with full precision.
func seconds(ns int64) string {
	return strconv.FormatFloat(float64(ns)/1e9, 'g', -1, 64)
}

// WritePrometheus renders every registered metric in the text exposition
// format, sorted by name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, name := range r.names() {
		r.mu.Lock()
		e := r.entries[name]
		r.mu.Unlock()
		if e == nil {
			continue
		}
		if e.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", name, strings.ReplaceAll(e.help, "\n", " "))
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", name, e.kind)
		switch {
		case e.counter != nil:
			fmt.Fprintf(w, "%s %d\n", name, e.counter.Load())
		case e.gauge != nil:
			fmt.Fprintf(w, "%s %d\n", name, e.gauge.Load())
		case e.gaugeFn != nil:
			fmt.Fprintf(w, "%s %s\n", name, strconv.FormatFloat(e.gaugeFn(), 'g', -1, 64))
		case e.hist != nil:
			s := e.hist.Snapshot()
			var cum uint64
			for i, c := range s.Counts {
				cum += c
				le := "+Inf"
				if i < len(s.Bounds) {
					le = seconds(s.Bounds[i])
				}
				fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, cum)
			}
			fmt.Fprintf(w, "%s_sum %s\n", name, seconds(int64(s.Sum)))
			fmt.Fprintf(w, "%s_count %d\n", name, s.Count)
		}
	}
	return nil
}

// Handler returns an http.Handler serving the exposition — the /metrics
// endpoint of cmd/xvtpm-host.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w) //nolint:errcheck // ResponseWriter errors mean a gone client
	})
}
