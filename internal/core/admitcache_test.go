package core

import (
	"sync"
	"testing"

	"xvtpm/internal/tpm"
	"xvtpm/internal/vtpm"
	"xvtpm/internal/xen"
)

// admitMatrixOrdinals is every ordinal the policy language knows plus one it
// does not (0xDEAD maps to GroupAdmin via the unknown-ordinal rule).
func admitMatrixOrdinals() []uint32 {
	ords := []uint32{0xDEAD}
	for _, group := range groupOrdinals {
		ords = append(ords, group...)
	}
	return ords
}

// TestAdmitCacheEquivalence replays the full (identity × instance × ordinal)
// decision matrix against a cached and an uncached guard sharing one policy,
// twice (cold then warm), then mutates the policy and rebinding state and
// replays again. Every verdict must match Policy.Evaluate exactly — the cache
// may never change a decision, before or after invalidation.
func TestAdmitCacheEquivalence(t *testing.T) {
	idA, idB := launchOf("guest-a"), launchOf("guest-b")
	identities := []xen.LaunchDigest{idA, idB, AnyIdentity}
	instances := []vtpm.InstanceID{1, 2, 17} // 1 and 17 share a shard (16 shards)
	ordinals := admitMatrixOrdinals()

	policy := NewPolicy(DefaultGuestPolicy(idA, 1)...)
	policy.Append(Rule{Identity: idB, Instance: 2, Group: GroupRandom, Effect: Allow})
	cached := NewImprovedGuard(nil, policy)
	uncached := NewImprovedGuard(nil, policy)
	uncached.SetAdmitCache(false)

	replay := func(tag string) {
		t.Helper()
		for _, id := range identities {
			for _, inst := range instances {
				for _, ord := range ordinals {
					want := policy.Evaluate(tpm.Profile12, id, inst, ord)
					if got := cached.evaluateAdmit(tpm.Profile12, id, inst, ord); got != want {
						t.Fatalf("%s: cached(%x…, %d, %#x) = %v, want %v", tag, id[:4], inst, ord, got, want)
					}
					if got := uncached.evaluateAdmit(tpm.Profile12, id, inst, ord); got != want {
						t.Fatalf("%s: uncached(%x…, %d, %#x) = %v, want %v", tag, id[:4], inst, ord, got, want)
					}
				}
			}
		}
	}

	replay("cold")
	replay("warm") // second pass hits the cache
	if s := cached.AdmissionStats(); s.CacheHits == 0 {
		t.Fatal("warm replay produced no cache hits")
	}
	if s := uncached.AdmissionStats(); s.CacheHits != 0 {
		t.Fatalf("uncached guard reported %d hits", s.CacheHits)
	}

	// Policy mutation: verdicts flip for idB; the caches must follow.
	policy.Prepend(Rule{Identity: idB, Group: GroupRandom, Effect: Deny})
	replay("post-mutation")

	// Rebind/migration-style invalidation, then replay once more.
	cached.InvalidateAdmit(1)
	cached.InvalidateAdmit(2)
	replay("post-invalidation")
}

func TestAdmitCachePolicyMutationInvalidates(t *testing.T) {
	id := launchOf("guest")
	policy := NewPolicy(Rule{Identity: id, Instance: 1, Group: GroupRandom, Effect: Allow})
	g := NewImprovedGuard(nil, policy)

	if e := g.evaluateAdmit(tpm.Profile12, id, 1, tpm.OrdGetRandom); e != Allow {
		t.Fatalf("pre-edit = %v", e)
	}
	g.evaluateAdmit(tpm.Profile12, id, 1, tpm.OrdGetRandom) // warm the entry
	policy.Prepend(Rule{Identity: id, Instance: 1, Group: GroupRandom, Effect: Deny})
	if e := g.evaluateAdmit(tpm.Profile12, id, 1, tpm.OrdGetRandom); e != Deny {
		t.Fatal("cached Allow survived a policy edit")
	}
}

func TestAdmitCacheInvalidateFlushesOnlyOwningShard(t *testing.T) {
	id := launchOf("guest")
	policy := NewPolicy(Rule{Effect: Allow}) // allow-all keeps the matrix simple
	g := NewImprovedGuard(nil, policy)

	// Instances 1 and 2 live in different shards; 17 shares instance 1's.
	for _, inst := range []vtpm.InstanceID{1, 2, 17} {
		g.evaluateAdmit(tpm.Profile12, id, inst, tpm.OrdGetRandom)
	}
	if g.shard(1) != g.shard(17) || g.shard(1) == g.shard(2) {
		t.Fatal("shard layout assumption broken")
	}
	g.InvalidateAdmit(1)
	if g.shard(1).admit.Load() != nil {
		t.Fatal("owning shard not flushed")
	}
	if tbl := g.shard(2).admit.Load(); tbl == nil || len(tbl.m) == 0 {
		t.Fatal("unrelated shard was flushed too")
	}
}

func TestAdmitCacheResetChannelInvalidates(t *testing.T) {
	g, _ := newImproved(t, "admit-reset")
	inst := testInstance(3, "guest")
	g.Policy().Append(DefaultGuestPolicy(inst.BoundLaunch, inst.ID)...)
	g.evaluateAdmit(tpm.Profile12, inst.BoundLaunch, inst.ID, tpm.OrdGetRandom)
	if g.shard(inst.ID).admit.Load() == nil {
		t.Fatal("cache not warmed")
	}
	// ResetChannel is the rebind/migration entry point; it must start the
	// instance's shard cold.
	g.ResetChannel(inst.ID)
	if g.shard(inst.ID).admit.Load() != nil {
		t.Fatal("rebind left stale admission verdicts behind")
	}
}

func TestAdmitCacheToggleOffFlushes(t *testing.T) {
	id := launchOf("guest")
	g := NewImprovedGuard(nil, NewPolicy(Rule{Effect: Allow}))
	g.evaluateAdmit(tpm.Profile12, id, 1, tpm.OrdGetRandom)
	g.SetAdmitCache(false)
	for i := range g.shards {
		if g.shards[i].admit.Load() != nil {
			t.Fatalf("shard %d still holds a table after disable", i)
		}
	}
	g.evaluateAdmit(tpm.Profile12, id, 1, tpm.OrdGetRandom)
	if g.shard(1).admit.Load() != nil {
		t.Fatal("disabled cache still caching")
	}
	g.SetAdmitCache(true)
	g.evaluateAdmit(tpm.Profile12, id, 1, tpm.OrdGetRandom)
	if g.shard(1).admit.Load() == nil {
		t.Fatal("re-enabled cache not caching")
	}
}

// TestAdmitCacheEvaluateDuringInvalidationRace hammers evaluateAdmit from
// many goroutines while the policy mutates and shards flush concurrently.
// Run under -race this checks the lock-free hit path against the
// copy-on-write publishers; in any mode it checks that a verdict observed
// mid-flight is one the policy could have produced (the rule set only ever
// toggles GroupRandom for the hammered identity, so both effects are legal
// mid-edit but the call must never deadlock, panic or return junk).
func TestAdmitCacheEvaluateDuringInvalidationRace(t *testing.T) {
	id := launchOf("guest")
	policy := NewPolicy(Rule{Identity: id, Group: GroupRandom, Effect: Allow})
	g := NewImprovedGuard(nil, policy)

	const readers = 8
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(inst vtpm.InstanceID) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				e := g.evaluateAdmit(tpm.Profile12, id, inst, tpm.OrdGetRandom)
				if e != Allow && e != Deny {
					t.Errorf("impossible effect %v", e)
					return
				}
			}
		}(vtpm.InstanceID(w + 1))
	}
	for i := 0; i < 200; i++ {
		switch i % 3 {
		case 0:
			policy.Prepend(Rule{Identity: id, Group: GroupRandom, Effect: Effect(i % 2)})
		case 1:
			g.InvalidateAdmit(vtpm.InstanceID(i%readers + 1))
		case 2:
			g.SetAdmitCache(i%2 == 0)
		}
	}
	close(stop)
	wg.Wait()
}
